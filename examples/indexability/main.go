// Indexability: a walkthrough of Section 2 of the paper — the theory side.
//
// It builds the Fibonacci workload (the worst case for 2-D range search
// indexing), verifies its density property, constructs the 3-sided
// sweep-line scheme and the 4-sided hierarchy on it, measures their
// redundancy and access overhead, and evaluates the Redundancy-Theorem
// lower bound those constructions meet.
//
//	go run ./examples/indexability
package main

import (
	"fmt"
	"log"

	"rangesearch/internal/geom"
	"rangesearch/internal/hier"
	"rangesearch/internal/indexability"
	"rangesearch/internal/sweep"
)

func main() {
	const (
		k = 21 // N = Fib(21) = 10946
		b = 16 // block size in points
	)
	pts := indexability.FibonacciLattice(k)
	n := len(pts)
	fmt.Printf("Fibonacci lattice: N = %d points on an N x N grid (k = %d)\n", n, k)

	// Proposition 1: every rectangle of area lBN holds Theta(lB) points.
	rep := indexability.MeasureDensity(k, b, 1, 2.0)
	fmt.Printf("\nProposition 1 over %d rectangles of area B*N:\n", rep.Rects)
	fmt.Printf("  expected %.0f points per rectangle; observed min %d, max %d\n",
		rep.Expected, rep.Min, rep.Max)
	fmt.Printf("  observed c1 = %.2f (paper: <= 1.9), c2 = %.2f (paper: >= 0.45)\n", rep.C1, rep.C2)

	// Theorem 4: 3-sided sweep-line scheme with constant redundancy.
	s3, err := sweep.Build(pts, b, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTheorem 4 (3-sided sweep scheme, alpha=2):\n")
	fmt.Printf("  blocks %d, redundancy %.3f (bound 1+1/(alpha-1) = 2.0)\n",
		s3.NumBlocks(), s3.Redundancy())
	q3 := geom.Query3{XLo: int64(n / 4), XHi: int64(n / 2), YLo: int64(n - n/64)}
	res, blocks := s3.Query3(nil, q3)
	fmt.Printf("  query %v: %d points from %d blocks (t = %d)\n",
		q3, len(res), blocks, (len(res)+b-1)/b)

	// Theorem 5: the 4-sided hierarchy trades redundancy for overhead.
	fmt.Printf("\nTheorem 5 (4-sided hierarchy, redundancy vs rho):\n")
	w := &indexability.Workload{Points: pts, Queries: indexability.TilingQueries(k, b, 1, 4.0)}
	for _, rho := range []int{2, 4, 16} {
		s4, err := hier.Build(pts, b, rho, 2)
		if err != nil {
			log.Fatal(err)
		}
		acc, err := indexability.MeasureAccess(s4, w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  rho=%2d: r = %6.2f  A = %5.2f  (shape log n/log rho = %.2f)\n",
			rho, s4.Redundancy(), acc.Overhead,
			indexability.TradeoffShape(float64(n)/float64(b), float64(rho)))
	}

	// Theorems 2/3: the lower bound the construction meets.
	lb, err := indexability.FibonacciLowerBound(indexability.LowerBoundParams{
		N: indexability.Fib(60), B: 1 << 12, A: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTheorem 2 lower bound at N = Fib(60), B = 4096, A = 2:\n")
	fmt.Printf("  r >= %.2f over %.1f admissible aspect ratios (epsilon = %.0f)\n",
		lb.R, lb.Ratios, lb.Epsilon)
	fmt.Println("\nThe dynamic structures in internal/epst and internal/range4 turn")
	fmt.Println("these placements into searchable indexes; see the other examples.")
}
