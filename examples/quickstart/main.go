// Quickstart: build the paper's optimal 3-sided index on the in-memory
// block-device simulator, query it, and watch the I/O counters.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rangesearch/internal/bench"
	"rangesearch/internal/core"
	"rangesearch/internal/eio"
	"rangesearch/internal/epst"
	"rangesearch/internal/geom"
)

func main() {
	// A simulated disk with 4 KiB pages: each block holds B = 256 points.
	store := eio.NewMemStore(4096)

	// 100k uniform points, bulk-loaded into an external priority search
	// tree (Theorem 6 of the paper).
	pts := bench.Uniform(1, 100_000, 1_000_000)
	idx, err := core.BuildThreeSided(store, epst.Options{}, pts)
	if err != nil {
		log.Fatal(err)
	}
	n, err := idx.Len()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d points on %d pages (%.2f blocks per B points)\n",
		n, store.Pages(), float64(store.Pages()*256)/float64(n))

	// A 3-sided query: x in [250k, 750k], y >= 990k (the "top" slice).
	q := geom.Query3{XLo: 250_000, XHi: 750_000, YLo: 990_000}
	store.ResetStats()
	res, err := idx.Query3(nil, q)
	if err != nil {
		log.Fatal(err)
	}
	st := store.Stats()
	fmt.Printf("query %v -> %d points in %d page reads (t = %d blocks)\n",
		q, len(res), st.Reads, (len(res)+255)/256)

	// Updates are first-class: insert a point that dominates the query
	// and remove another.
	if err := idx.Insert(geom.Point{X: 500_000, Y: 999_999}); err != nil {
		log.Fatal(err)
	}
	if _, err := idx.Delete(res[0]); err != nil {
		log.Fatal(err)
	}
	res2, err := idx.Query3(nil, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after one insert and one delete the query returns %d points\n", len(res2))

	// The structure audits itself: every Y-set invariant of Section 3.3.
	if err := idx.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("structural invariants: OK")
}
