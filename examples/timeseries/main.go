// Timeseries: the temporal-indexing scenario from the paper's
// introduction (Kannan et al. reduce indexing in temporal data models to
// 3-sided range searching).
//
// A monitoring system stores events as points (seriesID, timestamp). The
// recurring query — "all events for series in [a, b] since time c" — is
// exactly a 3-sided query: a ≤ series ≤ b, timestamp ≥ c. This example
// ingests a rolling window of events into the external priority search
// tree, expires old ones, and compares the query cost against a plain
// B-tree on seriesID.
//
//	go run ./examples/timeseries
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rangesearch/internal/baseline"
	"rangesearch/internal/core"
	"rangesearch/internal/eio"
	"rangesearch/internal/epst"
	"rangesearch/internal/geom"
)

const (
	numSeries = 10_000
	window    = 50_000 // events kept live
	pageSize  = 1024   // B = 64 points per block
)

func main() {
	rng := rand.New(rand.NewSource(7))

	store := eio.NewMemStore(pageSize)
	idx, err := core.NewThreeSided(store, epst.Options{})
	if err != nil {
		log.Fatal(err)
	}
	btStore := eio.NewMemStore(pageSize)
	bt, err := baseline.NewXTree(btStore)
	if err != nil {
		log.Fatal(err)
	}

	// Ingest a stream with expiry: a ring buffer of the last `window`
	// events, deleting the oldest as new ones arrive.
	var ring []geom.Point
	now := int64(0)
	ingest := func(n int) {
		for i := 0; i < n; i++ {
			now++
			ev := geom.Point{X: rng.Int63n(numSeries), Y: now}
			if err := idx.Insert(ev); err != nil {
				log.Fatal(err)
			}
			if err := bt.Insert(ev); err != nil {
				log.Fatal(err)
			}
			ring = append(ring, ev)
			if len(ring) > window {
				old := ring[0]
				ring = ring[1:]
				if _, err := idx.Delete(old); err != nil {
					log.Fatal(err)
				}
				if _, err := bt.Delete(old); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	fmt.Println("ingesting 120k events with a 50k-event retention window...")
	ingest(120_000)
	n, _ := idx.Len()
	fmt.Printf("live events: %d (timestamps %d..%d)\n", n, now-window+1, now)

	// "Recent events for a band of series": series in [2000, 2100],
	// since 95% of the window ago.
	since := now - window/20
	q3 := geom.Query3{XLo: 2000, XHi: 2100, YLo: since}
	store.ResetStats()
	res, err := idx.Query3(nil, q3)
	if err != nil {
		log.Fatal(err)
	}
	pstReads := store.Stats().Reads

	btStore.ResetStats()
	res2, err := bt.Query(nil, geom.Rect{XLo: 2000, XHi: 2100, YLo: since, YHi: geom.MaxCoord})
	if err != nil {
		log.Fatal(err)
	}
	btReads := btStore.Stats().Reads
	if len(res) != len(res2) {
		log.Fatalf("structures disagree: %d vs %d", len(res), len(res2))
	}
	fmt.Printf("\nquery: series in [2000,2100], time >= %d -> %d events\n", since, len(res))
	fmt.Printf("  priority search tree: %4d page reads\n", pstReads)
	fmt.Printf("  B-tree on seriesID:   %4d page reads (scans the whole series band)\n", btReads)

	// The adversarial case for the B-tree: ALL series, recent only.
	q3 = geom.Query3{XLo: 0, XHi: numSeries, YLo: now - 200}
	store.ResetStats()
	res, err = idx.Query3(nil, q3)
	if err != nil {
		log.Fatal(err)
	}
	pstReads = store.Stats().Reads
	btStore.ResetStats()
	res2, err = bt.Query(nil, geom.Rect{XLo: 0, XHi: numSeries, YLo: now - 200, YHi: geom.MaxCoord})
	if err != nil {
		log.Fatal(err)
	}
	btReads = btStore.Stats().Reads
	if len(res) != len(res2) {
		log.Fatalf("structures disagree: %d vs %d", len(res), len(res2))
	}
	fmt.Printf("\nquery: ALL series, last 200 ticks -> %d events\n", len(res))
	fmt.Printf("  priority search tree: %4d page reads (output-sensitive)\n", pstReads)
	fmt.Printf("  B-tree on seriesID:   %4d page reads (reads every live event)\n", btReads)
}
