// Spatial: general 4-sided window queries (Theorem 7) against the k-d-tree
// heuristic the paper's introduction surveys.
//
// A map service stores points of interest in clustered "cities" and
// answers viewport (window) queries. The paper's layered structure pays a
// space premium — one replica of every point per level — to guarantee
// output-sensitive reporting on every viewport; the k-d tree is smaller
// but has no worst-case guarantee, which thin viewports expose.
//
//	go run ./examples/spatial
package main

import (
	"fmt"
	"log"

	"rangesearch/internal/baseline"
	"rangesearch/internal/bench"
	"rangesearch/internal/core"
	"rangesearch/internal/eio"
	"rangesearch/internal/geom"
	"rangesearch/internal/range4"
)

func main() {
	const (
		n        = 50_000
		domain   = 1 << 20
		pageSize = 1024 // B = 64
	)
	pois := bench.Clustered(5, n, domain, 12)

	// The paper's 4-sided structure.
	optStore := eio.NewMemStore(pageSize)
	opt, err := core.BuildFourSided(optStore, range4.Options{}, pois)
	if err != nil {
		log.Fatal(err)
	}
	// The k-d tree baseline.
	kdStore := eio.NewMemStore(pageSize)
	kd, err := baseline.NewKDTree(kdStore, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pois {
		if err := kd.Insert(p); err != nil {
			log.Fatal(err)
		}
	}
	// The STR-packed R-tree baseline.
	rtStore := eio.NewMemStore(pageSize)
	rt, err := baseline.BuildRTree(rtStore, 0, pois)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d points of interest; structure sizes: optimal %d pages, k-d tree %d, R-tree %d\n",
		n, optStore.Pages(), kdStore.Pages(), rtStore.Pages())

	type view struct {
		name string
		q    geom.Rect
	}
	views := []view{
		{"city block (square)", geom.Rect{XLo: 400_000, XHi: 420_000, YLo: 400_000, YHi: 420_000}},
		{"whole map", geom.Rect{XLo: 0, XHi: domain, YLo: 0, YHi: domain}},
		{"east-west corridor (x-wide, y-thin)", geom.Rect{XLo: 0, XHi: domain, YLo: 524_000, YHi: 526_000}},
		{"north-south corridor (x-thin, y-wide)", geom.Rect{XLo: 524_000, XHi: 526_000, YLo: 0, YHi: domain}},
	}
	fmt.Printf("\n%-40s %10s %12s %12s %12s\n", "viewport", "results", "optimal I/O", "k-d tree I/O", "R-tree I/O")
	for _, v := range views {
		optStore.ResetStats()
		a, err := opt.Query(nil, v.q)
		if err != nil {
			log.Fatal(err)
		}
		kdStore.ResetStats()
		b, err := kd.Query(nil, v.q)
		if err != nil {
			log.Fatal(err)
		}
		rtStore.ResetStats()
		c, err := rt.Query(nil, v.q)
		if err != nil {
			log.Fatal(err)
		}
		if len(a) != len(b) || len(a) != len(c) {
			log.Fatalf("viewport %q: %d vs %d vs %d results", v.name, len(a), len(b), len(c))
		}
		fmt.Printf("%-40s %10d %12d %12d %12d\n", v.name, len(a),
			optStore.Stats().Reads, kdStore.Stats().Reads, rtStore.Stats().Reads)
	}

	// Updates are symmetrical: move a POI.
	old := pois[0]
	moved := geom.Point{X: old.X + 1, Y: old.Y + 1}
	for _, idx := range []core.Index{opt, kd, rt} {
		if _, err := idx.Delete(old); err != nil {
			log.Fatal(err)
		}
		if err := idx.Insert(moved); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nmoved POI %v -> %v in both structures\n", old, moved)
	if err := opt.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("structural invariants: OK")
}
