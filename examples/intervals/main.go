// Intervals: dynamic interval management — the constraint/temporal-model
// application that motivated 3-sided indexing (Section 1 of the paper).
//
// A room-booking service stores reservations as time intervals and asks
// "which reservations cover instant q?" (a stabbing query). The example
// runs against a REAL file on disk, reopens it, and shows that updates and
// stabbing queries survive the round trip — the structures serialize
// themselves into fixed-size pages.
//
//	go run ./examples/intervals
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"rangesearch/internal/eio"
	"rangesearch/internal/epst"
	"rangesearch/internal/geom"
	"rangesearch/internal/interval"
)

func main() {
	dir, err := os.MkdirTemp("", "bookings")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "bookings.db")

	// Phase 1: create the store, load a year of bookings, close it.
	fs, err := eio.CreateFileStore(path, 4096)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	const year = 365 * 24 * 60 // minutes
	seen := map[geom.Interval]bool{}
	var bookings []geom.Interval
	for len(bookings) < 30_000 {
		start := rng.Int63n(year)
		iv := geom.Interval{Lo: start, Hi: start + 30 + rng.Int63n(240)}
		if !seen[iv] {
			seen[iv] = true
			bookings = append(bookings, iv)
		}
	}
	set, err := interval.Build(fs, epst.Options{}, bookings)
	if err != nil {
		log.Fatal(err)
	}
	hdr := set.HeaderID()
	if err := fs.Close(); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("stored %d bookings in %s (%d KiB on disk)\n", len(bookings), path, info.Size()/1024)

	// Phase 2: reopen the file and serve queries from it.
	fs2, err := eio.OpenFileStore(path)
	if err != nil {
		log.Fatal(err)
	}
	defer fs2.Close()
	set, err = interval.Open(fs2, hdr, 0)
	if err != nil {
		log.Fatal(err)
	}

	q := int64(year / 2)
	fs2.ResetStats()
	hits, err := set.Stab(nil, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstab(minute %d): %d active bookings, %d page reads\n",
		q, len(hits), fs2.Stats().Reads)
	for i, iv := range hits {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(hits)-5)
			break
		}
		fmt.Printf("  booking [%d, %d] (%d min)\n", iv.Lo, iv.Hi, iv.Hi-iv.Lo)
	}

	// Cancel everything covering q, verify, then double-book one slot.
	for _, iv := range hits {
		if _, err := set.Delete(iv); err != nil {
			log.Fatal(err)
		}
	}
	cnt, err := set.StabCount(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter cancelling them: stab(%d) = %d\n", q, cnt)

	nb := geom.Interval{Lo: q - 15, Hi: q + 45}
	if err := set.Insert(nb); err != nil {
		log.Fatal(err)
	}
	cnt, err = set.StabCount(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after booking %v: stab(%d) = %d\n", nb, q, cnt)

	if err := set.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("structural invariants: OK")
}
