package hier

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"rangesearch/internal/geom"
)

// Property: the hierarchical scheme answers any window query exactly, for
// arbitrary point sets and parameters, and its redundancy never exceeds
// 2·(levels)·(1 + 1/(α−1)) plus the leaf partition.
func TestQuickSchemeCorrect(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			n := rng.Intn(400)
			pts := make([]geom.Point, n)
			for i := range pts {
				pts[i] = geom.Point{X: rng.Int63n(96), Y: rng.Int63n(96)}
			}
			vals[0] = reflect.ValueOf(pts)
			vals[1] = reflect.ValueOf(2 + rng.Intn(6)) // B
			vals[2] = reflect.ValueOf(2 + rng.Intn(6)) // rho
			vals[3] = reflect.ValueOf(rng.Int63())
		},
	}
	err := quick.Check(func(pts []geom.Point, b, rho int, qseed int64) bool {
		s, err := Build(pts, b, rho, 2)
		if err != nil {
			return false
		}
		if len(pts) > 0 {
			// 2 sweep schemes (r ≤ 2 each at α=2) per level + leaf blocks,
			// plus per-set partial-block slack.
			sets := 0
			for lvl, cnt := 1, (len(pts)+rho*b-1)/(rho*b); ; lvl++ {
				sets += cnt
				if cnt <= 1 {
					break
				}
				cnt = (cnt + rho - 1) / rho
			}
			slack := float64(5*sets*b) / float64(len(pts))
			bound := float64(2*s.Levels())*2 + 1 + slack
			if s.Redundancy() > bound+1e-9 {
				return false
			}
		}
		rng := rand.New(rand.NewSource(qseed))
		for trial := 0; trial < 8; trial++ {
			a := rng.Int63n(100) - 2
			bb := a + rng.Int63n(100)
			c := rng.Int63n(100) - 2
			d := c + rng.Int63n(100)
			q := geom.Rect{XLo: a, XHi: bb, YLo: c, YHi: d}
			got, _ := s.Query4(nil, q)
			want := map[geom.Point]int{}
			for _, p := range pts {
				if q.Contains(p) {
					want[p]++
				}
			}
			gotCnt := map[geom.Point]int{}
			for _, p := range got {
				gotCnt[p]++
			}
			if len(gotCnt) != len(want) {
				return false
			}
			for p, c := range want {
				if gotCnt[p] != c {
					return false
				}
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}
