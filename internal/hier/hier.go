// Package hier implements the 4-sided indexing scheme of Section 2.2.2 of
// Arge, Samoladas & Vitter (PODS 1999), based on Chazelle's filtering
// technique: a ρ-ary hierarchy over the x-order of the points in which
// every set carries two 3-sided sweep schemes (one answering subqueries
// unbounded to the left, one unbounded to the right).
//
// With ⌈log_ρ n⌉ levels and two constant-redundancy schemes per level, the
// redundancy is r = O(log n / log ρ), and every 4-sided query is covered by
// O(ρ + t) blocks (Theorem 5) — matching the Section 2.1 lower bound.
//
// Orientation bookkeeping: the sweep scheme of internal/sweep answers
// top-open queries (y ≥ c). A subquery on an x-partial child is bounded on
// both y sides and one x side, so points are stored rotated:
//
//	right-open (x ≥ a):  (x, y) → (y, x);   query (c, d, a)
//	left-open  (x ≤ b):  (x, y) → (y, −x);  query (c, d, −b)
package hier

import (
	"fmt"
	"sort"

	"rangesearch/internal/geom"
	"rangesearch/internal/sweep"
)

// Scheme is a constructed 4-sided indexing scheme.
type Scheme struct {
	b, rho int
	alpha  int
	pts    []geom.Point // sorted by (x, y)
	root   *node
	levels int
	blocks int
}

type node struct {
	start, end int // covered range of Scheme.pts
	children   []*node
	right      *sweep.Scheme  // right-open: stored as (y, x)
	left       *sweep.Scheme  // left-open: stored as (y, −x)
	leafBlocks [][]geom.Point // x-partition into ≤ρ blocks; leaves only
}

// Build constructs the scheme with block size b ≥ 2, fan-out rho ≥ 2 and
// sweep coalescing parameter alpha ≥ 2. The input slice is not modified.
func Build(points []geom.Point, b, rho, alpha int) (*Scheme, error) {
	if b < 2 || rho < 2 || alpha < 2 {
		return nil, fmt.Errorf("hier: invalid parameters b=%d rho=%d alpha=%d", b, rho, alpha)
	}
	s := &Scheme{b: b, rho: rho, alpha: alpha}
	if len(points) == 0 {
		return s, nil
	}
	s.pts = make([]geom.Point, len(points))
	copy(s.pts, points)
	geom.SortByX(s.pts)

	// Level 0: leaves of ρ·B consecutive points.
	setSize := rho * b
	var level []*node
	for lo := 0; lo < len(s.pts); lo += setSize {
		hi := min(lo+setSize, len(s.pts))
		level = append(level, &node{start: lo, end: hi})
	}
	s.levels = 1
	// Upper levels: union ρ consecutive sets until one remains.
	for len(level) > 1 {
		var up []*node
		for lo := 0; lo < len(level); lo += rho {
			hi := min(lo+rho, len(level))
			kids := level[lo:hi]
			up = append(up, &node{
				start:    kids[0].start,
				end:      kids[len(kids)-1].end,
				children: append([]*node(nil), kids...),
			})
		}
		level = up
		s.levels++
	}
	s.root = level[0]
	if err := s.buildNode(s.root); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Scheme) buildNode(v *node) error {
	span := s.pts[v.start:v.end]
	rot := make([]geom.Point, len(span))
	for i, p := range span {
		rot[i] = rightRot(p)
	}
	var err error
	if v.right, err = sweep.Build(rot, s.b, s.alpha); err != nil {
		return fmt.Errorf("hier: right-open scheme: %w", err)
	}
	for i, p := range span {
		rot[i] = leftRot(p)
	}
	if v.left, err = sweep.Build(rot, s.b, s.alpha); err != nil {
		return fmt.Errorf("hier: left-open scheme: %w", err)
	}
	s.blocks += v.right.NumBlocks() + v.left.NumBlocks()
	if len(v.children) == 0 {
		// Leaf: keep the raw x-partition, loaded whole when a query's
		// x-interval falls entirely inside this set.
		for lo := v.start; lo < v.end; lo += s.b {
			hi := min(lo+s.b, v.end)
			v.leafBlocks = append(v.leafBlocks, s.pts[lo:hi])
			s.blocks++
		}
		return nil
	}
	for _, c := range v.children {
		if err := s.buildNode(c); err != nil {
			return err
		}
	}
	return nil
}

// rightRot maps a point for the right-open scheme; query (c,d,a) then
// selects y ∈ [c,d] ∧ x ≥ a.
func rightRot(p geom.Point) geom.Point { return geom.Point{X: p.Y, Y: p.X} }

func rightUnrot(p geom.Point) geom.Point { return geom.Point{X: p.Y, Y: p.X} }

// leftRot maps a point for the left-open scheme; query (c,d,−b) then
// selects y ∈ [c,d] ∧ x ≤ b.
func leftRot(p geom.Point) geom.Point { return geom.Point{X: p.Y, Y: -p.X} }

func leftUnrot(p geom.Point) geom.Point { return geom.Point{X: -p.Y, Y: p.X} }

// B returns the block size.
func (s *Scheme) B() int { return s.b }

// Rho returns the fan-out.
func (s *Scheme) Rho() int { return s.rho }

// Levels returns the number of levels in the hierarchy.
func (s *Scheme) Levels() int { return s.levels }

// BlockSize implements indexability.Scheme.
func (s *Scheme) BlockSize() int { return s.b }

// NumBlocks returns the total number of blocks across all levels.
func (s *Scheme) NumBlocks() int { return s.blocks }

// NumPoints returns N.
func (s *Scheme) NumPoints() int { return len(s.pts) }

// Redundancy returns r = B·|blocks|/N.
func (s *Scheme) Redundancy() float64 {
	if len(s.pts) == 0 {
		return 0
	}
	return float64(s.b*s.blocks) / float64(len(s.pts))
}

// cover accumulates the blocks answering q. Blocks from rotated schemes are
// mapped back to original coordinates.
func (s *Scheme) cover(q geom.Rect) [][]geom.Point {
	if s.root == nil || q.Empty() {
		return nil
	}
	// Index range of matching x-interval in the sorted point array.
	iLo := sort.Search(len(s.pts), func(i int) bool { return s.pts[i].X >= q.XLo })
	iHi := sort.Search(len(s.pts), func(i int) bool { return s.pts[i].X > q.XHi })
	if iLo >= iHi {
		return nil
	}
	// Descend to the lowest set containing [iLo, iHi).
	v := s.root
descend:
	for len(v.children) > 0 {
		for _, c := range v.children {
			if c.start <= iLo && iHi <= c.end {
				v = c
				continue descend
			}
		}
		break
	}
	if len(v.children) == 0 {
		// Leaf: load its raw blocks.
		return v.leafBlocks
	}
	var out [][]geom.Point
	for _, c := range v.children {
		if c.end <= iLo || c.start >= iHi {
			continue
		}
		switch {
		case c.start <= iLo && iHi <= c.end:
			// Cannot happen: we would have descended.
			panic("hier: unreachable full containment")
		case c.start <= iLo:
			// Leftmost partial child: bounded left at XLo, open right.
			out = appendCover(out, c.right, geom.Query3{XLo: q.YLo, XHi: q.YHi, YLo: q.XLo}, rightUnrot)
		case iHi <= c.end:
			// Rightmost partial child: bounded right at XHi, open left.
			out = appendCover(out, c.left, geom.Query3{XLo: q.YLo, XHi: q.YHi, YLo: negHi(q.XHi)}, leftUnrot)
		default:
			// Fully spanned: only the y-bounds matter.
			out = appendCover(out, c.right, geom.Query3{XLo: q.YLo, XHi: q.YHi, YLo: geom.MinCoord}, rightUnrot)
		}
	}
	return out
}

// negHi negates a right x-bound for the left-open transform, saturating so
// that −MaxCoord does not overflow into the MinCoord sentinel.
func negHi(b int64) int64 {
	if b == geom.MaxCoord {
		return geom.MinCoord
	}
	return -b
}

func appendCover(dst [][]geom.Point, sch *sweep.Scheme, q geom.Query3, unrot func(geom.Point) geom.Point) [][]geom.Point {
	for _, bi := range sch.CoverIndexes(q) {
		blk := sch.Blocks()[bi].Points
		orig := make([]geom.Point, len(blk))
		for i, p := range blk {
			orig[i] = unrot(p)
		}
		dst = append(dst, orig)
	}
	return dst
}

// Cover implements indexability.Scheme.
func (s *Scheme) Cover(q geom.Rect) ([][]geom.Point, error) { return s.cover(q), nil }

// Query4 returns all indexed points inside q, appended to dst, along with
// the number of blocks read.
func (s *Scheme) Query4(dst []geom.Point, q geom.Rect) ([]geom.Point, int) {
	cov := s.cover(q)
	for _, blk := range cov {
		dst = geom.Filter4(dst, blk, q)
	}
	return dst, len(cov)
}
