package hier

import (
	"math/rand"
	"testing"

	"rangesearch/internal/geom"
	"rangesearch/internal/indexability"
)

func randPoints(rng *rand.Rand, n int, coordRange int64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Int63n(coordRange), Y: rng.Int63n(coordRange)}
	}
	return pts
}

func brute4(pts []geom.Point, q geom.Rect) []geom.Point {
	var out []geom.Point
	for _, p := range pts {
		if q.Contains(p) {
			out = append(out, p)
		}
	}
	geom.SortByX(out)
	return out
}

func TestQuery4CorrectnessRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{0, 1, 10, 200, 1500} {
		for _, rho := range []int{2, 4, 8} {
			pts := randPoints(rng, n, 800)
			s, err := Build(pts, 8, rho, 2)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 60; trial++ {
				a := rng.Int63n(800)
				b := a + rng.Int63n(800-a+1)
				c := rng.Int63n(800)
				d := c + rng.Int63n(800-c+1)
				q := geom.Rect{XLo: a, XHi: b, YLo: c, YHi: d}
				got, _ := s.Query4(nil, q)
				geom.SortByX(got)
				want := brute4(pts, q)
				if len(got) != len(want) {
					t.Fatalf("n=%d rho=%d query %v: got %d points want %d", n, rho, q, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("n=%d rho=%d query %v: point %d mismatch", n, rho, q, i)
					}
				}
			}
		}
	}
}

func TestQuery4FullAndEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pts := randPoints(rng, 300, 100)
	s, err := Build(pts, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := s.Query4(nil, geom.Rect{XLo: geom.MinCoord, XHi: geom.MaxCoord, YLo: geom.MinCoord, YHi: geom.MaxCoord})
	if len(got) != len(pts) {
		t.Fatalf("full query: %d of %d points", len(got), len(pts))
	}
	got, nb := s.Query4(nil, geom.Rect{XLo: 500, XHi: 600, YLo: 0, YHi: 100})
	if len(got) != 0 || nb != 0 {
		t.Fatalf("out-of-range query returned %d points, %d blocks", len(got), nb)
	}
}

func TestRedundancyScalesWithRho(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randPoints(rng, 4096, 1<<20)
	var prev float64 = 1e18
	for _, rho := range []int{2, 4, 16} {
		s, err := Build(pts, 8, rho, 3)
		if err != nil {
			t.Fatal(err)
		}
		r := s.Redundancy()
		if r >= prev {
			t.Errorf("rho=%d: redundancy %.2f did not drop from %.2f", rho, r, prev)
		}
		prev = r
	}
}

// TestTheorem5CoverBound checks that every query is covered by O(ρ + t)
// blocks, with the constant implied by the construction: partial children
// cost ≤ α²t+α+1 blocks each, spanned children ≤ ρ−2 base costs plus
// output-proportional blocks.
func TestTheorem5CoverBound(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pts := randPoints(rng, 3000, 5000)
	b, rho, alpha := 8, 4, 2
	s, err := Build(pts, b, rho, alpha)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		a := rng.Int63n(5000)
		bb := a + rng.Int63n(5000-a+1)
		c := rng.Int63n(5000)
		d := c + rng.Int63n(5000-c+1)
		q := geom.Rect{XLo: a, XHi: bb, YLo: c, YHi: d}
		got, k := s.Query4(nil, q)
		tb := (len(got) + b - 1) / b
		limit := alpha*alpha*tb + rho*(alpha+1) + rho
		if k > limit {
			t.Errorf("query %v: %d blocks for t=%d (limit %d)", q, k, tb, limit)
		}
	}
}

func TestImplementsIndexabilityScheme(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	pts := randPoints(rng, 500, 400)
	s, err := Build(pts, 8, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	w := &indexability.Workload{Points: pts}
	for trial := 0; trial < 40; trial++ {
		a := rng.Int63n(400)
		b := a + rng.Int63n(400-a+1)
		c := rng.Int63n(400)
		d := c + rng.Int63n(400-c+1)
		w.Queries = append(w.Queries, geom.Rect{XLo: a, XHi: b, YLo: c, YHi: d})
	}
	rep, err := indexability.MeasureAccess(s, w)
	if err != nil {
		t.Fatalf("cover verification failed: %v", err)
	}
	if rep.Queries != len(w.Queries) {
		t.Fatalf("measured %d of %d queries", rep.Queries, len(w.Queries))
	}
}
