// Package interval implements dynamic interval management — the motivating
// application of Kannan et al. discussed in Section 1 of Arge, Samoladas &
// Vitter (PODS 1999): maintain a set of intervals on the line under
// insertions and deletions, answering stabbing queries ("which intervals
// contain q?") I/O-optimally.
//
// It uses the paper's own reduction: an interval [lo, hi] is the planar
// point (lo, hi), and a stabbing query at q is the diagonal-corner query
// with corner (q, q) — the 2-sided special case x ≤ q ∧ y ≥ q of 3-sided
// range searching (Figure 1(a)). The external priority search tree of
// internal/epst answers those queries in O(log_B N + t) I/Os with
// O(log_B N) updates and linear space — the same bounds as the external
// interval tree of Arge & Vitter that Section 4 of the paper cites, with
// the machinery the paper itself builds.
package interval

import (
	"errors"
	"fmt"

	"rangesearch/internal/eio"
	"rangesearch/internal/epst"
	"rangesearch/internal/geom"
)

// ErrDuplicate reports insertion of an interval already present.
var ErrDuplicate = errors.New("interval: duplicate interval")

// ErrInvalid reports an interval with Lo > Hi or sentinel endpoints.
var ErrInvalid = errors.New("interval: invalid interval")

// Set is a dynamic set of closed intervals supporting stabbing queries.
type Set struct {
	t *epst.Tree
}

// Create makes an empty set on store.
func Create(store eio.Store, opts epst.Options) (*Set, error) {
	t, err := epst.Create(store, opts)
	if err != nil {
		return nil, err
	}
	return &Set{t: t}, nil
}

// Build bulk-loads a set from ivs (distinct valid intervals).
func Build(store eio.Store, opts epst.Options, ivs []geom.Interval) (*Set, error) {
	pts := make([]geom.Point, len(ivs))
	for i, iv := range ivs {
		if err := validate(iv); err != nil {
			return nil, err
		}
		pts[i] = iv.Point()
	}
	t, err := epst.Build(store, opts, pts)
	if err != nil {
		if errors.Is(err, epst.ErrDuplicate) {
			return nil, fmt.Errorf("interval: %w", ErrDuplicate)
		}
		return nil, err
	}
	return &Set{t: t}, nil
}

// Open re-attaches to a set previously created on store.
func Open(store eio.Store, hdr eio.PageID, alpha int) (*Set, error) {
	t, err := epst.Open(store, hdr, alpha)
	if err != nil {
		return nil, err
	}
	return &Set{t: t}, nil
}

// HeaderID identifies the set on its store.
func (s *Set) HeaderID() eio.PageID { return s.t.HeaderID() }

func validate(iv geom.Interval) error {
	if !iv.Valid() || iv.Lo == geom.MinCoord || iv.Hi == geom.MaxCoord {
		return fmt.Errorf("interval: %v: %w", iv, ErrInvalid)
	}
	return nil
}

// Insert adds iv. It returns ErrDuplicate if iv is already present.
func (s *Set) Insert(iv geom.Interval) error {
	if err := validate(iv); err != nil {
		return err
	}
	if err := s.t.Insert(iv.Point()); err != nil {
		if errors.Is(err, epst.ErrDuplicate) {
			return fmt.Errorf("interval: insert %v: %w", iv, ErrDuplicate)
		}
		return err
	}
	return nil
}

// Delete removes iv, reporting whether it was present.
func (s *Set) Delete(iv geom.Interval) (bool, error) {
	if err := validate(iv); err != nil {
		return false, err
	}
	return s.t.Delete(iv.Point())
}

// Stab appends to dst every interval containing q and returns the extended
// slice. Cost: O(log_B N + t) I/Os.
func (s *Set) Stab(dst []geom.Interval, q int64) ([]geom.Interval, error) {
	pts, err := s.t.Query3(nil, geom.DiagonalCorner(q))
	if err != nil {
		return dst, err
	}
	for _, p := range pts {
		dst = append(dst, geom.IntervalFromPoint(p))
	}
	return dst, nil
}

// StabCount returns the number of intervals containing q.
func (s *Set) StabCount(q int64) (int, error) {
	ivs, err := s.Stab(nil, q)
	return len(ivs), err
}

// Contains reports whether iv is in the set.
func (s *Set) Contains(iv geom.Interval) (bool, error) {
	if err := validate(iv); err != nil {
		return false, err
	}
	return s.t.Contains(iv.Point())
}

// Len returns the number of stored intervals.
func (s *Set) Len() (int, error) { return s.t.Len() }

// Destroy frees all storage owned by the set.
func (s *Set) Destroy() error { return s.t.Destroy() }

// CheckInvariants audits the underlying priority search tree.
func (s *Set) CheckInvariants() error { return s.t.CheckInvariants() }
