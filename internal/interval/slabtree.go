package interval

import (
	"encoding/binary"
	"fmt"
	"sort"

	"rangesearch/internal/eio"
	"rangesearch/internal/geom"
	"rangesearch/internal/smallstruct"
)

// SlabTree is the external interval tree of Arge & Vitter — the structure
// Section 4 of the paper cites for stabbing queries — in its static,
// bulk-built form: a fan-out-√B base tree over the (multiset of) interval
// endpoints in which every interval is stored at the highest node where it
// crosses a slab boundary:
//
//   - in the *left slab list* L_i of the slab holding its left endpoint,
//     sorted ascending by left endpoint (a stab in slab i reports the
//     prefix with lo ≤ q);
//   - in the *right slab list* R_j of the slab holding its right endpoint,
//     sorted descending by right endpoint (prefix with hi ≥ q);
//   - and, when it completely spans slabs i+1..j−1, in the *multislab
//     list* M_{i,j} — unless that multislab holds fewer than B/2
//     intervals, in which case the interval is stored only in the node's
//     *underflow structure*: a Lemma-1 small structure queried through the
//     stabbing ≡ diagonal-corner reduction. The underflow structure holds
//     at most √B·(√B−1)/2 · B/2 < B²/4 intervals, within its Θ(B²) design
//     point — the same reuse of the Section 2 indexing scheme that the
//     paper's own data structures make.
//
// A stabbing query descends one root-to-leaf path; at each node it scans
// two list prefixes, the whole of every spanned multislab (each ≥ B/2
// intervals, so paid for by output), and the underflow structure:
// O(log_B N + t) I/Os in total. Every interval is reported exactly once.
//
// SlabTree is immutable after Build; the dynamic Set (diagonal-corner
// priority search tree) is the updatable implementation. The benchmark
// suite compares the two on identical workloads.
type SlabTree struct {
	store eio.Store
	rs    *eio.RecordStore
	root  eio.PageID
	b     int
	s     int // fan-out
	n     int
}

// slabNode is the decoded form of a slab-tree node.
type slabNode struct {
	leaf     bool
	seps     []int64      // s-1 separators; slab i = (seps[i-1], seps[i]]
	children []eio.PageID // s children (internal nodes only)
	// Leaf payload.
	leafIvs []geom.Interval
	// Internal payload, per slab.
	left  []blockList // L_i ascending by lo
	right []blockList // R_j descending by hi
	multi []multiList
	under eio.PageID // smallstruct catalog (NilPage if empty)
}

// blockList is a sequence of point-block pages holding intervals (as
// (lo, hi) points) in list order.
type blockList struct {
	pages []eio.PageID
	count int
}

type multiList struct {
	i, j int
	list blockList
}

// BuildSlabTree bulk-builds a static slab tree over ivs (distinct, valid).
func BuildSlabTree(store eio.Store, ivs []geom.Interval) (*SlabTree, error) {
	b := eio.BlockCapacity(store.PageSize())
	if b < 4 {
		return nil, fmt.Errorf("interval: page size %d too small for a slab tree", store.PageSize())
	}
	s := 2
	for (s+1)*(s+1) <= b {
		s++
	}
	t := &SlabTree{store: store, rs: eio.NewRecordStore(store), b: b, s: s, n: len(ivs)}
	seen := make(map[geom.Interval]bool, len(ivs))
	for _, iv := range ivs {
		if err := validate(iv); err != nil {
			return nil, err
		}
		if seen[iv] {
			return nil, fmt.Errorf("interval: %v: %w", iv, ErrDuplicate)
		}
		seen[iv] = true
	}
	// Endpoint multiset, sorted.
	endpoints := make([]int64, 0, 2*len(ivs))
	for _, iv := range ivs {
		endpoints = append(endpoints, iv.Lo, iv.Hi)
	}
	sort.Slice(endpoints, func(i, j int) bool { return endpoints[i] < endpoints[j] })
	sorted := append([]geom.Interval(nil), ivs...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Lo != sorted[j].Lo {
			return sorted[i].Lo < sorted[j].Lo
		}
		return sorted[i].Hi < sorted[j].Hi
	})
	root, err := t.build(endpoints, sorted)
	if err != nil {
		return nil, err
	}
	t.root = root
	return t, nil
}

// build writes the subtree over the given endpoint multiset and the
// intervals assigned below this node, returning the node's record id.
func (t *SlabTree) build(endpoints []int64, ivs []geom.Interval) (eio.PageID, error) {
	if len(endpoints) <= t.b {
		// Leaf: at most B endpoint occurrences ⇒ at most B/2 intervals.
		n := &slabNode{leaf: true, leafIvs: ivs}
		return t.writeNode(n)
	}
	// Choose s−1 separators at equal endpoint-count positions, skipping
	// duplicates. A separator equal to the maximum endpoint would leave
	// the last slab empty and stall the recursion under heavy value
	// duplication, so separators must be strictly below the maximum —
	// then every slab receives strictly fewer endpoints than the node.
	n := &slabNode{}
	maxEnd := endpoints[len(endpoints)-1]
	for i := 1; i < t.s; i++ {
		sep := endpoints[i*len(endpoints)/t.s]
		if sep >= maxEnd {
			continue
		}
		if len(n.seps) == 0 || sep > n.seps[len(n.seps)-1] {
			n.seps = append(n.seps, sep)
		}
	}
	if len(n.seps) == 0 {
		// All endpoints equal: nothing can cross; make a leaf.
		n.leaf = true
		n.leafIvs = ivs
		return t.writeNode(n)
	}
	nslabs := len(n.seps) + 1

	// Partition: crossing intervals stay here, others go to their slab.
	childIvs := make([][]geom.Interval, nslabs)
	childEnds := make([][]int64, nslabs)
	for _, e := range endpoints {
		childEnds[t.slabOf(n, e)] = append(childEnds[t.slabOf(n, e)], e)
	}
	type slabbed struct {
		iv   geom.Interval
		i, j int
	}
	var here []slabbed
	for _, iv := range ivs {
		i := t.slabOf(n, iv.Lo)
		j := t.slabOf(n, iv.Hi)
		if i == j {
			childIvs[i] = append(childIvs[i], iv)
			continue
		}
		here = append(here, slabbed{iv, i, j})
	}

	// Group crossing intervals into multislabs and the underflow set.
	bySpan := map[[2]int][]geom.Interval{}
	for _, sb := range here {
		if sb.j >= sb.i+2 {
			key := [2]int{sb.i, sb.j}
			bySpan[key] = append(bySpan[key], sb.iv)
		}
	}
	var underIvs []geom.Interval
	small := map[[2]int]bool{}
	for key, list := range bySpan {
		if len(list) < t.b/2 {
			small[key] = true
			underIvs = append(underIvs, list...)
		}
	}

	// Left/right lists per slab (excluding underflow intervals).
	lefts := make([][]geom.Interval, nslabs)
	rights := make([][]geom.Interval, nslabs)
	for _, sb := range here {
		if sb.j >= sb.i+2 && small[[2]int{sb.i, sb.j}] {
			continue // stored only in the underflow structure
		}
		lefts[sb.i] = append(lefts[sb.i], sb.iv)
		rights[sb.j] = append(rights[sb.j], sb.iv)
	}
	n.left = make([]blockList, nslabs)
	n.right = make([]blockList, nslabs)
	for i := 0; i < nslabs; i++ {
		sort.Slice(lefts[i], func(a, b int) bool { return lefts[i][a].Lo < lefts[i][b].Lo })
		sort.Slice(rights[i], func(a, b int) bool { return rights[i][a].Hi > rights[i][b].Hi })
		var err error
		if n.left[i], err = t.writeList(lefts[i]); err != nil {
			return eio.NilPage, err
		}
		if n.right[i], err = t.writeList(rights[i]); err != nil {
			return eio.NilPage, err
		}
	}
	// Multislab lists (the large ones).
	keys := make([][2]int, 0, len(bySpan))
	for key := range bySpan {
		if !small[key] {
			keys = append(keys, key)
		}
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	for _, key := range keys {
		bl, err := t.writeList(bySpan[key])
		if err != nil {
			return eio.NilPage, err
		}
		n.multi = append(n.multi, multiList{i: key[0], j: key[1], list: bl})
	}
	// Underflow structure.
	if len(underIvs) > 0 {
		pts := make([]geom.Point, len(underIvs))
		for i, iv := range underIvs {
			pts[i] = iv.Point()
		}
		us, err := smallstruct.Create(t.store, 0, pts)
		if err != nil {
			return eio.NilPage, err
		}
		n.under = us.CatalogID()
	}

	// Children.
	n.children = make([]eio.PageID, nslabs)
	for i := 0; i < nslabs; i++ {
		id, err := t.build(childEnds[i], childIvs[i])
		if err != nil {
			return eio.NilPage, err
		}
		n.children[i] = id
	}
	return t.writeNode(n)
}

// slabOf returns the slab index of value v at node n:
// slab i covers (seps[i-1], seps[i]], the last slab is open above.
func (t *SlabTree) slabOf(n *slabNode, v int64) int {
	for i, sep := range n.seps {
		if v <= sep {
			return i
		}
	}
	return len(n.seps)
}

// writeList packs intervals into point-block pages in order.
func (t *SlabTree) writeList(ivs []geom.Interval) (blockList, error) {
	bl := blockList{count: len(ivs)}
	for lo := 0; lo < len(ivs); lo += t.b {
		hi := min(lo+t.b, len(ivs))
		pts := make([]geom.Point, hi-lo)
		for i := lo; i < hi; i++ {
			pts[i-lo] = ivs[i].Point()
		}
		id, err := eio.WritePointBlock(t.store, eio.NilPage, pts)
		if err != nil {
			return bl, err
		}
		bl.pages = append(bl.pages, id)
	}
	return bl, nil
}

// readListPage reads page k of bl, returning its intervals.
func (t *SlabTree) readListPage(bl blockList, k int) ([]geom.Interval, error) {
	cnt := t.b
	if k == len(bl.pages)-1 {
		cnt = bl.count - k*t.b
	}
	pts, err := eio.ReadPointBlock(nil, t.store, bl.pages[k], cnt)
	if err != nil {
		return nil, err
	}
	out := make([]geom.Interval, len(pts))
	for i, p := range pts {
		out[i] = geom.IntervalFromPoint(p)
	}
	return out, nil
}

// Stab appends every interval containing q to dst.
func (t *SlabTree) Stab(dst []geom.Interval, q int64) ([]geom.Interval, error) {
	return t.stab(t.root, dst, q)
}

func (t *SlabTree) stab(id eio.PageID, dst []geom.Interval, q int64) ([]geom.Interval, error) {
	n, err := t.readNode(id)
	if err != nil {
		return dst, err
	}
	if n.leaf {
		for _, iv := range n.leafIvs {
			if iv.Contains(q) {
				dst = append(dst, iv)
			}
		}
		return dst, nil
	}
	k := t.slabOf(n, q)
	// Left list of q's slab: ascending by lo, prefix with lo ≤ q.
	for pg := 0; pg < len(n.left[k].pages); pg++ {
		ivs, err := t.readListPage(n.left[k], pg)
		if err != nil {
			return dst, err
		}
		stop := false
		for _, iv := range ivs {
			if iv.Lo > q {
				stop = true
				break
			}
			if iv.Contains(q) { // guards the k == i boundary case
				dst = append(dst, iv)
			}
		}
		if stop {
			break
		}
	}
	// Right list: descending by hi, prefix with hi ≥ q.
	for pg := 0; pg < len(n.right[k].pages); pg++ {
		ivs, err := t.readListPage(n.right[k], pg)
		if err != nil {
			return dst, err
		}
		stop := false
		for _, iv := range ivs {
			if iv.Hi < q {
				stop = true
				break
			}
			if iv.Contains(q) {
				dst = append(dst, iv)
			}
		}
		if stop {
			break
		}
	}
	// Spanning multislabs: fully reported.
	for _, m := range n.multi {
		if m.i < k && k < m.j {
			for pg := 0; pg < len(m.list.pages); pg++ {
				ivs, err := t.readListPage(m.list, pg)
				if err != nil {
					return dst, err
				}
				dst = append(dst, ivs...)
			}
		}
	}
	// Underflow structure: stabbing is the diagonal-corner query.
	if n.under != eio.NilPage {
		us, err := smallstruct.Open(t.store, n.under, 0)
		if err != nil {
			return dst, err
		}
		pts, err := us.Query3(nil, geom.DiagonalCorner(q))
		if err != nil {
			return dst, err
		}
		for _, p := range pts {
			dst = append(dst, geom.IntervalFromPoint(p))
		}
	}
	return t.stab(n.children[k], dst, q)
}

// Len returns the number of stored intervals.
func (t *SlabTree) Len() int { return t.n }

// Fanout returns the slab fan-out √B.
func (t *SlabTree) Fanout() int { return t.s }

// Destroy frees all storage owned by the tree.
func (t *SlabTree) Destroy() error { return t.free(t.root) }

func (t *SlabTree) free(id eio.PageID) error {
	n, err := t.readNode(id)
	if err != nil {
		return err
	}
	if !n.leaf {
		freeList := func(bl blockList) error {
			for _, pg := range bl.pages {
				if err := t.store.Free(pg); err != nil {
					return err
				}
			}
			return nil
		}
		for i := range n.left {
			if err := freeList(n.left[i]); err != nil {
				return err
			}
			if err := freeList(n.right[i]); err != nil {
				return err
			}
		}
		for _, m := range n.multi {
			if err := freeList(m.list); err != nil {
				return err
			}
		}
		if n.under != eio.NilPage {
			us, err := smallstruct.Open(t.store, n.under, 0)
			if err != nil {
				return err
			}
			if err := us.Destroy(); err != nil {
				return err
			}
		}
		for _, c := range n.children {
			if err := t.free(c); err != nil {
				return err
			}
		}
	}
	return t.rs.Delete(id)
}

// --- serialization ---

func (t *SlabTree) writeNode(n *slabNode) (eio.PageID, error) {
	return t.rs.Put(encodeSlabNode(n))
}

func (t *SlabTree) readNode(id eio.PageID) (*slabNode, error) {
	raw, err := t.rs.Get(id)
	if err != nil {
		return nil, fmt.Errorf("interval: read slab node: %w", err)
	}
	return decodeSlabNode(raw)
}

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func encodeBlockList(out []byte, bl blockList) []byte {
	out = appendU32(out, uint32(bl.count))
	out = appendU32(out, uint32(len(bl.pages)))
	for _, p := range bl.pages {
		out = appendU64(out, uint64(p))
	}
	return out
}

func encodeSlabNode(n *slabNode) []byte {
	var out []byte
	if n.leaf {
		out = appendU32(out, 1)
		out = appendU32(out, uint32(len(n.leafIvs)))
		for _, iv := range n.leafIvs {
			out = appendU64(out, uint64(iv.Lo))
			out = appendU64(out, uint64(iv.Hi))
		}
		return out
	}
	out = appendU32(out, 0)
	out = appendU32(out, uint32(len(n.seps)))
	for _, s := range n.seps {
		out = appendU64(out, uint64(s))
	}
	for _, c := range n.children {
		out = appendU64(out, uint64(c))
	}
	for i := range n.left {
		out = encodeBlockList(out, n.left[i])
		out = encodeBlockList(out, n.right[i])
	}
	out = appendU32(out, uint32(len(n.multi)))
	for _, m := range n.multi {
		out = appendU32(out, uint32(m.i))
		out = appendU32(out, uint32(m.j))
		out = encodeBlockList(out, m.list)
	}
	out = appendU64(out, uint64(n.under))
	return out
}

type slabDecoder struct {
	raw []byte
	off int
	err error
}

func (d *slabDecoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.raw) {
		d.err = fmt.Errorf("interval: truncated slab node")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.raw[d.off:])
	d.off += 4
	return v
}

func (d *slabDecoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.raw) {
		d.err = fmt.Errorf("interval: truncated slab node")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.raw[d.off:])
	d.off += 8
	return v
}

func (d *slabDecoder) blockList() blockList {
	bl := blockList{count: int(d.u32())}
	np := int(d.u32())
	for i := 0; i < np && d.err == nil; i++ {
		bl.pages = append(bl.pages, eio.PageID(d.u64()))
	}
	return bl
}

func decodeSlabNode(raw []byte) (*slabNode, error) {
	d := &slabDecoder{raw: raw}
	n := &slabNode{}
	if d.u32() == 1 {
		n.leaf = true
		cnt := int(d.u32())
		for i := 0; i < cnt && d.err == nil; i++ {
			n.leafIvs = append(n.leafIvs, geom.Interval{Lo: int64(d.u64()), Hi: int64(d.u64())})
		}
		return n, d.err
	}
	nseps := int(d.u32())
	for i := 0; i < nseps && d.err == nil; i++ {
		n.seps = append(n.seps, int64(d.u64()))
	}
	nslabs := nseps + 1
	for i := 0; i < nslabs && d.err == nil; i++ {
		n.children = append(n.children, eio.PageID(d.u64()))
	}
	for i := 0; i < nslabs && d.err == nil; i++ {
		n.left = append(n.left, d.blockList())
		n.right = append(n.right, d.blockList())
	}
	nm := int(d.u32())
	for i := 0; i < nm && d.err == nil; i++ {
		m := multiList{i: int(d.u32()), j: int(d.u32())}
		m.list = d.blockList()
		n.multi = append(n.multi, m)
	}
	n.under = eio.PageID(d.u64())
	return n, d.err
}
