package interval

import (
	"rangesearch/internal/eio"
	"rangesearch/internal/geom"
)

// AppendAllPages appends every page the set owns to dst and returns the
// extended slice, delegating to the underlying priority search tree. It is
// the set's contribution to the reachability set consumed by eio.FindLeaks
// and eio.Scrub.
func (s *Set) AppendAllPages(dst []eio.PageID) ([]eio.PageID, error) {
	return s.t.AppendAllPages(dst)
}

// All returns every stored interval (unordered).
func (s *Set) All() ([]geom.Interval, error) {
	pts, err := s.t.All()
	if err != nil {
		return nil, err
	}
	ivs := make([]geom.Interval, len(pts))
	for i, p := range pts {
		ivs[i] = geom.IntervalFromPoint(p)
	}
	return ivs, nil
}
