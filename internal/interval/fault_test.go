package interval

import (
	"math/rand"
	"testing"

	"rangesearch/internal/eio"
	"rangesearch/internal/eio/eiotest"
	"rangesearch/internal/epst"
)

// TestFaultSweep fails every store operation of a build/insert/delete/stab
// workload in turn and asserts the interval set surfaces the injected
// error, never panics, and stays queryable afterwards.
func TestFaultSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("fault sweep re-runs the workload per operation")
	}
	rng := rand.New(rand.NewSource(23))
	ivs := randIntervals(rng, 60, 1000)
	base, extra := ivs[:48], ivs[48:]

	eiotest.Sweep(t, eiotest.Workload{
		Name:     "interval",
		PageSize: 128,
		Strict:   true,
		Run: func(st eio.Store) (func() error, error) {
			s, err := Build(st, epst.Options{A: 2, K: 4}, base)
			if err != nil {
				return nil, err
			}
			check := func() error {
				if _, err := s.Len(); err != nil {
					return err
				}
				_, err := s.Stab(nil, 500)
				return err
			}
			for _, iv := range extra {
				if err := s.Insert(iv); err != nil {
					return check, err
				}
			}
			for _, iv := range base[:10] {
				if _, err := s.Delete(iv); err != nil {
					return check, err
				}
			}
			for _, q := range []int64{0, 250, 500, 750, 999} {
				if _, err := s.StabCount(q); err != nil {
					return check, err
				}
			}
			return check, nil
		},
	})
}
