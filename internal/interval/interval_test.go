package interval

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"rangesearch/internal/eio"
	"rangesearch/internal/epst"
	"rangesearch/internal/geom"
)

func randIntervals(rng *rand.Rand, n int, coordRange int64) []geom.Interval {
	seen := map[geom.Interval]bool{}
	var out []geom.Interval
	for len(out) < n {
		a, b := rng.Int63n(coordRange), rng.Int63n(coordRange)
		if a > b {
			a, b = b, a
		}
		iv := geom.Interval{Lo: a, Hi: b}
		if !seen[iv] {
			seen[iv] = true
			out = append(out, iv)
		}
	}
	return out
}

func sortIvs(ivs []geom.Interval) {
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].Lo != ivs[j].Lo {
			return ivs[i].Lo < ivs[j].Lo
		}
		return ivs[i].Hi < ivs[j].Hi
	})
}

func TestStabAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	store := eio.NewMemStore(128)
	ivs := randIntervals(rng, 500, 1000)
	s, err := Build(store, epst.Options{A: 2, K: 4}, ivs)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		q := rng.Int63n(1100) - 50
		got, err := s.Stab(nil, q)
		if err != nil {
			t.Fatal(err)
		}
		var want []geom.Interval
		for _, iv := range ivs {
			if iv.Contains(q) {
				want = append(want, iv)
			}
		}
		sortIvs(got)
		sortIvs(want)
		if len(got) != len(want) {
			t.Fatalf("stab %d: got %d want %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("stab %d: item %d differs", q, i)
			}
		}
	}
}

func TestDynamicStab(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	store := eio.NewMemStore(128)
	s, err := Create(store, epst.Options{A: 2, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	model := map[geom.Interval]bool{}
	universe := randIntervals(rng, 300, 500)
	for op := 0; op < 2500; op++ {
		iv := universe[rng.Intn(len(universe))]
		if rng.Intn(3) != 0 {
			err := s.Insert(iv)
			if model[iv] {
				if !errors.Is(err, ErrDuplicate) {
					t.Fatalf("op %d: duplicate insert: %v", op, err)
				}
			} else if err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			model[iv] = true
		} else {
			found, err := s.Delete(iv)
			if err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			if found != model[iv] {
				t.Fatalf("op %d: delete found=%v want=%v", op, found, model[iv])
			}
			delete(model, iv)
		}
		if op%97 == 0 {
			q := rng.Int63n(500)
			cnt, err := s.StabCount(q)
			if err != nil {
				t.Fatal(err)
			}
			want := 0
			for iv := range model {
				if iv.Contains(q) {
					want++
				}
			}
			if cnt != want {
				t.Fatalf("op %d: stab %d count %d want %d", op, q, cnt, want)
			}
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	n, err := s.Len()
	if err != nil || n != len(model) {
		t.Fatalf("Len = %d want %d (%v)", n, len(model), err)
	}
}

func TestValidation(t *testing.T) {
	store := eio.NewMemStore(128)
	s, err := Create(store, epst.Options{A: 2, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(geom.Interval{Lo: 5, Hi: 3}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("inverted interval: %v", err)
	}
	if err := s.Insert(geom.Interval{Lo: geom.MinCoord, Hi: 3}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("sentinel Lo: %v", err)
	}
	if err := s.Insert(geom.Interval{Lo: 0, Hi: geom.MaxCoord}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("sentinel Hi: %v", err)
	}
	if _, err := Build(store, epst.Options{A: 2, K: 4}, []geom.Interval{{Lo: 1, Hi: 2}, {Lo: 1, Hi: 2}}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate build: %v", err)
	}
}

func TestContainsAndBoundaries(t *testing.T) {
	store := eio.NewMemStore(128)
	s, err := Create(store, epst.Options{A: 2, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	iv := geom.Interval{Lo: 10, Hi: 20}
	if err := s.Insert(iv); err != nil {
		t.Fatal(err)
	}
	ok, err := s.Contains(iv)
	if err != nil || !ok {
		t.Fatalf("Contains = %v, %v", ok, err)
	}
	// Closed-boundary stabbing.
	for _, q := range []int64{10, 20, 15} {
		cnt, err := s.StabCount(q)
		if err != nil || cnt != 1 {
			t.Fatalf("stab %d: %d, %v", q, cnt, err)
		}
	}
	for _, q := range []int64{9, 21} {
		cnt, err := s.StabCount(q)
		if err != nil || cnt != 0 {
			t.Fatalf("stab %d: %d, %v", q, cnt, err)
		}
	}
	// Point intervals.
	if err := s.Insert(geom.Interval{Lo: 15, Hi: 15}); err != nil {
		t.Fatal(err)
	}
	cnt, err := s.StabCount(15)
	if err != nil || cnt != 2 {
		t.Fatalf("stab 15 after point interval: %d, %v", cnt, err)
	}
}

func TestOpenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	store := eio.NewMemStore(128)
	ivs := randIntervals(rng, 100, 300)
	s, err := Build(store, epst.Options{A: 2, K: 4}, ivs)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(store, s.HeaderID(), 0)
	if err != nil {
		t.Fatal(err)
	}
	n, err := s2.Len()
	if err != nil || n != len(ivs) {
		t.Fatalf("reopened Len = %d, %v", n, err)
	}
	if err := s2.Destroy(); err != nil {
		t.Fatal(err)
	}
	if got := store.Pages(); got != 0 {
		t.Fatalf("%d pages leaked", got)
	}
}

// TestStabIOBound: stabbing cost O(log_B N + t) in real page reads.
func TestStabIOBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	store := eio.NewMemStore(256) // B = 16
	ivs := randIntervals(rng, 10000, 1<<30)
	s, err := Build(store, epst.Options{}, ivs)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 40; trial++ {
		q := rng.Int63n(1 << 30)
		store.ResetStats()
		got, err := s.Stab(nil, q)
		if err != nil {
			t.Fatal(err)
		}
		reads := int(store.Stats().Reads)
		tb := (len(got) + 15) / 16
		if limit := 150 + 40*tb; reads > limit {
			t.Errorf("stab %d: %d reads for t=%d", q, reads, tb)
		}
	}
}
