package interval_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"rangesearch/internal/eio"
	"rangesearch/internal/eio/eiotest"
	"rangesearch/internal/epst"
	"rangesearch/internal/geom"
	"rangesearch/internal/interval"
)

func sweepIntervals() []geom.Interval {
	var ivs []geom.Interval
	for i := 0; i < 25; i++ {
		lo := int64(i * 13 % 97)
		ivs = append(ivs, geom.Interval{Lo: lo, Hi: lo + int64(i%7)*10 + 1})
	}
	return ivs
}

func intervalState(st eio.Store, hdr eio.PageID) (string, error) {
	s, err := interval.Open(st, hdr, 0)
	if err != nil {
		return "", err
	}
	if err := s.CheckInvariants(); err != nil {
		return "", err
	}
	ivs, err := s.All()
	if err != nil {
		return "", err
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].Lo != ivs[j].Lo {
			return ivs[i].Lo < ivs[j].Lo
		}
		return ivs[i].Hi < ivs[j].Hi
	})
	var b strings.Builder
	for _, iv := range ivs {
		fmt.Fprintf(&b, "[%d,%d];", iv.Lo, iv.Hi)
	}
	return b.String(), nil
}

func intervalReachable(st eio.Store, hdr eio.PageID) ([]eio.PageID, error) {
	s, err := interval.Open(st, hdr, 0)
	if err != nil {
		return nil, err
	}
	return s.AppendAllPages(nil)
}

// TestRecoverySweep crashes a stabbing-set insert and delete at every
// mutating backing-store operation, asserting before-or-after atomicity of
// the interval set under WAL recovery plus a leak-free scrub.
func TestRecoverySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery sweep in -short mode")
	}
	build := func(st eio.Store) (eio.PageID, error) {
		s, err := interval.Build(st, epst.Options{}, sweepIntervals())
		if err != nil {
			return eio.NilPage, err
		}
		return s.HeaderID(), nil
	}
	eiotest.RecoverySweep(t, eiotest.RecoveryWorkload{
		Name:     "interval-insert",
		PageSize: 128,
		WALPages: 512,
		Build:    build,
		Op: func(st eio.Store, hdr eio.PageID) error {
			s, err := interval.Open(st, hdr, 0)
			if err != nil {
				return err
			}
			return s.Insert(geom.Interval{Lo: 40, Hi: 2000})
		},
		State:     intervalState,
		Reachable: intervalReachable,
		MaxRuns:   60,
	})
	eiotest.RecoverySweep(t, eiotest.RecoveryWorkload{
		Name:     "interval-delete",
		PageSize: 128,
		WALPages: 512,
		Build:    build,
		Op: func(st eio.Store, hdr eio.PageID) error {
			s, err := interval.Open(st, hdr, 0)
			if err != nil {
				return err
			}
			found, err := s.Delete(sweepIntervals()[9])
			if err == nil && !found {
				return fmt.Errorf("delete target missing")
			}
			return err
		},
		State:     intervalState,
		Reachable: intervalReachable,
		MaxRuns:   60,
	})
}
