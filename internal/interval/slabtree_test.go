package interval

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"rangesearch/internal/eio"
	"rangesearch/internal/epst"
	"rangesearch/internal/geom"
)

func TestSlabTreeAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 10, 200, 3000} {
		store := eio.NewMemStore(256) // B = 16, fan-out 4
		ivs := randIntervals(rng, n, 2000)
		tr, err := BuildSlabTree(store, ivs)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Len() != n {
			t.Fatalf("Len = %d want %d", tr.Len(), n)
		}
		for trial := 0; trial < 150; trial++ {
			q := rng.Int63n(2200) - 100
			got, err := tr.Stab(nil, q)
			if err != nil {
				t.Fatal(err)
			}
			var want []geom.Interval
			for _, iv := range ivs {
				if iv.Contains(q) {
					want = append(want, iv)
				}
			}
			sortIvs(got)
			sortIvs(want)
			if len(got) != len(want) {
				t.Fatalf("n=%d stab %d: got %d want %d", n, q, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d stab %d: item %d differs", n, q, i)
				}
			}
		}
	}
}

// Property: for arbitrary interval sets (including heavy nesting and
// duplication-prone shapes), the slab tree reports each stabbed interval
// exactly once.
func TestQuickSlabTreeExactlyOnce(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			n := rng.Intn(400)
			seen := map[geom.Interval]bool{}
			ivs := make([]geom.Interval, 0, n)
			for len(ivs) < n {
				lo := rng.Int63n(100)
				iv := geom.Interval{Lo: lo, Hi: lo + rng.Int63n(100)}
				if !seen[iv] {
					seen[iv] = true
					ivs = append(ivs, iv)
				}
			}
			vals[0] = reflect.ValueOf(ivs)
			vals[1] = reflect.ValueOf(rng.Int63())
		},
	}
	err := quick.Check(func(ivs []geom.Interval, qseed int64) bool {
		store := eio.NewMemStore(128) // B = 8, fan-out 2
		tr, err := BuildSlabTree(store, ivs)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(qseed))
		for trial := 0; trial < 15; trial++ {
			q := rng.Int63n(220) - 10
			got, err := tr.Stab(nil, q)
			if err != nil {
				return false
			}
			seen := map[geom.Interval]bool{}
			for _, iv := range got {
				if seen[iv] || !iv.Contains(q) {
					return false // duplicate or wrong report
				}
				seen[iv] = true
			}
			for _, iv := range ivs {
				if iv.Contains(q) && !seen[iv] {
					return false // missed
				}
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestSlabTreeNestedIntervals(t *testing.T) {
	// Deep nesting: every interval contains the next — all stab queries at
	// the center return everything, exercising multislabs and underflow.
	var ivs []geom.Interval
	for i := int64(0); i < 500; i++ {
		ivs = append(ivs, geom.Interval{Lo: i, Hi: 2000 - i})
	}
	store := eio.NewMemStore(256)
	tr, err := BuildSlabTree(store, ivs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tr.Stab(nil, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 500 {
		t.Fatalf("center stab returned %d of 500", len(got))
	}
	got, err = tr.Stab(nil, 250)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 251 {
		t.Fatalf("stab(250) returned %d, want 251", len(got))
	}
}

func TestSlabTreeDestroy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	store := eio.NewMemStore(256)
	tr, err := BuildSlabTree(store, randIntervals(rng, 800, 5000))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Destroy(); err != nil {
		t.Fatal(err)
	}
	if got := store.Pages(); got != 0 {
		t.Fatalf("%d pages leaked", got)
	}
}

func TestSlabTreeRejectsBadInput(t *testing.T) {
	store := eio.NewMemStore(256)
	if _, err := BuildSlabTree(store, []geom.Interval{{Lo: 5, Hi: 1}}); err == nil {
		t.Fatal("inverted interval accepted")
	}
	if _, err := BuildSlabTree(store, []geom.Interval{{Lo: 1, Hi: 2}, {Lo: 1, Hi: 2}}); err == nil {
		t.Fatal("duplicate accepted")
	}
}

// TestSlabTreeIOBound: stabbing cost O(log_B N + t) in page reads, and
// comparable to the dynamic Set on the same workload.
func TestSlabTreeIOBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ivs := randIntervals(rng, 20000, 1<<30)

	slabStore := eio.NewMemStore(1024) // B = 64
	slab, err := BuildSlabTree(slabStore, ivs)
	if err != nil {
		t.Fatal(err)
	}
	setStore := eio.NewMemStore(1024)
	set, err := Build(setStore, epst.Options{}, ivs)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 40; trial++ {
		q := rng.Int63n(1 << 30)
		slabStore.ResetStats()
		a, err := slab.Stab(nil, q)
		if err != nil {
			t.Fatal(err)
		}
		slabReads := int(slabStore.Stats().Reads)
		setStore.ResetStats()
		b, err := set.Stab(nil, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("stab %d: slab %d vs set %d results", q, len(a), len(b))
		}
		tb := (len(a) + 63) / 64
		if limit := 200 + 30*tb; slabReads > limit {
			t.Errorf("stab %d: slab tree used %d reads for t=%d", q, slabReads, tb)
		}
	}
}
