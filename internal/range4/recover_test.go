package range4_test

import (
	"fmt"
	"strings"
	"testing"

	"rangesearch/internal/eio"
	"rangesearch/internal/eio/eiotest"
	"rangesearch/internal/geom"
	"rangesearch/internal/range4"
)

func sweepPoints() []geom.Point {
	var pts []geom.Point
	for i := 0; i < 16; i++ {
		pts = append(pts, geom.Point{X: int64(i*41%83) + 1, Y: int64(i*19%67) + 1})
	}
	return pts
}

func range4State(st eio.Store, hdr eio.PageID) (string, error) {
	tr, err := range4.Open(st, hdr)
	if err != nil {
		return "", err
	}
	if err := tr.CheckInvariants(); err != nil {
		return "", err
	}
	pts, err := tr.Query4(nil, geom.Rect{
		XLo: geom.MinCoord, XHi: geom.MaxCoord,
		YLo: geom.MinCoord, YHi: geom.MaxCoord,
	})
	if err != nil {
		return "", err
	}
	geom.SortByX(pts)
	var b strings.Builder
	for _, p := range pts {
		fmt.Fprintf(&b, "%d,%d;", p.X, p.Y)
	}
	return b.String(), nil
}

func range4Reachable(st eio.Store, hdr eio.PageID) ([]eio.PageID, error) {
	tr, err := range4.Open(st, hdr)
	if err != nil {
		return nil, err
	}
	return tr.AppendAllPages(nil)
}

// TestRecoverySweep crashes a 4-sided tree insert and delete at every
// mutating backing-store operation, asserting before-or-after atomicity
// under WAL recovery plus a leak-free scrub. One logical update here spans
// the base tree, two corner EPSTs and a y-sorted list — the widest
// multi-page footprint in the repository.
func TestRecoverySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery sweep in -short mode")
	}
	build := func(st eio.Store) (eio.PageID, error) {
		tr, err := range4.Build(st, range4.Options{}, sweepPoints())
		if err != nil {
			return eio.NilPage, err
		}
		return tr.HeaderID(), nil
	}
	eiotest.RecoverySweep(t, eiotest.RecoveryWorkload{
		Name:     "range4-insert",
		PageSize: 128,
		WALPages: 512,
		Build:    build,
		Op: func(st eio.Store, hdr eio.PageID) error {
			tr, err := range4.Open(st, hdr)
			if err != nil {
				return err
			}
			return tr.Insert(geom.Point{X: 42, Y: 1000})
		},
		State:     range4State,
		Reachable: range4Reachable,
		MaxRuns:   40,
	})
	eiotest.RecoverySweep(t, eiotest.RecoveryWorkload{
		Name:     "range4-delete",
		PageSize: 128,
		WALPages: 512,
		Build:    build,
		Op: func(st eio.Store, hdr eio.PageID) error {
			tr, err := range4.Open(st, hdr)
			if err != nil {
				return err
			}
			found, err := tr.Delete(sweepPoints()[5])
			if err == nil && !found {
				return fmt.Errorf("delete target missing")
			}
			return err
		},
		State:     range4State,
		Reachable: range4Reachable,
		MaxRuns:   40,
	})
}
