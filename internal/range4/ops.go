package range4

import (
	"fmt"

	"rangesearch/internal/eio"
	"rangesearch/internal/geom"
)

// bulkBuild writes a tree over pts (sorted by (x, y), distinct, validated).
func (t *Tree) bulkBuild(pts []geom.Point) (eio.PageID, int, error) {
	type built struct {
		id     eio.PageID
		maxKey geom.Point
		weight int64
		lo, hi int // slice of pts covered
	}
	if len(pts) == 0 {
		id, err := t.writeNode(eio.NilPage, &node{level: 0})
		return id, 0, err
	}
	g := (len(pts) + (t.k + t.k/2) - 1) / (t.k + t.k/2)
	if g < 1 {
		g = 1
	}
	for len(pts) > g*(2*t.k-1) {
		g++
	}
	var level []built
	for i := 0; i < g; i++ {
		lo := i * len(pts) / g
		hi := (i + 1) * len(pts) / g
		if lo == hi {
			continue
		}
		n := &node{level: 0, pts: append([]geom.Point(nil), pts[lo:hi]...)}
		id, err := t.writeNode(eio.NilPage, n)
		if err != nil {
			return eio.NilPage, 0, err
		}
		level = append(level, built{id: id, maxKey: pts[hi-1], weight: int64(hi - lo), lo: lo, hi: hi})
	}
	height := 0
	for len(level) > 1 {
		height++
		target := t.levelCap(height)
		var up []built
		var cur []built
		var curW int64
		flush := func() error {
			if len(cur) == 0 {
				return nil
			}
			n := &node{level: height}
			for _, c := range cur {
				n.entries = append(n.entries, entry{maxKey: c.maxKey, child: c.id, weight: c.weight})
			}
			lo, hi := cur[0].lo, cur[len(cur)-1].hi
			if err := t.buildAux(n, pts[lo:hi]); err != nil {
				return err
			}
			id, err := t.writeNode(eio.NilPage, n)
			if err != nil {
				return err
			}
			up = append(up, built{id: id, maxKey: cur[len(cur)-1].maxKey, weight: curW, lo: lo, hi: hi})
			cur = nil
			curW = 0
			return nil
		}
		for _, c := range level {
			if curW+c.weight > target && len(cur) > 0 {
				if err := flush(); err != nil {
					return eio.NilPage, 0, err
				}
			}
			cur = append(cur, c)
			curW += c.weight
		}
		if err := flush(); err != nil {
			return eio.NilPage, 0, err
		}
		level = up
	}
	return level[0].id, height, nil
}

// levelCap returns ρ^ℓ·k, saturating.
func (t *Tree) levelCap(level int) int64 {
	cap := int64(t.k)
	for i := 0; i < level; i++ {
		if cap > (1<<62)/int64(t.rho) {
			return 1 << 62
		}
		cap *= int64(t.rho)
	}
	return cap
}

// Query4 appends every stored point inside q to dst.
func (t *Tree) Query4(dst []geom.Point, q geom.Rect) ([]geom.Point, error) {
	if q.Empty() {
		return dst, nil
	}
	m, err := t.loadMeta()
	if err != nil {
		return dst, err
	}
	// Descend to the lowest node whose x-range covers [a, b].
	id := m.root
	var n *node
	for {
		n, err = t.readNode(id)
		if err != nil {
			return dst, err
		}
		if n.level == 0 {
			for _, p := range n.pts {
				if q.Contains(p) {
					dst = append(dst, p)
				}
			}
			return dst, nil
		}
		i := routeChild(n, geom.Point{X: q.XLo, Y: geom.MinCoord})
		j := routeChild(n, geom.Point{X: q.XHi, Y: geom.MaxCoord})
		if i != j {
			return t.answerAt(n, dst, q, i, j)
		}
		id = n.entries[i].child
	}
}

// answerAt decomposes q across children i..j of the answering node
// (Section 4's three-part decomposition).
func (t *Tree) answerAt(n *node, dst []geom.Point, q geom.Rect, i, j int) ([]geom.Point, error) {
	var err error
	// Boundary children: 3-sided subqueries through their own structures.
	dst, err = t.queryBoundary(n.entries[i].child, dst, q, false)
	if err != nil {
		return dst, err
	}
	dst, err = t.queryBoundary(n.entries[j].child, dst, q, true)
	if err != nil {
		return dst, err
	}
	// Spanned children: y-slab reporting from their y-sorted lists.
	for k := i + 1; k < j; k++ {
		dst, err = t.querySpanned(n.entries[k].child, dst, q)
		if err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// queryBoundary answers the query part inside a boundary child: a 3-sided
// subquery (the x-constraint toward the interior of the query is implied by
// the child's position). leftOpen selects which structure answers.
func (t *Tree) queryBoundary(id eio.PageID, dst []geom.Point, q geom.Rect, leftOpen bool) ([]geom.Point, error) {
	n, err := t.readNode(id)
	if err != nil {
		return dst, err
	}
	if n.level == 0 {
		for _, p := range n.pts {
			if q.Contains(p) {
				dst = append(dst, p)
			}
		}
		return dst, nil
	}
	ax, err := t.openAux(n)
	if err != nil {
		return dst, err
	}
	if leftOpen {
		// x ≤ XHi ∧ y ∈ [YLo, YHi]; stored as (y, −x).
		res, err := ax.left.Query3(nil, geom.Query3{XLo: q.YLo, XHi: q.YHi, YLo: negHi(q.XHi)})
		if err != nil {
			return dst, err
		}
		for _, r := range res {
			dst = append(dst, fromLeft(r))
		}
		return dst, nil
	}
	// x ≥ XLo ∧ y ∈ [YLo, YHi]; stored as (y, x).
	res, err := ax.right.Query3(nil, geom.Query3{XLo: q.YLo, XHi: q.YHi, YLo: q.XLo})
	if err != nil {
		return dst, err
	}
	for _, r := range res {
		dst = append(dst, fromRight(r))
	}
	return dst, nil
}

// negHi negates a right x-bound for the left-open transform without
// colliding with the MinCoord sentinel.
func negHi(b int64) int64 {
	if b == geom.MaxCoord {
		return geom.MinCoord
	}
	return -b
}

// querySpanned reports every point of a fully-spanned child with
// y ∈ [YLo, YHi] from its y-sorted list.
func (t *Tree) querySpanned(id eio.PageID, dst []geom.Point, q geom.Rect) ([]geom.Point, error) {
	n, err := t.readNode(id)
	if err != nil {
		return dst, err
	}
	if n.level == 0 {
		for _, p := range n.pts {
			if q.YLo <= p.Y && p.Y <= q.YHi {
				dst = append(dst, p)
			}
		}
		return dst, nil
	}
	ax, err := t.openAux(n)
	if err != nil {
		return dst, err
	}
	err = ax.ylist.Range(
		geom.Point{X: q.YLo, Y: geom.MinCoord},
		geom.Point{X: q.YHi, Y: geom.MaxCoord},
		func(r geom.Point) bool {
			dst = append(dst, fromRight(r))
			return true
		})
	return dst, err
}

// Contains reports whether p is stored.
func (t *Tree) Contains(p geom.Point) (bool, error) {
	if err := checkCoord(p); err != nil {
		return false, err
	}
	m, err := t.loadMeta()
	if err != nil {
		return false, err
	}
	id := m.root
	for {
		n, err := t.readNode(id)
		if err != nil {
			return false, err
		}
		if n.level == 0 {
			i := lowerBoundPts(n.pts, p)
			return i < len(n.pts) && n.pts[i] == p, nil
		}
		id = n.entries[routeChild(n, p)].child
	}
}

// Insert adds p. Cost: O(log_B N) per level, O(log_B N · log n / log ρ)
// total, amortized.
func (t *Tree) Insert(p geom.Point) error {
	if err := checkCoord(p); err != nil {
		return err
	}
	ok, err := t.Contains(p)
	if err != nil {
		return err
	}
	if ok {
		return fmt.Errorf("range4: insert %v: %w", p, ErrDuplicate)
	}
	m, err := t.loadMeta()
	if err != nil {
		return err
	}

	type pathEl struct {
		id  eio.PageID
		n   *node
		idx int
	}
	var path []pathEl
	id := m.root
	for {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		if n.level == 0 {
			path = append(path, pathEl{id: id, n: n})
			break
		}
		// Every internal node on the path absorbs p into its auxiliaries.
		ax, err := t.openAux(n)
		if err != nil {
			return err
		}
		if err := ax.left.Insert(toLeft(p)); err != nil {
			return err
		}
		if err := ax.right.Insert(toRight(p)); err != nil {
			return err
		}
		if err := ax.ylist.Insert(toRight(p)); err != nil {
			return err
		}
		idx := routeChild(n, p)
		path = append(path, pathEl{id: id, n: n, idx: idx})
		id = n.entries[idx].child
	}

	leaf := path[len(path)-1].n
	pos := lowerBoundPts(leaf.pts, p)
	leaf.pts = append(leaf.pts, geom.Point{})
	copy(leaf.pts[pos+1:], leaf.pts[pos:])
	leaf.pts[pos] = p

	// Bottom-up weight updates and splits.
	type carryT struct {
		leftWeight  int64
		leftMax     geom.Point
		rightID     eio.PageID
		rightWeight int64
		rightMax    geom.Point
	}
	var carry *carryT
	for i := len(path) - 1; i >= 0; i-- {
		el := path[i]
		n := el.n
		if n.level > 0 {
			e := &n.entries[el.idx]
			if carry != nil {
				e.weight = carry.leftWeight
				e.maxKey = carry.leftMax
				n.entries = append(n.entries, entry{})
				copy(n.entries[el.idx+2:], n.entries[el.idx+1:])
				n.entries[el.idx+1] = entry{maxKey: carry.rightMax, child: carry.rightID, weight: carry.rightWeight}
				carry = nil
			} else {
				e.weight++
				if e.maxKey.Less(p) {
					e.maxKey = p
				}
			}
		}

		var right *node
		switch {
		case n.level == 0 && len(n.pts) >= 2*t.k:
			right = &node{level: 0, pts: append([]geom.Point(nil), n.pts[t.k:]...)}
			n.pts = n.pts[:t.k]
		case n.level > 0 && nodeWeight(n) >= 2*t.levelCap(n.level):
			right = t.splitEntries(n)
		}
		if right == nil {
			if err := t.writeBack(el.id, n); err != nil {
				return err
			}
			continue
		}

		if n.level > 0 {
			// Both halves get freshly built auxiliaries over their own
			// subtree points; the old ones are destroyed. Amortized by the
			// Ω(weight) inserts between splits (Lemma 2).
			if err := t.destroyAux(n); err != nil {
				return err
			}
			var leftPts, rightPts []geom.Point
			for ci := range n.entries {
				if err := t.collect(n.entries[ci].child, &leftPts); err != nil {
					return err
				}
			}
			for ci := range right.entries {
				if err := t.collect(right.entries[ci].child, &rightPts); err != nil {
					return err
				}
			}
			geom.SortByX(leftPts)
			geom.SortByX(rightPts)
			if err := t.buildAux(n, leftPts); err != nil {
				return err
			}
			if err := t.buildAux(right, rightPts); err != nil {
				return err
			}
		}
		rightID, err := t.writeNode(eio.NilPage, right)
		if err != nil {
			return err
		}
		if err := t.writeBack(el.id, n); err != nil {
			return err
		}
		if i > 0 {
			carry = &carryT{
				leftWeight:  nodeWeight(n),
				leftMax:     nodeMaxKey(n),
				rightID:     rightID,
				rightWeight: nodeWeight(right),
				rightMax:    nodeMaxKey(right),
			}
			continue
		}
		// Root split: the new root covers the same point set as the old
		// root did, so for an internal old root its auxiliaries transfer
		// upward; for an old leaf root they are built fresh.
		newRoot := &node{
			level: n.level + 1,
			entries: []entry{
				{maxKey: nodeMaxKey(n), child: el.id, weight: nodeWeight(n)},
				{maxKey: nodeMaxKey(right), child: rightID, weight: nodeWeight(right)},
			},
		}
		var all []geom.Point
		if err := t.collect(el.id, &all); err != nil {
			return err
		}
		if err := t.collect(rightID, &all); err != nil {
			return err
		}
		geom.SortByX(all)
		if err := t.buildAux(newRoot, all); err != nil {
			return err
		}
		rootID, err := t.writeNode(eio.NilPage, newRoot)
		if err != nil {
			return err
		}
		m.root = rootID
		m.height = newRoot.level
	}

	m.live++
	if m.live > m.basis {
		m.basis = m.live
	}
	return t.storeMeta(m)
}

// splitEntries splits an internal node's children by weight.
func (t *Tree) splitEntries(n *node) *node {
	total := nodeWeight(n)
	half := total / 2
	acc := int64(0)
	cut := 1
	bestDiff := int64(1) << 62
	for i := 0; i < len(n.entries)-1; i++ {
		acc += n.entries[i].weight
		diff := acc - half
		if diff < 0 {
			diff = -diff
		}
		if diff < bestDiff {
			bestDiff = diff
			cut = i + 1
		}
	}
	right := &node{level: n.level, entries: append([]entry(nil), n.entries[cut:]...)}
	n.entries = n.entries[:cut]
	return right
}

// collect appends the points stored in id's subtree leaves to out.
func (t *Tree) collect(id eio.PageID, out *[]geom.Point) error {
	n, err := t.readNode(id)
	if err != nil {
		return err
	}
	if n.level == 0 {
		*out = append(*out, n.pts...)
		return nil
	}
	for i := range n.entries {
		if err := t.collect(n.entries[i].child, out); err != nil {
			return err
		}
	}
	return nil
}

// Delete removes p, reporting whether it was present.
func (t *Tree) Delete(p geom.Point) (bool, error) {
	if err := checkCoord(p); err != nil {
		return false, err
	}
	ok, err := t.Contains(p)
	if err != nil || !ok {
		return false, err
	}
	m, err := t.loadMeta()
	if err != nil {
		return false, err
	}
	id := m.root
	type pathEl struct {
		id  eio.PageID
		n   *node
		idx int
	}
	var path []pathEl
	for {
		n, err := t.readNode(id)
		if err != nil {
			return false, err
		}
		if n.level == 0 {
			path = append(path, pathEl{id: id, n: n})
			break
		}
		ax, err := t.openAux(n)
		if err != nil {
			return false, err
		}
		if _, err := ax.left.Delete(toLeft(p)); err != nil {
			return false, err
		}
		if _, err := ax.right.Delete(toRight(p)); err != nil {
			return false, err
		}
		if _, err := ax.ylist.Delete(toRight(p)); err != nil {
			return false, err
		}
		idx := routeChild(n, p)
		path = append(path, pathEl{id: id, n: n, idx: idx})
		id = n.entries[idx].child
	}
	leaf := path[len(path)-1]
	pos := lowerBoundPts(leaf.n.pts, p)
	leaf.n.pts = append(leaf.n.pts[:pos], leaf.n.pts[pos+1:]...)
	for i := len(path) - 1; i >= 0; i-- {
		el := path[i]
		if el.n.level > 0 {
			el.n.entries[el.idx].weight--
		}
		if err := t.writeBack(el.id, el.n); err != nil {
			return false, err
		}
	}
	m.live--
	if m.live*2 < m.basis {
		if err := t.rebuild(m); err != nil {
			return false, err
		}
		return true, nil
	}
	return true, t.storeMeta(m)
}

// rebuild reconstructs the whole tree from its live points.
func (t *Tree) rebuild(m *meta) error {
	var pts []geom.Point
	if err := t.collect(m.root, &pts); err != nil {
		return err
	}
	if err := t.freeSubtree(m.root); err != nil {
		return err
	}
	geom.SortByX(pts)
	root, height, err := t.bulkBuild(pts)
	if err != nil {
		return err
	}
	m.root = root
	m.height = height
	m.live = int64(len(pts))
	m.basis = m.live
	return t.storeMeta(m)
}

// freeSubtree releases all records and auxiliary structures under id.
func (t *Tree) freeSubtree(id eio.PageID) error {
	n, err := t.readNode(id)
	if err != nil {
		return err
	}
	if n.level > 0 {
		if err := t.destroyAux(n); err != nil {
			return err
		}
		for i := range n.entries {
			if err := t.freeSubtree(n.entries[i].child); err != nil {
				return err
			}
		}
	}
	return t.rs.Delete(id)
}

// Destroy frees the whole tree including its header.
func (t *Tree) Destroy() error {
	m, err := t.loadMeta()
	if err != nil {
		return err
	}
	if err := t.freeSubtree(m.root); err != nil {
		return err
	}
	return t.rs.Delete(t.hdr)
}

// CheckInvariants audits base-tree weights/ordering and verifies that every
// internal node's three auxiliary structures hold exactly its subtree's
// points (in their respective orientations).
func (t *Tree) CheckInvariants() error {
	m, err := t.loadMeta()
	if err != nil {
		return err
	}
	pts, err := t.checkNode(m.root, m.height)
	if err != nil {
		return err
	}
	if int64(len(pts)) != m.live {
		return fmt.Errorf("range4: header live=%d, tree holds %d", m.live, len(pts))
	}
	return nil
}

func (t *Tree) checkNode(id eio.PageID, level int) ([]geom.Point, error) {
	n, err := t.readNode(id)
	if err != nil {
		return nil, err
	}
	if n.level != level {
		return nil, fmt.Errorf("range4: node level %d, expected %d", n.level, level)
	}
	if n.level == 0 {
		for i := 1; i < len(n.pts); i++ {
			if !n.pts[i-1].Less(n.pts[i]) {
				return nil, fmt.Errorf("range4: leaf points out of order")
			}
		}
		if len(n.pts) > 2*t.k-1 {
			return nil, fmt.Errorf("range4: leaf holds %d points (max %d)", len(n.pts), 2*t.k-1)
		}
		return n.pts, nil
	}
	var all []geom.Point
	for i := range n.entries {
		sub, err := t.checkNode(n.entries[i].child, level-1)
		if err != nil {
			return nil, err
		}
		if int64(len(sub)) != n.entries[i].weight {
			return nil, fmt.Errorf("range4: entry %d weight %d, subtree holds %d", i, n.entries[i].weight, len(sub))
		}
		for _, p := range sub {
			if n.entries[i].maxKey.Less(p) {
				return nil, fmt.Errorf("range4: point %v above child %d maxKey", p, i)
			}
		}
		all = append(all, sub...)
	}
	ax, err := t.openAux(n)
	if err != nil {
		return nil, err
	}
	want := make(map[geom.Point]bool, len(all))
	for _, p := range all {
		want[p] = true
	}
	lAll, err := ax.left.All()
	if err != nil {
		return nil, err
	}
	if len(lAll) != len(all) {
		return nil, fmt.Errorf("range4: left structure holds %d of %d points", len(lAll), len(all))
	}
	for _, r := range lAll {
		if !want[fromLeft(r)] {
			return nil, fmt.Errorf("range4: left structure holds foreign point %v", fromLeft(r))
		}
	}
	rAll, err := ax.right.All()
	if err != nil {
		return nil, err
	}
	if len(rAll) != len(all) {
		return nil, fmt.Errorf("range4: right structure holds %d of %d points", len(rAll), len(all))
	}
	yn, err := ax.ylist.Len()
	if err != nil {
		return nil, err
	}
	if yn != len(all) {
		return nil, fmt.Errorf("range4: y-list holds %d of %d points", yn, len(all))
	}
	return all, nil
}

// SpaceStats reports the structure's disk footprint.
type SpaceStats struct {
	Points int
	Pages  int
	Levels int
	B      int
}

// Space returns the current footprint (Pages counts the whole store).
func (t *Tree) Space() (SpaceStats, error) {
	m, err := t.loadMeta()
	if err != nil {
		return SpaceStats{}, err
	}
	return SpaceStats{Points: int(m.live), Pages: t.store.Pages(), Levels: m.height + 1, B: t.b}, nil
}
