// Package range4 implements the dynamic 4-sided range search structure of
// Section 4 of Arge, Samoladas & Vitter (PODS 1999) (Theorem 7): general
// orthogonal range queries [a,b]×[c,d] over N points in
// O(n·log n / log log_B N) disk blocks with O(log_B N + t) reporting and
// O(log_B N · log n / log log_B N) updates.
//
// A weight-balanced base tree with fan-out ρ = Θ(log_B N) partitions the
// points by x. Every internal node stores the points of its x-range in
// auxiliary structures (so each point is replicated once per level — the
// source of the log n / log ρ space factor):
//
//   - a left-open 3-sided structure (external priority search tree over
//     points transposed to (y, −x)) answering x ≤ b ∧ c ≤ y ≤ d;
//   - a right-open 3-sided structure (transposed to (y, x)) answering
//     x ≥ a ∧ c ≤ y ≤ d;
//   - a y-sorted list (weight-balanced B-tree keyed (y, x)).
//
// A query finds the lowest node whose x-range covers [a, b]; the two
// boundary children answer their parts through their 3-sided structures in
// O(log_B N + t) I/Os, and each fully-spanned child reports its y-slab from
// its y-sorted list.
//
// Substitution note (recorded in DESIGN.md): the paper links each spanned
// child's y-list entry point through an external interval tree over y-link
// segments, making all ρ entry lookups cost O(log_B N + ρ) together. Those
// links require raw block pointers between structures; this implementation
// instead enters each spanned child's y-list by search, paying
// O(log_B weight) per spanned child — an additive O(ρ·log_B N) term in the
// worst case, measured by experiment E10. Space, updates, and the
// output-linear O(t) term match the paper.
package range4

import (
	"encoding/binary"
	"errors"
	"fmt"

	"rangesearch/internal/eio"
	"rangesearch/internal/epst"
	"rangesearch/internal/geom"
	"rangesearch/internal/wbtree"
)

// ErrDuplicate reports insertion of a point already present.
var ErrDuplicate = errors.New("range4: duplicate point")

// ErrCoordRange reports a point using a reserved sentinel coordinate.
var ErrCoordRange = errors.New("range4: coordinate out of storable range")

// Tree is a handle to a 4-sided range search structure on an eio.Store.
type Tree struct {
	store eio.Store
	rs    *eio.RecordStore
	hdr   eio.PageID
	b     int
	rho   int // base-tree fan-out parameter
	k     int // leaf parameter
}

// Options configures Create/Build.
type Options struct {
	// Rho is the base-tree fan-out (default max(2, B/4); the paper
	// suggests Θ(log_B N), which callers targeting a known N can pass).
	Rho int
	// K is the leaf parameter (default B).
	K int
}

func (o *Options) fill(pageSize int) (rho, k int, err error) {
	b := eio.BlockCapacity(pageSize)
	rho, k = o.Rho, o.K
	if rho == 0 {
		rho = b / 4
		if rho < 2 {
			rho = 2
		}
	}
	if k == 0 {
		k = b
		if k < 2 {
			k = 2
		}
	}
	if rho < 2 || k < 2 {
		return 0, 0, fmt.Errorf("range4: invalid parameters rho=%d k=%d", rho, k)
	}
	return rho, k, nil
}

type meta struct {
	root   eio.PageID
	height int
	live   int64
	basis  int64
	rho, k int32
}

const metaSize = 8 + 4 + 8 + 8 + 4 + 4

// node is a decoded base-tree node.
type node struct {
	level   int
	left    eio.PageID // left-open EPST header (internal only)
	right   eio.PageID // right-open EPST header
	ylist   eio.PageID // y-sorted wbtree header
	entries []entry
	pts     []geom.Point // leaves: sorted by (x, y)
}

type entry struct {
	maxKey geom.Point
	child  eio.PageID
	weight int64
}

// Coordinate transforms between original and stored orientations.

func toRight(p geom.Point) geom.Point   { return geom.Point{X: p.Y, Y: p.X} }
func fromRight(p geom.Point) geom.Point { return geom.Point{X: p.Y, Y: p.X} }
func toLeft(p geom.Point) geom.Point    { return geom.Point{X: p.Y, Y: -p.X} }
func fromLeft(p geom.Point) geom.Point  { return geom.Point{X: -p.Y, Y: p.X} }

func checkCoord(p geom.Point) error {
	if p.X == geom.MinCoord || p.X == geom.MaxCoord || p.Y == geom.MinCoord || p.Y == geom.MaxCoord {
		return fmt.Errorf("range4: %v: %w", p, ErrCoordRange)
	}
	return nil
}

// Create makes an empty tree on store.
func Create(store eio.Store, opts Options) (*Tree, error) {
	return Build(store, opts, nil)
}

// Build bulk-loads a tree over pts (distinct points with non-sentinel
// coordinates; the slice is not modified).
func Build(store eio.Store, opts Options, pts []geom.Point) (*Tree, error) {
	rho, k, err := opts.fill(store.PageSize())
	if err != nil {
		return nil, err
	}
	t := &Tree{
		store: store,
		rs:    eio.NewRecordStore(store),
		b:     eio.BlockCapacity(store.PageSize()),
		rho:   rho, k: k,
	}
	seen := make(map[geom.Point]bool, len(pts))
	for _, p := range pts {
		if err := checkCoord(p); err != nil {
			return nil, err
		}
		if seen[p] {
			return nil, fmt.Errorf("range4: build with duplicate %v: %w", p, ErrDuplicate)
		}
		seen[p] = true
	}
	sorted := make([]geom.Point, len(pts))
	copy(sorted, pts)
	geom.SortByX(sorted)
	root, height, err := t.bulkBuild(sorted)
	if err != nil {
		return nil, err
	}
	m := &meta{root: root, height: height, live: int64(len(pts)), basis: int64(len(pts)), rho: int32(rho), k: int32(k)}
	t.hdr, err = t.rs.Put(encodeMeta(m))
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Open re-attaches to a tree previously created on store.
func Open(store eio.Store, hdr eio.PageID) (*Tree, error) {
	t := &Tree{
		store: store,
		rs:    eio.NewRecordStore(store),
		b:     eio.BlockCapacity(store.PageSize()),
		hdr:   hdr,
	}
	m, err := t.loadMeta()
	if err != nil {
		return nil, err
	}
	t.rho, t.k = int(m.rho), int(m.k)
	return t, nil
}

// HeaderID identifies the tree on its store.
func (t *Tree) HeaderID() eio.PageID { return t.hdr }

// Params returns the fan-out and leaf parameters.
func (t *Tree) Params() (rho, k int) { return t.rho, t.k }

// Len returns the number of stored points.
func (t *Tree) Len() (int, error) {
	m, err := t.loadMeta()
	if err != nil {
		return 0, err
	}
	return int(m.live), nil
}

// Height returns the base-tree height.
func (t *Tree) Height() (int, error) {
	m, err := t.loadMeta()
	if err != nil {
		return 0, err
	}
	return m.height, nil
}

func (t *Tree) loadMeta() (*meta, error) {
	raw, err := t.rs.Get(t.hdr)
	if err != nil {
		return nil, fmt.Errorf("range4: load header: %w", err)
	}
	if len(raw) != metaSize {
		return nil, fmt.Errorf("range4: header length %d", len(raw))
	}
	return &meta{
		root:   eio.PageID(binary.LittleEndian.Uint64(raw[0:])),
		height: int(binary.LittleEndian.Uint32(raw[8:])),
		live:   int64(binary.LittleEndian.Uint64(raw[12:])),
		basis:  int64(binary.LittleEndian.Uint64(raw[20:])),
		rho:    int32(binary.LittleEndian.Uint32(raw[28:])),
		k:      int32(binary.LittleEndian.Uint32(raw[32:])),
	}, nil
}

func (t *Tree) storeMeta(m *meta) error {
	if err := t.rs.Update(t.hdr, encodeMeta(m)); err != nil {
		return fmt.Errorf("range4: store header: %w", err)
	}
	return nil
}

func encodeMeta(m *meta) []byte {
	out := make([]byte, metaSize)
	binary.LittleEndian.PutUint64(out[0:], uint64(m.root))
	binary.LittleEndian.PutUint32(out[8:], uint32(m.height))
	binary.LittleEndian.PutUint64(out[12:], uint64(m.live))
	binary.LittleEndian.PutUint64(out[20:], uint64(m.basis))
	binary.LittleEndian.PutUint32(out[28:], uint32(m.rho))
	binary.LittleEndian.PutUint32(out[32:], uint32(m.k))
	return out
}

// --- node serialization ---

const entrySize = 16 + 8 + 8

func encodeNode(n *node) []byte {
	if n.level == 0 {
		out := make([]byte, 8+eio.PointSize*len(n.pts))
		binary.LittleEndian.PutUint32(out[0:], uint32(n.level))
		binary.LittleEndian.PutUint32(out[4:], uint32(len(n.pts)))
		off := 8
		for _, p := range n.pts {
			eio.PutPoint(out, off, p)
			off += eio.PointSize
		}
		return out
	}
	out := make([]byte, 32+entrySize*len(n.entries))
	binary.LittleEndian.PutUint32(out[0:], uint32(n.level))
	binary.LittleEndian.PutUint32(out[4:], uint32(len(n.entries)))
	binary.LittleEndian.PutUint64(out[8:], uint64(n.left))
	binary.LittleEndian.PutUint64(out[16:], uint64(n.right))
	binary.LittleEndian.PutUint64(out[24:], uint64(n.ylist))
	off := 32
	for i := range n.entries {
		e := &n.entries[i]
		eio.PutPoint(out, off, e.maxKey)
		binary.LittleEndian.PutUint64(out[off+16:], uint64(e.child))
		binary.LittleEndian.PutUint64(out[off+24:], uint64(e.weight))
		off += entrySize
	}
	return out
}

func decodeNode(raw []byte) (*node, error) {
	if len(raw) < 8 {
		return nil, fmt.Errorf("range4: node record too short")
	}
	level := int(binary.LittleEndian.Uint32(raw[0:]))
	count := int(binary.LittleEndian.Uint32(raw[4:]))
	n := &node{level: level}
	if level == 0 {
		if len(raw) != 8+eio.PointSize*count {
			return nil, fmt.Errorf("range4: leaf record length %d for %d points", len(raw), count)
		}
		n.pts = make([]geom.Point, count)
		off := 8
		for i := 0; i < count; i++ {
			n.pts[i] = eio.GetPoint(raw, off)
			off += eio.PointSize
		}
		return n, nil
	}
	if len(raw) != 32+entrySize*count {
		return nil, fmt.Errorf("range4: node record length %d for %d entries", len(raw), count)
	}
	n.left = eio.PageID(binary.LittleEndian.Uint64(raw[8:]))
	n.right = eio.PageID(binary.LittleEndian.Uint64(raw[16:]))
	n.ylist = eio.PageID(binary.LittleEndian.Uint64(raw[24:]))
	n.entries = make([]entry, count)
	off := 32
	for i := 0; i < count; i++ {
		n.entries[i] = entry{
			maxKey: eio.GetPoint(raw, off),
			child:  eio.PageID(binary.LittleEndian.Uint64(raw[off+16:])),
			weight: int64(binary.LittleEndian.Uint64(raw[off+24:])),
		}
		off += entrySize
	}
	return n, nil
}

func (t *Tree) readNode(id eio.PageID) (*node, error) {
	raw, err := t.rs.Get(id)
	if err != nil {
		return nil, fmt.Errorf("range4: read node: %w", err)
	}
	return decodeNode(raw)
}

func (t *Tree) writeNode(id eio.PageID, n *node) (eio.PageID, error) {
	raw := encodeNode(n)
	if id == eio.NilPage {
		nid, err := t.rs.Put(raw)
		if err != nil {
			return eio.NilPage, fmt.Errorf("range4: write node: %w", err)
		}
		return nid, nil
	}
	if err := t.rs.Update(id, raw); err != nil {
		return eio.NilPage, fmt.Errorf("range4: update node: %w", err)
	}
	return id, nil
}

func (t *Tree) writeBack(id eio.PageID, n *node) error {
	_, err := t.writeNode(id, n)
	return err
}

func routeChild(n *node, p geom.Point) int {
	for i := range n.entries {
		if !n.entries[i].maxKey.Less(p) {
			return i
		}
	}
	return len(n.entries) - 1
}

func nodeWeight(n *node) int64 {
	if n.level == 0 {
		return int64(len(n.pts))
	}
	var w int64
	for i := range n.entries {
		w += n.entries[i].weight
	}
	return w
}

func nodeMaxKey(n *node) geom.Point {
	if n.level == 0 {
		return n.pts[len(n.pts)-1]
	}
	return n.entries[len(n.entries)-1].maxKey
}

func lowerBoundPts(pts []geom.Point, p geom.Point) int {
	lo, hi := 0, len(pts)
	for lo < hi {
		mid := (lo + hi) / 2
		if pts[mid].Less(p) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// aux bundles the three auxiliary structures of an internal node.
type aux struct {
	left  *epst.Tree
	right *epst.Tree
	ylist *wbtree.Tree
}

func (t *Tree) openAux(n *node) (*aux, error) {
	left, err := epst.Open(t.store, n.left, 0)
	if err != nil {
		return nil, err
	}
	right, err := epst.Open(t.store, n.right, 0)
	if err != nil {
		return nil, err
	}
	ylist, err := wbtree.Open(t.store, n.ylist)
	if err != nil {
		return nil, err
	}
	return &aux{left: left, right: right, ylist: ylist}, nil
}

// buildAux creates the three structures over pts (original coordinates,
// sorted by (x, y)) and stores their header ids in n.
func (t *Tree) buildAux(n *node, pts []geom.Point) error {
	lpts := make([]geom.Point, len(pts))
	rpts := make([]geom.Point, len(pts))
	for i, p := range pts {
		lpts[i] = toLeft(p)
		rpts[i] = toRight(p)
	}
	left, err := epst.Build(t.store, epst.Options{}, lpts)
	if err != nil {
		return err
	}
	right, err := epst.Build(t.store, epst.Options{}, rpts)
	if err != nil {
		return err
	}
	ylist, err := wbtree.Create(t.store, 0, 0)
	if err != nil {
		return err
	}
	ysorted := make([]geom.Point, len(rpts))
	copy(ysorted, rpts)
	geom.SortByX(ysorted) // (y, x) points: canonical order = y-order
	if err := ylist.BulkLoad(ysorted); err != nil {
		return err
	}
	n.left = left.HeaderID()
	n.right = right.HeaderID()
	n.ylist = ylist.HeaderID()
	return nil
}

func (t *Tree) destroyAux(n *node) error {
	ax, err := t.openAux(n)
	if err != nil {
		return err
	}
	if err := ax.left.Destroy(); err != nil {
		return err
	}
	if err := ax.right.Destroy(); err != nil {
		return err
	}
	return ax.ylist.Destroy()
}
