package range4

import (
	"math/rand"
	"testing"

	"rangesearch/internal/eio"
	"rangesearch/internal/geom"
)

// TestFileStoreRoundTrip persists a 4-sided structure (and all the nested
// priority search trees and y-lists inside its nodes) to a real file,
// reopens it, queries it, and mutates it.
func TestFileStoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	path := t.TempDir() + "/range4.db"
	fs, err := eio.CreateFileStore(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	pts := distinctPoints(rng, 700, 4000)
	tr, err := Build(fs, Options{Rho: 4, K: 8}, pts)
	if err != nil {
		t.Fatal(err)
	}
	hdr := tr.HeaderID()
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	fs2, err := eio.OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	tr2, err := Open(fs2, hdr)
	if err != nil {
		t.Fatal(err)
	}
	m := map[geom.Point]bool{}
	for _, p := range pts {
		m[p] = true
	}
	for trial := 0; trial < 30; trial++ {
		q := randRect(rng, 4000)
		checkQuery(t, tr2, m, q)
	}
	// Mutations after reopen.
	if _, err := tr2.Delete(pts[0]); err != nil {
		t.Fatal(err)
	}
	delete(m, pts[0])
	np := geom.Point{X: -3, Y: -3}
	if err := tr2.Insert(np); err != nil {
		t.Fatal(err)
	}
	m[np] = true
	checkQuery(t, tr2, m, geom.Rect{XLo: -10, XHi: 4000, YLo: -10, YHi: 4000})
	if err := tr2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
