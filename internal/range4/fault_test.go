package range4

import (
	"math/rand"
	"testing"

	"rangesearch/internal/eio"
	"rangesearch/internal/eio/eiotest"
	"rangesearch/internal/geom"
)

// TestFaultSweep fails every store operation of a build/insert/delete/query
// workload in turn and asserts the 4-sided structure surfaces the injected
// error, never panics, and stays queryable afterwards.
func TestFaultSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("fault sweep re-runs the workload per operation")
	}
	rng := rand.New(rand.NewSource(31))
	pts := distinctPoints(rng, 55, 1000)
	base, extra := pts[:45], pts[45:]

	eiotest.Sweep(t, eiotest.Workload{
		Name:     "range4",
		PageSize: 128,
		Strict:   true,
		Run: func(st eio.Store) (func() error, error) {
			tr, err := Build(st, Options{Rho: 2, K: 4}, base)
			if err != nil {
				return nil, err
			}
			check := func() error {
				if _, err := tr.Len(); err != nil {
					return err
				}
				_, err := tr.Query4(nil, geom.Rect{XLo: 0, XHi: 1000, YLo: 0, YHi: 1000})
				return err
			}
			for _, p := range extra {
				if err := tr.Insert(p); err != nil {
					return check, err
				}
			}
			for _, p := range base[:8] {
				if _, err := tr.Delete(p); err != nil {
					return check, err
				}
			}
			if _, err := tr.Query4(nil, geom.Rect{XLo: 100, XHi: 800, YLo: 200, YHi: 900}); err != nil {
				return check, err
			}
			return check, nil
		},
	})
}
