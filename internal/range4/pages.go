package range4

import (
	"rangesearch/internal/eio"
	"rangesearch/internal/epst"
	"rangesearch/internal/wbtree"
)

// AppendAllPages appends every page the tree owns — the header record,
// every base-tree node record, and each internal node's auxiliary
// structures (two EPSTs and the y-sorted list) — to dst and returns the
// extended slice. It is the tree's contribution to the reachability set
// consumed by eio.FindLeaks and eio.Scrub.
func (t *Tree) AppendAllPages(dst []eio.PageID) ([]eio.PageID, error) {
	dst, err := t.appendRecord(dst, t.hdr)
	if err != nil {
		return nil, err
	}
	m, err := t.loadMeta()
	if err != nil {
		return nil, err
	}
	return t.appendSubtree(dst, m.root)
}

func (t *Tree) appendRecord(dst []eio.PageID, id eio.PageID) ([]eio.PageID, error) {
	chain, err := t.rs.Chain(id)
	if err != nil {
		return nil, err
	}
	return append(dst, chain...), nil
}

func (t *Tree) appendSubtree(dst []eio.PageID, id eio.PageID) ([]eio.PageID, error) {
	dst, err := t.appendRecord(dst, id)
	if err != nil {
		return nil, err
	}
	n, err := t.readNode(id)
	if err != nil {
		return nil, err
	}
	if n.level == 0 {
		return dst, nil
	}
	for _, hdr := range []eio.PageID{n.left, n.right} {
		aux, err := epst.Open(t.store, hdr, 0)
		if err != nil {
			return nil, err
		}
		dst, err = aux.AppendAllPages(dst)
		if err != nil {
			return nil, err
		}
	}
	yl, err := wbtree.Open(t.store, n.ylist)
	if err != nil {
		return nil, err
	}
	dst, err = yl.AppendAllPages(dst)
	if err != nil {
		return nil, err
	}
	for i := range n.entries {
		dst, err = t.appendSubtree(dst, n.entries[i].child)
		if err != nil {
			return nil, err
		}
	}
	return dst, nil
}
