package range4

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"rangesearch/internal/eio"
	"rangesearch/internal/geom"
)

// Property: arbitrary operation sequences keep the 4-sided structure equal
// to a set under window queries, with all per-level replica invariants
// intact.
func TestQuickOpSequence(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 12, // each case builds three structures per node; keep small
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			vals[0] = reflect.ValueOf(rng.Int63())
			vals[1] = reflect.ValueOf(60 + rng.Intn(200))
		},
	}
	err := quick.Check(func(seed int64, ops int) bool {
		rng := rand.New(rand.NewSource(seed))
		store := eio.NewMemStore(128)
		tr, err := Create(store, Options{Rho: 3, K: 4})
		if err != nil {
			return false
		}
		model := map[geom.Point]bool{}
		for i := 0; i < ops; i++ {
			p := geom.Point{X: rng.Int63n(64), Y: rng.Int63n(64)}
			if rng.Intn(3) != 0 {
				err := tr.Insert(p)
				if model[p] {
					if !errors.Is(err, ErrDuplicate) {
						return false
					}
				} else if err != nil {
					return false
				}
				model[p] = true
			} else {
				found, err := tr.Delete(p)
				if err != nil || found != model[p] {
					return false
				}
				delete(model, p)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			return false
		}
		for trial := 0; trial < 5; trial++ {
			a := rng.Int63n(70) - 3
			b := a + rng.Int63n(70)
			c := rng.Int63n(70) - 3
			d := c + rng.Int63n(70)
			q := geom.Rect{XLo: a, XHi: b, YLo: c, YHi: d}
			got, err := tr.Query4(nil, q)
			if err != nil {
				return false
			}
			seen := map[geom.Point]bool{}
			for _, p := range got {
				if seen[p] || !model[p] || !q.Contains(p) {
					return false
				}
				seen[p] = true
			}
			for p := range model {
				if q.Contains(p) && !seen[p] {
					return false
				}
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}
