package range4

import (
	"errors"
	"math/rand"
	"testing"

	"rangesearch/internal/eio"
	"rangesearch/internal/geom"
)

func distinctPoints(rng *rand.Rand, n int, coordRange int64) []geom.Point {
	seen := make(map[geom.Point]bool)
	var pts []geom.Point
	for len(pts) < n {
		p := geom.Point{X: rng.Int63n(coordRange), Y: rng.Int63n(coordRange)}
		if !seen[p] {
			seen[p] = true
			pts = append(pts, p)
		}
	}
	return pts
}

func sorted(pts []geom.Point) []geom.Point {
	out := append([]geom.Point(nil), pts...)
	geom.SortByX(out)
	return out
}

func equalPts(a, b []geom.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func brute4(m map[geom.Point]bool, q geom.Rect) []geom.Point {
	var out []geom.Point
	for p := range m {
		if q.Contains(p) {
			out = append(out, p)
		}
	}
	geom.SortByX(out)
	return out
}

func checkQuery(t *testing.T, tr *Tree, m map[geom.Point]bool, q geom.Rect) {
	t.Helper()
	got, err := tr.Query4(nil, q)
	if err != nil {
		t.Fatalf("query %v: %v", q, err)
	}
	want := brute4(m, q)
	if !equalPts(sorted(got), want) {
		t.Fatalf("query %v: got %d points, want %d", q, len(got), len(want))
	}
}

func randRect(rng *rand.Rand, coordRange int64) geom.Rect {
	a := rng.Int63n(coordRange)
	b := a + rng.Int63n(coordRange-a+1)
	c := rng.Int63n(coordRange)
	d := c + rng.Int63n(coordRange-c+1)
	return geom.Rect{XLo: a, XHi: b, YLo: c, YHi: d}
}

func TestBuildAndQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 30, 300, 1500} {
		store := eio.NewMemStore(128) // B = 8
		pts := distinctPoints(rng, n, 1200)
		tr, err := Build(store, Options{Rho: 3, K: 4}, pts)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		m := map[geom.Point]bool{}
		for _, p := range pts {
			m[p] = true
		}
		for trial := 0; trial < 40; trial++ {
			checkQuery(t, tr, m, randRect(rng, 1200))
		}
		checkQuery(t, tr, m, geom.Rect{XLo: 0, XHi: 1200, YLo: 0, YHi: 1200})
		checkQuery(t, tr, m, geom.Rect{XLo: 10, XHi: 5, YLo: 0, YHi: 10})
	}
}

func TestInsertIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	store := eio.NewMemStore(128)
	tr, err := Create(store, Options{Rho: 3, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	m := map[geom.Point]bool{}
	pts := distinctPoints(rng, 600, 1500)
	for i, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		m[p] = true
		if i%120 == 119 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
			for trial := 0; trial < 5; trial++ {
				checkQuery(t, tr, m, randRect(rng, 1500))
			}
		}
	}
	if err := tr.Insert(pts[0]); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate: %v", err)
	}
}

func TestDeleteIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	store := eio.NewMemStore(128)
	pts := distinctPoints(rng, 500, 1000)
	tr, err := Build(store, Options{Rho: 3, K: 4}, pts)
	if err != nil {
		t.Fatal(err)
	}
	m := map[geom.Point]bool{}
	for _, p := range pts {
		m[p] = true
	}
	perm := rng.Perm(len(pts))
	for i, pi := range perm {
		found, err := tr.Delete(pts[pi])
		if err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
		if !found {
			t.Fatalf("delete %d: not found", i)
		}
		delete(m, pts[pi])
		if i%90 == 89 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d deletes: %v", i+1, err)
			}
			checkQuery(t, tr, m, randRect(rng, 1000))
		}
	}
	if n, err := tr.Len(); err != nil || n != 0 {
		t.Fatalf("Len = %d, %v", n, err)
	}
	found, err := tr.Delete(pts[0])
	if err != nil || found {
		t.Fatalf("delete from empty: %v %v", found, err)
	}
}

func TestMixedAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	store := eio.NewMemStore(128)
	tr, err := Create(store, Options{Rho: 3, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	m := map[geom.Point]bool{}
	universe := distinctPoints(rng, 300, 700)
	for op := 0; op < 1500; op++ {
		p := universe[rng.Intn(len(universe))]
		if rng.Intn(3) != 0 {
			err := tr.Insert(p)
			if m[p] {
				if !errors.Is(err, ErrDuplicate) {
					t.Fatalf("op %d: %v", op, err)
				}
			} else if err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			m[p] = true
		} else {
			found, err := tr.Delete(p)
			if err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			if found != m[p] {
				t.Fatalf("op %d: found=%v want=%v", op, found, m[p])
			}
			delete(m, p)
		}
		if op%151 == 0 {
			checkQuery(t, tr, m, randRect(rng, 700))
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCoordValidation(t *testing.T) {
	store := eio.NewMemStore(128)
	tr, err := Create(store, Options{Rho: 2, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []geom.Point{
		{X: geom.MinCoord, Y: 0},
		{X: geom.MaxCoord, Y: 0},
		{X: 0, Y: geom.MinCoord},
		{X: 0, Y: geom.MaxCoord},
	} {
		if err := tr.Insert(p); !errors.Is(err, ErrCoordRange) {
			t.Errorf("insert %v: %v", p, err)
		}
	}
	if _, err := Build(store, Options{}, []geom.Point{{X: geom.MaxCoord, Y: 1}}); !errors.Is(err, ErrCoordRange) {
		t.Errorf("build: %v", err)
	}
}

func TestOpenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	store := eio.NewMemStore(128)
	pts := distinctPoints(rng, 200, 500)
	tr, err := Build(store, Options{Rho: 3, K: 4}, pts)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := Open(store, tr.HeaderID())
	if err != nil {
		t.Fatal(err)
	}
	rho, k := tr2.Params()
	if rho != 3 || k != 4 {
		t.Fatalf("params %d %d", rho, k)
	}
	m := map[geom.Point]bool{}
	for _, p := range pts {
		m[p] = true
	}
	checkQuery(t, tr2, m, geom.Rect{XLo: 100, XHi: 400, YLo: 100, YHi: 400})
}

func TestDestroyFreesEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	store := eio.NewMemStore(128)
	pts := distinctPoints(rng, 300, 600)
	tr, err := Build(store, Options{Rho: 3, K: 4}, pts)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Destroy(); err != nil {
		t.Fatal(err)
	}
	if got := store.Pages(); got != 0 {
		t.Fatalf("%d pages leaked", got)
	}
}

// TestTheorem7QueryIO: reporting cost scales with t and the additive term
// stays polylogarithmic — never linear in N.
func TestTheorem7QueryIO(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	store := eio.NewMemStore(256) // B = 16
	pts := distinctPoints(rng, 8000, 1<<30)
	tr, err := Build(store, Options{}, pts)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		q := randRect(rng, 1<<30)
		store.ResetStats()
		got, err := tr.Query4(nil, q)
		if err != nil {
			t.Fatal(err)
		}
		reads := int(store.Stats().Reads)
		tb := (len(got) + 15) / 16
		// Additive budget: ρ spanned children × EPST search depth, plus
		// boundary 3-sided queries; all far below N/B = 500 blocks.
		if limit := 400 + 40*tb; reads > limit {
			t.Errorf("query %v: %d reads for t=%d", q, reads, tb)
		}
	}
}

// TestSpaceFactor: the structure stores each point once per level.
func TestSpaceFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	store := eio.NewMemStore(256) // B = 16
	pts := distinctPoints(rng, 6000, 1<<30)
	tr, err := Build(store, Options{}, pts)
	if err != nil {
		t.Fatal(err)
	}
	st, err := tr.Space()
	if err != nil {
		t.Fatal(err)
	}
	factor := float64(st.Pages*st.B) / float64(st.Points)
	// ≈ (levels−1) internal replicas × 3 structures × constant + leaves.
	if maxFactor := float64(st.Levels*3*8 + 8); factor > maxFactor {
		t.Errorf("space factor %.1f exceeds %v (levels=%d)", factor, maxFactor, st.Levels)
	}
}
