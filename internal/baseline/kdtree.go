package baseline

import (
	"encoding/binary"
	"fmt"
	"sort"

	"rangesearch/internal/eio"
	"rangesearch/internal/geom"
)

// KDTree is an external k-d tree with alternating split axes and median
// leaf splits — a simplified representative of the k-d-B-tree family the
// paper's introduction surveys: linear space and good behaviour on benign
// data, but no worst-case reporting guarantee and no rebalancing, so
// adversarial insertion orders and skewed queries degrade it. That
// degradation is exactly what experiment E11 contrasts against the paper's
// optimal structures.
type KDTree struct {
	store eio.Store
	rs    *eio.RecordStore
	hdr   eio.PageID
	k     int // leaf capacity parameter: leaves hold ≤ 2k points
}

var _ Index = (*KDTree)(nil)

// kdNode: internal nodes carry a full split point and the axis; leaves
// carry points.
type kdNode struct {
	leaf  bool
	axis  int // 0: x-major, 1: y-major
	split geom.Point
	left  eio.PageID
	right eio.PageID
	count int64 // points under this node
	pts   []geom.Point
}

// NewKDTree creates an empty k-d tree on store; k ≤ 0 selects B.
func NewKDTree(store eio.Store, k int) (*KDTree, error) {
	if k <= 0 {
		k = eio.BlockCapacity(store.PageSize())
		if k < 2 {
			k = 2
		}
	}
	t := &KDTree{store: store, rs: eio.NewRecordStore(store), k: k}
	root, err := t.writeNode(eio.NilPage, &kdNode{leaf: true})
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint64(hdr[0:], uint64(root))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(k))
	t.hdr, err = t.rs.Put(hdr)
	if err != nil {
		return nil, err
	}
	return t, nil
}

// OpenKDTree re-attaches to a k-d tree.
func OpenKDTree(store eio.Store, hdr eio.PageID) (*KDTree, error) {
	t := &KDTree{store: store, rs: eio.NewRecordStore(store), hdr: hdr}
	root, k, err := t.loadHdr()
	if err != nil {
		return nil, err
	}
	_ = root
	t.k = k
	return t, nil
}

// HeaderID identifies the index on its store.
func (t *KDTree) HeaderID() eio.PageID { return t.hdr }

func (t *KDTree) loadHdr() (eio.PageID, int, error) {
	raw, err := t.rs.Get(t.hdr)
	if err != nil {
		return eio.NilPage, 0, fmt.Errorf("baseline: kd header: %w", err)
	}
	if len(raw) != 16 {
		return eio.NilPage, 0, fmt.Errorf("baseline: kd header length %d", len(raw))
	}
	return eio.PageID(binary.LittleEndian.Uint64(raw[0:])), int(binary.LittleEndian.Uint64(raw[8:])), nil
}

// cmpAxis orders points by the given axis with the other coordinate as
// tiebreak, making routing deterministic under duplicates on one axis.
func cmpAxis(p, q geom.Point, axis int) int {
	a, b := p.X, q.X
	c, d := p.Y, q.Y
	if axis == 1 {
		a, b, c, d = p.Y, q.Y, p.X, q.X
	}
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	case c < d:
		return -1
	case c > d:
		return 1
	default:
		return 0
	}
}

func (t *KDTree) readNode(id eio.PageID) (*kdNode, error) {
	raw, err := t.rs.Get(id)
	if err != nil {
		return nil, fmt.Errorf("baseline: kd node: %w", err)
	}
	if len(raw) < 8 {
		return nil, fmt.Errorf("baseline: kd node too short")
	}
	n := &kdNode{}
	flags := binary.LittleEndian.Uint32(raw[0:])
	n.leaf = flags&1 != 0
	n.axis = int(flags >> 1 & 1)
	count := int(binary.LittleEndian.Uint32(raw[4:]))
	if n.leaf {
		if len(raw) != 8+eio.PointSize*count {
			return nil, fmt.Errorf("baseline: kd leaf length %d", len(raw))
		}
		n.pts = make([]geom.Point, count)
		for i := range n.pts {
			n.pts[i] = eio.GetPoint(raw, 8+eio.PointSize*i)
		}
		n.count = int64(count)
		return n, nil
	}
	if len(raw) != 8+16+8+8+8 {
		return nil, fmt.Errorf("baseline: kd internal length %d", len(raw))
	}
	n.split = eio.GetPoint(raw, 8)
	n.left = eio.PageID(binary.LittleEndian.Uint64(raw[24:]))
	n.right = eio.PageID(binary.LittleEndian.Uint64(raw[32:]))
	n.count = int64(binary.LittleEndian.Uint64(raw[40:]))
	return n, nil
}

func (t *KDTree) writeNode(id eio.PageID, n *kdNode) (eio.PageID, error) {
	var raw []byte
	flags := uint32(0)
	if n.leaf {
		flags |= 1
	}
	flags |= uint32(n.axis&1) << 1
	if n.leaf {
		raw = make([]byte, 8+eio.PointSize*len(n.pts))
		binary.LittleEndian.PutUint32(raw[0:], flags)
		binary.LittleEndian.PutUint32(raw[4:], uint32(len(n.pts)))
		for i, p := range n.pts {
			eio.PutPoint(raw, 8+eio.PointSize*i, p)
		}
	} else {
		raw = make([]byte, 48)
		binary.LittleEndian.PutUint32(raw[0:], flags)
		eio.PutPoint(raw, 8, n.split)
		binary.LittleEndian.PutUint64(raw[24:], uint64(n.left))
		binary.LittleEndian.PutUint64(raw[32:], uint64(n.right))
		binary.LittleEndian.PutUint64(raw[40:], uint64(n.count))
	}
	if id == eio.NilPage {
		return t.rs.Put(raw)
	}
	return id, t.rs.Update(id, raw)
}

// Insert implements Index.
func (t *KDTree) Insert(p geom.Point) error {
	root, _, err := t.loadHdr()
	if err != nil {
		return err
	}
	type el struct {
		id eio.PageID
		n  *kdNode
	}
	var path []el
	id := root
	depth := 0
	for {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		path = append(path, el{id, n})
		if n.leaf {
			break
		}
		if cmpAxis(p, n.split, n.axis) <= 0 {
			id = n.left
		} else {
			id = n.right
		}
		depth++
	}
	leaf := path[len(path)-1].n
	for _, q := range leaf.pts {
		if q == p {
			return fmt.Errorf("baseline: insert %v: %w", p, ErrDuplicate)
		}
	}
	leaf.pts = append(leaf.pts, p)

	if len(leaf.pts) > 2*t.k {
		// Median split along the depth-alternating axis; the leaf's record
		// becomes the internal node so the parent pointer stays valid.
		axis := depth % 2
		pts := leaf.pts
		sort.Slice(pts, func(i, j int) bool { return cmpAxis(pts[i], pts[j], axis) < 0 })
		mid := len(pts) / 2
		leftID, err := t.writeNode(eio.NilPage, &kdNode{leaf: true, pts: pts[:mid]})
		if err != nil {
			return err
		}
		rightID, err := t.writeNode(eio.NilPage, &kdNode{leaf: true, pts: pts[mid:]})
		if err != nil {
			return err
		}
		internal := &kdNode{
			axis:  axis,
			split: pts[mid-1],
			left:  leftID,
			right: rightID,
			count: int64(len(pts)),
		}
		if _, err := t.writeNode(path[len(path)-1].id, internal); err != nil {
			return err
		}
	} else {
		if _, err := t.writeNode(path[len(path)-1].id, leaf); err != nil {
			return err
		}
	}
	for i := len(path) - 2; i >= 0; i-- {
		path[i].n.count++
		if _, err := t.writeNode(path[i].id, path[i].n); err != nil {
			return err
		}
	}
	return nil
}

// Delete implements Index. Leaves are never merged (k-d structures degrade
// under deletion; that behaviour is part of what E11 measures).
func (t *KDTree) Delete(p geom.Point) (bool, error) {
	root, _, err := t.loadHdr()
	if err != nil {
		return false, err
	}
	type el struct {
		id eio.PageID
		n  *kdNode
	}
	var path []el
	id := root
	for {
		n, err := t.readNode(id)
		if err != nil {
			return false, err
		}
		path = append(path, el{id, n})
		if n.leaf {
			break
		}
		if cmpAxis(p, n.split, n.axis) <= 0 {
			id = n.left
		} else {
			id = n.right
		}
	}
	leaf := path[len(path)-1].n
	pos := -1
	for i, q := range leaf.pts {
		if q == p {
			pos = i
			break
		}
	}
	if pos < 0 {
		return false, nil
	}
	leaf.pts = append(leaf.pts[:pos], leaf.pts[pos+1:]...)
	if _, err := t.writeNode(path[len(path)-1].id, leaf); err != nil {
		return false, err
	}
	for i := len(path) - 2; i >= 0; i-- {
		path[i].n.count--
		if _, err := t.writeNode(path[i].id, path[i].n); err != nil {
			return false, err
		}
	}
	return true, nil
}

// Query implements Index: recursive region pruning.
func (t *KDTree) Query(dst []geom.Point, q geom.Rect) ([]geom.Point, error) {
	if q.Empty() {
		return dst, nil
	}
	root, _, err := t.loadHdr()
	if err != nil {
		return dst, err
	}
	return t.queryRec(root, dst, q)
}

func (t *KDTree) queryRec(id eio.PageID, dst []geom.Point, q geom.Rect) ([]geom.Point, error) {
	n, err := t.readNode(id)
	if err != nil {
		return dst, err
	}
	if n.leaf {
		return geom.Filter4(dst, n.pts, q), nil
	}
	goLeft, goRight := true, true
	if n.axis == 0 {
		goLeft = q.XLo <= n.split.X
		goRight = q.XHi >= n.split.X
	} else {
		goLeft = q.YLo <= n.split.Y
		goRight = q.YHi >= n.split.Y
	}
	if goLeft {
		dst, err = t.queryRec(n.left, dst, q)
		if err != nil {
			return dst, err
		}
	}
	if goRight {
		dst, err = t.queryRec(n.right, dst, q)
		if err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// Len implements Index.
func (t *KDTree) Len() (int, error) {
	root, _, err := t.loadHdr()
	if err != nil {
		return 0, err
	}
	n, err := t.readNode(root)
	if err != nil {
		return 0, err
	}
	return int(n.count), nil
}

// Destroy implements Index.
func (t *KDTree) Destroy() error {
	root, _, err := t.loadHdr()
	if err != nil {
		return err
	}
	if err := t.freeRec(root); err != nil {
		return err
	}
	return t.rs.Delete(t.hdr)
}

func (t *KDTree) freeRec(id eio.PageID) error {
	n, err := t.readNode(id)
	if err != nil {
		return err
	}
	if !n.leaf {
		if err := t.freeRec(n.left); err != nil {
			return err
		}
		if err := t.freeRec(n.right); err != nil {
			return err
		}
	}
	return t.rs.Delete(id)
}
