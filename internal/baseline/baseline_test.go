package baseline

import (
	"errors"
	"math/rand"
	"testing"

	"rangesearch/internal/eio"
	"rangesearch/internal/geom"
)

func distinctPoints(rng *rand.Rand, n int, coordRange int64) []geom.Point {
	seen := make(map[geom.Point]bool)
	var pts []geom.Point
	for len(pts) < n {
		p := geom.Point{X: rng.Int63n(coordRange), Y: rng.Int63n(coordRange)}
		if !seen[p] {
			seen[p] = true
			pts = append(pts, p)
		}
	}
	return pts
}

func sorted(pts []geom.Point) []geom.Point {
	out := append([]geom.Point(nil), pts...)
	geom.SortByX(out)
	return out
}

func equalPts(a, b []geom.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// conformance runs the shared Index contract test against an
// implementation.
func conformance(t *testing.T, name string, mk func(store eio.Store) (Index, error)) {
	t.Run(name, func(t *testing.T) {
		rng := rand.New(rand.NewSource(42))
		store := eio.NewMemStore(128)
		idx, err := mk(store)
		if err != nil {
			t.Fatal(err)
		}
		model := map[geom.Point]bool{}
		universe := distinctPoints(rng, 400, 800)

		for op := 0; op < 3000; op++ {
			p := universe[rng.Intn(len(universe))]
			switch rng.Intn(3) {
			case 0, 1:
				err := idx.Insert(p)
				if model[p] {
					if !errors.Is(err, ErrDuplicate) {
						t.Fatalf("op %d: duplicate insert: %v", op, err)
					}
				} else if err != nil {
					t.Fatalf("op %d: insert: %v", op, err)
				}
				model[p] = true
			case 2:
				found, err := idx.Delete(p)
				if err != nil {
					t.Fatalf("op %d: delete: %v", op, err)
				}
				if found != model[p] {
					t.Fatalf("op %d: delete %v found=%v want=%v", op, p, found, model[p])
				}
				delete(model, p)
			}
			if op%127 == 0 {
				a := rng.Int63n(800)
				b := a + rng.Int63n(800-a+1)
				c := rng.Int63n(800)
				d := c + rng.Int63n(800-c+1)
				q := geom.Rect{XLo: a, XHi: b, YLo: c, YHi: d}
				got, err := idx.Query(nil, q)
				if err != nil {
					t.Fatal(err)
				}
				var want []geom.Point
				for p := range model {
					if q.Contains(p) {
						want = append(want, p)
					}
				}
				if !equalPts(sorted(got), sorted(want)) {
					t.Fatalf("op %d: query %v: got %d want %d", op, q, len(got), len(want))
				}
				n, err := idx.Len()
				if err != nil || n != len(model) {
					t.Fatalf("op %d: Len=%d want %d (%v)", op, n, len(model), err)
				}
			}
		}
		// 3-sided special case.
		q := geom.Rect{XLo: 100, XHi: 600, YLo: 400, YHi: geom.MaxCoord}
		got, err := idx.Query(nil, q)
		if err != nil {
			t.Fatal(err)
		}
		var want []geom.Point
		for p := range model {
			if q.Contains(p) {
				want = append(want, p)
			}
		}
		if !equalPts(sorted(got), sorted(want)) {
			t.Fatalf("3-sided query mismatch: %d vs %d", len(got), len(want))
		}
		if err := idx.Destroy(); err != nil {
			t.Fatal(err)
		}
		if got := store.Pages(); got != 0 {
			t.Fatalf("%d pages leaked after Destroy", got)
		}
	})
}

func TestConformance(t *testing.T) {
	conformance(t, "scan", func(s eio.Store) (Index, error) { return NewScan(s) })
	conformance(t, "xtree", func(s eio.Store) (Index, error) { return NewXTree(s) })
	conformance(t, "kdtree", func(s eio.Store) (Index, error) { return NewKDTree(s, 4) })
}

func TestScanReopen(t *testing.T) {
	store := eio.NewMemStore(128)
	s, err := NewScan(store)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	pts := distinctPoints(rng, 50, 100)
	for _, p := range pts {
		if err := s.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := OpenScan(store, s.HeaderID())
	if err != nil {
		t.Fatal(err)
	}
	n, err := s2.Len()
	if err != nil || n != 50 {
		t.Fatalf("Len=%d, %v", n, err)
	}
}

func TestXTreeBulkAndReopen(t *testing.T) {
	store := eio.NewMemStore(128)
	rng := rand.New(rand.NewSource(2))
	pts := distinctPoints(rng, 300, 1000)
	x, err := BuildXTree(store, pts)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := OpenXTree(store, x.HeaderID())
	if err != nil {
		t.Fatal(err)
	}
	got, err := x2.Query(nil, geom.Rect{XLo: 0, XHi: 1000, YLo: 0, YHi: 1000})
	if err != nil || len(got) != 300 {
		t.Fatalf("full query: %d, %v", len(got), err)
	}
}

func TestKDTreeReopen(t *testing.T) {
	store := eio.NewMemStore(128)
	kd, err := NewKDTree(store, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	pts := distinctPoints(rng, 200, 500)
	for _, p := range pts {
		if err := kd.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	kd2, err := OpenKDTree(store, kd.HeaderID())
	if err != nil {
		t.Fatal(err)
	}
	got, err := kd2.Query(nil, geom.Rect{XLo: 0, XHi: 500, YLo: 0, YHi: 500})
	if err != nil || len(got) != 200 {
		t.Fatalf("full query: %d, %v", len(got), err)
	}
}

// TestQueryCostOrdering demonstrates the E11 story on an x-wide, y-thin
// query: the scan reads everything, the x-tree reads the whole x-slab.
func TestQueryCostOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := distinctPoints(rng, 4000, 1<<20)
	thin := geom.Rect{XLo: 0, XHi: 1 << 20, YLo: 0, YHi: 1 << 8} // selective in y only

	measure := func(mk func(store eio.Store) (Index, error)) (int, uint64) {
		store := eio.NewMemStore(256)
		idx, err := mk(store)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pts {
			if err := idx.Insert(p); err != nil {
				t.Fatal(err)
			}
		}
		store.ResetStats()
		got, err := idx.Query(nil, thin)
		if err != nil {
			t.Fatal(err)
		}
		return len(got), store.Stats().Reads
	}

	nScan, costScan := measure(func(s eio.Store) (Index, error) { return NewScan(s) })
	nX, costX := measure(func(s eio.Store) (Index, error) { return NewXTree(s) })
	if nScan != nX {
		t.Fatalf("result mismatch: %d vs %d", nScan, nX)
	}
	// Both degrade to reading Ω(n) blocks on this query.
	if costScan < 4000/16 {
		t.Errorf("scan cost %d suspiciously low", costScan)
	}
	if costX < 4000/32 {
		t.Errorf("xtree cost %d suspiciously low for an x-wide query", costX)
	}
}
