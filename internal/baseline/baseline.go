// Package baseline implements the comparison structures for the benchmark
// suite — representatives of the "practical" families the paper's
// introduction surveys (grid files, k-d-B-trees, R-trees, space-filling
// curves) whose worst-case behaviour the optimal structures of the paper
// are designed to beat:
//
//   - Scan: points packed into blocks with no index; every query reads
//     all n blocks. The floor for space, the ceiling for query cost.
//   - XTree: a B-tree on x-order with y-filtering; optimal for x-narrow
//     queries, Θ(n) for x-wide, y-thin ones.
//   - KDTree: an external k-d tree with alternating split axes —
//     a simplified stand-in for the k-d-B-tree family: linear space, good
//     average-case behaviour, no worst-case reporting guarantee.
//
// All three live on eio stores so their measured I/O counts are directly
// comparable to the paper's structures.
package baseline

import (
	"rangesearch/internal/geom"
)

// Index is the query interface shared by baselines (and implemented by the
// adapters in internal/core for the paper's structures): a dynamic set of
// distinct points under 4-sided queries. 3-sided queries are the special
// case YHi = geom.MaxCoord.
type Index interface {
	// Insert adds p; inserting a present point is an error.
	Insert(p geom.Point) error
	// Delete removes p, reporting whether it was present.
	Delete(p geom.Point) (bool, error)
	// Query appends the stored points inside q to dst.
	Query(dst []geom.Point, q geom.Rect) ([]geom.Point, error)
	// Len returns the number of stored points.
	Len() (int, error)
	// Destroy frees all storage owned by the index.
	Destroy() error
}
