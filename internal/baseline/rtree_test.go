package baseline

import (
	"math/rand"
	"testing"

	"rangesearch/internal/eio"
	"rangesearch/internal/geom"
)

func TestRTreeConformance(t *testing.T) {
	conformance(t, "rtree", func(s eio.Store) (Index, error) { return NewRTree(s, 8) })
}

func TestRTreeBulkLoadAndQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 50, 2000} {
		store := eio.NewMemStore(256)
		pts := distinctPoints(rng, n, 5000)
		tr, err := BuildRTree(store, 16, pts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tr.Len()
		if err != nil || got != n {
			t.Fatalf("Len = %d want %d (%v)", got, n, err)
		}
		for trial := 0; trial < 60; trial++ {
			a := rng.Int63n(5000)
			b := a + rng.Int63n(5000-a+1)
			c := rng.Int63n(5000)
			d := c + rng.Int63n(5000-c+1)
			q := geom.Rect{XLo: a, XHi: b, YLo: c, YHi: d}
			res, err := tr.Query(nil, q)
			if err != nil {
				t.Fatal(err)
			}
			var want []geom.Point
			for _, p := range pts {
				if q.Contains(p) {
					want = append(want, p)
				}
			}
			if !equalPts(sorted(res), sorted(want)) {
				t.Fatalf("n=%d query %v: got %d want %d", n, q, len(res), len(want))
			}
		}
	}
}

func TestRTreeBulkThenMutate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	store := eio.NewMemStore(256)
	pts := distinctPoints(rng, 1000, 4000)
	tr, err := BuildRTree(store, 8, pts)
	if err != nil {
		t.Fatal(err)
	}
	// Delete a third, insert fresh points.
	live := map[geom.Point]bool{}
	for _, p := range pts {
		live[p] = true
	}
	for _, p := range pts[:300] {
		found, err := tr.Delete(p)
		if err != nil || !found {
			t.Fatalf("delete %v: %v %v", p, found, err)
		}
		delete(live, p)
	}
	fresh := distinctPoints(rng, 500, 4000)
	added := 0
	for _, p := range fresh {
		if live[p] {
			continue
		}
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
		live[p] = true
		if added++; added == 200 {
			break
		}
	}
	q := geom.Rect{XLo: 0, XHi: 4000, YLo: 0, YHi: 4000}
	res, err := tr.Query(nil, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(live) {
		t.Fatalf("full query: %d of %d points", len(res), len(live))
	}
	n, err := tr.Len()
	if err != nil || n != len(live) {
		t.Fatalf("Len = %d want %d", n, len(live))
	}
}

func TestRTreeReopen(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	store := eio.NewMemStore(256)
	pts := distinctPoints(rng, 300, 2000)
	tr, err := BuildRTree(store, 8, pts)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := OpenRTree(store, tr.HeaderID())
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr2.Query(nil, geom.Rect{XLo: 0, XHi: 2000, YLo: 0, YHi: 2000})
	if err != nil || len(res) != 300 {
		t.Fatalf("reopened full query: %d (%v)", len(res), err)
	}
}
