package baseline

import (
	"errors"
	"fmt"

	"rangesearch/internal/eio"
	"rangesearch/internal/geom"
	"rangesearch/internal/wbtree"
)

// XTree is a one-dimensional B-tree over the points' x-order with
// y-filtering at query time — what a plain relational index on the x column
// gives you. It reads every point in the query's x-slab regardless of the
// y-range, so x-wide/y-thin queries degrade to Θ(n) I/Os.
type XTree struct {
	t *wbtree.Tree
}

var _ Index = (*XTree)(nil)

// NewXTree creates an empty x-ordered B-tree index on store.
func NewXTree(store eio.Store) (*XTree, error) {
	t, err := wbtree.Create(store, 0, 0)
	if err != nil {
		return nil, err
	}
	return &XTree{t: t}, nil
}

// BuildXTree bulk-loads an index over pts (distinct).
func BuildXTree(store eio.Store, pts []geom.Point) (*XTree, error) {
	t, err := wbtree.Create(store, 0, 0)
	if err != nil {
		return nil, err
	}
	sorted := make([]geom.Point, len(pts))
	copy(sorted, pts)
	geom.SortByX(sorted)
	if err := t.BulkLoad(sorted); err != nil {
		return nil, err
	}
	return &XTree{t: t}, nil
}

// OpenXTree re-attaches to an index.
func OpenXTree(store eio.Store, hdr eio.PageID) (*XTree, error) {
	t, err := wbtree.Open(store, hdr)
	if err != nil {
		return nil, err
	}
	return &XTree{t: t}, nil
}

// HeaderID identifies the index on its store.
func (x *XTree) HeaderID() eio.PageID { return x.t.HeaderID() }

// Insert implements Index.
func (x *XTree) Insert(p geom.Point) error {
	err := x.t.Insert(p)
	if errors.Is(err, wbtree.ErrDuplicate) {
		return fmt.Errorf("baseline: insert %v: %w", p, ErrDuplicate)
	}
	return err
}

// Delete implements Index.
func (x *XTree) Delete(p geom.Point) (bool, error) { return x.t.Delete(p) }

// Query implements Index: range-scan the x-slab, filter on y.
func (x *XTree) Query(dst []geom.Point, q geom.Rect) ([]geom.Point, error) {
	if q.Empty() {
		return dst, nil
	}
	err := x.t.Range(
		geom.Point{X: q.XLo, Y: geom.MinCoord},
		geom.Point{X: q.XHi, Y: geom.MaxCoord},
		func(p geom.Point) bool {
			if p.Y >= q.YLo && p.Y <= q.YHi {
				dst = append(dst, p)
			}
			return true
		})
	return dst, err
}

// Len implements Index.
func (x *XTree) Len() (int, error) { return x.t.Len() }

// Destroy implements Index.
func (x *XTree) Destroy() error { return x.t.Destroy() }
