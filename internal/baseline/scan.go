package baseline

import (
	"encoding/binary"
	"errors"
	"fmt"

	"rangesearch/internal/eio"
	"rangesearch/internal/geom"
)

// ErrDuplicate reports insertion of a point already present in an index.
var ErrDuplicate = errors.New("baseline: duplicate point")

// Scan is the unindexed baseline: points are packed into full blocks in
// arrival order (a directory record lists the blocks). Queries read every
// block. Inserts cost O(1) I/Os; deletes and membership cost O(n).
type Scan struct {
	store eio.Store
	rs    *eio.RecordStore
	hdr   eio.PageID
	b     int
}

var _ Index = (*Scan)(nil)

// scanMeta: directory of blocks plus the count in the (single) tail block.
type scanMeta struct {
	blocks []eio.PageID
	tailN  int // points used in the last block; all earlier blocks are full
}

// NewScan creates an empty scan index on store.
func NewScan(store eio.Store) (*Scan, error) {
	s := &Scan{store: store, rs: eio.NewRecordStore(store), b: eio.BlockCapacity(store.PageSize())}
	if s.b < 1 {
		return nil, fmt.Errorf("baseline: page too small")
	}
	id, err := s.rs.Put(encodeScanMeta(&scanMeta{}))
	if err != nil {
		return nil, err
	}
	s.hdr = id
	return s, nil
}

// OpenScan re-attaches to a scan index.
func OpenScan(store eio.Store, hdr eio.PageID) (*Scan, error) {
	s := &Scan{store: store, rs: eio.NewRecordStore(store), b: eio.BlockCapacity(store.PageSize()), hdr: hdr}
	if _, err := s.loadMeta(); err != nil {
		return nil, err
	}
	return s, nil
}

// HeaderID identifies the index on its store.
func (s *Scan) HeaderID() eio.PageID { return s.hdr }

func (s *Scan) loadMeta() (*scanMeta, error) {
	raw, err := s.rs.Get(s.hdr)
	if err != nil {
		return nil, fmt.Errorf("baseline: scan header: %w", err)
	}
	if len(raw) < 12 {
		return nil, fmt.Errorf("baseline: scan header too short")
	}
	nb := int(binary.LittleEndian.Uint32(raw[0:]))
	m := &scanMeta{tailN: int(binary.LittleEndian.Uint32(raw[4:]))}
	if len(raw) != 12+8*nb {
		return nil, fmt.Errorf("baseline: scan header length %d", len(raw))
	}
	for i := 0; i < nb; i++ {
		m.blocks = append(m.blocks, eio.PageID(binary.LittleEndian.Uint64(raw[12+8*i:])))
	}
	return m, nil
}

func encodeScanMeta(m *scanMeta) []byte {
	out := make([]byte, 12+8*len(m.blocks))
	binary.LittleEndian.PutUint32(out[0:], uint32(len(m.blocks)))
	binary.LittleEndian.PutUint32(out[4:], uint32(m.tailN))
	for i, id := range m.blocks {
		binary.LittleEndian.PutUint64(out[12+8*i:], uint64(id))
	}
	return out
}

func (s *Scan) storeMeta(m *scanMeta) error {
	return s.rs.Update(s.hdr, encodeScanMeta(m))
}

func (s *Scan) blockCount(m *scanMeta, i int) int {
	if i == len(m.blocks)-1 {
		return m.tailN
	}
	return s.b
}

// Insert implements Index. It verifies absence (a full scan — the honest
// cost of an unindexed heap with set semantics).
func (s *Scan) Insert(p geom.Point) error {
	m, err := s.loadMeta()
	if err != nil {
		return err
	}
	found, _, _, err := s.locate(m, p)
	if err != nil {
		return err
	}
	if found {
		return fmt.Errorf("baseline: insert %v: %w", p, ErrDuplicate)
	}
	if len(m.blocks) == 0 || m.tailN == s.b {
		id, err := eio.WritePointBlock(s.store, eio.NilPage, []geom.Point{p})
		if err != nil {
			return err
		}
		m.blocks = append(m.blocks, id)
		m.tailN = 1
		return s.storeMeta(m)
	}
	tail := m.blocks[len(m.blocks)-1]
	pts, err := eio.ReadPointBlock(nil, s.store, tail, m.tailN)
	if err != nil {
		return err
	}
	pts = append(pts, p)
	if _, err := eio.WritePointBlock(s.store, tail, pts); err != nil {
		return err
	}
	m.tailN++
	return s.storeMeta(m)
}

// locate finds p, returning its block index and offset.
func (s *Scan) locate(m *scanMeta, p geom.Point) (bool, int, int, error) {
	for bi, id := range m.blocks {
		pts, err := eio.ReadPointBlock(nil, s.store, id, s.blockCount(m, bi))
		if err != nil {
			return false, 0, 0, err
		}
		for oi, q := range pts {
			if q == p {
				return true, bi, oi, nil
			}
		}
	}
	return false, 0, 0, nil
}

// Delete implements Index: the hole is plugged with the last point.
func (s *Scan) Delete(p geom.Point) (bool, error) {
	m, err := s.loadMeta()
	if err != nil {
		return false, err
	}
	found, bi, oi, err := s.locate(m, p)
	if err != nil || !found {
		return false, err
	}
	tailIdx := len(m.blocks) - 1
	tail, err := eio.ReadPointBlock(nil, s.store, m.blocks[tailIdx], m.tailN)
	if err != nil {
		return false, err
	}
	last := tail[len(tail)-1]
	if bi == tailIdx {
		tail[oi] = last
		tail = tail[:len(tail)-1]
		if _, err := eio.WritePointBlock(s.store, m.blocks[tailIdx], tail); err != nil {
			return false, err
		}
	} else {
		pts, err := eio.ReadPointBlock(nil, s.store, m.blocks[bi], s.blockCount(m, bi))
		if err != nil {
			return false, err
		}
		pts[oi] = last
		if _, err := eio.WritePointBlock(s.store, m.blocks[bi], pts); err != nil {
			return false, err
		}
		tail = tail[:len(tail)-1]
		if _, err := eio.WritePointBlock(s.store, m.blocks[tailIdx], tail); err != nil {
			return false, err
		}
	}
	m.tailN--
	if m.tailN == 0 {
		if err := s.store.Free(m.blocks[tailIdx]); err != nil {
			return false, err
		}
		m.blocks = m.blocks[:tailIdx]
		m.tailN = s.b
		if len(m.blocks) == 0 {
			m.tailN = 0
		}
	}
	return true, s.storeMeta(m)
}

// Query implements Index by reading every block.
func (s *Scan) Query(dst []geom.Point, q geom.Rect) ([]geom.Point, error) {
	m, err := s.loadMeta()
	if err != nil {
		return dst, err
	}
	for bi, id := range m.blocks {
		pts, err := eio.ReadPointBlock(nil, s.store, id, s.blockCount(m, bi))
		if err != nil {
			return dst, err
		}
		dst = geom.Filter4(dst, pts, q)
	}
	return dst, nil
}

// Len implements Index.
func (s *Scan) Len() (int, error) {
	m, err := s.loadMeta()
	if err != nil {
		return 0, err
	}
	if len(m.blocks) == 0 {
		return 0, nil
	}
	return (len(m.blocks)-1)*s.b + m.tailN, nil
}

// Destroy implements Index.
func (s *Scan) Destroy() error {
	m, err := s.loadMeta()
	if err != nil {
		return err
	}
	for _, id := range m.blocks {
		if err := s.store.Free(id); err != nil {
			return err
		}
	}
	return s.rs.Delete(s.hdr)
}
