package baseline

import (
	"encoding/binary"
	"fmt"
	"sort"

	"rangesearch/internal/eio"
	"rangesearch/internal/geom"
)

// RTree is an external R-tree — the most widely deployed member of the
// heuristic family the paper's introduction surveys. This implementation
// uses Sort-Tile-Recursive (STR) bulk loading and classic insertion
// (least-area-enlargement descent, linear split on overflow). Like all
// R-variants it offers linear space and good average behaviour but no
// worst-case reporting guarantee: overlapping bounding boxes force
// multi-path descents that experiment E11 measures against the paper's
// optimal structures.
type RTree struct {
	store eio.Store
	rs    *eio.RecordStore
	hdr   eio.PageID
	m     int // max entries per node (leaf: points, internal: child boxes)
}

var _ Index = (*RTree)(nil)

// rtNode is a decoded R-tree node.
type rtNode struct {
	leaf    bool
	pts     []geom.Point // leaves
	entries []rtEntry    // internal nodes
	count   int64        // points under this node
}

type rtEntry struct {
	mbr   geom.Rect
	child eio.PageID
	count int64
}

// NewRTree creates an empty R-tree; m ≤ 0 selects the page-derived fanout.
func NewRTree(store eio.Store, m int) (*RTree, error) {
	if m <= 0 {
		m = eio.BlockCapacity(store.PageSize())
		if m < 4 {
			m = 4
		}
	}
	if m < 4 {
		return nil, fmt.Errorf("baseline: rtree fanout %d < 4", m)
	}
	t := &RTree{store: store, rs: eio.NewRecordStore(store), m: m}
	root, err := t.writeNode(eio.NilPage, &rtNode{leaf: true})
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint64(hdr[0:], uint64(root))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(m))
	t.hdr, err = t.rs.Put(hdr)
	if err != nil {
		return nil, err
	}
	return t, nil
}

// BuildRTree bulk-loads an R-tree over pts (distinct) with STR packing.
func BuildRTree(store eio.Store, m int, pts []geom.Point) (*RTree, error) {
	t, err := NewRTree(store, m)
	if err != nil {
		return nil, err
	}
	if len(pts) == 0 {
		return t, nil
	}
	root, _, err := t.loadHdr()
	if err != nil {
		return nil, err
	}
	if err := t.rs.Delete(root); err != nil {
		return nil, err
	}

	// STR: sort by x, slice into vertical strips of √(n/m) leaves, sort
	// each strip by y, pack leaves of m points.
	sorted := append([]geom.Point(nil), pts...)
	geom.SortByX(sorted)
	nLeaves := (len(sorted) + t.m - 1) / t.m
	strips := 1
	for strips*strips < nLeaves {
		strips++
	}
	perStrip := (len(sorted) + strips - 1) / strips
	type packed struct {
		id    eio.PageID
		mbr   geom.Rect
		count int64
	}
	var level []packed
	for s := 0; s < len(sorted); s += perStrip {
		strip := sorted[s:min(s+perStrip, len(sorted))]
		sort.Slice(strip, func(i, j int) bool { return strip[i].YLess(strip[j]) })
		for l := 0; l < len(strip); l += t.m {
			leafPts := strip[l:min(l+t.m, len(strip))]
			n := &rtNode{leaf: true, pts: append([]geom.Point(nil), leafPts...)}
			id, err := t.writeNode(eio.NilPage, n)
			if err != nil {
				return nil, err
			}
			level = append(level, packed{id: id, mbr: mbrOfPoints(leafPts), count: int64(len(leafPts))})
		}
	}
	for len(level) > 1 {
		var up []packed
		for s := 0; s < len(level); s += t.m {
			group := level[s:min(s+t.m, len(level))]
			n := &rtNode{}
			box := group[0].mbr
			for _, g := range group {
				n.entries = append(n.entries, rtEntry{mbr: g.mbr, child: g.id, count: g.count})
				box = union(box, g.mbr)
				n.count += g.count
			}
			id, err := t.writeNode(eio.NilPage, n)
			if err != nil {
				return nil, err
			}
			up = append(up, packed{id: id, mbr: box, count: n.count})
		}
		level = up
	}
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint64(hdr[0:], uint64(level[0].id))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(t.m))
	return t, t.rs.Update(t.hdr, hdr)
}

// OpenRTree re-attaches to an R-tree.
func OpenRTree(store eio.Store, hdr eio.PageID) (*RTree, error) {
	t := &RTree{store: store, rs: eio.NewRecordStore(store), hdr: hdr}
	_, m, err := t.loadHdr()
	if err != nil {
		return nil, err
	}
	t.m = m
	return t, nil
}

// HeaderID identifies the index on its store.
func (t *RTree) HeaderID() eio.PageID { return t.hdr }

func (t *RTree) loadHdr() (eio.PageID, int, error) {
	raw, err := t.rs.Get(t.hdr)
	if err != nil {
		return eio.NilPage, 0, fmt.Errorf("baseline: rtree header: %w", err)
	}
	if len(raw) != 16 {
		return eio.NilPage, 0, fmt.Errorf("baseline: rtree header length %d", len(raw))
	}
	return eio.PageID(binary.LittleEndian.Uint64(raw[0:])), int(binary.LittleEndian.Uint64(raw[8:])), nil
}

func mbrOfPoints(pts []geom.Point) geom.Rect {
	r := geom.Rect{XLo: pts[0].X, XHi: pts[0].X, YLo: pts[0].Y, YHi: pts[0].Y}
	for _, p := range pts[1:] {
		r = union(r, geom.Rect{XLo: p.X, XHi: p.X, YLo: p.Y, YHi: p.Y})
	}
	return r
}

func union(a, b geom.Rect) geom.Rect {
	if a.XLo > b.XLo {
		a.XLo = b.XLo
	}
	if a.XHi < b.XHi {
		a.XHi = b.XHi
	}
	if a.YLo > b.YLo {
		a.YLo = b.YLo
	}
	if a.YHi < b.YHi {
		a.YHi = b.YHi
	}
	return a
}

// area returns the (saturating) area of r, for enlargement comparisons.
func area(r geom.Rect) float64 {
	return float64(r.XHi-r.XLo) * float64(r.YHi-r.YLo)
}

// Insert implements Index.
func (t *RTree) Insert(p geom.Point) error {
	root, _, err := t.loadHdr()
	if err != nil {
		return err
	}
	// Reject duplicates (Index contract) with a containment query first.
	dup, err := t.Query(nil, geom.Rect{XLo: p.X, XHi: p.X, YLo: p.Y, YHi: p.Y})
	if err != nil {
		return err
	}
	for _, q := range dup {
		if q == p {
			return fmt.Errorf("baseline: insert %v: %w", p, ErrDuplicate)
		}
	}
	type el struct {
		id  eio.PageID
		n   *rtNode
		idx int
	}
	var path []el
	id := root
	for {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		if n.leaf {
			path = append(path, el{id: id, n: n})
			break
		}
		// Least-area-enlargement descent.
		best, bestGrow, bestArea := 0, -1.0, 0.0
		pr := geom.Rect{XLo: p.X, XHi: p.X, YLo: p.Y, YHi: p.Y}
		for i := range n.entries {
			grow := area(union(n.entries[i].mbr, pr)) - area(n.entries[i].mbr)
			if bestGrow < 0 || grow < bestGrow || (grow == bestGrow && area(n.entries[i].mbr) < bestArea) {
				best, bestGrow, bestArea = i, grow, area(n.entries[i].mbr)
			}
		}
		path = append(path, el{id: id, n: n, idx: best})
		id = n.entries[best].child
	}

	leaf := path[len(path)-1].n
	leaf.pts = append(leaf.pts, p)

	// Walk up, splitting overflowing nodes and refreshing MBRs/counts.
	type carryT struct {
		id    eio.PageID
		mbr   geom.Rect
		count int64
	}
	var carry *carryT
	for i := len(path) - 1; i >= 0; i-- {
		e := path[i]
		n := e.n
		if !n.leaf {
			n.entries[e.idx].mbr = union(n.entries[e.idx].mbr, geom.Rect{XLo: p.X, XHi: p.X, YLo: p.Y, YHi: p.Y})
			n.entries[e.idx].count++
			n.count++
			if carry != nil {
				// Child below split: fix its entry and add the sibling.
				left, err := t.readNode(n.entries[e.idx].child)
				if err != nil {
					return err
				}
				n.entries[e.idx].mbr = t.nodeMBR(left)
				n.entries[e.idx].count = left.count
				n.entries = append(n.entries, rtEntry{mbr: carry.mbr, child: carry.id, count: carry.count})
				carry = nil
			}
		} else {
			n.count = int64(len(n.pts))
		}

		if (n.leaf && len(n.pts) > t.m) || (!n.leaf && len(n.entries) > t.m) {
			right := t.split(n)
			rightID, err := t.writeNode(eio.NilPage, right)
			if err != nil {
				return err
			}
			if err := t.writeBack(e.id, n); err != nil {
				return err
			}
			if i > 0 {
				carry = &carryT{id: rightID, mbr: t.nodeMBR(right), count: right.count}
				continue
			}
			// Root split.
			newRoot := &rtNode{
				entries: []rtEntry{
					{mbr: t.nodeMBR(n), child: e.id, count: n.count},
					{mbr: t.nodeMBR(right), child: rightID, count: right.count},
				},
				count: n.count + right.count,
			}
			rootID, err := t.writeNode(eio.NilPage, newRoot)
			if err != nil {
				return err
			}
			hdr := make([]byte, 16)
			binary.LittleEndian.PutUint64(hdr[0:], uint64(rootID))
			binary.LittleEndian.PutUint64(hdr[8:], uint64(t.m))
			if err := t.rs.Update(t.hdr, hdr); err != nil {
				return err
			}
			continue
		}
		if err := t.writeBack(e.id, n); err != nil {
			return err
		}
	}
	return nil
}

// split performs a linear split along the longer MBR axis; n keeps the
// lower half, the returned node takes the upper.
func (t *RTree) split(n *rtNode) *rtNode {
	box := t.nodeMBR(n)
	byX := box.XHi-box.XLo >= box.YHi-box.YLo
	if n.leaf {
		sort.Slice(n.pts, func(i, j int) bool {
			if byX {
				return n.pts[i].Less(n.pts[j])
			}
			return n.pts[i].YLess(n.pts[j])
		})
		mid := len(n.pts) / 2
		right := &rtNode{leaf: true, pts: append([]geom.Point(nil), n.pts[mid:]...)}
		right.count = int64(len(right.pts))
		n.pts = n.pts[:mid]
		n.count = int64(len(n.pts))
		return right
	}
	sort.Slice(n.entries, func(i, j int) bool {
		if byX {
			return n.entries[i].mbr.XLo < n.entries[j].mbr.XLo
		}
		return n.entries[i].mbr.YLo < n.entries[j].mbr.YLo
	})
	mid := len(n.entries) / 2
	right := &rtNode{entries: append([]rtEntry(nil), n.entries[mid:]...)}
	for _, e := range right.entries {
		right.count += e.count
	}
	n.entries = n.entries[:mid]
	n.count = 0
	for _, e := range n.entries {
		n.count += e.count
	}
	return right
}

func (t *RTree) nodeMBR(n *rtNode) geom.Rect {
	if n.leaf {
		if len(n.pts) == 0 {
			return geom.Rect{XLo: 1, XHi: 0, YLo: 1, YHi: 0} // empty
		}
		return mbrOfPoints(n.pts)
	}
	box := n.entries[0].mbr
	for _, e := range n.entries[1:] {
		box = union(box, e.mbr)
	}
	return box
}

// Delete implements Index. The point is removed from its leaf; MBRs are
// not shrunk (standard R-tree laziness — another degradation E11 can
// expose under churn).
func (t *RTree) Delete(p geom.Point) (bool, error) {
	root, _, err := t.loadHdr()
	if err != nil {
		return false, err
	}
	return t.deleteRec(root, p)
}

func (t *RTree) deleteRec(id eio.PageID, p geom.Point) (bool, error) {
	n, err := t.readNode(id)
	if err != nil {
		return false, err
	}
	if n.leaf {
		for i, q := range n.pts {
			if q == p {
				n.pts = append(n.pts[:i], n.pts[i+1:]...)
				n.count = int64(len(n.pts))
				return true, t.writeBack(id, n)
			}
		}
		return false, nil
	}
	pr := geom.Rect{XLo: p.X, XHi: p.X, YLo: p.Y, YHi: p.Y}
	for i := range n.entries {
		if !n.entries[i].mbr.Intersects(pr) {
			continue
		}
		found, err := t.deleteRec(n.entries[i].child, p)
		if err != nil {
			return false, err
		}
		if found {
			n.entries[i].count--
			n.count--
			return true, t.writeBack(id, n)
		}
	}
	return false, nil
}

// Query implements Index.
func (t *RTree) Query(dst []geom.Point, q geom.Rect) ([]geom.Point, error) {
	if q.Empty() {
		return dst, nil
	}
	root, _, err := t.loadHdr()
	if err != nil {
		return dst, err
	}
	return t.queryRec(root, dst, q)
}

func (t *RTree) queryRec(id eio.PageID, dst []geom.Point, q geom.Rect) ([]geom.Point, error) {
	n, err := t.readNode(id)
	if err != nil {
		return dst, err
	}
	if n.leaf {
		return geom.Filter4(dst, n.pts, q), nil
	}
	for i := range n.entries {
		if n.entries[i].mbr.Intersects(q) {
			dst, err = t.queryRec(n.entries[i].child, dst, q)
			if err != nil {
				return dst, err
			}
		}
	}
	return dst, nil
}

// Len implements Index.
func (t *RTree) Len() (int, error) {
	root, _, err := t.loadHdr()
	if err != nil {
		return 0, err
	}
	n, err := t.readNode(root)
	if err != nil {
		return 0, err
	}
	return int(n.count), nil
}

// Destroy implements Index.
func (t *RTree) Destroy() error {
	root, _, err := t.loadHdr()
	if err != nil {
		return err
	}
	if err := t.freeRec(root); err != nil {
		return err
	}
	return t.rs.Delete(t.hdr)
}

func (t *RTree) freeRec(id eio.PageID) error {
	n, err := t.readNode(id)
	if err != nil {
		return err
	}
	if !n.leaf {
		for i := range n.entries {
			if err := t.freeRec(n.entries[i].child); err != nil {
				return err
			}
		}
	}
	return t.rs.Delete(id)
}

// --- serialization ---

func (t *RTree) readNode(id eio.PageID) (*rtNode, error) {
	raw, err := t.rs.Get(id)
	if err != nil {
		return nil, fmt.Errorf("baseline: rtree node: %w", err)
	}
	if len(raw) < 16 {
		return nil, fmt.Errorf("baseline: rtree node too short")
	}
	n := &rtNode{}
	n.leaf = binary.LittleEndian.Uint32(raw[0:]) == 1
	cnt := int(binary.LittleEndian.Uint32(raw[4:]))
	n.count = int64(binary.LittleEndian.Uint64(raw[8:]))
	off := 16
	if n.leaf {
		if len(raw) != 16+eio.PointSize*cnt {
			return nil, fmt.Errorf("baseline: rtree leaf length %d", len(raw))
		}
		n.pts = make([]geom.Point, cnt)
		for i := range n.pts {
			n.pts[i] = eio.GetPoint(raw, off)
			off += eio.PointSize
		}
		return n, nil
	}
	const es = 32 + 8 + 8
	if len(raw) != 16+es*cnt {
		return nil, fmt.Errorf("baseline: rtree node length %d", len(raw))
	}
	n.entries = make([]rtEntry, cnt)
	for i := range n.entries {
		n.entries[i] = rtEntry{
			mbr: geom.Rect{
				XLo: int64(binary.LittleEndian.Uint64(raw[off:])),
				XHi: int64(binary.LittleEndian.Uint64(raw[off+8:])),
				YLo: int64(binary.LittleEndian.Uint64(raw[off+16:])),
				YHi: int64(binary.LittleEndian.Uint64(raw[off+24:])),
			},
			child: eio.PageID(binary.LittleEndian.Uint64(raw[off+32:])),
			count: int64(binary.LittleEndian.Uint64(raw[off+40:])),
		}
		off += es
	}
	return n, nil
}

func (t *RTree) writeNode(id eio.PageID, n *rtNode) (eio.PageID, error) {
	var raw []byte
	if n.leaf {
		raw = make([]byte, 16+eio.PointSize*len(n.pts))
		binary.LittleEndian.PutUint32(raw[0:], 1)
		binary.LittleEndian.PutUint32(raw[4:], uint32(len(n.pts)))
		binary.LittleEndian.PutUint64(raw[8:], uint64(int64(len(n.pts))))
		off := 16
		for _, p := range n.pts {
			eio.PutPoint(raw, off, p)
			off += eio.PointSize
		}
	} else {
		const es = 32 + 8 + 8
		raw = make([]byte, 16+es*len(n.entries))
		binary.LittleEndian.PutUint32(raw[0:], 0)
		binary.LittleEndian.PutUint32(raw[4:], uint32(len(n.entries)))
		binary.LittleEndian.PutUint64(raw[8:], uint64(n.count))
		off := 16
		for _, e := range n.entries {
			binary.LittleEndian.PutUint64(raw[off:], uint64(e.mbr.XLo))
			binary.LittleEndian.PutUint64(raw[off+8:], uint64(e.mbr.XHi))
			binary.LittleEndian.PutUint64(raw[off+16:], uint64(e.mbr.YLo))
			binary.LittleEndian.PutUint64(raw[off+24:], uint64(e.mbr.YHi))
			binary.LittleEndian.PutUint64(raw[off+32:], uint64(e.child))
			binary.LittleEndian.PutUint64(raw[off+40:], uint64(e.count))
			off += es
		}
	}
	if id == eio.NilPage {
		return t.rs.Put(raw)
	}
	return id, t.rs.Update(id, raw)
}

func (t *RTree) writeBack(id eio.PageID, n *rtNode) error {
	_, err := t.writeNode(id, n)
	return err
}
