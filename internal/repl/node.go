package repl

import (
	"sync"

	"rangesearch/internal/core"
	"rangesearch/internal/geom"
	"rangesearch/internal/trace"
)

// FencedIndex is a core.Index whose mutations fail core.ErrNotPrimary.
// A follower's Concurrent engine is built over one: queries never reach
// it (they go through epoch views), and if a write ever slipped past the
// Node's role check it would fail here instead of forking history.
type FencedIndex struct {
	Reads core.Index // serves Query/Len; Insert/Delete/Destroy are fenced
}

var _ core.Index = (*FencedIndex)(nil)

func (f *FencedIndex) Insert(geom.Point) error          { return core.ErrNotPrimary }
func (f *FencedIndex) Delete(geom.Point) (bool, error)  { return false, core.ErrNotPrimary }
func (f *FencedIndex) Destroy() error                   { return core.ErrNotPrimary }
func (f *FencedIndex) Len() (int, error)                { return f.Reads.Len() }
func (f *FencedIndex) Query(dst []geom.Point, q geom.Rect) ([]geom.Point, error) {
	return f.Reads.Query(dst, q)
}

// Node fronts a serving engine whose role can change at runtime: a
// primary accepting writes, a follower applying a replication stream, or
// a fenced ex-primary refusing writes. It implements the server Backend
// surface; reads delegate under a shared lock, writes check the role
// first, and Promote swaps the whole engine under the exclusive lock so
// in-flight readers drain before the follower stack is torn down.
type Node struct {
	mu      sync.RWMutex
	conc    *core.Concurrent
	primary bool
	fenced  bool
	term    uint64
	applied func() uint64 // follower durable position; nil → conc.AppliedLSN
}

// NewNode builds a node over conc. applied overrides AppliedLSN while
// the node is a follower (the replica applier tracks it, not the
// engine); pass nil on a primary.
func NewNode(conc *core.Concurrent, primary bool, term uint64, applied func() uint64) *Node {
	return &Node{conc: conc, primary: primary, term: term, applied: applied}
}

// Role returns "primary", "replica", or "fenced" plus the current term.
func (n *Node) Role() (string, uint64) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	switch {
	case n.fenced:
		return "fenced", n.term
	case n.primary:
		return "primary", n.term
	default:
		return "replica", n.term
	}
}

// Fence marks the node non-writable under term — a newer primary
// lineage exists. Reads keep working.
func (n *Node) Fence(term uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.fenced = true
	n.primary = false
	if term > n.term {
		n.term = term
	}
}

// Promote installs a new (writable) engine under term. The exclusive
// lock waits out every in-flight request on the old engine, so the
// caller may close it as soon as Promote returns. The old engine is
// returned for teardown bookkeeping.
func (n *Node) Promote(conc *core.Concurrent, term uint64) *core.Concurrent {
	n.mu.Lock()
	defer n.mu.Unlock()
	old := n.conc
	n.conc = conc
	n.primary = true
	n.fenced = false
	n.term = term
	n.applied = nil
	return old
}

// Rebind installs a new engine while keeping the follower role — the
// re-clone path, when a reconnect handshake demanded a fresh snapshot
// and the stack was rebuilt from it. The engine and term swap together
// under the one lock, so a reader that observes the new term is
// guaranteed the new engine too — the invariant (term, LSN) read
// barriers rely on. The old engine is returned for the caller to close;
// like Promote, the exclusive lock waits out every in-flight request on
// it first.
func (n *Node) Rebind(conc *core.Concurrent, term uint64) *core.Concurrent {
	n.mu.Lock()
	defer n.mu.Unlock()
	old := n.conc
	n.conc = conc
	if term > n.term {
		n.term = term
	}
	return old
}

// Engine returns the current engine (for shutdown paths).
func (n *Node) Engine() *core.Concurrent {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.conc
}

func (n *Node) writable() (*core.Concurrent, error) {
	if !n.primary || n.fenced {
		return nil, core.ErrNotPrimary
	}
	return n.conc, nil
}

// InsertTraced inserts p (primary only).
func (n *Node) InsertTraced(p geom.Point, sp *trace.Span) error {
	n.mu.RLock()
	defer n.mu.RUnlock()
	c, err := n.writable()
	if err != nil {
		return err
	}
	return c.InsertTraced(p, sp)
}

// DeleteTraced removes p (primary only).
func (n *Node) DeleteTraced(p geom.Point, sp *trace.Span) (bool, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	c, err := n.writable()
	if err != nil {
		return false, err
	}
	return c.DeleteTraced(p, sp)
}

// ApplyBatchTraced applies a write batch (primary only); on a follower
// every entry fails with core.ErrNotPrimary.
func (n *Node) ApplyBatchTraced(ops []core.BatchOp, sp *trace.Span) []core.BatchResult {
	n.mu.RLock()
	defer n.mu.RUnlock()
	c, err := n.writable()
	if err != nil {
		res := make([]core.BatchResult, len(ops))
		for i := range res {
			res[i] = core.BatchResult{Err: err}
		}
		return res
	}
	return c.ApplyBatchTraced(ops, sp)
}

// QueryTraced answers q from the current epoch — identical on every role.
func (n *Node) QueryTraced(dst []geom.Point, q geom.Rect, sp *trace.Span) ([]geom.Point, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.conc.QueryTraced(dst, q, sp)
}

// Len reports the point count of the current epoch.
func (n *Node) Len() (int, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.conc.Len()
}

// Epoch reports the published epoch.
func (n *Node) Epoch() uint64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.conc.Epoch()
}

// PageSize reports the store page size.
func (n *Node) PageSize() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.conc.PageSize()
}

// AppliedLSN is the node's durable position: the engine's on a primary,
// the replica applier's on a follower (the engine under a follower has
// no TxStore of its own driving commits).
func (n *Node) AppliedLSN() uint64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.applied != nil {
		return n.applied()
	}
	return n.conc.AppliedLSN()
}
