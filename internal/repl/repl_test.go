package repl

import (
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"rangesearch/internal/eio"
)

const testPS = 256

// testPrimary is a minimal primary: a transactional file store plus a
// shipper fed by its commit hook.
type testPrimary struct {
	fs *eio.FileStore
	tx *eio.TxStore
	sh *Shipper
	ln net.Listener
}

func newTestPrimary(t *testing.T, term uint64) *testPrimary {
	t.Helper()
	fs, err := eio.CreateFileStore(filepath.Join(t.TempDir(), "primary.pages"), testPS)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := eio.NewTxStore(fs, eio.TxOptions{WALPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	p := &testPrimary{fs: fs, tx: tx}
	p.sh = NewShipper(ShipperConfig{
		Term:       term,
		Primary:    true,
		PageSize:   testPS,
		Dir:        uint64(tx.Anchor()),
		DurableLSN: tx.AppliedLSN,
		CutSnapshot: func() (*Snapshot, error) {
			ids, err := fs.LivePageIDs()
			if err != nil {
				return nil, err
			}
			snap := &Snapshot{LSN: tx.AppliedLSN()}
			for _, id := range ids {
				img := make([]byte, testPS)
				if err := fs.Read(id, img); err != nil {
					return nil, err
				}
				snap.Pages = append(snap.Pages, SnapPage{ID: uint64(id), Image: img})
			}
			return snap, nil
		},
		Logf: t.Logf,
	})
	tx.SetCommitHook(p.sh.Commit)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p.ln = ln
	go p.sh.Serve(ln)
	t.Cleanup(func() {
		p.sh.Close()
		tx.Close()
	})
	return p
}

func (p *testPrimary) addr() string { return p.ln.Addr().String() }

// commit allocates one page, stamps it with seq, and commits — one WAL
// record, one LSN.
func (p *testPrimary) commit(t *testing.T, seq byte) eio.PageID {
	t.Helper()
	var id eio.PageID
	err := p.tx.Update(func() error {
		var err error
		id, err = p.tx.Alloc()
		if err != nil {
			return err
		}
		buf := make([]byte, testPS)
		for i := range buf {
			buf[i] = seq
		}
		return p.tx.Write(id, buf)
	})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// testReplica is a minimal replica: a file store bootstrapped or resumed
// from a primary, with a TxReplica applier.
type testReplica struct {
	t    *testing.T
	path string
	fs   *eio.FileStore
	txr  *eio.TxReplica
	term uint64
}

func newTestReplica(t *testing.T) *testReplica {
	return &testReplica{t: t, path: filepath.Join(t.TempDir(), "replica.pages")}
}

func (r *testReplica) hello() Hello {
	h := Hello{Term: r.term}
	if r.txr != nil {
		h.LSN = r.txr.AppliedLSN()
		h.PageSize = testPS
		h.Dir = uint64(r.txr.Dir())
	}
	return h
}

// connect dials the primary and brings the local store in sync
// (bootstrapping from a snapshot when the primary says so), returning
// the streaming session.
func (r *testReplica) connect(addr string) (*Session, error) {
	sess, err := DialPrimary(addr, r.hello(), 5*time.Second)
	if err != nil {
		return nil, err
	}
	r.term = sess.Term()
	if sess.Kind() == KindSnapshot {
		if r.fs != nil {
			r.fs.Close()
			r.fs = nil
			r.txr = nil
		}
		fs, err := eio.CreateFileStore(r.path, sess.Snap().PageSize)
		if err != nil {
			sess.Close()
			return nil, err
		}
		err = sess.ReceiveSnapshot(func(id uint64, image []byte) error {
			if err := fs.EnsurePage(eio.PageID(id)); err != nil {
				return err
			}
			return fs.Write(eio.PageID(id), image)
		})
		if err != nil {
			sess.Close()
			fs.Close()
			return nil, err
		}
		if err := fs.Sync(); err != nil {
			sess.Close()
			fs.Close()
			return nil, err
		}
		r.fs = fs
		txr, err := eio.OpenTxReplica(fs, nil, eio.PageID(sess.Snap().Dir))
		if err != nil {
			sess.Close()
			return nil, err
		}
		r.txr = txr
		if got := txr.AppliedLSN(); got != sess.Snap().LSN {
			return nil, fmt.Errorf("bootstrap applied lsn %d, snapshot said %d", got, sess.Snap().LSN)
		}
	}
	return sess, nil
}

func (r *testReplica) apply(rec []byte) (uint64, error) {
	if _, err := r.txr.ApplyRecord(rec); err != nil {
		return 0, err
	}
	return r.txr.AppliedLSN(), nil
}

func TestProtoRoundTrip(t *testing.T) {
	h := Hello{Term: 7, LSN: 1234, PageSize: 4096, Dir: 3}
	got, err := decodeHello(encodeHello(h))
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("hello round-trip: got %+v want %+v", got, h)
	}

	si := SnapInfo{Term: 2, LSN: 99, PageSize: 256, Dir: 3, Hdr: 4, NPages: 17}
	gotSI, err := decodeSnapBegin(encodeSnapBegin(si))
	if err != nil {
		t.Fatal(err)
	}
	if gotSI != si {
		t.Fatalf("snapbegin round-trip: got %+v want %+v", gotSI, si)
	}

	vs, err := decodeU64s(encodeU64Msg(msgHeartbeat, 5, 77), 2)
	if err != nil {
		t.Fatal(err)
	}
	if vs[0] != 5 || vs[1] != 77 {
		t.Fatalf("u64 round-trip: got %v", vs)
	}
	if _, err := decodeU64s(encodeU64Msg(msgAck, 1), 2); err == nil {
		t.Fatal("short u64 message decoded without error")
	}
}

func TestBootstrapStreamResume(t *testing.T) {
	p := newTestPrimary(t, 1)

	// Commits before the replica exists: covered by the snapshot.
	var pages []eio.PageID
	for i := byte(1); i <= 3; i++ {
		pages = append(pages, p.commit(t, i))
	}

	r := newTestReplica(t)
	sess, err := r.connect(p.addr())
	if err != nil {
		t.Fatal(err)
	}
	if sess.Kind() != KindSnapshot {
		t.Fatalf("fresh replica got %v, want snapshot", sess.Kind())
	}
	if got := r.txr.AppliedLSN(); got != 3 {
		t.Fatalf("bootstrap lsn %d, want 3", got)
	}

	f := NewFollower(sess, r.txr.AppliedLSN())
	runDone := make(chan error, 1)
	go func() { runDone <- f.Run(sess, FollowerCallbacks{Apply: r.apply, Logf: t.Logf}) }()

	// Live commits stream through; the shipper sees acks.
	for i := byte(4); i <= 6; i++ {
		pages = append(pages, p.commit(t, i))
	}
	if err := p.sh.WaitAcked(6, 1, 5*time.Second); err != nil {
		t.Fatalf("WaitAcked: %v", err)
	}
	if got := f.AppliedLSN(); got != 6 {
		t.Fatalf("follower applied %d, want 6", got)
	}

	// Detach, let the primary advance within the backlog, reconnect:
	// must resume, not re-snapshot.
	f.Stop()
	if err := <-runDone; err != nil {
		t.Fatalf("Run after Stop: %v", err)
	}
	for i := byte(7); i <= 9; i++ {
		pages = append(pages, p.commit(t, i))
	}
	sess2, err := r.connect(p.addr())
	if err != nil {
		t.Fatal(err)
	}
	if sess2.Kind() != KindResume {
		t.Fatalf("reconnect within backlog got %v, want resume", sess2.Kind())
	}
	f2 := NewFollower(sess2, r.txr.AppliedLSN())
	go func() { runDone <- f2.Run(sess2, FollowerCallbacks{Apply: r.apply, Logf: t.Logf}) }()
	if err := p.sh.WaitAcked(9, 1, 5*time.Second); err != nil {
		t.Fatalf("WaitAcked after resume: %v", err)
	}

	// The replica's pages hold the primary's images at the primary's ids.
	buf := make([]byte, testPS)
	for i, id := range pages {
		if err := r.fs.Read(id, buf); err != nil {
			t.Fatalf("replica read page %d: %v", id, err)
		}
		if buf[0] != byte(i+1) || buf[testPS-1] != byte(i+1) {
			t.Fatalf("page %d: got fill %d, want %d", id, buf[0], i+1)
		}
	}

	// The primary reports the replica in its stats.
	reps := p.sh.Replicas()
	if len(reps) != 1 || reps[0].State != "stream" || reps[0].AckLSN != 9 {
		t.Fatalf("Replicas() = %+v", reps)
	}

	f2.Stop()
	if err := <-runDone; err != nil {
		t.Fatalf("Run 2 after Stop: %v", err)
	}
}

func TestReplicaCrashRecovery(t *testing.T) {
	p := newTestPrimary(t, 1)
	for i := byte(1); i <= 4; i++ {
		p.commit(t, i)
	}

	r := newTestReplica(t)
	sess, err := r.connect(p.addr())
	if err != nil {
		t.Fatal(err)
	}
	f := NewFollower(sess, r.txr.AppliedLSN())
	done := make(chan error, 1)
	go func() { done <- f.Run(sess, FollowerCallbacks{Apply: r.apply}) }()
	p.commit(t, 5)
	if err := p.sh.WaitAcked(5, 1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	f.Stop()
	<-done

	// "Crash" the replica (drop handles without closing cleanly) and
	// reopen with the stock recovery path: the file must be a valid
	// TxStore layout at the replicated LSN.
	dir := r.txr.Dir()
	r.fs.CloseCrash()
	fs2, err := eio.OpenFileStore(r.path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	txr2, err := eio.OpenTxReplica(fs2, nil, dir)
	if err != nil {
		t.Fatalf("reopen crashed replica: %v", err)
	}
	if got := txr2.AppliedLSN(); got != 5 {
		t.Fatalf("recovered replica lsn %d, want 5", got)
	}
}

func TestWaitAckedStall(t *testing.T) {
	p := newTestPrimary(t, 1)
	p.commit(t, 1)
	err := p.sh.WaitAcked(1, 1, 100*time.Millisecond)
	if err == nil {
		t.Fatal("WaitAcked with no replicas returned nil")
	}
}

func TestPromoteRPC(t *testing.T) {
	fsDir := filepath.Join(t.TempDir(), "f.pages")
	_ = fsDir
	var promoted atomic.Bool
	sh := NewShipper(ShipperConfig{
		Term:     3,
		Primary:  false,
		PageSize: testPS,
		OnPromote: func() (uint64, uint64, error) {
			promoted.Store(true)
			return 4, 42, nil
		},
		Logf: t.Logf,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go sh.Serve(ln)
	defer sh.Close()

	term, lsn, err := Promote(ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if term != 4 || lsn != 42 || !promoted.Load() {
		t.Fatalf("Promote = (%d, %d), promoted=%v", term, lsn, promoted.Load())
	}

	// A follower must refuse replication HELLOs.
	if _, err := DialPrimary(ln.Addr().String(), Hello{}, 2*time.Second); err == nil {
		t.Fatal("follower accepted a HELLO")
	}
}

func TestFenceByHigherTerm(t *testing.T) {
	p := newTestPrimary(t, 1)
	fencedCh := make(chan uint64, 1)
	p.sh.cfg.OnFence = func(term uint64) { fencedCh <- term }
	p.commit(t, 1)

	// A replica from term 9 proves a newer lineage: the primary must
	// stand down, and the dial must fail with ErrFenced.
	_, err := DialPrimary(p.addr(), Hello{Term: 9}, 2*time.Second)
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("dial from higher term: %v, want ErrFenced", err)
	}
	select {
	case term := <-fencedCh:
		if term != 9 {
			t.Fatalf("fenced with term %d, want 9", term)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("OnFence not called")
	}
	if p.sh.IsPrimary() {
		t.Fatal("shipper still primary after fence")
	}
	if got := p.sh.Term(); got != 9 {
		t.Fatalf("term after fence %d, want 9", got)
	}
}

func TestDivergedReplicaReclones(t *testing.T) {
	p := newTestPrimary(t, 2)
	for i := byte(1); i <= 2; i++ {
		p.commit(t, i)
	}
	// A replica claiming lsn beyond the primary's durable position (a
	// divergent history, e.g. an old primary with unshipped commits) must
	// get a full snapshot, not a resume.
	sess, err := DialPrimary(p.addr(), Hello{Term: 1, LSN: 50, PageSize: testPS, Dir: uint64(p.tx.Anchor())}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if sess.Kind() != KindSnapshot {
		t.Fatalf("diverged replica got %v, want snapshot", sess.Kind())
	}
}
