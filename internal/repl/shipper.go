package repl

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"rangesearch/internal/core"
)

// SnapPage is one page of a bootstrap snapshot: the primary's page id and
// its full image.
type SnapPage struct {
	ID    uint64
	Image []byte
}

// Snapshot is a consistent full-store clone: every live page (data and
// tx-layer meta alike) as of LSN, cut under the write barrier so the file
// image and the anchors agree exactly.
type Snapshot struct {
	LSN   uint64
	Pages []SnapPage
}

// ShipperConfig configures a Shipper.
type ShipperConfig struct {
	// Term is the node's current term; Primary its starting role.
	Term    uint64
	Primary bool

	// PageSize, Dir and Hdr describe the store layout replicas must
	// mirror (Dir is the tx directory page id, Hdr the index header id).
	PageSize int
	Dir      uint64
	Hdr      uint64

	// DurableLSN reports the primary's durable position (what heartbeats
	// and resume decisions are measured against).
	DurableLSN func() uint64

	// CutSnapshot produces a full-store clone for replica bootstrap. It
	// runs outside the shipper's lock (it takes the engine's own write
	// barrier) and is required on a primary.
	CutSnapshot func() (*Snapshot, error)

	// OnFence is called (outside the shipper lock, at most once per term
	// raise) when a peer proves a higher term exists: the node must stop
	// accepting writes.
	OnFence func(term uint64)

	// OnPromote handles an admin PROMOTE frame: promote this node and
	// return its new term and durable LSN. Nil means promotion is not
	// supported here.
	OnPromote func() (term, lsn uint64, err error)

	// Backlog is how many committed records are retained for resume
	// (default 256). A replica reconnecting within the backlog replays
	// the tail; older ones take a full snapshot.
	Backlog int

	// HeartbeatEvery is the idle-stream heartbeat period (default 500ms).
	HeartbeatEvery time.Duration

	// Logf, when set, receives diagnostic lines.
	Logf func(format string, args ...any)
}

// shipMsg is one queued outbound record frame.
type shipMsg struct {
	lsn   uint64
	frame []byte
}

// shipConn is one connected replica (or a replica mid-bootstrap).
type shipConn struct {
	conn    net.Conn
	queue   chan shipMsg
	die     chan struct{}
	dieOnce sync.Once

	// Guarded by Shipper.mu.
	addr      string
	state     string // "sync", "stream"
	ackLSN    uint64
	sentSnap  bool
	connected time.Time
}

// Shipper manages a node's replication port in both roles. On a primary
// it streams committed WAL records to every connected replica, serves
// bootstrap snapshots, retains a backlog for cheap resume, and tracks
// per-replica acks for semi-synchronous commit gating. On a follower it
// still answers the port — rejecting HELLO (only a primary ships) but
// honouring admin PROMOTE frames — so failover tooling can talk to any
// node at the same address before and after a role change.
type Shipper struct {
	cfg ShipperConfig

	mu      sync.Mutex
	cond    *sync.Cond
	primary bool
	term    uint64
	lastLSN uint64 // highest LSN ever passed to Commit

	backlog      [][]byte // encoded records, consecutive LSNs
	backlogFloor uint64   // LSN of backlog[0]; 0 when empty

	conns  map[*shipConn]struct{}
	ln     net.Listener
	closed bool
}

// NewShipper builds a Shipper; call Serve to start accepting.
func NewShipper(cfg ShipperConfig) *Shipper {
	if cfg.Backlog <= 0 {
		cfg.Backlog = 256
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 500 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Shipper{
		cfg:     cfg,
		primary: cfg.Primary,
		term:    cfg.Term,
		conns:   make(map[*shipConn]struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Term returns the node's current term.
func (s *Shipper) Term() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.term
}

// IsPrimary reports whether the shipper currently acts as a primary.
func (s *Shipper) IsPrimary() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.primary
}

// SetOnPromote installs the PROMOTE handler after construction — the
// handler usually closes over state (the node, the stack) that is built
// after the shipper.
func (s *Shipper) SetOnPromote(fn func() (term, lsn uint64, err error)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg.OnPromote = fn
}

// SetPrimary switches the shipper into the primary role under term —
// the final step of promotion, after the new term is durable in the
// manifest and the writable stack is rebuilt.
func (s *Shipper) SetPrimary(term uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.primary = true
	s.term = term
	s.cond.Broadcast()
}

// Rebind points the shipper at a new serving stack's layout and data
// sources. It exists for promotion: a shipper built on a follower has no
// snapshot source (nothing to cut until the node is writable), and a
// re-clone may have changed the anchor pages. Call before SetPrimary —
// while still a follower the shipper rejects replica handshakes, so no
// session reads these fields concurrently.
func (s *Shipper) Rebind(pageSize int, dir, hdr uint64,
	durableLSN func() uint64, cut func() (*Snapshot, error)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg.PageSize = pageSize
	s.cfg.Dir = dir
	s.cfg.Hdr = hdr
	s.cfg.DurableLSN = durableLSN
	s.cfg.CutSnapshot = cut
}

// Commit is the TxStore commit-hook target: it runs on the group-commit
// path right after the commit-point sync, so it must not block. The
// record is copied, appended to the resume backlog, and fanned out to
// every streaming replica; a replica too slow to drain its queue is
// dropped (it reconnects and resumes from the backlog).
func (s *Shipper) Commit(lsn uint64, rec []byte) {
	cp := make([]byte, 0, 1+8+len(rec))
	cp = append(cp, msgRecord)
	s.mu.Lock()
	cp = be64(cp, s.term)
	cp = append(cp, rec...)

	s.lastLSN = lsn
	if len(s.backlog) == 0 {
		s.backlogFloor = lsn
	}
	s.backlog = append(s.backlog, cp[1+8:]) // raw record, for resume replay
	for len(s.backlog) > s.cfg.Backlog {
		s.backlog = s.backlog[1:]
		s.backlogFloor++
	}

	var drop []*shipConn
	for sc := range s.conns {
		select {
		case sc.queue <- shipMsg{lsn: lsn, frame: cp}:
		default:
			drop = append(drop, sc)
		}
	}
	s.mu.Unlock()
	for _, sc := range drop {
		s.cfg.Logf("repl: replica %s too slow, dropping", sc.addr)
		s.dropConn(sc)
	}
}

// ackedLocked counts streaming replicas whose acked position covers lsn.
func (s *Shipper) ackedLocked(lsn uint64) int {
	n := 0
	for sc := range s.conns {
		if sc.state == "stream" && sc.ackLSN >= lsn {
			n++
		}
	}
	return n
}

// WaitAcked blocks until at least need replicas have acknowledged lsn,
// or the timeout elapses (core.ErrReplicationStall). It is the commit
// gate body for semi-synchronous replication: a write is not
// acknowledged to the client until it is durable on need replicas.
func (s *Shipper) WaitAcked(lsn uint64, need int, timeout time.Duration) error {
	if need <= 0 {
		return nil
	}
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer timer.Stop()

	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if !s.primary {
			return core.ErrNotPrimary
		}
		if s.ackedLocked(lsn) >= need {
			return nil
		}
		if s.closed {
			return fmt.Errorf("%w: shipper closed", core.ErrReplicationStall)
		}
		if !time.Now().Before(deadline) {
			return fmt.Errorf("%w: %d/%d replicas acked lsn %d within %v",
				core.ErrReplicationStall, s.ackedLocked(lsn), need, lsn, timeout)
		}
		s.cond.Wait()
	}
}

// ReplicaInfo describes one connected replica for stats reporting.
type ReplicaInfo struct {
	Addr   string `json:"addr"`
	State  string `json:"state"`
	AckLSN uint64 `json:"ack_lsn"`
}

// Replicas snapshots the connected replica set.
func (s *Shipper) Replicas() []ReplicaInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ReplicaInfo, 0, len(s.conns))
	for sc := range s.conns {
		out = append(out, ReplicaInfo{Addr: sc.addr, State: sc.state, AckLSN: sc.ackLSN})
	}
	return out
}

// Serve accepts replication connections on ln until Close. It blocks;
// run it on its own goroutine.
func (s *Shipper) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("repl: shipper closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		go s.handleConn(conn)
	}
}

// Close stops accepting and drops every replica connection.
func (s *Shipper) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	conns := make([]*shipConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, sc := range conns {
		s.dropConn(sc)
	}
}

func (s *Shipper) dropConn(sc *shipConn) {
	s.mu.Lock()
	delete(s.conns, sc)
	s.cond.Broadcast()
	s.mu.Unlock()
	sc.dieOnce.Do(func() { close(sc.die) })
	sc.conn.Close()
}

// fence stands the node down: a peer proved term exists, so accepting
// more writes under our lower term would fork history.
func (s *Shipper) fence(term uint64) {
	s.mu.Lock()
	if term <= s.term && !s.primary {
		s.mu.Unlock()
		return
	}
	wasPrimary := s.primary
	if term > s.term {
		s.term = term
	}
	s.primary = false
	s.cond.Broadcast()
	s.mu.Unlock()
	if wasPrimary {
		s.cfg.Logf("repl: fenced by term %d, standing down", term)
		if s.cfg.OnFence != nil {
			s.cfg.OnFence(term)
		}
	}
}

// handleConn dispatches one inbound connection by its first frame:
// HELLO starts a replica session, PROMOTE is the admin failover RPC,
// FENCE delivers a stand-down order.
func (s *Shipper) handleConn(conn net.Conn) {
	br := bufio.NewReaderSize(conn, 64*1024)
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	body, err := readFrame(br)
	if err != nil || len(body) == 0 {
		conn.Close()
		return
	}
	switch body[0] {
	case msgHello:
		h, err := decodeHello(body)
		if err != nil {
			_ = writeFrame(conn, encodeError(err.Error()))
			conn.Close()
			return
		}
		s.serveReplica(conn, br, h)
	case msgPromote:
		s.servePromote(conn)
	case msgFence:
		if vs, err := decodeU64s(body, 1); err == nil {
			s.fence(vs[0])
		}
		conn.Close()
	default:
		_ = writeFrame(conn, encodeError(fmt.Sprintf("repl: unexpected opening message 0x%02x", body[0])))
		conn.Close()
	}
}

func (s *Shipper) servePromote(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(60 * time.Second))
	s.mu.Lock()
	onPromote := s.cfg.OnPromote
	s.mu.Unlock()
	if onPromote == nil {
		_ = writeFrame(conn, encodeError("repl: promotion not supported on this node"))
		return
	}
	term, lsn, err := onPromote()
	if err != nil {
		_ = writeFrame(conn, encodeError(fmt.Sprintf("repl: promote: %v", err)))
		return
	}
	_ = writeFrame(conn, encodeU64Msg(msgPromoted, term, lsn))
}

// serveReplica runs the primary side of one replica session: decide
// resume vs snapshot, bring the replica in sync, then stream records and
// heartbeats while reading acks.
func (s *Shipper) serveReplica(conn net.Conn, br *bufio.Reader, h Hello) {
	addr := conn.RemoteAddr().String()

	// Read the durable position before taking s.mu: the commit hook runs
	// under the TxStore lock and then takes s.mu, so holding s.mu while
	// asking the TxStore for its LSN would invert that order.
	durable := uint64(0)
	if s.cfg.DurableLSN != nil {
		durable = s.cfg.DurableLSN()
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	if h.Term > s.term {
		s.mu.Unlock()
		// The caller is from a newer lineage: we are the stale one.
		_ = writeFrame(conn, encodeU64Msg(msgFence, h.Term))
		conn.Close()
		s.fence(h.Term)
		return
	}
	if !s.primary {
		s.mu.Unlock()
		_ = writeFrame(conn, encodeError("repl: not primary"))
		conn.Close()
		return
	}
	if h.PageSize != 0 && h.PageSize != s.cfg.PageSize {
		s.mu.Unlock()
		_ = writeFrame(conn, encodeError(fmt.Sprintf(
			"repl: page size mismatch: replica %d, primary %d", h.PageSize, s.cfg.PageSize)))
		conn.Close()
		return
	}

	// Resume needs the same lineage (term), the same layout, a position
	// not ahead of ours (ahead means divergence: records we never shipped),
	// and the whole gap present in the backlog.
	canResume := h.Term == s.term &&
		h.Dir == s.cfg.Dir &&
		h.LSN <= durable &&
		(h.LSN == durable || (s.backlogFloor != 0 && h.LSN+1 >= s.backlogFloor))

	sc := &shipConn{
		conn:      conn,
		queue:     make(chan shipMsg, 4*s.cfg.Backlog),
		die:       make(chan struct{}),
		addr:      addr,
		state:     "sync",
		connected: time.Now(),
	}
	// Register BEFORE replying or cutting a snapshot: every record
	// committed from this point on lands in the queue, and the writer
	// dedupes overlap against what resume/snapshot already covered.
	s.conns[sc] = struct{}{}

	var sentThrough uint64
	if canResume {
		// Replay the backlog tail (h.LSN, durable] into the queue while
		// still holding the lock, so live commits order strictly after.
		term := s.term
		for i := int(h.LSN + 1 - s.backlogFloor); i >= 0 && i < len(s.backlog); i++ {
			rec := s.backlog[i]
			frame := make([]byte, 0, 1+8+len(rec))
			frame = append(frame, msgRecord)
			frame = be64(frame, term)
			frame = append(frame, rec...)
			sc.queue <- shipMsg{lsn: s.backlogFloor + uint64(i), frame: frame}
		}
		sentThrough = h.LSN
		s.mu.Unlock()

		_ = conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
		if err := writeFrame(conn, encodeU64Msg(msgResume, term, h.LSN)); err != nil {
			s.dropConn(sc)
			return
		}
		s.cfg.Logf("repl: replica %s resumes from lsn %d (durable %d)", addr, h.LSN, durable)
	} else {
		term := s.term
		s.mu.Unlock()
		if s.cfg.CutSnapshot == nil {
			_ = writeFrame(conn, encodeError("repl: no snapshot source"))
			s.dropConn(sc)
			return
		}
		snap, err := s.cfg.CutSnapshot()
		if err != nil {
			s.cfg.Logf("repl: snapshot for %s failed: %v", addr, err)
			_ = writeFrame(conn, encodeError(fmt.Sprintf("repl: snapshot: %v", err)))
			s.dropConn(sc)
			return
		}
		s.cfg.Logf("repl: full snapshot to %s: %d pages at lsn %d (replica was at term %d lsn %d)",
			addr, len(snap.Pages), snap.LSN, h.Term, h.LSN)
		if err := s.sendSnapshot(conn, term, snap); err != nil {
			s.cfg.Logf("repl: snapshot send to %s failed: %v", addr, err)
			s.dropConn(sc)
			return
		}
		sentThrough = snap.LSN
	}

	s.mu.Lock()
	sc.state = "stream"
	sc.ackLSN = sentThrough
	s.cond.Broadcast()
	s.mu.Unlock()

	go s.writeLoop(sc, sentThrough)
	s.ackLoop(sc, br)
}

func (s *Shipper) sendSnapshot(conn net.Conn, term uint64, snap *Snapshot) error {
	bw := bufio.NewWriterSize(conn, 256*1024)
	_ = conn.SetWriteDeadline(time.Now().Add(5 * time.Minute))
	info := SnapInfo{
		Term:     term,
		LSN:      snap.LSN,
		PageSize: s.cfg.PageSize,
		Dir:      s.cfg.Dir,
		Hdr:      s.cfg.Hdr,
		NPages:   uint64(len(snap.Pages)),
	}
	if err := writeFrame(bw, encodeSnapBegin(info)); err != nil {
		return err
	}
	buf := make([]byte, 0, 1+8+s.cfg.PageSize)
	for _, pg := range snap.Pages {
		buf = buf[:0]
		buf = append(buf, msgSnapPage)
		buf = be64(buf, pg.ID)
		buf = append(buf, pg.Image...)
		if err := writeFrame(bw, buf); err != nil {
			return err
		}
	}
	if err := writeFrame(bw, encodeU64Msg(msgSnapEnd, snap.LSN)); err != nil {
		return err
	}
	return bw.Flush()
}

// writeLoop drains the record queue to one replica, interleaving
// heartbeats when idle. sentThrough is the position the sync phase
// already covered; queued records at or below it are duplicates from the
// registration overlap and are skipped.
func (s *Shipper) writeLoop(sc *shipConn, sentThrough uint64) {
	defer s.dropConn(sc)
	ticker := time.NewTicker(s.cfg.HeartbeatEvery)
	defer ticker.Stop()
	bw := bufio.NewWriterSize(sc.conn, 64*1024)
	for {
		select {
		case <-sc.die:
			return
		case m := <-sc.queue:
			if m.lsn <= sentThrough {
				continue
			}
			_ = sc.conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
			if err := writeFrame(bw, m.frame); err != nil {
				return
			}
			sentThrough = m.lsn
			// Greedily drain whatever else is queued before flushing.
			for {
				select {
				case m = <-sc.queue:
					if m.lsn <= sentThrough {
						continue
					}
					if err := writeFrame(bw, m.frame); err != nil {
						return
					}
					sentThrough = m.lsn
					continue
				default:
				}
				break
			}
			if err := bw.Flush(); err != nil {
				return
			}
		case <-ticker.C:
			durable := uint64(0)
			if s.cfg.DurableLSN != nil {
				durable = s.cfg.DurableLSN()
			}
			s.mu.Lock()
			term := s.term
			s.mu.Unlock()
			_ = sc.conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
			if err := writeFrame(bw, encodeU64Msg(msgHeartbeat, term, durable)); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// ackLoop reads replica → primary frames (ACK, FENCE) until the
// connection dies.
func (s *Shipper) ackLoop(sc *shipConn, br *bufio.Reader) {
	defer s.dropConn(sc)
	for {
		_ = sc.conn.SetReadDeadline(time.Now().Add(10 * s.cfg.HeartbeatEvery * 6))
		body, err := readFrame(br)
		if err != nil || len(body) == 0 {
			return
		}
		switch body[0] {
		case msgAck:
			vs, err := decodeU64s(body, 1)
			if err != nil {
				return
			}
			s.mu.Lock()
			if vs[0] > sc.ackLSN {
				sc.ackLSN = vs[0]
			}
			s.cond.Broadcast()
			s.mu.Unlock()
		case msgFence:
			if vs, err := decodeU64s(body, 1); err == nil {
				s.fence(vs[0])
			}
			return
		default:
			return
		}
	}
}
