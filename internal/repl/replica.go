package repl

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"
)

// SessionKind says how a handshake resolved.
type SessionKind int

const (
	// KindResume: the primary replays the record tail from our position;
	// the local store is reused as-is.
	KindResume SessionKind = iota
	// KindSnapshot: the primary sends a full store clone; the local store
	// (if any) must be discarded and rebuilt from the transfer.
	KindSnapshot
)

// Session is one established replication connection, post-handshake.
type Session struct {
	conn net.Conn
	br   *bufio.Reader
	kind SessionKind
	term uint64
	snap SnapInfo // valid for KindSnapshot
	lsn  uint64   // resume position (KindResume) or snapshot LSN
}

// Kind reports how the handshake resolved.
func (s *Session) Kind() SessionKind { return s.kind }

// Term is the primary's term; the replica must persist it before acking.
func (s *Session) Term() uint64 { return s.term }

// StartLSN is the position the stream continues from: the replica's own
// position for a resume, the snapshot's LSN for a bootstrap.
func (s *Session) StartLSN() uint64 { return s.lsn }

// Snap describes the snapshot transfer (KindSnapshot only).
func (s *Session) Snap() SnapInfo { return s.snap }

// Close closes the underlying connection.
func (s *Session) Close() error { return s.conn.Close() }

// DialPrimary connects to a primary's replication port and performs the
// HELLO handshake, reporting our position h. The primary's answer decides
// the session kind. ErrFenced means the primary's lineage is newer than
// ours in a way that requires operator attention; a plain error is
// retryable.
func DialPrimary(addr string, h Hello, timeout time.Duration) (*Session, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	_ = conn.SetDeadline(time.Now().Add(timeout))
	if err := writeFrame(conn, encodeHello(h)); err != nil {
		conn.Close()
		return nil, err
	}
	br := bufio.NewReaderSize(conn, 256*1024)
	// A snapshot cut can take a while on a loaded primary: wait longer
	// for the first answer than for the dial.
	_ = conn.SetDeadline(time.Now().Add(2 * time.Minute))
	body, err := readFrame(br)
	if err != nil {
		conn.Close()
		return nil, err
	}
	_ = conn.SetDeadline(time.Time{})
	if len(body) == 0 {
		conn.Close()
		return nil, fmt.Errorf("%w: empty handshake reply", ErrProto)
	}
	switch body[0] {
	case msgResume:
		vs, err := decodeU64s(body, 2)
		if err != nil {
			conn.Close()
			return nil, err
		}
		if vs[0] < h.Term {
			// A primary from an older lineage than us: refuse and fence it.
			_ = writeFrame(conn, encodeU64Msg(msgFence, h.Term))
			conn.Close()
			return nil, fmt.Errorf("repl: primary term %d older than ours %d", vs[0], h.Term)
		}
		return &Session{conn: conn, br: br, kind: KindResume, term: vs[0], lsn: vs[1]}, nil
	case msgSnapBegin:
		info, err := decodeSnapBegin(body)
		if err != nil {
			conn.Close()
			return nil, err
		}
		if info.Term < h.Term {
			_ = writeFrame(conn, encodeU64Msg(msgFence, h.Term))
			conn.Close()
			return nil, fmt.Errorf("repl: primary term %d older than ours %d", info.Term, h.Term)
		}
		return &Session{conn: conn, br: br, kind: KindSnapshot, term: info.Term, snap: info, lsn: info.LSN}, nil
	case msgFence:
		vs, _ := decodeU64s(body, 1)
		conn.Close()
		var t uint64
		if len(vs) == 1 {
			t = vs[0]
		}
		return nil, fmt.Errorf("%w (term %d)", ErrFenced, t)
	case msgError:
		msg := string(body[1:])
		conn.Close()
		return nil, fmt.Errorf("repl: primary refused: %s", msg)
	default:
		conn.Close()
		return nil, fmt.Errorf("%w: unexpected handshake reply 0x%02x", ErrProto, body[0])
	}
}

// ReceiveSnapshot streams the SNAPPAGE frames of a KindSnapshot session
// into write (called once per page with the primary's page id and the
// raw image) and returns after a matching SNAPEND. The caller then owns a
// byte-exact clone of the primary's store as of Snap().LSN and the
// session continues as a record stream.
func (s *Session) ReceiveSnapshot(write func(id uint64, image []byte) error) error {
	if s.kind != KindSnapshot {
		return errors.New("repl: ReceiveSnapshot on a resume session")
	}
	got := uint64(0)
	for {
		_ = s.conn.SetReadDeadline(time.Now().Add(2 * time.Minute))
		body, err := readFrame(s.br)
		if err != nil {
			return err
		}
		if len(body) == 0 {
			return fmt.Errorf("%w: empty frame in snapshot", ErrProto)
		}
		switch body[0] {
		case msgSnapPage:
			if len(body) < 1+8+1 {
				return fmt.Errorf("%w: short SNAPPAGE", ErrProto)
			}
			id := beU64(body[1:])
			if err := write(id, body[9:]); err != nil {
				return err
			}
			got++
		case msgSnapEnd:
			vs, err := decodeU64s(body, 1)
			if err != nil {
				return err
			}
			if vs[0] != s.snap.LSN {
				return fmt.Errorf("%w: SNAPEND lsn %d, SNAPBEGIN said %d", ErrProto, vs[0], s.snap.LSN)
			}
			if got != s.snap.NPages {
				return fmt.Errorf("%w: snapshot sent %d pages, header said %d", ErrProto, got, s.snap.NPages)
			}
			_ = s.conn.SetReadDeadline(time.Time{})
			return nil
		case msgError:
			return fmt.Errorf("repl: primary aborted snapshot: %s", string(body[1:]))
		default:
			return fmt.Errorf("%w: unexpected message 0x%02x in snapshot", ErrProto, body[0])
		}
	}
}

// FollowerCallbacks is what Run needs from the serving stack.
type FollowerCallbacks struct {
	// Apply replays one shipped record and returns the new applied LSN.
	// It runs on Run's goroutine, so applies are strictly sequential.
	Apply func(rec []byte) (uint64, error)
	// Logf, when set, receives diagnostic lines.
	Logf func(format string, args ...any)
}

// Follower runs the replica side of an established session: applying
// records, acking, and tracking staleness. One Follower per session.
type Follower struct {
	appliedLSN  atomic.Uint64
	primaryLSN  atomic.Uint64
	lastContact atomic.Int64 // unix nanos
	stopped     atomic.Bool
	conn        net.Conn
}

// NewFollower prepares a follower for sess starting at applied.
func NewFollower(sess *Session, applied uint64) *Follower {
	f := &Follower{conn: sess.conn}
	f.appliedLSN.Store(applied)
	f.primaryLSN.Store(applied)
	f.lastContact.Store(time.Now().UnixNano())
	return f
}

// AppliedLSN is the last locally durable record.
func (f *Follower) AppliedLSN() uint64 { return f.appliedLSN.Load() }

// PrimaryLSN is the primary's durable position from its last heartbeat —
// the far edge the staleness gap is measured against.
func (f *Follower) PrimaryLSN() uint64 { return f.primaryLSN.Load() }

// LastContact is when the primary was last heard from.
func (f *Follower) LastContact() time.Time { return time.Unix(0, f.lastContact.Load()) }

// Stop makes Run return after the record it is currently applying: it
// closes the connection, so the next read fails. Applies are synchronous
// on Run's goroutine, so once Run returns the apply queue is drained —
// the precondition for promotion.
func (f *Follower) Stop() {
	f.stopped.Store(true)
	f.conn.Close()
}

// Run consumes the stream until the connection dies or Stop is called.
// It returns nil after Stop, ErrFenced when the primary fences us, and
// the transport or apply error otherwise. Each applied record and each
// heartbeat is acknowledged with the current applied LSN, so the primary
// can gate commits on replica durability and measure staleness even on
// an idle stream.
func (f *Follower) Run(sess *Session, cb FollowerCallbacks) error {
	logf := cb.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	myTerm := sess.term
	for {
		_ = sess.conn.SetReadDeadline(time.Now().Add(30 * time.Second))
		body, err := readFrame(sess.br)
		if err != nil {
			if f.stopped.Load() {
				return nil
			}
			return err
		}
		f.lastContact.Store(time.Now().UnixNano())
		if len(body) == 0 {
			return fmt.Errorf("%w: empty stream frame", ErrProto)
		}
		switch body[0] {
		case msgRecord:
			if len(body) < 1+8+1 {
				return fmt.Errorf("%w: short RECORD", ErrProto)
			}
			term := beU64(body[1:])
			if term < myTerm {
				_ = writeFrame(sess.conn, encodeU64Msg(msgFence, myTerm))
				return fmt.Errorf("repl: record from stale term %d (ours %d)", term, myTerm)
			}
			lsn, err := cb.Apply(body[9:])
			if err != nil {
				if f.stopped.Load() {
					return nil
				}
				return fmt.Errorf("repl: apply: %w", err)
			}
			f.appliedLSN.Store(lsn)
			if lsn > f.primaryLSN.Load() {
				f.primaryLSN.Store(lsn)
			}
			_ = sess.conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
			if err := writeFrame(sess.conn, encodeU64Msg(msgAck, lsn)); err != nil {
				if f.stopped.Load() {
					return nil
				}
				return err
			}
		case msgHeartbeat:
			vs, err := decodeU64s(body, 2)
			if err != nil {
				return err
			}
			if vs[0] > myTerm {
				// A newer lineage exists; this stream is history. The
				// caller reconnects and re-handshakes under the new term.
				return fmt.Errorf("%w (heartbeat term %d, session term %d)", ErrFenced, vs[0], myTerm)
			}
			if vs[1] > f.primaryLSN.Load() {
				f.primaryLSN.Store(vs[1])
			}
			_ = sess.conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
			if err := writeFrame(sess.conn, encodeU64Msg(msgAck, f.appliedLSN.Load())); err != nil {
				if f.stopped.Load() {
					return nil
				}
				return err
			}
		case msgFence:
			vs, _ := decodeU64s(body, 1)
			var t uint64
			if len(vs) == 1 {
				t = vs[0]
			}
			logf("repl: fenced mid-stream by term %d", t)
			return fmt.Errorf("%w (term %d)", ErrFenced, t)
		case msgError:
			return fmt.Errorf("repl: primary error: %s", string(body[1:]))
		default:
			return fmt.Errorf("%w: unexpected stream message 0x%02x", ErrProto, body[0])
		}
	}
}

// Promote asks the node listening on a replication port to promote
// itself to primary, returning the new term and durable LSN. This is the
// failover RPC chaos harnesses and operators use; SIGUSR1 on the process
// does the same thing.
func Promote(addr string, timeout time.Duration) (term, lsn uint64, err error) {
	if timeout <= 0 {
		timeout = 60 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return 0, 0, err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(timeout))
	if err := writeFrame(conn, []byte{msgPromote}); err != nil {
		return 0, 0, err
	}
	body, err := readFrame(bufio.NewReader(conn))
	if err != nil {
		return 0, 0, err
	}
	if len(body) == 0 {
		return 0, 0, fmt.Errorf("%w: empty PROMOTE reply", ErrProto)
	}
	switch body[0] {
	case msgPromoted:
		vs, err := decodeU64s(body, 2)
		if err != nil {
			return 0, 0, err
		}
		return vs[0], vs[1], nil
	case msgError:
		return 0, 0, fmt.Errorf("repl: promote refused: %s", string(body[1:]))
	default:
		return 0, 0, fmt.Errorf("%w: unexpected PROMOTE reply 0x%02x", ErrProto, body[0])
	}
}
