// Package repl is WAL log-shipping replication for the serving stack: a
// primary-side Shipper that streams committed redo records (plus a full
// page snapshot for bootstrap) to any number of replicas, a replica-side
// Replica loop that replays them through eio.TxReplica into a read-only
// serving stack, and a Node that fronts either role behind the
// server.Backend surface so one rsserve process can be primary, replica,
// or a replica promoted to primary mid-flight.
//
// # Sub-protocol
//
// Replication runs on its own TCP port, framed exactly like the serving
// protocol (u32 big-endian length + body) but with its own message set,
// because frames carry whole page images and redo records rather than
// requests. The first body byte is the message type:
//
//	HELLO     0x01  replica → primary   ver, term, lsn, pageSize, dir
//	RESUME    0x02  primary → replica   term, lsn — tail-ship from lsn
//	SNAPBEGIN 0x03  primary → replica   term, lsn, pageSize, dir, hdr, npages
//	SNAPPAGE  0x04  primary → replica   id + raw page image
//	SNAPEND   0x05  primary → replica   lsn (must equal SNAPBEGIN's)
//	RECORD    0x06  primary → replica   term + one encoded WAL record
//	HEARTBEAT 0x07  primary → replica   term, lsn (primary durable position)
//	ACK       0x08  replica → primary   lsn (replica durable position)
//	FENCE     0x09  either direction    term — sender's term; a receiver
//	                                    with a lower term must stand down
//	PROMOTE   0x0A  admin → node        (empty) promote this node
//	PROMOTED  0x0B  node → admin        term, lsn of the new primary
//	ERROR     0x0C  either direction    utf-8 diagnostic
//
// A replica opens with HELLO carrying its durable position (term 0, lsn 0,
// dir 0 when it has no store yet). The primary answers RESUME when it can
// replay everything after that lsn from its backlog, SNAPBEGIN…SNAPEND
// when the replica needs a full re-clone (fresh, lagging beyond the
// backlog, diverged ahead of the primary, or from a different term
// lineage), or FENCE when the replica's term proves the primary stale.
// After RESUME or SNAPEND the connection becomes a one-way record stream
// punctuated by heartbeats, with ACKs flowing back on the same socket.
//
// # Fencing
//
// Terms order primary lineages. A node's term is persisted in its serving
// manifest before it acknowledges anything under that term. Promotion
// bumps the term; every message the shipper sends carries it; a node that
// sees a higher term than its own anywhere (HELLO, FENCE) immediately
// fences itself — writes fail core.ErrNotPrimary — because a newer
// lineage exists and accepting more writes would fork history.
package repl

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Message types.
const (
	msgHello     byte = 0x01
	msgResume    byte = 0x02
	msgSnapBegin byte = 0x03
	msgSnapPage  byte = 0x04
	msgSnapEnd   byte = 0x05
	msgRecord    byte = 0x06
	msgHeartbeat byte = 0x07
	msgAck       byte = 0x08
	msgFence     byte = 0x09
	msgPromote   byte = 0x0A
	msgPromoted  byte = 0x0B
	msgError     byte = 0x0C
)

// protoVersion is the HELLO version byte; a primary rejects versions it
// does not speak.
const protoVersion = 1

// MaxFrame bounds one replication frame: it must fit a whole redo record
// (WAL capacity × page size) or one snapshot page. 16 MiB covers a
// 4 KiB-page store with a 4096-page WAL with room to spare.
const MaxFrame = 16 << 20

// ErrFenced reports that the peer proved this node's term stale.
var ErrFenced = errors.New("repl: fenced by higher term")

// ErrProto reports a malformed replication frame.
var ErrProto = errors.New("repl: protocol error")

// Hello is the replica's opening position statement.
type Hello struct {
	Term     uint64
	LSN      uint64
	PageSize int
	Dir      uint64
}

// SnapInfo is the header of a full-snapshot transfer: everything a
// replica needs to create a protocol-identical store file.
type SnapInfo struct {
	Term     uint64
	LSN      uint64
	PageSize int
	Dir      uint64
	Hdr      uint64
	NPages   uint64
}

func be64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }
func be32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }
func beU64(b []byte) uint64          { return binary.BigEndian.Uint64(b) }

// writeFrame writes one length-prefixed frame.
func writeFrame(w io.Writer, body []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readFrame reads one length-prefixed frame, rejecting oversized ones
// (a desynced or hostile peer must not make us allocate gigabytes).
func readFrame(r *bufio.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: %d-byte frame exceeds limit %d", ErrProto, n, MaxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

func encodeHello(h Hello) []byte {
	b := make([]byte, 0, 2+8+8+4+8)
	b = append(b, msgHello, protoVersion)
	b = be64(b, h.Term)
	b = be64(b, h.LSN)
	b = be32(b, uint32(h.PageSize))
	b = be64(b, h.Dir)
	return b
}

func decodeHello(body []byte) (Hello, error) {
	if len(body) != 2+8+8+4+8 || body[0] != msgHello {
		return Hello{}, fmt.Errorf("%w: bad HELLO", ErrProto)
	}
	if body[1] != protoVersion {
		return Hello{}, fmt.Errorf("%w: HELLO version %d, want %d", ErrProto, body[1], protoVersion)
	}
	return Hello{
		Term:     binary.BigEndian.Uint64(body[2:]),
		LSN:      binary.BigEndian.Uint64(body[10:]),
		PageSize: int(binary.BigEndian.Uint32(body[18:])),
		Dir:      binary.BigEndian.Uint64(body[22:]),
	}, nil
}

func encodeSnapBegin(s SnapInfo) []byte {
	b := make([]byte, 0, 1+8+8+4+8+8+8)
	b = append(b, msgSnapBegin)
	b = be64(b, s.Term)
	b = be64(b, s.LSN)
	b = be32(b, uint32(s.PageSize))
	b = be64(b, s.Dir)
	b = be64(b, s.Hdr)
	b = be64(b, s.NPages)
	return b
}

func decodeSnapBegin(body []byte) (SnapInfo, error) {
	if len(body) != 1+8+8+4+8+8+8 {
		return SnapInfo{}, fmt.Errorf("%w: bad SNAPBEGIN", ErrProto)
	}
	return SnapInfo{
		Term:     binary.BigEndian.Uint64(body[1:]),
		LSN:      binary.BigEndian.Uint64(body[9:]),
		PageSize: int(binary.BigEndian.Uint32(body[17:])),
		Dir:      binary.BigEndian.Uint64(body[21:]),
		Hdr:      binary.BigEndian.Uint64(body[29:]),
		NPages:   binary.BigEndian.Uint64(body[37:]),
	}, nil
}

// encodeU64Msg covers the one-u64 messages (ACK, FENCE) and, with two
// values, RESUME / HEARTBEAT / PROMOTED (term, lsn).
func encodeU64Msg(t byte, vs ...uint64) []byte {
	b := make([]byte, 0, 1+8*len(vs))
	b = append(b, t)
	for _, v := range vs {
		b = be64(b, v)
	}
	return b
}

func decodeU64s(body []byte, n int) ([]uint64, error) {
	if len(body) != 1+8*n {
		return nil, fmt.Errorf("%w: message 0x%02x: %d bytes, want %d", ErrProto, body[0], len(body), 1+8*n)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.BigEndian.Uint64(body[1+8*i:])
	}
	return out, nil
}

func encodeError(msg string) []byte {
	return append([]byte{msgError}, msg...)
}
