package server

import (
	"context"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"rangesearch/internal/core"
	"rangesearch/internal/eio"
	"rangesearch/internal/epst"
	"rangesearch/internal/geom"
	"rangesearch/internal/obs"
	"rangesearch/internal/trace"
)

// captureRecorder is a SpanRecorder that retains every record, keyed for
// lookup by trace ID.
type captureRecorder struct {
	mu   sync.Mutex
	recs []trace.Record
}

func (c *captureRecorder) RecordSpan(r trace.Record) {
	c.mu.Lock()
	c.recs = append(c.recs, r)
	c.mu.Unlock()
}

func (c *captureRecorder) find(id trace.ID) (trace.Record, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range c.recs {
		if r.TraceID == id.String() {
			return r, true
		}
	}
	return trace.Record{}, false
}

func (c *captureRecorder) all() []trace.Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]trace.Record(nil), c.recs...)
}

// tracedServer is an in-process server whose writer index sits on an
// eio.TraceStore (exactly the rsserve stack), durable or volatile.
type tracedServer struct {
	srv    *Server
	addr   string
	snap   *eio.SnapStore
	tracer *eio.TraceStore
	served chan error
}

func newTracedServer(t *testing.T, cfg Config, durable bool) *tracedServer {
	t.Helper()
	var base eio.Store
	var tx *eio.TxStore
	if durable {
		fs, err := eio.CreateFileStore(filepath.Join(t.TempDir(), "trace.db"), 4096)
		if err != nil {
			t.Fatalf("CreateFileStore: %v", err)
		}
		tx, err = eio.NewTxStore(fs, eio.TxOptions{})
		if err != nil {
			t.Fatalf("NewTxStore: %v", err)
		}
		base = tx
	} else {
		base = eio.NewMemStore(4096)
	}
	snap := eio.NewSnapStore(base, 0)
	tracer := eio.NewTraceStore(snap)
	idx, err := core.NewThreeSided(tracer, epst.Options{})
	if err != nil {
		t.Fatalf("NewThreeSided: %v", err)
	}
	hdr := idx.HeaderID()
	if _, err := snap.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	var writer core.Index = idx
	if tx != nil {
		writer = core.NewDurable(idx, tx)
	}
	conc, err := core.NewConcurrent(writer, snap,
		func(s eio.Store) (core.Index, error) { return core.OpenThreeSided(s, hdr) },
		core.ConcurrentOptions{Tracer: tracer})
	if err != nil {
		t.Fatalf("NewConcurrent: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := New(conc, cfg)
	ts := &tracedServer{
		srv: srv, addr: ln.Addr().String(),
		snap: snap, tracer: tracer,
		served: make(chan error, 1),
	}
	go func() { ts.served <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		<-ts.served
		conc.Close()
		snap.Close()
	})
	return ts
}

func (ts *tracedServer) dial(t *testing.T) *Client {
	t.Helper()
	cl, err := Dial(ts.addr, ClientOptions{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// TestTracedRequestPhaseCoverage is the first acceptance criterion: for a
// traced request against a durable stack, the sum of the recorded phases
// must account for (at least) 95% of the span's wall time — the phases
// are the request's life, not a sample of it. Run on the durable stack
// where WAL append + fsync dominate, over a batch of requests, and
// assert the median coverage so one scheduler hiccup cannot flake the
// test.
func TestTracedRequestPhaseCoverage(t *testing.T) {
	rec := &captureRecorder{}
	ts := newTracedServer(t, Config{
		RequestTimeout: 0, // never detach: the span closes with the work complete
		Spans:          rec,
	}, true)
	cl := ts.dial(t)

	const n = 30
	ids := make([]trace.ID, 0, n)
	for i := 0; i < n; i++ {
		id := trace.NewID()
		ids = append(ids, id)
		resp, err := cl.Do(Request{
			Op:    OpInsert,
			P:     geom.Point{X: int64(i * 3), Y: int64(i * 7)},
			Trace: &TraceInfo{ID: id, Sampled: true},
		})
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if resp.Status != StatusOK {
			t.Fatalf("insert %d: status 0x%02x %s", i, resp.Status, resp.Msg)
		}
	}

	coverages := make([]float64, 0, n)
	for i, id := range ids {
		r, ok := rec.find(id)
		if !ok {
			t.Fatalf("span %d (%s) was not recorded", i, id)
		}
		if r.WallNs <= 0 {
			t.Fatalf("span %d: wall %d", i, r.WallNs)
		}
		var phaseSum int64
		for _, ns := range r.Phases {
			phaseSum += ns
		}
		cover := float64(phaseSum) / float64(r.WallNs)
		coverages = append(coverages, cover)
		// Phases are disjoint intervals inside the request: their sum may
		// not exceed the wall beyond clock-read granularity.
		if slack := float64(r.WallNs)*1.01 + float64(50*time.Microsecond); float64(phaseSum) > slack {
			t.Errorf("span %d: phase sum %dns exceeds wall %dns", i, phaseSum, r.WallNs)
		}
		// A durable insert must have visited the group-commit machinery.
		for _, phase := range []string{"execute", "sync"} {
			if r.Phases[phase] <= 0 {
				t.Errorf("span %d: phase %q missing: %v", i, phase, r.Phases)
			}
		}
	}
	med := median(coverages)
	if med < 0.95 {
		t.Fatalf("median phase coverage %.3f < 0.95 (coverages %v)", med, coverages)
	}
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

// TestTracedIOMatchesInstrumented is the second acceptance criterion:
// the block I/O a span attributes to a request must exactly equal what
// obs.Instrumented measures for the same operation on an equivalent
// stack. Both measure the index↔store surface, so any disagreement means
// the span sink is attached over the wrong window.
func TestTracedIOMatchesInstrumented(t *testing.T) {
	const preload = 500
	rect := geom.Rect{XLo: 100, XHi: 900, YLo: 50, YHi: geom.MaxCoord}
	point := geom.Point{X: 12345, Y: 54321}

	// Reference stack: the same MemStore/SnapStore/EPST pyramid, driven
	// through core.Concurrent so epoch-commit timing (and with it the
	// copy-on-write page states) matches the server's, with an
	// obs.Instrumented reader measuring the ops of interest.
	refIns, refQry := instrumentedReference(t, preload, point, rect)

	// Server stack: identical build, ops delivered over the wire with
	// TRACE envelopes.
	rec := &captureRecorder{}
	ts := newTracedServer(t, Config{Spans: rec}, false)
	cl := ts.dial(t)
	for i := 0; i < preload; i++ {
		if _, err := cl.Insert(preloadPoint(i)); err != nil {
			t.Fatalf("preload %d: %v", i, err)
		}
	}

	insID, qryID := trace.NewID(), trace.NewID()
	if resp, err := cl.Do(Request{Op: OpInsert, P: point, Trace: &TraceInfo{ID: insID, Sampled: true}}); err != nil || resp.Status != StatusOK {
		t.Fatalf("traced insert: %v / %+v", err, resp)
	}
	if resp, err := cl.Do(Request{Op: OpQuery3, Rect: rect, Trace: &TraceInfo{ID: qryID, Sampled: true}}); err != nil || resp.Status != StatusOK {
		t.Fatalf("traced query: %v / %+v", err, resp)
	}

	insSpan, ok := rec.find(insID)
	if !ok {
		t.Fatal("insert span not recorded")
	}
	qrySpan, ok := rec.find(qryID)
	if !ok {
		t.Fatal("query span not recorded")
	}

	if insSpan.Reads != int64(refIns.Reads) || insSpan.Writes != int64(refIns.Writes) {
		t.Errorf("insert I/O: span reads=%d writes=%d, instrumented reads=%d writes=%d",
			insSpan.Reads, insSpan.Writes, refIns.Reads, refIns.Writes)
	}
	if qrySpan.Reads != int64(refQry.Reads) || qrySpan.Writes != int64(refQry.Writes) {
		t.Errorf("query I/O: span reads=%d writes=%d, instrumented reads=%d writes=%d",
			qrySpan.Reads, qrySpan.Writes, refQry.Reads, refQry.Writes)
	}
	if qrySpan.Writes != 0 {
		t.Errorf("query span attributed %d writes; snapshot reads must not write", qrySpan.Writes)
	}
}

// TestUnsampledZeroAlloc pins the cost of the tracing machinery on the
// untraced fast path: when the request carries no TRACE envelope and the
// server samples nothing, the span gate allocates nothing.
func TestUnsampledZeroAlloc(t *testing.T) {
	ts := newTracedServer(t, Config{}, false)
	req := Request{Op: OpQuery3, Rect: geom.Rect{XLo: 0, XHi: 10, YLo: 0, YHi: 10}}
	start := time.Now()
	if allocs := testing.AllocsPerRun(1000, func() {
		if sp := ts.srv.startSpan(req, start); sp != nil {
			t.Fatal("unsampled request produced a span")
		}
	}); allocs != 0 {
		t.Fatalf("unsampled startSpan allocates %.1f objects/op, want 0", allocs)
	}

	// With counter sampling on, only every Nth gate may allocate.
	ts2 := newTracedServer(t, Config{TraceSample: 0.001}, false)
	if allocs := testing.AllocsPerRun(999, func() {
		ts2.srv.startSpan(req, start)
	}); allocs >= 1 {
		t.Fatalf("sampled-out startSpan allocates %.2f objects/op, want <1 amortized", allocs)
	}
}

// TestTracedLoadSoak races sampled tracing against the full pipelined,
// verified workload: client-stamped TRACE envelopes on a sampling
// interval, server-side spans recorded concurrently with group commit
// and snapshot reads. Zero errors of any class, every stamped request
// yields a span, and the merged report carries the phase breakdown. Run
// under -race for the full claim.
func TestTracedLoadSoak(t *testing.T) {
	dur := 2 * time.Second
	if testing.Short() {
		dur = 400 * time.Millisecond
	}
	m := &Metrics{}
	rec := &captureRecorder{}
	ts := newTracedServer(t, Config{Metrics: m, Spans: rec}, false)

	rep, err := RunLoad(LoadConfig{
		Addr:        ts.addr,
		Workers:     6,
		Duration:    dur,
		Pipeline:    4,
		Verify:      true,
		Domain:      1 << 16,
		BatchEvery:  50,
		BatchSize:   8,
		Seed:        21,
		TraceSample: 0.05,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.Failed() {
		t.Fatalf("traced soak failed: proto=%d consistency=%d transport=%d first=%s",
			rep.ProtoErrors, rep.ConsistencyErrors, rep.TransportErrors, rep.FirstError)
	}
	if rep.TracedOps == 0 {
		t.Fatalf("soak stamped no traces: %+v", rep)
	}
	t.Logf("traced soak: %d ops, %d traced, %d spans recorded", rep.Ops, rep.TracedOps, len(rec.all()))

	// Every client-stamped request must have produced exactly one span.
	spans := rec.all()
	if len(spans) != int(rep.TracedOps) {
		t.Fatalf("spans recorded = %d, traced ops = %d", len(spans), rep.TracedOps)
	}
	for _, r := range spans {
		if r.WallNs <= 0 {
			t.Fatalf("span %s: wall %d", r.TraceID, r.WallNs)
		}
		if r.Status != "ok" {
			t.Fatalf("span %s (%s): status %q", r.TraceID, r.Op, r.Status)
		}
	}
	// The merged client/server view exists and saw the same phases the
	// metrics histograms accumulated.
	if rep.Trace == nil || rep.Trace.ClientP99Ms <= 0 {
		t.Fatalf("merged trace stats missing: %+v", rep.Trace)
	}
	if len(rep.Trace.ServerPhases) == 0 {
		t.Fatal("merged trace stats carry no server phases")
	}
	if m.Spans() != uint64(len(spans)) {
		t.Fatalf("metrics counted %d spans, recorder saw %d", m.Spans(), len(spans))
	}
}

func preloadPoint(i int) geom.Point {
	return geom.Point{X: int64((i * 37) % 1000), Y: int64((i * 101) % 1000)}
}

// instrumentedReference replays the test workload on a plain local stack
// — the same index on the same TraceStore surface, without the serving
// machinery — and returns the obs.Instrumented I/O records for the
// traced insert and the traced query. This is the span's accounting
// contract: the I/O the operation itself performs at the index↔store
// surface, excluding serving overheads (epoch commits, reader opens)
// that belong to no single request.
func instrumentedReference(t *testing.T, preload int, point geom.Point, rect geom.Rect) (ins, qry obs.OpRecord) {
	t.Helper()
	tracer := eio.NewTraceStore(eio.NewMemStore(4096))
	idx, err := core.NewThreeSided(tracer, epst.Options{})
	if err != nil {
		t.Fatalf("ref NewThreeSided: %v", err)
	}
	for i := 0; i < preload; i++ {
		if err := idx.Insert(preloadPoint(i)); err != nil {
			t.Fatalf("ref preload %d: %v", i, err)
		}
	}

	col := obs.NewCollector()
	in, err := obs.Instrument(idx, tracer, col)
	if err != nil {
		t.Fatalf("ref Instrument: %v", err)
	}
	if err := in.Insert(point); err != nil {
		t.Fatalf("ref insert: %v", err)
	}
	if _, err := in.Query(nil, rect); err != nil {
		t.Fatalf("ref query: %v", err)
	}
	recs := col.Records()
	if len(recs) != 2 {
		t.Fatalf("ref records = %d, want 2", len(recs))
	}
	return recs[0], recs[1]
}
