package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"rangesearch/internal/geom"
)

func pt(x, y int64) geom.Point { return geom.Point{X: x, Y: y} }

func rect(xlo, xhi, ylo, yhi int64) geom.Rect {
	return geom.Rect{XLo: xlo, XHi: xhi, YLo: ylo, YHi: yhi}
}

// FuzzDecodeRequest pins DecodeRequest's totality: arbitrary bytes decode
// or fail with ErrProto — never panic — and everything that decodes
// re-encodes to the identical body (a canonical-form round trip).
func FuzzDecodeRequest(f *testing.F) {
	// One valid seed per opcode, plus hostile shapes.
	seed := func(r Request) []byte {
		body, err := EncodeRequest(nil, r)
		if err != nil {
			f.Fatal(err)
		}
		return body
	}
	f.Add(seed(Request{Op: OpPing, Data: []byte("hi")}))
	f.Add(seed(Request{Op: OpInsert, P: pt(3, -4)}))
	f.Add(seed(Request{Op: OpDelete, P: pt(0, 0)}))
	f.Add(seed(Request{Op: OpQuery3, Rect: rect(-1, 1, 0, 0)}))
	f.Add(seed(Request{Op: OpQuery4, Rect: rect(1, 2, 3, 4)}))
	f.Add(seed(Request{Op: OpBatch, Batch: []BatchEntry{{Kind: BatchInsert, P: pt(9, 9)}, {Kind: BatchDelete, P: pt(1, 1)}}}))
	f.Add(seed(Request{Op: OpStats}))
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Add([]byte{OpBatch, 0xFF, 0xFF, 0xFF, 0xFF})                        // huge count
	f.Add([]byte{OpInsert, 1, 2, 3})                                      // truncated point
	f.Add(append([]byte{OpBatch, 0, 0, 0, 1, 0x05}, make([]byte, 16)...)) // bad kind

	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := DecodeRequest(body, 64)
		if err != nil {
			if !errors.Is(err, ErrProto) {
				t.Fatalf("non-ErrProto failure: %v", err)
			}
			return
		}
		re, err := EncodeRequest(nil, req)
		if err != nil {
			t.Fatalf("decoded request does not re-encode: %v", err)
		}
		if !bytes.Equal(re, body) {
			t.Fatalf("round trip not canonical:\n in %x\nout %x", body, re)
		}
	})
}

// FuzzDecodeResponse pins DecodeResponse the same way, across every
// opcode a response can answer.
func FuzzDecodeResponse(f *testing.F) {
	f.Add(EncodeResponse(nil, OpQuery3, Response{Status: StatusOK, Points: []geom.Point{pt(1, 2), pt(-3, 4)}}), OpQuery3)
	f.Add(EncodeResponse(nil, OpInsert, Response{Status: StatusOK, Duplicate: true}), OpInsert)
	f.Add(EncodeResponse(nil, OpBatch, Response{Status: StatusOK, Results: []byte{BatchOK, BatchDup}}), OpBatch)
	f.Add(EncodeResponse(nil, OpDelete, Response{Status: StatusErr, Msg: "boom"}), OpDelete)
	f.Add([]byte{StatusOK, 0xFF}, OpQuery4)
	f.Add([]byte{}, OpPing)

	f.Fuzz(func(t *testing.T, body []byte, op byte) {
		resp, err := DecodeResponse(body, op)
		if err != nil {
			if !errors.Is(err, ErrProto) {
				t.Fatalf("non-ErrProto failure: %v", err)
			}
			return
		}
		re := EncodeResponse(nil, op, resp)
		if !bytes.Equal(re, body) {
			t.Fatalf("round trip not canonical:\n in %x\nout %x", body, re)
		}
	})
}

// FuzzDecodeIdem pins the idempotency-envelope decoder that the dedup
// window depends on: an arbitrary IDEM header + body either fails with
// ErrProto or decodes to exactly the (client, seq) identity on the wire,
// wrapped around a write opcode, and re-encodes canonically. A decoder
// that mangled the ID would silently break exactly-once retry semantics,
// so the identity check here is the load-bearing assertion.
func FuzzDecodeIdem(f *testing.F) {
	envelope := func(client, seq uint64, inner []byte) []byte {
		body := make([]byte, 0, 17+len(inner))
		body = append(body, OpIdem)
		body = binary.BigEndian.AppendUint64(body, client)
		body = binary.BigEndian.AppendUint64(body, seq)
		return append(body, inner...)
	}
	ins, _ := EncodeRequest(nil, Request{Op: OpInsert, P: pt(7, -7)})
	del, _ := EncodeRequest(nil, Request{Op: OpDelete, P: pt(0, 1)})
	bat, _ := EncodeRequest(nil, Request{Op: OpBatch, Batch: []BatchEntry{{Kind: BatchInsert, P: pt(2, 2)}}})
	f.Add(envelope(1, 1, ins))
	f.Add(envelope(^uint64(0), 0, del))
	f.Add(envelope(0xDEAD, 42, bat))
	f.Add(envelope(1, 1, []byte{OpQuery3}))    // reads may not be enveloped
	f.Add(envelope(1, 1, envelope(2, 2, ins))) // nested envelopes are invalid
	f.Add([]byte{OpIdem})                      // no header
	f.Add(envelope(1, 1, nil))                 // header but no inner op
	f.Add(envelope(1, 1, ins)[:17])            // truncated at the inner opcode

	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := DecodeRequest(body, 64)
		if err != nil {
			if !errors.Is(err, ErrProto) {
				t.Fatalf("non-ErrProto failure: %v", err)
			}
			return
		}
		if len(body) > 0 && body[0] == OpIdem {
			if req.Idem == nil {
				t.Fatal("IDEM frame decoded without an idempotency ID")
			}
			// The decoded identity must be exactly the wire bytes.
			wantClient := binary.BigEndian.Uint64(body[1:9])
			wantSeq := binary.BigEndian.Uint64(body[9:17])
			if req.Idem.Client != wantClient || req.Idem.Seq != wantSeq {
				t.Fatalf("idem ID (%d,%d) decoded from wire (%d,%d)",
					req.Idem.Client, req.Idem.Seq, wantClient, wantSeq)
			}
			if !idempotent(req.Op) {
				t.Fatalf("envelope decoded around non-idempotent %s", OpName(req.Op))
			}
		}
		re, err := EncodeRequest(nil, req)
		if err != nil {
			t.Fatalf("decoded request does not re-encode: %v", err)
		}
		if !bytes.Equal(re, body) {
			t.Fatalf("round trip not canonical:\n in %x\nout %x", body, re)
		}
	})
}

// FuzzReadFrame pins the framing layer: arbitrary byte streams either
// yield a frame within the limit or fail cleanly; a hostile length prefix
// must not drive allocation.
func FuzzReadFrame(f *testing.F) {
	frame := func(body []byte) []byte {
		var buf bytes.Buffer
		WriteFrame(&buf, body)
		return buf.Bytes()
	}
	f.Add(frame([]byte{OpStats}))
	f.Add(frame(bytes.Repeat([]byte{1}, 100)))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0, 0})

	f.Fuzz(func(t *testing.T, stream []byte) {
		const limit = 1 << 12
		r := bytes.NewReader(stream)
		for {
			body, err := ReadFrame(r, limit)
			if err != nil {
				if errors.Is(err, ErrFrameTooLarge) || errors.Is(err, ErrProto) ||
					errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
					return
				}
				t.Fatalf("unexpected error class: %v", err)
			}
			if len(body) == 0 || len(body) > limit {
				t.Fatalf("frame of %d bytes escaped the limit %d", len(body), limit)
			}
		}
	})
}

// FuzzFrameSizeRejection drives ReadFrame with an explicit length prefix
// to pin that rejection happens before the body is read or allocated.
func FuzzFrameSizeRejection(f *testing.F) {
	f.Add(uint32(0))
	f.Add(uint32(1))
	f.Add(uint32(1 << 12))
	f.Add(uint32(1<<12 + 1))
	f.Add(^uint32(0))
	f.Fuzz(func(t *testing.T, n uint32) {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], n)
		// The reader holds ONLY the header: if ReadFrame tried to read a
		// rejected body it would block forever on a net.Conn; against this
		// reader it must fail with the right class instead.
		_, err := ReadFrame(bytes.NewReader(hdr[:]), 1<<12)
		switch {
		case n == 0:
			if !errors.Is(err, ErrProto) {
				t.Fatalf("n=0: %v", err)
			}
		case n > 1<<12:
			if !errors.Is(err, ErrFrameTooLarge) {
				t.Fatalf("n=%d: %v, want ErrFrameTooLarge", n, err)
			}
		default:
			if !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("n=%d: %v, want ErrUnexpectedEOF", n, err)
			}
		}
	})
}

// FuzzDecodeTrace pins the TRACE-envelope decoder: an arbitrary TRACE
// header + body either fails with ErrProto or decodes to exactly the
// 16-byte ID and sampled flag on the wire, and re-encodes canonically. A
// decoder that mangled the ID would sever the client/server span join;
// one that accepted unknown flag bits would make future flag assignments
// silently change old clients' meaning.
func FuzzDecodeTrace(f *testing.F) {
	envelope := func(id [16]byte, flags byte, inner []byte) []byte {
		body := make([]byte, 0, 18+len(inner))
		body = append(body, OpTrace)
		body = append(body, id[:]...)
		body = append(body, flags)
		return append(body, inner...)
	}
	var idA, idB [16]byte
	for i := range idA {
		idA[i] = byte(i)
		idB[i] = 0xFF
	}
	ins, _ := EncodeRequest(nil, Request{Op: OpInsert, P: pt(7, -7)})
	qry, _ := EncodeRequest(nil, Request{Op: OpQuery3, Rect: rect(0, 9, 3, 1<<40)})
	idm, _ := EncodeRequest(nil, Request{Op: OpDelete, P: pt(1, 2), Idem: &IdemID{Client: 3, Seq: 4}})
	f.Add(envelope(idA, 0x01, ins))
	f.Add(envelope(idB, 0x00, qry))
	f.Add(envelope(idA, 0x01, idm))                      // TRACE over IDEM
	f.Add(envelope(idA, 0x02, ins))                      // unknown flag bit
	f.Add(envelope(idA, 0x01, envelope(idB, 0x01, ins))) // nested envelopes are invalid
	f.Add([]byte{OpTrace})                               // no header
	f.Add(envelope(idA, 0x01, nil))                      // header but no inner op
	f.Add(envelope(idA, 0x01, ins)[:9])                  // truncated mid-ID

	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := DecodeRequest(body, 64)
		if err != nil {
			if !errors.Is(err, ErrProto) {
				t.Fatalf("non-ErrProto failure: %v", err)
			}
			return
		}
		if len(body) > 0 && body[0] == OpTrace {
			if req.Trace == nil {
				t.Fatal("TRACE frame decoded without trace info")
			}
			// The decoded identity must be exactly the wire bytes.
			if !bytes.Equal(req.Trace.ID[:], body[1:17]) {
				t.Fatalf("trace ID %x decoded from wire %x", req.Trace.ID, body[1:17])
			}
			if want := body[17]&0x01 != 0; req.Trace.Sampled != want {
				t.Fatalf("sampled=%v decoded from flags 0x%02x", req.Trace.Sampled, body[17])
			}
		}
		re, err := EncodeRequest(nil, req)
		if err != nil {
			t.Fatalf("decoded request does not re-encode: %v", err)
		}
		if !bytes.Equal(re, body) {
			t.Fatalf("round trip not canonical:\n in %x\nout %x", body, re)
		}
	})
}
