package server

import (
	"sync"
	"testing"
	"time"

	"rangesearch/internal/netfault"
)

// TestSoakLoadAgainstServer is the acceptance gate for the serving layer:
// an in-process rsload-vs-rsserve soak. Pipelined mixed reads and writes
// from many connections (each verifying read-your-writes against a model
// of its own x-stripe) must complete with zero protocol or consistency
// errors, drain must leave the store scrub-clean, and the per-RPC latency
// histograms must be readable. Run it under -race for the full claim.
func TestSoakLoadAgainstServer(t *testing.T) {
	dur := 3 * time.Second
	workers := 8
	if testing.Short() {
		dur = 500 * time.Millisecond
		workers = 4
	}
	m := &Metrics{}
	ts := newTestServer(t, Config{Metrics: m})

	rep, err := RunLoad(LoadConfig{
		Addr:       ts.addr,
		Workers:    workers,
		Duration:   dur,
		Pipeline:   8,
		Verify:     true,
		Domain:     1 << 16,
		BatchEvery: 50,
		BatchSize:  12,
		Seed:       42,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	t.Logf("soak: %d ops (%.0f/s), %d reads, %d writes, %d points read, busy=%d",
		rep.Ops, rep.OpsPerSec, rep.Reads, rep.Writes, rep.PointsRead, rep.Busy)

	if rep.Failed() {
		t.Fatalf("soak failed: proto=%d consistency=%d transport=%d first=%s",
			rep.ProtoErrors, rep.ConsistencyErrors, rep.TransportErrors, rep.FirstError)
	}
	if rep.Ops == 0 || rep.Reads == 0 || rep.Writes == 0 {
		t.Fatalf("soak did no work: %+v", rep)
	}

	// Latency quantiles are present for the ops that ran.
	for _, op := range []string{"insert", "query3"} {
		st, ok := rep.PerOp[op]
		if !ok || st.Count == 0 || st.P99Ms <= 0 {
			t.Fatalf("missing %s latency stats: %+v", op, rep.PerOp)
		}
	}
	// And the server-side histograms agree that traffic happened.
	if m.Latency(OpInsert).Count() == 0 || m.Latency(OpInsert).Quantile(0.99) == 0 {
		t.Fatal("server-side insert latency histogram is empty")
	}

	ts.shutdown(t)
	ts.assertScrubClean(t)
}

// TestSoakUnderSaturation drives a tiny admission gate hard: BUSY
// shedding must be load shedding only — shed ops are not executed, so the
// verification model stays exact and no errors of any class appear.
func TestSoakUnderSaturation(t *testing.T) {
	dur := time.Second
	if testing.Short() {
		dur = 300 * time.Millisecond
	}
	m := &Metrics{}
	ts := newTestServer(t, Config{MaxInFlight: 1, Metrics: m})

	rep, err := RunLoad(LoadConfig{
		Addr:     ts.addr,
		Workers:  6,
		Duration: dur,
		Pipeline: 4,
		Verify:   true,
		Domain:   1 << 12,
		Seed:     7,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	t.Logf("saturation: %d ops, busy=%d", rep.Ops, rep.Busy)
	if rep.Failed() {
		t.Fatalf("saturation soak failed: proto=%d consistency=%d transport=%d first=%s",
			rep.ProtoErrors, rep.ConsistencyErrors, rep.TransportErrors, rep.FirstError)
	}
	ts.shutdown(t)
	ts.assertScrubClean(t)
}

// TestSoakResilientUnderFaults is the in-process chaos gate: the full
// verified workload runs through a netfault proxy that hard-resets every
// connection (RST) a few times per second. The resilient clients must
// reconnect, re-send their idempotency-stamped pipelines, and finish with
// ZERO errors of any class — including consistency, because the dedup
// window makes retried writes execute exactly once. Run under -race for
// the full claim.
func TestSoakResilientUnderFaults(t *testing.T) {
	dur := 3 * time.Second
	cutEvery := 300 * time.Millisecond
	if testing.Short() {
		dur = 800 * time.Millisecond
		cutEvery = 150 * time.Millisecond
	}
	m := &Metrics{}
	ts := newTestServer(t, Config{Metrics: m, RequestTimeout: 5 * time.Second})

	proxy, err := netfault.New(ts.addr, netfault.Options{
		Seed:    99,
		Latency: 200 * time.Microsecond,
		Jitter:  300 * time.Microsecond,
	})
	if err != nil {
		t.Fatalf("netfault.New: %v", err)
	}
	defer proxy.Close()

	stop := make(chan struct{})
	var chaosWG sync.WaitGroup
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		tick := time.NewTicker(cutEvery)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				proxy.CutAll()
			}
		}
	}()

	rep, err := RunLoad(LoadConfig{
		Addr:      proxy.Addr(),
		Workers:   6,
		Duration:  dur,
		Pipeline:  4,
		Verify:    true,
		Domain:    1 << 16,
		Seed:      7,
		Resilient: true,
		Retry:     RetryPolicy{MaxAttempts: 50, BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond},
	})
	close(stop)
	chaosWG.Wait()
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	t.Logf("resilient soak: %d ops (%.0f/s), cuts=%d reconnects=%d resent=%d unknown=%d",
		rep.Ops, rep.OpsPerSec, proxy.Stats().Cuts, rep.Reconnects, rep.Resent, rep.UnknownWrites)

	if rep.Failed() {
		t.Fatalf("resilient soak failed: proto=%d consistency=%d transport=%d first=%s",
			rep.ProtoErrors, rep.ConsistencyErrors, rep.TransportErrors, rep.FirstError)
	}
	if rep.Ops == 0 || rep.Writes == 0 {
		t.Fatalf("resilient soak did no work: %+v", rep)
	}
	if cuts := proxy.Stats().Cuts; cuts == 0 {
		t.Fatal("fault proxy never cut a connection; the test exercised nothing")
	}
	// Every worker connected at least once, and the cuts forced extras.
	if rep.Reconnects < 6 {
		t.Fatalf("Reconnects = %d, want >= one per worker", rep.Reconnects)
	}

	proxy.Close()
	ts.shutdown(t)
	ts.assertScrubClean(t)
}
