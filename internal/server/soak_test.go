package server

import (
	"testing"
	"time"
)

// TestSoakLoadAgainstServer is the acceptance gate for the serving layer:
// an in-process rsload-vs-rsserve soak. Pipelined mixed reads and writes
// from many connections (each verifying read-your-writes against a model
// of its own x-stripe) must complete with zero protocol or consistency
// errors, drain must leave the store scrub-clean, and the per-RPC latency
// histograms must be readable. Run it under -race for the full claim.
func TestSoakLoadAgainstServer(t *testing.T) {
	dur := 3 * time.Second
	workers := 8
	if testing.Short() {
		dur = 500 * time.Millisecond
		workers = 4
	}
	m := &Metrics{}
	ts := newTestServer(t, Config{Metrics: m})

	rep, err := RunLoad(LoadConfig{
		Addr:       ts.addr,
		Workers:    workers,
		Duration:   dur,
		Pipeline:   8,
		Verify:     true,
		Domain:     1 << 16,
		BatchEvery: 50,
		BatchSize:  12,
		Seed:       42,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	t.Logf("soak: %d ops (%.0f/s), %d reads, %d writes, %d points read, busy=%d",
		rep.Ops, rep.OpsPerSec, rep.Reads, rep.Writes, rep.PointsRead, rep.Busy)

	if rep.Failed() {
		t.Fatalf("soak failed: proto=%d consistency=%d transport=%d first=%s",
			rep.ProtoErrors, rep.ConsistencyErrors, rep.TransportErrors, rep.FirstError)
	}
	if rep.Ops == 0 || rep.Reads == 0 || rep.Writes == 0 {
		t.Fatalf("soak did no work: %+v", rep)
	}

	// Latency quantiles are present for the ops that ran.
	for _, op := range []string{"insert", "query3"} {
		st, ok := rep.PerOp[op]
		if !ok || st.Count == 0 || st.P99Ms <= 0 {
			t.Fatalf("missing %s latency stats: %+v", op, rep.PerOp)
		}
	}
	// And the server-side histograms agree that traffic happened.
	if m.Latency(OpInsert).Count() == 0 || m.Latency(OpInsert).Quantile(0.99) == 0 {
		t.Fatal("server-side insert latency histogram is empty")
	}

	ts.shutdown(t)
	ts.assertScrubClean(t)
}

// TestSoakUnderSaturation drives a tiny admission gate hard: BUSY
// shedding must be load shedding only — shed ops are not executed, so the
// verification model stays exact and no errors of any class appear.
func TestSoakUnderSaturation(t *testing.T) {
	dur := time.Second
	if testing.Short() {
		dur = 300 * time.Millisecond
	}
	m := &Metrics{}
	ts := newTestServer(t, Config{MaxInFlight: 1, Metrics: m})

	rep, err := RunLoad(LoadConfig{
		Addr:     ts.addr,
		Workers:  6,
		Duration: dur,
		Pipeline: 4,
		Verify:   true,
		Domain:   1 << 12,
		Seed:     7,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	t.Logf("saturation: %d ops, busy=%d", rep.Ops, rep.Busy)
	if rep.Failed() {
		t.Fatalf("saturation soak failed: proto=%d consistency=%d transport=%d first=%s",
			rep.ProtoErrors, rep.ConsistencyErrors, rep.TransportErrors, rep.FirstError)
	}
	ts.shutdown(t)
	ts.assertScrubClean(t)
}
