package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"rangesearch/internal/geom"
	"rangesearch/internal/trace"
)

// drainRecorder is a SpanRecorder that remembers how many spans it saw
// and whether any arrived after the drain supposedly finished — the
// handler contract is that a request's span is recorded before its
// response flushes, so Shutdown returning means no recorder call can
// still be in flight.
type drainRecorder struct {
	mu      sync.Mutex
	spans   int
	drained bool
	late    int
}

func (r *drainRecorder) RecordSpan(trace.Record) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans++
	if r.drained {
		r.late++
	}
}

func (r *drainRecorder) markDrained() (spans int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.drained = true
	return r.spans
}

// TestShutdownDrainsTracedIdemWrites races Server.Shutdown against
// pipelines of in-flight writes wearing both envelopes at once (TRACE
// outermost, IDEM inside — the deepest decode path a write can take).
// The drain contract under test:
//
//   - a connection finishes the request it is handling and flushes that
//     complete response before closing — so every Recv that succeeds
//     decodes cleanly, and a cut pipeline fails with a transport error,
//     never a framing (ErrProto) error from a torn flush;
//   - sampled spans are recorded before the response flushes, so no span
//     arrives after Shutdown returns;
//   - every write acked OK with Duplicate=false is present in the index
//     afterwards (distinct points per client make the count exact).
//
// Run under -race for the full claim.
func TestShutdownDrainsTracedIdemWrites(t *testing.T) {
	rec := &drainRecorder{}
	ts := newTestServer(t, Config{Spans: rec, RequestTimeout: 5 * time.Second})

	const (
		clients  = 4
		pipeline = 16
	)
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		acked   int
		tornErr error
	)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			cl, err := Dial(ts.addr, ClientOptions{})
			if err != nil {
				t.Errorf("client %d: dial: %v", ci, err)
				return
			}
			defer cl.Close()
			seq := uint64(0)
			clientID := uint64(0xD0A10 + ci)
			for round := 0; ; round++ {
				sent := 0
				for k := 0; k < pipeline; k++ {
					seq++
					r := Request{
						Op: OpInsert,
						// Distinct per client and op: X carries the client,
						// Y the sequence, so acked inserts count exactly.
						P:     geom.Point{X: int64(ci), Y: int64(seq)},
						Idem:  &IdemID{Client: clientID, Seq: seq},
						Trace: &TraceInfo{ID: trace.NewID(), Sampled: true},
					}
					if err := cl.Send(r); err != nil {
						return // connection gone mid-drain: fine
					}
					sent++
				}
				for k := 0; k < sent; k++ {
					resp, err := cl.Recv()
					if err != nil {
						if errors.Is(err, ErrProto) {
							mu.Lock()
							if tornErr == nil {
								tornErr = err
							}
							mu.Unlock()
						}
						return
					}
					if resp.Status == StatusOK && !resp.Duplicate {
						mu.Lock()
						acked++
						mu.Unlock()
					}
				}
			}
		}(ci)
	}

	// Let the pipelines build up real in-flight depth, then pull the rug.
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := ts.srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	spansAtDrain := rec.markDrained()
	select {
	case err := <-ts.served:
		if err != nil {
			t.Fatalf("Serve returned %v after Shutdown, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	wg.Wait()

	if tornErr != nil {
		t.Fatalf("a drained connection flushed a torn frame: %v", tornErr)
	}
	rec.mu.Lock()
	late := rec.late
	rec.mu.Unlock()
	if late != 0 {
		t.Fatalf("%d spans recorded after Shutdown returned", late)
	}
	if acked == 0 || spansAtDrain == 0 {
		t.Fatalf("test did no work: acked=%d spans=%d", acked, spansAtDrain)
	}
	n, err := ts.conc.Len()
	if err != nil {
		t.Fatalf("Len: %v", err)
	}
	if n < acked {
		t.Fatalf("index holds %d points, but %d distinct inserts were acked OK", n, acked)
	}
	t.Logf("drain race: %d acked inserts, %d points, %d spans", acked, n, spansAtDrain)
}
