package server

import (
	"sync/atomic"
	"time"

	"rangesearch/internal/obs"
	"rangesearch/internal/trace"
)

// opSlots indexes the per-opcode metric arrays: opcodes are 0x01..0x07, so
// slot = opcode works with one unused zero slot.
const opSlots = 8

// Metrics aggregates the serving layer's observability signals: per-RPC
// latency and byte-size log₂ histograms, connection and in-flight gauges,
// and the counters that distinguish "slow" from "shedding" from "broken"
// (busy rejections, protocol errors, handler panics). A zero Metrics is
// ready to use; all methods are safe for concurrent use from every
// connection handler.
type Metrics struct {
	latency  [opSlots]obs.Histogram // wall ns per RPC, by opcode
	bytesIn  [opSlots]obs.Histogram // request frame bytes, by opcode
	bytesOut [opSlots]obs.Histogram // response frame bytes, by opcode
	ops      [opSlots]atomic.Uint64 // completed RPCs, by opcode
	errs     [opSlots]atomic.Uint64 // RPCs answered StatusErr, by opcode

	spans  atomic.Uint64                  // sampled spans recorded
	phases [trace.NumPhases]obs.Histogram // ns per trace phase, sampled spans only

	conns      atomic.Int64  // open connections
	inflight   atomic.Int64  // RPCs past the admission gate, not yet answered
	accepted   atomic.Uint64 // connections ever accepted
	busy       atomic.Uint64 // RPCs shed with StatusBusy
	protoErr   atomic.Uint64 // malformed frames / payloads received
	panics     atomic.Uint64 // connection handlers killed by a panic
	timeouts   atomic.Uint64 // RPCs answered StatusTimeout (deadline expired)
	evicted    atomic.Uint64 // connections closed for missing a write deadline
	idemReplay atomic.Uint64 // IDEM retries answered from the dedup window
	idemExec   atomic.Uint64 // IDEM envelopes executed (window miss)
	stale      atomic.Uint64 // barrier reads answered StatusStale
	notPrimary atomic.Uint64 // writes rejected StatusNotPrimary (replica role)
	diskFull   atomic.Uint64 // writes rejected StatusDiskFull (ENOSPC)
}

// observe records one completed RPC.
func (m *Metrics) observe(op byte, lat time.Duration, in, out int, isErr bool) {
	if lat < 0 {
		lat = 0
	}
	if int(op) < opSlots {
		m.latency[op].Observe(uint64(lat))
		m.bytesIn[op].Observe(uint64(in))
		m.bytesOut[op].Observe(uint64(out))
		m.ops[op].Add(1)
		if isErr {
			m.errs[op].Add(1)
		}
	}
}

// observeSpan feeds a finished sampled span into the per-phase latency
// histograms. Only phases the request actually passed through (non-zero)
// are observed, so a read doesn't drag the group-commit phase quantiles
// toward zero.
func (m *Metrics) observeSpan(sp *trace.Span) {
	m.spans.Add(1)
	for p := trace.Phase(0); p < trace.NumPhases; p++ {
		if d := sp.Phase(p); d > 0 {
			m.phases[p].Observe(uint64(d))
		}
	}
}

// PhaseHistogram returns the latency histogram (nanoseconds) for trace
// phase p, fed by sampled spans.
func (m *Metrics) PhaseHistogram(p trace.Phase) *obs.Histogram {
	return &m.phases[p%trace.NumPhases]
}

// Spans returns the number of sampled spans recorded.
func (m *Metrics) Spans() uint64 { return m.spans.Load() }

// Latency returns the latency histogram (nanoseconds) for opcode op.
func (m *Metrics) Latency(op byte) *obs.Histogram { return &m.latency[op%opSlots] }

// BytesIn returns the request-size histogram for opcode op.
func (m *Metrics) BytesIn(op byte) *obs.Histogram { return &m.bytesIn[op%opSlots] }

// BytesOut returns the response-size histogram for opcode op.
func (m *Metrics) BytesOut(op byte) *obs.Histogram { return &m.bytesOut[op%opSlots] }

// Conns returns the open-connection gauge value.
func (m *Metrics) Conns() int64 { return m.conns.Load() }

// InFlight returns the in-flight-RPC gauge value.
func (m *Metrics) InFlight() int64 { return m.inflight.Load() }

// Busy returns the number of RPCs shed with StatusBusy.
func (m *Metrics) Busy() uint64 { return m.busy.Load() }

// ProtoErrors returns the number of malformed frames received.
func (m *Metrics) ProtoErrors() uint64 { return m.protoErr.Load() }

// Panics returns the number of connection handlers killed by a panic.
func (m *Metrics) Panics() uint64 { return m.panics.Load() }

// Timeouts returns the number of RPCs answered StatusTimeout.
func (m *Metrics) Timeouts() uint64 { return m.timeouts.Load() }

// Evicted returns the number of connections closed because the peer was
// too slow to accept a response within the write deadline.
func (m *Metrics) Evicted() uint64 { return m.evicted.Load() }

// IdemReplays returns the number of retried writes answered verbatim from
// the idempotency dedup window instead of re-executing.
func (m *Metrics) IdemReplays() uint64 { return m.idemReplay.Load() }

// Stale returns the number of barrier reads answered StatusStale.
func (m *Metrics) Stale() uint64 { return m.stale.Load() }

// NotPrimary returns the number of writes rejected StatusNotPrimary.
func (m *Metrics) NotPrimary() uint64 { return m.notPrimary.Load() }

// DiskFull returns the number of writes rejected StatusDiskFull.
func (m *Metrics) DiskFull() uint64 { return m.diskFull.Load() }

// OpMetricsSnapshot is the JSON-friendly per-opcode view.
type OpMetricsSnapshot struct {
	Count    uint64                `json:"count"`
	Errors   uint64                `json:"errors,omitempty"`
	LatNs    obs.HistogramSnapshot `json:"lat_ns"`
	BytesIn  obs.HistogramSnapshot `json:"bytes_in"`
	BytesOut obs.HistogramSnapshot `json:"bytes_out"`
}

// PhaseSnapshot is the compact per-trace-phase view served inside STATS:
// count plus the two quantiles an operator actually pages on.
type PhaseSnapshot struct {
	Count uint64 `json:"count"`
	P50Ns uint64 `json:"p50_ns"`
	P99Ns uint64 `json:"p99_ns"`
}

// MetricsSnapshot is the JSON-friendly view of a Metrics, the payload both
// the expvar variable and the STATS opcode serve.
type MetricsSnapshot struct {
	Conns       int64                        `json:"conns"`
	InFlight    int64                        `json:"in_flight"`
	Accepted    uint64                       `json:"accepted"`
	Busy        uint64                       `json:"busy"`
	ProtoErrors uint64                       `json:"proto_errors"`
	Panics      uint64                       `json:"panics"`
	Timeouts    uint64                       `json:"timeouts"`
	Evicted     uint64                       `json:"evicted"`
	IdemReplays uint64                       `json:"idem_replays"`
	IdemExecs   uint64                       `json:"idem_execs"`
	Stale       uint64                       `json:"stale,omitempty"`
	NotPrimary  uint64                       `json:"not_primary,omitempty"`
	DiskFull    uint64                       `json:"disk_full,omitempty"`
	Spans       uint64                       `json:"spans,omitempty"`
	Ops         map[string]OpMetricsSnapshot `json:"ops"`
	// Phases holds p50/p99 per trace phase (only phases with samples).
	Phases map[string]PhaseSnapshot `json:"phases,omitempty"`
	// PhaseHist carries the full phase histograms (only phases with
	// samples); the Prometheus exporter turns these into cumulative
	// bucket series.
	PhaseHist map[string]obs.HistogramSnapshot `json:"phase_hist,omitempty"`
}

// Snapshot returns a point-in-time copy of every counter and histogram.
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		Conns:       m.conns.Load(),
		InFlight:    m.inflight.Load(),
		Accepted:    m.accepted.Load(),
		Busy:        m.busy.Load(),
		ProtoErrors: m.protoErr.Load(),
		Panics:      m.panics.Load(),
		Timeouts:    m.timeouts.Load(),
		Evicted:     m.evicted.Load(),
		IdemReplays: m.idemReplay.Load(),
		IdemExecs:   m.idemExec.Load(),
		Stale:       m.stale.Load(),
		NotPrimary:  m.notPrimary.Load(),
		DiskFull:    m.diskFull.Load(),
		Spans:       m.spans.Load(),
		Ops:         map[string]OpMetricsSnapshot{},
	}
	for p := trace.Phase(0); p < trace.NumPhases; p++ {
		h := &m.phases[p]
		n := h.Count()
		if n == 0 {
			continue
		}
		if s.Phases == nil {
			s.Phases = map[string]PhaseSnapshot{}
			s.PhaseHist = map[string]obs.HistogramSnapshot{}
		}
		s.Phases[p.String()] = PhaseSnapshot{
			Count: n,
			P50Ns: h.Quantile(0.50),
			P99Ns: h.Quantile(0.99),
		}
		s.PhaseHist[p.String()] = h.Snapshot()
	}
	for _, op := range []byte{OpPing, OpInsert, OpDelete, OpQuery3, OpQuery4, OpBatch, OpStats} {
		if n := m.ops[op].Load(); n > 0 {
			s.Ops[OpName(op)] = OpMetricsSnapshot{
				Count:    n,
				Errors:   m.errs[op].Load(),
				LatNs:    m.latency[op].Snapshot(),
				BytesIn:  m.bytesIn[op].Snapshot(),
				BytesOut: m.bytesOut[op].Snapshot(),
			}
		}
	}
	return s
}

// PublishMetrics exports m.Snapshot() as the expvar
// "rangesearch.server.<name>" on the same /debug/vars surface
// obs.ServeMetrics serves. Later calls with the same name repoint the
// variable.
func PublishMetrics(name string, m *Metrics) {
	obs.Publish("rangesearch.server."+name, func() interface{} {
		return m.Snapshot()
	})
}
