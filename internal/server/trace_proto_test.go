package server

import (
	"bytes"
	"errors"
	"testing"

	"rangesearch/internal/geom"
	"rangesearch/internal/trace"
)

// traceEnvelope hand-builds a TRACE frame: opcode, 16-byte ID, flags,
// inner request.
func traceEnvelope(id trace.ID, flags byte, inner []byte) []byte {
	body := make([]byte, 0, 1+traceHdrSize+len(inner))
	body = append(body, OpTrace)
	body = append(body, id[:]...)
	body = append(body, flags)
	return append(body, inner...)
}

func TestTraceEnvelopeRoundTrip(t *testing.T) {
	id := trace.NewID()
	cases := []Request{
		{Op: OpInsert, P: geom.Point{X: 1, Y: 2}, Trace: &TraceInfo{ID: id, Sampled: true}},
		{Op: OpQuery3, Rect: geom.Rect{XLo: 0, XHi: 9, YLo: 3, YHi: geom.MaxCoord}, Trace: &TraceInfo{ID: id}},
		{Op: OpPing, Trace: &TraceInfo{ID: id, Sampled: true}},
		// TRACE wrapping IDEM: the trace envelope is outermost.
		{Op: OpDelete, P: geom.Point{X: -4, Y: 4},
			Idem:  &IdemID{Client: 7, Seq: 9},
			Trace: &TraceInfo{ID: id, Sampled: true}},
	}
	for _, want := range cases {
		body, err := EncodeRequest(nil, want)
		if err != nil {
			t.Fatalf("encode %s: %v", OpName(want.Op), err)
		}
		if body[0] != OpTrace {
			t.Fatalf("%s: trace envelope not outermost (opcode 0x%02x)", OpName(want.Op), body[0])
		}
		got, err := DecodeRequest(body, 0)
		if err != nil {
			t.Fatalf("decode %s: %v", OpName(want.Op), err)
		}
		if got.Trace == nil {
			t.Fatalf("%s: trace info lost in decode", OpName(want.Op))
		}
		if got.Trace.ID != want.Trace.ID || got.Trace.Sampled != want.Trace.Sampled {
			t.Fatalf("%s: trace info %+v, want %+v", OpName(want.Op), got.Trace, want.Trace)
		}
		if want.Idem != nil && (got.Idem == nil || *got.Idem != *want.Idem) {
			t.Fatalf("%s: idem info %+v, want %+v", OpName(want.Op), got.Idem, want.Idem)
		}
		if got.Op != want.Op {
			t.Fatalf("op %s, want %s", OpName(got.Op), OpName(want.Op))
		}
		re, err := EncodeRequest(nil, got)
		if err != nil {
			t.Fatalf("re-encode %s: %v", OpName(want.Op), err)
		}
		if !bytes.Equal(re, body) {
			t.Fatalf("%s: round trip not canonical:\n in %x\nout %x", OpName(want.Op), body, re)
		}
	}
}

func TestTraceEnvelopeHostile(t *testing.T) {
	id := trace.NewID()
	ins, _ := EncodeRequest(nil, Request{Op: OpInsert, P: geom.Point{X: 1, Y: 1}})
	cases := []struct {
		name string
		body []byte
	}{
		{"bare opcode", []byte{OpTrace}},
		{"truncated header", traceEnvelope(id, traceFlagSampled, ins)[:10]},
		{"header only, no inner op", traceEnvelope(id, traceFlagSampled, nil)},
		{"unknown flag bits", traceEnvelope(id, 0x80, ins)},
		{"all flag bits", traceEnvelope(id, 0xFF, ins)},
		{"nested trace envelope", traceEnvelope(id, 0, traceEnvelope(id, 0, ins))},
		{"truncated inner", traceEnvelope(id, traceFlagSampled, ins[:3])},
	}
	for _, tc := range cases {
		if _, err := DecodeRequest(tc.body, 0); !errors.Is(err, ErrProto) {
			t.Errorf("%s: err = %v, want ErrProto", tc.name, err)
		}
	}
}

// TestTraceZeroIDAllowed pins that a zero trace ID is wire-legal: the
// server generates a fresh ID only when the client did not sample.
func TestTraceZeroIDAllowed(t *testing.T) {
	ins, _ := EncodeRequest(nil, Request{Op: OpInsert, P: geom.Point{X: 5, Y: 5}})
	req, err := DecodeRequest(traceEnvelope(trace.ID{}, traceFlagSampled, ins), 0)
	if err != nil {
		t.Fatalf("zero-ID trace envelope rejected: %v", err)
	}
	if req.Trace == nil || !req.Trace.ID.IsZero() || !req.Trace.Sampled {
		t.Fatalf("trace info = %+v", req.Trace)
	}
}
