package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"

	"rangesearch/internal/geom"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bodies := [][]byte{{0x01}, []byte("hello"), bytes.Repeat([]byte{0xAB}, 1000)}
	for _, b := range bodies {
		if err := WriteFrame(&buf, b); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	for i, want := range bodies {
		got, err := ReadFrame(&buf, DefaultMaxFrame)
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %x want %x", i, got, want)
		}
	}
}

func TestReadFrameHostile(t *testing.T) {
	// Oversized length prefix must be rejected before allocation.
	var buf bytes.Buffer
	binary.Write(&buf, binary.BigEndian, uint32(1<<31))
	if _, err := ReadFrame(&buf, 1024); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized prefix: got %v, want ErrFrameTooLarge", err)
	}

	// Empty frame is a protocol error.
	buf.Reset()
	binary.Write(&buf, binary.BigEndian, uint32(0))
	if _, err := ReadFrame(&buf, 1024); !errors.Is(err, ErrProto) {
		t.Fatalf("empty frame: got %v, want ErrProto", err)
	}

	// Truncated header.
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0}), 1024); err == nil {
		t.Fatal("truncated header: want error")
	}

	// Truncated body.
	buf.Reset()
	binary.Write(&buf, binary.BigEndian, uint32(10))
	buf.Write([]byte{1, 2, 3})
	if _, err := ReadFrame(&buf, 1024); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated body: got %v, want ErrUnexpectedEOF", err)
	}
}

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpPing, Data: []byte("echo me")},
		{Op: OpPing},
		{Op: OpInsert, P: geom.Point{X: -5, Y: 1 << 40}},
		{Op: OpDelete, P: geom.Point{X: geom.MinCoord, Y: geom.MaxCoord}},
		{Op: OpQuery3, Rect: geom.Rect{XLo: -10, XHi: 10, YLo: 3, YHi: geom.MaxCoord}},
		{Op: OpQuery4, Rect: geom.Rect{XLo: 1, XHi: 2, YLo: 3, YHi: 4}},
		{Op: OpBatch, Batch: []BatchEntry{
			{Kind: BatchInsert, P: geom.Point{X: 1, Y: 2}},
			{Kind: BatchDelete, P: geom.Point{X: -3, Y: -4}},
		}},
		{Op: OpBatch},
		{Op: OpStats},
	}
	for _, want := range reqs {
		body, err := EncodeRequest(nil, want)
		if err != nil {
			t.Fatalf("%s: encode: %v", OpName(want.Op), err)
		}
		got, err := DecodeRequest(body, 0)
		if err != nil {
			t.Fatalf("%s: decode: %v", OpName(want.Op), err)
		}
		if got.Op != want.Op || got.P != want.P || got.Rect != want.Rect {
			t.Fatalf("%s: got %+v want %+v", OpName(want.Op), got, want)
		}
		if string(got.Data) != string(want.Data) {
			t.Fatalf("%s: data %q want %q", OpName(want.Op), got.Data, want.Data)
		}
		if len(got.Batch) != len(want.Batch) {
			t.Fatalf("%s: batch len %d want %d", OpName(want.Op), len(got.Batch), len(want.Batch))
		}
		for i := range got.Batch {
			if got.Batch[i] != want.Batch[i] {
				t.Fatalf("%s: batch[%d] %+v want %+v", OpName(want.Op), i, got.Batch[i], want.Batch[i])
			}
		}
	}
}

func TestDecodeRequestHostile(t *testing.T) {
	cases := []struct {
		name string
		body []byte
	}{
		{"empty", nil},
		{"unknown opcode", []byte{0xFF, 1, 2, 3}},
		{"zero opcode", []byte{0x00}},
		{"insert short", []byte{OpInsert, 1, 2, 3}},
		{"insert long", append([]byte{OpInsert}, make([]byte, 17)...)},
		{"query3 short", append([]byte{OpQuery3}, make([]byte, 23)...)},
		{"query4 long", append([]byte{OpQuery4}, make([]byte, 33)...)},
		{"batch truncated count", []byte{OpBatch, 0, 0}},
		{"batch count mismatch", []byte{OpBatch, 0, 0, 0, 2, 0}},
		{"batch bad kind", append([]byte{OpBatch, 0, 0, 0, 1, 0x7}, make([]byte, 16)...)},
		{"stats with payload", []byte{OpStats, 1}},
	}
	for _, tc := range cases {
		if _, err := DecodeRequest(tc.body, 0); !errors.Is(err, ErrProto) {
			t.Errorf("%s: got %v, want ErrProto", tc.name, err)
		}
	}

	// A batch above the ops limit is rejected by count, not by allocating.
	var huge []byte
	huge = append(huge, OpBatch)
	var cnt [4]byte
	binary.BigEndian.PutUint32(cnt[:], 1<<30)
	huge = append(huge, cnt[:]...)
	if _, err := DecodeRequest(huge, 64); !errors.Is(err, ErrProto) {
		t.Fatalf("huge batch: got %v, want ErrProto", err)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []struct {
		op   byte
		resp Response
	}{
		{OpPing, Response{Status: StatusOK, Data: []byte("pong")}},
		{OpInsert, Response{Status: StatusOK, Duplicate: true}},
		{OpInsert, Response{Status: StatusOK}},
		{OpDelete, Response{Status: StatusOK, Found: true}},
		{OpQuery3, Response{Status: StatusOK, Points: []geom.Point{{X: 1, Y: 2}, {X: -9, Y: 8}}}},
		{OpQuery4, Response{Status: StatusOK}},
		{OpBatch, Response{Status: StatusOK, Results: []byte{BatchOK, BatchDup, BatchNotFound}}},
		{OpStats, Response{Status: StatusOK, Data: []byte(`{"len":3}`)}},
		{OpInsert, Response{Status: StatusErr, Msg: "kaboom"}},
		{OpQuery4, Response{Status: StatusBusy}},
	}
	for i, tc := range cases {
		body := EncodeResponse(nil, tc.op, tc.resp)
		got, err := DecodeResponse(body, tc.op)
		if err != nil {
			t.Fatalf("case %d (%s): decode: %v", i, OpName(tc.op), err)
		}
		if got.Status != tc.resp.Status || got.Msg != tc.resp.Msg ||
			got.Duplicate != tc.resp.Duplicate || got.Found != tc.resp.Found {
			t.Fatalf("case %d: got %+v want %+v", i, got, tc.resp)
		}
		if len(got.Points) != len(tc.resp.Points) {
			t.Fatalf("case %d: points %d want %d", i, len(got.Points), len(tc.resp.Points))
		}
		for j := range got.Points {
			if got.Points[j] != tc.resp.Points[j] {
				t.Fatalf("case %d: point %d differs", i, j)
			}
		}
		if !bytes.Equal(got.Results, tc.resp.Results) {
			t.Fatalf("case %d: results %v want %v", i, got.Results, tc.resp.Results)
		}
		if tc.resp.Status == StatusOK && !bytes.Equal(got.Data, tc.resp.Data) {
			t.Fatalf("case %d: data %q want %q", i, got.Data, tc.resp.Data)
		}
	}
}

func TestDecodeResponseHostile(t *testing.T) {
	cases := []struct {
		name string
		op   byte
		body []byte
	}{
		{"empty", OpInsert, nil},
		{"unknown status", OpInsert, []byte{0x9}},
		{"insert bad flag", OpInsert, []byte{StatusOK, 2}},
		{"delete short", OpDelete, []byte{StatusOK}},
		{"query truncated", OpQuery3, []byte{StatusOK, 0, 0}},
		{"query count mismatch", OpQuery4, []byte{StatusOK, 0, 0, 0, 2, 1}},
		{"batch bad code", OpBatch, []byte{StatusOK, 0, 0, 0, 1, 0x9}},
		{"unknown opcode", 0xEE, []byte{StatusOK, 1}},
	}
	for _, tc := range cases {
		if _, err := DecodeResponse(tc.body, tc.op); !errors.Is(err, ErrProto) {
			t.Errorf("%s: got %v, want ErrProto", tc.name, err)
		}
	}
}

func TestOpName(t *testing.T) {
	if OpName(OpQuery3) != "query3" {
		t.Fatalf("OpName(OpQuery3) = %q", OpName(OpQuery3))
	}
	if !strings.Contains(OpName(0xCC), "0xcc") {
		t.Fatalf("OpName(0xCC) = %q", OpName(0xCC))
	}
}
