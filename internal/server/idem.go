package server

import (
	"container/list"
	"sync"
)

// IdemConfig bounds the server's idempotency dedup state. The zero value
// selects the documented defaults.
type IdemConfig struct {
	// MaxClients caps the number of client sessions tracked at once;
	// beyond it the least-recently-seen session's window is evicted
	// wholesale. Default 256. Negative disables deduplication entirely
	// (IDEM envelopes still decode, every one executes).
	MaxClients int
	// Window is the number of completed writes remembered per client
	// session, oldest evicted first. It must cover the client's maximum
	// pipeline depth plus the retries in flight across a reconnect — 64
	// outstanding writes need a window of 64, not of the total write
	// count. Default 512.
	Window int
}

func (c IdemConfig) withDefaults() IdemConfig {
	if c.MaxClients == 0 {
		c.MaxClients = 256
	}
	if c.Window <= 0 {
		c.Window = 512
	}
	return c
}

// idemTable is the server-wide dedup state: one bounded window of
// completed-write responses per client session, sessions themselves
// bounded by LRU. Windows are keyed by the client half of the IdemID and
// shared across that client's connections — a retry after a reconnect
// lands in the same window its original populated.
type idemTable struct {
	cfg IdemConfig

	mu      sync.Mutex
	clients map[uint64]*idemWindow
	lru     *list.List // of uint64 client ids, front = most recent
}

// idemWindow is one client session's bounded memory of completed writes:
// seq → the encoded response body that was (or would have been) sent.
type idemWindow struct {
	entries map[uint64][]byte
	order   []uint64 // insertion order ring for bounded eviction
	elem    *list.Element
}

func newIdemTable(cfg IdemConfig) *idemTable {
	return &idemTable{
		cfg:     cfg.withDefaults(),
		clients: map[uint64]*idemWindow{},
		lru:     list.New(),
	}
}

// lookup returns the cached encoded response for id, if the write already
// completed within the window.
func (t *idemTable) lookup(id IdemID) ([]byte, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	w, ok := t.clients[id.Client]
	if !ok {
		return nil, false
	}
	t.lru.MoveToFront(w.elem)
	body, ok := w.entries[id.Seq]
	return body, ok
}

// store remembers the encoded response of a completed write, evicting the
// oldest window entry — and, at the session cap, the least-recently-seen
// session — to stay bounded. body is copied.
func (t *idemTable) store(id IdemID, body []byte) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	w, ok := t.clients[id.Client]
	if !ok {
		for len(t.clients) >= t.cfg.MaxClients {
			oldest := t.lru.Back()
			if oldest == nil {
				break
			}
			t.lru.Remove(oldest)
			delete(t.clients, oldest.Value.(uint64))
		}
		w = &idemWindow{entries: map[uint64][]byte{}}
		w.elem = t.lru.PushFront(id.Client)
		t.clients[id.Client] = w
	} else {
		t.lru.MoveToFront(w.elem)
	}
	if _, dup := w.entries[id.Seq]; dup {
		return // first completion wins; a concurrent retry must not clobber it
	}
	for len(w.order) >= t.cfg.Window {
		delete(w.entries, w.order[0])
		w.order = w.order[:copy(w.order, w.order[1:])]
	}
	w.entries[id.Seq] = append([]byte(nil), body...)
	w.order = append(w.order, id.Seq)
}

// stats reports the tracked session and entry counts (for STATS/metrics).
func (t *idemTable) stats() (clients, entries int) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, w := range t.clients {
		entries += len(w.entries)
	}
	return len(t.clients), entries
}
