package server

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"rangesearch/internal/geom"
)

// ClientOptions tunes a Client.
type ClientOptions struct {
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
	// IOTimeout is the per-round-trip deadline: it covers writing one
	// request (or pipeline burst) and reading its response(s)
	// (default 30s; <0 disables).
	IOTimeout time.Duration
	// MaxFrame is the response-frame ceiling (default DefaultMaxFrame).
	MaxFrame int
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.IOTimeout == 0 {
		o.IOTimeout = 30 * time.Second
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = DefaultMaxFrame
	}
	return o
}

// Client is one connection speaking the wire protocol. It is NOT safe for
// concurrent use — one goroutine per Client, the same discipline as a
// bare net.Conn. Responses arrive in request order, so pipelining is just
// "Send k, then Recv k".
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	opts ClientOptions

	// pending holds the opcodes of sent-but-unanswered requests, so Recv
	// knows how to decode each response.
	pending []byte
	buf     []byte
}

// Dial connects to a server at addr.
func Dial(addr string, opts ClientOptions) (*Client, error) {
	opts = opts.withDefaults()
	conn, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	return &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 32*1024),
		bw:   bufio.NewWriterSize(conn, 32*1024),
		opts: opts,
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Send writes one request frame into the connection's write buffer
// without flushing — the building block of pipelining. Call Flush (or any
// Recv, which flushes first) to put buffered requests on the wire.
func (c *Client) Send(r Request) error {
	body, err := EncodeRequest(c.buf[:0], r)
	if err != nil {
		return err
	}
	c.buf = body[:0]
	if c.opts.IOTimeout > 0 {
		_ = c.conn.SetWriteDeadline(time.Now().Add(c.opts.IOTimeout))
	}
	if err := WriteFrame(c.bw, body); err != nil {
		return err
	}
	c.pending = append(c.pending, r.Op)
	return nil
}

// Flush writes buffered request frames to the wire.
func (c *Client) Flush() error { return c.bw.Flush() }

// Recv flushes buffered requests and reads the response to the oldest
// unanswered one. The error is a transport or framing failure; an ERR or
// BUSY response comes back as a Response, not an error.
func (c *Client) Recv() (Response, error) {
	if len(c.pending) == 0 {
		return Response{}, fmt.Errorf("%w: Recv with no pending request", ErrProto)
	}
	if err := c.bw.Flush(); err != nil {
		return Response{}, err
	}
	if c.opts.IOTimeout > 0 {
		_ = c.conn.SetReadDeadline(time.Now().Add(c.opts.IOTimeout))
	}
	body, err := ReadFrame(c.br, c.opts.MaxFrame)
	if err != nil {
		return Response{}, err
	}
	op := c.pending[0]
	c.pending = c.pending[:copy(c.pending, c.pending[1:])]
	return DecodeResponse(body, op)
}

// Pending returns the number of sent-but-unanswered requests.
func (c *Client) Pending() int { return len(c.pending) }

// Do sends one request and waits for its response — the non-pipelined
// convenience path.
func (c *Client) Do(r Request) (Response, error) {
	if err := c.Send(r); err != nil {
		return Response{}, err
	}
	return c.Recv()
}

// statusErr converts a non-OK response into an error (BUSY → ErrBusy,
// TIMEOUT → ErrTimeout, STALE → ErrStale, NOTPRIMARY → ErrNotPrimary,
// DISKFULL → ErrDiskFull).
func statusErr(r Response) error {
	switch r.Status {
	case StatusOK:
		return nil
	case StatusBusy:
		return ErrBusy
	case StatusTimeout:
		return ErrTimeout
	case StatusStale:
		return ErrStale
	case StatusNotPrimary:
		return ErrNotPrimary
	case StatusDiskFull:
		return ErrDiskFull
	default:
		return fmt.Errorf("server: %s", r.Msg)
	}
}

// Ping round-trips data and verifies the echo.
func (c *Client) Ping(data []byte) error {
	r, err := c.Do(Request{Op: OpPing, Data: data})
	if err != nil {
		return err
	}
	if err := statusErr(r); err != nil {
		return err
	}
	if string(r.Data) != string(data) {
		return fmt.Errorf("%w: ping echo mismatch", ErrProto)
	}
	return nil
}

// Insert inserts p. duplicate reports the point was already present.
func (c *Client) Insert(p geom.Point) (duplicate bool, err error) {
	r, err := c.Do(Request{Op: OpInsert, P: p})
	if err != nil {
		return false, err
	}
	return r.Duplicate, statusErr(r)
}

// Delete removes p, reporting whether it was present.
func (c *Client) Delete(p geom.Point) (found bool, err error) {
	r, err := c.Do(Request{Op: OpDelete, P: p})
	if err != nil {
		return false, err
	}
	return r.Found, statusErr(r)
}

// Query3 reports the points with x ∈ [xlo, xhi], y ≥ ylo.
func (c *Client) Query3(xlo, xhi, ylo int64) ([]geom.Point, error) {
	r, err := c.Do(Request{Op: OpQuery3, Rect: geom.Rect{XLo: xlo, XHi: xhi, YLo: ylo, YHi: geom.MaxCoord}})
	if err != nil {
		return nil, err
	}
	return r.Points, statusErr(r)
}

// Query4 reports the points inside rect.
func (c *Client) Query4(rect geom.Rect) ([]geom.Point, error) {
	r, err := c.Do(Request{Op: OpQuery4, Rect: rect})
	if err != nil {
		return nil, err
	}
	return r.Points, statusErr(r)
}

// Batch applies entries as one request (one admission-gate token, one
// contiguous group-commit run server-side) and returns per-entry codes.
func (c *Client) Batch(entries []BatchEntry) ([]byte, error) {
	r, err := c.Do(Request{Op: OpBatch, Batch: entries})
	if err != nil {
		return nil, err
	}
	return r.Results, statusErr(r)
}

// Stats fetches the server's StatsSnapshot as raw JSON.
func (c *Client) Stats() ([]byte, error) {
	r, err := c.Do(Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	return r.Data, statusErr(r)
}

// Topology fetches the serving node's encoded shard map (internal/router
// owns the codec). A plain rsserve has no topology and answers ERR, which
// surfaces here as an error.
func (c *Client) Topology() ([]byte, error) {
	r, err := c.Do(Request{Op: OpTopology})
	if err != nil {
		return nil, err
	}
	return r.Data, statusErr(r)
}
