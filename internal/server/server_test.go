package server

import (
	"context"
	"encoding/json"
	"expvar"
	"net"
	"strings"
	"testing"
	"time"

	"rangesearch/internal/core"
	"rangesearch/internal/eio"
	"rangesearch/internal/epst"
	"rangesearch/internal/geom"
)

// testServer is an in-process rsserve: SnapStore over a MemStore, a
// ThreeSided EPST under core.Concurrent, one Server on a loopback
// listener.
type testServer struct {
	srv  *Server
	addr string
	idx  *core.ThreeSided
	conc *core.Concurrent
	snap *eio.SnapStore
	mem  *eio.MemStore

	served chan error
}

func newTestServer(t *testing.T, cfg Config) *testServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	return newTestServerOn(t, cfg, ln)
}

// newTestServerOn is newTestServer with a caller-supplied listener, for
// tests that restart a server on a fixed address.
func newTestServerOn(t *testing.T, cfg Config, ln net.Listener) *testServer {
	t.Helper()
	mem := eio.NewMemStore(4096)
	snap := eio.NewSnapStore(mem, 0)
	idx, err := core.NewThreeSided(snap, epst.Options{})
	if err != nil {
		t.Fatalf("NewThreeSided: %v", err)
	}
	hdr := idx.HeaderID()
	if _, err := snap.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	conc, err := core.NewConcurrent(idx, snap,
		func(s eio.Store) (core.Index, error) { return core.OpenThreeSided(s, hdr) },
		core.ConcurrentOptions{})
	if err != nil {
		t.Fatalf("NewConcurrent: %v", err)
	}
	srv := New(conc, cfg)
	ts := &testServer{
		srv: srv, addr: ln.Addr().String(),
		idx: idx, conc: conc, snap: snap, mem: mem,
		served: make(chan error, 1),
	}
	go func() { ts.served <- srv.Serve(ln) }()
	return ts
}

// shutdown drains the server and asserts Serve returned nil.
func (ts *testServer) shutdown(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := ts.srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case err := <-ts.served:
		if err != nil {
			t.Fatalf("Serve returned %v after Shutdown, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
}

// assertScrubClean verifies the store holds exactly the index's reachable
// pages — the "drain leaves the store scrub-clean" acceptance criterion.
func (ts *testServer) assertScrubClean(t *testing.T) {
	t.Helper()
	ts.conc.Close()
	if _, err := ts.snap.Commit(); err != nil {
		t.Fatalf("final commit: %v", err)
	}
	reachable, err := ts.idx.Tree().AppendAllPages(nil)
	if err != nil {
		t.Fatalf("AppendAllPages: %v", err)
	}
	rep, err := eio.FindLeaks(ts.snap, reachable)
	if err != nil {
		t.Fatalf("FindLeaks: %v", err)
	}
	if len(rep.Leaked) != 0 {
		t.Fatalf("store not scrub-clean after drain: %d leaked pages %v", len(rep.Leaked), rep.Leaked)
	}
}

func (ts *testServer) dial(t *testing.T) *Client {
	t.Helper()
	cl, err := Dial(ts.addr, ClientOptions{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func TestServerBasicRPCs(t *testing.T) {
	m := &Metrics{}
	ts := newTestServer(t, Config{Metrics: m})
	cl := ts.dial(t)

	if err := cl.Ping([]byte("hello")); err != nil {
		t.Fatalf("Ping: %v", err)
	}

	pts := []geom.Point{{X: 1, Y: 10}, {X: 2, Y: 20}, {X: 3, Y: 30}, {X: 4, Y: 5}}
	for _, p := range pts {
		dup, err := cl.Insert(p)
		if err != nil || dup {
			t.Fatalf("Insert %v: dup=%v err=%v", p, dup, err)
		}
	}
	if dup, err := cl.Insert(pts[0]); err != nil || !dup {
		t.Fatalf("re-Insert: dup=%v err=%v, want dup=true", dup, err)
	}

	got, err := cl.Query3(1, 3, 15)
	if err != nil {
		t.Fatalf("Query3: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("Query3: %v, want {2,20} {3,30}", got)
	}
	got, err = cl.Query4(geom.Rect{XLo: 1, XHi: 4, YLo: 0, YHi: 12})
	if err != nil {
		t.Fatalf("Query4: %v", err)
	}
	if len(got) != 2 { // (1,10) and (4,5)
		t.Fatalf("Query4: %v, want 2 points", got)
	}

	if found, err := cl.Delete(pts[3]); err != nil || !found {
		t.Fatalf("Delete: found=%v err=%v", found, err)
	}
	if found, err := cl.Delete(pts[3]); err != nil || found {
		t.Fatalf("re-Delete: found=%v err=%v, want found=false", found, err)
	}

	codes, err := cl.Batch([]BatchEntry{
		{Kind: BatchInsert, P: geom.Point{X: 100, Y: 100}},
		{Kind: BatchInsert, P: geom.Point{X: 1, Y: 10}}, // duplicate
		{Kind: BatchDelete, P: geom.Point{X: 100, Y: 100}},
		{Kind: BatchDelete, P: geom.Point{X: 999, Y: 999}}, // absent
	})
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	want := []byte{BatchOK, BatchDup, BatchOK, BatchNotFound}
	for i := range want {
		if codes[i] != want[i] {
			t.Fatalf("Batch codes %v, want %v", codes, want)
		}
	}

	raw, err := cl.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	var st StatsSnapshot
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("Stats JSON: %v\n%s", err, raw)
	}
	if st.Len != 3 { // pts[0..2] live: pts[3] and (100,100) deleted
		t.Fatalf("Stats.Len = %d, want 3", st.Len)
	}
	if st.Metrics == nil || st.Metrics.Ops["insert"].Count == 0 {
		t.Fatalf("Stats.Metrics missing insert counts: %+v", st.Metrics)
	}

	ts.shutdown(t)
	ts.assertScrubClean(t)
}

func TestServerPipelining(t *testing.T) {
	ts := newTestServer(t, Config{})
	cl := ts.dial(t)

	const n = 200
	for i := 0; i < n; i++ {
		if err := cl.Send(Request{Op: OpInsert, P: geom.Point{X: int64(i), Y: int64(i)}}); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	// One query pipelined behind the inserts must observe all of them:
	// responses are processed in order, so the query runs after every
	// insert committed (read-your-writes on one connection).
	if err := cl.Send(Request{Op: OpQuery3, Rect: geom.Rect{XLo: 0, XHi: n, YLo: 0, YHi: geom.MaxCoord}}); err != nil {
		t.Fatalf("Send query: %v", err)
	}
	for i := 0; i < n; i++ {
		resp, err := cl.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if resp.Status != StatusOK || resp.Duplicate {
			t.Fatalf("insert %d: %+v", i, resp)
		}
	}
	resp, err := cl.Recv()
	if err != nil {
		t.Fatalf("Recv query: %v", err)
	}
	if len(resp.Points) != n {
		t.Fatalf("pipelined query saw %d points, want %d", len(resp.Points), n)
	}
	ts.shutdown(t)
	ts.assertScrubClean(t)
}

func TestServerBusy(t *testing.T) {
	m := &Metrics{}
	ts := newTestServer(t, Config{MaxInFlight: 1, Metrics: m})
	cl := ts.dial(t)

	// Fill the gate from the test so the next data RPC is shed.
	ts.srv.gate <- struct{}{}

	resp, err := cl.Do(Request{Op: OpInsert, P: geom.Point{X: 1, Y: 1}})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if resp.Status != StatusBusy {
		t.Fatalf("status %d, want BUSY", resp.Status)
	}
	if _, err := cl.Insert(geom.Point{X: 1, Y: 1}); err != ErrBusy {
		t.Fatalf("Insert err = %v, want ErrBusy", err)
	}
	// PING and STATS bypass the gate: a saturated server stays observable.
	if err := cl.Ping([]byte("still here")); err != nil {
		t.Fatalf("Ping under saturation: %v", err)
	}
	if _, err := cl.Stats(); err != nil {
		t.Fatalf("Stats under saturation: %v", err)
	}
	<-ts.srv.gate

	if dup, err := cl.Insert(geom.Point{X: 1, Y: 1}); err != nil || dup {
		t.Fatalf("Insert after release: dup=%v err=%v", dup, err)
	}
	if m.Busy() != 2 {
		t.Fatalf("Busy() = %d, want 2", m.Busy())
	}
	ts.shutdown(t)
}

func TestServerProtocolErrors(t *testing.T) {
	m := &Metrics{}
	ts := newTestServer(t, Config{Metrics: m})

	// Malformed payload in a well-formed frame: per-request error, the
	// connection survives.
	cl := ts.dial(t)
	if err := cl.Send(Request{Op: OpPing, Data: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	// Hand-craft a bad INSERT (3-byte payload) behind the ping.
	if err := WriteFrame(cl.bw, []byte{OpInsert, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	cl.pending = append(cl.pending, OpInsert)
	if resp, err := cl.Recv(); err != nil || resp.Status != StatusOK {
		t.Fatalf("ping: %+v, %v", resp, err)
	}
	resp, err := cl.Recv()
	if err != nil {
		t.Fatalf("bad insert Recv: %v", err)
	}
	if resp.Status != StatusErr {
		t.Fatalf("bad insert: status %d, want ERR", resp.Status)
	}
	if err := cl.Ping([]byte("alive")); err != nil {
		t.Fatalf("connection should survive a payload error: %v", err)
	}

	// A hostile length prefix poisons the connection: one ERR response,
	// then close.
	raw, err := net.Dial("tcp", ts.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	body, err := ReadFrame(raw, DefaultMaxFrame)
	if err != nil {
		t.Fatalf("expected an ERR frame before close: %v", err)
	}
	if body[0] != StatusErr || !strings.Contains(string(body[1:]), "size limit") {
		t.Fatalf("poison response: %q", body)
	}
	if _, err := raw.Read(make([]byte, 1)); err == nil {
		t.Fatal("connection should be closed after a framing violation")
	}

	if m.ProtoErrors() < 2 {
		t.Fatalf("ProtoErrors() = %d, want >= 2", m.ProtoErrors())
	}
	ts.shutdown(t)
}

func TestServerExpvarMetrics(t *testing.T) {
	m := &Metrics{}
	ts := newTestServer(t, Config{Metrics: m})
	cl := ts.dial(t)
	for i := 0; i < 32; i++ {
		if _, err := cl.Insert(geom.Point{X: int64(i), Y: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Query3(0, 31, 0); err != nil {
		t.Fatal(err)
	}

	PublishMetrics("test", m)
	v := expvar.Get("rangesearch.server.test")
	if v == nil {
		t.Fatal("expvar rangesearch.server.test not published")
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatalf("expvar JSON: %v", err)
	}
	ins, ok := snap.Ops["insert"]
	if !ok || ins.Count != 32 {
		t.Fatalf("expvar insert count: %+v", snap.Ops)
	}
	if ins.LatNs.Count != 32 || ins.LatNs.Max == 0 {
		t.Fatalf("latency histogram not populated: %+v", ins.LatNs)
	}
	// p99 is readable from the published histogram.
	if m.Latency(OpInsert).Quantile(0.99) == 0 {
		t.Fatal("p99 latency is zero")
	}
	ts.shutdown(t)
}

func TestServerShutdownInterruptsIdleConns(t *testing.T) {
	ts := newTestServer(t, Config{IdleTimeout: -1})
	cl := ts.dial(t)
	if err := cl.Ping(nil); err != nil {
		t.Fatal(err)
	}
	// The connection now sits idle in ReadFrame; Shutdown must not hang.
	done := make(chan struct{})
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := ts.srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown hung on an idle connection")
	}
	ts.assertScrubClean(t)
}
