// Package server is the network serving subsystem: a TCP wire protocol
// over core.Concurrent, so the paper's structures — and their
// O(log_B N + t) query bounds — are reachable end-to-end over a socket
// instead of only in-process.
//
// The wire format is deliberately minimal: length-prefixed binary frames,
// one request frame in, one response frame out, responses in request
// order per connection. Clients may pipeline freely (send many frames
// before reading responses); the server handles frames sequentially per
// connection and coalesces writes from concurrent connections into the
// group commits core.Concurrent already performs, so pipelined writers on
// many connections share WAL records and fsyncs.
//
//	frame    := len(u32 BE, body length) body
//	request  := opcode(u8) payload
//	response := status(u8) payload
//
// Requests:
//
//	PING   0x01  payload echoed back verbatim
//	INSERT 0x02  point (16 B: x i64 BE, y i64 BE)
//	DELETE 0x03  point (16 B)
//	QUERY3 0x04  xlo, xhi, ylo (24 B) — 3-sided, y unbounded above
//	QUERY4 0x05  xlo, xhi, ylo, yhi (32 B)
//	BATCH  0x06  count(u32) then count × (kind u8: 0 insert / 1 delete, point 16 B)
//	STATS  0x07  empty; response payload is a JSON StatsSnapshot
//	IDEM   0x08  client(u64) seq(u64) then one INSERT/DELETE/BATCH request
//	             body — an idempotency envelope (see below)
//	TRACE  0x09  trace id (16 B) + flags (u8, bit0 = sampled, rest zero)
//	             then any request body except another TRACE — a tracing
//	             envelope (see below)
//	BARRIER 0x0A min term (u64) + min LSN (u64), not both zero, then one
//	             QUERY3/QUERY4 body — a read barrier envelope (see below)
//	TOPOLOGY 0x0B empty; response payload is the serving node's shard map
//	             (see internal/router's topology codec). A plain rsserve
//	             answers ERR — only routers own a topology.
//
// Responses:
//
//	OK      0x00  payload depends on the opcode (see Response)
//	ERR     0x01  payload is a UTF-8 error message; the operation failed
//	BUSY    0x02  empty, or retry-after hint in ms (u32 > 0); the admission
//	              gate was full and the operation was NOT executed — the
//	              client may retry, ideally after the hinted delay
//	TIMEOUT 0x03  empty; the request's execution deadline expired before it
//	              finished. The outcome is UNKNOWN: the operation may still
//	              apply after this response. Safe to retry only under an
//	              idempotency envelope (writes) or when naturally
//	              idempotent (reads).
//	STALE   0x04  applied term (u64) + applied LSN (u64); a BARRIER read
//	              reached a node whose replayed position is below the
//	              barrier (or whose timeline is older than the barrier's
//	              term). The query was NOT executed — retry it on the
//	              primary (or on a caught-up replica).
//	NOTPRIMARY 0x05  empty; a write reached a read-only replica or a fenced
//	              former primary. The write was NOT executed and will never
//	              succeed here — redirect to the current primary.
//	DISKFULL 0x06 empty, or retry-after hint in ms (u32 > 0); the write's
//	              commit was refused because the backing device is full.
//	              Like BUSY the operation was NOT executed and the
//	              connection stays healthy — reads keep working — but
//	              unlike BUSY the condition clears only when space is
//	              reclaimed, so clients should back off harder.
//
// A BUSY response is load shedding, not an error: the server refuses to
// queue beyond its in-flight budget so that latency stays bounded and
// memory cannot grow with offered load.
//
// The BARRIER envelope carries session consistency to read replicas: a
// client that has seen its writes acknowledged at (term T, LSN L) stamps
// reads with that pair, and a node answers only from a timeline at least
// as new (STALE otherwise, with its own position). LSNs are comparable
// only within one term's timeline, so the rule is lexicographic: a node
// at a term above T serves unconditionally (promotion preserves every
// acknowledged write of older terms), a node at exactly T must have
// applied L, and a node below T always answers STALE — it may hold a
// divergent pre-promotion suffix whose LSNs numerically satisfy L while
// missing newer-term writes. Write acknowledgements carry the primary's
// (term, durable LSN) precisely so clients have the pair on hand.
// BARRIER may wrap only QUERY3/QUERY4 and sits inside a TRACE envelope
// when both are present.
//
// The IDEM envelope makes write retries safe after an ambiguous failure (a
// dropped connection or TIMEOUT leaves the client unable to tell whether
// the write applied). The client stamps each write with a (client, seq)
// pair — client drawn at random once per logical session, seq a counter —
// and re-sends the identical envelope on retry. The server remembers the
// encoded response of each completed envelope in a bounded per-client
// window and replays it verbatim on a duplicate, so a retried write is
// executed once and observed once, as long as the duplicate arrives within
// the window (and within one server lifetime — the window is in-memory;
// across a server crash the data-level idempotency of INSERT/DELETE makes
// a replayed write harmless, but its Duplicate/Found flags may reflect the
// first execution). The response to an IDEM request is the response of
// the inner opcode.
//
// The TRACE envelope carries request tracing over the wire: a client that
// wants one request followed end to end stamps it with a random 16-byte
// trace ID and the sampled flag, and the server records a full span for
// it (phase timings + exact block I/Os, see internal/trace) regardless
// of its own sampling rate. TRACE is always the OUTERMOST envelope — it
// may wrap an IDEM envelope, but nothing may wrap a TRACE, and nested
// TRACE envelopes are a protocol error. The envelope does not change the
// response: tracing is observation only.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"rangesearch/internal/geom"
	"rangesearch/internal/trace"
)

// Opcodes of the wire protocol.
const (
	OpPing   byte = 0x01
	OpInsert byte = 0x02
	OpDelete byte = 0x03
	OpQuery3 byte = 0x04
	OpQuery4 byte = 0x05
	OpBatch  byte = 0x06
	OpStats  byte = 0x07
	OpIdem    byte = 0x08
	OpTrace   byte = 0x09
	OpBarrier byte = 0x0A
	// OpTopology asks the serving node for its shard map (empty request
	// payload, opaque response payload — internal/router owns the codec).
	// A single rsserve has no topology and answers ERR.
	OpTopology byte = 0x0B
)

// Response status bytes.
const (
	StatusOK         byte = 0x00
	StatusErr        byte = 0x01
	StatusBusy       byte = 0x02
	StatusTimeout    byte = 0x03
	StatusStale      byte = 0x04
	StatusNotPrimary byte = 0x05
	StatusDiskFull   byte = 0x06
)

// Batch entry kinds.
const (
	BatchInsert byte = 0x00
	BatchDelete byte = 0x01
)

// DefaultMaxFrame is the frame-size ceiling used when a config leaves
// MaxFrame zero: large enough for a 64k-point query result, small enough
// that a hostile length prefix cannot balloon allocation.
const DefaultMaxFrame = 1 << 20

// DefaultMaxBatchOps bounds the entries of one BATCH frame.
const DefaultMaxBatchOps = 4096

// pointSize is the wire size of one encoded point.
const pointSize = 16

// Protocol errors. ErrFrameTooLarge and ErrProto poison the connection
// (framing is no longer trustworthy); sizes and shapes inside a
// well-framed body are reported per-request instead.
var (
	// ErrFrameTooLarge reports a length prefix above the negotiated limit.
	ErrFrameTooLarge = errors.New("server: frame exceeds size limit")
	// ErrProto reports a malformed frame or payload.
	ErrProto = errors.New("server: protocol error")
	// ErrBusy is returned by the client when the server shed the request.
	ErrBusy = errors.New("server: busy (admission gate full, request not executed)")
	// ErrTimeout is returned by the client on a TIMEOUT response: the
	// request's execution deadline expired server-side and its outcome is
	// unknown.
	ErrTimeout = errors.New("server: request execution deadline expired (outcome unknown)")
	// ErrStale is returned by the client on a STALE response: the replica
	// has not replayed up to the request's read barrier. Retry on the
	// primary.
	ErrStale = errors.New("server: replica behind read barrier")
	// ErrNotPrimary is returned by the client on a NOTPRIMARY response: the
	// node cannot execute writes. Redirect to the current primary.
	ErrNotPrimary = errors.New("server: node is not the primary")
	// ErrDiskFull is returned by the client on a DISKFULL response: the
	// write was refused because the server's device is full. Retryable, but
	// only reclamation clears it.
	ErrDiskFull = errors.New("server: disk full, write not executed")
)

// OpName returns the human-readable opcode name ("insert", "query3", ...).
func OpName(op byte) string {
	switch op {
	case OpPing:
		return "ping"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpQuery3:
		return "query3"
	case OpQuery4:
		return "query4"
	case OpBatch:
		return "batch"
	case OpStats:
		return "stats"
	case OpIdem:
		return "idem"
	case OpTrace:
		return "trace"
	case OpBarrier:
		return "barrier"
	case OpTopology:
		return "topology"
	default:
		return fmt.Sprintf("op(0x%02x)", op)
	}
}

// --- framing ------------------------------------------------------------

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, body []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadFrame reads one frame body, enforcing the size limit BEFORE
// allocating: a hostile 4 GiB length prefix costs nothing. An empty frame
// (length 0) is a protocol error — every request and response carries at
// least one byte.
func ReadFrame(r io.Reader, maxFrame int) ([]byte, error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, fmt.Errorf("%w: empty frame", ErrProto)
	}
	if n > uint32(maxFrame) {
		return nil, fmt.Errorf("%w: %d bytes (limit %d)", ErrFrameTooLarge, n, maxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return body, nil
}

// --- requests -----------------------------------------------------------

// Request is one decoded client request.
type Request struct {
	// Op is the opcode (OpPing ... OpStats).
	Op byte
	// P is the point of an INSERT or DELETE.
	P geom.Point
	// Rect is the query window of a QUERY3 (YHi = geom.MaxCoord) or QUERY4.
	Rect geom.Rect
	// Batch holds the entries of a BATCH request.
	Batch []BatchEntry
	// Data is the opaque payload of a PING.
	Data []byte
	// Idem, when non-nil, wraps the request in an IDEM idempotency
	// envelope. Only write opcodes (INSERT, DELETE, BATCH) may carry one.
	Idem *IdemID
	// Trace, when non-nil, wraps the request (outermost, outside any IDEM
	// envelope) in a TRACE tracing envelope. Any opcode may carry one.
	Trace *TraceInfo
	// MinTerm and MinLSN, when not both zero, wrap a QUERY3/QUERY4 in a
	// BARRIER envelope: the serving node must be on a timeline at least as
	// new as (MinTerm, MinLSN) — lexicographically — or answer STALE.
	MinTerm uint64
	MinLSN  uint64
}

// TraceInfo is the decoded TRACE envelope header: the client-chosen
// trace ID and whether the client asked for the request to be sampled.
type TraceInfo struct {
	ID trace.ID
	// Sampled, when set, forces the server to record a full span for
	// this request regardless of its own sampling rate.
	Sampled bool
}

// traceHdrSize is the wire size of the TRACE envelope header.
const traceHdrSize = trace.IDSize + 1

// traceFlagSampled is bit0 of the TRACE flags byte; all other bits must
// be zero (canonical form, so the envelope re-encodes byte-identically).
const traceFlagSampled = 0x01

// IdemID identifies one write for idempotent retry: Client names the
// logical client session (drawn at random once per session so windows from
// different sessions never collide), Seq is the client's write counter.
type IdemID struct {
	Client uint64
	Seq    uint64
}

// idemHdrSize is the wire size of the IDEM envelope header.
const idemHdrSize = 16

// barrierHdrSize is the wire size of the BARRIER envelope header:
// min term (u64) followed by min LSN (u64).
const barrierHdrSize = 16

// barrierable reports whether op may carry a BARRIER read envelope.
func barrierable(op byte) bool {
	return op == OpQuery3 || op == OpQuery4
}

// idempotent reports whether op may be wrapped in an IDEM envelope: only
// writes need retry protection, and keeping reads out of the envelope
// keeps the dedup window's cached responses small and bounded.
func idempotent(op byte) bool {
	return op == OpInsert || op == OpDelete || op == OpBatch
}

// BatchEntry is one operation of a BATCH request.
type BatchEntry struct {
	// Kind is BatchInsert or BatchDelete.
	Kind byte
	// P is the point operated on.
	P geom.Point
}

func putPoint(dst []byte, p geom.Point) {
	binary.BigEndian.PutUint64(dst[0:8], uint64(p.X))
	binary.BigEndian.PutUint64(dst[8:16], uint64(p.Y))
}

func getPoint(src []byte) geom.Point {
	return geom.Point{
		X: int64(binary.BigEndian.Uint64(src[0:8])),
		Y: int64(binary.BigEndian.Uint64(src[8:16])),
	}
}

// EncodeRequest appends the wire form of r (opcode + payload, no length
// prefix) to dst and returns the extended slice. A request with Idem set
// is emitted as an IDEM envelope around its own (write) opcode; a
// request with Trace set is emitted as a TRACE envelope around the rest
// (TRACE outermost, so it may wrap the IDEM envelope too).
func EncodeRequest(dst []byte, r Request) ([]byte, error) {
	if r.Trace != nil {
		var hdr [1 + traceHdrSize]byte
		hdr[0] = OpTrace
		copy(hdr[1:1+trace.IDSize], r.Trace.ID[:])
		if r.Trace.Sampled {
			hdr[1+trace.IDSize] = traceFlagSampled
		}
		dst = append(dst, hdr[:]...)
		inner := r
		inner.Trace = nil
		return EncodeRequest(dst, inner)
	}
	if r.MinLSN != 0 || r.MinTerm != 0 {
		if !barrierable(r.Op) {
			return nil, fmt.Errorf("%w: barrier envelope around %s", ErrProto, OpName(r.Op))
		}
		var hdr [1 + barrierHdrSize]byte
		hdr[0] = OpBarrier
		binary.BigEndian.PutUint64(hdr[1:9], r.MinTerm)
		binary.BigEndian.PutUint64(hdr[9:17], r.MinLSN)
		dst = append(dst, hdr[:]...)
		inner := r
		inner.MinTerm = 0
		inner.MinLSN = 0
		return EncodeRequest(dst, inner)
	}
	if r.Idem != nil {
		if !idempotent(r.Op) {
			return nil, fmt.Errorf("%w: idempotency envelope around %s", ErrProto, OpName(r.Op))
		}
		var hdr [1 + idemHdrSize]byte
		hdr[0] = OpIdem
		binary.BigEndian.PutUint64(hdr[1:9], r.Idem.Client)
		binary.BigEndian.PutUint64(hdr[9:17], r.Idem.Seq)
		dst = append(dst, hdr[:]...)
		inner := r
		inner.Idem = nil
		return EncodeRequest(dst, inner)
	}
	dst = append(dst, r.Op)
	switch r.Op {
	case OpPing:
		dst = append(dst, r.Data...)
	case OpInsert, OpDelete:
		var buf [pointSize]byte
		putPoint(buf[:], r.P)
		dst = append(dst, buf[:]...)
	case OpQuery3:
		var buf [24]byte
		binary.BigEndian.PutUint64(buf[0:8], uint64(r.Rect.XLo))
		binary.BigEndian.PutUint64(buf[8:16], uint64(r.Rect.XHi))
		binary.BigEndian.PutUint64(buf[16:24], uint64(r.Rect.YLo))
		dst = append(dst, buf[:]...)
	case OpQuery4:
		var buf [32]byte
		binary.BigEndian.PutUint64(buf[0:8], uint64(r.Rect.XLo))
		binary.BigEndian.PutUint64(buf[8:16], uint64(r.Rect.XHi))
		binary.BigEndian.PutUint64(buf[16:24], uint64(r.Rect.YLo))
		binary.BigEndian.PutUint64(buf[24:32], uint64(r.Rect.YHi))
		dst = append(dst, buf[:]...)
	case OpBatch:
		var cnt [4]byte
		binary.BigEndian.PutUint32(cnt[:], uint32(len(r.Batch)))
		dst = append(dst, cnt[:]...)
		for _, e := range r.Batch {
			if e.Kind != BatchInsert && e.Kind != BatchDelete {
				return nil, fmt.Errorf("%w: batch entry kind 0x%02x", ErrProto, e.Kind)
			}
			var buf [1 + pointSize]byte
			buf[0] = e.Kind
			putPoint(buf[1:], e.P)
			dst = append(dst, buf[:]...)
		}
	case OpStats, OpTopology:
		// no payload
	default:
		return nil, fmt.Errorf("%w: unknown opcode 0x%02x", ErrProto, r.Op)
	}
	return dst, nil
}

// DecodeRequest parses a frame body into a Request. It is total over
// arbitrary input: any malformed body yields an error wrapping ErrProto,
// never a panic or a partially-valid request (the fuzz target pins this).
func DecodeRequest(body []byte, maxBatchOps int) (Request, error) {
	if maxBatchOps <= 0 {
		maxBatchOps = DefaultMaxBatchOps
	}
	if len(body) == 0 {
		return Request{}, fmt.Errorf("%w: empty request", ErrProto)
	}
	op, payload := body[0], body[1:]
	r := Request{Op: op}
	switch op {
	case OpPing:
		r.Data = payload
	case OpInsert, OpDelete:
		if len(payload) != pointSize {
			return Request{}, fmt.Errorf("%w: %s payload %d bytes, want %d", ErrProto, OpName(op), len(payload), pointSize)
		}
		r.P = getPoint(payload)
	case OpQuery3:
		if len(payload) != 24 {
			return Request{}, fmt.Errorf("%w: query3 payload %d bytes, want 24", ErrProto, len(payload))
		}
		r.Rect = geom.Rect{
			XLo: int64(binary.BigEndian.Uint64(payload[0:8])),
			XHi: int64(binary.BigEndian.Uint64(payload[8:16])),
			YLo: int64(binary.BigEndian.Uint64(payload[16:24])),
			YHi: geom.MaxCoord,
		}
	case OpQuery4:
		if len(payload) != 32 {
			return Request{}, fmt.Errorf("%w: query4 payload %d bytes, want 32", ErrProto, len(payload))
		}
		r.Rect = geom.Rect{
			XLo: int64(binary.BigEndian.Uint64(payload[0:8])),
			XHi: int64(binary.BigEndian.Uint64(payload[8:16])),
			YLo: int64(binary.BigEndian.Uint64(payload[16:24])),
			YHi: int64(binary.BigEndian.Uint64(payload[24:32])),
		}
	case OpBatch:
		if len(payload) < 4 {
			return Request{}, fmt.Errorf("%w: batch payload truncated", ErrProto)
		}
		n := binary.BigEndian.Uint32(payload[:4])
		if n > uint32(maxBatchOps) {
			return Request{}, fmt.Errorf("%w: batch of %d ops (limit %d)", ErrProto, n, maxBatchOps)
		}
		rest := payload[4:]
		if len(rest) != int(n)*(1+pointSize) {
			return Request{}, fmt.Errorf("%w: batch body %d bytes for %d ops", ErrProto, len(rest), n)
		}
		if n > 0 {
			r.Batch = make([]BatchEntry, n)
			for i := range r.Batch {
				e := rest[i*(1+pointSize):]
				if e[0] != BatchInsert && e[0] != BatchDelete {
					return Request{}, fmt.Errorf("%w: batch entry %d kind 0x%02x", ErrProto, i, e[0])
				}
				r.Batch[i] = BatchEntry{Kind: e[0], P: getPoint(e[1:])}
			}
		}
	case OpStats, OpTopology:
		if len(payload) != 0 {
			return Request{}, fmt.Errorf("%w: %s payload must be empty", ErrProto, OpName(op))
		}
	case OpIdem:
		if len(payload) < idemHdrSize+1 {
			return Request{}, fmt.Errorf("%w: idem envelope truncated", ErrProto)
		}
		id := IdemID{
			Client: binary.BigEndian.Uint64(payload[0:8]),
			Seq:    binary.BigEndian.Uint64(payload[8:16]),
		}
		if inner := payload[idemHdrSize]; !idempotent(inner) {
			return Request{}, fmt.Errorf("%w: idem envelope around %s", ErrProto, OpName(inner))
		}
		r, err := DecodeRequest(payload[idemHdrSize:], maxBatchOps)
		if err != nil {
			return Request{}, err
		}
		r.Idem = &id
		return r, nil
	case OpBarrier:
		if len(payload) < barrierHdrSize+1 {
			return Request{}, fmt.Errorf("%w: barrier envelope truncated", ErrProto)
		}
		minTerm := binary.BigEndian.Uint64(payload[0:8])
		minLSN := binary.BigEndian.Uint64(payload[8:16])
		if minTerm == 0 && minLSN == 0 {
			// Canonical form: a zero barrier must omit the envelope.
			return Request{}, fmt.Errorf("%w: barrier envelope with zero barrier", ErrProto)
		}
		if inner := payload[barrierHdrSize]; !barrierable(inner) {
			return Request{}, fmt.Errorf("%w: barrier envelope around %s", ErrProto, OpName(inner))
		}
		r, err := DecodeRequest(payload[barrierHdrSize:], maxBatchOps)
		if err != nil {
			return Request{}, err
		}
		r.MinTerm = minTerm
		r.MinLSN = minLSN
		return r, nil
	case OpTrace:
		if len(payload) < traceHdrSize+1 {
			return Request{}, fmt.Errorf("%w: trace envelope truncated", ErrProto)
		}
		var ti TraceInfo
		copy(ti.ID[:], payload[:trace.IDSize])
		flags := payload[trace.IDSize]
		if flags&^traceFlagSampled != 0 {
			return Request{}, fmt.Errorf("%w: trace envelope flags 0x%02x", ErrProto, flags)
		}
		ti.Sampled = flags&traceFlagSampled != 0
		if inner := payload[traceHdrSize]; inner == OpTrace {
			return Request{}, fmt.Errorf("%w: nested trace envelope", ErrProto)
		}
		r, err := DecodeRequest(payload[traceHdrSize:], maxBatchOps)
		if err != nil {
			return Request{}, err
		}
		r.Trace = &ti
		return r, nil
	default:
		return Request{}, fmt.Errorf("%w: unknown opcode 0x%02x", ErrProto, op)
	}
	return r, nil
}

// --- responses ----------------------------------------------------------

// Response is one decoded server response. Which fields are meaningful
// depends on the opcode of the request it answers.
type Response struct {
	// Status is one of the Status... bytes.
	Status byte
	// Msg is the error message of a StatusErr response.
	Msg string
	// RetryAfterMs is the backoff hint of a StatusBusy or StatusDiskFull
	// response, in milliseconds (0 = no hint).
	RetryAfterMs uint32
	// LSN is the server's durable log position: on a write OK it is ≥ the
	// LSN the write committed at (the value to use as a later read
	// barrier); on a STALE response it is the replica's current applied
	// position. Zero on non-durable backends.
	LSN uint64
	// Term is the server's replication term alongside LSN on write OKs and
	// STALE responses: LSNs are comparable only within one term's
	// timeline, so a read barrier is the (Term, LSN) pair. Zero on
	// un-replicated servers.
	Term uint64
	// Duplicate reports an INSERT of an already-present point (a benign
	// per-operation outcome, not an error).
	Duplicate bool
	// Found mirrors Index.Delete's found result for a DELETE.
	Found bool
	// Points is the result set of a QUERY3/QUERY4.
	Points []geom.Point
	// Results holds per-entry outcome codes of a BATCH (see BatchOK...).
	Results []byte
	// Data is the echoed payload of a PING or the JSON body of a STATS.
	Data []byte
}

// Per-entry outcome codes of a BATCH response.
const (
	BatchOK       byte = 0x00 // insert applied / delete found
	BatchDup      byte = 0x01 // insert of an already-present point
	BatchNotFound byte = 0x02 // delete of an absent point
)

// EncodeResponse appends the wire form of the response to op (status byte
// + payload) to dst and returns the extended slice.
func EncodeResponse(dst []byte, op byte, r Response) []byte {
	dst = append(dst, r.Status)
	switch r.Status {
	case StatusErr:
		return append(dst, r.Msg...)
	case StatusBusy, StatusDiskFull:
		if r.RetryAfterMs > 0 {
			var hint [4]byte
			binary.BigEndian.PutUint32(hint[:], r.RetryAfterMs)
			dst = append(dst, hint[:]...)
		}
		return dst
	case StatusTimeout, StatusNotPrimary:
		return dst
	case StatusStale:
		var pos [16]byte
		binary.BigEndian.PutUint64(pos[0:8], r.Term)
		binary.BigEndian.PutUint64(pos[8:16], r.LSN)
		return append(dst, pos[:]...)
	}
	switch op {
	case OpPing, OpStats, OpTopology:
		dst = append(dst, r.Data...)
	case OpInsert:
		if r.Duplicate {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = appendPosition(dst, r)
	case OpDelete:
		if r.Found {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = appendPosition(dst, r)
	case OpQuery3, OpQuery4:
		var cnt [4]byte
		binary.BigEndian.PutUint32(cnt[:], uint32(len(r.Points)))
		dst = append(dst, cnt[:]...)
		for _, p := range r.Points {
			var buf [pointSize]byte
			putPoint(buf[:], p)
			dst = append(dst, buf[:]...)
		}
	case OpBatch:
		var cnt [4]byte
		binary.BigEndian.PutUint32(cnt[:], uint32(len(r.Results)))
		dst = append(dst, cnt[:]...)
		dst = append(dst, r.Results...)
		dst = appendPosition(dst, r)
	}
	return dst
}

// appendPosition appends the (LSN, term) trailer write acknowledgements
// carry so clients can maintain a read barrier.
func appendPosition(dst []byte, r Response) []byte {
	var pos [16]byte
	binary.BigEndian.PutUint64(pos[0:8], r.LSN)
	binary.BigEndian.PutUint64(pos[8:16], r.Term)
	return append(dst, pos[:]...)
}

// DecodeResponse parses a frame body into the Response to a request with
// opcode op. Like DecodeRequest it is total over arbitrary input.
func DecodeResponse(body []byte, op byte) (Response, error) {
	if len(body) == 0 {
		return Response{}, fmt.Errorf("%w: empty response", ErrProto)
	}
	status, payload := body[0], body[1:]
	switch status {
	case StatusErr:
		return Response{Status: status, Msg: string(payload)}, nil
	case StatusBusy, StatusDiskFull:
		switch len(payload) {
		case 0:
			return Response{Status: status}, nil
		case 4:
			// A zero hint must be encoded as no payload (canonical form).
			hint := binary.BigEndian.Uint32(payload)
			if hint == 0 {
				return Response{}, fmt.Errorf("%w: %s retry-after hint of 0", ErrProto, statusName(status))
			}
			return Response{Status: status, RetryAfterMs: hint}, nil
		default:
			return Response{}, fmt.Errorf("%w: %s response payload of %d bytes", ErrProto, statusName(status), len(payload))
		}
	case StatusTimeout, StatusNotPrimary:
		if len(payload) != 0 {
			return Response{}, fmt.Errorf("%w: %s response carries payload", ErrProto, statusName(status))
		}
		return Response{Status: status}, nil
	case StatusStale:
		if len(payload) != 16 {
			return Response{}, fmt.Errorf("%w: stale response payload of %d bytes", ErrProto, len(payload))
		}
		return Response{
			Status: status,
			Term:   binary.BigEndian.Uint64(payload[0:8]),
			LSN:    binary.BigEndian.Uint64(payload[8:16]),
		}, nil
	case StatusOK:
	default:
		return Response{}, fmt.Errorf("%w: unknown status 0x%02x", ErrProto, status)
	}
	r := Response{Status: StatusOK}
	switch op {
	case OpPing, OpStats, OpTopology:
		r.Data = payload
	case OpInsert:
		if len(payload) != 1+16 || payload[0] > 1 {
			return Response{}, fmt.Errorf("%w: insert response payload", ErrProto)
		}
		r.Duplicate = payload[0] == 1
		r.LSN = binary.BigEndian.Uint64(payload[1:9])
		r.Term = binary.BigEndian.Uint64(payload[9:17])
	case OpDelete:
		if len(payload) != 1+16 || payload[0] > 1 {
			return Response{}, fmt.Errorf("%w: delete response payload", ErrProto)
		}
		r.Found = payload[0] == 1
		r.LSN = binary.BigEndian.Uint64(payload[1:9])
		r.Term = binary.BigEndian.Uint64(payload[9:17])
	case OpQuery3, OpQuery4:
		if len(payload) < 4 {
			return Response{}, fmt.Errorf("%w: query response truncated", ErrProto)
		}
		n := binary.BigEndian.Uint32(payload[:4])
		rest := payload[4:]
		if len(rest) != int(n)*pointSize {
			return Response{}, fmt.Errorf("%w: query response %d bytes for %d points", ErrProto, len(rest), n)
		}
		if n > 0 {
			r.Points = make([]geom.Point, n)
			for i := range r.Points {
				r.Points[i] = getPoint(rest[i*pointSize:])
			}
		}
	case OpBatch:
		if len(payload) < 4+16 {
			return Response{}, fmt.Errorf("%w: batch response truncated", ErrProto)
		}
		n := binary.BigEndian.Uint32(payload[:4])
		rest := payload[4:]
		if len(rest) != int(n)+16 {
			return Response{}, fmt.Errorf("%w: batch response %d bytes for %d results", ErrProto, len(rest), n)
		}
		codes := rest[:n]
		for _, code := range codes {
			if code > BatchNotFound {
				return Response{}, fmt.Errorf("%w: batch result code 0x%02x", ErrProto, code)
			}
		}
		r.Results = codes
		r.LSN = binary.BigEndian.Uint64(rest[n : n+8])
		r.Term = binary.BigEndian.Uint64(rest[n+8:])
	default:
		return Response{}, fmt.Errorf("%w: unknown opcode 0x%02x", ErrProto, op)
	}
	return r, nil
}
