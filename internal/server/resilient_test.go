package server

import (
	"errors"
	"net"
	"testing"
	"time"

	"rangesearch/internal/geom"
)

// noSleep is a RetryPolicy Sleep that yields without wall-clock cost.
func noSleep(time.Duration) {}

// fastRetry is a retry policy that runs the whole backoff schedule in
// microseconds of real time.
func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{
		MaxAttempts: attempts,
		BaseDelay:   time.Microsecond,
		MaxDelay:    10 * time.Microsecond,
		Sleep:       func(d time.Duration) { time.Sleep(d) },
	}
}

// TestResilientQueueWhileDown exercises the lazy-dial path: requests sent
// while the server is unreachable queue client-side, and the first Recv
// connects and replays the whole pipeline in order.
func TestResilientQueueWhileDown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()

	rc := NewResilient(addr, ResilientOptions{Retry: fastRetry(20), Seed: 1})
	defer rc.Close()

	const n = 8
	for i := 0; i < n; i++ {
		if err := rc.Send(Request{Op: OpInsert, P: geom.Point{X: int64(i), Y: int64(i)}}, i); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	if rc.Pending() != n {
		t.Fatalf("Pending = %d, want %d", rc.Pending(), n)
	}

	// Only now does a server start accepting on the reserved address.
	ts := newTestServerOn(t, Config{}, ln)

	for i := 0; i < n; i++ {
		res, err := rc.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if res.Tag != i {
			t.Fatalf("Recv %d: tag = %v, want %d", i, res.Tag, i)
		}
		if res.Resp.Status != StatusOK {
			t.Fatalf("Recv %d: status %d msg %q", i, res.Resp.Status, res.Resp.Msg)
		}
		if res.Retried {
			t.Fatalf("Recv %d: Retried = true, want false (a deferred first send is a single transmission, not a re-send)", i)
		}
		if res.Req.Idem == nil {
			t.Fatalf("Recv %d: insert was not stamped with an IdemID", i)
		}
	}

	st := rc.Stats()
	if st.Reconnects != 1 || st.Resent != 0 {
		t.Fatalf("stats = %+v, want 1 reconnect, 0 resent", st)
	}

	// The writes all landed exactly once.
	pts, err := rc.Do(Request{Op: OpQuery4, Rect: geom.Rect{XLo: 0, XHi: n, YLo: 0, YHi: n}})
	if err != nil {
		t.Fatalf("Query4: %v", err)
	}
	if len(pts.Points) != n {
		t.Fatalf("Query4 returned %d points, want %d", len(pts.Points), n)
	}

	rc.Close()
	ts.shutdown(t)
}

// TestResilientReconnectAfterRestart kills the server under an idle
// client and verifies the next operation transparently reconnects to the
// replacement listening on the same address.
func TestResilientReconnectAfterRestart(t *testing.T) {
	ts := newTestServer(t, Config{})
	addr := ts.addr

	rc := NewResilient(addr, ResilientOptions{Retry: fastRetry(30), Seed: 2})
	defer rc.Close()
	if err := rc.Ping([]byte("one")); err != nil {
		t.Fatalf("Ping before restart: %v", err)
	}

	ts.shutdown(t) // closes the listener and the established connection

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("re-listen on %s: %v", addr, err)
	}
	ts2 := newTestServerOn(t, Config{}, ln)

	if err := rc.Ping([]byte("two")); err != nil {
		t.Fatalf("Ping after restart: %v", err)
	}
	if st := rc.Stats(); st.Reconnects != 2 {
		t.Fatalf("Reconnects = %d, want 2 (initial connect + restart)", st.Reconnects)
	}

	rc.Close()
	ts2.shutdown(t)
}

// TestResilientGivesUpWhenServerGone bounds the retry loop: with nothing
// listening, operations fail after MaxAttempts dial attempts instead of
// spinning forever.
func TestResilientGivesUpWhenServerGone(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()

	rc := NewResilient(addr, ResilientOptions{
		Retry:  RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond, Sleep: noSleep},
		Client: ClientOptions{DialTimeout: 200 * time.Millisecond},
		Seed:   3,
	})
	defer rc.Close()

	if err := rc.Ping(nil); err == nil {
		t.Fatal("Ping to dead address succeeded, want error")
	}
	if st := rc.Stats(); st.DialFailures != 3 {
		t.Fatalf("DialFailures = %d, want 3", st.DialFailures)
	}
}

// TestResilientTimeoutReplay drives the full ambiguous-retry loop: a 1ns
// request deadline times out every execution, the abandoned handler still
// lands its outcome in the dedup window, and the client's idempotent
// re-send is eventually answered from the window with the ORIGINAL
// response — executed exactly once.
func TestResilientTimeoutReplay(t *testing.T) {
	m := &Metrics{}
	ts := newTestServer(t, Config{RequestTimeout: time.Nanosecond, Metrics: m})
	defer ts.shutdown(t)

	rc := NewResilient(ts.addr, ResilientOptions{
		Retry: RetryPolicy{
			MaxAttempts: 100,
			BaseDelay:   time.Microsecond,
			MaxDelay:    10 * time.Microsecond,
			// Real (tiny) sleeps so the abandoned server goroutine gets
			// scheduled and completes between retries.
			Sleep: func(time.Duration) { time.Sleep(200 * time.Microsecond) },
		},
		Seed: 4,
	})
	defer rc.Close()

	if err := rc.Send(Request{Op: OpInsert, P: geom.Point{X: 7, Y: 7}}, "w"); err != nil {
		t.Fatalf("Send: %v", err)
	}
	res, err := rc.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if res.Resp.Status != StatusOK {
		t.Fatalf("status = %d msg %q, want OK via idempotent replay", res.Resp.Status, res.Resp.Msg)
	}
	if !res.Retried {
		t.Fatal("Retried = false, want true after TIMEOUT re-sends")
	}
	if res.Resp.Duplicate {
		t.Fatal("replayed response reports Duplicate — the insert executed more than once")
	}
	st := rc.Stats()
	if st.TimeoutRetries == 0 {
		t.Fatalf("TimeoutRetries = 0, want >0; stats %+v", st)
	}
	if m.Timeouts() == 0 || m.IdemReplays() == 0 {
		t.Fatalf("server metrics: timeouts=%d idemReplays=%d, want both >0", m.Timeouts(), m.IdemReplays())
	}

	// Reads are not idempotency-wrapped: with every execution timing out
	// they exhaust the budget and surface TIMEOUT (as ErrTimeout via Do).
	rcRead := NewResilient(ts.addr, ResilientOptions{
		Retry: RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond, Sleep: noSleep},
		Seed:  5,
	})
	defer rcRead.Close()
	resp, err := rcRead.Do(Request{Op: OpQuery3, Rect: geom.Rect{XLo: 0, XHi: 10, YLo: 0, YHi: geom.MaxCoord}})
	if err != nil {
		t.Fatalf("Do(query): transport error %v, want TIMEOUT response", err)
	}
	if resp.Status != StatusTimeout {
		t.Fatalf("query status = %d, want StatusTimeout after budget exhaustion", resp.Status)
	}
}

// TestResilientBusyRetry saturates a MaxInFlight=1 server through a slow
// handler and verifies shed requests are retried after the server's
// retry-after hint rather than surfaced.
func TestResilientBusyRetry(t *testing.T) {
	m := &Metrics{}
	ts := newTestServer(t, Config{MaxInFlight: 1, RetryAfterHint: time.Millisecond, Metrics: m})
	defer ts.shutdown(t)

	// Occupy the single admission token with a big batch on a plain
	// connection while the resilient client hammers inserts.
	blocker := ts.dial(t)
	entries := make([]BatchEntry, 2000)
	for i := range entries {
		entries[i] = BatchEntry{Kind: BatchInsert, P: geom.Point{X: int64(i), Y: int64(i)}}
	}
	if err := blocker.Send(Request{Op: OpBatch, Batch: entries}); err != nil {
		t.Fatalf("Send batch: %v", err)
	}
	if err := blocker.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	var hinted time.Duration
	rc := NewResilient(ts.addr, ResilientOptions{
		Retry: RetryPolicy{
			MaxAttempts: 200,
			BaseDelay:   time.Microsecond,
			MaxDelay:    10 * time.Microsecond,
			Sleep:       func(d time.Duration) { hinted += d; time.Sleep(50 * time.Microsecond) },
		},
		Seed: 6,
	})
	defer rc.Close()

	for i := 0; i < 20; i++ {
		resp, err := rc.Do(Request{Op: OpInsert, P: geom.Point{X: int64(i), Y: -int64(i)}})
		if err != nil {
			t.Fatalf("Do insert %d: %v", i, err)
		}
		if resp.Status != StatusOK {
			t.Fatalf("insert %d: status %d, want OK after BUSY retries", i, resp.Status)
		}
	}
	if _, err := blocker.Recv(); err != nil {
		t.Fatalf("batch Recv: %v", err)
	}
	if m.Busy() > 0 {
		if rc.Stats().BusyRetries == 0 {
			t.Fatalf("server shed %d requests but client retried none", m.Busy())
		}
		if hinted == 0 {
			t.Fatal("BUSY retries never slept the hinted backoff")
		}
	}
}

// TestResilientNoRetryBusy verifies the opt-out: BUSY surfaces to the
// caller as ErrBusy-translated status instead of being retried.
func TestResilientNoRetryBusy(t *testing.T) {
	ts := newTestServer(t, Config{MaxInFlight: 1})
	defer ts.shutdown(t)

	blocker := ts.dial(t)
	entries := make([]BatchEntry, 4000)
	for i := range entries {
		entries[i] = BatchEntry{Kind: BatchInsert, P: geom.Point{X: int64(i), Y: int64(i)}}
	}
	if err := blocker.Send(Request{Op: OpBatch, Batch: entries}); err != nil {
		t.Fatalf("Send batch: %v", err)
	}
	if err := blocker.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	rc := NewResilient(ts.addr, ResilientOptions{NoRetryBusy: true, Retry: fastRetry(5), Seed: 7})
	defer rc.Close()
	sawBusy := false
	for i := 0; i < 50 && !sawBusy; i++ {
		resp, err := rc.Do(Request{Op: OpInsert, P: geom.Point{X: int64(i), Y: int64(i)}})
		if err != nil {
			t.Fatalf("Do: %v", err)
		}
		if resp.Status == StatusBusy {
			sawBusy = true
			if resp.RetryAfterMs == 0 {
				t.Fatal("BUSY response carries no retry-after hint")
			}
		}
	}
	if _, err := blocker.Recv(); err != nil {
		t.Fatalf("batch Recv: %v", err)
	}
	if !sawBusy {
		t.Skip("server never shed a request (batch finished too fast); nothing to assert")
	}
}

// TestResilientRecvEmpty pins the misuse error.
func TestResilientRecvEmpty(t *testing.T) {
	rc := NewResilient("127.0.0.1:1", ResilientOptions{Seed: 8})
	defer rc.Close()
	if _, err := rc.Recv(); !errors.Is(err, ErrProto) {
		t.Fatalf("Recv with empty pipeline: err = %v, want ErrProto", err)
	}
}
