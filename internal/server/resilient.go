package server

import (
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// RetryPolicy bounds the reconnect and retry behavior of a
// ResilientClient: bounded exponential backoff with equal jitter, the same
// shape eio.RetryStore applies to transient storage faults, lifted to the
// network layer.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per operation — and per
	// reconnect episode — including the first. Zero selects 10.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles on every
	// subsequent one. Zero selects 10ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Zero selects 1s.
	MaxDelay time.Duration
	// Sleep replaces time.Sleep, letting tests run the full backoff
	// schedule without wall-clock cost. Nil selects time.Sleep.
	Sleep func(time.Duration)
}

func (p RetryPolicy) filled() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 10
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// ResilientOptions tunes a ResilientClient.
type ResilientOptions struct {
	// Client is passed to every Dial.
	Client ClientOptions
	// Retry bounds reconnects and per-operation retries.
	Retry RetryPolicy
	// Seed seeds the backoff-jitter RNG (zero draws from crypto/rand).
	// It deliberately does NOT determine the idempotency client id:
	// dedup windows are keyed by client id, so a repeated seed across
	// runs against one server must not replay another run's responses.
	Seed int64
	// ClientID overrides the idempotency session id. Zero (the default)
	// draws it from crypto/rand regardless of Seed.
	ClientID uint64
	// NoIdempotency leaves writes unwrapped: retries after an ambiguous
	// failure then re-execute instead of replaying, which is safe only if
	// the caller can tolerate stale Duplicate/Found flags.
	NoIdempotency bool
	// NoRetryBusy surfaces BUSY responses to the caller instead of
	// retrying them after the server's retry-after hint.
	NoRetryBusy bool
}

// RecvResult is one delivered response: the request it answers, the tag
// its Send supplied, and whether the request was ever re-sent after an
// ambiguous failure (in which case Duplicate/Found/Results may reflect
// the first execution rather than the retry).
type RecvResult struct {
	Req     Request
	Tag     interface{}
	Resp    Response
	Retried bool
}

// ResilientStats counts a ResilientClient's recovery work.
type ResilientStats struct {
	Reconnects     uint64 `json:"reconnects"`
	DialFailures   uint64 `json:"dial_failures"`
	Resent         uint64 `json:"resent"`
	BusyRetries    uint64 `json:"busy_retries"`
	TimeoutRetries uint64 `json:"timeout_retries"`
}

// pendingReq is one sent-but-unanswered request, mirrored in order with
// the underlying connection's pipeline.
type pendingReq struct {
	req      Request
	tag      interface{}
	attempts int
	retried  bool
}

// ResilientClient is a Client that survives the network: it reconnects
// with bounded exponential backoff plus jitter, transparently re-sends
// every unanswered request of its pipeline after a reconnect, stamps
// writes with idempotency IDs so those re-sends are execute-once (the
// server dedup window replays the original response), and retries BUSY
// responses after the server's retry-after hint. Like Client it is for
// ONE goroutine.
//
// Responses are delivered per request: a BUSY or TIMEOUT retry re-enqueues
// the request at the tail of the pipeline, so responses are NOT globally
// FIFO — Recv identifies each response by the request and tag it answers.
// Per-request ordering relative to the server stays consistent: effects
// apply in the order responses are delivered.
type ResilientClient struct {
	addr string
	opts ResilientOptions
	rng  *rand.Rand

	cl       *Client // nil while disconnected
	clientID uint64
	seq      uint64
	pending  []pendingReq

	stats ResilientStats
}

// NewResilient builds a client for addr. No connection is made until the
// first operation, so construction succeeds while the server is down.
func NewResilient(addr string, opts ResilientOptions) *ResilientClient {
	opts.Client = opts.Client.withDefaults()
	opts.Retry = opts.Retry.filled()
	seed := opts.Seed
	if seed == 0 {
		var b [8]byte
		_, _ = crand.Read(b[:])
		seed = int64(binary.LittleEndian.Uint64(b[:]))
	}
	rng := rand.New(rand.NewSource(seed))
	id := opts.ClientID
	for id == 0 {
		var b [8]byte
		if _, err := crand.Read(b[:]); err != nil {
			id = rng.Uint64() // no entropy source; better than nothing
			break
		}
		id = binary.LittleEndian.Uint64(b[:])
	}
	return &ResilientClient{addr: addr, opts: opts, rng: rng, clientID: id}
}

// ClientID returns the idempotency session id writes are stamped with.
func (c *ResilientClient) ClientID() uint64 { return c.clientID }

// Stats returns the recovery counters so far.
func (c *ResilientClient) Stats() ResilientStats { return c.stats }

// Pending returns the number of sent-but-unanswered requests.
func (c *ResilientClient) Pending() int { return len(c.pending) }

// Close drops the connection and forgets the pipeline.
func (c *ResilientClient) Close() error {
	c.pending = nil
	if c.cl == nil {
		return nil
	}
	err := c.cl.Close()
	c.cl = nil
	return err
}

// backoff sleeps the jittered exponential delay for the given retry
// (1-based): d = min(base·2^(n-1), max), slept in [d/2, d).
func (c *ResilientClient) backoff(n int) {
	d := c.opts.Retry.BaseDelay << uint(n-1)
	if d <= 0 || d > c.opts.Retry.MaxDelay {
		d = c.opts.Retry.MaxDelay
	}
	c.opts.Retry.Sleep(d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1)))
}

// dropConn closes the broken connection; pending stays queued for the
// next reconnect.
func (c *ResilientClient) dropConn() {
	if c.cl != nil {
		c.cl.Close()
		c.cl = nil
	}
}

// reconnect dials (under the retry policy) and re-sends every pending
// request in pipeline order. Re-sent requests are marked retried: their
// original may have executed before the connection died.
func (c *ResilientClient) reconnect() error {
	var lastErr error
	for attempt := 1; attempt <= c.opts.Retry.MaxAttempts; attempt++ {
		if attempt > 1 {
			c.backoff(attempt - 1)
		}
		cl, err := Dial(c.addr, c.opts.Client)
		if err != nil {
			c.stats.DialFailures++
			lastErr = err
			continue
		}
		if err := c.resend(cl); err != nil {
			c.stats.DialFailures++
			cl.Close()
			lastErr = err
			continue
		}
		c.cl = cl
		c.stats.Reconnects++
		return nil
	}
	return fmt.Errorf("server: resilient: reconnect to %s failed after %d attempts: %w",
		c.addr, c.opts.Retry.MaxAttempts, lastErr)
}

func (c *ResilientClient) resend(cl *Client) error {
	for i := range c.pending {
		if err := cl.Send(c.pending[i].req); err != nil {
			return err
		}
		c.pending[i].retried = true
		c.stats.Resent++
	}
	return cl.Flush()
}

// ensure returns a live connection, reconnecting if needed.
func (c *ResilientClient) ensure() error {
	if c.cl != nil {
		return nil
	}
	return c.reconnect()
}

// Send stamps writes with an idempotency ID, queues the request, and puts
// it on the wire if a connection is up (a dead connection defers the send
// to the next Recv's reconnect). tag is handed back with the response.
func (c *ResilientClient) Send(r Request, tag interface{}) error {
	if !c.opts.NoIdempotency && r.Idem == nil && idempotent(r.Op) {
		c.seq++
		r.Idem = &IdemID{Client: c.clientID, Seq: c.seq}
	}
	c.pending = append(c.pending, pendingReq{req: r, tag: tag})
	if c.cl == nil {
		return nil
	}
	if err := c.cl.Send(r); err != nil {
		if errors.Is(err, ErrProto) {
			// Encoding rejected the request itself — no retry can help.
			c.pending = c.pending[:len(c.pending)-1]
			return err
		}
		c.dropConn()
	}
	return nil
}

// Recv delivers the next response, absorbing transport failures
// (reconnect + re-send), BUSY (hinted backoff + retry) and TIMEOUT
// (idempotent re-send) up to the retry budget. An error means the budget
// is exhausted or the pipeline is empty.
func (c *ResilientClient) Recv() (RecvResult, error) {
	if len(c.pending) == 0 {
		return RecvResult{}, fmt.Errorf("%w: Recv with no pending request", ErrProto)
	}
	episodes := 0
	for {
		if err := c.ensure(); err != nil {
			return RecvResult{}, err
		}
		resp, err := c.cl.Recv()
		if err != nil {
			// Transport or framing failure: the connection is unusable.
			// Reconnect (bounded) and re-send the whole pipeline. The
			// backoff here paces the case where dialing succeeds but the
			// connection dies immediately (e.g. a proxy whose upstream is
			// down) — without it the episode budget burns in milliseconds.
			c.dropConn()
			episodes++
			if episodes >= c.opts.Retry.MaxAttempts {
				return RecvResult{}, fmt.Errorf("server: resilient: giving up after %d broken connections: %w", episodes, err)
			}
			c.backoff(episodes)
			continue
		}
		head := c.pending[0]
		c.pending = c.pending[:copy(c.pending, c.pending[1:])]

		switch resp.Status {
		case StatusBusy:
			if c.opts.NoRetryBusy || head.attempts+1 >= c.opts.Retry.MaxAttempts {
				return RecvResult{Req: head.req, Tag: head.tag, Resp: resp, Retried: head.retried}, nil
			}
			// The server shed the request without executing it: honor the
			// hint (or backoff), then re-enqueue at the pipeline tail.
			c.stats.BusyRetries++
			head.attempts++
			if resp.RetryAfterMs > 0 {
				c.opts.Retry.Sleep(time.Duration(resp.RetryAfterMs) * time.Millisecond)
			} else {
				c.backoff(head.attempts)
			}
			if err := c.requeue(head); err != nil {
				return RecvResult{}, err
			}
		case StatusTimeout:
			if head.attempts+1 >= c.opts.Retry.MaxAttempts {
				return RecvResult{Req: head.req, Tag: head.tag, Resp: resp, Retried: head.retried}, nil
			}
			// Outcome unknown: safe to re-send because writes carry an
			// idempotency ID (the server replays or converges) and reads
			// are naturally idempotent.
			c.stats.TimeoutRetries++
			head.attempts++
			head.retried = true
			if err := c.requeue(head); err != nil {
				return RecvResult{}, err
			}
		default:
			return RecvResult{Req: head.req, Tag: head.tag, Resp: resp, Retried: head.retried}, nil
		}
	}
}

// requeue puts a retried request back at the pipeline tail and on the
// wire.
func (c *ResilientClient) requeue(p pendingReq) error {
	c.pending = append(c.pending, p)
	if c.cl == nil {
		return nil
	}
	if err := c.cl.Send(p.req); err != nil {
		c.dropConn()
	}
	return nil
}

// Do sends one request and waits for its response — the non-pipelined
// convenience path. It must not be interleaved with pipelined Sends.
func (c *ResilientClient) Do(r Request) (Response, error) {
	if err := c.Send(r, nil); err != nil {
		return Response{}, err
	}
	res, err := c.Recv()
	if err != nil {
		return Response{}, err
	}
	return res.Resp, nil
}

// Ping round-trips data through the retry layer and verifies the echo.
func (c *ResilientClient) Ping(data []byte) error {
	r, err := c.Do(Request{Op: OpPing, Data: data})
	if err != nil {
		return err
	}
	if err := statusErr(r); err != nil {
		return err
	}
	if string(r.Data) != string(data) {
		return fmt.Errorf("%w: ping echo mismatch", ErrProto)
	}
	return nil
}

// Stats fetches the server's StatsSnapshot as raw JSON, with retries.
func (c *ResilientClient) ServerStats() ([]byte, error) {
	r, err := c.Do(Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	return r.Data, statusErr(r)
}
