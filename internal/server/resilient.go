package server

import (
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// RetryPolicy bounds the reconnect and retry behavior of a
// ResilientClient: bounded exponential backoff with equal jitter, the same
// shape eio.RetryStore applies to transient storage faults, lifted to the
// network layer.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per operation — and per
	// reconnect episode — including the first. Zero selects 10.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles on every
	// subsequent one. Zero selects 10ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Zero selects 1s.
	MaxDelay time.Duration
	// Sleep replaces time.Sleep, letting tests run the full backoff
	// schedule without wall-clock cost. Nil selects time.Sleep.
	Sleep func(time.Duration)
}

func (p RetryPolicy) filled() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 10
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// ResilientOptions tunes a ResilientClient.
type ResilientOptions struct {
	// Client is passed to every Dial.
	Client ClientOptions
	// Retry bounds reconnects and per-operation retries.
	Retry RetryPolicy
	// Seed seeds the backoff-jitter RNG (zero draws from crypto/rand).
	// It deliberately does NOT determine the idempotency client id:
	// dedup windows are keyed by client id, so a repeated seed across
	// runs against one server must not replay another run's responses.
	Seed int64
	// ClientID overrides the idempotency session id. Zero (the default)
	// draws it from crypto/rand regardless of Seed.
	ClientID uint64
	// NoIdempotency leaves writes unwrapped: retries after an ambiguous
	// failure then re-execute instead of replaying, which is safe only if
	// the caller can tolerate stale Duplicate/Found flags.
	NoIdempotency bool
	// NoRetryBusy surfaces BUSY (and DISKFULL) responses to the caller
	// instead of retrying them after the server's retry-after hint.
	NoRetryBusy bool
	// ReadAddrs lists replica addresses. When non-empty, queries fan out
	// across them round-robin, stamped with a BARRIER envelope at the
	// session's last acked write LSN — read-your-writes holds even though
	// the replica applies asynchronously. A STALE answer, a connection
	// failure, or an undialable replica falls the read back to the
	// primary; replicas are re-tried on later reads.
	ReadAddrs []string
	// FailoverAddrs lists candidate primary addresses beyond the one the
	// client was built with. On NOTPRIMARY (the node was demoted, or a
	// replica answered a write) or on repeated dial failure the client
	// rotates to the next candidate, so it follows a promotion without
	// outside help.
	FailoverAddrs []string
}

// RecvResult is one delivered response: the request it answers, the tag
// its Send supplied, and whether the request was ever re-sent after an
// ambiguous failure (in which case Duplicate/Found/Results may reflect
// the first execution rather than the retry).
type RecvResult struct {
	Req     Request
	Tag     interface{}
	Resp    Response
	Retried bool
}

// ResilientStats counts a ResilientClient's recovery work.
type ResilientStats struct {
	Reconnects     uint64 `json:"reconnects"`
	DialFailures   uint64 `json:"dial_failures"`
	Resent         uint64 `json:"resent"`
	BusyRetries    uint64 `json:"busy_retries"`
	TimeoutRetries uint64 `json:"timeout_retries"`
	// ReplicaReads counts queries issued to a replica connection;
	// StaleFallbacks those answered STALE and re-run on the primary;
	// ReplicaFallbacks those re-routed to the primary after a replica
	// connection failure.
	ReplicaReads     uint64 `json:"replica_reads,omitempty"`
	StaleFallbacks   uint64 `json:"stale_fallbacks,omitempty"`
	ReplicaFallbacks uint64 `json:"replica_fallbacks,omitempty"`
	// Failovers counts primary-candidate rotations after NOTPRIMARY.
	Failovers uint64 `json:"failovers,omitempty"`
	// DiskFullRetries counts DISKFULL responses absorbed and retried.
	DiskFullRetries uint64 `json:"disk_full_retries,omitempty"`
}

// pendingReq is one sent-but-unanswered request, mirrored in order with
// the pipeline of the connection it rides on: route is routePrimary or
// the index of the replica connection carrying it. The entries sharing a
// route are, in pending order, exactly that connection's FIFO.
type pendingReq struct {
	req      Request
	tag      interface{}
	attempts int
	retried  bool
	// sent records whether the request has ever been put on (or may have
	// reached) its connection's wire. A reconnect only marks previously
	// sent entries retried: a deferred first send (primary down at Send
	// time) is a first transmission, not an ambiguous re-send.
	sent  bool
	route int
}

// routePrimary routes a pendingReq over the primary connection.
const routePrimary = -1

// ResilientClient is a Client that survives the network: it reconnects
// with bounded exponential backoff plus jitter, transparently re-sends
// every unanswered request of its pipeline after a reconnect, stamps
// writes with idempotency IDs so those re-sends are execute-once (the
// server dedup window replays the original response), and retries BUSY
// responses after the server's retry-after hint. Like Client it is for
// ONE goroutine.
//
// Responses are delivered per request: a BUSY or TIMEOUT retry re-enqueues
// the request at the tail of the pipeline, so responses are NOT globally
// FIFO — Recv identifies each response by the request and tag it answers.
// Per-request ordering relative to the server stays consistent: effects
// apply in the order responses are delivered.
type ResilientClient struct {
	primaries []string // candidate primary addrs; pi is the current one
	pi        int
	opts      ResilientOptions
	rng       *rand.Rand

	cl       *Client // nil while disconnected
	clientID uint64
	seq      uint64
	pending  []pendingReq

	// replicas holds one lazily dialed connection per ReadAddrs entry
	// (nil while down); rr is the round-robin cursor. (lastTerm, lastLSN)
	// is the lexicographic max position any write ack carried — the
	// session's read barrier. The pair matters: LSNs are comparable only
	// within one term's timeline, so after a failover the term is what
	// keeps a divergent ex-primary from satisfying the barrier.
	replicas []*Client
	rr       int
	lastTerm uint64
	lastLSN  uint64

	stats ResilientStats
}

// NewResilient builds a client for addr. No connection is made until the
// first operation, so construction succeeds while the server is down.
func NewResilient(addr string, opts ResilientOptions) *ResilientClient {
	opts.Client = opts.Client.withDefaults()
	opts.Retry = opts.Retry.filled()
	seed := opts.Seed
	if seed == 0 {
		var b [8]byte
		_, _ = crand.Read(b[:])
		seed = int64(binary.LittleEndian.Uint64(b[:]))
	}
	rng := rand.New(rand.NewSource(seed))
	id := opts.ClientID
	for id == 0 {
		var b [8]byte
		if _, err := crand.Read(b[:]); err != nil {
			id = rng.Uint64() // no entropy source; better than nothing
			break
		}
		id = binary.LittleEndian.Uint64(b[:])
	}
	return &ResilientClient{
		primaries: append([]string{addr}, opts.FailoverAddrs...),
		opts:      opts,
		rng:       rng,
		clientID:  id,
		replicas:  make([]*Client, len(opts.ReadAddrs)),
	}
}

// ClientID returns the idempotency session id writes are stamped with.
func (c *ResilientClient) ClientID() uint64 { return c.clientID }

// Stats returns the recovery counters so far.
func (c *ResilientClient) Stats() ResilientStats { return c.stats }

// Pending returns the number of sent-but-unanswered requests.
func (c *ResilientClient) Pending() int { return len(c.pending) }

// Primary returns the primary address the client currently targets (it
// moves along the failover candidates on NOTPRIMARY).
func (c *ResilientClient) Primary() string { return c.primaries[c.pi] }

// LastLSN returns the LSN half of the session's read barrier: the
// highest position carried by a write ack this client has received.
func (c *ResilientClient) LastLSN() uint64 { return c.lastLSN }

// LastTerm returns the term half of the session's read barrier.
func (c *ResilientClient) LastTerm() uint64 { return c.lastTerm }

// barrierAfter reports whether the session barrier is lexicographically
// past (term, lsn) — i.e. stamping it on a request would raise it.
func (c *ResilientClient) barrierAfter(term, lsn uint64) bool {
	return c.lastTerm > term || (c.lastTerm == term && c.lastLSN > lsn)
}

// rotatePrimary advances to the next primary candidate.
func (c *ResilientClient) rotatePrimary() {
	if len(c.primaries) > 1 {
		c.pi = (c.pi + 1) % len(c.primaries)
	}
}

// Close drops every connection and forgets the pipeline.
func (c *ResilientClient) Close() error {
	c.pending = nil
	for i, rcl := range c.replicas {
		if rcl != nil {
			rcl.Close()
			c.replicas[i] = nil
		}
	}
	if c.cl == nil {
		return nil
	}
	err := c.cl.Close()
	c.cl = nil
	return err
}

// backoff sleeps the jittered exponential delay for the given retry
// (1-based): d = min(base·2^(n-1), max), slept in [d/2, d).
func (c *ResilientClient) backoff(n int) {
	d := c.opts.Retry.BaseDelay << uint(n-1)
	if d <= 0 || d > c.opts.Retry.MaxDelay {
		d = c.opts.Retry.MaxDelay
	}
	c.opts.Retry.Sleep(d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1)))
}

// dropConn closes the broken connection; pending stays queued for the
// next reconnect.
func (c *ResilientClient) dropConn() {
	if c.cl != nil {
		c.cl.Close()
		c.cl = nil
	}
}

// reconnect dials (under the retry policy) and re-sends every pending
// primary-routed request in pipeline order. Re-sent requests are marked
// retried: their original may have executed before the connection died.
// Each dial failure rotates to the next primary candidate, so exhausting
// the budget walks the whole failover ring.
func (c *ResilientClient) reconnect() error {
	var lastErr error
	for attempt := 1; attempt <= c.opts.Retry.MaxAttempts; attempt++ {
		if attempt > 1 {
			c.backoff(attempt - 1)
		}
		cl, err := Dial(c.Primary(), c.opts.Client)
		if err != nil {
			c.stats.DialFailures++
			c.rotatePrimary()
			lastErr = err
			continue
		}
		if err := c.resend(cl); err != nil {
			c.stats.DialFailures++
			cl.Close()
			lastErr = err
			continue
		}
		c.cl = cl
		c.stats.Reconnects++
		return nil
	}
	return fmt.Errorf("server: resilient: reconnect to %s failed after %d attempts: %w",
		c.Primary(), c.opts.Retry.MaxAttempts, lastErr)
}

func (c *ResilientClient) resend(cl *Client) error {
	for i := range c.pending {
		if c.pending[i].route != routePrimary {
			continue
		}
		if err := cl.Send(c.pending[i].req); err != nil {
			return err
		}
		if c.pending[i].sent {
			c.pending[i].retried = true
			c.stats.Resent++
		}
		c.pending[i].sent = true
	}
	return cl.Flush()
}

// replica returns the i-th replica connection, dialing it if down. nil
// means the replica is unreachable right now (one dial attempt per read;
// the primary is the always-available fallback, so no backoff here).
func (c *ResilientClient) replica(i int) *Client {
	if c.replicas[i] != nil {
		return c.replicas[i]
	}
	cl, err := Dial(c.opts.ReadAddrs[i], c.opts.Client)
	if err != nil {
		c.stats.DialFailures++
		return nil
	}
	c.replicas[i] = cl
	return cl
}

// routeRead picks a connection for a query: the next live replica in
// round-robin order, or the primary when there are no replicas (or none
// is reachable). Every barrierable read is stamped with the session's
// read barrier, whatever the route: a true primary trivially satisfies
// it (acks are issued after the epoch publish, so its applied position
// covers every LSN this session has seen), while a replica the failover
// ring mistook for the primary answers STALE instead of old data.
func (c *ResilientClient) routeRead(r *Request) int {
	if !barrierable(r.Op) || r.MinLSN != 0 || r.MinTerm != 0 {
		return routePrimary
	}
	r.MinTerm, r.MinLSN = c.lastTerm, c.lastLSN
	for k := 0; k < len(c.replicas); k++ {
		i := c.rr % len(c.replicas)
		c.rr++
		if c.replica(i) != nil {
			return i
		}
	}
	return routePrimary
}

// dropReplica closes a failed replica connection and re-routes every
// pending request riding on it to the primary: each moves to the tail of
// the logical pipeline (Recv identifies responses per request, so
// reordering is within contract) with its barrier kept — a true primary
// satisfies it for free, and during a failover window it is the only
// thing standing between the read and a stale ex-replica.
func (c *ResilientClient) dropReplica(i int) {
	if cl := c.replicas[i]; cl != nil {
		cl.Close()
		c.replicas[i] = nil
	}
	var keep, moved []pendingReq
	for _, p := range c.pending {
		if p.route == i {
			p.route = routePrimary
			moved = append(moved, p)
		} else {
			keep = append(keep, p)
		}
	}
	c.pending = append(keep, moved...)
	tail := c.pending[len(c.pending)-len(moved):]
	for i := range tail {
		c.stats.ReplicaFallbacks++
		tail[i].sent = false // first transmission on the primary route
		if c.cl == nil {
			continue // reconnect's resend will carry it
		}
		if err := c.cl.Send(tail[i].req); err != nil {
			c.dropConn()
			continue
		}
		tail[i].sent = true
	}
}

// ensure returns a live connection, reconnecting if needed.
func (c *ResilientClient) ensure() error {
	if c.cl != nil {
		return nil
	}
	return c.reconnect()
}

// Send stamps writes with an idempotency ID, routes queries to a replica
// when a read pool is configured, queues the request, and puts it on the
// wire if its connection is up (a dead primary defers the send to the
// next Recv's reconnect). tag is handed back with the response.
func (c *ResilientClient) Send(r Request, tag interface{}) error {
	if !c.opts.NoIdempotency && r.Idem == nil && idempotent(r.Op) {
		c.seq++
		r.Idem = &IdemID{Client: c.clientID, Seq: c.seq}
	}
	route := c.routeRead(&r)
	c.pending = append(c.pending, pendingReq{req: r, tag: tag, route: route})
	if route != routePrimary {
		c.stats.ReplicaReads++
		if err := c.replicas[route].Send(r); err != nil {
			if errors.Is(err, ErrProto) {
				c.pending = c.pending[:len(c.pending)-1]
				return err
			}
			c.dropReplica(route)
			return nil
		}
		c.pending[len(c.pending)-1].sent = true
		return nil
	}
	if c.cl == nil {
		return nil
	}
	if err := c.cl.Send(r); err != nil {
		if errors.Is(err, ErrProto) {
			// Encoding rejected the request itself — no retry can help.
			c.pending = c.pending[:len(c.pending)-1]
			return err
		}
		c.dropConn()
	}
	// A transport error may have flushed bytes before failing, so the
	// request counts as sent (ambiguous) either way once attempted.
	c.pending[len(c.pending)-1].sent = true
	return nil
}

// Recv delivers the next response, absorbing transport failures
// (reconnect + re-send), BUSY and DISKFULL (hinted backoff + retry),
// TIMEOUT (idempotent re-send), STALE (replica behind the read barrier —
// re-run on the primary) and NOTPRIMARY (rotate to the next failover
// candidate) up to the retry budget. An error means the budget is
// exhausted or the pipeline is empty.
func (c *ResilientClient) Recv() (RecvResult, error) {
	if len(c.pending) == 0 {
		return RecvResult{}, fmt.Errorf("%w: Recv with no pending request", ErrProto)
	}
	episodes := 0
	for {
		// The logical head decides which connection to read: each route's
		// entries mirror that connection's FIFO, so the head's response is
		// the next frame on its own connection.
		if c.pending[0].route != routePrimary {
			route := c.pending[0].route
			resp, err := c.replicas[route].Recv()
			if err != nil {
				// The replica died: every read riding on it (head included)
				// falls back to the primary, and the loop re-examines the
				// new head. No episode charge — the primary is intact.
				c.dropReplica(route)
				continue
			}
			head := c.pending[0]
			c.pending = c.pending[:copy(c.pending, c.pending[1:])]
			res, retry := c.dispose(head, resp)
			if !retry {
				return res, nil
			}
			continue
		}
		if err := c.ensure(); err != nil {
			return RecvResult{}, err
		}
		resp, err := c.cl.Recv()
		if err != nil {
			// Transport or framing failure: the connection is unusable.
			// Reconnect (bounded) and re-send the whole pipeline. The
			// backoff here paces the case where dialing succeeds but the
			// connection dies immediately (e.g. a proxy whose upstream is
			// down) — without it the episode budget burns in milliseconds.
			c.dropConn()
			episodes++
			if episodes >= c.opts.Retry.MaxAttempts {
				return RecvResult{}, fmt.Errorf("server: resilient: giving up after %d broken connections: %w", episodes, err)
			}
			c.backoff(episodes)
			continue
		}
		head := c.pending[0]
		c.pending = c.pending[:copy(c.pending, c.pending[1:])]
		res, retry := c.dispose(head, resp)
		if !retry {
			return res, nil
		}
	}
}

// dispose folds one response into the retry machinery: either it is
// deliverable (retry false) or the request went back into the pipeline
// (retry true). head has already been popped.
func (c *ResilientClient) dispose(head pendingReq, resp Response) (RecvResult, bool) {
	deliver := func() (RecvResult, bool) {
		if resp.Status == StatusOK && (resp.Term != 0 || resp.LSN != 0) &&
			!c.barrierAfter(resp.Term, resp.LSN) {
			// A write ack carries the server's (term, durable LSN):
			// advance the session barrier — lexicographically, so a
			// straggler ack from a pre-failover timeline never lowers it —
			// and later replica reads see this write.
			c.lastTerm, c.lastLSN = resp.Term, resp.LSN
		}
		return RecvResult{Req: head.req, Tag: head.tag, Resp: resp, Retried: head.retried}, false
	}
	switch resp.Status {
	case StatusBusy, StatusDiskFull:
		if c.opts.NoRetryBusy || head.attempts+1 >= c.opts.Retry.MaxAttempts {
			return deliver()
		}
		// The server shed the request without executing it (admission gate
		// or a full disk): honor the hint (or backoff), then re-enqueue at
		// the pipeline tail — on the primary, whatever route it came in on.
		if resp.Status == StatusDiskFull {
			c.stats.DiskFullRetries++
		} else {
			c.stats.BusyRetries++
		}
		head.attempts++
		if resp.RetryAfterMs > 0 {
			c.opts.Retry.Sleep(time.Duration(resp.RetryAfterMs) * time.Millisecond)
		} else {
			c.backoff(head.attempts)
		}
		c.requeue(head)
	case StatusTimeout:
		if head.attempts+1 >= c.opts.Retry.MaxAttempts {
			return deliver()
		}
		// Outcome unknown: safe to re-send because writes carry an
		// idempotency ID (the server replays or converges) and reads
		// are naturally idempotent.
		c.stats.TimeoutRetries++
		head.attempts++
		head.retried = true
		c.requeue(head)
	case StatusStale:
		if head.attempts+1 >= c.opts.Retry.MaxAttempts {
			return deliver()
		}
		head.attempts++
		if head.route == routePrimary {
			// A current primary never answers STALE — its term is the
			// newest this session can have seen and its applied position
			// covers every LSN it has ever acked. This node is a replica
			// (or a deposed ex-primary on an older term) the failover ring
			// landed on mid-promotion: rotate exactly as NOTPRIMARY would
			// (reads alone never elicit NOTPRIMARY, so the barrier is what
			// surfaces the misdirected route).
			c.stats.Failovers++
			c.rotatePrimary()
			c.dropConn()
			c.backoff(head.attempts)
		} else {
			// The replica has not applied up to the read barrier: re-run
			// on the primary, which satisfies any barrier this session
			// holds.
			c.stats.StaleFallbacks++
		}
		c.requeue(head)
	case StatusNotPrimary:
		if head.attempts+1 >= c.opts.Retry.MaxAttempts {
			return deliver()
		}
		// The node was demoted (or never was the primary): rotate to the
		// next candidate and re-send there. The write did not execute, so
		// this is not ambiguous. The backoff paces a promotion in flight.
		c.stats.Failovers++
		head.attempts++
		c.rotatePrimary()
		c.dropConn()
		c.backoff(head.attempts)
		c.requeue(head)
	default:
		return deliver()
	}
	return RecvResult{}, true
}

// requeue puts a retried request back at the pipeline tail, routed to
// the primary, and on the wire. A barrierable read keeps its read
// barrier — raised to the session's current position in case an ack
// advanced it since the original send — so that a mis-aimed primary
// route (a replica mid-failover) answers STALE rather than stale data.
func (c *ResilientClient) requeue(p pendingReq) {
	p.route = routePrimary
	p.sent = false
	if barrierable(p.req.Op) && c.barrierAfter(p.req.MinTerm, p.req.MinLSN) {
		p.req.MinTerm, p.req.MinLSN = c.lastTerm, c.lastLSN
	}
	c.pending = append(c.pending, p)
	if c.cl == nil {
		return
	}
	if err := c.cl.Send(p.req); err != nil {
		c.dropConn()
	}
	c.pending[len(c.pending)-1].sent = true
}

// Do sends one request and waits for its response — the non-pipelined
// convenience path. It must not be interleaved with pipelined Sends.
func (c *ResilientClient) Do(r Request) (Response, error) {
	if err := c.Send(r, nil); err != nil {
		return Response{}, err
	}
	res, err := c.Recv()
	if err != nil {
		return Response{}, err
	}
	return res.Resp, nil
}

// Ping round-trips data through the retry layer and verifies the echo.
func (c *ResilientClient) Ping(data []byte) error {
	r, err := c.Do(Request{Op: OpPing, Data: data})
	if err != nil {
		return err
	}
	if err := statusErr(r); err != nil {
		return err
	}
	if string(r.Data) != string(data) {
		return fmt.Errorf("%w: ping echo mismatch", ErrProto)
	}
	return nil
}

// Stats fetches the server's StatsSnapshot as raw JSON, with retries.
func (c *ResilientClient) ServerStats() ([]byte, error) {
	r, err := c.Do(Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	return r.Data, statusErr(r)
}
