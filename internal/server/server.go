package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"rangesearch/internal/core"
	"rangesearch/internal/eio"
	"rangesearch/internal/geom"
	"rangesearch/internal/obs"
	"rangesearch/internal/trace"
)

// Backend is what the server serves: the traced entry points of
// core.Concurrent plus the durable-position probe the read barrier needs.
// *core.Concurrent satisfies it directly; repl.Node wraps one to serve a
// replica (reads delegate, writes fail core.ErrNotPrimary until promotion).
type Backend interface {
	InsertTraced(p geom.Point, sp *trace.Span) error
	DeleteTraced(p geom.Point, sp *trace.Span) (bool, error)
	QueryTraced(dst []geom.Point, q geom.Rect, sp *trace.Span) ([]geom.Point, error)
	ApplyBatchTraced(ops []core.BatchOp, sp *trace.Span) []core.BatchResult
	Len() (int, error)
	Epoch() uint64
	PageSize() int
	// AppliedLSN is the LSN of the last locally durable commit: what a
	// BARRIER envelope compares against, and what write acks carry.
	AppliedLSN() uint64
}

// ReplInfo is a node's replication identity, reported inside STATS when
// the server is given a ReplInfo callback. All fields are point-in-time.
type ReplInfo struct {
	// Role is "primary", "replica", or "fenced" (an ex-primary refusing
	// writes after learning of a newer term).
	Role string `json:"role"`
	// Term is the fencing term from the manifest: a promotion bumps it,
	// and a node never accepts records from a lower term.
	Term uint64 `json:"term"`
	// AppliedLSN is the node's durable position.
	AppliedLSN uint64 `json:"applied_lsn"`
	// PrimaryLSN is the highest LSN the node has heard from its primary
	// (replica only; equals AppliedLSN when caught up).
	PrimaryLSN uint64 `json:"primary_lsn,omitempty"`
	// StalenessMs is how long ago the node last heard from its primary
	// (replica only).
	StalenessMs float64 `json:"staleness_ms,omitempty"`
	// Replicas is the number of connected downstream replicas (primary
	// side of a shipping link).
	Replicas int `json:"replicas,omitempty"`
}

// Config tunes a Server. The zero value serves with the documented
// defaults.
type Config struct {
	// MaxInFlight caps the RPCs admitted past the gate at once, across all
	// connections. A request arriving while the gate is full is answered
	// StatusBusy immediately instead of queueing — offered load beyond the
	// budget is shed, not buffered, so memory and tail latency stay
	// bounded. PING and STATS bypass the gate: a saturated server must
	// stay health-checkable and observable. Default 64.
	MaxInFlight int
	// MaxFrame is the per-frame byte ceiling (default DefaultMaxFrame).
	MaxFrame int
	// MaxBatchOps bounds one BATCH frame (default DefaultMaxBatchOps).
	MaxBatchOps int
	// IdleTimeout is how long a connection may sit between frames before
	// the server closes it (default 2 minutes; <0 disables).
	IdleTimeout time.Duration
	// WriteTimeout is the deadline for writing one response batch
	// (default 30 seconds; <0 disables). A connection that misses it is
	// evicted: a peer too slow to accept responses cannot pin a handler
	// (Metrics.Evicted counts these).
	WriteTimeout time.Duration
	// RequestTimeout bounds one request's execution. A request still
	// running when it expires is answered StatusTimeout and abandoned (it
	// may still complete and, for IDEM writes, lands its outcome in the
	// dedup window for the retry to find). Ordering relative to later
	// requests on the connection is not guaranteed for an abandoned
	// request. 0 disables.
	RequestTimeout time.Duration
	// RetryAfterHint is the backoff hint attached to BUSY responses
	// (default 2ms; <0 omits the hint).
	RetryAfterHint time.Duration
	// Idem bounds the idempotency dedup windows (see IdemConfig).
	Idem IdemConfig
	// TraceSample, when > 0, makes the server record a full span (phase
	// timings + exact block I/O, see internal/trace) for roughly this
	// fraction of requests: every ⌈1/TraceSample⌉-th request is sampled,
	// counter-based so the unsampled path costs one atomic add and zero
	// allocations. Client requests stamped with a sampled TRACE envelope
	// are always recorded regardless. 0 disables server-side sampling.
	TraceSample float64
	// SlowLog, when > 0, arms the slow-query log: EVERY request is traced
	// and any request whose wall time reaches the threshold is dumped via
	// Logf as one line — all non-zero phases, attributed I/O count, and
	// the Theorem 6/7 I/O allowance for the op. 0 disables.
	SlowLog time.Duration
	// Spans, when non-nil, receives the record of every sampled span
	// after its response flushes (ring buffer, JSONL spool, ...).
	Spans SpanRecorder
	// Repl, when non-nil, is polled by STATS for the node's replication
	// identity (role, term, LSNs, staleness). Nil omits the repl section.
	Repl func() ReplInfo
	// WriteBuffer, when non-nil, is polled by STATS for the node's
	// write-buffer snapshot (depth, flush counts, journal size). Nil
	// omits the section (unbuffered node).
	WriteBuffer func() obs.WriteBufferStats
	// Term, when non-nil, reports the node's current replication term for
	// (term, LSN) read barriers and write-ack stamping. It must be
	// coherent with the serving engine: a caller observing term T must be
	// served by an engine on timeline T (the repl.Node swaps both under
	// one lock). Nil means an un-replicated node, which serves at term 0.
	Term func() uint64
	// Metrics, when non-nil, receives every signal the server emits; use
	// PublishMetrics to put it on the expvar surface. Nil disables.
	Metrics *Metrics
	// Logf, when non-nil, receives one line per abnormal event (handler
	// panic, accept error). Nil discards.
	Logf func(format string, args ...interface{})
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.MaxBatchOps <= 0 {
		c.MaxBatchOps = DefaultMaxBatchOps
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.RetryAfterHint == 0 {
		c.RetryAfterHint = 2 * time.Millisecond
	}
	return c
}

// Server serves the wire protocol over a core.Concurrent index. It is
// robust by construction:
//
//   - per-connection read (idle) and write deadlines, so a stalled or
//     vanished peer cannot hold a handler goroutine forever;
//   - a MaxInFlight admission gate answering BUSY instead of queueing;
//   - panic-isolated connection handlers: a panic kills one connection
//     (counted in Metrics.Panics), never the process;
//   - graceful drain: Shutdown stops accepting, lets every in-flight
//     request finish and its response flush, then returns — the caller
//     syncs and closes the store afterwards, scrub-clean.
//
// Writes from concurrent connections coalesce into the group commits
// core.Concurrent already performs: one WAL record and fsync schedule per
// committed group, however many clients contributed.
type Server struct {
	idx Backend
	cfg Config

	gate  chan struct{}
	idem  *idemTable
	start time.Time

	traceEvery   uint64 // sample every Nth request (0 = off)
	traceCounter atomic.Uint64

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining bool

	wg sync.WaitGroup
}

// New builds a Server over idx.
func New(idx Backend, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		idx:        idx,
		cfg:        cfg,
		gate:       make(chan struct{}, cfg.MaxInFlight),
		start:      time.Now(),
		conns:      map[net.Conn]struct{}{},
		traceEvery: sampleInterval(cfg.TraceSample),
	}
	if cfg.Idem.MaxClients >= 0 {
		s.idem = newIdemTable(cfg.Idem)
	}
	return s
}

// Serve accepts connections on ln until Shutdown (or a permanent accept
// error) and blocks until every connection handler has exited. After
// Shutdown it returns nil.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()

	var err error
	for {
		conn, aerr := ln.Accept()
		if aerr != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if !draining {
				err = aerr
			}
			break
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			break
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		if m := s.cfg.Metrics; m != nil {
			m.accepted.Add(1)
			m.conns.Add(1)
		}
		s.wg.Add(1)
		go s.handleConn(conn)
	}
	s.wg.Wait()
	return err
}

// Shutdown drains the server: the listener closes, blocked reads are
// interrupted, connections finish the request they are handling (and
// flush its response) and close. It blocks until every handler has exited
// or ctx is done, whichever is first.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	if s.ln != nil {
		s.ln.Close()
	}
	for conn := range s.conns {
		// Interrupt reads blocked waiting for the next frame; handlers
		// re-check the draining flag on read errors and exit cleanly.
		_ = conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Hard-close what is left; handlers exit on the next I/O error.
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
	if m := s.cfg.Metrics; m != nil {
		m.conns.Add(-1)
	}
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// handleConn runs one connection's request loop: read frame, handle,
// write response, flushing when the input buffer drains (so pipelined
// clients get batched response writes). Responses go out in request
// order. A panic anywhere in the loop is caught here: the connection
// dies, the server does not.
func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer s.dropConn(conn)
	defer func() {
		if r := recover(); r != nil {
			if m := s.cfg.Metrics; m != nil {
				m.panics.Add(1)
			}
			s.logf("server: connection %v: handler panic: %v\n%s", conn.RemoteAddr(), r, debug.Stack())
		}
	}()

	br := bufio.NewReaderSize(conn, 32*1024)
	bw := bufio.NewWriterSize(conn, 32*1024)
	var respBuf []byte
	for {
		if s.isDraining() {
			bw.Flush()
			return
		}
		if s.cfg.IdleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		body, err := ReadFrame(br, s.cfg.MaxFrame)
		if err != nil {
			// Clean close, idle timeout, drain interrupt: just drop the
			// connection. A framing violation additionally counts as a
			// protocol error — the stream is unparseable from here on.
			if errors.Is(err, ErrFrameTooLarge) || errors.Is(err, ErrProto) {
				if m := s.cfg.Metrics; m != nil {
					m.protoErr.Add(1)
				}
				respBuf = EncodeResponse(respBuf[:0], 0, Response{Status: StatusErr, Msg: err.Error()})
				s.writeResponse(conn, bw, respBuf)
			}
			bw.Flush()
			return
		}
		start := time.Now()
		req, derr := DecodeRequest(body, s.cfg.MaxBatchOps)
		var resp Response
		var sp *trace.Span
		op := byte(0)
		replayed := false
		replyStart := start
		switch {
		case derr != nil:
			// A malformed payload inside a well-formed frame: report it on
			// this request, keep the connection (framing is still sound).
			if m := s.cfg.Metrics; m != nil {
				m.protoErr.Add(1)
			}
			resp = Response{Status: StatusErr, Msg: derr.Error()}
			respBuf = EncodeResponse(respBuf[:0], op, resp)
		default:
			op = req.Op
			sp = s.startSpan(req, start)
			if cached, ok := s.lookupIdem(req); ok {
				// A retried write whose original completed: replay the
				// recorded response verbatim, never re-execute.
				replayed = true
				replyStart = time.Now()
				respBuf = append(respBuf[:0], cached...)
			} else {
				resp = s.executeWithDeadline(req, sp)
				replyStart = time.Now()
				respBuf = EncodeResponse(respBuf[:0], op, resp)
			}
		}
		if !s.writeResponse(conn, bw, respBuf) {
			return
		}
		// Flush once the pipeline's input is drained: pipelined bursts get
		// one syscall per burst, single requests flush immediately.
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				s.noteWriteErr(err)
				return
			}
		}
		if sp != nil {
			// reply_flush covers encode + frame write (+ the flush when
			// this request triggered one); the span's wall clock stops
			// here, so it is the request's server-side wire latency.
			sp.AddPhase(trace.PhaseReplyFlush, time.Since(replyStart))
			s.completeSpan(sp, req, resp)
		}
		if m := s.cfg.Metrics; m != nil && derr == nil {
			m.observe(op, time.Since(start), len(body), len(respBuf), !replayed && resp.Status == StatusErr)
			if !replayed && resp.Status == StatusBusy {
				m.busy.Add(1)
			}
		}
	}
}

// lookupIdem consults the dedup window for a retried IDEM write.
func (s *Server) lookupIdem(req Request) ([]byte, bool) {
	if req.Idem == nil {
		return nil, false
	}
	cached, ok := s.idem.lookup(*req.Idem)
	if m := s.cfg.Metrics; m != nil {
		if ok {
			m.idemReplay.Add(1)
		} else {
			m.idemExec.Add(1)
		}
	}
	return cached, ok
}

// completeIdem records the response of an executed IDEM write so a retry
// replays it instead of re-executing. BUSY, DISKFULL and NOTPRIMARY all
// mean the write did not run (the retry must execute it — possibly
// elsewhere, for NOTPRIMARY) and TIMEOUT never reaches here — the
// executing goroutine records the real outcome when it finishes.
func (s *Server) completeIdem(req Request, resp Response) {
	if req.Idem == nil || resp.Status == StatusBusy ||
		resp.Status == StatusDiskFull || resp.Status == StatusNotPrimary {
		return
	}
	s.idem.store(*req.Idem, EncodeResponse(nil, req.Op, resp))
}

// executeWithDeadline runs one request under the configured execution
// deadline. On expiry the caller gets StatusTimeout while the request
// keeps running detached; its real outcome still lands in the dedup
// window (for IDEM writes), so a retry observes the original execution.
func (s *Server) executeWithDeadline(req Request, sp *trace.Span) Response {
	if s.cfg.RequestTimeout <= 0 {
		resp := s.handle(req, sp)
		s.completeIdem(req, resp)
		return resp
	}
	ch := make(chan Response, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if m := s.cfg.Metrics; m != nil {
					m.panics.Add(1)
				}
				s.logf("server: %s handler panic: %v\n%s", OpName(req.Op), r, debug.Stack())
				ch <- Response{Status: StatusErr, Msg: "server: internal error"}
			}
		}()
		// A detached execution (deadline already expired) keeps recording
		// into sp — every span counter is atomic, so the record the server
		// already emitted was merely a consistent partial view.
		resp := s.handle(req, sp)
		s.completeIdem(req, resp)
		ch <- resp
	}()
	timer := time.NewTimer(s.cfg.RequestTimeout)
	defer timer.Stop()
	select {
	case resp := <-ch:
		return resp
	case <-timer.C:
		if m := s.cfg.Metrics; m != nil {
			m.timeouts.Add(1)
		}
		return Response{Status: StatusTimeout}
	}
}

// noteWriteErr classifies a response-write failure: a deadline miss means
// the peer is too slow to accept responses and the connection is being
// evicted to protect the handler budget.
func (s *Server) noteWriteErr(err error) {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		if m := s.cfg.Metrics; m != nil {
			m.evicted.Add(1)
		}
		s.logf("server: evicting slow client: %v", err)
	}
}

// writeResponse frames and writes one response body under the write
// deadline; false means the connection is dead.
func (s *Server) writeResponse(conn net.Conn, bw *bufio.Writer, body []byte) bool {
	if s.cfg.WriteTimeout > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	}
	if err := WriteFrame(bw, body); err != nil {
		s.noteWriteErr(err)
		return false
	}
	return true
}

// admit tries to take an in-flight token without blocking.
func (s *Server) admit() bool {
	select {
	case s.gate <- struct{}{}:
		if m := s.cfg.Metrics; m != nil {
			m.inflight.Add(1)
		}
		return true
	default:
		return false
	}
}

func (s *Server) release() {
	<-s.gate
	if m := s.cfg.Metrics; m != nil {
		m.inflight.Add(-1)
	}
}

// handle executes one admitted request against the index. A non-nil sp
// records the request's phases: admission here, the index phases inside
// core.Concurrent's traced entry points.
func (s *Server) handle(req Request, sp *trace.Span) Response {
	switch req.Op {
	case OpPing:
		return Response{Status: StatusOK, Data: req.Data}
	case OpStats:
		if sp == nil {
			return s.handleStats()
		}
		t0 := time.Now()
		resp := s.handleStats()
		sp.AddPhase(trace.PhaseExecute, time.Since(t0))
		return resp
	case OpTopology:
		// Only routers own a shard map; a single node is not a cluster.
		return Response{Status: StatusErr, Msg: "server: no topology (standalone node, not a router)"}
	}
	// Read barrier: a BARRIER envelope asks "answer only from a timeline
	// at least as new as (MinTerm, MinLSN)". Checked before admission — a
	// stale replica answers from two atomic loads, without spending a gate
	// token the primary-bound retry will need elsewhere. LSNs are
	// comparable only within one term, so the comparison is lexicographic:
	// a node above the barrier's term serves unconditionally (promotion
	// with synchronous acks preserves every acknowledged older-term
	// write), a node at the term must have applied the LSN, and a node
	// below the term is always stale — its numerically-high LSNs may name
	// a divergent pre-promotion suffix. A current primary is never stale:
	// its term is the newest and its AppliedLSN ≥ every LSN it ever acked.
	if req.MinLSN > 0 || req.MinTerm > 0 {
		term := s.curTerm()
		stale := term < req.MinTerm
		lsn := s.idx.AppliedLSN()
		if !stale && term == req.MinTerm {
			stale = lsn < req.MinLSN
		}
		if stale {
			if m := s.cfg.Metrics; m != nil {
				m.stale.Add(1)
			}
			return Response{Status: StatusStale, LSN: lsn, Term: term}
		}
	}
	var admitStart time.Time
	if sp != nil {
		admitStart = time.Now()
	}
	admitted := s.admit()
	if sp != nil {
		sp.AddPhase(trace.PhaseAdmission, time.Since(admitStart))
	}
	if !admitted {
		resp := Response{Status: StatusBusy}
		if s.cfg.RetryAfterHint > 0 {
			ms := s.cfg.RetryAfterHint.Milliseconds()
			if ms < 1 {
				ms = 1
			}
			resp.RetryAfterMs = uint32(ms)
		}
		return resp
	}
	defer s.release()

	switch req.Op {
	case OpInsert:
		err := s.idx.InsertTraced(req.P, sp)
		if errors.Is(err, core.ErrDuplicate) {
			return Response{Status: StatusOK, Duplicate: true, LSN: s.idx.AppliedLSN(), Term: s.curTerm()}
		}
		if err != nil {
			return s.errResponse(err)
		}
		return Response{Status: StatusOK, LSN: s.idx.AppliedLSN(), Term: s.curTerm()}
	case OpDelete:
		found, err := s.idx.DeleteTraced(req.P, sp)
		if err != nil {
			return s.errResponse(err)
		}
		return Response{Status: StatusOK, Found: found, LSN: s.idx.AppliedLSN(), Term: s.curTerm()}
	case OpQuery3, OpQuery4:
		pts, err := s.idx.QueryTraced(nil, req.Rect, sp)
		if err != nil {
			return s.errResponse(err)
		}
		return Response{Status: StatusOK, Points: pts}
	case OpBatch:
		return s.handleBatch(req.Batch, sp)
	default:
		return Response{Status: StatusErr, Msg: fmt.Sprintf("server: unhandled opcode 0x%02x", req.Op)}
	}
}

// handleBatch submits the whole batch to the group-commit queue at once
// (one contiguous run, as few commits as MaxBatch allows) and folds the
// per-operation outcomes into result codes. A non-benign failure fails
// the whole request.
func (s *Server) handleBatch(entries []BatchEntry, sp *trace.Span) Response {
	if len(entries) == 0 {
		return Response{Status: StatusOK}
	}
	ops := make([]core.BatchOp, len(entries))
	for i, e := range entries {
		ops[i] = core.BatchOp{Delete: e.Kind == BatchDelete, P: e.P}
	}
	results := s.idx.ApplyBatchTraced(ops, sp)
	codes := make([]byte, len(results))
	for i, r := range results {
		switch {
		case r.Err == nil && (!ops[i].Delete || r.Found):
			codes[i] = BatchOK
		case r.Err == nil:
			codes[i] = BatchNotFound
		case errors.Is(r.Err, core.ErrDuplicate):
			codes[i] = BatchDup
		default:
			return s.errResponse(r.Err)
		}
	}
	return Response{Status: StatusOK, Results: codes, LSN: s.idx.AppliedLSN(), Term: s.curTerm()}
}

// curTerm is the node's replication term (0 on an un-replicated node).
// A term read after a write committed may run ahead of the term the
// write committed under; that only tightens the client's barrier, and
// synchronous replication guarantees every committed write is already
// part of any newer term's timeline.
func (s *Server) curTerm() uint64 {
	if s.cfg.Term == nil {
		return 0
	}
	return s.cfg.Term()
}

// StatsSnapshot is the JSON payload of a STATS response: the index's
// serving state plus, when the server has a Metrics, its full snapshot.
type StatsSnapshot struct {
	// UptimeS is the seconds since the server was constructed.
	UptimeS float64 `json:"uptime_s"`
	// Epoch is the index's current committed epoch.
	Epoch uint64 `json:"epoch"`
	// Len is the number of stored points.
	Len int `json:"len"`
	// InFlight is the number of admission-gate tokens held at the instant
	// of the snapshot — requests admitted but not yet answered.
	InFlight int `json:"in_flight"`
	// MaxInFlight is the admission-gate capacity.
	MaxInFlight int `json:"max_in_flight"`
	// IdemClients and IdemEntries size the idempotency dedup state:
	// tracked client sessions and remembered write outcomes.
	IdemClients int `json:"idem_clients"`
	IdemEntries int `json:"idem_entries"`
	// TraceSampleRate is the server's effective span-sampling rate
	// (0..1): 1 with a slow-query log armed, 1/interval with counter
	// sampling, 0 when only client-stamped envelopes are traced.
	TraceSampleRate float64 `json:"trace_sample_rate"`
	// AppliedLSN is the node's durable commit position — the value
	// barrier reads compare against. 0 on a non-durable (memory) stack.
	AppliedLSN uint64 `json:"applied_lsn"`
	// Repl is the node's replication identity (nil when the server was
	// built without a Repl callback, i.e. a standalone node).
	Repl *ReplInfo `json:"repl,omitempty"`
	// WriteBuffer is the write-buffer snapshot (nil when the server was
	// built without a WriteBuffer callback, i.e. an unbuffered node).
	WriteBuffer *obs.WriteBufferStats `json:"write_buffer,omitempty"`
	// Metrics is the server's metric snapshot (nil without a Metrics).
	// When spans have been sampled it includes the per-phase latency
	// quantiles, so rsload can print a phase breakdown from STATS alone.
	Metrics *MetricsSnapshot `json:"metrics,omitempty"`
}

func (s *Server) handleStats() Response {
	n, err := s.idx.Len()
	if err != nil {
		return s.errResponse(err)
	}
	snap := StatsSnapshot{
		UptimeS:         time.Since(s.start).Seconds(),
		Epoch:           s.idx.Epoch(),
		Len:             n,
		InFlight:        len(s.gate),
		MaxInFlight:     s.cfg.MaxInFlight,
		TraceSampleRate: s.traceRate(),
		AppliedLSN:      s.idx.AppliedLSN(),
	}
	snap.IdemClients, snap.IdemEntries = s.idem.stats()
	if s.cfg.Repl != nil {
		ri := s.cfg.Repl()
		snap.Repl = &ri
	}
	if s.cfg.WriteBuffer != nil {
		wb := s.cfg.WriteBuffer()
		snap.WriteBuffer = &wb
	}
	if m := s.cfg.Metrics; m != nil {
		ms := m.Snapshot()
		snap.Metrics = &ms
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return s.errResponse(err)
	}
	return Response{Status: StatusOK, Data: data}
}

// errResponse maps an execution error to its wire status. Three errors
// are flow control, not failures:
//
//   - core.ErrNotPrimary: this node is a replica — the client must
//     redirect the write, so the response carries no hint and is never
//     cached in the dedup window.
//   - eio.ErrNoSpace: the disk is full. The store is undamaged and reads
//     keep working; the write is retryable (an operator freeing space
//     un-wedges it), so it gets the BUSY-style retry hint.
//   - core.ErrReplicationStall: the commit gate timed out waiting for
//     replica acks. The write's outcome is UNKNOWN to the client (it is
//     durable locally but unacked downstream) — TIMEOUT is the one status
//     with exactly those retry semantics.
func (s *Server) errResponse(err error) Response {
	switch {
	case errors.Is(err, core.ErrNotPrimary):
		if m := s.cfg.Metrics; m != nil {
			m.notPrimary.Add(1)
		}
		return Response{Status: StatusNotPrimary}
	case errors.Is(err, eio.ErrNoSpace):
		if m := s.cfg.Metrics; m != nil {
			m.diskFull.Add(1)
		}
		resp := Response{Status: StatusDiskFull}
		if s.cfg.RetryAfterHint > 0 {
			ms := s.cfg.RetryAfterHint.Milliseconds()
			if ms < 1 {
				ms = 1
			}
			resp.RetryAfterMs = uint32(ms)
		}
		return resp
	case errors.Is(err, core.ErrReplicationStall):
		if m := s.cfg.Metrics; m != nil {
			m.timeouts.Add(1)
		}
		return Response{Status: StatusTimeout}
	}
	return Response{Status: StatusErr, Msg: err.Error()}
}
