package chaos

// Replica-aware chaos: a primary plus N read replicas, wired over the
// replication sub-protocol with the replica links routed through a
// netfault proxy, under verified load whose reads fan out across the
// replicas and whose writes follow the primary through promotions.
//
// Each cycle lands all three replication fault kinds:
//
//  1. replica-kill: a replica is SIGKILLed mid-stream and restarted on
//     its own store — it must resume (or re-clone) and catch up;
//  2. link-degrade: the replication link gets latency/jitter and every
//     replication connection is cut — streams must reconnect and resume
//     from the primary's backlog;
//  3. primary-kill-then-promote: the primary is SIGKILLed, a survivor is
//     promoted via the PROMOTE RPC (term bump, fencing), the dead
//     ex-primary rejoins as a replica of the new lineage (its diverged
//     store must be re-cloned), and the remaining replicas repoint.
//
// Acceptance is the same story as the single-node harness, extended to
// the fleet: zero lost or duplicated acked writes across every
// promotion (per-stripe read-your-writes verification keeps running
// through the failovers), every replica converges to the final
// primary's LSN within a bounded window, every drain exits clean, and
// the final primary's store is page-exact with zero leaks.

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"time"

	"rangesearch/internal/netfault"
	"rangesearch/internal/repl"
	"rangesearch/internal/server"
)

// ReplConfig tunes a replicated chaos run. ServerBin and Dir are
// required.
type ReplConfig struct {
	// ServerBin is the path to an rsserve binary.
	ServerBin string
	// Dir is a scratch directory for the fleet's stores (created).
	Dir string
	// Replicas is the number of read replicas next to the primary
	// (default 2).
	Replicas int
	// Cycles is the number of full fault cycles; every cycle includes a
	// replica kill, a link-degradation window, and a primary kill with
	// promotion (default 5, matching the acceptance bar of ≥5 promotions).
	Cycles int
	// Period is the dwell between fault phases (default 700ms).
	Period time.Duration
	// Workers / Pipeline size the load (defaults 4 / 4).
	Workers  int
	Pipeline int
	// Seed seeds the workload and fault RNGs (default 1).
	Seed int64
	// Latency/Jitter shape the replication link during the degradation
	// window (defaults 20ms / 10ms).
	Latency time.Duration
	Jitter  time.Duration
	// SyncReplicas is the -repl-sync value for every (potential) primary:
	// a write's OK waits for that many replica acks. The default (0)
	// means ALL replicas — that is what makes "zero lost acked writes
	// across a primary kill" a theorem rather than a race: every acked
	// write is durable on every replica, so any promoted successor has
	// it. Pass a negative value for fully asynchronous shipping (where a
	// primary SIGKILL may legitimately lose acked-but-unshipped writes,
	// so the read-your-writes verification would report losses).
	SyncReplicas int
	// RequestTimeout is passed to rsserve -request-timeout (default 5s).
	RequestTimeout time.Duration
	// ReadyTimeout bounds node startup, initial replica sync, and the
	// promote RPC retry loop (default 30s; replica bootstrap includes a
	// snapshot transfer).
	ReadyTimeout time.Duration
	// DrainTimeout bounds each node's SIGTERM drain (default 60s).
	DrainTimeout time.Duration
	// LoadGrace is how long the harness waits for the load generator
	// after stopping it (default 2m).
	LoadGrace time.Duration
	// StalenessMax bounds how long replicas may take to converge to the
	// final primary's LSN once writes stop (default 15s).
	StalenessMax time.Duration
	// Logf, when non-nil, receives progress lines. Nil discards.
	Logf func(format string, args ...interface{})
}

func (c ReplConfig) withDefaults() ReplConfig {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.Cycles <= 0 {
		c.Cycles = 5
	}
	if c.Period <= 0 {
		c.Period = 700 * time.Millisecond
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	switch {
	case c.SyncReplicas == 0:
		c.SyncReplicas = c.Replicas
	case c.SyncReplicas < 0:
		c.SyncReplicas = 0
	}
	if c.Latency <= 0 {
		c.Latency = 20 * time.Millisecond
	}
	if c.Jitter <= 0 {
		c.Jitter = 10 * time.Millisecond
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.ReadyTimeout <= 0 {
		c.ReadyTimeout = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 60 * time.Second
	}
	if c.LoadGrace <= 0 {
		c.LoadGrace = 2 * time.Minute
	}
	if c.StalenessMax <= 0 {
		c.StalenessMax = 15 * time.Second
	}
	return c
}

// ReplReport is the JSON result of a replicated chaos run.
type ReplReport struct {
	Cycles       int `json:"cycles"`
	ReplicaKills int `json:"replica_kills"`
	LinkFaults   int `json:"link_faults"`
	PrimaryKills int `json:"primary_kills"`
	Promotions   int `json:"promotions"`
	// FinalTerm is the fencing term after the last promotion; it must
	// equal Promotions (every promotion bumps it exactly once).
	FinalTerm uint64 `json:"final_term"`
	// ConvergeS is how long the replicas took to reach the final
	// primary's LSN after writes stopped.
	ConvergeS float64 `json:"converge_s"`

	Load  *server.LoadReport `json:"load"`
	Proxy netfault.Stats     `json:"proxy"`

	// DrainExits maps node name to its SIGTERM exit code; all must be 0.
	DrainExits map[string]int `json:"drain_exits"`
	// PostLeaked / PostPages / PostPoints re-verify the final primary's
	// drained store in-process (leaks must be 0).
	PostLeaked int `json:"post_leaked"`
	PostPages  int `json:"post_pages"`
	PostPoints int `json:"post_points"`
	// ReplicaPoints is each drained replica store's point count; after
	// convergence every entry must equal PostPoints.
	ReplicaPoints map[string]int `json:"replica_points"`

	DurationS float64 `json:"duration_s"`
	// Failures lists every acceptance violation the harness observed.
	Failures []string `json:"failures,omitempty"`
}

// Failed reports whether the run violated any acceptance criterion.
func (r *ReplReport) Failed() bool {
	return r.Load == nil || r.Load.Failed() || len(r.Failures) > 0
}

func (r *ReplReport) failf(format string, args ...interface{}) {
	r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
}

// replNode is one rsserve process of the fleet.
type replNode struct {
	name     string
	store    string
	addr     string // client protocol
	replAddr string // replication protocol
	out      *logBuffer
	proc     *exec.Cmd
	alive    bool
}

// rharness owns the fleet, the replication-link proxy, and the roles.
type rharness struct {
	cfg     ReplConfig
	nodes   []*replNode
	primary int             // index into nodes
	proxy   *netfault.Proxy // fronts the current primary's repl port
	rep     *ReplReport
}

func (h *rharness) logf(format string, args ...interface{}) {
	if h.cfg.Logf != nil {
		h.cfg.Logf(format, args...)
	}
}

// startNode spawns n. An empty replicateFrom starts it as a primary; the
// node always exposes its own repl port, so it can be promoted later (or
// ship to downstreams once promoted).
func (h *rharness) startNode(n *replNode, replicateFrom string) error {
	args := []string{
		"-addr", n.addr,
		"-store", n.store,
		"-repl-listen", n.replAddr,
		"-request-timeout", h.cfg.RequestTimeout.String(),
	}
	if replicateFrom != "" {
		args = append(args,
			"-replicate-from", replicateFrom,
			"-repl-boot-timeout", h.cfg.ReadyTimeout.String(),
		)
	}
	if h.cfg.SyncReplicas > 0 {
		args = append(args, "-repl-sync", fmt.Sprint(h.cfg.SyncReplicas))
	}
	cmd := exec.Command(h.cfg.ServerBin, args...)
	cmd.Stdout = n.out
	cmd.Stderr = n.out
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("chaos: start %s: %w", n.name, err)
	}
	n.proc = cmd
	n.alive = true
	deadline := time.Now().Add(h.cfg.ReadyTimeout)
	for time.Now().Before(deadline) {
		cl, err := server.Dial(n.addr, server.ClientOptions{DialTimeout: 200 * time.Millisecond})
		if err == nil {
			err = cl.Ping([]byte("chaos"))
			cl.Close()
			if err == nil {
				return nil
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	h.killNode(n)
	return fmt.Errorf("chaos: %s on %s never became ready", n.name, n.addr)
}

func (h *rharness) killNode(n *replNode) {
	if !n.alive {
		return
	}
	_ = n.proc.Process.Kill()
	_ = n.proc.Wait()
	n.alive = false
}

// stopNode SIGTERMs n and returns its exit code.
func (h *rharness) stopNode(n *replNode) (int, error) {
	if !n.alive {
		return 0, nil
	}
	n.alive = false
	if err := n.proc.Process.Signal(syscall.SIGTERM); err != nil {
		return -1, fmt.Errorf("chaos: SIGTERM %s: %w", n.name, err)
	}
	done := make(chan error, 1)
	go func() { done <- n.proc.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			return 0, nil
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode(), nil
		}
		return -1, err
	case <-time.After(h.cfg.DrainTimeout):
		_ = n.proc.Process.Kill()
		<-done
		return -1, fmt.Errorf("chaos: %s drain timed out", n.name)
	}
}

// retargetProxy points the replication-link proxy at the current
// primary's repl port (closing the previous proxy's listener, which cuts
// any stream still using it).
func (h *rharness) retargetProxy() error {
	if h.proxy != nil {
		h.rep.Proxy.Accepted += h.proxy.Stats().Accepted
		h.rep.Proxy.Cuts += h.proxy.Stats().Cuts
		h.proxy.Close()
	}
	p, err := netfault.New(h.nodes[h.primary].replAddr, netfault.Options{
		Seed: h.cfg.Seed,
		Logf: h.cfg.Logf,
	})
	if err != nil {
		return err
	}
	h.proxy = p
	return nil
}

// replicaKill SIGKILLs one replica mid-stream and restarts it on its own
// store; the restart must resume from the primary's backlog (or re-clone
// if it fell too far behind) before it answers its first Ping.
func (h *rharness) replicaKill(cycle int) error {
	victim := -1
	for off := 1; off < len(h.nodes); off++ {
		i := (h.primary + cycle + off) % len(h.nodes)
		if i != h.primary && h.nodes[i].alive {
			victim = i
			break
		}
	}
	if victim < 0 {
		return fmt.Errorf("chaos: no live replica to kill")
	}
	n := h.nodes[victim]
	h.logf("chaos: cycle %d: SIGKILL replica %s", cycle, n.name)
	h.killNode(n)
	h.rep.ReplicaKills++
	time.Sleep(h.cfg.Period)
	return h.startNode(n, h.proxy.Addr())
}

// linkFault degrades the replication link for one period: added latency
// and jitter on every chunk, plus a hard cut of all streams so the
// resume path runs under the degraded link.
func (h *rharness) linkFault(cycle int) {
	h.logf("chaos: cycle %d: degrading replication link (%v ± %v) and cutting streams",
		cycle, h.cfg.Latency, h.cfg.Jitter)
	h.proxy.SetLatency(h.cfg.Latency, h.cfg.Jitter)
	h.proxy.CutAll()
	h.rep.LinkFaults++
	time.Sleep(h.cfg.Period)
	h.proxy.SetLatency(0, 0)
}

// primaryKillPromote SIGKILLs the primary, promotes a survivor via the
// PROMOTE RPC, and repoints the rest of the fleet (including the dead
// ex-primary, whose diverged store must re-clone) at the new lineage.
func (h *rharness) primaryKillPromote(cycle int) error {
	old := h.nodes[h.primary]
	h.logf("chaos: cycle %d: SIGKILL primary %s", cycle, old.name)
	h.killNode(old)
	h.rep.PrimaryKills++

	succ := -1
	for off := 1; off < len(h.nodes); off++ {
		i := (h.primary + off) % len(h.nodes)
		if i != h.primary && h.nodes[i].alive {
			succ = i
			break
		}
	}
	if succ < 0 {
		return fmt.Errorf("chaos: cycle %d: no live replica to promote", cycle)
	}

	// The successor may still be inside a reconnect backoff toward the
	// dead primary; PROMOTE drains its apply queue and returns its new
	// identity. Retry within the ready budget.
	deadline := time.Now().Add(h.cfg.ReadyTimeout)
	var term, lsn uint64
	for {
		var err error
		term, lsn, err = repl.Promote(h.nodes[succ].replAddr, 5*time.Second)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: cycle %d: promote %s: %w", cycle, h.nodes[succ].name, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	h.primary = succ
	h.rep.Promotions++
	h.rep.FinalTerm = term
	h.logf("chaos: cycle %d: promoted %s to term %d at lsn %d", cycle, h.nodes[succ].name, term, lsn)

	if err := h.retargetProxy(); err != nil {
		return err
	}
	// Repoint survivors and resurrect the ex-primary as a replica of the
	// new lineage. Its store has writes the new primary never saw (acked
	// only to the harness's kill, never to a client after the promotion
	// point is irrelevant — divergence is expected), so the handshake
	// must force a re-clone rather than splice histories.
	for i, n := range h.nodes {
		if i == h.primary {
			continue
		}
		if n.alive {
			if code, err := h.stopNode(n); err != nil || code != 0 {
				h.logf("chaos: cycle %d: repoint drain of %s: code=%d err=%v", cycle, n.name, code, err)
			}
		}
		if err := h.startNode(n, h.proxy.Addr()); err != nil {
			return fmt.Errorf("chaos: cycle %d: repoint %s: %w", cycle, n.name, err)
		}
	}
	return nil
}

// nodeReplStats fetches one node's STATS repl section.
func nodeReplStats(addr string) (*server.ReplInfo, error) {
	cl, err := server.Dial(addr, server.ClientOptions{DialTimeout: 500 * time.Millisecond})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	raw, err := cl.Stats()
	if err != nil {
		return nil, err
	}
	var st server.StatsSnapshot
	if err := json.Unmarshal(raw, &st); err != nil {
		return nil, err
	}
	if st.Repl == nil {
		return nil, fmt.Errorf("no repl section in STATS from %s", addr)
	}
	return st.Repl, nil
}

// awaitConvergence waits (bounded by StalenessMax) until every replica's
// applied LSN reaches the primary's, then records how long it took.
func (h *rharness) awaitConvergence() error {
	start := time.Now()
	prim, err := nodeReplStats(h.nodes[h.primary].addr)
	if err != nil {
		return fmt.Errorf("primary stats: %w", err)
	}
	target := prim.AppliedLSN
	deadline := start.Add(h.cfg.StalenessMax)
	for {
		behind := ""
		for i, n := range h.nodes {
			if i == h.primary || !n.alive {
				continue
			}
			ri, err := nodeReplStats(n.addr)
			if err != nil {
				behind = fmt.Sprintf("%s: %v", n.name, err)
				break
			}
			if ri.AppliedLSN < target {
				behind = fmt.Sprintf("%s at lsn %d < %d", n.name, ri.AppliedLSN, target)
				break
			}
		}
		if behind == "" {
			h.rep.ConvergeS = time.Since(start).Seconds()
			h.logf("chaos: replicas converged to lsn %d in %.2fs", target, h.rep.ConvergeS)
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replicas not converged within %v: %s", h.cfg.StalenessMax, behind)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// RunRepl executes one replicated chaos run. A non-nil error means the
// harness itself broke; acceptance violations are reported via
// ReplReport.Failed.
func RunRepl(cfg ReplConfig) (*ReplReport, error) {
	cfg = cfg.withDefaults()
	if cfg.ServerBin == "" || cfg.Dir == "" {
		return nil, fmt.Errorf("chaos: ServerBin and Dir are required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}

	h := &rharness{
		cfg: cfg,
		rep: &ReplReport{
			Cycles:        cfg.Cycles,
			DrainExits:    map[string]int{},
			ReplicaPoints: map[string]int{},
		},
	}
	for i := 0; i <= cfg.Replicas; i++ {
		name := fmt.Sprintf("n%d", i)
		addr, err := freePort()
		if err != nil {
			return nil, err
		}
		replAddr, err := freePort()
		if err != nil {
			return nil, err
		}
		h.nodes = append(h.nodes, &replNode{
			name:     name,
			store:    filepath.Join(cfg.Dir, name+".db"),
			addr:     addr,
			replAddr: replAddr,
			out:      &logBuffer{logf: cfg.Logf, tag: name},
		})
	}
	defer func() {
		for _, n := range h.nodes {
			h.killNode(n)
		}
		if h.proxy != nil {
			h.proxy.Close()
		}
	}()

	h.logf("chaos: repl run: replicas=%d cycles=%d period=%v seed=%d workers=%d sync=%d",
		cfg.Replicas, cfg.Cycles, cfg.Period, cfg.Seed, cfg.Workers, cfg.SyncReplicas)

	if err := h.startNode(h.nodes[0], ""); err != nil {
		return nil, err
	}
	if err := h.retargetProxy(); err != nil {
		return nil, err
	}
	for _, n := range h.nodes[1:] {
		if err := h.startNode(n, h.proxy.Addr()); err != nil {
			return nil, err
		}
	}
	h.logf("chaos: fleet up: primary %s, %d replicas via repl proxy %s",
		h.nodes[0].addr, cfg.Replicas, h.proxy.Addr())

	// The verified load runs for the whole fault schedule: reads fan out
	// across every node (session barriers keep read-your-writes sound on
	// replicas), writes follow the primary through each promotion via the
	// failover rotation. The schedule, not a guessed duration, ends it.
	allAddrs := make([]string, len(h.nodes))
	for i, n := range h.nodes {
		allAddrs[i] = n.addr
	}
	stop := make(chan struct{})
	loadDone := make(chan struct{})
	var loadRep *server.LoadReport
	var loadErr error
	start := time.Now()
	go func() {
		defer close(loadDone)
		loadRep, loadErr = server.RunLoad(server.LoadConfig{
			Addr:          h.nodes[0].addr,
			Workers:       cfg.Workers,
			Pipeline:      cfg.Pipeline,
			Duration:      time.Hour, // backstop; Stop ends the run
			Stop:          stop,
			Domain:        1 << 16,
			Seed:          cfg.Seed,
			Verify:        true,
			Resilient:     true,
			ReadAddrs:     allAddrs,
			FailoverAddrs: allAddrs,
			Retry: server.RetryPolicy{
				MaxAttempts: 120,
				BaseDelay:   5 * time.Millisecond,
				MaxDelay:    250 * time.Millisecond,
			},
			Client: server.ClientOptions{DialTimeout: time.Second, IOTimeout: 10 * time.Second},
		})
	}()

	var schedErr error
	for cycle := 1; cycle <= cfg.Cycles && schedErr == nil; cycle++ {
		time.Sleep(cfg.Period)
		if schedErr = h.replicaKill(cycle); schedErr != nil {
			break
		}
		time.Sleep(cfg.Period)
		h.linkFault(cycle)
		time.Sleep(cfg.Period)
		schedErr = h.primaryKillPromote(cycle)
	}
	time.Sleep(cfg.Period) // settle: let retries land before stopping

	close(stop)
	select {
	case <-loadDone:
	case <-time.After(cfg.LoadGrace):
		return nil, fmt.Errorf("chaos: load generator hung after stop")
	}
	if schedErr != nil {
		return nil, schedErr
	}
	if loadErr != nil {
		return nil, fmt.Errorf("chaos: load: %w", loadErr)
	}
	h.rep.Load = loadRep

	// Each promotion must have bumped the fencing term exactly once —
	// the lineage count and the term agree or fencing is broken.
	if h.rep.FinalTerm != uint64(h.rep.Promotions) {
		h.rep.failf("final term %d != %d promotions", h.rep.FinalTerm, h.rep.Promotions)
	}

	// Bounded staleness: with writes stopped, every replica must reach
	// the primary's LSN within the staleness budget.
	if err := h.awaitConvergence(); err != nil {
		h.rep.failf("%v", err)
	}

	// Drain the fleet (replicas first, primary last) and re-verify the
	// stores: the primary must be leak-free and page-exact; the replicas
	// must hold checksum-clean files with exactly the primary's points.
	for i, n := range h.nodes {
		if i == h.primary {
			continue
		}
		code, err := h.stopNode(n)
		if err != nil {
			h.rep.failf("drain %s: %v", n.name, err)
		}
		h.rep.DrainExits[n.name] = code
		if code != 0 {
			h.rep.failf("drain %s: exit %d", n.name, code)
		}
	}
	prim := h.nodes[h.primary]
	code, err := h.stopNode(prim)
	if err != nil {
		h.rep.failf("drain %s: %v", prim.name, err)
	}
	h.rep.DrainExits[prim.name] = code
	if code != 0 {
		h.rep.failf("drain %s: exit %d", prim.name, code)
	}

	points, pages, leaked, err := inspectStore(prim.store, true)
	if err != nil {
		h.rep.failf("post-mortem %s: %v", prim.name, err)
	} else {
		h.rep.PostPoints, h.rep.PostPages, h.rep.PostLeaked = points, pages, leaked
		if leaked != 0 {
			h.rep.failf("final primary %s leaked %d pages", prim.name, leaked)
		}
	}
	for i, n := range h.nodes {
		if i == h.primary {
			continue
		}
		// A drained replica legitimately holds pages its primary freed
		// (frees are never shipped), so only checksums and the point
		// count are asserted here.
		points, _, _, err := inspectStore(n.store, false)
		if err != nil {
			h.rep.failf("post-mortem %s: %v", n.name, err)
			continue
		}
		h.rep.ReplicaPoints[n.name] = points
		if points != h.rep.PostPoints {
			h.rep.failf("%s holds %d points, primary holds %d", n.name, points, h.rep.PostPoints)
		}
	}

	h.rep.Proxy.Accepted += h.proxy.Stats().Accepted
	h.rep.Proxy.Cuts += h.proxy.Stats().Cuts
	h.rep.DurationS = time.Since(start).Seconds()
	h.logf("chaos: repl done: promotions=%d term=%d replica_kills=%d link_faults=%d ops=%d failovers=%d replica_reads=%d points=%d failures=%d",
		h.rep.Promotions, h.rep.FinalTerm, h.rep.ReplicaKills, h.rep.LinkFaults,
		h.rep.Load.Ops, h.rep.Load.Failovers, h.rep.Load.ReplicaReads, h.rep.PostPoints, len(h.rep.Failures))
	return h.rep, nil
}

// inspectStore reopens a drained store in-process: WAL recovery (a no-op
// after a clean drain), point count, full-file checksum verification,
// and — when leakCheck is set — page-exact reachability.
func inspectStore(storePath string, leakCheck bool) (points, pages, leaked int, err error) {
	raw, err := os.ReadFile(storePath + ".manifest.json")
	if err != nil {
		return 0, 0, 0, err
	}
	var m struct {
		Durable bool   `json:"durable"`
		Hdr     uint64 `json:"hdr"`
		Anchor  uint64 `json:"anchor"`
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		return 0, 0, 0, fmt.Errorf("manifest: %w", err)
	}
	if !m.Durable {
		return 0, 0, 0, fmt.Errorf("store is not durable")
	}
	rep := &Report{}
	if err := postMortemOpen(storePath, m.Hdr, m.Anchor, leakCheck, rep); err != nil {
		return 0, 0, 0, err
	}
	return rep.PostPoints, rep.PostPages, rep.PostLeaked, nil
}
