package chaos

import (
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// buildRsserve compiles the real server binary into a temp dir so the
// harness kills an actual process, not a test double.
func buildRsserve(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "rsserve")
	cmd := exec.Command("go", "build", "-o", bin, "rangesearch/cmd/rsserve")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build rsserve: %v\n%s", err, out)
	}
	return bin
}

// TestChaosKillRecover is the end-to-end kill-and-recover gate in
// miniature: a few SIGKILL/restart cycles under verified load must lose
// nothing, duplicate nothing, and leave a scrub-clean durable store.
// `make chaos` runs the full ≥10-cycle version via cmd/rschaos.
func TestChaosKillRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real server binary; skipped in -short")
	}
	bin := buildRsserve(t)
	store := filepath.Join(t.TempDir(), "chaos.store")

	rep, err := Run(Config{
		ServerBin: bin,
		StorePath: store,
		Cycles:    3,
		Period:    500 * time.Millisecond,
		Workers:   4,
		Pipeline:  4,
		Seed:      42,
		Latency:   200 * time.Microsecond,
		Jitter:    300 * time.Microsecond,
		// Tracing stays live through every kill and recovery: sampled
		// spans must never compromise the exactly-once story.
		TraceSample: 0.05,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatalf("chaos.Run: %v", err)
	}
	t.Logf("chaos: kills=%d restarts=%d ops=%d reconnects=%d resent=%d unknown=%d boot_scrubs=%d points=%d pages=%d",
		rep.Kills, rep.Restarts, rep.Load.Ops, rep.Load.Reconnects, rep.Load.Resent,
		rep.Load.UnknownWrites, rep.BootScrubs, rep.PostPoints, rep.PostPages)

	if rep.Failed() {
		t.Fatalf("chaos run failed: drain_exit=%d leaked=%d load: proto=%d consistency=%d transport=%d first=%s",
			rep.FinalDrainExit, rep.PostLeaked,
			rep.Load.ProtoErrors, rep.Load.ConsistencyErrors, rep.Load.TransportErrors, rep.Load.FirstError)
	}
	if rep.Kills != 3 || rep.Restarts != 3 {
		t.Fatalf("kills=%d restarts=%d, want 3/3", rep.Kills, rep.Restarts)
	}
	if rep.Load.Ops == 0 || rep.Load.Writes == 0 {
		t.Fatalf("chaos load did no work: %+v", rep.Load)
	}
	// Kills sever every proxied connection, so each worker reconnects at
	// least once per kill it survives.
	if rep.Load.Reconnects == 0 {
		t.Fatal("no reconnects recorded; the kills exercised nothing")
	}
	// Tracing was on for the whole run: stamped requests survived the
	// kills (possibly via retry) and came back traced.
	if rep.Load.TracedOps == 0 {
		t.Fatal("tracing was enabled but no traced ops completed")
	}
}
