package chaos

import (
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// buildRsserve compiles the real server binary into a temp dir so the
// harness kills an actual process, not a test double.
func buildRsserve(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "rsserve")
	cmd := exec.Command("go", "build", "-o", bin, "rangesearch/cmd/rsserve")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build rsserve: %v\n%s", err, out)
	}
	return bin
}

// TestChaosKillRecover is the end-to-end kill-and-recover gate in
// miniature: a few SIGKILL/restart cycles under verified load must lose
// nothing, duplicate nothing, and leave a scrub-clean durable store.
// `make chaos` runs the full ≥10-cycle version via cmd/rschaos.
func TestChaosKillRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real server binary; skipped in -short")
	}
	bin := buildRsserve(t)
	store := filepath.Join(t.TempDir(), "chaos.store")

	rep, err := Run(Config{
		ServerBin: bin,
		StorePath: store,
		Cycles:    3,
		Period:    500 * time.Millisecond,
		Workers:   4,
		Pipeline:  4,
		Seed:      42,
		Latency:   200 * time.Microsecond,
		Jitter:    300 * time.Microsecond,
		// Tracing stays live through every kill and recovery: sampled
		// spans must never compromise the exactly-once story.
		TraceSample: 0.05,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatalf("chaos.Run: %v", err)
	}
	t.Logf("chaos: kills=%d restarts=%d ops=%d reconnects=%d resent=%d unknown=%d boot_scrubs=%d points=%d pages=%d",
		rep.Kills, rep.Restarts, rep.Load.Ops, rep.Load.Reconnects, rep.Load.Resent,
		rep.Load.UnknownWrites, rep.BootScrubs, rep.PostPoints, rep.PostPages)

	if rep.Failed() {
		t.Fatalf("chaos run failed: drain_exit=%d leaked=%d load: proto=%d consistency=%d transport=%d first=%s",
			rep.FinalDrainExit, rep.PostLeaked,
			rep.Load.ProtoErrors, rep.Load.ConsistencyErrors, rep.Load.TransportErrors, rep.Load.FirstError)
	}
	if rep.Kills != 3 || rep.Restarts != 3 {
		t.Fatalf("kills=%d restarts=%d, want 3/3", rep.Kills, rep.Restarts)
	}
	if rep.Load.Ops == 0 || rep.Load.Writes == 0 {
		t.Fatalf("chaos load did no work: %+v", rep.Load)
	}
	// Kills sever every proxied connection, so each worker reconnects at
	// least once per kill it survives.
	if rep.Load.Reconnects == 0 {
		t.Fatal("no reconnects recorded; the kills exercised nothing")
	}
	// Tracing was on for the whole run: stamped requests survived the
	// kills (possibly via retry) and came back traced.
	if rep.Load.TracedOps == 0 {
		t.Fatal("tracing was enabled but no traced ops completed")
	}
}

// TestChaosWriteBuffered reruns the kill-and-recover gate with rsserve
// in write-optimized mode (-write-buffer): acknowledged writes live in
// the delta buffer plus the sidecar journal until a flush, so every
// SIGKILL lands on state the WAL has never seen and the restart must
// recover it by journal replay. The verified load's per-worker stripe
// models make the check end to end: a buffered write that was acked and
// then lost (or double-applied by replay) is a consistency error.
func TestChaosWriteBuffered(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real server binary; skipped in -short")
	}
	bin := buildRsserve(t)
	store := filepath.Join(t.TempDir(), "chaos-wbuf.store")

	rep, err := Run(Config{
		ServerBin: bin,
		StorePath: store,
		Cycles:    3,
		Period:    500 * time.Millisecond,
		Workers:   4,
		Pipeline:  4,
		Seed:      43,
		Latency:   200 * time.Microsecond,
		Jitter:    300 * time.Microsecond,
		// Thresholds high enough that no size/age flush races the kill:
		// each SIGKILL should land on a non-empty buffer, forcing real
		// journal replays.
		WriteBuffer:    true,
		WriteBufferOps: 4096,
		WriteBufferAge: 30 * time.Second,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatalf("chaos.Run: %v", err)
	}
	t.Logf("chaos-wbuf: kills=%d restarts=%d replays=%d ops=%d writes=%d reconnects=%d resent=%d boot_scrubs=%d points=%d",
		rep.Kills, rep.Restarts, rep.JournalReplays, rep.Load.Ops, rep.Load.Writes,
		rep.Load.Reconnects, rep.Load.Resent, rep.BootScrubs, rep.PostPoints)

	if rep.Failed() {
		t.Fatalf("chaos-wbuf run failed: drain_exit=%d leaked=%d load: proto=%d consistency=%d transport=%d first=%s",
			rep.FinalDrainExit, rep.PostLeaked,
			rep.Load.ProtoErrors, rep.Load.ConsistencyErrors, rep.Load.TransportErrors, rep.Load.FirstError)
	}
	if rep.Kills != 3 || rep.Restarts != 3 {
		t.Fatalf("kills=%d restarts=%d, want 3/3", rep.Kills, rep.Restarts)
	}
	if rep.Load.Ops == 0 || rep.Load.Writes == 0 {
		t.Fatalf("chaos load did no work: %+v", rep.Load)
	}
	// The point of the buffered variant: at least one restart must have
	// recovered acked writes from the journal, or the kills only ever hit
	// an empty buffer and the replay path went untested.
	if rep.JournalReplays == 0 {
		t.Fatal("no journal replays recorded; kills never landed on buffered state")
	}
}
