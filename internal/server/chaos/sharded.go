package chaos

// Sharded chaos: an x-range-partitioned rsserve fleet behind a real
// rsrouter process, under verified load aimed at the router, while shard
// processes are SIGKILLed and restarted mid-traffic.
//
// The run exercises the router's whole failure surface at once: a killed
// shard's sub-requests exhaust the router's shard-client retries and
// surface as BUSY/TIMEOUT to the load generator, whose idempotent retries
// re-route through the router onto the recovered shard and deduplicate
// there — so "zero lost or duplicated acked writes" holds across the
// extra hop. Each restart reopens the shard's store through WAL crash
// recovery while traffic to the other shards keeps flowing (queries that
// do not overlap the dead shard's x-range are unaffected by construction).
//
// Acceptance: the verified load reports zero protocol and consistency
// errors, the router and every shard drain clean on SIGTERM, every shard
// store is leak-free and checksum-clean, and the shards' point counts sum
// to exactly the fleet total the router reported.

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"rangesearch/internal/server"
)

// ShardedConfig tunes a sharded chaos run. ServerBin, RouterBin and Dir
// are required.
type ShardedConfig struct {
	// ServerBin is the path to an rsserve binary; RouterBin to rsrouter.
	ServerBin string
	RouterBin string
	// Dir is a scratch directory for the shard stores (created).
	Dir string
	// Shards is the fleet size (default 3).
	Shards int
	// Kills is the number of SIGKILL/restart cycles; victims rotate
	// round-robin across the shards (default 3).
	Kills int
	// Period is the dwell between fault phases (default 700ms).
	Period time.Duration
	// Workers / Pipeline size the load (defaults 4 / 4).
	Workers  int
	Pipeline int
	// Seed seeds the workload RNG (default 1).
	Seed int64
	// Domain is the coordinate domain [0, Domain) the load draws from;
	// shard bounds split it evenly (default 1<<16).
	Domain int64
	// RequestTimeout is passed to rsserve -request-timeout (default 5s).
	RequestTimeout time.Duration
	// ReadyTimeout bounds each process's startup (default 15s).
	ReadyTimeout time.Duration
	// DrainTimeout bounds each SIGTERM drain (default 60s).
	DrainTimeout time.Duration
	// LoadGrace is how long the harness waits for the load generator
	// after stopping it (default 2m).
	LoadGrace time.Duration
	// Logf, when non-nil, receives progress lines. Nil discards.
	Logf func(format string, args ...interface{})
}

func (c ShardedConfig) withDefaults() ShardedConfig {
	if c.Shards <= 0 {
		c.Shards = 3
	}
	if c.Kills <= 0 {
		c.Kills = 3
	}
	if c.Period <= 0 {
		c.Period = 700 * time.Millisecond
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Domain <= 0 {
		c.Domain = 1 << 16
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.ReadyTimeout <= 0 {
		c.ReadyTimeout = 15 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 60 * time.Second
	}
	if c.LoadGrace <= 0 {
		c.LoadGrace = 2 * time.Minute
	}
	return c
}

// ShardedReport is the JSON result of a sharded chaos run.
type ShardedReport struct {
	Shards int    `json:"shards"`
	Spec   string `json:"spec"`
	Kills  int    `json:"kills"`

	Load *server.LoadReport `json:"load"`

	// RouterLen is the fleet-total point count the router's STATS
	// reported after the load stopped; ShardPoints are the drained
	// stores' own counts, which must sum to it.
	RouterLen   int            `json:"router_len"`
	ShardPoints map[string]int `json:"shard_points"`
	// DrainExits maps process name ("router", "shard0", ...) to its
	// SIGTERM exit code; all must be 0.
	DrainExits map[string]int `json:"drain_exits"`
	// Leaked is the total page-leak count across every shard store.
	Leaked int `json:"leaked"`

	DurationS float64 `json:"duration_s"`
	// Failures lists every acceptance violation the harness observed.
	Failures []string `json:"failures,omitempty"`
}

// Failed reports whether the run violated any acceptance criterion.
func (r *ShardedReport) Failed() bool {
	return r.Load == nil || r.Load.Failed() || len(r.Failures) > 0
}

func (r *ShardedReport) failf(format string, args ...interface{}) {
	r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
}

// shardProc is one child process of the sharded fleet.
type shardProc struct {
	name  string
	store string // empty for the router
	addr  string
	args  []string
	out   *logBuffer
	proc  *exec.Cmd
	alive bool
}

// sharness owns the sharded fleet.
type sharness struct {
	cfg    ShardedConfig
	shards []*shardProc
	router *shardProc
	rep    *ShardedReport
}

func (h *sharness) logf(format string, args ...interface{}) {
	if h.cfg.Logf != nil {
		h.cfg.Logf(format, args...)
	}
}

// startProc spawns p (shard or router) and waits until it answers a Ping.
func (h *sharness) startProc(bin string, p *shardProc) error {
	cmd := exec.Command(bin, p.args...)
	cmd.Stdout = p.out
	cmd.Stderr = p.out
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("chaos: start %s: %w", p.name, err)
	}
	p.proc = cmd
	p.alive = true
	deadline := time.Now().Add(h.cfg.ReadyTimeout)
	for time.Now().Before(deadline) {
		cl, err := server.Dial(p.addr, server.ClientOptions{DialTimeout: 200 * time.Millisecond})
		if err == nil {
			err = cl.Ping([]byte("chaos"))
			cl.Close()
			if err == nil {
				return nil
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	h.killProc(p)
	return fmt.Errorf("chaos: %s on %s never became ready", p.name, p.addr)
}

func (h *sharness) killProc(p *shardProc) {
	if !p.alive {
		return
	}
	_ = p.proc.Process.Kill()
	_ = p.proc.Wait()
	p.alive = false
}

// stopProc SIGTERMs p and returns its exit code (drain must be clean).
func (h *sharness) stopProc(p *shardProc) (int, error) {
	if !p.alive {
		return 0, nil
	}
	p.alive = false
	done := make(chan error, 1)
	if err := p.proc.Process.Signal(syscall.SIGTERM); err != nil {
		return -1, fmt.Errorf("chaos: SIGTERM %s: %w", p.name, err)
	}
	go func() { done <- p.proc.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			return 0, nil
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode(), nil
		}
		return -1, err
	case <-time.After(h.cfg.DrainTimeout):
		_ = p.proc.Process.Kill()
		<-done
		return -1, fmt.Errorf("chaos: %s drain timed out", p.name)
	}
}

// routerLen asks the router's STATS for the fleet-total point count.
func routerLen(addr string) (int, error) {
	cl, err := server.Dial(addr, server.ClientOptions{DialTimeout: time.Second})
	if err != nil {
		return 0, err
	}
	defer cl.Close()
	raw, err := cl.Stats()
	if err != nil {
		return 0, err
	}
	var st struct {
		Len int `json:"len"`
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		return 0, err
	}
	return st.Len, nil
}

// RunSharded executes one sharded chaos run. A non-nil error means the
// harness itself broke; acceptance violations are reported via
// ShardedReport.Failed.
func RunSharded(cfg ShardedConfig) (*ShardedReport, error) {
	cfg = cfg.withDefaults()
	if cfg.ServerBin == "" || cfg.RouterBin == "" || cfg.Dir == "" {
		return nil, fmt.Errorf("chaos: ServerBin, RouterBin and Dir are required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}

	h := &sharness{
		cfg: cfg,
		rep: &ShardedReport{
			Shards:      cfg.Shards,
			DrainExits:  map[string]int{},
			ShardPoints: map[string]int{},
		},
	}
	defer func() {
		for _, s := range h.shards {
			h.killProc(s)
		}
		if h.router != nil {
			h.killProc(h.router)
		}
	}()

	// Even x-split of the load's domain: shard i ends at Domain·(i+1)/N,
	// the last covers the rest (including everything outside the domain).
	var specParts []string
	for i := 0; i < cfg.Shards; i++ {
		name := fmt.Sprintf("shard%d", i)
		addr, err := freePort()
		if err != nil {
			return nil, err
		}
		s := &shardProc{
			name:  name,
			store: filepath.Join(cfg.Dir, name+".db"),
			addr:  addr,
			out:   &logBuffer{logf: cfg.Logf, tag: name},
		}
		s.args = []string{
			"-addr", s.addr,
			"-store", s.store,
			"-request-timeout", cfg.RequestTimeout.String(),
		}
		h.shards = append(h.shards, s)
		if i < cfg.Shards-1 {
			bound := cfg.Domain * int64(i+1) / int64(cfg.Shards)
			specParts = append(specParts, fmt.Sprintf("x<%d@%s", bound, s.addr))
		} else {
			specParts = append(specParts, "rest@"+s.addr)
		}
		if err := h.startProc(cfg.ServerBin, s); err != nil {
			return nil, err
		}
	}
	spec := strings.Join(specParts, ",")
	h.rep.Spec = spec

	raddr, err := freePort()
	if err != nil {
		return nil, err
	}
	h.router = &shardProc{
		name: "router",
		addr: raddr,
		out:  &logBuffer{logf: cfg.Logf, tag: "rsrouter"},
		args: []string{
			"-addr", raddr,
			"-shards", spec,
			// A killed shard stays down for a full period; give the shard
			// clients enough retry budget to bridge it so most sub-requests
			// land after the restart instead of surfacing TIMEOUT.
			"-shard-attempts", "60",
		},
	}
	if err := h.startProc(cfg.RouterBin, h.router); err != nil {
		return nil, err
	}
	h.logf("chaos: sharded fleet up: router %s fronting %d shards (%s)", raddr, cfg.Shards, spec)

	// The verified load talks ONLY to the router for the whole schedule;
	// its idempotent retries are what turn a mid-kill TIMEOUT into an
	// exactly-once write on the recovered shard.
	stop := make(chan struct{})
	loadDone := make(chan struct{})
	var loadRep *server.LoadReport
	var loadErr error
	start := time.Now()
	go func() {
		defer close(loadDone)
		loadRep, loadErr = server.RunLoad(server.LoadConfig{
			Addr:      raddr,
			Workers:   cfg.Workers,
			Pipeline:  cfg.Pipeline,
			Duration:  time.Hour, // backstop; Stop ends the run
			Stop:      stop,
			Domain:    cfg.Domain,
			Seed:      cfg.Seed,
			Verify:    true,
			Resilient: true,
			Retry: server.RetryPolicy{
				MaxAttempts: 120,
				BaseDelay:   5 * time.Millisecond,
				MaxDelay:    250 * time.Millisecond,
			},
			Client: server.ClientOptions{DialTimeout: time.Second, IOTimeout: 10 * time.Second},
		})
	}()

	var schedErr error
	for kill := 1; kill <= cfg.Kills && schedErr == nil; kill++ {
		time.Sleep(cfg.Period)
		victim := h.shards[(kill-1)%cfg.Shards]
		h.logf("chaos: kill %d/%d: SIGKILL %s", kill, cfg.Kills, victim.name)
		h.killProc(victim)
		h.rep.Kills++
		time.Sleep(cfg.Period)
		if err := h.startProc(cfg.ServerBin, victim); err != nil {
			schedErr = fmt.Errorf("chaos: kill %d: restart: %w", kill, err)
		}
	}
	time.Sleep(cfg.Period) // settle: let retries land before stopping

	close(stop)
	select {
	case <-loadDone:
	case <-time.After(cfg.LoadGrace):
		return nil, fmt.Errorf("chaos: load generator hung after stop")
	}
	if schedErr != nil {
		return nil, schedErr
	}
	if loadErr != nil {
		return nil, fmt.Errorf("chaos: load: %w", loadErr)
	}
	h.rep.Load = loadRep

	// The router's aggregate view, before anything drains: the fleet
	// total the drained stores must account for exactly.
	n, err := routerLen(raddr)
	if err != nil {
		h.rep.failf("router stats: %v", err)
	}
	h.rep.RouterLen = n

	// Drain the router first (it holds client-side state only), then the
	// shards; every exit must be 0.
	code, err := h.stopProc(h.router)
	if err != nil {
		h.rep.failf("drain router: %v", err)
	}
	h.rep.DrainExits["router"] = code
	if code != 0 {
		h.rep.failf("drain router: exit %d", code)
	}
	for _, s := range h.shards {
		code, err := h.stopProc(s)
		if err != nil {
			h.rep.failf("drain %s: %v", s.name, err)
		}
		h.rep.DrainExits[s.name] = code
		if code != 0 {
			h.rep.failf("drain %s: exit %d", s.name, code)
		}
	}

	// Post-mortem every shard store: page-exact, checksum-clean, and the
	// point counts must sum to the router's fleet total.
	sum := 0
	for _, s := range h.shards {
		points, _, leaked, err := inspectStore(s.store, true)
		if err != nil {
			h.rep.failf("post-mortem %s: %v", s.name, err)
			continue
		}
		h.rep.ShardPoints[s.name] = points
		h.rep.Leaked += leaked
		if leaked != 0 {
			h.rep.failf("%s leaked %d pages", s.name, leaked)
		}
		sum += points
	}
	if sum != h.rep.RouterLen {
		h.rep.failf("shard stores hold %d points, router reported %d", sum, h.rep.RouterLen)
	}

	h.rep.DurationS = time.Since(start).Seconds()
	h.logf("chaos: sharded done: kills=%d ops=%d busy=%d timeouts=%d resent=%d points=%d failures=%d",
		h.rep.Kills, h.rep.Load.Ops, h.rep.Load.Busy, h.rep.Load.TimeoutRetries, h.rep.Load.Resent,
		h.rep.RouterLen, len(h.rep.Failures))
	return h.rep, nil
}
