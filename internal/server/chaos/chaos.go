// Package chaos is the kill-and-recover harness for the serving stack: it
// runs a real rsserve process on a durable store, drives verified rsload
// traffic at it through a netfault proxy, and SIGKILLs/restarts the
// server over and over while the traffic keeps flowing.
//
// Every layer of the fault-tolerance story is exercised at once and
// checked end to end:
//
//   - each SIGKILL lands mid-traffic; the restart reopens the store
//     through WAL crash recovery and the boot scrub reclaims any pages
//     the kill stranded mid-copy-on-write;
//   - the resilient clients reconnect through the proxy, re-send their
//     pipelines, and their idempotency IDs keep retried writes
//     exactly-once-applied;
//   - the per-worker stripe models verify read-your-writes across every
//     restart — an acked write must never disappear, a deleted point must
//     never resurrect;
//   - the final SIGTERM drain must exit 0 (rsserve itself verifies the
//     store is scrub-clean), and the harness re-verifies the file
//     in-process afterwards: page-exact reachability, zero leaks, clean
//     checksums.
//
// cmd/rschaos wraps this package for the command line; `make chaos` is
// the ≥10-cycle acceptance run.
package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"time"

	"rangesearch/internal/core"
	"rangesearch/internal/eio"
	"rangesearch/internal/netfault"
	"rangesearch/internal/server"
)

// Config tunes a chaos run. ServerBin and StorePath are required.
type Config struct {
	// ServerBin is the path to an rsserve binary.
	ServerBin string
	// StorePath is where the durable store lives; created fresh unless it
	// already exists (a fresh store enables exact verification).
	StorePath string
	// Cycles is the number of SIGKILL/restart cycles (default 10).
	Cycles int
	// Period is how long the server lives between kills (default 700ms).
	Period time.Duration
	// Workers / Pipeline size the load (defaults 4 / 4).
	Workers  int
	Pipeline int
	// Seed seeds the workload and fault RNGs (default 1).
	Seed int64
	// Latency/Jitter shape the proxy per chunk; zero means only the kills
	// and resets exercise the stack.
	Latency time.Duration
	Jitter  time.Duration
	// RequestTimeout is passed to rsserve -request-timeout (default 5s).
	RequestTimeout time.Duration
	// ReadyTimeout bounds how long a (re)started server may take to answer
	// its first Ping before the cycle is declared failed (default 15s).
	ReadyTimeout time.Duration
	// DrainTimeout bounds the closing SIGTERM drain (default 60s).
	DrainTimeout time.Duration
	// LoadGrace is how far past its nominal duration the load generator
	// may run before the harness declares it hung (default 2m).
	LoadGrace time.Duration
	// TraceSample, when > 0, runs the whole chaos schedule with request
	// tracing live on both sides: the load generator client-stamps TRACE
	// envelopes at this rate and rsserve is started with the same
	// -trace-sample, so spans flow through group commit, WAL recovery,
	// and reconnect storms while the kills land.
	TraceSample float64
	// SlowLog is passed to rsserve -slowlog when > 0.
	SlowLog time.Duration
	// WriteBuffer starts rsserve in write-optimized mode (-write-buffer):
	// acknowledged writes live in the in-memory buffer plus the sidecar
	// journal until a flush, so every SIGKILL additionally exercises
	// journal replay on the next boot — an acked buffered write that a
	// kill erased would surface as a consistency error in the verified
	// load.
	WriteBuffer bool
	// WriteBufferOps / WriteBufferAge are passed through when WriteBuffer
	// is set (defaults 4096 ops / 30s — thresholds high enough that kills
	// reliably land on a non-empty buffer).
	WriteBufferOps int
	WriteBufferAge time.Duration
	// Logf, when non-nil, receives progress lines. Nil discards.
	Logf func(format string, args ...interface{})
}

func (c Config) withDefaults() Config {
	if c.Cycles <= 0 {
		c.Cycles = 10
	}
	if c.Period <= 0 {
		c.Period = 700 * time.Millisecond
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.ReadyTimeout <= 0 {
		c.ReadyTimeout = 15 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 60 * time.Second
	}
	if c.LoadGrace <= 0 {
		c.LoadGrace = 2 * time.Minute
	}
	if c.WriteBuffer {
		if c.WriteBufferOps <= 0 {
			c.WriteBufferOps = 4096
		}
		if c.WriteBufferAge <= 0 {
			c.WriteBufferAge = 30 * time.Second
		}
	}
	return c
}

// Report is the JSON result of a chaos run.
type Report struct {
	Cycles     int `json:"cycles"`
	Kills      int `json:"kills"`
	Restarts   int `json:"restarts"`
	BootScrubs int `json:"boot_scrubs"` // restarts that reclaimed crash-leaked pages
	// JournalReplays is how many restarts recovered acked writes from the
	// write-buffer journal (always 0 unless Config.WriteBuffer).
	JournalReplays int     `json:"journal_replays,omitempty"`
	DurationS      float64 `json:"duration_s"`

	Load  *server.LoadReport `json:"load"`
	Proxy netfault.Stats     `json:"proxy"`

	// FinalDrainExit is the exit code of the closing SIGTERM drain; 0
	// means rsserve itself verified the store scrub-clean.
	FinalDrainExit int `json:"final_drain_exit"`
	// PostLeaked / PostPages are the harness's own post-mortem: leaked
	// page count (must be 0) and total pages verified in the file.
	PostLeaked int `json:"post_leaked"`
	PostPages  int `json:"post_pages"`
	// PostPoints is the number of points the reopened store holds.
	PostPoints int `json:"post_points"`
}

// Failed reports whether the run violated any acceptance criterion.
func (r *Report) Failed() bool {
	return r.Load == nil || r.Load.Failed() || r.FinalDrainExit != 0 || r.PostLeaked != 0
}

// logBuffer captures a child process's output while forwarding it to the
// harness log line by line.
type logBuffer struct {
	mu   sync.Mutex
	buf  bytes.Buffer
	logf func(format string, args ...interface{})
	tag  string
}

func (b *logBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	b.buf.Write(p)
	b.mu.Unlock()
	if b.logf != nil {
		for _, line := range strings.Split(strings.TrimRight(string(p), "\n"), "\n") {
			if line != "" {
				b.logf("%s: %s", b.tag, line)
			}
		}
	}
	return len(p), nil
}

func (b *logBuffer) count(substr string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return strings.Count(b.buf.String(), substr)
}

// harness owns the moving parts of one run.
type harness struct {
	cfg   Config
	addr  string // rsserve's own address
	proxy *netfault.Proxy
	out   *logBuffer
	proc  *exec.Cmd
}

func (h *harness) logf(format string, args ...interface{}) {
	if h.cfg.Logf != nil {
		h.cfg.Logf(format, args...)
	}
}

// freePort reserves an ephemeral port and releases it for the child to
// bind. The tiny race is acceptable for a test harness.
func freePort() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

// start spawns rsserve and waits until it answers a Ping.
func (h *harness) start() error {
	args := []string{
		"-addr", h.addr,
		"-store", h.cfg.StorePath,
		"-request-timeout", h.cfg.RequestTimeout.String(),
	}
	if h.cfg.TraceSample > 0 {
		args = append(args, "-trace-sample", fmt.Sprintf("%g", h.cfg.TraceSample))
	}
	if h.cfg.SlowLog > 0 {
		args = append(args, "-slowlog", h.cfg.SlowLog.String())
	}
	if h.cfg.WriteBuffer {
		args = append(args,
			"-write-buffer",
			"-write-buffer-ops", fmt.Sprint(h.cfg.WriteBufferOps),
			"-write-buffer-age", h.cfg.WriteBufferAge.String())
	}
	cmd := exec.Command(h.cfg.ServerBin, args...)
	cmd.Stdout = h.out
	cmd.Stderr = h.out
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("chaos: start %s: %w", h.cfg.ServerBin, err)
	}
	h.proc = cmd
	deadline := time.Now().Add(h.cfg.ReadyTimeout)
	for time.Now().Before(deadline) {
		cl, err := server.Dial(h.addr, server.ClientOptions{DialTimeout: 200 * time.Millisecond})
		if err == nil {
			err = cl.Ping([]byte("chaos"))
			cl.Close()
			if err == nil {
				return nil
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	_ = cmd.Process.Kill()
	_ = cmd.Wait()
	return fmt.Errorf("chaos: rsserve on %s never became ready", h.addr)
}

// kill SIGKILLs the server — no drain, no WAL flush beyond what group
// commit already synced — and resets every proxied connection so clients
// notice immediately.
func (h *harness) kill() error {
	if err := h.proc.Process.Kill(); err != nil {
		return fmt.Errorf("chaos: kill: %w", err)
	}
	_ = h.proc.Wait() // reap; exit status is meaningless after SIGKILL
	h.proxy.CutAll()
	return nil
}

// stopGracefully SIGTERMs the server and returns its exit code.
func (h *harness) stopGracefully() (int, error) {
	if err := h.proc.Process.Signal(syscall.SIGTERM); err != nil {
		return -1, fmt.Errorf("chaos: SIGTERM: %w", err)
	}
	done := make(chan error, 1)
	go func() { done <- h.proc.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			return 0, nil
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode(), nil
		}
		return -1, err
	case <-time.After(h.cfg.DrainTimeout):
		_ = h.proc.Process.Kill()
		<-done
		return -1, fmt.Errorf("chaos: drain timed out")
	}
}

// postMortem reopens the drained store in-process and re-verifies what
// rsserve's exit code already claimed: WAL recovery is a no-op, the tree
// plus transactional metadata reach every allocated page (zero leaks),
// and the file's checksums are clean.
func postMortem(storePath string, rep *Report) error {
	raw, err := os.ReadFile(storePath + ".manifest.json")
	if err != nil {
		return fmt.Errorf("chaos: post-mortem: %w", err)
	}
	var m struct {
		Durable bool       `json:"durable"`
		Hdr     eio.PageID `json:"hdr"`
		Anchor  eio.PageID `json:"anchor"`
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		return fmt.Errorf("chaos: post-mortem: manifest: %w", err)
	}
	if !m.Durable {
		return fmt.Errorf("chaos: post-mortem: store is not durable")
	}
	return postMortemOpen(storePath, uint64(m.Hdr), uint64(m.Anchor), true, rep)
}

// postMortemOpen is the reopen-and-verify core shared by the single-node
// and replicated harnesses: WAL recovery, point count, full-file
// checksum verification, and — when leakCheck is set — page-exact
// reachability. Results land in rep's Post* fields.
func postMortemOpen(storePath string, hdr, anchor uint64, leakCheck bool, rep *Report) error {
	fs, err := eio.OpenFileStore(storePath)
	if err != nil {
		return fmt.Errorf("chaos: post-mortem: %w", err)
	}
	defer fs.Close()
	tx, err := eio.OpenTxStore(fs, eio.PageID(anchor))
	if err != nil {
		return fmt.Errorf("chaos: post-mortem: WAL recovery: %w", err)
	}
	idx, err := core.OpenThreeSided(tx, eio.PageID(hdr))
	if err != nil {
		return fmt.Errorf("chaos: post-mortem: open tree: %w", err)
	}
	n, err := idx.Len()
	if err != nil {
		return fmt.Errorf("chaos: post-mortem: len: %w", err)
	}
	rep.PostPoints = n
	if leakCheck {
		reachable, err := idx.Tree().AppendAllPages(nil)
		if err != nil {
			return fmt.Errorf("chaos: post-mortem: reachability: %w", err)
		}
		meta, err := tx.MetaPages()
		if err != nil {
			return fmt.Errorf("chaos: post-mortem: meta pages: %w", err)
		}
		leaks, err := eio.FindLeaks(tx, append(reachable, meta...))
		if err != nil {
			return fmt.Errorf("chaos: post-mortem: leak check: %w", err)
		}
		rep.PostLeaked = len(leaks.Leaked)
	}

	vrep, err := eio.VerifyFile(storePath)
	if err != nil {
		return fmt.Errorf("chaos: post-mortem: verify: %w", err)
	}
	rep.PostPages = int(vrep.NPages)
	if vrep.Damaged() {
		return fmt.Errorf("chaos: post-mortem: file damaged: %d bad pages", len(vrep.BadPages))
	}
	return nil
}

// Run executes one full chaos run and returns its report. A non-nil
// error means the harness itself broke (could not spawn, store missing);
// acceptance violations are reported via Report.Failed so the caller can
// still inspect the full report.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.ServerBin == "" || cfg.StorePath == "" {
		return nil, fmt.Errorf("chaos: ServerBin and StorePath are required")
	}

	addr, err := freePort()
	if err != nil {
		return nil, err
	}
	h := &harness{
		cfg:  cfg,
		addr: addr,
		out:  &logBuffer{logf: cfg.Logf, tag: "rsserve"},
	}
	h.proxy, err = netfault.New(addr, netfault.Options{
		Seed:    cfg.Seed,
		Latency: cfg.Latency,
		Jitter:  cfg.Jitter,
		Logf:    cfg.Logf,
	})
	if err != nil {
		return nil, err
	}
	defer h.proxy.Close()

	if err := h.start(); err != nil {
		return nil, err
	}
	// Echo the effective parameters — above all the seed, so a failing
	// run's exact kill/fault schedule can be replayed from its log alone.
	h.logf("chaos: run: cycles=%d period=%v seed=%d workers=%d pipeline=%d latency=%v jitter=%v",
		cfg.Cycles, cfg.Period, cfg.Seed, cfg.Workers, cfg.Pipeline, cfg.Latency, cfg.Jitter)
	h.logf("chaos: rsserve up on %s, proxied at %s", h.addr, h.proxy.Addr())

	rep := &Report{Cycles: cfg.Cycles}
	start := time.Now()

	// The verified workload runs through the proxy for the whole kill
	// schedule plus one settle period at each end.
	loadDur := time.Duration(cfg.Cycles+2) * cfg.Period
	loadDone := make(chan struct{})
	var loadRep *server.LoadReport
	var loadErr error
	go func() {
		defer close(loadDone)
		loadRep, loadErr = server.RunLoad(server.LoadConfig{
			Addr:        h.proxy.Addr(),
			Workers:     cfg.Workers,
			Pipeline:    cfg.Pipeline,
			Duration:    loadDur,
			Domain:      1 << 16,
			Seed:        cfg.Seed,
			Verify:      true,
			Resilient:   true,
			TraceSample: cfg.TraceSample,
			Retry: server.RetryPolicy{
				MaxAttempts: 60,
				BaseDelay:   5 * time.Millisecond,
				MaxDelay:    250 * time.Millisecond,
			},
			Client: server.ClientOptions{DialTimeout: time.Second, IOTimeout: 10 * time.Second},
		})
	}()

	for cycle := 1; cycle <= cfg.Cycles; cycle++ {
		time.Sleep(cfg.Period)
		h.logf("chaos: cycle %d/%d: SIGKILL", cycle, cfg.Cycles)
		if err := h.kill(); err != nil {
			return nil, err
		}
		rep.Kills++
		if err := h.start(); err != nil {
			return nil, fmt.Errorf("chaos: cycle %d: %w", cycle, err)
		}
		rep.Restarts++
	}

	select {
	case <-loadDone:
	case <-time.After(loadDur + cfg.LoadGrace):
		return nil, fmt.Errorf("chaos: load generator hung")
	}
	if loadErr != nil {
		return nil, fmt.Errorf("chaos: load: %w", loadErr)
	}
	rep.Load = loadRep

	h.logf("chaos: kills done, draining with SIGTERM")
	exit, err := h.stopGracefully()
	if err != nil {
		return nil, err
	}
	rep.FinalDrainExit = exit
	rep.Proxy = h.proxy.Stats()
	rep.BootScrubs = h.out.count("boot scrub: reclaimed")
	rep.JournalReplays = h.out.count("write buffer: replayed")
	rep.DurationS = time.Since(start).Seconds()

	if err := postMortem(cfg.StorePath, rep); err != nil {
		return nil, err
	}
	// A clean drain folds the buffer into the base and truncates the
	// journal; bytes left behind would mean acked writes the tree never
	// absorbed.
	if cfg.WriteBuffer {
		if fi, err := os.Stat(cfg.StorePath + ".wbuf"); err == nil && fi.Size() > 0 {
			return nil, fmt.Errorf("chaos: post-mortem: write-buffer journal still holds %d bytes after drain", fi.Size())
		}
	}
	h.logf("chaos: done: kills=%d ops=%d reconnects=%d resent=%d boot_scrubs=%d leaked=%d points=%d",
		rep.Kills, rep.Load.Ops, rep.Load.Reconnects, rep.Load.Resent, rep.BootScrubs, rep.PostLeaked, rep.PostPoints)
	return rep, nil
}
