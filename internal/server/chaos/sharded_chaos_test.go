package chaos

import (
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// buildRsrouter compiles the real router binary so the sharded harness
// routes through an actual process, not an in-test Router.
func buildRsrouter(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "rsrouter")
	cmd := exec.Command("go", "build", "-o", bin, "rangesearch/cmd/rsrouter")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build rsrouter: %v\n%s", err, out)
	}
	return bin
}

// TestChaosSharded is the sharded kill-and-recover gate in miniature: a
// 3-shard fleet behind a real rsrouter, verified load aimed at the
// router, one shard SIGKILLed and restarted per cycle. Nothing acked may
// be lost or duplicated, the fleet must drain clean, and the shard
// stores must account for the router's fleet total exactly. `make
// shard-smoke` runs the scripted version.
func TestChaosSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real server and router binaries; skipped in -short")
	}
	serverBin := buildRsserve(t)
	routerBin := buildRsrouter(t)

	rep, err := RunSharded(ShardedConfig{
		ServerBin: serverBin,
		RouterBin: routerBin,
		Dir:       t.TempDir(),
		Shards:    3,
		Kills:     2,
		Period:    400 * time.Millisecond,
		Workers:   4,
		Pipeline:  4,
		Seed:      42,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatalf("chaos.RunSharded: %v", err)
	}
	t.Logf("sharded chaos: kills=%d ops=%d busy=%d timeout_retries=%d resent=%d unknown=%d router_len=%d shard_points=%v",
		rep.Kills, rep.Load.Ops, rep.Load.Busy, rep.Load.TimeoutRetries,
		rep.Load.Resent, rep.Load.UnknownWrites, rep.RouterLen, rep.ShardPoints)

	if rep.Failed() {
		t.Fatalf("sharded chaos failed: failures=%v load: proto=%d consistency=%d transport=%d first=%s",
			rep.Failures, rep.Load.ProtoErrors, rep.Load.ConsistencyErrors,
			rep.Load.TransportErrors, rep.Load.FirstError)
	}
	if rep.Kills != 2 {
		t.Fatalf("kills=%d, want 2", rep.Kills)
	}
	if rep.Load.Ops == 0 || rep.Load.Writes == 0 {
		t.Fatalf("sharded load did no work: %+v", rep.Load)
	}
	// Every shard holds some of the evenly-spread keyspace, so after a
	// verified run each store should be non-degenerately populated.
	if len(rep.ShardPoints) != 3 {
		t.Fatalf("post-mortem covered %d shard stores, want 3", len(rep.ShardPoints))
	}
}
