package chaos

import (
	"path/filepath"
	"testing"
	"time"
)

// TestChaosReplFailover is the replicated kill-and-recover gate in
// miniature: a primary plus two semi-sync replicas under verified load,
// with each cycle killing a replica, degrading the replication link, and
// killing the primary with a promotion. Nothing acked may be lost or
// duplicated, the fencing term must track the promotion count, and the
// fleet must converge and drain clean. `make chaos-repl` runs the full
// ≥5-promotion version via cmd/rschaos.
func TestChaosReplFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real server fleet; skipped in -short")
	}
	bin := buildRsserve(t)

	rep, err := RunRepl(ReplConfig{
		ServerBin: bin,
		Dir:       filepath.Join(t.TempDir(), "fleet"),
		Replicas:  2,
		Cycles:    2,
		Period:    500 * time.Millisecond,
		Workers:   4,
		Pipeline:  4,
		Seed:      42,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatalf("chaos.RunRepl: %v", err)
	}
	t.Logf("chaos: promotions=%d term=%d replica_kills=%d link_faults=%d ops=%d failovers=%d replica_reads=%d stale_fallbacks=%d converge=%.2fs points=%d",
		rep.Promotions, rep.FinalTerm, rep.ReplicaKills, rep.LinkFaults,
		rep.Load.Ops, rep.Load.Failovers, rep.Load.ReplicaReads,
		rep.Load.StaleFallbacks, rep.ConvergeS, rep.PostPoints)

	if rep.Failed() {
		t.Fatalf("repl chaos run failed: failures=%v load: proto=%d consistency=%d transport=%d first=%s",
			rep.Failures, rep.Load.ProtoErrors, rep.Load.ConsistencyErrors,
			rep.Load.TransportErrors, rep.Load.FirstError)
	}
	if rep.Promotions != 2 || rep.PrimaryKills != 2 || rep.ReplicaKills != 2 {
		t.Fatalf("promotions=%d primary_kills=%d replica_kills=%d, want 2/2/2",
			rep.Promotions, rep.PrimaryKills, rep.ReplicaKills)
	}
	if rep.Load.Ops == 0 || rep.Load.Writes == 0 {
		t.Fatalf("repl chaos load did no work: %+v", rep.Load)
	}
	// Reads fanned out across the fleet the whole time.
	if rep.Load.ReplicaReads == 0 {
		t.Fatal("no replica reads recorded; the read pool exercised nothing")
	}
	// Each primary kill severs the writers, who must reconnect along the
	// failover ring to the promoted node. Which signal routes them there
	// varies by timing — a refused dial, NOTPRIMARY from a live replica,
	// or STALE from a mis-aimed barrier read — so the invariant is that
	// recovery work happened at all, not which path it took.
	if rep.Load.Reconnects == 0 && rep.Load.Failovers == 0 {
		t.Fatal("no reconnects or failovers recorded; the promotions exercised nothing")
	}
}
