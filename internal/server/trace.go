package server

import (
	"fmt"
	"math"
	"strings"
	"time"

	"rangesearch/internal/eio"
	"rangesearch/internal/trace"
)

// This file is the server side of request tracing: deciding which
// requests get a span, finishing spans after the response flushes, and
// the slow-query log.
//
// Overhead contract: an unsampled request allocates NO trace state — the
// decision costs at most one atomic counter add, and every traced code
// path below the decision is gated on a nil *trace.Span (asserted by
// TestUnsampledZeroAlloc). Only sampled requests pay for a span, an ID,
// per-phase clock reads, and the per-I/O span-sink adds.

// SpanRecorder receives the record of each sampled span after its
// response has flushed. obs.SpanRing (ring buffer behind the /spans
// endpoint) and obs.SpanWriter (JSONL spool) implement it. RecordSpan
// must be safe for concurrent use and must not block: it runs on the
// connection handler's goroutine.
type SpanRecorder interface {
	RecordSpan(trace.Record)
}

// sampleInterval converts a sampling rate (0..1] into a counter
// interval: every interval-th request is sampled. Rates above 1 and
// rate 1 both mean "every request"; 0 and below disable sampling.
func sampleInterval(rate float64) uint64 {
	if rate <= 0 {
		return 0
	}
	if rate >= 1 {
		return 1
	}
	return uint64(math.Ceil(1 / rate))
}

// startSpan decides whether the request gets a span. A client-stamped
// TRACE envelope with the sampled flag always wins; otherwise the
// server samples on its own when a slow-query log is armed (every
// request — a threshold log needs every span to exist before it knows
// which ones are slow) or by the counter-based TraceSample interval.
// The span's clock starts at start (the frame-read instant) so its wall
// time is the request's server-side wire latency.
func (s *Server) startSpan(req Request, start time.Time) *trace.Span {
	ti := req.Trace
	if ti != nil && ti.Sampled {
		return trace.NewAt(ti.ID, OpName(req.Op), start)
	}
	if s.cfg.SlowLog <= 0 &&
		(s.traceEvery == 0 || s.traceCounter.Add(1)%s.traceEvery != 0) {
		return nil
	}
	id := trace.NewID()
	if ti != nil {
		id = ti.ID
	}
	return trace.NewAt(id, OpName(req.Op), start)
}

// traceRate reports the effective server-side sampling rate for STATS.
func (s *Server) traceRate() float64 {
	if s.cfg.SlowLog > 0 {
		return 1
	}
	if s.traceEvery == 0 {
		return 0
	}
	return 1 / float64(s.traceEvery)
}

// completeSpan finishes sp after its response flushed: stamp wall time
// and status, feed the phase histograms, hand the record to the span
// sink, and emit the slow-query log line when the threshold is met.
func (s *Server) completeSpan(sp *trace.Span, req Request, resp Response) {
	sp.Finish(statusName(resp.Status))
	if m := s.cfg.Metrics; m != nil {
		m.observeSpan(sp)
	}
	if rec := s.cfg.Spans; rec != nil {
		rec.RecordSpan(sp.Record())
	}
	if s.cfg.SlowLog > 0 && sp.Wall() >= s.cfg.SlowLog {
		s.logSlow(sp, req, resp)
	}
}

// logSlow emits one line with the full span: every non-zero phase, the
// attributed block I/O, and the Theorem 6/7 allowance for the op so a
// reader can tell "slow because the disk was slow" from "slow because
// it did too many I/Os".
func (s *Server) logSlow(sp *trace.Span, req Request, resp Response) {
	var b strings.Builder
	fmt.Fprintf(&b, "server: slow %s %.3fms trace=%s status=%s",
		sp.Op(), float64(sp.Wall())/1e6, sp.ID(), statusName(resp.Status))
	for p := trace.Phase(0); p < trace.NumPhases; p++ {
		if d := sp.Phase(p); d > 0 {
			fmt.Fprintf(&b, " %s=%s", p, d)
		}
	}
	fmt.Fprintf(&b, " ios=%d", sp.IOs())
	if allow, ok := s.ioAllowance(req, len(resp.Points)); ok {
		fmt.Fprintf(&b, " allowance=%.1f", allow)
	}
	s.logf("%s", b.String())
}

// ioAllowance computes the paper's per-operation I/O budget for the
// request: log_B N + ⌈t/B⌉ for a query with t reported points
// (Theorems 6/7), log_B N amortized per update (the Theorem 6 factor;
// multi-level structures like the 4-sided index multiply it by their
// level count), and the per-entry sum for a batch. The false return
// means the op has no I/O bound to compare against (ping, stats) or
// the index is too small for log_B N to mean anything.
func (s *Server) ioAllowance(req Request, t int) (float64, bool) {
	b := eio.BlockCapacity(s.idx.PageSize())
	if b < 2 {
		return 0, false
	}
	n, err := s.idx.Len()
	if err != nil || n < 2 {
		return 0, false
	}
	logBN := math.Log(float64(n)) / math.Log(float64(b))
	if logBN < 1 {
		logBN = 1
	}
	switch req.Op {
	case OpQuery3, OpQuery4:
		return logBN + math.Ceil(float64(t)/float64(b)), true
	case OpInsert, OpDelete:
		return logBN, true
	case OpBatch:
		return float64(len(req.Batch)) * logBN, true
	}
	return 0, false
}

// statusName renders a response status byte for span records and logs.
func statusName(st byte) string {
	switch st {
	case StatusOK:
		return "ok"
	case StatusErr:
		return "err"
	case StatusBusy:
		return "busy"
	case StatusTimeout:
		return "timeout"
	case StatusStale:
		return "stale"
	case StatusNotPrimary:
		return "notprimary"
	case StatusDiskFull:
		return "diskfull"
	}
	return fmt.Sprintf("status(0x%02x)", st)
}
