package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"rangesearch/internal/geom"
	"rangesearch/internal/obs"
)

// LoadConfig drives RunLoad, the closed-loop load generator behind
// cmd/rsload, the bench "serve" experiment, and the race-mode soak test.
type LoadConfig struct {
	// Addr is the server's TCP address.
	Addr string
	// Workers is the number of connections, each driven by one goroutine
	// (default 4).
	Workers int
	// Duration is how long to run (default 2s).
	Duration time.Duration
	// Pipeline is the per-connection window: a worker keeps up to this
	// many requests outstanding before reading a response (default 1,
	// i.e. strict request/response).
	Pipeline int
	// ReadFrac is the fraction of operations that are queries, in [0, 1]
	// (default 0.5).
	ReadFrac float64
	// DeleteFrac is the fraction of *write* operations that are deletes
	// (default 0.3). Deletes target points the worker knows are live, so
	// the index neither drains nor grows without bound.
	DeleteFrac float64
	// FourFrac is the fraction of queries that are 4-sided (default 0.5;
	// the rest are 3-sided).
	FourFrac float64
	// Domain is the coordinate range: x and y are drawn from
	// [0, Domain) (default 1 << 20). Each worker owns the x-stripe
	// x ≡ worker (mod Workers), so workers never write each other's
	// points and can verify reads against a local model.
	Domain int64
	// QuerySpan is the x-extent of generated query rectangles (default
	// Domain/64).
	QuerySpan int64
	// Seed seeds the per-worker RNGs (default 1).
	Seed int64
	// Verify, when set, checks every query result against the worker's
	// model of its own stripe: reported points in the stripe must exactly
	// match the live set (read-your-writes per connection). Mismatches
	// count as consistency errors.
	Verify bool
	// BatchEvery, when > 0, makes every Nth write a BATCH of BatchSize
	// mixed inserts/deletes instead of a single op.
	BatchEvery int
	// BatchSize is the number of entries per BATCH request (default 16).
	BatchSize int
	// Client is passed to Dial.
	Client ClientOptions
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 1
	}
	// For the fraction knobs, 0 means "default" and a negative value means
	// "really zero", so a pure-write or pure-insert mix stays expressible.
	c.ReadFrac = fracDefault(c.ReadFrac, 0.5)
	c.DeleteFrac = fracDefault(c.DeleteFrac, 0.3)
	c.FourFrac = fracDefault(c.FourFrac, 0.5)
	if c.Domain <= 0 {
		c.Domain = 1 << 20
	}
	if c.QuerySpan <= 0 {
		c.QuerySpan = c.Domain / 64
		if c.QuerySpan == 0 {
			c.QuerySpan = 1
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	return c
}

func fracDefault(v, def float64) float64 {
	switch {
	case v == 0:
		return def
	case v < 0:
		return 0
	case v > 1:
		return 1
	}
	return v
}

// OpLoadStats summarizes one operation kind in a LoadReport.
type OpLoadStats struct {
	Count  uint64  `json:"count"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MeanMs float64 `json:"mean_ms"`
}

// LoadReport is RunLoad's result: throughput, per-op latency quantiles,
// and the three error classes the acceptance gate cares about. It is the
// JSON payload cmd/rsload writes.
type LoadReport struct {
	Workers    int     `json:"workers"`
	Pipeline   int     `json:"pipeline"`
	DurationS  float64 `json:"duration_s"`
	Ops        uint64  `json:"ops"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	Reads      uint64  `json:"reads"`
	Writes     uint64  `json:"writes"`
	PointsRead uint64  `json:"points_read"`

	Busy              uint64 `json:"busy"`
	ProtoErrors       uint64 `json:"proto_errors"`
	ConsistencyErrors uint64 `json:"consistency_errors"`
	TransportErrors   uint64 `json:"transport_errors"`

	PerOp map[string]OpLoadStats `json:"per_op"`

	// VerifyMode records how query results were checked: "exact" (the
	// index started empty, so each worker's stripe model is the complete
	// truth), "containment" (the index was pre-populated, so only
	// this-run inserts and deletes are checked), or "" with Verify off.
	VerifyMode string `json:"verify_mode,omitempty"`

	// FirstError preserves one representative failure for diagnostics.
	FirstError string `json:"first_error,omitempty"`
}

// Failed reports whether the run saw any error that should fail a gate
// (BUSY shedding is backpressure, not failure, and is excluded).
func (r *LoadReport) Failed() bool {
	return r.ProtoErrors > 0 || r.ConsistencyErrors > 0 || r.TransportErrors > 0
}

// loadWorker is one closed-loop connection driver.
type loadWorker struct {
	id  int
	cfg LoadConfig
	rng *rand.Rand
	cl  *Client

	// live is the worker's model of its own x-stripe: the points it has
	// inserted and not yet deleted. keys mirrors live for O(1) random
	// victim selection.
	live map[geom.Point]int // point -> index in keys
	keys []geom.Point
	// dead holds stripe points this worker deleted (and has not since
	// re-inserted); in containment mode a query returning one is an error.
	dead map[geom.Point]struct{}
	// strict selects exact-match query verification (index started
	// empty); otherwise only containment of this run's effects is checked.
	strict bool

	// window holds outstanding pipelined requests in send order.
	window []sentOp

	ops, reads, writes, pointsRead   uint64
	busy, protoErr, consistency, txp uint64
	firstErr                         error

	hist map[byte]*obs.Histogram
}

// sentOp remembers enough about an in-flight request to apply its
// response to the model and verify query results.
type sentOp struct {
	req   Request
	start time.Time
}

func (w *loadWorker) fail(class *uint64, err error) {
	*class++
	if w.firstErr == nil {
		w.firstErr = err
	}
}

// stripePoint draws a random point in this worker's x-stripe.
func (w *loadWorker) stripePoint() geom.Point {
	n := int64(w.cfg.Workers)
	x := w.rng.Int63n((w.cfg.Domain+n-1)/n)*n + int64(w.id)
	return geom.Point{X: x, Y: w.rng.Int63n(w.cfg.Domain)}
}

// nextRequest draws the next operation from the configured mix.
func (w *loadWorker) nextRequest() Request {
	if w.rng.Float64() < w.cfg.ReadFrac {
		xlo := w.rng.Int63n(w.cfg.Domain)
		xhi := xlo + w.cfg.QuerySpan
		ylo := w.rng.Int63n(w.cfg.Domain)
		if w.rng.Float64() < w.cfg.FourFrac {
			span := w.cfg.QuerySpan * 4
			yhi := ylo + span
			return Request{Op: OpQuery4, Rect: geom.Rect{XLo: xlo, XHi: xhi, YLo: ylo, YHi: yhi}}
		}
		return Request{Op: OpQuery3, Rect: geom.Rect{XLo: xlo, XHi: xhi, YLo: ylo, YHi: geom.MaxCoord}}
	}
	if w.cfg.BatchEvery > 0 && w.writes%uint64(w.cfg.BatchEvery) == 0 && w.writes > 0 {
		entries := make([]BatchEntry, 0, w.cfg.BatchSize)
		for i := 0; i < w.cfg.BatchSize; i++ {
			if len(w.keys) > 0 && w.rng.Float64() < w.cfg.DeleteFrac {
				entries = append(entries, BatchEntry{Kind: BatchDelete, P: w.keys[w.rng.Intn(len(w.keys))]})
			} else {
				entries = append(entries, BatchEntry{Kind: BatchInsert, P: w.stripePoint()})
			}
		}
		return Request{Op: OpBatch, Batch: entries}
	}
	if len(w.keys) > 0 && w.rng.Float64() < w.cfg.DeleteFrac {
		return Request{Op: OpDelete, P: w.keys[w.rng.Intn(len(w.keys))]}
	}
	return Request{Op: OpInsert, P: w.stripePoint()}
}

// modelInsert / modelDelete maintain the live and dead sets.
func (w *loadWorker) modelInsert(p geom.Point) {
	delete(w.dead, p)
	if _, ok := w.live[p]; ok {
		return
	}
	w.live[p] = len(w.keys)
	w.keys = append(w.keys, p)
}

func (w *loadWorker) modelDelete(p geom.Point) {
	i, ok := w.live[p]
	if !ok {
		return
	}
	last := len(w.keys) - 1
	w.keys[i] = w.keys[last]
	w.live[w.keys[i]] = i
	w.keys = w.keys[:last]
	delete(w.live, p)
	w.dead[p] = struct{}{}
}

// inStripe reports whether p belongs to this worker's x-stripe.
func (w *loadWorker) inStripe(p geom.Point) bool {
	return p.X%int64(w.cfg.Workers) == int64(w.id) && p.X >= 0
}

// expectStripe returns the model's points inside rect that belong to this
// worker's stripe, sorted for comparison.
func (w *loadWorker) expectStripe(rect geom.Rect) []geom.Point {
	var out []geom.Point
	for p := range w.live {
		if p.X >= rect.XLo && p.X <= rect.XHi && p.Y >= rect.YLo && p.Y <= rect.YHi {
			out = append(out, p)
		}
	}
	sortPoints(out)
	return out
}

func sortPoints(ps []geom.Point) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].X != ps[j].X {
			return ps[i].X < ps[j].X
		}
		return ps[i].Y < ps[j].Y
	})
}

// applyResponse folds one response into the model and error counters.
func (w *loadWorker) applyResponse(s sentOp, resp Response, err error) {
	lat := time.Since(s.start)
	if err != nil {
		w.fail(&w.txp, err)
		return
	}
	w.hist[s.req.Op].Observe(uint64(lat))
	w.ops++
	switch resp.Status {
	case StatusBusy:
		w.busy++
		return
	case StatusErr:
		w.fail(&w.protoErr, fmt.Errorf("%s: server error: %s", OpName(s.req.Op), resp.Msg))
		return
	}
	switch s.req.Op {
	case OpInsert:
		w.writes++
		if w.cfg.Verify {
			// The stripe is exclusive to this worker, so the server must
			// report a duplicate exactly when the model already holds the
			// point. In containment mode a duplicate of a point the model
			// never saw is a pre-existing point — learn it instead.
			_, wasLive := w.live[s.req.P]
			if wasLive && !resp.Duplicate {
				w.fail(&w.consistency, fmt.Errorf("insert %v: not a duplicate, but model holds it live", s.req.P))
			}
			_, wasDead := w.dead[s.req.P]
			if resp.Duplicate && !wasLive && (w.strict || wasDead) {
				w.fail(&w.consistency, fmt.Errorf("insert %v: unexpected duplicate (live=%v dead=%v)", s.req.P, wasLive, wasDead))
			}
		}
		w.modelInsert(s.req.P)
	case OpDelete:
		w.writes++
		if w.cfg.Verify {
			_, wasLive := w.live[s.req.P]
			if wasLive != resp.Found {
				w.fail(&w.consistency, fmt.Errorf("delete %v: found=%v, model live=%v", s.req.P, resp.Found, wasLive))
			}
		}
		w.modelDelete(s.req.P)
	case OpBatch:
		w.writes++
		if len(resp.Results) != len(s.req.Batch) {
			w.fail(&w.protoErr, fmt.Errorf("batch: %d results for %d entries", len(resp.Results), len(s.req.Batch)))
			return
		}
		for i, e := range s.req.Batch {
			if e.Kind == BatchDelete {
				if w.cfg.Verify {
					_, wasLive := w.live[e.P]
					got := resp.Results[i] == BatchOK
					if wasLive != got {
						w.fail(&w.consistency, fmt.Errorf("batch delete %v: code=%d, model live=%v", e.P, resp.Results[i], wasLive))
					}
				}
				w.modelDelete(e.P)
			} else {
				if w.cfg.Verify {
					_, wasLive := w.live[e.P]
					_, wasDead := w.dead[e.P]
					dup := resp.Results[i] == BatchDup
					if wasLive && !dup {
						w.fail(&w.consistency, fmt.Errorf("batch insert %v: not a duplicate, but model holds it live", e.P))
					}
					if dup && !wasLive && (w.strict || wasDead) {
						w.fail(&w.consistency, fmt.Errorf("batch insert %v: unexpected duplicate", e.P))
					}
				}
				w.modelInsert(e.P)
			}
		}
	case OpQuery3, OpQuery4:
		w.reads++
		w.pointsRead += uint64(len(resp.Points))
		if w.cfg.Verify {
			w.verifyQuery(s.req, resp.Points)
		}
	}
}

// verifyQuery checks a query result against the worker's stripe model.
// In strict mode (index started empty) the result restricted to this
// worker's stripe must equal the model's live set in the rectangle. In
// containment mode (pre-populated index) only this run's effects are
// checked: every model-live point in the rectangle must appear, and no
// point this worker deleted may appear.
func (w *loadWorker) verifyQuery(req Request, pts []geom.Point) {
	if w.strict {
		var got []geom.Point
		for _, p := range pts {
			if w.inStripe(p) {
				got = append(got, p)
			}
		}
		sortPoints(got)
		want := w.expectStripe(req.Rect)
		if !equalPoints(got, want) {
			w.fail(&w.consistency, fmt.Errorf("%s %+v: got %d stripe points, want %d", OpName(req.Op), req.Rect, len(got), len(want)))
		}
		return
	}
	got := make(map[geom.Point]struct{}, len(pts))
	for _, p := range pts {
		got[p] = struct{}{}
		if _, deleted := w.dead[p]; deleted {
			w.fail(&w.consistency, fmt.Errorf("%s %+v: returned %v, which this worker deleted", OpName(req.Op), req.Rect, p))
			return
		}
	}
	for _, p := range w.expectStripe(req.Rect) {
		if _, ok := got[p]; !ok {
			w.fail(&w.consistency, fmt.Errorf("%s %+v: missing %v, which this worker inserted", OpName(req.Op), req.Rect, p))
			return
		}
	}
}

func equalPoints(a, b []geom.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// run drives the closed loop until deadline, then drains the window.
func (w *loadWorker) run(deadline time.Time) {
	for time.Now().Before(deadline) && w.firstErr == nil {
		// Fill the pipeline window.
		for w.cl.Pending() < w.cfg.Pipeline {
			req := w.nextRequest()
			if err := w.cl.Send(req); err != nil {
				w.fail(&w.txp, err)
				return
			}
			w.window = append(w.window, sentOp{req: req, start: time.Now()})
		}
		resp, err := w.cl.Recv()
		s := w.window[0]
		w.window = w.window[:copy(w.window, w.window[1:])]
		w.applyResponse(s, resp, err)
		if err != nil {
			return
		}
	}
	// Drain outstanding responses so the connection closes cleanly.
	for len(w.window) > 0 && w.firstErr == nil {
		resp, err := w.cl.Recv()
		s := w.window[0]
		w.window = w.window[:copy(w.window, w.window[1:])]
		w.applyResponse(s, resp, err)
		if err != nil {
			return
		}
	}
}

// RunLoad runs the closed-loop workload against the server at cfg.Addr and
// aggregates every worker's counters and latency histograms into one
// report. Each worker owns a disjoint x-stripe (x mod Workers), which is
// what makes per-connection read-your-writes verification sound under
// concurrency: no other connection ever writes the stripe a worker checks.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	cfg = cfg.withDefaults()

	// Exact verification is sound only when the index starts empty (the
	// stripe model then is the whole truth about the stripe); against a
	// pre-populated store, fall back to checking containment of this
	// run's own effects.
	strict := true
	if cfg.Verify {
		probe, err := Dial(cfg.Addr, cfg.Client)
		if err != nil {
			return nil, fmt.Errorf("probe: %w", err)
		}
		raw, err := probe.Stats()
		probe.Close()
		if err != nil {
			return nil, fmt.Errorf("probe stats: %w", err)
		}
		var st StatsSnapshot
		if err := json.Unmarshal(raw, &st); err != nil {
			return nil, fmt.Errorf("probe stats: %w", err)
		}
		strict = st.Len == 0
	}

	workers := make([]*loadWorker, cfg.Workers)
	for i := range workers {
		cl, err := Dial(cfg.Addr, cfg.Client)
		if err != nil {
			for _, w := range workers[:i] {
				w.cl.Close()
			}
			return nil, fmt.Errorf("dial worker %d: %w", i, err)
		}
		workers[i] = &loadWorker{
			id:     i,
			cfg:    cfg,
			rng:    rand.New(rand.NewSource(cfg.Seed + int64(i)*7919)),
			cl:     cl,
			live:   map[geom.Point]int{},
			dead:   map[geom.Point]struct{}{},
			strict: strict,
			hist: map[byte]*obs.Histogram{
				OpInsert: {}, OpDelete: {}, OpQuery3: {}, OpQuery4: {}, OpBatch: {},
			},
		}
	}

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *loadWorker) {
			defer wg.Done()
			defer w.cl.Close()
			w.run(deadline)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &LoadReport{
		Workers:   cfg.Workers,
		Pipeline:  cfg.Pipeline,
		DurationS: elapsed.Seconds(),
		PerOp:     map[string]OpLoadStats{},
	}
	if cfg.Verify {
		rep.VerifyMode = "containment"
		if strict {
			rep.VerifyMode = "exact"
		}
	}
	merged := map[byte]*obs.Histogram{
		OpInsert: {}, OpDelete: {}, OpQuery3: {}, OpQuery4: {}, OpBatch: {},
	}
	for _, w := range workers {
		rep.Ops += w.ops
		rep.Reads += w.reads
		rep.Writes += w.writes
		rep.PointsRead += w.pointsRead
		rep.Busy += w.busy
		rep.ProtoErrors += w.protoErr
		rep.ConsistencyErrors += w.consistency
		rep.TransportErrors += w.txp
		if w.firstErr != nil && rep.FirstError == "" {
			rep.FirstError = fmt.Sprintf("worker %d: %v", w.id, w.firstErr)
		}
		for op, h := range w.hist {
			merged[op].Merge(h)
		}
	}
	if elapsed > 0 {
		rep.OpsPerSec = float64(rep.Ops) / elapsed.Seconds()
	}
	for op, h := range merged {
		snap := h.Snapshot()
		if snap.Count == 0 {
			continue
		}
		rep.PerOp[OpName(op)] = OpLoadStats{
			Count:  snap.Count,
			P50Ms:  float64(h.Quantile(0.50)) / 1e6,
			P99Ms:  float64(h.Quantile(0.99)) / 1e6,
			P999Ms: float64(h.Quantile(0.999)) / 1e6,
			MeanMs: snap.Mean / 1e6,
		}
	}
	return rep, nil
}
