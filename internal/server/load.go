package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"rangesearch/internal/dist"
	"rangesearch/internal/geom"
	"rangesearch/internal/obs"
	"rangesearch/internal/trace"
)

// LoadConfig drives RunLoad, the closed-loop load generator behind
// cmd/rsload, the bench "serve" experiment, and the race-mode soak test.
type LoadConfig struct {
	// Addr is the server's TCP address.
	Addr string
	// Workers is the number of connections, each driven by one goroutine
	// (default 4).
	Workers int
	// Duration is how long to run (default 2s).
	Duration time.Duration
	// Pipeline is the per-connection window: a worker keeps up to this
	// many requests outstanding before reading a response (default 1,
	// i.e. strict request/response).
	Pipeline int
	// ReadFrac is the fraction of operations that are queries, in [0, 1]
	// (default 0.5).
	ReadFrac float64
	// DeleteFrac is the fraction of *write* operations that are deletes
	// (default 0.3). Deletes target points the worker knows are live, so
	// the index neither drains nor grows without bound.
	DeleteFrac float64
	// FourFrac is the fraction of queries that are 4-sided (default 0.5;
	// the rest are 3-sided).
	FourFrac float64
	// Domain is the coordinate range: x and y are drawn from
	// [0, Domain) (default 1 << 20). Each worker owns the x-stripe
	// x ≡ worker (mod Workers), so workers never write each other's
	// points and can verify reads against a local model.
	Domain int64
	// QuerySpan is the x-extent of generated query rectangles (default
	// Domain/64).
	QuerySpan int64
	// Dist selects the write-key distribution over each worker's stripe:
	// "uniform" (default), "zipf" (YCSB zipfian ranks — a few hot x
	// columns absorb most writes; skew set by Theta), or "hotspot"
	// (90% of writes in the first 10% of the stripe). Queries stay
	// uniform: skew is a write phenomenon here.
	Dist string
	// Theta is the zipfian skew for Dist "zipf", in (0, 1); 0 means the
	// YCSB default 0.99.
	Theta float64
	// Seed seeds the per-worker RNGs (default 1).
	Seed int64
	// Verify, when set, checks every query result against the worker's
	// model of its own stripe: reported points in the stripe must exactly
	// match the live set (read-your-writes per connection). Mismatches
	// count as consistency errors.
	Verify bool
	// BatchEvery, when > 0, makes every Nth write a BATCH of BatchSize
	// mixed inserts/deletes instead of a single op.
	BatchEvery int
	// BatchSize is the number of entries per BATCH request (default 16).
	BatchSize int
	// Client is passed to Dial.
	Client ClientOptions
	// TraceSample, when > 0, stamps that fraction of requests with a
	// client-side TRACE envelope (random trace ID, sampled flag set), so
	// the server records a full span for them regardless of its own
	// sampling. The report then carries the client-observed latency of
	// exactly those requests next to the server's per-phase breakdown —
	// the difference is time spent on the wire and in kernel buffers.
	TraceSample float64
	// Resilient drives each worker through a ResilientClient: automatic
	// reconnect, idempotent write retries, BUSY/TIMEOUT absorption. The
	// run then survives server restarts, and verification accounts for
	// retried operations (whose Duplicate/Found flags may describe the
	// first execution) and for writes whose outcome stayed unknown.
	Resilient bool
	// Retry bounds the resilient clients' reconnects and retries.
	Retry RetryPolicy
	// ReadAddrs fans queries out across these replica addresses (barrier-
	// stamped, primary fallback on STALE). Requires Resilient. The
	// read-your-writes verification stays sound: the session barrier makes
	// a replica answer only once it has applied this worker's acked
	// writes.
	ReadAddrs []string
	// FailoverAddrs lists candidate primaries the workers rotate to on
	// NOTPRIMARY, so the run rides through a promotion. Requires
	// Resilient.
	FailoverAddrs []string
	// Stop, when non-nil, ends the run early when closed: workers finish
	// their outstanding window and the report covers what ran. A harness
	// whose fault schedule has variable length uses this instead of
	// guessing a Duration.
	Stop <-chan struct{}
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 1
	}
	// For the fraction knobs, 0 means "default" and a negative value means
	// "really zero", so a pure-write or pure-insert mix stays expressible.
	c.ReadFrac = fracDefault(c.ReadFrac, 0.5)
	c.DeleteFrac = fracDefault(c.DeleteFrac, 0.3)
	c.FourFrac = fracDefault(c.FourFrac, 0.5)
	if c.Domain <= 0 {
		c.Domain = 1 << 20
	}
	if c.QuerySpan <= 0 {
		c.QuerySpan = c.Domain / 64
		if c.QuerySpan == 0 {
			c.QuerySpan = 1
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.Dist == "" {
		c.Dist = "uniform"
	}
	if c.Theta == 0 {
		c.Theta = 0.99
	}
	return c
}

func fracDefault(v, def float64) float64 {
	switch {
	case v == 0:
		return def
	case v < 0:
		return 0
	case v > 1:
		return 1
	}
	return v
}

// OpLoadStats summarizes one operation kind in a LoadReport.
type OpLoadStats struct {
	Count  uint64  `json:"count"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MeanMs float64 `json:"mean_ms"`
}

// LoadReport is RunLoad's result: throughput, per-op latency quantiles,
// and the three error classes the acceptance gate cares about. It is the
// JSON payload cmd/rsload writes.
type LoadReport struct {
	Workers    int     `json:"workers"`
	Pipeline   int     `json:"pipeline"`
	DurationS  float64 `json:"duration_s"`
	Ops        uint64  `json:"ops"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	Reads      uint64  `json:"reads"`
	Writes     uint64  `json:"writes"`
	PointsRead uint64  `json:"points_read"`

	Busy              uint64 `json:"busy"`
	ProtoErrors       uint64 `json:"proto_errors"`
	ConsistencyErrors uint64 `json:"consistency_errors"`
	TransportErrors   uint64 `json:"transport_errors"`

	// Timeouts counts TIMEOUT responses that surfaced to workers (the
	// resilient client absorbs and retries most); UnknownWrites counts
	// write operations whose outcome stayed ambiguous — their points are
	// excluded from verification either way.
	Timeouts      uint64 `json:"timeouts,omitempty"`
	UnknownWrites uint64 `json:"unknown_writes,omitempty"`
	// Reconnects / Resent / BusyRetries / TimeoutRetries aggregate the
	// resilient clients' recovery work (zero in plain mode).
	Reconnects     uint64 `json:"reconnects,omitempty"`
	Resent         uint64 `json:"resent,omitempty"`
	BusyRetries    uint64 `json:"busy_retries,omitempty"`
	TimeoutRetries uint64 `json:"timeout_retries,omitempty"`
	// ReplicaReads / StaleFallbacks / ReplicaFallbacks / Failovers /
	// DiskFullRetries aggregate the replica read pool and failover work
	// (zero without ReadAddrs / FailoverAddrs).
	ReplicaReads     uint64 `json:"replica_reads,omitempty"`
	StaleFallbacks   uint64 `json:"stale_fallbacks,omitempty"`
	ReplicaFallbacks uint64 `json:"replica_fallbacks,omitempty"`
	Failovers        uint64 `json:"failovers,omitempty"`
	DiskFullRetries  uint64 `json:"disk_full_retries,omitempty"`

	PerOp map[string]OpLoadStats `json:"per_op"`

	// TracedOps counts requests sent with a client TRACE envelope;
	// Trace summarizes their client-observed latency and the server's
	// per-phase breakdown (nil when TraceSample is 0).
	TracedOps uint64          `json:"traced_ops,omitempty"`
	Trace     *TraceLoadStats `json:"trace,omitempty"`

	// ServerStats is the server's own STATS snapshot, fetched best-effort
	// after the run (nil if the server was unreachable).
	ServerStats *StatsSnapshot `json:"server_stats,omitempty"`

	// Cluster records the shard topology of a run verified through an
	// rsrouter (rsload -cluster). The load path is identical — the router
	// speaks the same protocol — so this is provenance, set by the caller
	// after a TOPOLOGY probe, not a behavior switch.
	Cluster *ClusterLoadInfo `json:"cluster,omitempty"`

	// VerifyMode records how query results were checked: "exact" (the
	// index started empty, so each worker's stripe model is the complete
	// truth), "containment" (the index was pre-populated, so only
	// this-run inserts and deletes are checked), or "" with Verify off.
	VerifyMode string `json:"verify_mode,omitempty"`

	// FirstError preserves one representative failure for diagnostics.
	FirstError string `json:"first_error,omitempty"`
}

// ClusterLoadInfo identifies the sharded fleet a load run went through:
// the shard count and the canonical shard-map spec from the router's
// TOPOLOGY frame (internal/router owns the codec, so the probe lives in
// cmd/rsload rather than here).
type ClusterLoadInfo struct {
	Shards int    `json:"shards"`
	Spec   string `json:"spec"`
}

// TraceLoadStats merges the two ends of the traced requests: what the
// client clocked wire to wire, and what the server attributed to each
// phase (from its final STATS snapshot, so it covers every span the
// server sampled, not only this client's).
type TraceLoadStats struct {
	ClientP50Ms  float64 `json:"client_p50_ms"`
	ClientP99Ms  float64 `json:"client_p99_ms"`
	ClientMeanMs float64 `json:"client_mean_ms"`
	// ServerPhases is keyed by trace phase name ("execute", "sync", ...).
	ServerPhases map[string]PhaseSnapshot `json:"server_phases,omitempty"`
}

// Failed reports whether the run saw any error that should fail a gate
// (BUSY shedding is backpressure, not failure, and is excluded).
func (r *LoadReport) Failed() bool {
	return r.ProtoErrors > 0 || r.ConsistencyErrors > 0 || r.TransportErrors > 0
}

// loadConn abstracts the two connection drivers a worker can run on: a
// plain pipelined Client (responses strictly FIFO) or a ResilientClient
// (responses identified per request, since retries permute the order).
// Either way, recv tells the worker which request the response answers
// and whether that request was ever ambiguously re-sent.
type loadConn interface {
	send(s sentOp) error
	recv() (s sentOp, resp Response, retried bool, err error)
	pending() int
	close() error
}

// sentOp remembers enough about an in-flight request to apply its
// response to the model and verify query results. ambig, set only on
// verified queries in resilient mode, is the set of points touched by
// writes that were still in flight when the query was sent: the read
// barrier covers acked writes only, so a replica-routed (or requeued)
// query may or may not observe those.
type sentOp struct {
	req   Request
	start time.Time
	ambig map[geom.Point]struct{}
}

// plainConn drives a *Client, pairing responses with its FIFO window.
type plainConn struct {
	cl     *Client
	window []sentOp
}

func (c *plainConn) send(s sentOp) error {
	if err := c.cl.Send(s.req); err != nil {
		return err
	}
	c.window = append(c.window, s)
	return nil
}

func (c *plainConn) recv() (sentOp, Response, bool, error) {
	resp, err := c.cl.Recv()
	s := c.window[0]
	c.window = c.window[:copy(c.window, c.window[1:])]
	return s, resp, false, err
}

func (c *plainConn) pending() int { return c.cl.Pending() }
func (c *plainConn) close() error { return c.cl.Close() }

// resilientConn drives a *ResilientClient; the whole sentOp rides along
// as the tag, so the send time spans every retry of the operation and a
// query's in-flight ambiguity snapshot survives re-routing.
type resilientConn struct {
	rc *ResilientClient
}

func (c *resilientConn) send(s sentOp) error {
	return c.rc.Send(s.req, s)
}

func (c *resilientConn) recv() (sentOp, Response, bool, error) {
	res, err := c.rc.Recv()
	if err != nil {
		return sentOp{}, Response{}, false, err
	}
	s := res.Tag.(sentOp)
	s.req = res.Req
	return s, res.Resp, res.Retried, nil
}

func (c *resilientConn) pending() int { return c.rc.Pending() }
func (c *resilientConn) close() error { return c.rc.Close() }

// loadWorker is one closed-loop connection driver.
type loadWorker struct {
	id   int
	cfg  LoadConfig
	rng  *rand.Rand
	conn loadConn
	rc   *ResilientClient // non-nil in resilient mode, for stats

	// live is the worker's model of its own x-stripe: the points it has
	// inserted and not yet deleted. keys mirrors live for O(1) random
	// victim selection.
	live map[geom.Point]int // point -> index in keys
	keys []geom.Point
	// dead holds stripe points this worker deleted (and has not since
	// re-inserted); in containment mode a query returning one is an error.
	dead map[geom.Point]struct{}
	// unknown holds stripe points whose membership is ambiguous: a write
	// touching them surfaced TIMEOUT, so it may or may not have executed.
	// They are excluded from both sides of query verification until a
	// completed write resolves them.
	unknown map[geom.Point]struct{}
	// wpending refcounts the points touched by writes sent but not yet
	// settled (response not yet delivered). Maintained only in resilient
	// mode, where a query may run on a replica or be requeued behind
	// later traffic: the read barrier orders it after every ACKED write,
	// but in-flight writes are fair game in either direction, so their
	// points are ambiguous for that query.
	wpending map[geom.Point]int
	// strict selects exact-match query verification (index started
	// empty); otherwise only containment of this run's effects is checked.
	strict bool

	// zipf/hotspot, when non-nil, skew stripePoint's stripe-local rank
	// (LoadConfig.Dist); both nil means uniform.
	zipf    *dist.Zipfian
	hotspot *dist.Hotspot

	ops, reads, writes, pointsRead   uint64
	busy, protoErr, consistency, txp uint64
	timeouts, unknownWrites          uint64
	firstErr                         error

	// traceEvery stamps every Nth sent request with a TRACE envelope;
	// traceHist clocks the client-observed latency of exactly those.
	traceEvery uint64
	traceSent  uint64
	traced     uint64
	traceHist  obs.Histogram

	hist map[byte]*obs.Histogram
}

func (w *loadWorker) fail(class *uint64, err error) {
	*class++
	if w.firstErr == nil {
		w.firstErr = err
	}
}

// stripePoint draws a random point in this worker's x-stripe. The
// stripe-local rank comes from the configured key distribution (rank 0
// is the stripe's hottest column under skew); the rank-to-x mapping
// x = rank·Workers + id keeps each worker's hot set disjoint from every
// other's, so verification stays per-stripe sound under skew.
func (w *loadWorker) stripePoint() geom.Point {
	n := int64(w.cfg.Workers)
	var rank int64
	switch {
	case w.zipf != nil:
		rank = w.zipf.Next(w.rng.Float64())
	case w.hotspot != nil:
		rank = w.hotspot.Next(w.rng.Float64(), w.rng.Float64())
	default:
		rank = w.rng.Int63n((w.cfg.Domain + n - 1) / n)
	}
	return geom.Point{X: rank*n + int64(w.id), Y: w.rng.Int63n(w.cfg.Domain)}
}

// nextRequest draws the next operation from the configured mix.
func (w *loadWorker) nextRequest() Request {
	if w.rng.Float64() < w.cfg.ReadFrac {
		xlo := w.rng.Int63n(w.cfg.Domain)
		xhi := xlo + w.cfg.QuerySpan
		ylo := w.rng.Int63n(w.cfg.Domain)
		if w.rng.Float64() < w.cfg.FourFrac {
			span := w.cfg.QuerySpan * 4
			yhi := ylo + span
			return Request{Op: OpQuery4, Rect: geom.Rect{XLo: xlo, XHi: xhi, YLo: ylo, YHi: yhi}}
		}
		return Request{Op: OpQuery3, Rect: geom.Rect{XLo: xlo, XHi: xhi, YLo: ylo, YHi: geom.MaxCoord}}
	}
	if w.cfg.BatchEvery > 0 && w.writes%uint64(w.cfg.BatchEvery) == 0 && w.writes > 0 {
		entries := make([]BatchEntry, 0, w.cfg.BatchSize)
		for i := 0; i < w.cfg.BatchSize; i++ {
			if len(w.keys) > 0 && w.rng.Float64() < w.cfg.DeleteFrac {
				entries = append(entries, BatchEntry{Kind: BatchDelete, P: w.keys[w.rng.Intn(len(w.keys))]})
			} else {
				entries = append(entries, BatchEntry{Kind: BatchInsert, P: w.stripePoint()})
			}
		}
		return Request{Op: OpBatch, Batch: entries}
	}
	if len(w.keys) > 0 && w.rng.Float64() < w.cfg.DeleteFrac {
		return Request{Op: OpDelete, P: w.keys[w.rng.Intn(len(w.keys))]}
	}
	return Request{Op: OpInsert, P: w.stripePoint()}
}

// maybeTrace stamps every traceEvery-th request with a client-side
// TRACE envelope so the server records a full span for it.
func (w *loadWorker) maybeTrace(req *Request) {
	if w.traceEvery == 0 {
		return
	}
	w.traceSent++
	if w.traceSent%w.traceEvery != 0 {
		return
	}
	req.Trace = &TraceInfo{ID: trace.NewID(), Sampled: true}
}

// modelInsert / modelDelete maintain the live and dead sets. A completed
// write resolves ambiguity: afterwards the point's membership is known
// again, whatever a timed-out earlier attempt did.
func (w *loadWorker) modelInsert(p geom.Point) {
	delete(w.dead, p)
	delete(w.unknown, p)
	if _, ok := w.live[p]; ok {
		return
	}
	w.live[p] = len(w.keys)
	w.keys = append(w.keys, p)
}

func (w *loadWorker) modelDelete(p geom.Point) {
	delete(w.unknown, p)
	i, ok := w.live[p]
	if !ok {
		return
	}
	last := len(w.keys) - 1
	w.keys[i] = w.keys[last]
	w.live[w.keys[i]] = i
	w.keys = w.keys[:last]
	delete(w.live, p)
	w.dead[p] = struct{}{}
}

// modelUnknown records that p's membership is ambiguous: a write touching
// it was abandoned with TIMEOUT and may or may not have executed. The
// point leaves both the live and dead sets so neither side of query
// verification asserts anything about it.
func (w *loadWorker) modelUnknown(p geom.Point) {
	if i, ok := w.live[p]; ok {
		last := len(w.keys) - 1
		w.keys[i] = w.keys[last]
		w.live[w.keys[i]] = i
		w.keys = w.keys[:last]
		delete(w.live, p)
	}
	delete(w.dead, p)
	w.unknown[p] = struct{}{}
}

// inStripe reports whether p belongs to this worker's x-stripe.
func (w *loadWorker) inStripe(p geom.Point) bool {
	return p.X%int64(w.cfg.Workers) == int64(w.id) && p.X >= 0
}

// expectStripe returns the model's points inside rect that belong to this
// worker's stripe, sorted for comparison.
func (w *loadWorker) expectStripe(rect geom.Rect) []geom.Point {
	var out []geom.Point
	for p := range w.live {
		if p.X >= rect.XLo && p.X <= rect.XHi && p.Y >= rect.YLo && p.Y <= rect.YHi {
			out = append(out, p)
		}
	}
	sortPoints(out)
	return out
}

func sortPoints(ps []geom.Point) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].X != ps[j].X {
			return ps[i].X < ps[j].X
		}
		return ps[i].Y < ps[j].Y
	})
}

// trackSend maintains the in-flight write ledger: writes bump their
// points' refcounts; a query snapshots the currently-unsettled points so
// verification can exclude them. Called only in resilient verify mode.
func (w *loadWorker) trackSend(s *sentOp) {
	switch s.req.Op {
	case OpInsert, OpDelete:
		w.wpending[s.req.P]++
	case OpBatch:
		for _, e := range s.req.Batch {
			w.wpending[e.P]++
		}
	case OpQuery3, OpQuery4:
		if len(w.wpending) == 0 {
			return
		}
		snap := make(map[geom.Point]struct{}, len(w.wpending))
		for p := range w.wpending {
			snap[p] = struct{}{}
		}
		s.ambig = snap
	}
}

// trackSettle reverses trackSend's bookkeeping when a write's response
// is delivered (whatever its status — the op left the pipeline).
func (w *loadWorker) trackSettle(req Request) {
	dec := func(p geom.Point) {
		if n := w.wpending[p]; n <= 1 {
			delete(w.wpending, p)
		} else {
			w.wpending[p] = n - 1
		}
	}
	switch req.Op {
	case OpInsert, OpDelete:
		dec(req.P)
	case OpBatch:
		for _, e := range req.Batch {
			dec(e.P)
		}
	}
}

// applyWrite folds one delivered write effect into the model. It is
// authoritative only when no sibling write on the same point is still in
// flight (settled) — otherwise execution order is unknowable and the
// point parks as ambiguous until the last sibling lands. A point already
// ambiguous is resolved only by a write that was never re-sent: a
// dedup-replayed retry can deliver last while reporting an execution
// that predates a sibling's, so it must not claim authority.
func (w *loadWorker) applyWrite(p geom.Point, insert, retried, wasUnknown, settled bool) {
	if !settled || (retried && wasUnknown) {
		w.modelUnknown(p)
		return
	}
	if insert {
		w.modelInsert(p)
	} else {
		w.modelDelete(p)
	}
}

// ambiguousAt reports whether p's membership cannot be asserted for the
// query s: a write touching it timed out, was in flight when s was
// sent, or is in flight now (sent after s, delivered after s — but
// possibly executed before a re-routed s).
func (w *loadWorker) ambiguousAt(s sentOp, p geom.Point) bool {
	if _, ok := w.unknown[p]; ok {
		return true
	}
	if _, ok := s.ambig[p]; ok {
		return true
	}
	return w.wpending[p] > 0
}

// markUnknown records every point a timed-out write request touched as
// ambiguous.
func (w *loadWorker) markUnknown(req Request) {
	switch req.Op {
	case OpInsert, OpDelete:
		w.unknownWrites++
		w.modelUnknown(req.P)
	case OpBatch:
		w.unknownWrites++
		for _, e := range req.Batch {
			w.modelUnknown(e.P)
		}
	}
}

// applyResponse folds one response into the model and error counters.
// retried means the request was re-sent after an ambiguous failure: its
// effects are still applied (idempotency makes the retry converge to the
// same post-state), but its Duplicate/Found/Results flags may describe
// the first execution against an older state — or, after a server
// restart emptied the dedup window, a harmless re-execution — so their
// consistency checks are skipped.
func (w *loadWorker) applyResponse(s sentOp, resp Response, retried bool, err error) {
	lat := time.Since(s.start)
	if err != nil {
		w.fail(&w.txp, err)
		return
	}
	w.hist[s.req.Op].Observe(uint64(lat))
	if s.req.Trace != nil {
		w.traced++
		w.traceHist.Observe(uint64(lat))
	}
	w.ops++
	if w.wpending != nil {
		w.trackSettle(s.req)
	}
	switch resp.Status {
	case StatusBusy, StatusDiskFull, StatusStale, StatusNotPrimary:
		// Shed (or, past the retry budget, refused) without executing:
		// the model is untouched and the outcome is known.
		w.busy++
		return
	case StatusTimeout:
		// Surfaced only when the retry budget ran out (or without a
		// resilient client). The write may or may not have executed.
		w.timeouts++
		w.markUnknown(s.req)
		return
	case StatusErr:
		w.fail(&w.protoErr, fmt.Errorf("%s: server error: %s", OpName(s.req.Op), resp.Msg))
		return
	}
	switch s.req.Op {
	case OpInsert:
		w.writes++
		_, wasUnknown := w.unknown[s.req.P]
		// In resilient mode a requeued sibling write on the same point
		// can still be in flight — it may have executed before this op
		// but deliver after it, so neither the flags nor the delivered
		// effect are authoritative for the point yet (wpending > 0):
		// skip flag checks, exactly as for a retried op, and let
		// applyWrite park the point as ambiguous.
		settled := w.wpending[s.req.P] == 0
		if w.cfg.Verify && !retried && !wasUnknown && settled {
			// The stripe is exclusive to this worker, so the server must
			// report a duplicate exactly when the model already holds the
			// point. In containment mode a duplicate of a point the model
			// never saw is a pre-existing point — learn it instead.
			_, wasLive := w.live[s.req.P]
			if wasLive && !resp.Duplicate {
				w.fail(&w.consistency, fmt.Errorf("insert %v: not a duplicate, but model holds it live", s.req.P))
			}
			_, wasDead := w.dead[s.req.P]
			if resp.Duplicate && !wasLive && (w.strict || wasDead) {
				w.fail(&w.consistency, fmt.Errorf("insert %v: unexpected duplicate (live=%v dead=%v)", s.req.P, wasLive, wasDead))
			}
		}
		w.applyWrite(s.req.P, true, retried, wasUnknown, settled)
	case OpDelete:
		w.writes++
		_, wasUnknown := w.unknown[s.req.P]
		settled := w.wpending[s.req.P] == 0
		if w.cfg.Verify && !retried && !wasUnknown && settled {
			_, wasLive := w.live[s.req.P]
			if wasLive != resp.Found {
				w.fail(&w.consistency, fmt.Errorf("delete %v: found=%v, model live=%v", s.req.P, resp.Found, wasLive))
			}
		}
		w.applyWrite(s.req.P, false, retried, wasUnknown, settled)
	case OpBatch:
		w.writes++
		if len(resp.Results) != len(s.req.Batch) {
			w.fail(&w.protoErr, fmt.Errorf("batch: %d results for %d entries", len(resp.Results), len(s.req.Batch)))
			return
		}
		for i, e := range s.req.Batch {
			_, wasUnknown := w.unknown[e.P]
			settled := w.wpending[e.P] == 0
			check := w.cfg.Verify && !retried && !wasUnknown && settled
			if e.Kind == BatchDelete {
				if check {
					_, wasLive := w.live[e.P]
					got := resp.Results[i] == BatchOK
					if wasLive != got {
						w.fail(&w.consistency, fmt.Errorf("batch delete %v: code=%d, model live=%v", e.P, resp.Results[i], wasLive))
					}
				}
				w.applyWrite(e.P, false, retried, wasUnknown, settled)
			} else {
				if check {
					_, wasLive := w.live[e.P]
					_, wasDead := w.dead[e.P]
					dup := resp.Results[i] == BatchDup
					if wasLive && !dup {
						w.fail(&w.consistency, fmt.Errorf("batch insert %v: not a duplicate, but model holds it live", e.P))
					}
					if dup && !wasLive && (w.strict || wasDead) {
						w.fail(&w.consistency, fmt.Errorf("batch insert %v: unexpected duplicate", e.P))
					}
				}
				w.applyWrite(e.P, true, retried, wasUnknown, settled)
			}
		}
	case OpQuery3, OpQuery4:
		w.reads++
		w.pointsRead += uint64(len(resp.Points))
		if w.cfg.Verify {
			w.verifyQuery(s, resp.Points)
		}
	}
}

// verifyQuery checks a query result against the worker's stripe model.
// In strict mode (index started empty) the result restricted to this
// worker's stripe must equal the model's live set in the rectangle. In
// containment mode (pre-populated index) only this run's effects are
// checked: every model-live point in the rectangle must appear, and no
// point this worker deleted may appear. Either way, points whose
// membership the model cannot pin down for THIS query — timed-out
// writes, and writes in flight around the query in resilient mode (see
// sentOp.ambig) — are excluded from both sides.
func (w *loadWorker) verifyQuery(s sentOp, pts []geom.Point) {
	req := s.req
	if w.strict {
		var got []geom.Point
		for _, p := range pts {
			if w.ambiguousAt(s, p) {
				continue // an unsettled write may have put it there
			}
			if w.inStripe(p) {
				got = append(got, p)
			}
		}
		sortPoints(got)
		var want []geom.Point
		for _, p := range w.expectStripe(req.Rect) {
			if !w.ambiguousAt(s, p) {
				want = append(want, p)
			}
		}
		if !equalPoints(got, want) {
			w.fail(&w.consistency, fmt.Errorf("%s %+v: got %d stripe points, want %d", OpName(req.Op), req.Rect, len(got), len(want)))
		}
		return
	}
	got := make(map[geom.Point]struct{}, len(pts))
	for _, p := range pts {
		got[p] = struct{}{}
		if _, deleted := w.dead[p]; deleted && !w.ambiguousAt(s, p) {
			w.fail(&w.consistency, fmt.Errorf("%s %+v: returned %v, which this worker deleted", OpName(req.Op), req.Rect, p))
			return
		}
	}
	for _, p := range w.expectStripe(req.Rect) {
		if _, ok := got[p]; !ok && !w.ambiguousAt(s, p) {
			w.fail(&w.consistency, fmt.Errorf("%s %+v: missing %v, which this worker inserted", OpName(req.Op), req.Rect, p))
			return
		}
	}
}

func equalPoints(a, b []geom.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// run drives the closed loop until deadline (or an early Stop), then
// drains the window.
func (w *loadWorker) run(deadline time.Time) {
	stopped := func() bool {
		select {
		case <-w.cfg.Stop:
			return true
		default:
			return false
		}
	}
	for time.Now().Before(deadline) && w.firstErr == nil && !stopped() {
		// Fill the pipeline window.
		for w.conn.pending() < w.cfg.Pipeline {
			req := w.nextRequest()
			w.maybeTrace(&req)
			s := sentOp{req: req, start: time.Now()}
			if w.wpending != nil {
				w.trackSend(&s)
			}
			if err := w.conn.send(s); err != nil {
				w.fail(&w.txp, err)
				return
			}
		}
		s, resp, retried, err := w.conn.recv()
		w.applyResponse(s, resp, retried, err)
		if err != nil {
			return
		}
	}
	// Drain outstanding responses so the connection closes cleanly.
	for w.conn.pending() > 0 && w.firstErr == nil {
		s, resp, retried, err := w.conn.recv()
		w.applyResponse(s, resp, retried, err)
		if err != nil {
			return
		}
	}
}

// fetchStats fetches the server's STATS payload, through the retry layer
// in resilient mode (so a restarting server doesn't fail the probe).
func fetchStats(cfg LoadConfig) ([]byte, error) {
	if cfg.Resilient {
		rc := NewResilient(cfg.Addr, ResilientOptions{
			Client: cfg.Client, Retry: cfg.Retry, Seed: cfg.Seed,
			FailoverAddrs: cfg.FailoverAddrs,
		})
		defer rc.Close()
		return rc.ServerStats()
	}
	probe, err := Dial(cfg.Addr, cfg.Client)
	if err != nil {
		return nil, err
	}
	defer probe.Close()
	return probe.Stats()
}

// RunLoad runs the closed-loop workload against the server at cfg.Addr and
// aggregates every worker's counters and latency histograms into one
// report. Each worker owns a disjoint x-stripe (x mod Workers), which is
// what makes per-connection read-your-writes verification sound under
// concurrency: no other connection ever writes the stripe a worker checks.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	cfg = cfg.withDefaults()
	switch cfg.Dist {
	case "uniform", "zipf", "hotspot":
	default:
		return nil, fmt.Errorf("load: unknown key distribution %q (uniform, zipf, hotspot)", cfg.Dist)
	}

	// Exact verification is sound only when the index starts empty (the
	// stripe model then is the whole truth about the stripe); against a
	// pre-populated store, fall back to checking containment of this
	// run's own effects.
	strict := true
	if cfg.Verify {
		raw, err := fetchStats(cfg)
		if err != nil {
			return nil, fmt.Errorf("probe stats: %w", err)
		}
		var st StatsSnapshot
		if err := json.Unmarshal(raw, &st); err != nil {
			return nil, fmt.Errorf("probe stats: %w", err)
		}
		strict = st.Len == 0
	}

	// One sampler serves every worker: stripes are all the same size and
	// the samplers are stateless in the RNG (each Next consumes the
	// worker's own uniform variates).
	var zipfian *dist.Zipfian
	var hotspot *dist.Hotspot
	stripe := (cfg.Domain + int64(cfg.Workers) - 1) / int64(cfg.Workers)
	switch cfg.Dist {
	case "zipf":
		var err error
		if zipfian, err = dist.NewZipfian(stripe, cfg.Theta); err != nil {
			return nil, err
		}
	case "hotspot":
		var err error
		if hotspot, err = dist.NewHotspot(stripe, 0.1, 0.9); err != nil {
			return nil, err
		}
	}

	workers := make([]*loadWorker, cfg.Workers)
	for i := range workers {
		w := &loadWorker{
			id:      i,
			cfg:     cfg,
			rng:     rand.New(rand.NewSource(cfg.Seed + int64(i)*7919)),
			live:    map[geom.Point]int{},
			dead:    map[geom.Point]struct{}{},
			unknown: map[geom.Point]struct{}{},
			strict:  strict,
			hist: map[byte]*obs.Histogram{
				OpInsert: {}, OpDelete: {}, OpQuery3: {}, OpQuery4: {}, OpBatch: {},
			},
			traceEvery: sampleInterval(cfg.TraceSample),
			zipf:       zipfian,
			hotspot:    hotspot,
		}
		if cfg.Resilient {
			if cfg.Verify {
				w.wpending = map[geom.Point]int{}
			}
			w.rc = NewResilient(cfg.Addr, ResilientOptions{
				Client: cfg.Client,
				Retry:  cfg.Retry,
				// Jitter is seeded per worker; the idempotency client id
				// stays crypto-random so windows never collide across runs
				// against the same server.
				Seed:          cfg.Seed + int64(i)*104729,
				ReadAddrs:     cfg.ReadAddrs,
				FailoverAddrs: cfg.FailoverAddrs,
			})
			w.conn = &resilientConn{rc: w.rc}
		} else {
			cl, err := Dial(cfg.Addr, cfg.Client)
			if err != nil {
				for _, prev := range workers[:i] {
					prev.conn.close()
				}
				return nil, fmt.Errorf("dial worker %d: %w", i, err)
			}
			w.conn = &plainConn{cl: cl}
		}
		workers[i] = w
	}

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *loadWorker) {
			defer wg.Done()
			defer w.conn.close()
			w.run(deadline)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &LoadReport{
		Workers:   cfg.Workers,
		Pipeline:  cfg.Pipeline,
		DurationS: elapsed.Seconds(),
		PerOp:     map[string]OpLoadStats{},
	}
	if cfg.Verify {
		rep.VerifyMode = "containment"
		if strict {
			rep.VerifyMode = "exact"
		}
	}
	merged := map[byte]*obs.Histogram{
		OpInsert: {}, OpDelete: {}, OpQuery3: {}, OpQuery4: {}, OpBatch: {},
	}
	var traceMerged obs.Histogram
	for _, w := range workers {
		rep.Ops += w.ops
		rep.Reads += w.reads
		rep.Writes += w.writes
		rep.PointsRead += w.pointsRead
		rep.Busy += w.busy
		rep.ProtoErrors += w.protoErr
		rep.ConsistencyErrors += w.consistency
		rep.TransportErrors += w.txp
		rep.Timeouts += w.timeouts
		rep.UnknownWrites += w.unknownWrites
		if w.rc != nil {
			st := w.rc.Stats()
			rep.Reconnects += st.Reconnects
			rep.Resent += st.Resent
			rep.BusyRetries += st.BusyRetries
			rep.TimeoutRetries += st.TimeoutRetries
			rep.ReplicaReads += st.ReplicaReads
			rep.StaleFallbacks += st.StaleFallbacks
			rep.ReplicaFallbacks += st.ReplicaFallbacks
			rep.Failovers += st.Failovers
			rep.DiskFullRetries += st.DiskFullRetries
		}
		if w.firstErr != nil && rep.FirstError == "" {
			rep.FirstError = fmt.Sprintf("worker %d: %v", w.id, w.firstErr)
		}
		rep.TracedOps += w.traced
		traceMerged.Merge(&w.traceHist)
		for op, h := range w.hist {
			merged[op].Merge(h)
		}
	}
	if elapsed > 0 {
		rep.OpsPerSec = float64(rep.Ops) / elapsed.Seconds()
	}
	for op, h := range merged {
		snap := h.Snapshot()
		if snap.Count == 0 {
			continue
		}
		rep.PerOp[OpName(op)] = OpLoadStats{
			Count:  snap.Count,
			P50Ms:  float64(h.Quantile(0.50)) / 1e6,
			P99Ms:  float64(h.Quantile(0.99)) / 1e6,
			P999Ms: float64(h.Quantile(0.999)) / 1e6,
			MeanMs: snap.Mean / 1e6,
		}
	}
	// Attach the server's own view of the run, best-effort: a server mid-
	// restart (or gone) just leaves the field nil.
	if raw, err := fetchStats(cfg); err == nil {
		var st StatsSnapshot
		if json.Unmarshal(raw, &st) == nil {
			rep.ServerStats = &st
		}
	}
	if rep.TracedOps > 0 {
		t := &TraceLoadStats{
			ClientP50Ms:  float64(traceMerged.Quantile(0.50)) / 1e6,
			ClientP99Ms:  float64(traceMerged.Quantile(0.99)) / 1e6,
			ClientMeanMs: traceMerged.Mean() / 1e6,
		}
		if rep.ServerStats != nil && rep.ServerStats.Metrics != nil {
			t.ServerPhases = rep.ServerStats.Metrics.Phases
		}
		rep.Trace = t
	}
	return rep, nil
}
