package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestTrajectoryIORegression replays every committed trajectory snapshot
// (trajectory/BENCH_*.json) whose tables carry I/O-count columns and
// compares those cells against a fresh run — tolerance zero. I/O counts on
// the memory store are exact and deterministic for fixed seeds, so any
// drift is a real change in the algorithms' external-memory behavior and
// must be accompanied by a regenerated snapshot (make trajectory).
// Wall-clock columns (throughput, latency) are machine-dependent and are
// deliberately not compared.
func TestTrajectoryIORegression(t *testing.T) {
	if testing.Short() {
		t.Skip("trajectory replay skipped in -short")
	}
	files, err := filepath.Glob(filepath.Join("..", "..", "trajectory", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Skip("no trajectory snapshots committed")
	}
	exps := map[string]Experiment{}
	for _, e := range All() {
		exps[e.Name] = e
	}
	for _, f := range files {
		snap, err := ReadSnapshot(f)
		if err != nil {
			t.Fatal(err)
		}
		if !hasIOColumns(snap) {
			continue // nothing deterministic to pin (e.g. pure latency tables)
		}
		e, ok := exps[snap.Name]
		if !ok {
			t.Errorf("%s: snapshot for unknown experiment %q", f, snap.Name)
			continue
		}
		t.Run(snap.Name, func(t *testing.T) {
			tables, err := e.Run(snap.Quick)
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) != len(snap.Tables) {
				t.Fatalf("experiment now emits %d tables, snapshot has %d — regenerate the snapshot if intended", len(tables), len(snap.Tables))
			}
			for i, tbl := range tables {
				want := snap.Tables[i]
				if strings.Join(tbl.Header, "|") != strings.Join(want.Header, "|") {
					t.Fatalf("table %d header changed:\n  now:      %v\n  snapshot: %v\nregenerate the snapshot if intended", i, tbl.Header, want.Header)
				}
				if len(tbl.Rows) != len(want.Rows) {
					t.Fatalf("table %d (%s): %d rows vs %d in snapshot", i, tbl.Title, len(tbl.Rows), len(want.Rows))
				}
				for col, h := range tbl.Header {
					if !strings.Contains(h, "I/O") {
						continue
					}
					for r := range tbl.Rows {
						got, exp := tbl.Rows[r][col], want.Rows[r][col]
						if got != exp {
							t.Errorf("table %d (%s) row %d %q: I/O count %s, snapshot has %s (tolerance 0)",
								i, tbl.Title, r, h, got, exp)
						}
					}
				}
			}
		})
	}
}

func hasIOColumns(s Snapshot) bool {
	for _, tbl := range s.Tables {
		for _, h := range tbl.Header {
			if strings.Contains(h, "I/O") {
				return true
			}
		}
	}
	return false
}
