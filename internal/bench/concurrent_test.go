package bench

import (
	"runtime"
	"strconv"
	"strings"
	"testing"
)

// TestConcurrentReadScalingSpeedup asserts the serving layer's read path
// actually scales: at 8 reader workers, snapshot-query throughput must be
// ≥3× the single-worker rate. Parallel speedup needs parallel hardware,
// so the assertion is gated on CPU count (on smaller machines the
// experiment still runs — via the trajectory replay — and records the
// curve; only the ratio assertion is skipped).
func TestConcurrentReadScalingSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling measurement skipped in -short")
	}
	ncpu := runtime.NumCPU()
	if ncpu < 4 {
		t.Skipf("scaling assertion needs >= 4 CPUs, have %d (GOMAXPROCS=%d)", ncpu, runtime.GOMAXPROCS(0))
	}
	workers := 8
	minSpeedup := 3.0
	if ncpu < 8 {
		workers = 4
		minSpeedup = 2.0
	}

	tbl, err := concurrentReadScaling(100_000, 2_000, 1<<30, []int{1, workers})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(tbl.Rows))
	}
	last := tbl.Rows[1]
	speedup, err := strconv.ParseFloat(strings.TrimSuffix(last[2], "x"), 64)
	if err != nil {
		t.Fatalf("cannot parse speedup cell %q: %v", last[2], err)
	}
	if speedup < minSpeedup {
		t.Fatalf("read speedup at %d workers = %.2fx, want >= %.1fx (ncpu=%d)", workers, speedup, minSpeedup, ncpu)
	}
	// The I/O column must be byte-identical across worker counts: scaling
	// must come from concurrency, never from doing less work per query.
	if tbl.Rows[0][3] != tbl.Rows[1][3] {
		t.Fatalf("per-query I/O changed with workers: %s vs %s", tbl.Rows[0][3], tbl.Rows[1][3])
	}
}
