package bench

import (
	"fmt"
	"math"
	"math/rand"

	"rangesearch/internal/baseline"
	"rangesearch/internal/eio"
	"rangesearch/internal/epst"
	"rangesearch/internal/geom"
	"rangesearch/internal/hier"
	"rangesearch/internal/indexability"
	"rangesearch/internal/interval"
	"rangesearch/internal/range4"
	"rangesearch/internal/smallstruct"
	"rangesearch/internal/sweep"
	"rangesearch/internal/wbtree"
)

// Experiment is a named, runnable experiment from DESIGN.md.
type Experiment struct {
	Name  string
	Claim string
	Run   func(quick bool) ([]*Table, error)
}

// All returns the experiment registry in order.
func All() []Experiment {
	return []Experiment{
		{"e1", "Prop. 1: Fibonacci lattice rectangle density Θ(ℓB)", E1},
		{"e2", "Thms 2-3/5: redundancy vs access-overhead trade-off", E2},
		{"e3", "Thm 4: 3-sided scheme r ≤ 1+1/(α−1), cover O(t+1)", E3},
		{"e4", "Thm 5: 4-sided scheme r=O(log n/log ρ), cover O(ρ+t)", E4},
		{"e5", "Lemma 1: B²-point structure, O(B) blocks, O(t+1) query", E5},
		{"e6", "Lemma 3: weight-balanced B-tree ops in O(log_B N)", E6},
		{"e7", "Thm 6: EPST query O(log_B N + t), space O(n)", E7},
		{"e8", "Thm 6: EPST updates O(log_B N)", E8},
		{"e9", "Interval stabbing O(log_B N + t) via diagonal corner", E9},
		{"e10", "Thm 7: 4-sided query O(log_B N + t)-shaped, space O(n log n/loglog)", E10},
		{"e11", "Optimal structures vs baselines on adversarial queries", E11},
		{"e12", "§3.3.2/3.3.3: update-cost tail (amortized spikes)", E12},
		{"e13", "ablation: EPST parameters a, k, alpha", E13},
		{"e14", "bound check: per-op overhead vs Thms 6-7 allowances", E14},
		{"concurrent", "serving layer: snapshot reads scale, group commits coalesce, per-query I/O unchanged", EConcurrent},
		{"serve", "network layer: end-to-end RPC throughput and latency under the rsload closed loop", EServe},
		{"writeopt", "write-optimized mode: buffered updates amortize below per-op O(log_B N), durable insert throughput multiplies", EWriteopt},
	}
}

// E1 measures Proposition 1: every rectangle of area ℓBN on the Fibonacci
// lattice holds between ℓB/c₁ and ℓB/c₂ points.
func E1(quick bool) ([]*Table, error) {
	t := &Table{
		Title:  "E1: Fibonacci lattice density (Proposition 1)",
		Note:   fmt.Sprintf("paper: rect of area lBN holds >= lB/c1 and <= lB/c2 points, c1~%.2f c2~%.2f", indexability.FibC1, indexability.FibC2),
		Header: []string{"k", "N", "B", "l", "expected lB", "min", "max", "c1=lB/min", "c2=lB/max", "rects"},
	}
	ks := []int{16, 21, 24}
	if quick {
		ks = []int{16, 18}
	}
	for _, k := range ks {
		for _, ell := range []int{1, 4} {
			rep := indexability.MeasureDensity(k, 16, ell, 2.0)
			t.AddRow(k, indexability.Fib(k), 16, ell, rep.Expected, rep.Min, rep.Max, rep.C1, rep.C2, rep.Rects)
		}
	}
	return []*Table{t}, nil
}

// E2 compares the measured redundancy of the Theorem 5 construction on the
// Fibonacci workload against the Theorem 2/3 lower bound shape.
func E2(quick bool) ([]*Table, error) {
	k := 21 // N = 10946
	if quick {
		k = 16 // N = 987
	}
	b := 16
	pts := Lattice(k)
	n := len(pts)

	tA := &Table{
		Title:  "E2a: measured r/A trade-off of the hierarchical scheme (Fibonacci workload)",
		Note:   fmt.Sprintf("N=%d B=%d; queries: tilings of area ~c1*B*N; shape log(n)/log(rho)", n, b),
		Header: []string{"rho", "levels", "r measured", "A measured", "max blocks", "shape log(n)/log(rho)"},
	}
	w := &indexability.Workload{Points: pts, Queries: indexability.TilingQueries(k, b, 1, 4.0)}
	for _, rho := range []int{2, 4, 16} {
		s, err := hier.Build(pts, b, rho, 2)
		if err != nil {
			return nil, err
		}
		rep, err := indexability.MeasureAccess(s, w)
		if err != nil {
			return nil, err
		}
		tA.AddRow(rho, s.Levels(), s.Redundancy(), rep.Overhead, rep.MaxBlocks,
			indexability.TradeoffShape(float64(n)/float64(b), float64(rho)))
	}

	tB := &Table{
		Title:  "E2b: Theorem 2/3 closed-form lower bound r = Omega(log n / log(L+A))",
		Header: []string{"N", "B", "A", "L", "k=L/A", "ratios", "r lower bound"},
	}
	for _, p := range []indexability.LowerBoundParams{
		{N: indexability.Fib(40), B: 1 << 12, A: 2},
		{N: indexability.Fib(60), B: 1 << 12, A: 2},
		{N: indexability.Fib(80), B: 1 << 12, A: 2},
		{N: indexability.Fib(60), B: 1 << 12, A: 4},
		{N: indexability.Fib(60), B: 1 << 12, A: 2, L: 64},
	} {
		lb, err := indexability.FibonacciLowerBound(p)
		if err != nil {
			return nil, err
		}
		tB.AddRow(p.N, p.B, p.A, p.L, lb.K, lb.Ratios, lb.R)
	}
	return []*Table{tA, tB}, nil
}

// E3 sweeps α for the 3-sided sweep-line scheme.
func E3(quick bool) ([]*Table, error) {
	n, b := 50000, 64
	if quick {
		n, b = 5000, 16
	}
	pts := Uniform(1, n, int64(n))
	t := &Table{
		Title:  "E3: 3-sided sweep scheme vs alpha (Theorem 4)",
		Note:   fmt.Sprintf("N=%d B=%d, 500 random 3-sided queries; bound: r <= 1+1/(alpha-1), blocks <= alpha^2*t+alpha+1", n, b),
		Header: []string{"alpha", "blocks", "r", "r bound", "avg blk/query", "max blk/(t+1)", "A bound"},
	}
	for _, alpha := range []int{2, 3, 4, 8} {
		s, err := sweep.Build(pts, b, alpha)
		if err != nil {
			return nil, err
		}
		var sumBlocks float64
		var worst float64
		queries := Queries3(2, 500, int64(n), 0.1)
		for _, q := range queries {
			res, nb := s.Query3(nil, q)
			sumBlocks += float64(nb)
			tb := (len(res) + b - 1) / b
			if ov := float64(nb) / float64(tb+1); ov > worst {
				worst = ov
			}
		}
		t.AddRow(alpha, s.NumBlocks(), s.Redundancy(), 1+1/float64(alpha-1),
			sumBlocks/float64(len(queries)), worst, alpha*alpha+alpha+1)
	}
	return []*Table{t}, nil
}

// E4 sweeps ρ for the 4-sided hierarchical scheme.
func E4(quick bool) ([]*Table, error) {
	n, b := 30000, 32
	if quick {
		n, b = 4000, 16
	}
	pts := Uniform(3, n, int64(n))
	t := &Table{
		Title:  "E4: 4-sided hierarchical scheme vs rho (Theorem 5)",
		Note:   fmt.Sprintf("N=%d B=%d, 400 random window queries; r = O(log n/log rho), cover O(rho+t)", n, b),
		Header: []string{"rho", "levels", "r", "log(n)/log(rho)", "avg blk/query", "max blk-t", "max blk"},
	}
	for _, rho := range []int{2, 4, 16, 64} {
		s, err := hier.Build(pts, b, rho, 2)
		if err != nil {
			return nil, err
		}
		queries := Queries4(4, 400, int64(n), 0.1, 0.1)
		var sum float64
		var maxOver, maxBlk float64
		for _, q := range queries {
			res, nb := s.Query4(nil, q)
			sum += float64(nb)
			tb := (len(res) + b - 1) / b
			if over := float64(nb - tb); over > maxOver {
				maxOver = over
			}
			if float64(nb) > maxBlk {
				maxBlk = float64(nb)
			}
		}
		t.AddRow(rho, s.Levels(), s.Redundancy(),
			indexability.TradeoffShape(float64(n)/float64(b), float64(rho)),
			sum/float64(len(queries)), maxOver, maxBlk)
	}
	return []*Table{t}, nil
}

// E5 measures the Lemma 1 small structure.
func E5(quick bool) ([]*Table, error) {
	t := &Table{
		Title:  "E5: Lemma 1 structure on B^2 points",
		Note:   "space O(B) blocks, catalog O(1) blocks, query O(t+1)+catalog I/Os, update O(1) amortized",
		Header: []string{"B", "N=B^2", "blocks", "blocks/(N/B)", "catalog pages", "build I/Os /B", "avg query I/O", "avg query t", "upd I/O amort"},
	}
	bs := []int{16, 32, 64}
	if quick {
		bs = []int{8, 16}
	}
	for _, b := range bs {
		store := eio.NewMemStore(b * eio.PointSize)
		n := b * b
		pts := Uniform(5, n, int64(4*n))
		store.ResetStats()
		s, err := smallstruct.Create(store, 2, pts)
		if err != nil {
			return nil, err
		}
		buildIOs := float64(store.Stats().IOs()) / float64(b)
		blocks, err := s.Blocks()
		if err != nil {
			return nil, err
		}
		cat, err := s.CatalogPages()
		if err != nil {
			return nil, err
		}
		queries := Queries3(6, 300, int64(4*n), 0.2)
		var qio, qt float64
		for _, q := range queries {
			store.ResetStats()
			res, err := s.Query3(nil, q)
			if err != nil {
				return nil, err
			}
			qio += float64(store.Stats().Reads)
			qt += float64((len(res) + b - 1) / b)
		}
		// Updates: delete/insert churn.
		rng := rand.New(rand.NewSource(7))
		store.ResetStats()
		ops := 500
		for i := 0; i < ops; i++ {
			p := pts[rng.Intn(len(pts))]
			found, err := s.Delete(p)
			if err != nil {
				return nil, err
			}
			if found {
				if err := s.Insert(p); err != nil {
					return nil, err
				}
			}
		}
		updIO := float64(store.Stats().IOs()) / float64(2*ops)
		t.AddRow(b, n, blocks, float64(blocks)/float64(n/b), cat, buildIOs,
			qio/float64(len(queries)), qt/float64(len(queries)), updIO)
	}

	// Rebuild-threshold ablation: smaller buffers rebuild more often
	// (dearer updates) but keep queries lean; larger buffers invert it.
	t2 := &Table{
		Title:  "E5b: rebuild-threshold ablation (B = 32)",
		Note:   "update buffer capacity that triggers the O(N/B)-I/O rebuild; default B/2",
		Header: []string{"buffer cap", "avg query I/O", "upd I/O amort"},
	}
	for _, cap := range []int{4, 16, 32, 64} {
		b := 32
		store := eio.NewMemStore(b * eio.PointSize)
		// Genuine turnover (delete old, insert fresh) so the buffer
		// actually accumulates; same-point reinserts would cancel their
		// own tombstones and never trip any threshold.
		all := Uniform(5, b*b+800, int64(16*b*b))
		pts := all[:b*b]
		fresh := all[b*b:]
		s, err := smallstruct.Create(store, 2, pts)
		if err != nil {
			return nil, err
		}
		s.SetBufferCap(cap)
		store.ResetStats()
		for i := 0; i < len(fresh); i++ {
			if _, err := s.Delete(pts[i]); err != nil {
				return nil, err
			}
			if err := s.Insert(fresh[i]); err != nil {
				return nil, err
			}
		}
		updIO := float64(store.Stats().IOs()) / float64(2*len(fresh))
		queries := Queries3(6, 200, int64(4*b*b), 0.2)
		var qio float64
		for _, q := range queries {
			store.ResetStats()
			if _, err := s.Query3(nil, q); err != nil {
				return nil, err
			}
			qio += float64(store.Stats().Reads)
		}
		t2.AddRow(cap, qio/float64(len(queries)), updIO)
	}
	return []*Table{t, t2}, nil
}

// E6 measures weight-balanced B-tree operation costs against log_B N.
func E6(quick bool) ([]*Table, error) {
	t := &Table{
		Title:  "E6: weight-balanced B-tree (Lemma 3)",
		Note:   "search/insert in O(log_B N) I/Os; page size 4096 (B=256)",
		Header: []string{"N", "height", "log_B N", "search I/O", "insert I/O amort", "pages*B/N"},
	}
	sizes := []int{10000, 50000, 200000}
	if quick {
		sizes = []int{5000, 20000}
	}
	for _, n := range sizes {
		store := eio.NewMemStore(4096)
		tr, err := wbtree.Create(store, 0, 0)
		if err != nil {
			return nil, err
		}
		pts := Uniform(8, n+n/10, int64(n)*8)
		geom.SortByX(pts[:n])
		if err := tr.BulkLoad(pts[:n]); err != nil {
			return nil, err
		}
		h, err := tr.Height()
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(9))
		store.ResetStats()
		for i := 0; i < 200; i++ {
			if _, err := tr.Contains(pts[rng.Intn(n)]); err != nil {
				return nil, err
			}
		}
		search := float64(store.Stats().Reads) / 200
		store.ResetStats()
		ins := 0
		for _, p := range pts[n:] {
			if err := tr.Insert(p); err == nil {
				ins++
			}
		}
		insert := float64(store.Stats().IOs()) / float64(ins)
		t.AddRow(n, h, math.Log(float64(n))/math.Log(256),
			search, insert, float64(store.Pages()*256)/float64(n))
	}
	return []*Table{t}, nil
}

// buildEPST builds an EPST over pts on a fresh store of the given page
// size.
func buildEPST(pageSize int, pts []geom.Point) (*eio.MemStore, *epst.Tree, error) {
	store := eio.NewMemStore(pageSize)
	tr, err := epst.Build(store, epst.Options{}, pts)
	return store, tr, err
}

// E7 measures EPST query cost and space.
func E7(quick bool) ([]*Table, error) {
	t := &Table{
		Title:  "E7: external priority search tree queries (Theorem 6)",
		Note:   "3-sided query O(log_B N + t) I/Os, space O(n) blocks; B=64 (page 1024)",
		Header: []string{"N", "height", "empty-q I/O", "sel 0.1% I/O", "sel 1% I/O", "sel 10% I/O", "I/O per t-block @10%", "pages*B/N"},
	}
	sizes := []int{20000, 80000, 320000}
	if quick {
		sizes = []int{10000, 40000}
	}
	for _, n := range sizes {
		pts := Uniform(11, n, int64(n)*4)
		store, tr, err := buildEPST(1024, pts)
		if err != nil {
			return nil, err
		}
		h, err := tr.Height()
		if err != nil {
			return nil, err
		}
		b := tr.B()
		measure := func(frac float64) (avgIO, avgPerT float64) {
			queries := Queries3(13, 60, int64(n)*4, frac)
			var io, per float64
			cnt := 0
			for _, q := range queries {
				store.ResetStats()
				res, err := tr.Query3(nil, q)
				if err != nil {
					return 0, 0
				}
				r := float64(store.Stats().Reads)
				io += r
				if tb := (len(res) + b - 1) / b; tb > 0 {
					per += r / float64(tb)
					cnt++
				}
			}
			if cnt == 0 {
				cnt = 1
			}
			return io / float64(len(queries)), per / float64(cnt)
		}
		// Empty queries: x-window below the domain.
		store.ResetStats()
		emptyIO := 0.0
		for i := 0; i < 20; i++ {
			store.ResetStats()
			if _, err := tr.Query3(nil, geom.Query3{XLo: -100 - int64(i), XHi: -100 - int64(i), YLo: 0}); err != nil {
				return nil, err
			}
			emptyIO += float64(store.Stats().Reads)
		}
		io01, _ := measure(0.001)
		io1, _ := measure(0.01)
		io10, per10 := measure(0.1)
		t.AddRow(n, h, emptyIO/20, io01, io1, io10, per10, float64(store.Pages()*b)/float64(n))
	}
	return []*Table{t}, nil
}

// E8 measures EPST update costs.
func E8(quick bool) ([]*Table, error) {
	t := &Table{
		Title:  "E8: external priority search tree updates (Theorem 6)",
		Note:   "insert/delete O(log_B N) I/Os amortized; B=64",
		Header: []string{"N", "height", "log_B N", "insert I/O amort", "delete I/O amort"},
	}
	sizes := []int{20000, 80000}
	if quick {
		sizes = []int{8000, 30000}
	}
	for _, n := range sizes {
		pts := Uniform(17, n+2000, int64(n)*4)
		store, tr, err := buildEPST(1024, pts[:n])
		if err != nil {
			return nil, err
		}
		h, err := tr.Height()
		if err != nil {
			return nil, err
		}
		store.ResetStats()
		for _, p := range pts[n:] {
			if err := tr.Insert(p); err != nil {
				return nil, err
			}
		}
		ins := float64(store.Stats().IOs()) / 2000
		store.ResetStats()
		for _, p := range pts[:2000] {
			if _, err := tr.Delete(p); err != nil {
				return nil, err
			}
		}
		del := float64(store.Stats().IOs()) / 2000
		t.AddRow(n, h, math.Log(float64(n))/math.Log(64), ins, del)
	}
	return []*Table{t}, nil
}

// E9 measures interval stabbing via the diagonal-corner reduction.
func E9(quick bool) ([]*Table, error) {
	t := &Table{
		Title:  "E9: dynamic interval management (stabbing via diagonal corner)",
		Note:   "stab O(log_B N + t) I/Os, update O(log_B N); B=64",
		Header: []string{"N", "avg stab t", "stab I/O avg", "stab I/O max", "insert I/O amort"},
	}
	sizes := []int{20000, 80000}
	if quick {
		sizes = []int{8000, 30000}
	}
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(19))
		domain := int64(n) * 8
		seen := map[geom.Interval]bool{}
		ivs := make([]geom.Interval, 0, n+1000)
		for len(ivs) < n+1000 {
			lo := rng.Int63n(domain)
			iv := geom.Interval{Lo: lo, Hi: min64(lo+rng.Int63n(domain/100+1), domain-1)}
			if !seen[iv] {
				seen[iv] = true
				ivs = append(ivs, iv)
			}
		}
		store := eio.NewMemStore(1024)
		s, err := interval.Build(store, epst.Options{}, ivs[:n])
		if err != nil {
			return nil, err
		}
		var ioSum, ioMax, tSum float64
		for i := 0; i < 100; i++ {
			q := rng.Int63n(domain)
			store.ResetStats()
			res, err := s.Stab(nil, q)
			if err != nil {
				return nil, err
			}
			r := float64(store.Stats().Reads)
			ioSum += r
			if r > ioMax {
				ioMax = r
			}
			tSum += float64(len(res))
		}
		store.ResetStats()
		for _, iv := range ivs[n:] {
			if err := s.Insert(iv); err != nil {
				return nil, err
			}
		}
		ins := float64(store.Stats().IOs()) / 1000
		t.AddRow(n, tSum/100, ioSum/100, ioMax, ins)
	}

	// Second table: the dynamic Set (priority search tree via diagonal
	// corner) vs the static Arge–Vitter slab tree on the same workload.
	t2 := &Table{
		Title:  "E9b: stabbing — diagonal-corner EPST vs Arge-Vitter slab tree (static)",
		Note:   "same intervals and queries; both O(log_B N + t) I/Os, B=64",
		Header: []string{"N", "avg t", "set I/O avg", "slab I/O avg", "set pages", "slab pages"},
	}
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(19))
		domain := int64(n) * 8
		seen := map[geom.Interval]bool{}
		ivs := make([]geom.Interval, 0, n)
		for len(ivs) < n {
			lo := rng.Int63n(domain)
			iv := geom.Interval{Lo: lo, Hi: min64(lo+rng.Int63n(domain/100+1), domain-1)}
			if !seen[iv] {
				seen[iv] = true
				ivs = append(ivs, iv)
			}
		}
		setStore := eio.NewMemStore(1024)
		set, err := interval.Build(setStore, epst.Options{}, ivs)
		if err != nil {
			return nil, err
		}
		slabStore := eio.NewMemStore(1024)
		slab, err := interval.BuildSlabTree(slabStore, ivs)
		if err != nil {
			return nil, err
		}
		var setIO, slabIO, tSum float64
		for i := 0; i < 100; i++ {
			q := rng.Int63n(domain)
			setStore.ResetStats()
			a, err := set.Stab(nil, q)
			if err != nil {
				return nil, err
			}
			setIO += float64(setStore.Stats().Reads)
			slabStore.ResetStats()
			b, err := slab.Stab(nil, q)
			if err != nil {
				return nil, err
			}
			slabIO += float64(slabStore.Stats().Reads)
			if len(a) != len(b) {
				return nil, fmt.Errorf("e9b: implementations disagree (%d vs %d)", len(a), len(b))
			}
			tSum += float64(len(a))
		}
		t2.AddRow(n, tSum/100, setIO/100, slabIO/100, setStore.Pages(), slabStore.Pages())
	}
	return []*Table{t, t2}, nil
}

// E10 measures the 4-sided structure.
func E10(quick bool) ([]*Table, error) {
	t := &Table{
		Title:  "E10: dynamic 4-sided structure (Theorem 7)",
		Note:   "query O(log_B N + t)-shaped (entry-search note in DESIGN.md), space O(n log n/loglog_B N); B=64",
		Header: []string{"N", "levels", "empty-q I/O", "sel 1% I/O", "sel 10% I/O", "I/O per t-block @10%", "pages*B/N", "insert I/O"},
	}
	sizes := []int{20000, 60000}
	if quick {
		sizes = []int{6000, 20000}
	}
	for _, n := range sizes {
		pts := Uniform(23, n+500, int64(n)*4)
		store := eio.NewMemStore(1024)
		tr, err := range4.Build(store, range4.Options{}, pts[:n])
		if err != nil {
			return nil, err
		}
		st, err := tr.Space()
		if err != nil {
			return nil, err
		}
		b := 64
		measure := func(frac float64) (avgIO, perT float64) {
			queries := Queries4(29, 40, int64(n)*4, frac, frac)
			var io, per float64
			cnt := 0
			for _, q := range queries {
				store.ResetStats()
				res, err := tr.Query4(nil, q)
				if err != nil {
					return 0, 0
				}
				r := float64(store.Stats().Reads)
				io += r
				if tb := (len(res) + b - 1) / b; tb > 0 {
					per += r / float64(tb)
					cnt++
				}
			}
			if cnt == 0 {
				cnt = 1
			}
			return io / float64(len(queries)), per / float64(cnt)
		}
		var emptyIO float64
		for i := 0; i < 10; i++ {
			store.ResetStats()
			if _, err := tr.Query4(nil, geom.Rect{XLo: -10 - int64(i), XHi: -10 - int64(i), YLo: 0, YHi: 10}); err != nil {
				return nil, err
			}
			emptyIO += float64(store.Stats().Reads)
		}
		io1, _ := measure(0.01)
		io10, per10 := measure(0.1)
		store.ResetStats()
		for _, p := range pts[n:] {
			if err := tr.Insert(p); err != nil {
				return nil, err
			}
		}
		ins := float64(store.Stats().IOs()) / 500
		t.AddRow(n, st.Levels, emptyIO/10, io1, io10, per10,
			float64(st.Pages*st.B)/float64(st.Points), ins)
	}
	return []*Table{t}, nil
}

// E11 pits the paper's structures against the baselines on the query shape
// the introduction motivates: wide in x, selective in y.
func E11(quick bool) ([]*Table, error) {
	n := 40000
	if quick {
		n = 8000
	}
	domain := int64(n) * 4
	out := []*Table{}
	for _, ds := range []struct {
		name string
		pts  []geom.Point
	}{
		{"uniform", Uniform(31, n, domain)},
		{"diagonal", Diagonal(37, n, domain)},
	} {
		t := &Table{
			Title:  fmt.Sprintf("E11: query I/Os, %s data, N=%d, B=64", ds.name, n),
			Note:   "3-sided queries: full x-range, y >= c (~1% selective); all structures suffer 30% insert + 10% delete/reinsert churn first (the intro: heuristics 'deteriorate after repeated updates')",
			Header: []string{"structure", "space pages*B/N", "avg query I/O", "max query I/O", "avg t-blocks"},
		}
		// Queries: x-wide, y-selective 3-sided.
		rng := rand.New(rand.NewSource(41))
		queries := make([]geom.Rect, 50)
		for i := range queries {
			c := domain - domain/100 - rng.Int63n(domain/50+1)
			queries[i] = geom.Rect{XLo: 0, XHi: domain, YLo: c, YHi: geom.MaxCoord}
		}
		// Every candidate is loaded the same way: 70% bulk, 30% inserted
		// one by one, then 10% of the points deleted and reinserted.
		bulkN := len(ds.pts) * 7 / 10
		type candidate struct {
			query  func(dst []geom.Point, q geom.Rect) ([]geom.Point, error)
			insert func(geom.Point) error
			delete func(geom.Point) (bool, error)
		}
		run := func(name string, build func(store eio.Store, bulk []geom.Point) (candidate, error)) error {
			store := eio.NewMemStore(1024)
			c, err := build(store, ds.pts[:bulkN])
			if err != nil {
				return err
			}
			for _, p := range ds.pts[bulkN:] {
				if err := c.insert(p); err != nil {
					return err
				}
			}
			churn := rand.New(rand.NewSource(45))
			for i := 0; i < len(ds.pts)/10; i++ {
				p := ds.pts[churn.Intn(len(ds.pts))]
				found, err := c.delete(p)
				if err != nil {
					return err
				}
				if found {
					if err := c.insert(p); err != nil {
						return err
					}
				}
			}
			var ioSum, ioMax, tSum float64
			for _, q := range queries {
				store.ResetStats()
				res, err := c.query(nil, q)
				if err != nil {
					return err
				}
				r := float64(store.Stats().Reads)
				ioSum += r
				if r > ioMax {
					ioMax = r
				}
				tSum += float64((len(res) + 63) / 64)
			}
			t.AddRow(name, float64(store.Pages()*64)/float64(n),
				ioSum/float64(len(queries)), ioMax, tSum/float64(len(queries)))
			return nil
		}
		fromIndex := func(s baseline.Index, bulk []geom.Point) (candidate, error) {
			for _, p := range bulk {
				if err := s.Insert(p); err != nil {
					return candidate{}, err
				}
			}
			return candidate{query: s.Query, insert: s.Insert, delete: s.Delete}, nil
		}
		if err := run("epst (paper)", func(store eio.Store, bulk []geom.Point) (candidate, error) {
			tr, err := epst.Build(store, epst.Options{}, bulk)
			if err != nil {
				return candidate{}, err
			}
			return candidate{
				query: func(dst []geom.Point, q geom.Rect) ([]geom.Point, error) {
					return tr.Query3(dst, geom.Query3{XLo: q.XLo, XHi: q.XHi, YLo: q.YLo})
				},
				insert: tr.Insert,
				delete: tr.Delete,
			}, nil
		}); err != nil {
			return nil, err
		}
		if err := run("scan", func(store eio.Store, bulk []geom.Point) (candidate, error) {
			s, err := baseline.NewScan(store)
			if err != nil {
				return candidate{}, err
			}
			return fromIndex(s, bulk)
		}); err != nil {
			return nil, err
		}
		if err := run("x-btree", func(store eio.Store, bulk []geom.Point) (candidate, error) {
			s, err := baseline.BuildXTree(store, bulk)
			if err != nil {
				return candidate{}, err
			}
			return candidate{query: s.Query, insert: s.Insert, delete: s.Delete}, nil
		}); err != nil {
			return nil, err
		}
		if err := run("kd-tree", func(store eio.Store, bulk []geom.Point) (candidate, error) {
			s, err := baseline.NewKDTree(store, 0)
			if err != nil {
				return candidate{}, err
			}
			return fromIndex(s, bulk)
		}); err != nil {
			return nil, err
		}
		if err := run("r-tree", func(store eio.Store, bulk []geom.Point) (candidate, error) {
			s, err := baseline.BuildRTree(store, 0, bulk)
			if err != nil {
				return candidate{}, err
			}
			return candidate{query: s.Query, insert: s.Insert, delete: s.Delete}, nil
		}); err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// E12 measures the per-insert I/O distribution of the amortized EPST —
// the tail the worst-case scheduling methods of Section 3.3.3 flatten.
func E12(quick bool) ([]*Table, error) {
	n := 30000
	if quick {
		n = 8000
	}
	pts := Uniform(47, n, int64(n)*4)
	store := eio.NewMemStore(1024)
	tr, err := epst.Create(store, epst.Options{})
	if err != nil {
		return nil, err
	}
	costs := make([]float64, 0, n)
	for _, p := range pts {
		before := store.Stats().IOs()
		if err := tr.Insert(p); err != nil {
			return nil, err
		}
		costs = append(costs, float64(store.Stats().IOs()-before))
	}
	ps := Percentiles(costs, 0.50, 0.90, 0.99, 0.999, 1.0)
	t := &Table{
		Title:  "E12: per-insert I/O distribution (amortized EPST)",
		Note:   "spikes = base-tree splits with Y-set reorganizations; §3.3.3's three scheduling methods exist to flatten this tail to O(log_B N) worst-case",
		Header: []string{"N", "mean", "p50", "p90", "p99", "p99.9", "max"},
	}
	t.AddRow(n, Mean(costs), ps[0], ps[1], ps[2], ps[3], ps[4])
	return []*Table{t}, nil
}

// E13 is the design-choice ablation DESIGN.md calls for: the external
// priority search tree's branching parameter a and leaf parameter k, and
// the small structure's sweep parameter α, swept on a fixed workload.
func E13(quick bool) ([]*Table, error) {
	n := 40000
	if quick {
		n = 10000
	}
	pts := Uniform(53, n, int64(n)*4)
	queries := Queries3(54, 60, int64(n)*4, 0.02)

	t := &Table{
		Title:  "E13: EPST parameter ablation (a, k, alpha)",
		Note:   fmt.Sprintf("N=%d B=64; avg query I/O at ~2%% x-window, amortized insert I/O over 1000 ops, space factor", n),
		Header: []string{"a", "k", "alpha", "height", "query I/O", "insert I/O", "pages*B/N"},
	}
	type cfg struct{ a, k, alpha int }
	cfgs := []cfg{
		{8, 64, 2}, {16, 64, 2}, {32, 64, 2}, // branching sweep
		{16, 16, 2}, {16, 128, 2}, // leaf sweep
		{16, 64, 3}, {16, 64, 6}, // alpha sweep
	}
	if quick {
		cfgs = cfgs[:4]
	}
	extra := Uniform(55, 1000, int64(n)*4)
	for _, c := range cfgs {
		store := eio.NewMemStore(1024)
		tr, err := epst.Build(store, epst.Options{A: c.a, K: c.k, Alpha: c.alpha}, pts)
		if err != nil {
			return nil, err
		}
		h, err := tr.Height()
		if err != nil {
			return nil, err
		}
		var qio float64
		for _, q := range queries {
			store.ResetStats()
			if _, err := tr.Query3(nil, q); err != nil {
				return nil, err
			}
			qio += float64(store.Stats().Reads)
		}
		qio /= float64(len(queries))
		store.ResetStats()
		ins := 0
		for _, p := range extra {
			if err := tr.Insert(p); err == nil {
				ins++
			}
		}
		insIO := float64(store.Stats().IOs()) / float64(ins)
		t.AddRow(c.a, c.k, c.alpha, h, qio, insIO, float64(store.Pages()*64)/float64(n))
	}
	return []*Table{t}, nil
}
