package bench

import (
	"strings"
	"testing"
	"time"

	"rangesearch/internal/obs"
)

func TestSnapshotRoundTrip(t *testing.T) {
	tbl := &Table{
		Title:  "demo",
		Note:   "note",
		Header: []string{"a", "b"},
	}
	tbl.AddRow(1, 2.5)
	bounds := []obs.BoundReport{{
		Name:  "ThreeSided",
		B:     64,
		Query: obs.Summary{Count: 10, Mean: 1.5, P50: 1.2, P95: 2.5, Max: 3},
	}}
	snap := NewSnapshot("e14", "bound check", true, 1500*time.Millisecond, []*Table{tbl}, bounds)
	dir := t.TempDir()
	path, err := WriteSnapshot(dir, snap)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(path, "BENCH_e14.json") {
		t.Fatalf("path %q", path)
	}
	got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "e14" || !got.Quick || got.DurationMS != 1500 {
		t.Fatalf("snapshot %+v", got)
	}
	if len(got.Tables) != 1 || got.Tables[0].Rows[0][1] != "2.50" {
		t.Fatalf("tables %+v", got.Tables)
	}
	if len(got.Bounds) != 1 || got.Bounds[0].Query.P95 != 2.5 {
		t.Fatalf("bounds %+v", got.Bounds)
	}
}

func TestBoundCheckQuickMeetsGenerousLimits(t *testing.T) {
	if testing.Short() {
		t.Skip("bound check workload in -short mode")
	}
	tables, reports, err := BoundCheck(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(reports) != 2 {
		t.Fatalf("tables=%d reports=%d", len(tables), len(reports))
	}
	for _, rep := range reports {
		if rep.Query.Count == 0 || rep.Insert.Count == 0 || rep.Delete.Count == 0 {
			t.Fatalf("%s: empty summaries %+v", rep.Name, rep)
		}
		// The CI smoke job thresholds p95; pin here that the quick
		// workload passes with the same generous constant so the job
		// cannot rot silently.
		if err := rep.Exceeds(CIQueryP95Limit, CIUpdateP95Limit); err != nil {
			t.Error(err)
		}
	}
}
