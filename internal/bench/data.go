// Package bench is the experiment harness: workload generators, I/O
// measurement helpers, and the experiments (E1–E13) listed in
// DESIGN.md that reproduce every quantitative claim of the paper. The
// cmd/rsbench binary prints their tables; the repository-root benchmarks
// wrap them as testing.B targets.
package bench

import (
	"math/rand"

	"rangesearch/internal/dist"
	"rangesearch/internal/geom"
	"rangesearch/internal/indexability"
)

// Uniform returns n distinct points uniform over [0, coordRange)².
func Uniform(seed int64, n int, coordRange int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[geom.Point]bool, n)
	pts := make([]geom.Point, 0, n)
	for len(pts) < n {
		p := geom.Point{X: rng.Int63n(coordRange), Y: rng.Int63n(coordRange)}
		if !seen[p] {
			seen[p] = true
			pts = append(pts, p)
		}
	}
	return pts
}

// Diagonal returns n distinct points hugging the main diagonal — the
// shape of interval-management data ((lo, hi) points with hi ≥ lo close to
// lo), adversarial for x-ordered and grid-style partitioning.
func Diagonal(seed int64, n int, coordRange int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[geom.Point]bool, n)
	pts := make([]geom.Point, 0, n)
	for len(pts) < n {
		x := rng.Int63n(coordRange)
		off := rng.Int63n(coordRange/64 + 1)
		y := x + off
		if y >= coordRange {
			y = coordRange - 1
		}
		p := geom.Point{X: x, Y: y}
		if !seen[p] {
			seen[p] = true
			pts = append(pts, p)
		}
	}
	return pts
}

// Clustered returns n distinct points in c Gaussian-ish clusters.
func Clustered(seed int64, n int, coordRange int64, c int) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	type center struct{ x, y int64 }
	centers := make([]center, c)
	for i := range centers {
		centers[i] = center{rng.Int63n(coordRange), rng.Int63n(coordRange)}
	}
	spread := coordRange / int64(c*4)
	if spread < 1 {
		spread = 1
	}
	seen := make(map[geom.Point]bool, n)
	pts := make([]geom.Point, 0, n)
	for len(pts) < n {
		ct := centers[rng.Intn(c)]
		p := geom.Point{
			X: clamp(ct.x+rng.Int63n(2*spread)-spread, 0, coordRange-1),
			Y: clamp(ct.y+rng.Int63n(2*spread)-spread, 0, coordRange-1),
		}
		if !seen[p] {
			seen[p] = true
			pts = append(pts, p)
		}
	}
	return pts
}

// Lattice returns the Fibonacci lattice for N = Fib(k) — the paper's
// worst-case distribution.
func Lattice(k int) []geom.Point { return indexability.FibonacciLattice(k) }

// Zipf returns n distinct points whose x-coordinates follow a
// YCSB-style zipfian rank distribution over [0, coordRange) (theta in
// (0, 1); rank 0 — x = 0 — is the hottest column) with uniform y. This
// is the write-skew shape buffered updates matter most for: a few x
// columns absorb most of the traffic.
func Zipf(seed int64, n int, coordRange int64, theta float64) []geom.Point {
	z, err := dist.NewZipfian(coordRange, theta)
	if err != nil {
		panic(err) // caller bug: bench data shapes are compile-time choices
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[geom.Point]bool, n)
	pts := make([]geom.Point, 0, n)
	for len(pts) < n {
		p := geom.Point{X: z.Next(rng.Float64()), Y: rng.Int63n(coordRange)}
		if !seen[p] {
			seen[p] = true
			pts = append(pts, p)
		}
	}
	return pts
}

// HotspotData returns n distinct points where hotProb of the mass lands
// in the first hotFrac of the x-domain (the classic 90/10 skew is
// hotFrac=0.1, hotProb=0.9), uniform y.
func HotspotData(seed int64, n int, coordRange int64, hotFrac, hotProb float64) []geom.Point {
	h, err := dist.NewHotspot(coordRange, hotFrac, hotProb)
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[geom.Point]bool, n)
	pts := make([]geom.Point, 0, n)
	for len(pts) < n {
		p := geom.Point{X: h.Next(rng.Float64(), rng.Float64()), Y: rng.Int63n(coordRange)}
		if !seen[p] {
			seen[p] = true
			pts = append(pts, p)
		}
	}
	return pts
}

func clamp(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Queries3 returns nq random 3-sided queries over the domain with x-window
// width ~frac of the domain.
func Queries3(seed int64, nq int, coordRange int64, frac float64) []geom.Query3 {
	rng := rand.New(rand.NewSource(seed))
	w := int64(float64(coordRange) * frac)
	if w < 1 {
		w = 1
	}
	out := make([]geom.Query3, nq)
	for i := range out {
		a := rng.Int63n(coordRange)
		out[i] = geom.Query3{XLo: a, XHi: min64(a+w, coordRange-1), YLo: rng.Int63n(coordRange)}
	}
	return out
}

// Queries4 returns nq random window queries with side lengths ~xfrac and
// ~yfrac of the domain.
func Queries4(seed int64, nq int, coordRange int64, xfrac, yfrac float64) []geom.Rect {
	rng := rand.New(rand.NewSource(seed))
	xw := int64(float64(coordRange) * xfrac)
	yw := int64(float64(coordRange) * yfrac)
	if xw < 1 {
		xw = 1
	}
	if yw < 1 {
		yw = 1
	}
	out := make([]geom.Rect, nq)
	for i := range out {
		a := rng.Int63n(coordRange)
		c := rng.Int63n(coordRange)
		out[i] = geom.Rect{
			XLo: a, XHi: min64(a+xw, coordRange-1),
			YLo: c, YHi: min64(c+yw, coordRange-1),
		}
	}
	return out
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
