package bench

import (
	"fmt"
	"sort"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a row, formatting each cell with %v (floats get %.2f).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Percentiles returns the p-quantiles of xs (xs is sorted in place).
func Percentiles(xs []float64, ps ...float64) []float64 {
	if len(xs) == 0 {
		return make([]float64, len(ps))
	}
	sort.Float64s(xs)
	out := make([]float64, len(ps))
	for i, p := range ps {
		idx := int(p * float64(len(xs)-1))
		out[i] = xs[idx]
	}
	return out
}

// Mean returns the average of xs.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Max returns the maximum of xs.
func Max(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
