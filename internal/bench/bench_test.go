package bench

import (
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs every experiment in quick mode and sanity
// checks the produced tables. This keeps the harness itself under test —
// an experiment that errors or emits an empty table is a regression.
func TestAllExperimentsQuick(t *testing.T) {
	for _, exp := range All() {
		exp := exp
		t.Run(exp.Name, func(t *testing.T) {
			tables, err := exp.Run(true)
			if err != nil {
				t.Fatalf("%s: %v", exp.Name, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", exp.Name)
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Fatalf("%s: table %q has no rows", exp.Name, tb.Title)
				}
				out := tb.Render()
				if !strings.Contains(out, tb.Title) {
					t.Fatalf("%s: render missing title", exp.Name)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Header) {
						t.Fatalf("%s: row width %d != header %d", exp.Name, len(row), len(tb.Header))
					}
				}
			}
		})
	}
}

func TestGenerators(t *testing.T) {
	u := Uniform(1, 1000, 5000)
	if len(u) != 1000 {
		t.Fatalf("Uniform returned %d", len(u))
	}
	seen := map[[2]int64]bool{}
	for _, p := range u {
		k := [2]int64{p.X, p.Y}
		if seen[k] {
			t.Fatal("Uniform produced duplicates")
		}
		seen[k] = true
	}
	d := Diagonal(2, 500, 10000)
	for _, p := range d {
		if p.Y < p.X {
			t.Fatalf("Diagonal point below diagonal: %v", p)
		}
	}
	c := Clustered(3, 500, 10000, 5)
	if len(c) != 500 {
		t.Fatalf("Clustered returned %d", len(c))
	}
	if len(Lattice(15)) != 610 {
		t.Fatal("Lattice(15) wrong size")
	}
	qs := Queries3(4, 50, 1000, 0.1)
	for _, q := range qs {
		if q.XLo > q.XHi {
			t.Fatalf("bad query %v", q)
		}
	}
	q4 := Queries4(5, 50, 1000, 0.1, 0.2)
	for _, q := range q4 {
		if q.Empty() {
			t.Fatalf("empty query %v", q)
		}
	}
}

func TestStatsHelpers(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	ps := Percentiles(xs, 0, 0.5, 1.0)
	if ps[0] != 1 || ps[1] != 3 || ps[2] != 5 {
		t.Fatalf("percentiles %v", ps)
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Fatal("mean")
	}
	if Max([]float64{2, 9, 4}) != 9 {
		t.Fatal("max")
	}
	if len(Percentiles(nil, 0.5)) != 1 {
		t.Fatal("empty percentiles")
	}
}
