package bench

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"rangesearch/internal/core"
	"rangesearch/internal/dist"
	"rangesearch/internal/eio"
	"rangesearch/internal/epst"
	"rangesearch/internal/geom"
	"rangesearch/internal/obs"
	"rangesearch/internal/wbuf"
)

// EWriteopt benchmarks the write-optimized mode (internal/wbuf): the
// dynamic-indexability argument that buffering updates and merging on
// read drops the amortized update cost below the per-operation
// O(log_B N) of Theorem 6.
//
//   - table a: exact amortized I/O per update on a MemStore, buffered at
//     several thresholds vs write-through, on uniform and zipfian key
//     distributions (the skew buffering helps most: hot points collapse
//     in the buffer before ever reaching the tree). Deterministic; the
//     regression guard pins every I/O column.
//   - table b: wall-clock insert throughput on the durable file-backed
//     stack (TxStore WAL), write-through vs buffered-with-journal — the
//     "one 17-byte journal record instead of a WAL transaction per
//     acknowledgement" claim. Hardware-dependent, not pinned.
//   - table c: the E14-style bound check with the relaxed allowance:
//     per-op overhead of buffered updates is spiky (the flushing op pays
//     for the whole drain), but amortized over flush-threshold windows it
//     must come back under the write-through envelope.
func EWriteopt(quick bool) ([]*Table, error) {
	ta, err := writeoptIO(quick)
	if err != nil {
		return nil, err
	}
	tb, err := writeoptThroughput(quick)
	if err != nil {
		return nil, err
	}
	tc, err := writeoptBound(quick)
	if err != nil {
		return nil, err
	}
	return []*Table{ta, tb, tc}, nil
}

// writeoptUpdates drives target through a deterministic update stream:
// three of every four operations churn a hot pool (insert the point if
// it is absent, delete it if present — the overwrite pattern a write
// buffer collapses to its net effect), the fourth inserts a fresh point
// so the structure keeps growing. pick chooses the pool index.
func writeoptUpdates(target core.Index, pool, fresh []geom.Point, updates int, pick func() int) error {
	visible := make([]bool, len(pool))
	fi := 0
	for k := 0; k < updates; k++ {
		if k%4 == 3 && fi < len(fresh) {
			if err := target.Insert(fresh[fi]); err != nil {
				return fmt.Errorf("fresh insert: %w", err)
			}
			fi++
			continue
		}
		i := pick()
		if visible[i] {
			if _, err := target.Delete(pool[i]); err != nil {
				return fmt.Errorf("churn delete: %w", err)
			}
		} else {
			if err := target.Insert(pool[i]); err != nil {
				return fmt.Errorf("churn insert: %w", err)
			}
		}
		visible[i] = !visible[i]
	}
	return nil
}

func writeoptIO(quick bool) (*Table, error) {
	n, updates, poolN := 60_000, 20_000, 2_048
	if quick {
		n, updates, poolN = 12_000, 4_000, 1_024
	}
	pageSize := 1024
	domain := int64(n) * 4

	t := &Table{
		Title: "writeopt-a: amortized update I/O, buffered vs write-through (EPST, Theorem 6)",
		Note: fmt.Sprintf("N=%d B=%d, %d updates: 3/4 churn a %d-point hot pool (insert if absent, delete if present), 1/4 fresh inserts; MemStore, final flush forced so the buffer pays its tail; churned ops collapse in the buffer and never reach the tree",
			n, eio.BlockCapacity(pageSize), updates, poolN),
		Header: []string{"mode", "churn dist", "updates", "read I/O /op", "write I/O /op", "total I/O /op", "flushes"},
	}

	modes := []struct {
		name   string
		maxOps int
	}{
		{"write-through", 0},
		{"buffered-256", 256},
		{"buffered-4096", 4096},
	}
	for _, dn := range []string{"uniform", "zipf-0.99"} {
		for _, mode := range modes {
			pts := Uniform(71, n+poolN+updates/4, domain)
			pool, fresh := pts[n:n+poolN], pts[n+poolN:]
			rng := rand.New(rand.NewSource(77))
			pick := func() int { return rng.Intn(poolN) }
			if dn != "uniform" {
				z, err := dist.NewZipfian(int64(poolN), 0.99)
				if err != nil {
					return nil, err
				}
				pick = func() int { return int(z.Next(rng.Float64())) }
			}
			store := eio.NewMemStore(pageSize)
			idx, err := core.BuildThreeSided(store, epst.Options{}, pts[:n])
			if err != nil {
				return nil, err
			}
			var target core.Index = idx
			var buf *wbuf.Buffered
			if mode.maxOps > 0 {
				// No journal and no age flusher: table a prices the pure
				// buffering I/O, deterministically.
				buf, err = wbuf.NewBuffered(idx, wbuf.Options{MaxOps: mode.maxOps})
				if err != nil {
					return nil, err
				}
				target = buf
			}
			store.ResetStats()
			if err := writeoptUpdates(target, pool, fresh, updates, pick); err != nil {
				return nil, fmt.Errorf("%s/%s: %w", mode.name, dn, err)
			}
			flushes := uint64(0)
			if buf != nil {
				if err := buf.Flush(); err != nil { // pay the tail so amortization is honest
					return nil, err
				}
				flushes = buf.WriteBufferStats().Flushes
			}
			st := store.Stats()
			ops := float64(updates)
			t.AddRow(mode.name, dn, updates,
				fmt.Sprintf("%.3f", float64(st.Reads)/ops),
				fmt.Sprintf("%.3f", float64(st.Writes)/ops),
				fmt.Sprintf("%.3f", float64(st.IOs())/ops),
				flushes)
		}
	}
	return t, nil
}

// writeoptThroughput measures acknowledged-insert throughput on the
// durable file-backed stack: write-through pays one WAL transaction
// (several page writes + fsync) per insert; buffered pays one journal
// record append + fsync per insert and folds the tree work into bulk
// flushes. Both end fully durable and fully applied.
func writeoptThroughput(quick bool) (*Table, error) {
	inserts := 8_000
	if quick {
		inserts = 1_500
	}
	const coordRange = int64(1) << 30

	t := &Table{
		Title:  "writeopt-b: durable insert throughput, write-through vs buffered journal",
		Note:   fmt.Sprintf("%d inserts, file-backed TxStore (WAL group of 1 per op write-through); buffered: %d-op flush threshold, per-ack journal fsync; includes final flush/drain", inserts, wbuf.DefaultMaxOps),
		Header: []string{"mode", "inserts", "inserts/s", "speedup", "journal syncs", "flushes"},
	}

	dir, err := os.MkdirTemp("", "writeopt")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	var base float64
	for _, buffered := range []bool{false, true} {
		name := "write-through"
		if buffered {
			name = "buffered"
		}
		fs, err := eio.CreateFileStore(filepath.Join(dir, name+".db"), 4096)
		if err != nil {
			return nil, err
		}
		// WAL sized for the flush batches (a 128-op chunk can touch far
		// more pages than the 64-page default fits, amortized rebuilds
		// included).
		tx, err := eio.NewTxStore(fs, eio.TxOptions{WALPages: 2048})
		if err != nil {
			return nil, err
		}
		idx, err := core.NewThreeSided(tx, epst.Options{})
		if err != nil {
			return nil, err
		}
		writer := core.NewDurable(idx, tx)
		if err := tx.Sync(); err != nil {
			return nil, err
		}

		pts := Uniform(79, inserts, coordRange)
		var syncs, flushes uint64
		start := time.Now()
		if buffered {
			buf, err := wbuf.NewBuffered(writer, wbuf.Options{
				MaxOps:     wbuf.DefaultMaxOps,
				FlushChunk: 128,
				Journal:    filepath.Join(dir, "journal.wbuf"),
			})
			if err != nil {
				return nil, err
			}
			for _, p := range pts {
				if err := buf.Insert(p); err != nil {
					return nil, err
				}
			}
			if err := buf.Close(); err != nil { // final flush: everything lands in the tree
				return nil, err
			}
			s := buf.WriteBufferStats()
			syncs = s.JournalSyncs
			flushes = s.Flushes
		} else {
			for _, p := range pts {
				if err := writer.Insert(p); err != nil {
					return nil, err
				}
			}
		}
		elapsed := time.Since(start)
		if err := tx.Close(); err != nil {
			return nil, err
		}

		rate := float64(inserts) / elapsed.Seconds()
		if base == 0 {
			base = rate
		}
		t.AddRow(name, inserts,
			fmt.Sprintf("%.0f", rate),
			fmt.Sprintf("%.2fx", rate/base),
			syncs, flushes)
	}
	return t, nil
}

// writeoptBound runs the buffered stack through the e14 bound checker:
// per-op records are spiky (the unlucky op that crosses the threshold
// pays the whole flush), so the dynamic-indexability allowance amortizes
// update I/O over flush-threshold windows; queries stay per-op.
func writeoptBound(quick bool) (*Table, error) {
	n, churn, queries, maxOps := 40_000, 4_000, 100, 1024
	if quick {
		n, churn, queries, maxOps = 8_000, 1_200, 50, 256
	}
	pageSize := 1024
	b := eio.BlockCapacity(pageSize)
	domain := int64(n) * 4

	t := &Table{
		Title: "writeopt-c: bound check with the relaxed amortized-update allowance",
		Note: fmt.Sprintf("N=%d B=%d, %d-op flush threshold; overhead = IOs/allowance, query allowance log_B N + ceil(t/B) per op, update allowance log_B N amortized over the window column",
			n, b, maxOps),
		Header: []string{"mode", "op", "window", "n", "mean", "p50", "p95", "max"},
	}

	run := func(name string, buffered bool, window int) error {
		pts := Uniform(83, n+churn, domain)
		ts := eio.NewTraceStore(eio.NewMemStore(pageSize))
		idx, err := core.BuildThreeSided(ts, epst.Options{}, pts[:n])
		if err != nil {
			return err
		}
		var target core.Index = idx
		if buffered {
			buf, err := wbuf.NewBuffered(idx, wbuf.Options{MaxOps: maxOps})
			if err != nil {
				return err
			}
			defer buf.Close()
			target = buf
		}
		col := obs.NewCollector()
		in, err := obs.Instrument(target, ts, col)
		if err != nil {
			return err
		}
		for _, p := range pts[n:] {
			if err := in.Insert(p); err != nil {
				return err
			}
		}
		for _, p := range pts[:churn/2] {
			if _, err := in.Delete(p); err != nil {
				return err
			}
		}
		for _, q := range Queries3(89, queries, domain, 0.05) {
			rect := geom.Rect{XLo: q.XLo, XHi: q.XHi, YLo: q.YLo, YHi: geom.MaxCoord - 1}
			if _, err := in.Query(nil, rect); err != nil {
				return err
			}
		}
		rep := obs.CheckBoundsOpt(name, col.Records(), obs.BoundOptions{B: b, AmortizeWindow: window})
		for _, row := range []struct {
			op string
			s  obs.Summary
		}{{"insert", rep.Insert}, {"delete", rep.Delete}, {"query", rep.Query}} {
			w := window
			if row.op == "query" || w == 0 {
				w = 1
			}
			t.AddRow(name, row.op, w, row.s.Count, row.s.Mean, row.s.P50, row.s.P95, row.s.Max)
		}
		return nil
	}

	if err := run("write-through", false, 0); err != nil {
		return nil, err
	}
	if err := run("buffered-per-op", true, 0); err != nil {
		return nil, err
	}
	if err := run("buffered-amortized", true, maxOps); err != nil {
		return nil, err
	}
	return t, nil
}
