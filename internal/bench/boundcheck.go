package bench

import (
	"fmt"

	"rangesearch/internal/core"
	"rangesearch/internal/eio"
	"rangesearch/internal/epst"
	"rangesearch/internal/geom"
	"rangesearch/internal/obs"
	"rangesearch/internal/range4"
)

// CI thresholds for the bound-check smoke job (cmd/rsbench -bound-p95
// uses these as defaults). Generous on purpose: they catch a
// constant-factor regression (or an accidental O(N) scan), not noise.
// Empirically the quick workload sits around p95 ≈ 8–9 for queries and
// p95 ≈ 16–41 for updates (per-op update costs include amortized
// reorganization spikes, see E12).
const (
	CIQueryP95Limit  = 24.0
	CIUpdateP95Limit = 96.0
)

// BoundCheck is experiment e14: it runs ThreeSided (Theorem 6) and
// FourSided (Theorem 7) through an obs.Instrumented decorator on a traced
// store and reports each operation's I/O overhead relative to its
// theoretical allowance — IOs/(log_B N + ⌈t/B⌉) per query, IOs/log_B N per
// update. Unlike E7/E8/E10, which average costs over a workload, this is
// the per-operation distribution: the p95/max columns are what the CI
// bound-check job thresholds.
func BoundCheck(quick bool) ([]*Table, []obs.BoundReport, error) {
	n, churn, queries := 40000, 2000, 120
	if quick {
		n, churn, queries = 8000, 600, 60
	}
	pageSize := 1024
	b := eio.BlockCapacity(pageSize)
	domain := int64(n) * 4

	t := &Table{
		Title: "E14: empirical bound check (Theorems 6-7)",
		Note: fmt.Sprintf("N=%d B=%d; per-op overhead = IOs/allowance; query allowance log_B N + ceil(t/B); update allowance f*log_B N (f=1 for Thm 6, f=levels for Thm 7); %d churn ops + %d queries each",
			n, b, 2*churn, queries),
		Header: []string{"structure", "op", "n ops", "f", "mean", "p50", "p95", "max"},
	}

	var reports []obs.BoundReport
	addReport := func(rep obs.BoundReport) {
		reports = append(reports, rep)
		for _, row := range []struct {
			op string
			s  obs.Summary
		}{
			{"query", rep.Query},
			{"insert", rep.Insert},
			{"delete", rep.Delete},
		} {
			f := rep.UpdateFactor
			if row.op == "query" {
				f = 1
			}
			t.AddRow(rep.Name, row.op, row.s.Count, f, row.s.Mean, row.s.P50, row.s.P95, row.s.Max)
		}
	}

	// workload drives an instrumented index through churn and queries; the
	// bulk build is done before instrumenting so records cover exactly the
	// dynamic operations the theorems price.
	workload := func(name string, mk func(store eio.Store, bulk []geom.Point) (core.Index, error)) error {
		pts := Uniform(61, n+churn, domain)
		ts := eio.NewTraceStore(eio.NewMemStore(pageSize))
		idx, err := mk(ts, pts[:n])
		if err != nil {
			return fmt.Errorf("%s: build: %w", name, err)
		}
		col := obs.NewCollector()
		in, err := obs.Instrument(idx, ts, col)
		if err != nil {
			return fmt.Errorf("%s: instrument: %w", name, err)
		}
		for _, p := range pts[n:] {
			if err := in.Insert(p); err != nil {
				return fmt.Errorf("%s: insert: %w", name, err)
			}
		}
		for _, p := range pts[:churn] {
			if _, err := in.Delete(p); err != nil {
				return fmt.Errorf("%s: delete: %w", name, err)
			}
		}
		qs := Queries3(67, queries, domain, 0.05)
		for _, q := range qs {
			rect := geom.Rect{XLo: q.XLo, XHi: q.XHi, YLo: q.YLo, YHi: geom.MaxCoord - 1}
			if _, err := in.Query(nil, rect); err != nil {
				return fmt.Errorf("%s: query: %w", name, err)
			}
		}
		// Theorem 7's update bound carries the structure's level count
		// (every level is an EPST the update must maintain), so the
		// 4-sided allowance is levels * log_B N.
		factor := 1.0
		if fs, ok := idx.(*core.FourSided); ok {
			st, err := fs.Tree().Space()
			if err != nil {
				return fmt.Errorf("%s: space: %w", name, err)
			}
			factor = float64(st.Levels)
		}
		addReport(obs.CheckBoundsOpt(name, col.Records(), obs.BoundOptions{B: b, UpdateFactor: factor}))
		return nil
	}

	if err := workload("ThreeSided", func(store eio.Store, bulk []geom.Point) (core.Index, error) {
		return core.BuildThreeSided(store, epst.Options{}, bulk)
	}); err != nil {
		return nil, nil, err
	}
	if err := workload("FourSided", func(store eio.Store, bulk []geom.Point) (core.Index, error) {
		return core.BuildFourSided(store, range4.Options{}, bulk)
	}); err != nil {
		return nil, nil, err
	}
	return []*Table{t}, reports, nil
}

// E14 adapts BoundCheck to the experiment registry.
func E14(quick bool) ([]*Table, error) {
	tables, _, err := BoundCheck(quick)
	return tables, err
}
