package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"rangesearch/internal/obs"
)

// Snapshot is the machine-readable result of one experiment run — the
// unit of the performance trajectory. `rsbench -json` writes one
// BENCH_<name>.json per experiment; successive snapshots committed over
// time let a regression in any table cell be bisected instead of eyeballed
// from prose tables.
type Snapshot struct {
	// Name is the experiment name ("e7", "bound", ...).
	Name string `json:"name"`
	// Claim is the paper claim the experiment tests.
	Claim string `json:"claim,omitempty"`
	// Quick reports whether the run used reduced instance sizes.
	Quick bool `json:"quick"`
	// When is the wall-clock time of the run (RFC 3339).
	When time.Time `json:"when"`
	// DurationMS is the experiment wall time in milliseconds.
	DurationMS int64 `json:"duration_ms"`
	// GoVersion and GOARCH identify the toolchain and machine class, the
	// two biggest non-code sources of drift between snapshots.
	GoVersion string `json:"go_version"`
	GoArch    string `json:"goarch"`
	// Tables are the rendered result tables, cell-exact.
	Tables []TableSnapshot `json:"tables"`
	// Bounds carries the bound-checker reports when the experiment ran
	// one (e14).
	Bounds []obs.BoundReport `json:"bounds,omitempty"`
}

// TableSnapshot is the JSON form of a Table.
type TableSnapshot struct {
	Title  string     `json:"title"`
	Note   string     `json:"note,omitempty"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// NewSnapshot assembles a Snapshot from an experiment's outputs.
func NewSnapshot(name, claim string, quick bool, dur time.Duration, tables []*Table, bounds []obs.BoundReport) Snapshot {
	s := Snapshot{
		Name:       name,
		Claim:      claim,
		Quick:      quick,
		When:       time.Now().UTC().Truncate(time.Second),
		DurationMS: dur.Milliseconds(),
		GoVersion:  runtime.Version(),
		GoArch:     runtime.GOARCH,
		Bounds:     bounds,
	}
	for _, t := range tables {
		s.Tables = append(s.Tables, TableSnapshot{
			Title:  t.Title,
			Note:   t.Note,
			Header: t.Header,
			Rows:   t.Rows,
		})
	}
	return s
}

// WriteSnapshot writes s as dir/BENCH_<name>.json (dir is created if
// missing) and returns the path.
func WriteSnapshot(dir string, s Snapshot) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", s.Name))
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return "", err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// ReadSnapshot loads a snapshot written by WriteSnapshot.
func ReadSnapshot(path string) (Snapshot, error) {
	var s Snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("bench: %s: %w", path, err)
	}
	return s, nil
}
