package bench

import (
	"context"
	"fmt"
	"net"
	"time"

	"rangesearch/internal/core"
	"rangesearch/internal/eio"
	"rangesearch/internal/epst"
	"rangesearch/internal/server"
)

// EServe benchmarks the network serving subsystem end to end: an
// in-process rsserve (EPST under core.Concurrent behind the wire
// protocol) driven by the closed-loop load generator.
//
//   - table a: mixed read/write throughput and latency quantiles as client
//     connections scale 1..MaxWorkers, with per-stripe verification on —
//     every row is also a consistency check.
//   - table b: the effect of client pipelining depth at a fixed connection
//     count: deeper windows amortize round trips and feed the server's
//     batched response flushing.
//
// All numbers are wall-clock (hardware- and scheduler-dependent); no
// column is pinned by the trajectory regression guard.
func EServe(quick bool) ([]*Table, error) {
	dur := time.Second
	if quick {
		dur = 250 * time.Millisecond
	}
	workerCounts := scalePoints(MaxWorkers)

	ta := &Table{
		Title: "serve-a: end-to-end RPC throughput vs client connections",
		Note: fmt.Sprintf("in-process rsserve on SnapStore(MemStore); %v per row, pipeline 8, 50/50 read/write, per-stripe verification on",
			dur),
		Header: []string{"conns", "ops/s", "speedup", "q3 p50 ms", "q3 p99 ms", "ins p99 ms", "busy"},
	}
	var base float64
	for _, w := range workerCounts {
		rep, err := runServeLoad(server.LoadConfig{
			Workers:  w,
			Duration: dur,
			Pipeline: 8,
			Verify:   true,
			Domain:   1 << 18,
			Seed:     int64(100 + w),
		})
		if err != nil {
			return nil, err
		}
		if rep.Failed() {
			return nil, fmt.Errorf("serve-a workers=%d: %s", w, rep.FirstError)
		}
		if base == 0 {
			base = rep.OpsPerSec
		}
		q3 := rep.PerOp["query3"]
		ins := rep.PerOp["insert"]
		ta.AddRow(w, fmt.Sprintf("%.0f", rep.OpsPerSec), fmt.Sprintf("%.2fx", rep.OpsPerSec/base),
			fmt.Sprintf("%.3f", q3.P50Ms), fmt.Sprintf("%.3f", q3.P99Ms),
			fmt.Sprintf("%.3f", ins.P99Ms), rep.Busy)
	}

	tb := &Table{
		Title: "serve-b: client pipelining depth at fixed connections",
		Note: fmt.Sprintf("%d connections, %v per row; depth 1 is strict request/response, deeper windows amortize round trips",
			MaxWorkers, dur),
		Header: []string{"pipeline", "ops/s", "speedup", "ins p50 ms", "ins p99 ms"},
	}
	base = 0
	for _, depth := range []int{1, 4, 16} {
		rep, err := runServeLoad(server.LoadConfig{
			Workers:  MaxWorkers,
			Duration: dur,
			Pipeline: depth,
			Verify:   true,
			Domain:   1 << 18,
			Seed:     int64(200 + depth),
		})
		if err != nil {
			return nil, err
		}
		if rep.Failed() {
			return nil, fmt.Errorf("serve-b pipeline=%d: %s", depth, rep.FirstError)
		}
		if base == 0 {
			base = rep.OpsPerSec
		}
		ins := rep.PerOp["insert"]
		tb.AddRow(depth, fmt.Sprintf("%.0f", rep.OpsPerSec), fmt.Sprintf("%.2fx", rep.OpsPerSec/base),
			fmt.Sprintf("%.3f", ins.P50Ms), fmt.Sprintf("%.3f", ins.P99Ms))
	}
	return []*Table{ta, tb}, nil
}

// runServeLoad boots a fresh in-process server, runs one load
// configuration against it, and drains it clean.
func runServeLoad(cfg server.LoadConfig) (*server.LoadReport, error) {
	snap := eio.NewSnapStore(eio.NewMemStore(4096), 0)
	idx, err := core.NewThreeSided(snap, epst.Options{})
	if err != nil {
		return nil, err
	}
	hdr := idx.HeaderID()
	if _, err := snap.Commit(); err != nil {
		return nil, err
	}
	conc, err := core.NewConcurrent(idx, snap,
		func(s eio.Store) (core.Index, error) { return core.OpenThreeSided(s, hdr) },
		core.ConcurrentOptions{})
	if err != nil {
		return nil, err
	}
	srv := server.New(conc, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()

	cfg.Addr = ln.Addr().String()
	rep, lerr := server.RunLoad(cfg)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return nil, err
	}
	if err := <-served; err != nil {
		return nil, err
	}
	conc.Close()
	if _, err := snap.Commit(); err != nil {
		return nil, err
	}
	if err := snap.Close(); err != nil {
		return nil, err
	}
	return rep, lerr
}
