package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rangesearch/internal/core"
	"rangesearch/internal/eio"
	"rangesearch/internal/epst"
	"rangesearch/internal/geom"
	"rangesearch/internal/obs"
)

// MaxWorkers is the largest worker count the concurrent experiment scales
// to. cmd/rsbench sets it from -workers; the default covers the CI matrix.
var MaxWorkers = 8

// EConcurrent benchmarks the serving layer (core.Concurrent):
//
//   - read scaling: snapshot-query throughput at 1..MaxWorkers reader
//     goroutines over a fixed EPST, with the per-query I/O count measured
//     at every worker count — the counts must not move, only the
//     throughput (table a).
//   - group commit: insert throughput and observed batch-size distribution
//     at 1..MaxWorkers writer goroutines, where larger batch means fewer
//     epochs (and, on a durable stack, fewer WAL records) per op (table b).
//   - sharded vs single-mutex buffer pool under concurrent readers
//     (table c).
//
// Throughput numbers are hardware-dependent; the I/O counts are exact and
// deterministic, and the regression guard pins them.
func EConcurrent(quick bool) ([]*Table, error) {
	// The scaling rows are meaningless if the scheduler is pinned to one
	// P (an inherited GOMAXPROCS=1 once shipped a snapshot where 8
	// readers measured 0.86x): raise GOMAXPROCS to the machine's CPU
	// count for the duration of the experiment, and restore it after.
	if prev := runtime.GOMAXPROCS(0); runtime.NumCPU() > prev {
		runtime.GOMAXPROCS(runtime.NumCPU())
		defer runtime.GOMAXPROCS(prev)
	}

	n := 200_000
	nq := 4_000
	inserts := 30_000
	if quick {
		n = 20_000
		nq = 800
		inserts = 4_000
	}
	const coordRange = 1 << 30

	workerCounts := scalePoints(MaxWorkers)

	ta, err := concurrentReadScaling(n, nq, coordRange, workerCounts)
	if err != nil {
		return nil, err
	}
	tb, err := concurrentGroupCommit(inserts, coordRange, workerCounts)
	if err != nil {
		return nil, err
	}
	tc, err := concurrentPoolComparison(n, nq, coordRange, workerCounts)
	if err != nil {
		return nil, err
	}
	return []*Table{ta, tb, tc}, nil
}

// scalePoints returns 1, 2, 4, ... up to and including max.
func scalePoints(max int) []int {
	if max < 1 {
		max = 1
	}
	var out []int
	for w := 1; w < max; w *= 2 {
		out = append(out, w)
	}
	return append(out, max)
}

// concurrentReadScaling measures snapshot-query throughput and exact
// per-query I/Os at each worker count. The structure lives on a bare
// MemStore behind the SnapStore (no pool), so read counts are
// deterministic: the "reads/query" column must be identical in every row.
func concurrentReadScaling(n, nq int, coordRange int64, workerCounts []int) (*Table, error) {
	t := &Table{
		Title: "concurrent-a: snapshot read scaling (EPST under core.Concurrent)",
		Note: fmt.Sprintf("N=%d, %d queries/worker, GOMAXPROCS=%d; reads/query is exact and must not vary with workers",
			n, nq, runtime.GOMAXPROCS(0)),
		Header: []string{"workers", "queries/s", "speedup", "per-query I/O", "mean t"},
	}

	mem := eio.NewMemStore(4096)
	snap := eio.NewSnapStore(mem, 0)
	idx, err := core.BuildThreeSided(snap, epst.Options{}, Uniform(7, n, coordRange))
	if err != nil {
		return nil, err
	}
	hdr := idx.HeaderID()
	if _, err := snap.Commit(); err != nil {
		return nil, err
	}
	c, err := core.NewConcurrent(idx, snap,
		func(s eio.Store) (core.Index, error) { return core.OpenThreeSided(s, hdr) },
		core.ConcurrentOptions{})
	if err != nil {
		return nil, err
	}

	queries := Queries3(11, nq, coordRange, 0.001)
	var base float64
	for _, w := range workerCounts {
		// Warm the epoch view, then measure I/Os and results serially (the
		// counts are per-query exact) and throughput in parallel.
		sn, err := c.Snapshot()
		if err != nil {
			return nil, err
		}
		mem.ResetStats()
		snap.ResetStats()
		var results int
		for _, q := range queries {
			pts, err := sn.Query(nil, geom.Rect{XLo: q.XLo, XHi: q.XHi, YLo: q.YLo, YHi: geom.MaxCoord})
			if err != nil {
				sn.Close()
				return nil, err
			}
			results += len(pts)
		}
		readsPerQuery := float64(mem.Stats().Reads+snap.SnapStats().VersionReads) / float64(len(queries))

		start := time.Now()
		var wg sync.WaitGroup
		var qerr atomic.Value
		for i := 0; i < w; i++ {
			wg.Add(1)
			go func(off int) {
				defer wg.Done()
				for j := range queries {
					q := queries[(j+off)%len(queries)]
					if _, err := sn.Query(nil, geom.Rect{XLo: q.XLo, XHi: q.XHi, YLo: q.YLo, YHi: geom.MaxCoord}); err != nil {
						qerr.Store(err)
						return
					}
				}
			}(i * 37)
		}
		wg.Wait()
		elapsed := time.Since(start)
		sn.Close()
		if err, ok := qerr.Load().(error); ok {
			return nil, err
		}
		qps := float64(w*len(queries)) / elapsed.Seconds()
		if base == 0 {
			base = qps
		}
		t.AddRow(w, fmt.Sprintf("%.0f", qps), fmt.Sprintf("%.2fx", qps/base),
			fmt.Sprintf("%.2f", readsPerQuery), fmt.Sprintf("%.1f", float64(results)/float64(len(queries))))
	}
	return t, nil
}

// concurrentGroupCommit measures insert throughput and the batch-size
// distribution the group-commit leader achieves at each writer count.
func concurrentGroupCommit(inserts int, coordRange int64, workerCounts []int) (*Table, error) {
	t := &Table{
		Title:  "concurrent-b: group-commit write throughput",
		Note:   fmt.Sprintf("%d inserts total per row, split across workers; batch>1 means coalescing", inserts),
		Header: []string{"workers", "inserts/s", "epochs", "mean batch", "max batch", "p95 wait"},
	}
	for _, w := range workerCounts {
		var rec obs.Contention
		mem := eio.NewMemStore(4096)
		snap := eio.NewSnapStore(mem, 0)
		idx, err := core.NewThreeSided(snap, epst.Options{})
		if err != nil {
			return nil, err
		}
		hdr := idx.HeaderID()
		if _, err := snap.Commit(); err != nil {
			return nil, err
		}
		c, err := core.NewConcurrent(idx, snap,
			func(s eio.Store) (core.Index, error) { return core.OpenThreeSided(s, hdr) },
			core.ConcurrentOptions{Recorder: &rec})
		if err != nil {
			return nil, err
		}

		pts := Uniform(int64(100+w), inserts, coordRange)
		per := inserts / w
		start := time.Now()
		var wg sync.WaitGroup
		var werr atomic.Value
		for i := 0; i < w; i++ {
			wg.Add(1)
			go func(chunk []geom.Point) {
				defer wg.Done()
				for _, p := range chunk {
					if err := c.Insert(p); err != nil {
						werr.Store(err)
						return
					}
				}
			}(pts[i*per : (i+1)*per])
		}
		wg.Wait()
		elapsed := time.Since(start)
		if err, ok := werr.Load().(error); ok {
			return nil, err
		}
		bs := rec.BatchSize()
		t.AddRow(w,
			fmt.Sprintf("%.0f", float64(w*per)/elapsed.Seconds()),
			bs.Count(),
			fmt.Sprintf("%.2f", bs.Mean()),
			bs.Max(),
			time.Duration(rec.LockWait().Quantile(0.95)).Round(time.Microsecond))
	}
	return t, nil
}

// concurrentPoolComparison runs the same parallel read workload through a
// single-mutex Pool and a ShardedPool of the same total capacity, both on
// the same tree image, and reports throughput plus pool hit rates.
func concurrentPoolComparison(n, nq int, coordRange int64, workerCounts []int) (*Table, error) {
	t := &Table{
		Title:  "concurrent-c: buffer pool sharding under parallel readers",
		Note:   fmt.Sprintf("N=%d, pool capacity 256 pages, %d shards; same tree image behind both pools", n, eio.DefaultPoolShards),
		Header: []string{"workers", "pool", "queries/s", "hit rate", "backing reads"},
	}

	// One tree image shared by both pool configurations.
	mem := eio.NewMemStore(4096)
	idx, err := core.BuildThreeSided(mem, epst.Options{}, Uniform(7, n, coordRange))
	if err != nil {
		return nil, err
	}
	hdr := idx.HeaderID()
	queries := Queries3(13, nq, coordRange, 0.001)

	type pooled struct {
		name  string
		store eio.Store
		stats func() (hits, misses, backing uint64)
		reset func()
	}
	const capacity = 256
	single := eio.NewPool(readOnly{mem}, capacity)
	sharded := eio.NewShardedPool(readOnly{mem}, capacity, eio.DefaultPoolShards)
	configs := []pooled{
		{"single", single,
			func() (uint64, uint64, uint64) {
				ps := single.PoolStats()
				return ps.Hits, ps.Misses, mem.Stats().Reads
			},
			func() { single.ResetStats(); mem.ResetStats() }},
		{"sharded", sharded,
			func() (uint64, uint64, uint64) {
				ps := sharded.PoolStats()
				return ps.Hits, ps.Misses, mem.Stats().Reads
			},
			func() { sharded.ResetStats(); mem.ResetStats() }},
	}

	for _, w := range workerCounts {
		for _, pc := range configs {
			tree, err := core.OpenThreeSided(pc.store, hdr)
			if err != nil {
				return nil, err
			}
			pc.reset()
			start := time.Now()
			var wg sync.WaitGroup
			var qerr atomic.Value
			for i := 0; i < w; i++ {
				wg.Add(1)
				go func(off int) {
					defer wg.Done()
					for j := range queries {
						q := queries[(j+off)%len(queries)]
						if _, err := tree.Query3(nil, q); err != nil {
							qerr.Store(err)
							return
						}
					}
				}(i * 53)
			}
			wg.Wait()
			elapsed := time.Since(start)
			if err, ok := qerr.Load().(error); ok {
				return nil, err
			}
			hits, misses, backing := pc.stats()
			hitRate := 0.0
			if hits+misses > 0 {
				hitRate = float64(hits) / float64(hits+misses)
			}
			t.AddRow(w, pc.name,
				fmt.Sprintf("%.0f", float64(w*len(queries))/elapsed.Seconds()),
				fmt.Sprintf("%.3f", hitRate),
				backing)
		}
	}
	return t, nil
}

// readOnly hides a store's mutating methods from a pool used by pure
// readers, so concurrent pooled queries cannot dirty frames.
type readOnly struct{ eio.Store }

func (r readOnly) Write(id eio.PageID, p []byte) error { return eio.ErrReadOnly }
func (r readOnly) Alloc() (eio.PageID, error)          { return eio.NilPage, eio.ErrReadOnly }
func (r readOnly) Free(id eio.PageID) error            { return eio.ErrReadOnly }
