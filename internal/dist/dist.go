// Package dist holds the skewed key-distribution generators shared by
// the bench data builders and the rsload workload workers: a YCSB-style
// Zipfian rank sampler and a hotspot (hot-set) sampler. It is a
// dependency leaf (stdlib only) so both internal/bench and
// internal/server can draw from one implementation.
package dist

import (
	"fmt"
	"math"
)

// Zipfian samples ranks in [0, n) with P(rank) ∝ 1/(rank+1)^theta — the
// Gray et al. / YCSB "zipfian" generator: rank 0 is the hottest key.
// theta must be in (0, 1); YCSB's default skew is 0.99 (a handful of
// keys absorb most of the traffic). Construction is O(n) (one zeta
// sum); sampling is O(1).
type Zipfian struct {
	n     int64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	half  float64 // 0.5^theta
}

// NewZipfian builds a sampler over [0, n). It returns an error for
// n < 1 or theta outside (0, 1).
func NewZipfian(n int64, theta float64) (*Zipfian, error) {
	if n < 1 {
		return nil, fmt.Errorf("dist: zipfian over %d keys", n)
	}
	if theta <= 0 || theta >= 1 {
		return nil, fmt.Errorf("dist: zipfian theta %v outside (0, 1)", theta)
	}
	zetan := zeta(n, theta)
	zeta2 := zeta(2, theta)
	z := &Zipfian{
		n:     n,
		theta: theta,
		alpha: 1 / (1 - theta),
		zetan: zetan,
		half:  math.Pow(0.5, theta),
	}
	if n > 1 {
		z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/zetan)
	}
	return z, nil
}

// zeta returns the generalized harmonic number Σ_{i=1..n} 1/i^theta.
func zeta(n int64, theta float64) float64 {
	sum := 0.0
	for i := int64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// N returns the sampler's key-space size.
func (z *Zipfian) N() int64 { return z.n }

// Next maps one uniform variate u ∈ [0, 1) to a rank in [0, n).
// Deterministic in u, so callers own the RNG (per-worker seeding, replay).
func (z *Zipfian) Next(u float64) int64 {
	if u < 0 {
		u = 0
	} else if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if z.n == 1 || uz < 1+z.half {
		return 1 % z.n
	}
	r := int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if r < 0 {
		r = 0
	}
	if r >= z.n {
		r = z.n - 1
	}
	return r
}

// Hotspot samples ranks in [0, n): with probability hotProb the rank is
// uniform over the hot set (the first ⌈hotFrac·n⌉ ranks), otherwise
// uniform over the cold remainder. The classic 90/10 skew is
// Hotspot{hotFrac: 0.1, hotProb: 0.9}.
type Hotspot struct {
	n   int64
	hot int64
	p   float64
}

// NewHotspot builds a hotspot sampler over [0, n). hotFrac and hotProb
// must be in (0, 1].
func NewHotspot(n int64, hotFrac, hotProb float64) (*Hotspot, error) {
	if n < 1 {
		return nil, fmt.Errorf("dist: hotspot over %d keys", n)
	}
	if hotFrac <= 0 || hotFrac > 1 || hotProb < 0 || hotProb > 1 {
		return nil, fmt.Errorf("dist: hotspot frac %v / prob %v outside (0, 1]", hotFrac, hotProb)
	}
	hot := int64(math.Ceil(hotFrac * float64(n)))
	if hot < 1 {
		hot = 1
	}
	if hot > n {
		hot = n
	}
	return &Hotspot{n: n, hot: hot, p: hotProb}, nil
}

// Next maps two uniform variates (set selector, position) to a rank.
func (h *Hotspot) Next(uSet, uPos float64) int64 {
	if uPos < 0 {
		uPos = 0
	} else if uPos >= 1 {
		uPos = math.Nextafter(1, 0)
	}
	if uSet < h.p || h.hot == h.n {
		return int64(uPos * float64(h.hot))
	}
	return h.hot + int64(uPos*float64(h.n-h.hot))
}
