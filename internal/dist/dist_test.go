package dist

import (
	"math/rand"
	"testing"
)

func TestZipfianSkew(t *testing.T) {
	const n = 1 << 14
	z, err := NewZipfian(n, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	const draws = 200000
	counts := make(map[int64]int)
	for i := 0; i < draws; i++ {
		r := z.Next(rng.Float64())
		if r < 0 || r >= n {
			t.Fatalf("rank %d out of [0,%d)", r, n)
		}
		counts[r]++
	}
	// The hottest 1% of ranks must absorb well over half the draws at
	// theta=0.99 (true mass is ~70%+); uniform would give them 1%.
	hot := 0
	for r, c := range counts {
		if r < n/100 {
			hot += c
		}
	}
	if frac := float64(hot) / draws; frac < 0.5 {
		t.Fatalf("hottest 1%% drew %.1f%% of traffic, want > 50%% at theta=0.99", frac*100)
	}
	// Rank 0 is the mode.
	for r, c := range counts {
		if c > counts[0] {
			t.Fatalf("rank %d (%d draws) hotter than rank 0 (%d)", r, c, counts[0])
		}
	}
}

func TestZipfianValidation(t *testing.T) {
	for _, tc := range []struct {
		n     int64
		theta float64
	}{{0, 0.5}, {10, 0}, {10, 1}, {10, -1}, {10, 1.5}} {
		if _, err := NewZipfian(tc.n, tc.theta); err == nil {
			t.Fatalf("NewZipfian(%d, %v) accepted", tc.n, tc.theta)
		}
	}
	z, err := NewZipfian(1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []float64{0, 0.5, 0.999, 1, -1} {
		if r := z.Next(u); r != 0 {
			t.Fatalf("n=1 sampler returned %d", r)
		}
	}
}

func TestHotspot(t *testing.T) {
	const n = 1000
	h, err := NewHotspot(n, 0.1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	const draws = 100000
	inHot := 0
	for i := 0; i < draws; i++ {
		r := h.Next(rng.Float64(), rng.Float64())
		if r < 0 || r >= n {
			t.Fatalf("rank %d out of [0,%d)", r, n)
		}
		if r < n/10 {
			inHot++
		}
	}
	if frac := float64(inHot) / draws; frac < 0.85 || frac > 0.95 {
		t.Fatalf("hot set drew %.1f%%, want ~90%%", frac*100)
	}
	if _, err := NewHotspot(0, 0.1, 0.9); err == nil {
		t.Fatal("accepted n=0")
	}
	if _, err := NewHotspot(10, 0, 0.9); err == nil {
		t.Fatal("accepted hotFrac=0")
	}
}
