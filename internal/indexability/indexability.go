// Package indexability implements the indexability framework of
// Hellerstein, Koutsoupias and Papadimitriou as used in Section 2 of Arge,
// Samoladas & Vitter (PODS 1999): workloads, indexing schemes, and the two
// quality measures — redundancy r and access overhead A — together with the
// Fibonacci workload and the Redundancy-Theorem lower bound on the r/A
// trade-off (Theorems 1–3 of the paper).
//
// An indexing scheme places the N instances (points) on blocks of at most B
// points, possibly with duplication. Its redundancy is r = B·|blocks|/N,
// and its access overhead is the least A such that every query q is covered
// by at most A·⌈|q|/B⌉ blocks. Search cost is deliberately ignored: the
// framework isolates the combinatorial placement problem.
package indexability

import (
	"fmt"
	"math"

	"rangesearch/internal/geom"
)

// Workload is a simple hypergraph (I, Q): a set of instances (points) and a
// set of queries (orthogonal rectangles whose point subsets are the
// hyperedges).
type Workload struct {
	Points  []geom.Point
	Queries []geom.Rect
}

// ResultSize returns |q|: the number of workload points satisfying q.
func (w *Workload) ResultSize(q geom.Rect) int {
	n := 0
	for _, p := range w.Points {
		if q.Contains(p) {
			n++
		}
	}
	return n
}

// Scheme is the measured view of an indexing scheme: a set of blocks over a
// point set, plus a cover procedure that names the blocks needed to answer
// a query. Concrete constructions (internal/sweep, internal/hier) implement
// it; the functions in this package compute r and A for any implementation.
type Scheme interface {
	// BlockSize returns B.
	BlockSize() int
	// NumBlocks returns the total number of blocks in the scheme.
	NumBlocks() int
	// NumPoints returns N, the number of distinct instances indexed.
	NumPoints() int
	// Cover returns the contents of the blocks the scheme uses to answer q.
	// The union of the returned blocks must contain every indexed point
	// satisfying q.
	Cover(q geom.Rect) ([][]geom.Point, error)
}

// Redundancy returns r = B·|blocks| / N for the scheme.
func Redundancy(s Scheme) float64 {
	n := s.NumPoints()
	if n == 0 {
		return 0
	}
	return float64(s.BlockSize()*s.NumBlocks()) / float64(n)
}

// AccessReport is the result of measuring a scheme against a query set.
type AccessReport struct {
	// Overhead is the measured access overhead: the maximum over queries of
	// blocksUsed / ⌈|q|/B⌉ (queries with empty results use ⌈·⌉ = 1).
	Overhead float64
	// WorstQuery attains Overhead.
	WorstQuery geom.Rect
	// MaxBlocks is the largest cover used by any query.
	MaxBlocks int
	// MeanBlocks is the average cover size.
	MeanBlocks float64
	// Queries is the number of queries measured.
	Queries int
}

// MeasureAccess computes the access overhead of s over the workload's
// queries, verifying along the way that every cover is correct (contains
// all matching points) and that no block exceeds B points. It returns an
// error on the first violation: a failed cover is a bug in the scheme, not
// a measurement.
func MeasureAccess(s Scheme, w *Workload) (AccessReport, error) {
	rep := AccessReport{Queries: len(w.Queries)}
	b := s.BlockSize()
	totalBlocks := 0
	for _, q := range w.Queries {
		cover, err := s.Cover(q)
		if err != nil {
			return rep, fmt.Errorf("indexability: cover %v: %w", q, err)
		}
		if err := verifyCover(cover, w.Points, q, b); err != nil {
			return rep, err
		}
		used := len(cover)
		totalBlocks += used
		if used > rep.MaxBlocks {
			rep.MaxBlocks = used
		}
		res := w.ResultSize(q)
		denom := (res + b - 1) / b
		if denom == 0 {
			denom = 1
		}
		if ov := float64(used) / float64(denom); ov > rep.Overhead {
			rep.Overhead = ov
			rep.WorstQuery = q
		}
	}
	if len(w.Queries) > 0 {
		rep.MeanBlocks = float64(totalBlocks) / float64(len(w.Queries))
	}
	return rep, nil
}

// verifyCover checks that the union of the cover's blocks contains every
// point of pts matching q and that every block holds at most b points.
func verifyCover(cover [][]geom.Point, pts []geom.Point, q geom.Rect, b int) error {
	want := 0
	for _, p := range pts {
		if q.Contains(p) {
			want++
		}
	}
	if want == 0 {
		return nil
	}
	seen := make(map[geom.Point]bool, want)
	for _, blk := range cover {
		if len(blk) > b {
			return fmt.Errorf("indexability: block of %d points exceeds B=%d", len(blk), b)
		}
		for _, p := range blk {
			if q.Contains(p) {
				seen[p] = true
			}
		}
	}
	// Duplicate points in the input collapse in the map; recount matches
	// over distinct points for a fair comparison.
	distinct := make(map[geom.Point]bool, want)
	for _, p := range pts {
		if q.Contains(p) {
			distinct[p] = true
		}
	}
	if len(seen) != len(distinct) {
		return fmt.Errorf("indexability: cover of %v misses %d of %d matching points", q, len(distinct)-len(seen), len(distinct))
	}
	return nil
}

// CeilDiv returns ⌈a/b⌉ for positive b.
func CeilDiv(a, b int) int { return (a + b - 1) / b }

// Log returns log base `base` of x (both > 1).
func Log(base, x float64) float64 { return math.Log(x) / math.Log(base) }
