package indexability

import (
	"fmt"
	"math"
)

// The Redundancy Theorem of Samoladas and Miranker (Theorem 1 of the paper)
// and its instantiation on the Fibonacci workload (Theorems 2 and 3).
//
// Theorem 1 (Redundancy Theorem): if an indexing scheme with block size B
// and access overhead A covers queries q₁…q_M with |q_i| ≥ B and pairwise
// intersections |q_i ∩ q_j| ≤ B/(2(εA)²), then
//
//	r ≥ (ε−2)/(2ε) · Σ|q_i| / N,
//
// for any real 2 < ε < B/A with B/(εA) integral.
//
// Applied to the Fibonacci workload with queries of size k·B tiled at every
// admissible aspect ratio (c = 4(c₁/c₂)·k·(εA)² separates the ratios enough
// to meet the intersection condition), this yields
//
//	r ≥ (ε−2)/(2ε) · log_c(N/(c₁kB)) / c₁  = Ω(log n / (k·log A)).
//
// Theorem 2 is the case k = 1: r = Ω(log n / log A). Theorem 3 relaxes the
// cover budget to L + A·t blocks by setting k = L/A:
// r = Ω(log n / (log L + log A)).
//
// Note on transcription: the extended abstract's typeset inequality for
// Theorem 1 is garbled in extant copies ("(ε−2+1)/(2εBN)"); the form above
// is the one consistent with the paper's own derivation of Theorem 2 from
// it, and with the Ω(log n / log A) statement. Only the constant, not the
// shape, is affected.

// LowerBoundParams configures the Fibonacci lower-bound evaluation.
type LowerBoundParams struct {
	N int64   // number of points (ideally a Fibonacci number)
	B int     // block size
	A float64 // access overhead budget (Theorem 2: constant A)
	L float64 // additive cover budget (Theorem 3); ≤ A means "Theorem 2"
	// Epsilon is the free parameter of Theorem 1; 0 picks it automatically.
	Epsilon float64
}

// LowerBound is the evaluated Fibonacci lower bound.
type LowerBound struct {
	R       float64 // the redundancy lower bound
	K       int     // query size multiplier used (k = max(1, L/A))
	C       float64 // aspect-ratio separation c = 4(c₁/c₂)k(εA)²
	Ratios  float64 // log_c(N/(c₁kB)): number of distinct aspect ratios
	Epsilon float64 // ε actually used
	// Applicable reports whether the theorem's side conditions
	// (B ≥ 4(εA)², ε > 2, at least one admissible ratio) hold for these
	// parameters; when false, R is 0 and the bound is vacuous.
	Applicable bool
}

// FibonacciLowerBound evaluates the Theorem 2/3 lower bound for the given
// parameters.
func FibonacciLowerBound(p LowerBoundParams) (LowerBound, error) {
	if p.N < 2 || p.B < 2 || p.A < 1 {
		return LowerBound{}, fmt.Errorf("indexability: invalid lower-bound parameters N=%d B=%d A=%g", p.N, p.B, p.A)
	}
	k := 1
	if p.L > p.A {
		k = int(math.Ceil(p.L / p.A))
	}
	eps := p.Epsilon
	if eps == 0 {
		// ε = 4 balances the (ε−2)/2ε factor (=1/4) against the growth of
		// c; any 2 < ε < B/A works, larger ε tightens the leading factor
		// toward 1/2 but widens c.
		eps = 4
	}
	lb := LowerBound{K: k, Epsilon: eps}
	if eps <= 2 || eps >= float64(p.B)/p.A {
		return lb, nil // vacuous: side condition fails
	}
	if float64(p.B) < 4*(eps*p.A)*(eps*p.A) {
		return lb, nil // B ≥ 4(εA)² required
	}
	lb.C = 4 * (FibC1 / FibC2) * float64(k) * (eps * p.A) * (eps * p.A)
	arg := float64(p.N) / (FibC1 * float64(k) * float64(p.B))
	if arg <= 1 || lb.C <= 1 {
		return lb, nil
	}
	lb.Ratios = Log(lb.C, arg)
	lb.R = (eps - 2) / (2 * eps) * lb.Ratios / FibC1
	lb.Applicable = lb.R > 0
	return lb, nil
}

// TradeoffShape returns the asymptotic form log(n)/log(ρ) that Theorem 5's
// construction achieves, for comparing measured redundancy against the
// lower bound's shape: both should scale with log n over log of the access
// budget.
func TradeoffShape(n float64, rho float64) float64 {
	if n <= 1 || rho <= 1 {
		return 0
	}
	return math.Log(n) / math.Log(rho)
}
