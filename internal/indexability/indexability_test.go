package indexability

import (
	"math"
	"math/rand"
	"testing"

	"rangesearch/internal/geom"
)

func TestFib(t *testing.T) {
	want := []int64{1, 1, 2, 3, 5, 8, 13, 21, 34, 55}
	for i, w := range want {
		if got := Fib(i + 1); got != w {
			t.Errorf("Fib(%d) = %d, want %d", i+1, got, w)
		}
	}
	if Fib(90) <= 0 {
		t.Error("Fib(90) overflowed")
	}
}

func TestFibonacciLattice(t *testing.T) {
	k := 12 // N = 144
	pts := FibonacciLattice(k)
	n := Fib(k)
	if int64(len(pts)) != n {
		t.Fatalf("lattice size %d, want %d", len(pts), n)
	}
	seenX := make(map[int64]bool)
	seenY := make(map[int64]bool)
	step := Fib(k - 1)
	for i, p := range pts {
		if p.X != int64(i) {
			t.Fatalf("point %d has x=%d", i, p.X)
		}
		if want := (int64(i) * step) % n; p.Y != want {
			t.Fatalf("point %d has y=%d, want %d", i, p.Y, want)
		}
		seenX[p.X] = true
		seenY[p.Y] = true
	}
	// gcd(f_{k-1}, f_k) = 1, so the y-values are a permutation of 0..N-1.
	if len(seenX) != int(n) || len(seenY) != int(n) {
		t.Fatalf("lattice is not a permutation: %d x, %d y", len(seenX), len(seenY))
	}
}

func TestLatticeCountMatchesBruteForce(t *testing.T) {
	k := 13
	pts := FibonacciLattice(k)
	rng := rand.New(rand.NewSource(2))
	n := Fib(k)
	for i := 0; i < 200; i++ {
		x1, x2 := rng.Int63n(n), rng.Int63n(n)
		y1, y2 := rng.Int63n(n), rng.Int63n(n)
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		if y1 > y2 {
			y1, y2 = y2, y1
		}
		r := geom.Rect{XLo: x1, XHi: x2, YLo: y1, YHi: y2}
		want := 0
		for _, p := range pts {
			if r.Contains(p) {
				want++
			}
		}
		if got := LatticeCount(k, r); got != want {
			t.Fatalf("LatticeCount(%v) = %d, want %d", r, got, want)
		}
	}
}

// TestProposition1 verifies the density property the whole Section 2.1
// analysis rests on: rectangles of area ℓBN on the lattice hold Θ(ℓB)
// points, with constants close to the paper's c₁ ≈ 1.9 and c₂ ≈ 0.45.
func TestProposition1(t *testing.T) {
	rep := MeasureDensity(21, 16, 1, 2.0) // N = 10946
	if rep.Rects == 0 {
		t.Fatal("no rectangles measured")
	}
	// Measured constants: Expected/Min ≤ c₁ and Expected/Max ≥ c₂
	// (generous margins; the proposition's constants are asymptotic).
	if rep.C1 > FibC1*1.35 {
		t.Errorf("observed c1 = %.3f far above %v (min=%d expected=%.1f)", rep.C1, FibC1, rep.Min, rep.Expected)
	}
	if rep.C2 < FibC2*0.75 {
		t.Errorf("observed c2 = %.3f far below %v (max=%d expected=%.1f)", rep.C2, FibC2, rep.Max, rep.Expected)
	}
}

func TestTilingQueriesCoverLattice(t *testing.T) {
	k, B := 16, 8
	qs := TilingQueries(k, B, 1, 4.0)
	if len(qs) == 0 {
		t.Fatal("no tiling queries generated")
	}
	n := Fib(k)
	for _, q := range qs {
		if q.XLo < 0 || q.XHi >= n || q.YLo < 0 || q.YHi >= n || q.Empty() {
			t.Fatalf("query %v out of domain", q)
		}
	}
}

// unitScheme is a trivial scheme: one block per ⌈N/B⌉ x-consecutive points.
type unitScheme struct {
	b      int
	blocks [][]geom.Point
	n      int
}

func (u *unitScheme) BlockSize() int { return u.b }
func (u *unitScheme) NumBlocks() int { return len(u.blocks) }
func (u *unitScheme) NumPoints() int { return u.n }
func (u *unitScheme) Cover(q geom.Rect) ([][]geom.Point, error) {
	var out [][]geom.Point
	for _, blk := range u.blocks {
		for _, p := range blk {
			if q.Contains(p) {
				out = append(out, blk)
				break
			}
		}
	}
	return out, nil
}

func TestMeasureAccess(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 2}, {X: 3, Y: 3}}
	u := &unitScheme{b: 2, n: 4, blocks: [][]geom.Point{{{X: 0, Y: 0}, {X: 1, Y: 1}}, {{X: 2, Y: 2}, {X: 3, Y: 3}}}}
	if r := Redundancy(u); r != 1.0 {
		t.Fatalf("redundancy %v", r)
	}
	w := &Workload{
		Points: pts,
		Queries: []geom.Rect{
			{XLo: 0, XHi: 3, YLo: 0, YHi: 3}, // all points: 2 blocks / ⌈4/2⌉ = 1
			{XLo: 1, XHi: 2, YLo: 0, YHi: 3}, // 2 points spanning both blocks: 2/1 = 2
		},
	}
	rep, err := MeasureAccess(u, w)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Overhead != 2 {
		t.Fatalf("overhead %v, want 2", rep.Overhead)
	}
	if rep.MaxBlocks != 2 || rep.MeanBlocks != 2 {
		t.Fatalf("blocks: max=%d mean=%v", rep.MaxBlocks, rep.MeanBlocks)
	}
}

func TestMeasureAccessDetectsBadCover(t *testing.T) {
	// A scheme that "forgets" a block.
	u := &unitScheme{b: 2, n: 2, blocks: [][]geom.Point{{{X: 0, Y: 0}, {X: 1, Y: 1}}}}
	bad := &missingCover{u}
	w := &Workload{
		Points:  []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}},
		Queries: []geom.Rect{{XLo: 0, XHi: 1, YLo: 0, YHi: 1}},
	}
	if _, err := MeasureAccess(bad, w); err == nil {
		t.Fatal("verification accepted an incomplete cover")
	}
}

type missingCover struct{ *unitScheme }

func (m *missingCover) Cover(geom.Rect) ([][]geom.Point, error) { return nil, nil }

func TestFibonacciLowerBound(t *testing.T) {
	lb, err := FibonacciLowerBound(LowerBoundParams{N: Fib(40), B: 1024, A: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !lb.Applicable {
		t.Fatalf("bound should apply: %+v", lb)
	}
	if lb.R <= 0 {
		t.Fatalf("bound %v not positive", lb.R)
	}
	// Larger A must weaken (not strengthen) the bound.
	lb2, err := FibonacciLowerBound(LowerBoundParams{N: Fib(40), B: 1024, A: 4})
	if err != nil {
		t.Fatal(err)
	}
	if lb2.Applicable && lb2.R > lb.R {
		t.Errorf("bound grew with A: %v -> %v", lb.R, lb2.R)
	}
	// Larger N must strengthen it.
	lb3, err := FibonacciLowerBound(LowerBoundParams{N: Fib(60), B: 1024, A: 2})
	if err != nil {
		t.Fatal(err)
	}
	if lb3.R <= lb.R {
		t.Errorf("bound did not grow with N: %v -> %v", lb.R, lb3.R)
	}
	// Theorem 3 form: bigger L weakens the bound.
	lb4, err := FibonacciLowerBound(LowerBoundParams{N: Fib(60), B: 1024, A: 2, L: 32})
	if err != nil {
		t.Fatal(err)
	}
	if lb4.Applicable && lb4.R >= lb3.R {
		t.Errorf("Theorem 3 bound with L=32 (%v) should be below Theorem 2 bound (%v)", lb4.R, lb3.R)
	}
	// Invalid parameters are rejected.
	if _, err := FibonacciLowerBound(LowerBoundParams{N: 0, B: 8, A: 1}); err == nil {
		t.Error("invalid N accepted")
	}
	// Vacuous when B < 4(εA)².
	lb5, err := FibonacciLowerBound(LowerBoundParams{N: Fib(40), B: 64, A: 8})
	if err != nil {
		t.Fatal(err)
	}
	if lb5.Applicable {
		t.Error("bound should be vacuous for small B")
	}
}

func TestTradeoffShape(t *testing.T) {
	if TradeoffShape(1, 2) != 0 || TradeoffShape(100, 1) != 0 {
		t.Error("degenerate shapes should be 0")
	}
	got := TradeoffShape(1024, 4)
	want := math.Log(1024) / math.Log(4)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("shape %v want %v", got, want)
	}
}

func TestCeilDiv(t *testing.T) {
	cases := [][3]int{{0, 5, 0}, {1, 5, 1}, {5, 5, 1}, {6, 5, 2}}
	for _, c := range cases {
		if got := CeilDiv(c[0], c[1]); got != c[2] {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}
