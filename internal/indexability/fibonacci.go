package indexability

import (
	"fmt"
	"math"

	"rangesearch/internal/geom"
)

// The Fibonacci workload of Koutsoupias and Taylor, the worst-case workload
// for two-dimensional range search indexability (Section 2.1 of the paper).
//
// For N = f_k (the k-th Fibonacci number), the Fibonacci lattice is
//
//	F_N = { (i, i·f_{k-1} mod N) : i = 0, …, N−1 }.
//
// Its key property (Proposition 1): every rectangle of area ℓBN contains
// Θ(ℓB) points — at least ℓB/c₁ and at most ℓB/c₂ with c₁ ≈ 1.9 and
// c₂ ≈ 0.45 — so rectangles of every aspect ratio are equally "dense".

// Proposition 1 constants.
const (
	FibC1 = 1.9
	FibC2 = 0.45
)

// Fib returns the k-th Fibonacci number with f_1 = f_2 = 1. It panics for
// k < 1 or k > 90 (overflow).
func Fib(k int) int64 {
	if k < 1 || k > 90 {
		panic(fmt.Sprintf("indexability: Fib(%d) out of range", k))
	}
	a, b := int64(1), int64(1)
	for i := 3; i <= k; i++ {
		a, b = b, a+b
	}
	return b
}

// FibonacciLattice returns the N-point Fibonacci lattice for N = Fib(k),
// k ≥ 3. Points are returned in x order (x = i).
func FibonacciLattice(k int) []geom.Point {
	n := Fib(k)
	step := Fib(k - 1)
	pts := make([]geom.Point, n)
	y := int64(0)
	for i := int64(0); i < n; i++ {
		pts[i] = geom.Point{X: i, Y: y}
		y += step
		if y >= n {
			y -= n
		}
	}
	return pts
}

// LatticeCount returns the number of lattice points of FibonacciLattice(k)
// inside the closed rectangle r, computed directly from the lattice
// definition in O(width) time without materializing the point set.
func LatticeCount(k int, r geom.Rect) int {
	n := Fib(k)
	step := Fib(k - 1)
	lo := max64(0, r.XLo)
	hi := min64(n-1, r.XHi)
	if lo > hi || r.YLo > r.YHi {
		return 0
	}
	cnt := 0
	y := mod64(lo*step, n)
	for i := lo; i <= hi; i++ {
		if y >= r.YLo && y <= r.YHi {
			cnt++
		}
		y += step
		if y >= n {
			y -= n
		}
	}
	return cnt
}

// TilingQueries returns the Section 2.1 query set: for each admissible
// aspect-ratio exponent i, a tiling of the N×N domain by w×h rectangles
// with w ≈ c^i and h ≈ a/w, where a = c₁·kq·B·N is the common area (kq ≥ 1
// scales the target output size to kq·B points). Only exponents with both
// sides at most N are used, giving ≈ log_c(N/(c₁·kq·B)) distinct ratios.
func TilingQueries(k int, B int, kq int, c float64) []geom.Rect {
	if c <= 1 {
		panic("indexability: tiling parameter c must exceed 1")
	}
	n := Fib(k)
	area := FibC1 * float64(kq) * float64(B) * float64(n)
	var queries []geom.Rect
	for w := area / float64(n); w <= float64(n); w *= c {
		wi := int64(math.Round(w))
		if wi < 1 {
			wi = 1
		}
		hi := int64(math.Round(area / float64(wi)))
		if hi < 1 || hi > n {
			continue
		}
		for x := int64(0); x < n; x += wi {
			for y := int64(0); y < n; y += hi {
				queries = append(queries, geom.Rect{
					XLo: x, XHi: min64(x+wi-1, n-1),
					YLo: y, YHi: min64(y+hi-1, n-1),
				})
			}
		}
	}
	return queries
}

// FibonacciWorkload returns the full Fibonacci workload for N = Fib(k):
// lattice instances and the tiling query set for output size ≈ kq·B.
func FibonacciWorkload(k, B, kq int, c float64) *Workload {
	return &Workload{
		Points:  FibonacciLattice(k),
		Queries: TilingQueries(k, B, kq, c),
	}
}

// DensityReport summarizes how rectangle point counts compare to
// Proposition 1 over a set of rectangles of common area.
type DensityReport struct {
	Area     float64 // common rectangle area
	Expected float64 // area/N, the "ideal" count
	Min, Max int     // observed counts
	// C1 and C2 are the observed constants: Expected/Min and Expected/Max.
	// Proposition 1 predicts C1 ≤ ~1.9 and C2 ≥ ~0.45.
	C1, C2 float64
	Rects  int
}

// MeasureDensity evaluates Proposition 1 on the Fibonacci lattice of
// N = Fib(k), over tilings of rectangles with area ≈ ell·B·N.
func MeasureDensity(k, B int, ell int, c float64) DensityReport {
	n := Fib(k)
	area := float64(ell) * float64(B) * float64(n)
	rep := DensityReport{Area: area, Expected: area / float64(n), Min: math.MaxInt}
	for w := area / float64(n); w <= float64(n); w *= c {
		wi := int64(math.Round(w))
		if wi < 1 {
			wi = 1
		}
		hi := int64(math.Round(area / float64(wi)))
		if hi < 1 || hi > n {
			continue
		}
		for x := int64(0); x+wi <= n; x += wi {
			for y := int64(0); y+hi <= n; y += hi {
				cnt := LatticeCount(k, geom.Rect{XLo: x, XHi: x + wi - 1, YLo: y, YHi: y + hi - 1})
				if cnt < rep.Min {
					rep.Min = cnt
				}
				if cnt > rep.Max {
					rep.Max = cnt
				}
				rep.Rects++
			}
		}
	}
	if rep.Rects == 0 {
		rep.Min = 0
		return rep
	}
	if rep.Min > 0 {
		rep.C1 = rep.Expected / float64(rep.Min)
	} else {
		rep.C1 = math.Inf(1)
	}
	if rep.Max > 0 {
		rep.C2 = rep.Expected / float64(rep.Max)
	}
	return rep
}

func mod64(a, n int64) int64 {
	m := a % n
	if m < 0 {
		m += n
	}
	return m
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
