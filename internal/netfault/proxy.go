// Package netfault is a fault-injecting TCP proxy for exercising the
// serving stack's failure paths: it sits between a client and a server
// and degrades the byte streams flowing through it on demand — added
// latency and jitter, bandwidth caps, random byte corruption,
// mid-stream connection resets, and blackholes (accepted but unanswered
// traffic). Every random decision flows from a caller-supplied seed, so
// a failing chaos run replays.
//
// The proxy shapes both directions independently: each accepted client
// connection gets an upstream dial and two pump goroutines
// (client→upstream, upstream→client), each pump owning a seeded RNG and
// reading the shared, runtime-mutable fault knobs before every chunk.
// Faults therefore land mid-frame, which is exactly the hard case for a
// length-prefixed protocol: a reset after the length word but before the
// body, a stall halfway through a pipelined burst.
//
// Knobs can be driven programmatically (SetLatency, CutAll, ...) or by a
// compact script DSL (ParseScript/RunScript) of timed directives, e.g.
//
//	500ms:latency=20ms;2s:cut;3s:blackhole=on;4s:blackhole=off
package netfault

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures a Proxy. The zero value forwards faithfully: no
// faults until a knob is turned.
type Options struct {
	// Listen is the address to accept clients on ("127.0.0.1:0" for an
	// ephemeral port; the default).
	Listen string
	// Seed seeds every per-pump RNG (deterministically derived, one
	// stream per pump). Zero selects 1.
	Seed int64
	// Latency delays each forwarded chunk (both directions).
	Latency time.Duration
	// Jitter widens Latency uniformly to [Latency, Latency+Jitter).
	Jitter time.Duration
	// BandwidthBPS caps forwarded bytes per second per direction
	// (0 = unlimited).
	BandwidthBPS int
	// CorruptProb flips one random bit in a forwarded chunk with this
	// probability per chunk [0,1). Corruption is invisible to the framing
	// layer — the length prefix still parses — so it exercises the
	// payload decoders.
	CorruptProb float64
	// CutAfterBytes hard-resets each connection (RST, not FIN) after
	// roughly this many bytes have crossed it in either direction
	// (0 = never). The cut lands mid-frame more often than not.
	CutAfterBytes int64
	// Logf, when non-nil, receives one line per proxy event. Nil discards.
	Logf func(format string, args ...interface{})
}

// faults is the shared, mutable knob block; pumps read it before every
// chunk under the lock.
type faults struct {
	latency      time.Duration
	jitter       time.Duration
	bandwidthBPS int
	corruptProb  float64
	cutAfter     int64
	blackhole    bool
}

// Stats counts the proxy's traffic and injected faults.
type Stats struct {
	Accepted    uint64 `json:"accepted"`
	Active      int64  `json:"active"`
	BytesUp     uint64 `json:"bytes_up"`   // client → upstream
	BytesDown   uint64 `json:"bytes_down"` // upstream → client
	Cuts        uint64 `json:"cuts"`       // RST resets injected
	Corruptions uint64 `json:"corruptions"`
	DialErrors  uint64 `json:"dial_errors"`
}

// Proxy is one listener forwarding to one upstream address with
// injectable faults. Safe for concurrent use; knobs may be turned while
// connections are live.
type Proxy struct {
	upstream string
	opts     Options
	ln       net.Listener
	seed     int64

	mu     sync.Mutex
	flt    faults
	conns  map[*proxyConn]struct{}
	closed bool
	pumpID int64

	accepted    atomic.Uint64
	active      atomic.Int64
	bytesUp     atomic.Uint64
	bytesDown   atomic.Uint64
	cuts        atomic.Uint64
	corruptions atomic.Uint64
	dialErrs    atomic.Uint64

	wg sync.WaitGroup
}

// proxyConn is one client connection and its upstream pair.
type proxyConn struct {
	client   net.Conn
	upstream net.Conn
	moved    atomic.Int64 // bytes across either direction, for cutAfter
	cut      atomic.Bool
}

// New starts a proxy forwarding Listen → upstream. It accepts in the
// background until Close.
func New(upstream string, opts Options) (*Proxy, error) {
	if opts.Listen == "" {
		opts.Listen = "127.0.0.1:0"
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	ln, err := net.Listen("tcp", opts.Listen)
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		upstream: upstream,
		opts:     opts,
		ln:       ln,
		seed:     seed,
		flt: faults{
			latency:      opts.Latency,
			jitter:       opts.Jitter,
			bandwidthBPS: opts.BandwidthBPS,
			corruptProb:  opts.CorruptProb,
			cutAfter:     opts.CutAfterBytes,
		},
		conns: map[*proxyConn]struct{}{},
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the address clients should dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Close stops accepting, resets every live connection, and waits for the
// pumps to drain.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.CutAll()
	p.wg.Wait()
	return err
}

// Stats returns a snapshot of the traffic counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Accepted:    p.accepted.Load(),
		Active:      p.active.Load(),
		BytesUp:     p.bytesUp.Load(),
		BytesDown:   p.bytesDown.Load(),
		Cuts:        p.cuts.Load(),
		Corruptions: p.corruptions.Load(),
		DialErrors:  p.dialErrs.Load(),
	}
}

// SetLatency changes the per-chunk delay (and jitter) for future chunks.
func (p *Proxy) SetLatency(base, jitter time.Duration) {
	p.mu.Lock()
	p.flt.latency, p.flt.jitter = base, jitter
	p.mu.Unlock()
}

// SetBandwidth changes the per-direction byte-rate cap (0 = unlimited).
func (p *Proxy) SetBandwidth(bps int) {
	p.mu.Lock()
	p.flt.bandwidthBPS = bps
	p.mu.Unlock()
}

// SetCorrupt changes the per-chunk bit-flip probability.
func (p *Proxy) SetCorrupt(prob float64) {
	p.mu.Lock()
	p.flt.corruptProb = prob
	p.mu.Unlock()
}

// SetCutAfter arms (or, with 0, disarms) the byte-count reset trigger
// for current and future connections.
func (p *Proxy) SetCutAfter(n int64) {
	p.mu.Lock()
	p.flt.cutAfter = n
	p.mu.Unlock()
}

// SetBlackhole, when on, stalls all forwarding without closing anything:
// connections stay established, bytes stop moving — the failure mode
// deadlines exist for.
func (p *Proxy) SetBlackhole(on bool) {
	p.mu.Lock()
	p.flt.blackhole = on
	p.mu.Unlock()
}

// CutAll hard-resets every live connection (SO_LINGER 0 → RST). New
// connections are still accepted; pair with SetBlackhole to simulate a
// dead network.
func (p *Proxy) CutAll() {
	p.mu.Lock()
	conns := make([]*proxyConn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		p.cutConn(c)
	}
}

func (p *Proxy) logf(format string, args ...interface{}) {
	if p.opts.Logf != nil {
		p.opts.Logf(format, args...)
	}
}

// reset closes both halves of c with RST (SetLinger(0) discards
// untransmitted data and sends a reset on Close), so each peer sees
// ECONNRESET mid-frame rather than a clean EOF. Reports whether this
// call performed the reset (false if the connection was already cut).
func (c *proxyConn) reset() bool {
	if !c.cut.CompareAndSwap(false, true) {
		return false
	}
	for _, conn := range []net.Conn{c.client, c.upstream} {
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.SetLinger(0)
		}
		conn.Close()
	}
	return true
}

// cutConn is a fault-injected reset: it counts toward Stats.Cuts, unlike
// the reset propagation the pumps do when one side dies on its own.
func (p *Proxy) cutConn(c *proxyConn) {
	if c.reset() {
		p.cuts.Add(1)
	}
}

func (p *Proxy) snapshotFaults() faults {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.flt
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		closed := p.closed
		p.mu.Unlock()
		if closed {
			client.Close()
			return
		}
		p.accepted.Add(1)
		p.wg.Add(1)
		go p.handle(client)
	}
}

func (p *Proxy) handle(client net.Conn) {
	defer p.wg.Done()
	up, err := net.DialTimeout("tcp", p.upstream, 5*time.Second)
	if err != nil {
		p.dialErrs.Add(1)
		p.logf("netfault: dial upstream %s: %v", p.upstream, err)
		client.Close()
		return
	}
	for _, conn := range []net.Conn{client, up} {
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.SetNoDelay(true)
		}
	}
	c := &proxyConn{client: client, upstream: up}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		client.Close()
		up.Close()
		return
	}
	p.conns[c] = struct{}{}
	id1 := p.pumpID
	p.pumpID += 2
	p.mu.Unlock()
	p.active.Add(1)

	var pumps sync.WaitGroup
	pumps.Add(2)
	go p.pump(&pumps, c, client, up, &p.bytesUp, id1)
	go p.pump(&pumps, c, up, client, &p.bytesDown, id1+1)
	pumps.Wait()

	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
	p.active.Add(-1)
	client.Close()
	up.Close()
}

// chunkSize is the shaping granularity: small enough that latency and
// cuts land inside multi-hundred-byte frames, large enough to move bulk
// traffic.
const chunkSize = 512

// pump forwards src → dst one chunk at a time, consulting the fault
// knobs before each chunk. Each pump derives its own RNG from the proxy
// seed and pump id, so runs replay regardless of goroutine interleaving.
func (p *Proxy) pump(wg *sync.WaitGroup, c *proxyConn, src, dst net.Conn, counter *atomic.Uint64, id int64) {
	defer wg.Done()
	rng := rand.New(rand.NewSource(p.seed ^ (id+1)*0x5851f42d4c957f2d))
	buf := make([]byte, chunkSize)
	for {
		_ = src.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		n, err := src.Read(buf)
		if n > 0 {
			f := p.snapshotFaults()
			for f.blackhole && !c.cut.Load() {
				// Hold the bytes: the connection looks alive but nothing
				// moves. Re-check every few ms so un-blackholing resumes.
				time.Sleep(5 * time.Millisecond)
				f = p.snapshotFaults()
			}
			if c.cut.Load() {
				return
			}
			if f.latency > 0 || f.jitter > 0 {
				d := f.latency
				if f.jitter > 0 {
					d += time.Duration(rng.Int63n(int64(f.jitter)))
				}
				time.Sleep(d)
			}
			if f.bandwidthBPS > 0 {
				time.Sleep(time.Duration(int64(n) * int64(time.Second) / int64(f.bandwidthBPS)))
			}
			if f.corruptProb > 0 && rng.Float64() < f.corruptProb {
				bit := rng.Intn(n * 8)
				buf[bit/8] ^= 1 << (bit % 8)
				p.corruptions.Add(1)
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
			counter.Add(uint64(n))
			if moved := c.moved.Add(int64(n)); f.cutAfter > 0 && moved >= f.cutAfter {
				p.logf("netfault: cutting connection after %d bytes", moved)
				p.cutConn(c)
				return
			}
		}
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue // idle poll tick; lets blackhole/cut take effect promptly
			}
			if err != io.EOF {
				// A hard error — e.g. the upstream RSTing after a kill —
				// ends the whole connection. Propagate it as a reset so
				// the peer learns immediately; leaving the other half
				// alive would strand a blocked client on its own read
				// deadline (tens of seconds) instead.
				c.reset()
				return
			}
			// Half-close: propagate EOF downstream, stop this pump.
			if tc, ok := dst.(*net.TCPConn); ok {
				_ = tc.CloseWrite()
			}
			return
		}
	}
}

// String describes the proxy for logs.
func (p *Proxy) String() string {
	return fmt.Sprintf("netfault proxy %s → %s", p.Addr(), p.upstream)
}
