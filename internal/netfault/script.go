package netfault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Directive is one timed fault action parsed from a script.
type Directive struct {
	// At is the offset from script start when the action fires.
	At time.Duration
	// Apply performs the action on a proxy.
	Apply func(*Proxy)
	// Text is the source form, for logs.
	Text string
}

// ParseScript parses the fault-script DSL: semicolon-separated
// `offset:action` entries, executed at their offsets from RunScript
// start. Actions:
//
//	cut                  reset every live connection (RST)
//	blackhole=on|off     stall / resume all forwarding
//	latency=DUR[~DUR]    per-chunk delay, optional uniform jitter
//	bandwidth=N          bytes/sec cap per direction (0 = off)
//	corrupt=P            per-chunk bit-flip probability [0,1)
//	cutafter=N           RST each connection after N bytes (0 = off)
//
// Example: "500ms:latency=20ms~10ms;2s:cut;3s:blackhole=on;4s:blackhole=off"
func ParseScript(s string) ([]Directive, error) {
	var out []Directive
	for _, entry := range strings.Split(s, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		i := strings.Index(entry, ":")
		if i < 0 {
			return nil, fmt.Errorf("netfault: script entry %q: want offset:action", entry)
		}
		at, err := time.ParseDuration(strings.TrimSpace(entry[:i]))
		if err != nil {
			return nil, fmt.Errorf("netfault: script entry %q: bad offset: %v", entry, err)
		}
		action := strings.TrimSpace(entry[i+1:])
		apply, err := parseAction(action)
		if err != nil {
			return nil, fmt.Errorf("netfault: script entry %q: %v", entry, err)
		}
		out = append(out, Directive{At: at, Apply: apply, Text: entry})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out, nil
}

func parseAction(action string) (func(*Proxy), error) {
	name, arg := action, ""
	if i := strings.Index(action, "="); i >= 0 {
		name, arg = action[:i], action[i+1:]
	}
	switch name {
	case "cut":
		if arg != "" {
			return nil, fmt.Errorf("cut takes no argument")
		}
		return func(p *Proxy) { p.CutAll() }, nil
	case "blackhole":
		switch arg {
		case "on":
			return func(p *Proxy) { p.SetBlackhole(true) }, nil
		case "off":
			return func(p *Proxy) { p.SetBlackhole(false) }, nil
		}
		return nil, fmt.Errorf("blackhole wants on|off, got %q", arg)
	case "latency":
		base, jitter := arg, ""
		if i := strings.Index(arg, "~"); i >= 0 {
			base, jitter = arg[:i], arg[i+1:]
		}
		bd, err := time.ParseDuration(base)
		if err != nil {
			return nil, fmt.Errorf("latency: %v", err)
		}
		var jd time.Duration
		if jitter != "" {
			if jd, err = time.ParseDuration(jitter); err != nil {
				return nil, fmt.Errorf("latency jitter: %v", err)
			}
		}
		return func(p *Proxy) { p.SetLatency(bd, jd) }, nil
	case "bandwidth":
		n, err := strconv.Atoi(arg)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bandwidth wants a non-negative byte count, got %q", arg)
		}
		return func(p *Proxy) { p.SetBandwidth(n) }, nil
	case "corrupt":
		f, err := strconv.ParseFloat(arg, 64)
		if err != nil || f < 0 || f >= 1 {
			return nil, fmt.Errorf("corrupt wants a probability in [0,1), got %q", arg)
		}
		return func(p *Proxy) { p.SetCorrupt(f) }, nil
	case "cutafter":
		n, err := strconv.ParseInt(arg, 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("cutafter wants a non-negative byte count, got %q", arg)
		}
		return func(p *Proxy) { p.SetCutAfter(n) }, nil
	}
	return nil, fmt.Errorf("unknown action %q", name)
}

// RunScript executes directives against p at their offsets, blocking
// until the last has fired or stop is closed. A nil stop never stops.
func RunScript(p *Proxy, dirs []Directive, stop <-chan struct{}) {
	start := time.Now()
	for _, d := range dirs {
		wait := d.At - time.Since(start)
		if wait > 0 {
			select {
			case <-time.After(wait):
			case <-stop:
				return
			}
		} else {
			select {
			case <-stop:
				return
			default:
			}
		}
		p.logf("netfault: script: %s", d.Text)
		d.Apply(p)
	}
}
