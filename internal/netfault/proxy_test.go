package netfault

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// startEcho runs a TCP echo server and returns its address.
func startEcho(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				_, _ = io.Copy(c, c)
			}(conn)
		}
	}()
	return ln.Addr().String()
}

func startProxy(t *testing.T, upstream string, opts Options) *Proxy {
	t.Helper()
	p, err := New(upstream, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func dialT(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// roundTrip writes msg and reads len(msg) bytes back through the echo.
func roundTrip(t *testing.T, conn net.Conn, msg []byte) []byte {
	t.Helper()
	if _, err := conn.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, len(msg))
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	return got
}

func TestProxyForwardsFaithfully(t *testing.T) {
	p := startProxy(t, startEcho(t), Options{})
	conn := dialT(t, p.Addr())

	msg := bytes.Repeat([]byte("abcdefgh"), 300) // spans multiple chunks
	if got := roundTrip(t, conn, msg); !bytes.Equal(got, msg) {
		t.Fatal("zero-fault proxy altered the stream")
	}
	st := p.Stats()
	if st.Accepted != 1 || st.BytesUp != uint64(len(msg)) || st.BytesDown != uint64(len(msg)) {
		t.Fatalf("stats = %+v, want 1 accepted, %d bytes each way", st, len(msg))
	}
	if st.Cuts != 0 || st.Corruptions != 0 {
		t.Fatalf("stats = %+v, want no injected faults", st)
	}
}

func TestProxyLatency(t *testing.T) {
	p := startProxy(t, startEcho(t), Options{Latency: 30 * time.Millisecond})
	conn := dialT(t, p.Addr())

	start := time.Now()
	roundTrip(t, conn, []byte("ping"))
	// Both directions are delayed, so the round trip costs ≥ 2×30ms.
	if rtt := time.Since(start); rtt < 60*time.Millisecond {
		t.Fatalf("round trip took %v, want ≥ 60ms with 30ms per-direction latency", rtt)
	}
}

func TestProxyCutAll(t *testing.T) {
	p := startProxy(t, startEcho(t), Options{})
	conn := dialT(t, p.Addr())
	roundTrip(t, conn, []byte("warm")) // ensure the pipe is established

	p.CutAll()

	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("read after CutAll succeeded, want connection reset")
	}
	if st := p.Stats(); st.Cuts != 1 {
		t.Fatalf("Cuts = %d, want 1", st.Cuts)
	}
}

// TestProxyUpstreamDeathPropagates pins the reset-propagation rule: when
// the upstream dies hard (RST, as a SIGKILLed server's conns do), a
// client blocked on a read through the proxy must see an error promptly —
// not sit half-alive until its own read deadline. Dying-on-its-own is not
// an injected fault, so it must NOT count toward Stats.Cuts.
func TestProxyUpstreamDeathPropagates(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	upConns := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		upConns <- conn
	}()

	p := startProxy(t, ln.Addr().String(), Options{})
	client := dialT(t, p.Addr())
	if _, err := client.Write([]byte("hello")); err != nil {
		t.Fatalf("write: %v", err)
	}

	var up net.Conn
	select {
	case up = <-upConns:
	case <-time.After(2 * time.Second):
		t.Fatal("proxy never dialed upstream")
	}
	// Drain the forwarded bytes, then die with RST mid-conversation.
	buf := make([]byte, 16)
	_ = up.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := up.Read(buf); err != nil {
		t.Fatalf("upstream read: %v", err)
	}
	up.(*net.TCPConn).SetLinger(0)
	up.Close()

	// The client is blocked waiting for a response; it must unblock with
	// an error well before this generous deadline.
	start := time.Now()
	_ = client.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := client.Read(buf); err == nil {
		t.Fatal("client read succeeded after upstream death")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("client read hit its own deadline: upstream death was not propagated")
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("propagation took %v", waited)
	}
	if cuts := p.Stats().Cuts; cuts != 0 {
		t.Fatalf("Cuts = %d after a natural death, want 0 (not an injected fault)", cuts)
	}
}

func TestProxyCutAfterBytes(t *testing.T) {
	p := startProxy(t, startEcho(t), Options{CutAfterBytes: 700})
	conn := dialT(t, p.Addr())

	// Push well past the trigger; the write or the echo read must fail.
	var failed bool
	msg := bytes.Repeat([]byte("x"), 256)
	for i := 0; i < 50 && !failed; i++ {
		if _, err := conn.Write(msg); err != nil {
			failed = true
			break
		}
		got := make([]byte, len(msg))
		_ = conn.SetReadDeadline(time.Now().Add(time.Second))
		if _, err := io.ReadFull(conn, got); err != nil {
			failed = true
		}
	}
	if !failed {
		t.Fatal("connection survived far past CutAfterBytes")
	}
	if st := p.Stats(); st.Cuts == 0 {
		t.Fatal("no cut recorded")
	}
}

func TestProxyBlackhole(t *testing.T) {
	p := startProxy(t, startEcho(t), Options{})
	conn := dialT(t, p.Addr())
	roundTrip(t, conn, []byte("warm"))

	p.SetBlackhole(true)
	if _, err := conn.Write([]byte("lost?")); err != nil {
		t.Fatalf("write into blackhole failed immediately: %v", err)
	}
	buf := make([]byte, 8)
	_ = conn.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("read from blackholed proxy returned data")
	}

	// Un-blackholing releases the held bytes: the stalled request completes.
	p.SetBlackhole(false)
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, buf[:5]); err != nil {
		t.Fatalf("read after un-blackhole: %v", err)
	}
	if string(buf[:5]) != "lost?" {
		t.Fatalf("got %q after un-blackhole, want %q", buf[:5], "lost?")
	}
}

func TestProxyCorrupt(t *testing.T) {
	p := startProxy(t, startEcho(t), Options{CorruptProb: 1, Seed: 42})
	conn := dialT(t, p.Addr())

	msg := bytes.Repeat([]byte{0}, 64)
	got := roundTrip(t, conn, msg)
	if bytes.Equal(got, msg) {
		t.Fatal("CorruptProb=1 stream arrived unmodified")
	}
	if st := p.Stats(); st.Corruptions == 0 {
		t.Fatal("no corruption recorded")
	}
}

func TestProxyDeterministicCorruption(t *testing.T) {
	echo := startEcho(t)
	run := func() []byte {
		p := startProxy(t, echo, Options{CorruptProb: 1, Seed: 7})
		conn := dialT(t, p.Addr())
		return roundTrip(t, conn, bytes.Repeat([]byte{0xAA}, 128))
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Fatal("same seed produced different corruption")
	}
}

func TestParseScript(t *testing.T) {
	dirs, err := ParseScript("2s:cut; 500ms:latency=20ms~5ms; 1s:blackhole=on; 1500ms:blackhole=off; 3s:bandwidth=1024; 4s:corrupt=0.5; 5s:cutafter=4096")
	if err != nil {
		t.Fatalf("ParseScript: %v", err)
	}
	if len(dirs) != 7 {
		t.Fatalf("got %d directives, want 7", len(dirs))
	}
	// Sorted by offset regardless of source order.
	for i := 1; i < len(dirs); i++ {
		if dirs[i].At < dirs[i-1].At {
			t.Fatalf("directives not sorted: %v after %v", dirs[i].At, dirs[i-1].At)
		}
	}
	for _, bad := range []string{
		"nocolon", "2s:frobnicate", "2s:blackhole=maybe", "xx:cut",
		"1s:corrupt=1.5", "1s:bandwidth=-3", "1s:cut=now", "1s:latency=fast",
	} {
		if _, err := ParseScript(bad); err == nil {
			t.Errorf("ParseScript(%q) succeeded, want error", bad)
		}
	}
}

func TestRunScript(t *testing.T) {
	p := startProxy(t, startEcho(t), Options{})
	conn := dialT(t, p.Addr())
	roundTrip(t, conn, []byte("warm"))

	dirs, err := ParseScript("10ms:latency=5ms;30ms:cut")
	if err != nil {
		t.Fatalf("ParseScript: %v", err)
	}
	done := make(chan struct{})
	go func() { RunScript(p, dirs, nil); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("RunScript did not finish")
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 8)); err == nil {
		t.Fatal("connection survived scripted cut")
	}
	if st := p.Stats(); st.Cuts != 1 {
		t.Fatalf("Cuts = %d, want 1", st.Cuts)
	}
}

func TestScriptStop(t *testing.T) {
	p := startProxy(t, startEcho(t), Options{})
	dirs, err := ParseScript("10m:cut")
	if err != nil {
		t.Fatalf("ParseScript: %v", err)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { RunScript(p, dirs, stop); close(done) }()
	close(stop)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("RunScript ignored stop")
	}
	if st := p.Stats(); st.Cuts != 0 {
		t.Fatal("stopped script still fired")
	}
}
