package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// This file renders the package's repointable expvar surface in the
// Prometheus text exposition format (version 0.0.4), so the same
// producers that feed /debug/vars also feed a /metrics endpoint any
// Prometheus-compatible scraper understands — no client library, no new
// dependency. Scalar leaves become gauges; values shaped like a
// HistogramSnapshot become native Prometheus histograms with cumulative
// `le` buckets, `_sum` and `_count`.

// WritePrometheus renders every variable registered through this
// package's Publish (and the Publish* helpers) to w in the Prometheus
// text exposition format. Nested maps flatten into metric names joined
// with underscores; name fragments are sanitized to the Prometheus
// alphabet. Strings and other non-numeric leaves are skipped.
func WritePrometheus(w io.Writer) error {
	varMu.Lock()
	names := make([]string, 0, len(varFns))
	for name := range varFns {
		names = append(names, name)
	}
	fns := make(map[string]func() interface{}, len(varFns))
	for name, fn := range varFns {
		fns[name] = fn
	}
	varMu.Unlock()
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	for _, name := range names {
		fn := fns[name]
		if fn == nil {
			continue
		}
		v := fn()
		if v == nil {
			continue
		}
		// Round-trip through JSON so every producer payload (structs,
		// maps, snapshots) walks as the same generic tree.
		raw, err := json.Marshal(v)
		if err != nil {
			continue
		}
		var tree interface{}
		if err := json.Unmarshal(raw, &tree); err != nil {
			continue
		}
		if err := promWalk(bw, sanitizeMetricName(name), tree); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// promWalk emits one flattened subtree rooted at name.
func promWalk(w io.Writer, name string, v interface{}) error {
	switch t := v.(type) {
	case float64:
		return promGauge(w, name, t)
	case bool:
		b := 0.0
		if t {
			b = 1
		}
		return promGauge(w, name, b)
	case map[string]interface{}:
		if h, ok := asHistogram(t); ok {
			return promHistogram(w, name, h)
		}
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := promWalk(w, name+"_"+sanitizeMetricName(k), t[k]); err != nil {
				return err
			}
		}
	}
	// Strings, arrays and null leaves carry no sample value.
	return nil
}

func promGauge(w io.Writer, name string, v float64) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", name); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %s\n", name, promFloat(v))
	return err
}

// promHist is the recognized histogram payload: the JSON shape of
// HistogramSnapshot.
type promHist struct {
	count   float64
	sum     float64
	buckets []promBucket
}

type promBucket struct {
	hi    float64
	count float64
}

// asHistogram detects the HistogramSnapshot JSON shape: count, mean,
// min, max present and numeric, buckets (if present) a list of
// {Lo,Hi,Count} objects.
func asHistogram(m map[string]interface{}) (promHist, bool) {
	var h promHist
	count, ok1 := m["count"].(float64)
	mean, ok2 := m["mean"].(float64)
	_, ok3 := m["min"].(float64)
	_, ok4 := m["max"].(float64)
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return h, false
	}
	h.count = count
	h.sum = mean * count
	if bs, ok := m["buckets"].([]interface{}); ok {
		for _, b := range bs {
			bm, ok := b.(map[string]interface{})
			if !ok {
				return h, false
			}
			hi, ok1 := bm["Hi"].(float64)
			c, ok2 := bm["Count"].(float64)
			if !ok1 || !ok2 {
				return h, false
			}
			h.buckets = append(h.buckets, promBucket{hi: hi, count: c})
		}
		sort.Slice(h.buckets, func(i, j int) bool { return h.buckets[i].hi < h.buckets[j].hi })
	}
	return h, true
}

// promHistogram renders h as a native Prometheus histogram: cumulative
// le buckets (upper bounds are the log₂ bucket Hi edges), a +Inf bucket,
// _sum and _count.
func promHistogram(w io.Writer, name string, h promHist) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	cum := 0.0
	for _, b := range h.buckets {
		cum += b.count
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %s\n",
			name, promFloat(b.hi), promFloat(cum)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %s\n", name, promFloat(h.count)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, promFloat(h.sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %s\n", name, promFloat(h.count))
	return err
}

// promFloat renders a sample value: integral values without an exponent
// (histogram counts stay exact), everything else in shortest form.
func promFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sanitizeMetricName maps an arbitrary fragment into the Prometheus
// metric-name alphabet [a-zA-Z0-9_:], collapsing runs of other bytes
// into single underscores.
func sanitizeMetricName(s string) string {
	var b strings.Builder
	lastUnder := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9')
		if ok {
			b.WriteByte(c)
			lastUnder = c == '_'
			continue
		}
		if !lastUnder && b.Len() > 0 {
			b.WriteByte('_')
			lastUnder = true
		}
	}
	out := strings.TrimSuffix(b.String(), "_")
	if out == "" {
		return "unnamed"
	}
	if out[0] >= '0' && out[0] <= '9' {
		out = "_" + out
	}
	return out
}

var (
	promSampleRe = regexp.MustCompile(
		`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*,?\})? [^ ]+( [0-9]+)?$`)
	promTypeRe = regexp.MustCompile(
		`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram|summary|untyped)$`)
)

// CheckExposition validates a Prometheus text exposition read from r:
// every line must be blank, a well-formed comment (# HELP / # TYPE /
// free comment), or a sample with a valid metric name, optional label
// set and parseable value. It returns the number of samples. The CI
// smoke test runs it against a live /metrics scrape so a malformed
// exporter fails the build rather than a scraper at 3am.
func CheckExposition(r io.Reader) (samples int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if strings.HasPrefix(line, "# TYPE ") && !promTypeRe.MatchString(line) {
				return samples, fmt.Errorf("obs: exposition line %d: malformed TYPE comment %q", lineNo, line)
			}
			continue
		}
		if !promSampleRe.MatchString(line) {
			return samples, fmt.Errorf("obs: exposition line %d: malformed sample %q", lineNo, line)
		}
		// The value field must parse as a float (Inf/NaN included).
		// Split after the label set, not on every space: label values
		// may contain spaces.
		rest := line
		if i := strings.Index(line, "}"); i >= 0 {
			rest = line[i+1:]
		} else if i := strings.IndexByte(line, ' '); i >= 0 {
			rest = line[i+1:]
		}
		if fields := strings.Fields(rest); len(fields) > 0 {
			val := fields[0]
			if _, ferr := strconv.ParseFloat(strings.TrimPrefix(val, "+"), 64); ferr != nil {
				return samples, fmt.Errorf("obs: exposition line %d: bad value %q", lineNo, val)
			}
		}
		samples++
	}
	if serr := sc.Err(); serr != nil {
		return samples, serr
	}
	return samples, nil
}
