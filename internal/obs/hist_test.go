package obs

import (
	"math"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zeroed")
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %d", q)
	}
	if b := h.Buckets(); len(b) != 0 {
		t.Fatalf("empty buckets = %v", b)
	}
}

func TestHistogramZeroValue(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(0)
	if h.Count() != 2 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if q := h.Quantile(p); q != 0 {
			t.Fatalf("quantile(%v) = %d, want 0", p, q)
		}
	}
	bs := h.Buckets()
	if len(bs) != 1 || bs[0].Lo != 0 || bs[0].Hi != 0 || bs[0].Count != 2 {
		t.Fatalf("buckets = %v", bs)
	}
}

func TestHistogramMaxUint64(t *testing.T) {
	var h Histogram
	h.Observe(math.MaxUint64)
	if h.Max() != math.MaxUint64 || h.Min() != math.MaxUint64 {
		t.Fatalf("min=%d max=%d", h.Min(), h.Max())
	}
	if q := h.Quantile(0.5); q != math.MaxUint64 {
		t.Fatalf("quantile = %d", q)
	}
	bs := h.Buckets()
	if len(bs) != 1 || bs[0].Lo != uint64(1)<<63 || bs[0].Hi != math.MaxUint64 {
		t.Fatalf("buckets = %v", bs)
	}
	// Mean uses float64 accumulation; one sample must round-trip close.
	if h.Mean() < float64(math.MaxUint64)/2 {
		t.Fatalf("mean = %v", h.Mean())
	}
}

func TestHistogramSingleSampleExactQuantiles(t *testing.T) {
	var h Histogram
	h.Observe(37)
	// A single sample must be reported exactly at every quantile even
	// though its bucket [32, 63] is coarse.
	for _, p := range []float64{0, 0.25, 0.5, 0.95, 1} {
		if q := h.Quantile(p); q != 37 {
			t.Fatalf("quantile(%v) = %d, want 37", p, q)
		}
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      uint64
		lo, hi uint64
	}{
		{0, 0, 0},
		{1, 1, 1},
		{2, 2, 3},
		{3, 2, 3},
		{4, 4, 7},
		{1023, 512, 1023},
		{1024, 1024, 2047},
		{uint64(1) << 63, uint64(1) << 63, math.MaxUint64},
	}
	for _, c := range cases {
		var h Histogram
		h.Observe(c.v)
		bs := h.Buckets()
		if len(bs) != 1 || bs[0].Lo != c.lo || bs[0].Hi != c.hi {
			t.Errorf("Observe(%d): bucket %v, want [%d,%d]", c.v, bs, c.lo, c.hi)
		}
	}
}

func TestHistogramQuantileOrder(t *testing.T) {
	var h Histogram
	for v := uint64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	p50, p95, p99 := h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
	if !(p50 <= p95 && p95 <= p99 && p99 <= h.Max()) {
		t.Fatalf("quantiles out of order: p50=%d p95=%d p99=%d max=%d", p50, p95, p99, h.Max())
	}
	// Bucket-resolved error is at most one bucket: p50 of 1..1000 is 500,
	// whose bucket tops out at 511.
	if p50 < 500 || p50 > 1023 {
		t.Fatalf("p50 = %d, want within one bucket of 500", p50)
	}
	if h.Max() != 1000 || h.Min() != 1 {
		t.Fatalf("min=%d max=%d", h.Min(), h.Max())
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Observe(5)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 || len(h.Buckets()) != 0 {
		t.Fatal("reset did not clear histogram")
	}
	h.Observe(9) // must still work after reset
	if h.Count() != 1 || h.Max() != 9 {
		t.Fatal("histogram unusable after reset")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 {
		t.Fatalf("empty summary %v", s)
	}
	s = Summarize([]float64{3})
	if s.Count != 1 || s.P50 != 3 || s.P95 != 3 || s.Max != 3 || s.Mean != 3 {
		t.Fatalf("single summary %+v", s)
	}
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	s = Summarize(xs)
	if s.P50 != 50 || s.P95 != 95 || s.Max != 100 {
		t.Fatalf("summary %+v", s)
	}
}
