package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"rangesearch/internal/trace"
)

// This file holds the span-side siblings of the I/O-event sinks in
// sinks.go: a ring buffer of finished request spans (the flight recorder
// behind the /spans endpoint) and a JSONL spool with its matching
// streaming reader, replayed by `rsinspect spans`.

// SpanRing keeps the most recent sampled request spans in a fixed
// capacity ring. It implements the server's SpanRecorder: RecordSpan
// never blocks beyond a short mutex hold and never fails.
type SpanRing struct {
	mu    sync.Mutex
	buf   []trace.Record
	next  int
	total uint64
}

// NewSpanRing returns a ring holding the last capacity spans
// (capacity ≥ 1).
func NewSpanRing(capacity int) *SpanRing {
	if capacity < 1 {
		panic("obs: span ring capacity must be at least 1")
	}
	return &SpanRing{buf: make([]trace.Record, 0, capacity)}
}

// RecordSpan adds one finished span to the ring, evicting the oldest
// retained span once the ring is full.
func (r *SpanRing) RecordSpan(rec trace.Record) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, rec)
	} else {
		r.buf[r.next] = rec
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.total++
	r.mu.Unlock()
}

// Total returns the number of spans ever recorded (≥ len(Snapshot())).
func (r *SpanRing) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Cap returns the ring capacity.
func (r *SpanRing) Cap() int { return cap(r.buf) }

// Snapshot returns the retained spans, oldest first.
func (r *SpanRing) Snapshot() []trace.Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]trace.Record, 0, len(r.buf))
	if len(r.buf) == cap(r.buf) {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// WriteTo dumps the retained spans to w as JSONL, oldest first — the
// same schema SpanWriter spools, so `rsinspect spans` reads both.
func (r *SpanRing) WriteTo(w io.Writer) (int64, error) {
	var n int64
	bw := bufio.NewWriter(w)
	for _, rec := range r.Snapshot() {
		line, err := json.Marshal(rec)
		if err != nil {
			return n, err
		}
		wn, err := bw.Write(line)
		n += int64(wn)
		if err != nil {
			return n, err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return n, err
		}
		n++
	}
	return n, bw.Flush()
}

// SpanWriter spools finished spans to a writer as newline-delimited
// JSON (one trace.Record per line). Like JSONLSink, writes are buffered
// and the first write error is sticky: tracing must never turn a served
// request into a failure, so RecordSpan cannot fail.
type SpanWriter struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer // nil unless the writer owns the underlying file
	err error
}

// NewSpanWriter wraps w. The caller keeps ownership of w.
func NewSpanWriter(w io.Writer) *SpanWriter {
	return &SpanWriter{w: bufio.NewWriter(w)}
}

// CreateSpanFile creates (truncating) a span spool at path; Close the
// writer to flush and release it.
func CreateSpanFile(path string) (*SpanWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &SpanWriter{w: bufio.NewWriter(f), c: f}, nil
}

// RecordSpan implements the server's SpanRecorder.
func (s *SpanWriter) RecordSpan(rec trace.Record) {
	line, _ := json.Marshal(rec)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if _, err := s.w.Write(line); err != nil {
		s.err = err
		return
	}
	if err := s.w.WriteByte('\n'); err != nil {
		s.err = err
	}
}

// Flush writes buffered spans through to the underlying writer.
func (s *SpanWriter) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.err = s.w.Flush()
	return s.err
}

// Err returns the first write error, if any.
func (s *SpanWriter) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close flushes and, for file-backed writers, closes the file.
func (s *SpanWriter) Close() error {
	err := s.Flush()
	s.mu.Lock()
	c := s.c
	s.c = nil
	s.mu.Unlock()
	if c != nil {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// MultiSpanRecorder fans each span out to every member, in order. Both
// members must accept RecordSpan concurrently.
type MultiSpanRecorder []interface{ RecordSpan(trace.Record) }

// RecordSpan implements the server's SpanRecorder.
func (m MultiSpanRecorder) RecordSpan(rec trace.Record) {
	for _, r := range m {
		r.RecordSpan(rec)
	}
}

// ReadSpans parses a span JSONL stream written by SpanWriter (or the
// /spans endpoint), collecting every record.
func ReadSpans(r io.Reader) ([]trace.Record, error) {
	var out []trace.Record
	err := ScanSpans(r, func(rec trace.Record) error {
		out = append(out, rec)
		return nil
	})
	return out, err
}

// ScanSpans parses a span JSONL stream, calling fn for each record in
// order. It streams line by line, so spools larger than memory still
// summarize.
func ScanSpans(r io.Reader, fn func(trace.Record) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec trace.Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("obs: span line %d: %w", lineNo, err)
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	return sc.Err()
}

// spanRing is the ring the diagnostics server's /spans endpoint drains.
var spanRing atomic.Pointer[SpanRing]

// SetSpanRing points the /spans endpoint (on every MetricsServer) at r.
// Pass nil to detach; /spans then answers 404.
func SetSpanRing(r *SpanRing) { spanRing.Store(r) }
