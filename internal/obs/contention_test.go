package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"sync"
	"testing"
	"time"

	"rangesearch/internal/core"
	"rangesearch/internal/eio"
	"rangesearch/internal/epst"
	"rangesearch/internal/geom"
)

// TestContentionConcurrentRecording hammers a Contention from many
// goroutines — recorders, worker counters and snapshot readers at once —
// and checks nothing is lost (the -race contract plus exact counts).
func TestContentionConcurrentRecording(t *testing.T) {
	var c Contention
	const (
		workers = 8
		per     = 500
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wc := c.Worker(fmt.Sprintf("w%d", w))
			for i := 0; i < per; i++ {
				c.RecordLockWait(time.Duration(i))
				c.RecordBatch(i%7+1, time.Duration(i)*time.Microsecond)
				wc.Inserts.Add(1)
				if i%2 == 0 {
					wc.Queries.Add(1)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() { // concurrent snapshot reader
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = c.Snapshot()
		}
	}()
	wg.Wait()

	if got := c.LockWait().Count(); got != workers*per {
		t.Fatalf("lock-wait observations = %d, want %d", got, workers*per)
	}
	if got := c.BatchSize().Count(); got != workers*per {
		t.Fatalf("batch observations = %d, want %d", got, workers*per)
	}
	if max := c.BatchSize().Max(); max != 7 {
		t.Fatalf("max batch = %d, want 7", max)
	}
	s := c.Snapshot()
	if len(s.Workers) != workers {
		t.Fatalf("snapshot has %d workers, want %d", len(s.Workers), workers)
	}
	var ins, qs uint64
	for _, w := range s.Workers {
		ins += w.Inserts
		qs += w.Queries
	}
	if ins != workers*per || qs != workers*per/2 {
		t.Fatalf("worker sums = %d inserts %d queries, want %d and %d", ins, qs, workers*per, workers*per/2)
	}

	c.Reset()
	if c.LockWait().Count() != 0 || c.BatchSize().Count() != 0 || c.Apply().Count() != 0 {
		t.Fatal("histograms survived Reset")
	}
	if s := c.Snapshot(); s.Workers["w0"].Inserts != 0 {
		t.Fatal("worker counters survived Reset")
	}
}

// TestContentionNegativeInputsClamp pins the defensive clamping: negative
// durations and sizes (clock skew, caller bugs) record as zero rather than
// wrapping to 2^63.
func TestContentionNegativeInputsClamp(t *testing.T) {
	var c Contention
	c.RecordLockWait(-time.Second)
	c.RecordBatch(-3, -time.Second)
	if got := c.LockWait().Max(); got != 0 {
		t.Fatalf("negative wait recorded as %d", got)
	}
	if got := c.BatchSize().Max(); got != 0 {
		t.Fatalf("negative size recorded as %d", got)
	}
	if got := c.Apply().Max(); got != 0 {
		t.Fatalf("negative apply recorded as %d", got)
	}
}

// TestContentionWiredToConcurrent runs a real core.Concurrent with a
// Contention recorder and checks the committed-op count flows through
// exactly, then round-trips the expvar export.
func TestContentionWiredToConcurrent(t *testing.T) {
	var rec Contention
	mem := eio.NewMemStore(512)
	snap := eio.NewSnapStore(mem, 0)
	idx, err := core.NewThreeSided(snap, epst.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hdr := idx.HeaderID()
	if _, err := snap.Commit(); err != nil {
		t.Fatal(err)
	}
	c, err := core.NewConcurrent(idx, snap,
		func(s eio.Store) (core.Index, error) { return core.OpenThreeSided(s, hdr) },
		core.ConcurrentOptions{Recorder: &rec})
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n/4; i++ {
				if err := c.Insert(geom.Point{X: int64(w*n + i), Y: 1}); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()

	s := rec.Snapshot()
	if got := int(s.BatchSize.Mean*float64(s.BatchSize.Count) + 0.5); got != n {
		t.Fatalf("recorder saw ~%d committed ops, want %d", got, n)
	}
	if s.LockWaitNs.Count != n {
		t.Fatalf("lock-wait count = %d, want one per submitted op (%d)", s.LockWaitNs.Count, n)
	}

	PublishContention("test", &rec)
	v := expvar.Get("rangesearch.contention.test")
	if v == nil {
		t.Fatal("expvar not published")
	}
	var back ContentionSnapshot
	if err := json.Unmarshal([]byte(v.String()), &back); err != nil {
		t.Fatalf("expvar JSON: %v", err)
	}
	if back.BatchSize.Count != s.BatchSize.Count {
		t.Fatalf("expvar round-trip count = %d, want %d", back.BatchSize.Count, s.BatchSize.Count)
	}
}
