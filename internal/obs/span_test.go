package obs

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"rangesearch/internal/trace"
)

func spanRec(i int) trace.Record {
	sp := trace.New(trace.NewID(), "insert")
	sp.AddPhase(trace.PhaseExecute, time.Duration(i+1)*time.Millisecond)
	sp.AddIO(int64(i), 1, 0, 0)
	sp.Finish("ok")
	r := sp.Record()
	r.WallNs = int64(i+1) * 1e6
	return r
}

func TestSpanRingRotation(t *testing.T) {
	r := NewSpanRing(4)
	if r.Cap() != 4 {
		t.Fatalf("Cap = %d", r.Cap())
	}
	var want []string
	for i := 0; i < 10; i++ {
		rec := spanRec(i)
		want = append(want, rec.TraceID)
		r.RecordSpan(rec)
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot holds %d records, want 4", len(snap))
	}
	// Oldest-first, and exactly the last four recorded.
	for i, rec := range snap {
		if rec.TraceID != want[6+i] {
			t.Fatalf("snapshot[%d] = %s, want %s", i, rec.TraceID, want[6+i])
		}
	}

	// WriteTo emits one JSON object per line, same order.
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	back, err := ReadSpans(&buf)
	if err != nil {
		t.Fatalf("ReadSpans: %v", err)
	}
	if len(back) != 4 || back[0].TraceID != want[6] || back[3].TraceID != want[9] {
		t.Fatalf("JSONL round trip: %+v", back)
	}
}

func TestSpanWriterFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	w, err := CreateSpanFile(path)
	if err != nil {
		t.Fatalf("CreateSpanFile: %v", err)
	}
	var ids []string
	for i := 0; i < 32; i++ {
		rec := spanRec(i)
		ids = append(ids, rec.TraceID)
		w.RecordSpan(rec)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var got []string
	if err := ScanSpans(f, func(r trace.Record) error {
		got = append(got, r.TraceID)
		return nil
	}); err != nil {
		t.Fatalf("ScanSpans: %v", err)
	}
	if len(got) != len(ids) {
		t.Fatalf("read %d spans, wrote %d", len(got), len(ids))
	}
	for i := range ids {
		if got[i] != ids[i] {
			t.Fatalf("span %d: %s != %s", i, got[i], ids[i])
		}
	}
}

func TestScanSpansStopsOnCallbackError(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 5; i++ {
		buf.WriteString(`{"trace_id":"x"}` + "\n")
	}
	n := 0
	err := ScanSpans(&buf, func(trace.Record) error {
		n++
		if n == 2 {
			return fmt.Errorf("stop here")
		}
		return nil
	})
	if err == nil || n != 2 {
		t.Fatalf("err=%v n=%d, want callback error after 2", err, n)
	}
}

func TestMultiSpanRecorderFansOut(t *testing.T) {
	a, b := NewSpanRing(8), NewSpanRing(8)
	m := MultiSpanRecorder{a, b}
	m.RecordSpan(spanRec(0))
	if a.Total() != 1 || b.Total() != 1 {
		t.Fatalf("fan-out totals %d/%d, want 1/1", a.Total(), b.Total())
	}
}
