package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"rangesearch/internal/eio"
)

// expvar.Publish panics on duplicate names and offers no unpublish, so the
// package keeps one published indirection per name and repoints it — a
// bench process can publish a fresh store per experiment under a stable
// name.
var (
	varMu  sync.Mutex
	varFns = map[string]func() interface{}{}
)

func publish(name string, fn func() interface{}) {
	varMu.Lock()
	_, existed := varFns[name]
	varFns[name] = fn
	varMu.Unlock()
	if !existed {
		expvar.Publish(name, expvar.Func(func() interface{} {
			varMu.Lock()
			f := varFns[name]
			varMu.Unlock()
			if f == nil {
				return nil
			}
			return f()
		}))
	}
}

// Publish exports fn() under name on the package's repointable expvar
// surface: unlike expvar.Publish it may be called repeatedly with the same
// name, each call repointing the variable at the new producer. It is the
// hook other layers (e.g. internal/server) use to join the same
// /debug/vars surface the store and contention metrics live on.
func Publish(name string, fn func() interface{}) { publish(name, fn) }

// PublishStore exports s.Stats() and s.Pages() as the expvar
// "rangesearch.store.<name>". Later calls with the same name repoint the
// variable.
func PublishStore(name string, s eio.Store) {
	publish("rangesearch.store."+name, func() interface{} {
		st := s.Stats()
		return map[string]interface{}{
			"reads":  st.Reads,
			"writes": st.Writes,
			"allocs": st.Allocs,
			"frees":  st.Frees,
			"ios":    st.IOs(),
			"pages":  s.Pages(),
		}
	})
}

// PublishPool exports the buffer-pool counters (hits, misses, evictions,
// dirty write-backs, residency) as "rangesearch.pool.<name>". Together
// with PublishStore on the same Pool this gives both views: cache events
// here, true backing-store I/Os there.
func PublishPool(name string, p *eio.Pool) {
	publish("rangesearch.pool."+name, func() interface{} {
		ps := p.PoolStats()
		return map[string]interface{}{
			"hits":      ps.Hits,
			"misses":    ps.Misses,
			"evictions": ps.Evictions,
			"writeback": ps.Writeback,
			"cap":       p.Cap(),
			"resident":  p.Resident(),
			"dirty":     p.Dirty(),
		}
	})
}

// PublishCollector exports per-kind I/O and latency histogram snapshots as
// "rangesearch.ops.<name>".
func PublishCollector(name string, c *Collector) {
	publish("rangesearch.ops."+name, func() interface{} {
		out := map[string]interface{}{}
		for _, k := range []OpKind{OpInsert, OpDelete, OpQuery} {
			out[k.String()] = map[string]interface{}{
				"ios":    c.IOHist(k).Snapshot(),
				"lat_ns": c.LatencyHist(k).Snapshot(),
			}
		}
		return out
	})
}

// PublishHistSink exports a HistSink's per-op latency histograms as
// "rangesearch.io.<name>".
func PublishHistSink(name string, h *HistSink) {
	publish("rangesearch.io."+name, func() interface{} {
		out := map[string]interface{}{}
		for _, op := range []eio.Op{eio.OpRead, eio.OpWrite, eio.OpAlloc, eio.OpFree} {
			out[op.String()] = map[string]interface{}{
				"lat_ns": h.Latency(op).Snapshot(),
				"bytes":  h.Bytes(op).Snapshot(),
			}
		}
		out["errors"] = h.Errors().Count()
		return out
	})
}

// MetricsServer is a running diagnostics HTTP server: expvar at
// /debug/vars, pprof under /debug/pprof/, the Prometheus text
// exposition at /metrics, and the sampled-span flight recorder at
// /spans (JSONL, once a SpanRing is attached via SetSpanRing).
type MetricsServer struct {
	srv *http.Server
	ln  net.Listener
}

// ServeMetrics starts the diagnostics server on addr (e.g. ":6060" or
// "127.0.0.1:0"). It returns once the listener is bound; serving happens
// in a background goroutine.
func ServeMetrics(addr string) (*MetricsServer, error) {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w)
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		ring := spanRing.Load()
		if ring == nil {
			http.Error(w, "no span ring attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		_, _ = ring.WriteTo(w)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "rangesearch metrics: /debug/vars (expvar), /debug/pprof/ (pprof), /metrics (Prometheus), /spans (sampled spans, JSONL)")
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ms := &MetricsServer{srv: &http.Server{Handler: mux}, ln: ln}
	go func() { _ = ms.srv.Serve(ln) }()
	return ms, nil
}

// Addr returns the bound listen address (useful with port 0).
func (m *MetricsServer) Addr() string { return m.ln.Addr().String() }

// Close shuts the server down immediately.
func (m *MetricsServer) Close() error { return m.srv.Close() }
