package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"rangesearch/internal/eio"
)

// RingSink keeps the most recent events in a fixed-capacity ring buffer —
// the "flight recorder" sink: always cheap, and after a failure the tail
// of I/Os that led up to it can be dumped.
type RingSink struct {
	mu    sync.Mutex
	buf   []eio.TraceEvent
	next  int
	total uint64
}

var _ eio.TraceSink = (*RingSink)(nil)

// NewRingSink returns a ring holding the last capacity events
// (capacity ≥ 1).
func NewRingSink(capacity int) *RingSink {
	if capacity < 1 {
		panic("obs: ring sink capacity must be at least 1")
	}
	return &RingSink{buf: make([]eio.TraceEvent, 0, capacity)}
}

// Emit implements eio.TraceSink.
func (r *RingSink) Emit(e eio.TraceEvent) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.total++
	r.mu.Unlock()
}

// Total returns the number of events ever emitted (≥ len(Snapshot())).
func (r *RingSink) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Cap returns the ring capacity.
func (r *RingSink) Cap() int { return cap(r.buf) }

// Snapshot returns the retained events, oldest first.
func (r *RingSink) Snapshot() []eio.TraceEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]eio.TraceEvent, 0, len(r.buf))
	if len(r.buf) == cap(r.buf) {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// jsonEvent is the on-disk schema of one traced operation — one JSON
// object per line. The schema is part of the tool contract: `rsinspect
// trace` replays these files, and external tooling may too.
type jsonEvent struct {
	Seq   uint64 `json:"seq"`
	Op    string `json:"op"`
	Page  uint64 `json:"page"`
	Bytes int    `json:"bytes,omitempty"`
	LatNS int64  `json:"lat_ns"`
	Scope string `json:"scope,omitempty"`
	Err   bool   `json:"err,omitempty"`
}

// JSONLSink spools events to a writer as newline-delimited JSON. Writes
// are buffered; call Flush (or Close for file-backed sinks) before reading
// the output. The first write error is sticky and reported by Err —
// tracing must never turn a successful index operation into a failure, so
// Emit itself cannot fail.
type JSONLSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer // nil unless the sink owns the underlying file
	err error
}

var _ eio.TraceSink = (*JSONLSink)(nil)

// NewJSONLSink wraps w. The caller keeps ownership of w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriter(w)}
}

// CreateJSONLFile creates (truncating) a trace file at path; Close the
// sink to flush and release it.
func CreateJSONLFile(path string) (*JSONLSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &JSONLSink{w: bufio.NewWriter(f), c: f}, nil
}

// Emit implements eio.TraceSink.
func (s *JSONLSink) Emit(e eio.TraceEvent) {
	line, _ := json.Marshal(jsonEvent{
		Seq:   e.Seq,
		Op:    e.Op.String(),
		Page:  uint64(e.Page),
		Bytes: e.Bytes,
		LatNS: e.Latency.Nanoseconds(),
		Scope: e.Scope,
		Err:   e.Err,
	})
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if _, err := s.w.Write(line); err != nil {
		s.err = err
		return
	}
	if err := s.w.WriteByte('\n'); err != nil {
		s.err = err
	}
}

// Flush writes buffered events through to the underlying writer.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.err = s.w.Flush()
	return s.err
}

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close flushes and, for file-backed sinks, closes the file.
func (s *JSONLSink) Close() error {
	err := s.Flush()
	s.mu.Lock()
	c := s.c
	s.c = nil
	s.mu.Unlock()
	if c != nil {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// parseOp inverts eio.Op.String.
func parseOp(s string) (eio.Op, error) {
	for _, op := range []eio.Op{eio.OpRead, eio.OpWrite, eio.OpAlloc, eio.OpFree} {
		if op.String() == s {
			return op, nil
		}
	}
	return 0, fmt.Errorf("obs: unknown trace op %q", s)
}

// ReadTrace parses a JSONL trace written by JSONLSink. It streams line by
// line, so traces larger than memory still summarize via the callback
// variant below; this variant collects everything.
func ReadTrace(r io.Reader) ([]eio.TraceEvent, error) {
	var out []eio.TraceEvent
	err := ScanTrace(r, func(e eio.TraceEvent) error {
		out = append(out, e)
		return nil
	})
	return out, err
}

// ScanTrace parses a JSONL trace, calling fn for each event in order.
func ScanTrace(r io.Reader, fn func(eio.TraceEvent) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var je jsonEvent
		if err := json.Unmarshal(line, &je); err != nil {
			return fmt.Errorf("obs: trace line %d: %w", lineNo, err)
		}
		op, err := parseOp(je.Op)
		if err != nil {
			return fmt.Errorf("obs: trace line %d: %w", lineNo, err)
		}
		if err := fn(eio.TraceEvent{
			Seq:     je.Seq,
			Op:      op,
			Page:    eio.PageID(je.Page),
			Bytes:   je.Bytes,
			Latency: time.Duration(je.LatNS),
			Scope:   je.Scope,
			Err:     je.Err,
		}); err != nil {
			return err
		}
	}
	return sc.Err()
}

// HistSink aggregates events into per-operation-kind latency histograms
// and operation counters. It retains nothing per event, so it is the sink
// to leave attached in long-running processes.
type HistSink struct {
	latency [4]Histogram // indexed by eio.Op
	count   [4]Histogram // byte counts per op kind (reads/writes only)
	errs    Histogram    // latency of failed operations, any kind
}

var _ eio.TraceSink = (*HistSink)(nil)

// NewHistSink returns an empty histogram sink.
func NewHistSink() *HistSink { return &HistSink{} }

// Emit implements eio.TraceSink.
func (h *HistSink) Emit(e eio.TraceEvent) {
	lat := e.Latency
	if lat < 0 {
		lat = 0
	}
	if int(e.Op) < len(h.latency) {
		h.latency[e.Op].Observe(uint64(lat))
		if e.Bytes > 0 {
			h.count[e.Op].Observe(uint64(e.Bytes))
		}
	}
	if e.Err {
		h.errs.Observe(uint64(lat))
	}
}

// Latency returns the latency histogram (nanoseconds) for op.
func (h *HistSink) Latency(op eio.Op) *Histogram { return &h.latency[op] }

// Bytes returns the transfer-size histogram for op.
func (h *HistSink) Bytes(op eio.Op) *Histogram { return &h.count[op] }

// Errors returns the histogram of failed-operation latencies; its Count is
// the total number of failed operations.
func (h *HistSink) Errors() *Histogram { return &h.errs }

// MultiSink fans each event out to every member sink, in order.
type MultiSink []eio.TraceSink

var _ eio.TraceSink = (MultiSink)(nil)

// Emit implements eio.TraceSink.
func (m MultiSink) Emit(e eio.TraceEvent) {
	for _, s := range m {
		s.Emit(e)
	}
}
