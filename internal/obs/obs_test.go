package obs

import (
	"bytes"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"rangesearch/internal/core"
	"rangesearch/internal/eio"
	"rangesearch/internal/epst"
	"rangesearch/internal/geom"
)

func TestRingSinkWraparound(t *testing.T) {
	r := NewRingSink(4)
	for i := 1; i <= 10; i++ {
		r.Emit(eio.TraceEvent{Seq: uint64(i)})
	}
	if r.Total() != 10 || r.Cap() != 4 {
		t.Fatalf("total=%d cap=%d", r.Total(), r.Cap())
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len %d", len(snap))
	}
	for i, e := range snap {
		if e.Seq != uint64(7+i) {
			t.Fatalf("snapshot[%d].Seq = %d, want %d (oldest first)", i, e.Seq, 7+i)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	events := []eio.TraceEvent{
		{Seq: 1, Op: eio.OpAlloc, Page: 3, Latency: 250 * time.Nanosecond},
		{Seq: 2, Op: eio.OpWrite, Page: 3, Bytes: 1024, Latency: time.Microsecond, Scope: "insert"},
		{Seq: 3, Op: eio.OpRead, Page: 3, Bytes: 1024, Scope: "query", Err: true},
		{Seq: 4, Op: eio.OpFree, Page: 3},
	}
	for _, e := range events {
		sink.Emit(e)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("round-trip %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], events[i])
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("{\"op\":\"warp\"}\n")); err == nil {
		t.Fatal("unknown op accepted")
	}
	if _, err := ReadTrace(strings.NewReader("not json\n")); err == nil {
		t.Fatal("non-JSON line accepted")
	}
}

func TestHistSinkAggregates(t *testing.T) {
	h := NewHistSink()
	h.Emit(eio.TraceEvent{Op: eio.OpRead, Bytes: 1024, Latency: 100})
	h.Emit(eio.TraceEvent{Op: eio.OpRead, Bytes: 1024, Latency: 300})
	h.Emit(eio.TraceEvent{Op: eio.OpWrite, Bytes: 1024, Latency: 200, Err: true})
	if got := h.Latency(eio.OpRead).Count(); got != 2 {
		t.Fatalf("read latency count %d", got)
	}
	if got := h.Latency(eio.OpWrite).Count(); got != 1 {
		t.Fatalf("write latency count %d", got)
	}
	if got := h.Errors().Count(); got != 1 {
		t.Fatalf("error count %d", got)
	}
	if got := h.Bytes(eio.OpRead).Max(); got != 1024 {
		t.Fatalf("read bytes max %d", got)
	}
}

func TestMultiSinkFansOut(t *testing.T) {
	a, b := NewRingSink(8), NewRingSink(8)
	m := MultiSink{a, b}
	m.Emit(eio.TraceEvent{Seq: 1})
	if a.Total() != 1 || b.Total() != 1 {
		t.Fatalf("fan-out totals %d/%d", a.Total(), b.Total())
	}
}

// buildInstrumented builds a small ThreeSided on a traced store and churns
// it through inserts, deletes and queries.
func buildInstrumented(t *testing.T) (*Instrumented, *Collector, int) {
	t.Helper()
	ts := eio.NewTraceStore(eio.NewMemStore(1024))
	idx, err := core.NewThreeSided(ts, epst.Options{})
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	in, err := Instrument(idx, ts, col)
	if err != nil {
		t.Fatal(err)
	}
	b := eio.BlockCapacity(1024)
	const n = 500
	for i := 0; i < n; i++ {
		if err := in.Insert(geom.Point{X: int64(i * 7 % 2003), Y: int64(i * 13 % 2003)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		if _, err := in.Delete(geom.Point{X: int64(i * 7 % 2003), Y: int64(i * 13 % 2003)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		lo := int64(i * 60 % 1800)
		if _, err := in.Query(nil, geom.Rect{XLo: lo, XHi: lo + 200, YLo: 0, YHi: geom.MaxCoord}); err != nil {
			t.Fatal(err)
		}
	}
	return in, col, b
}

func TestInstrumentedRecordsExactCosts(t *testing.T) {
	in, col, _ := buildInstrumented(t)
	recs := col.Records()
	var nIns, nDel, nQ int
	for _, r := range recs {
		switch r.Kind {
		case OpInsert:
			nIns++
			if r.IOs() == 0 {
				t.Fatal("insert with zero I/Os")
			}
		case OpDelete:
			nDel++
		case OpQuery:
			nQ++
			if r.Reads == 0 {
				t.Fatal("query with zero reads")
			}
			if r.Writes != 0 {
				t.Fatalf("query performed %d writes", r.Writes)
			}
		}
		if r.Err {
			t.Fatalf("unexpected errored record %+v", r)
		}
	}
	if nIns != 500 || nDel != 50 || nQ != 30 {
		t.Fatalf("records %d/%d/%d, want 500/50/30", nIns, nDel, nQ)
	}
	// Size bookkeeping: N recorded on the last insert is 499 (size before
	// the op), and Len agrees with inserts minus successful deletes.
	n, err := in.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n != 450 {
		t.Fatalf("Len = %d, want 450", n)
	}
	// The always-on histograms saw the same operations.
	if got := col.IOHist(OpInsert).Count(); got != 500 {
		t.Fatalf("insert IO hist count %d", got)
	}
	if got := col.LatencyHist(OpQuery).Count(); got != 30 {
		t.Fatalf("query latency hist count %d", got)
	}
}

func TestInstrumentedScopesTraceEvents(t *testing.T) {
	ts := eio.NewTraceStore(eio.NewMemStore(1024))
	ring := NewRingSink(1 << 14)
	ts.SetSink(ring)
	idx, err := core.NewThreeSided(ts, epst.Options{})
	if err != nil {
		t.Fatal(err)
	}
	in, err := Instrument(idx, ts, NewCollector())
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Insert(geom.Point{X: 1, Y: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Query(nil, geom.Rect{XLo: 0, XHi: 10, YLo: 0, YHi: geom.MaxCoord}); err != nil {
		t.Fatal(err)
	}
	scopes := map[string]int{}
	for _, e := range ring.Snapshot() {
		scopes[e.Scope]++
	}
	if scopes["insert"] == 0 || scopes["query"] == 0 {
		t.Fatalf("missing scoped events: %v", scopes)
	}
}

func TestCheckBoundsAndExceeds(t *testing.T) {
	_, col, b := buildInstrumented(t)
	rep := CheckBounds("ThreeSided", col.Records(), b)
	if rep.Query.Count != 30 || rep.Insert.Count != 500 || rep.Delete.Count != 50 {
		t.Fatalf("report counts %+v", rep)
	}
	if rep.Query.P95 <= 0 || rep.Insert.P95 <= 0 {
		t.Fatalf("degenerate overheads %+v", rep)
	}
	// The structures really do meet the theorems with small constants on
	// this workload; a generous limit must pass and a sub-1 limit must
	// fail.
	if err := rep.Exceeds(64, 64); err != nil {
		t.Fatalf("generous limit violated: %v", err)
	}
	if err := rep.Exceeds(0.01, 0.01); err == nil {
		t.Fatal("absurdly tight limit passed")
	}
	if err := rep.Exceeds(0.01, math.Inf(1)); err == nil {
		t.Fatal("tight query limit skipped")
	}
	if !strings.Contains(rep.String(), "query") {
		t.Fatalf("report string %q", rep.String())
	}
}

func TestCheckBoundsSkipsErroredRecords(t *testing.T) {
	recs := []OpRecord{
		{Kind: OpQuery, Reads: 5, N: 100, T: 3},
		{Kind: OpQuery, Reads: 500, N: 100, Err: true},
	}
	rep := CheckBounds("x", recs, 64)
	if rep.Query.Count != 1 || rep.Skipped != 1 {
		t.Fatalf("report %+v", rep)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	return string(body)
}

func TestPublishAndServeMetrics(t *testing.T) {
	ts := eio.NewTraceStore(eio.NewMemStore(128))
	pool := eio.NewPool(eio.NewMemStore(128), 4)
	defer pool.Close()
	col := NewCollector()
	col.Add(OpRecord{Kind: OpQuery, Reads: 3, N: 10})
	PublishStore("test", ts)
	PublishPool("test", pool)
	PublishCollector("test", col)
	PublishHistSink("test", NewHistSink())
	// Republishing under the same name must not panic (expvar would).
	PublishStore("test", ts)

	ms, err := ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	body := httpGet(t, "http://"+ms.Addr()+"/debug/vars")
	for _, want := range []string{"rangesearch.store.test", "rangesearch.pool.test", "rangesearch.ops.test", "rangesearch.io.test"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/debug/vars missing %q", want)
		}
	}
	if idx := httpGet(t, "http://"+ms.Addr()+"/debug/pprof/"); !strings.Contains(idx, "profile") {
		t.Fatal("pprof index not served")
	}
}
