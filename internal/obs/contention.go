package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"rangesearch/internal/core"
	"rangesearch/internal/eio"
)

// Contention aggregates the serving-layer contention signals emitted by
// core.Concurrent: how long writers waited for commit leadership, how many
// operations each group commit coalesced, and how long batches took to
// apply. All three are log₂ histograms, cheap enough to record on every
// commit; per-worker operation counters ride along for spotting skew.
// A zero Contention is ready to use and safe for concurrent recording.
type Contention struct {
	lockWait  Histogram // writer wait for commit leadership, nanoseconds
	batchSize Histogram // logical operations per committed group
	applyNs   Histogram // time applying + committing one batch, nanoseconds

	mu      sync.Mutex
	workers map[string]*WorkerCounters
}

var _ core.ContentionRecorder = (*Contention)(nil)

// RecordLockWait implements core.ContentionRecorder.
func (c *Contention) RecordLockWait(d time.Duration) {
	if d < 0 {
		d = 0
	}
	c.lockWait.Observe(uint64(d))
}

// RecordBatch implements core.ContentionRecorder.
func (c *Contention) RecordBatch(size int, apply time.Duration) {
	if size < 0 {
		size = 0
	}
	if apply < 0 {
		apply = 0
	}
	c.batchSize.Observe(uint64(size))
	c.applyNs.Observe(uint64(apply))
}

// LockWait is the distribution of writer waits for commit leadership.
func (c *Contention) LockWait() *Histogram { return &c.lockWait }

// BatchSize is the distribution of group-commit sizes. Mean > 1 means
// coalescing is happening; max bounds WAL pressure per commit.
func (c *Contention) BatchSize() *Histogram { return &c.batchSize }

// Apply is the distribution of batch apply+commit times.
func (c *Contention) Apply() *Histogram { return &c.applyNs }

// Worker returns the named worker's counters, creating them on first use.
// The returned value is stable: callers keep it and bump it lock-free.
func (c *Contention) Worker(name string) *WorkerCounters {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.workers == nil {
		c.workers = make(map[string]*WorkerCounters)
	}
	w := c.workers[name]
	if w == nil {
		w = &WorkerCounters{}
		c.workers[name] = w
	}
	return w
}

// Reset clears the histograms and every worker counter (worker identities
// are kept, so held *WorkerCounters stay valid).
func (c *Contention) Reset() {
	c.lockWait.Reset()
	c.batchSize.Reset()
	c.applyNs.Reset()
	c.mu.Lock()
	for _, w := range c.workers {
		w.Inserts.Store(0)
		w.Deletes.Store(0)
		w.Queries.Store(0)
	}
	c.mu.Unlock()
}

// Snapshot returns a plain-data copy for serialization.
func (c *Contention) Snapshot() ContentionSnapshot {
	s := ContentionSnapshot{
		LockWaitNs: c.lockWait.Snapshot(),
		BatchSize:  c.batchSize.Snapshot(),
		ApplyNs:    c.applyNs.Snapshot(),
	}
	c.mu.Lock()
	if len(c.workers) > 0 {
		s.Workers = make(map[string]WorkerSnapshot, len(c.workers))
		for name, w := range c.workers {
			s.Workers[name] = WorkerSnapshot{
				Inserts: w.Inserts.Load(),
				Deletes: w.Deletes.Load(),
				Queries: w.Queries.Load(),
			}
		}
	}
	c.mu.Unlock()
	return s
}

// WorkerCounters are one worker goroutine's operation counts, bumped
// lock-free by the worker itself.
type WorkerCounters struct {
	Inserts atomic.Uint64
	Deletes atomic.Uint64
	Queries atomic.Uint64
}

// WorkerSnapshot is the JSON-friendly view of WorkerCounters.
type WorkerSnapshot struct {
	Inserts uint64 `json:"inserts"`
	Deletes uint64 `json:"deletes"`
	Queries uint64 `json:"queries"`
}

// ContentionSnapshot is the JSON-friendly view of a Contention.
type ContentionSnapshot struct {
	LockWaitNs HistogramSnapshot         `json:"lock_wait_ns"`
	BatchSize  HistogramSnapshot         `json:"batch_size"`
	ApplyNs    HistogramSnapshot         `json:"apply_ns"`
	Workers    map[string]WorkerSnapshot `json:"workers,omitempty"`
}

// PublishContention exports c.Snapshot() as the expvar
// "rangesearch.contention.<name>". Later calls with the same name repoint
// the variable.
func PublishContention(name string, c *Contention) {
	publish("rangesearch.contention."+name, func() interface{} {
		return c.Snapshot()
	})
}

// PublishShardedPool exports a sharded pool's aggregate and per-shard
// counters as "rangesearch.shardpool.<name>", complementing PublishPool
// for the unsharded case.
func PublishShardedPool(name string, p *eio.ShardedPool) {
	publish("rangesearch.shardpool."+name, func() interface{} {
		ps := p.PoolStats()
		shards := p.ShardPoolStats()
		per := make([]map[string]interface{}, len(shards))
		for i, s := range shards {
			per[i] = map[string]interface{}{
				"hits": s.Hits, "misses": s.Misses,
				"evictions": s.Evictions, "writeback": s.Writeback,
			}
		}
		return map[string]interface{}{
			"hits":      ps.Hits,
			"misses":    ps.Misses,
			"evictions": ps.Evictions,
			"writeback": ps.Writeback,
			"cap":       p.Cap(),
			"resident":  p.Resident(),
			"dirty":     p.Dirty(),
			"shards":    per,
		}
	})
}
