package obs

import (
	"io"
	"sync"
	"testing"

	"rangesearch/internal/core"
	"rangesearch/internal/eio"
	"rangesearch/internal/epst"
	"rangesearch/internal/geom"
)

// TestConcurrentTracedSyncedIndex drives a core.Synced index over a
// TraceStore with every sink attached at once, from many goroutines, so
// `go test -race` proves the whole observation path — store, scope labels,
// ring, JSONL, histograms — is data-race free while queries run in
// parallel with updates.
func TestConcurrentTracedSyncedIndex(t *testing.T) {
	ts := eio.NewTraceStore(eio.NewMemStore(1024))
	ring := NewRingSink(1024)
	hist := NewHistSink()
	jsonl := NewJSONLSink(io.Discard)
	ts.SetSink(MultiSink{ring, hist, jsonl})

	idx, err := core.NewThreeSided(ts, epst.Options{})
	if err != nil {
		t.Fatal(err)
	}
	synced := core.NewSynced(idx)

	const (
		writers = 4
		readers = 4
		perG    = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				p := geom.Point{X: int64(w*perG + i), Y: int64((w*perG + i) * 31 % 9973)}
				if err := synced.Insert(p); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				if i%3 == 0 {
					if _, err := synced.Delete(p); err != nil {
						t.Errorf("delete: %v", err)
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				lo := int64(i * 4 % 800)
				if _, err := synced.Query(nil, geom.Rect{XLo: lo, XHi: lo + 100, YLo: 0, YHi: geom.MaxCoord}); err != nil {
					t.Errorf("query: %v", err)
					return
				}
				// Exercise sink churn while I/Os are in flight.
				if i%50 == 0 && r == 0 {
					ts.SetSink(MultiSink{ring, hist, jsonl})
				}
			}
		}(r)
	}
	wg.Wait()

	if err := jsonl.Flush(); err != nil {
		t.Fatal(err)
	}
	if ring.Total() == 0 {
		t.Fatal("no events reached the ring sink")
	}
	if hist.Latency(eio.OpRead).Count() == 0 {
		t.Fatal("no read latencies aggregated")
	}
	n, err := synced.Len()
	if err != nil {
		t.Fatal(err)
	}
	// Each writer inserts perG points and deletes ceil(perG/3) of them.
	want := writers * (perG - (perG+2)/3)
	if n != want {
		t.Fatalf("final size %d, want %d", n, want)
	}
}

// TestConcurrentInstrumented exercises the Instrumented decorator itself
// from many goroutines (it serializes internally) under -race.
func TestConcurrentInstrumented(t *testing.T) {
	ts := eio.NewTraceStore(eio.NewMemStore(1024))
	ts.SetSink(NewHistSink())
	idx, err := core.NewThreeSided(ts, epst.Options{})
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	in, err := Instrument(idx, ts, col)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				switch g % 3 {
				case 0:
					_ = in.Insert(geom.Point{X: int64(g*1000 + i), Y: int64(i)})
				case 1:
					_, _ = in.Delete(geom.Point{X: int64(i), Y: int64(i)})
				default:
					_, _ = in.Query(nil, geom.Rect{XLo: 0, XHi: 50, YLo: 0, YHi: geom.MaxCoord})
				}
			}
		}(g)
	}
	wg.Wait()
	if col.Len() != 600 {
		t.Fatalf("collector has %d records, want 600", col.Len())
	}
}
