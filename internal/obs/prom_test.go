package obs

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestWritePrometheusGaugesAndHistograms(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(uint64(i) * 1000)
	}
	Publish("prom test.gauge", func() interface{} {
		return map[string]interface{}{"reads": 42, "ratio": 0.25, "ok": true}
	})
	Publish("prom-test-hist", func() interface{} {
		return map[string]interface{}{"lat": h.Snapshot()}
	})
	defer func() {
		varMu.Lock()
		delete(varFns, "prom test.gauge")
		delete(varFns, "prom-test-hist")
		varMu.Unlock()
	}()

	var buf bytes.Buffer
	if err := WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()

	// Scalars became gauges under sanitized names.
	for _, want := range []string{
		"prom_test_gauge_reads 42",
		"prom_test_gauge_ratio 0.25",
		"prom_test_gauge_ok 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// The histogram became a cumulative-bucket series with sum and count.
	for _, want := range []string{
		"# TYPE prom_test_hist_lat histogram",
		`prom_test_hist_lat_bucket{le="+Inf"} 1000`,
		"prom_test_hist_lat_count 1000",
		"prom_test_hist_lat_sum ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Bucket counts are cumulative: each le count >= the previous.
	var prev int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "prom_test_hist_lat_bucket") {
			continue
		}
		var n int64
		if _, err := fmt.Sscanf(line[strings.Index(line, "} ")+2:], "%d", &n); err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		if n < prev {
			t.Fatalf("bucket counts not cumulative at %q (prev %d)", line, prev)
		}
		prev = n
	}

	// And the whole thing passes the validator the CI smoke uses.
	n, err := CheckExposition(strings.NewReader(out))
	if err != nil {
		t.Fatalf("CheckExposition rejected our own output: %v\n%s", err, out)
	}
	if n == 0 {
		t.Fatal("CheckExposition counted zero samples")
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"store.file":       "store_file",
		"a b\tc":           "a_b_c",
		"trailing..":       "trailing",
		"99bottles":        "_99bottles",
		"ok:colons_kept":   "ok:colons_kept",
		"weird/$%symbols!": "weird_symbols",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCheckExpositionRejectsGarbage(t *testing.T) {
	bad := []string{
		"no_value_here\n",
		"name{unclosed 3\n",
		"ok 1\nnot a metric line at all\n",
		"val NaNish\n",
	}
	for _, in := range bad {
		if _, err := CheckExposition(strings.NewReader(in)); err == nil {
			t.Errorf("CheckExposition accepted %q", in)
		}
	}
	// Labels with spaces inside quoted values are legal.
	good := "# TYPE foo gauge\nfoo{msg=\"two words\"} 7\n"
	if n, err := CheckExposition(strings.NewReader(good)); err != nil || n != 1 {
		t.Errorf("CheckExposition(%q) = %d, %v; want 1, nil", good, n, err)
	}
}
