// Package obs is the observability layer of the repository: it turns the
// raw block transfers of the I/O model into per-operation evidence that
// the paper's bounds (Theorems 6–7) hold continuously, not just in one-off
// experiment tables.
//
// The layer has four parts, stacked bottom-up:
//
//   - eio.TraceStore (in package eio) emits one typed TraceEvent per
//     block operation to a pluggable TraceSink.
//   - Sinks: RingSink (bounded in-memory tail for post-mortems), JSONLSink
//     (newline-delimited JSON to a file, replayable with `rsinspect
//     trace`), HistSink (log₂-bucketed latency histograms per operation
//     kind), and MultiSink (fan-out). All sinks are data-race free.
//   - Instrumented, a core.Index decorator that scopes measurement per
//     logical operation (Insert/Delete/Query), recording exact I/O counts,
//     reported-point counts t, and wall latency into a Collector.
//   - The bound checker (CheckBounds) that divides each operation's
//     measured I/Os by its theoretical allowance — log_B N + ⌈t/B⌉ for
//     queries, log_B N for updates — and summarizes the overhead ratios
//     (p50/p95/max), making "O(log_B N + t) with small constants" a
//     machine-checked invariant.
//
// Everything is opt-in: with no sink attached a TraceStore is a single
// atomic load per operation, and nothing in this package is imported by
// the index structures themselves.
package obs

import (
	"sync"
	"time"
)

// OpKind classifies logical index operations for per-operation accounting.
type OpKind uint8

// Logical operation kinds recorded by Instrumented.
const (
	OpInsert OpKind = iota
	OpDelete
	OpQuery
	numOpKinds
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpQuery:
		return "query"
	default:
		return "op(?)"
	}
}

// OpRecord is the measured cost of one logical index operation.
type OpRecord struct {
	// Kind is the operation performed.
	Kind OpKind `json:"kind"`
	// Reads and Writes are the store-level I/Os attributed to the
	// operation (Stats deltas on the measured store).
	Reads  uint64 `json:"reads"`
	Writes uint64 `json:"writes"`
	// T is the number of points reported (queries only).
	T int `json:"t,omitempty"`
	// N is the number of points in the structure when the operation
	// started — the N of the operation's own O(log_B N) allowance.
	N int `json:"n"`
	// Latency is the wall-clock duration of the operation.
	Latency time.Duration `json:"lat_ns"`
	// Err reports that the operation returned an error; errored records
	// are kept for forensics but excluded from bound checking.
	Err bool `json:"err,omitempty"`
}

// IOs returns the operation's total block transfers.
func (r OpRecord) IOs() uint64 { return r.Reads + r.Writes }

// Collector accumulates OpRecords from one or more Instrumented indexes.
// It keeps every record (the bound checker needs exact per-op values, and
// a bench run is bounded) plus always-on per-kind I/O-count and latency
// histograms for cheap live export via expvar.
type Collector struct {
	mu      sync.Mutex
	recs    []OpRecord
	ioHist  [numOpKinds]Histogram
	latHist [numOpKinds]Histogram
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Add records one operation.
func (c *Collector) Add(r OpRecord) {
	if r.Kind < numOpKinds {
		c.ioHist[r.Kind].Observe(r.IOs())
		lat := r.Latency
		if lat < 0 {
			lat = 0
		}
		c.latHist[r.Kind].Observe(uint64(lat))
	}
	c.mu.Lock()
	c.recs = append(c.recs, r)
	c.mu.Unlock()
}

// Records returns a copy of every record added so far.
func (c *Collector) Records() []OpRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]OpRecord(nil), c.recs...)
}

// Len returns the number of records.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.recs)
}

// Reset drops all records and clears the histograms.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.recs = nil
	c.mu.Unlock()
	for k := range c.ioHist {
		c.ioHist[k].Reset()
		c.latHist[k].Reset()
	}
}

// IOHist returns the I/O-count histogram for kind (do not Reset it
// directly; use Collector.Reset).
func (c *Collector) IOHist(kind OpKind) *Histogram { return &c.ioHist[kind] }

// LatencyHist returns the latency histogram (nanoseconds) for kind.
func (c *Collector) LatencyHist(kind OpKind) *Histogram { return &c.latHist[kind] }
