package obs

import (
	"sync"
	"time"

	"rangesearch/internal/core"
	"rangesearch/internal/eio"
	"rangesearch/internal/geom"
)

// Instrumented decorates a core.Index with per-operation measurement:
// every Insert/Delete/Query is timed, its exact store-level I/Os are
// attributed via Stats deltas, and the resulting OpRecord (including the
// reported-point count t and the structure size N at call time) is pushed
// to a Collector for bound checking.
//
// Operations serialize on an internal mutex — exact attribution needs
// exclusive use of the store's counters, so an Instrumented index is also
// a safely shareable one (it subsumes core.Synced, at the cost of query
// parallelism). If the measured store is an *eio.TraceStore, each
// operation additionally labels its trace events with the operation name,
// so store-level traces and index-level records line up.
type Instrumented struct {
	mu    sync.Mutex
	idx   core.Index
	store eio.Store
	ts    *eio.TraceStore // non-nil iff store is a TraceStore
	col   *Collector
	n     int // live structure size, maintained across ops
}

var _ core.Index = (*Instrumented)(nil)

// Instrument wraps idx, attributing I/Os on store (the store idx lives on)
// and recording into col. The structure's current size is read once here
// and maintained incrementally afterwards.
func Instrument(idx core.Index, store eio.Store, col *Collector) (*Instrumented, error) {
	n, err := idx.Len()
	if err != nil {
		return nil, err
	}
	ts, _ := store.(*eio.TraceStore)
	return &Instrumented{idx: idx, store: store, ts: ts, col: col, n: n}, nil
}

// Collector returns the record destination.
func (in *Instrumented) Collector() *Collector { return in.col }

// measure runs f under the lock with scope label and stats attribution.
func (in *Instrumented) measure(kind OpKind, f func() (t int, err error)) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.ts != nil {
		in.ts.SetScope(kind.String())
		defer in.ts.SetScope("")
	}
	before := in.store.Stats()
	start := time.Now()
	t, err := f()
	lat := time.Since(start)
	d := in.store.Stats().Sub(before)
	in.col.Add(OpRecord{
		Kind:    kind,
		Reads:   d.Reads,
		Writes:  d.Writes,
		T:       t,
		N:       in.n,
		Latency: lat,
		Err:     err != nil,
	})
	return err
}

// Insert implements core.Index.
func (in *Instrumented) Insert(p geom.Point) error {
	return in.measure(OpInsert, func() (int, error) {
		err := in.idx.Insert(p)
		if err == nil {
			in.n++
		}
		return 0, err
	})
}

// Delete implements core.Index.
func (in *Instrumented) Delete(p geom.Point) (found bool, err error) {
	err = in.measure(OpDelete, func() (int, error) {
		var ferr error
		found, ferr = in.idx.Delete(p)
		if ferr == nil && found {
			in.n--
		}
		return 0, ferr
	})
	return found, err
}

// Query implements core.Index. The record's T is the number of points
// appended by this call.
func (in *Instrumented) Query(dst []geom.Point, q geom.Rect) (res []geom.Point, err error) {
	err = in.measure(OpQuery, func() (int, error) {
		var qerr error
		res, qerr = in.idx.Query(dst, q)
		return len(res) - len(dst), qerr
	})
	return res, err
}

// Len implements core.Index (unmeasured: it is bookkeeping, not a bound).
func (in *Instrumented) Len() (int, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.idx.Len()
}

// Destroy implements core.Index.
func (in *Instrumented) Destroy() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.idx.Destroy()
}
