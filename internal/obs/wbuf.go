package obs

// WriteBufferStats is a point-in-time view of a write buffer
// (internal/wbuf.Buffered): how deep it is, what it has flushed, and
// what its journal has absorbed. The decorator implements
// WriteBufferSource; PublishWriteBuffer puts the snapshot on the
// expvar surface, where the Prometheus exposition flattens it into
// rangesearch_wbuf_* series.
type WriteBufferStats struct {
	// Depth is the number of distinct points currently buffered;
	// NetDelta the inserts-minus-deletes the buffer contributes to Len.
	Depth    int `json:"depth"`
	NetDelta int `json:"net_delta"`
	// CapOps is the size threshold a flush triggers at.
	CapOps int `json:"cap_ops"`

	Flushes      uint64 `json:"flushes"`
	FlushedOps   uint64 `json:"flushed_ops"`
	LastFlushOps int    `json:"last_flush_ops"`

	// Probes counts base point-queries the staging path issued to
	// resolve duplicate/found semantics. Replayed counts journaled ops
	// re-staged at open — nonzero exactly when this process recovered
	// acknowledged writes from a predecessor's crash.
	Probes   uint64 `json:"probes"`
	Replayed uint64 `json:"replayed"`

	FlushP50Ms  float64 `json:"flush_p50_ms"`
	FlushP99Ms  float64 `json:"flush_p99_ms"`
	FlushMaxMs  float64 `json:"flush_max_ms"`
	FlushOpsP50 uint64  `json:"flush_ops_p50"`
	FlushOpsMax uint64  `json:"flush_ops_max"`

	JournalBytes   int64  `json:"journal_bytes"`
	JournalAppends uint64 `json:"journal_appends"`
	JournalSyncs   uint64 `json:"journal_syncs"`
}

// WriteBufferSource is anything that can snapshot write-buffer stats —
// satisfied by *wbuf.Buffered.
type WriteBufferSource interface {
	WriteBufferStats() WriteBufferStats
}

// PublishWriteBuffer exports src's snapshot as the expvar
// "rangesearch.wbuf.<name>" (repointable, like every obs publisher), so
// buffer depth, flush counts/sizes and flush-latency quantiles reach
// /debug/vars and the Prometheus /metrics exposition.
func PublishWriteBuffer(name string, src WriteBufferSource) {
	publish("rangesearch.wbuf."+name, func() interface{} {
		s := src.WriteBufferStats()
		return map[string]interface{}{
			"depth":           s.Depth,
			"net_delta":       s.NetDelta,
			"cap_ops":         s.CapOps,
			"flushes":         s.Flushes,
			"flushed_ops":     s.FlushedOps,
			"last_flush_ops":  s.LastFlushOps,
			"probes":          s.Probes,
			"replayed":        s.Replayed,
			"flush_p50_ms":    s.FlushP50Ms,
			"flush_p99_ms":    s.FlushP99Ms,
			"flush_max_ms":    s.FlushMaxMs,
			"flush_ops_p50":   s.FlushOpsP50,
			"flush_ops_max":   s.FlushOpsMax,
			"journal_bytes":   s.JournalBytes,
			"journal_appends": s.JournalAppends,
			"journal_syncs":   s.JournalSyncs,
		}
	})
}
