package obs

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
	"sync"
)

// numBuckets covers every uint64: bucket 0 holds the value 0, bucket b ≥ 1
// holds values in [2^(b-1), 2^b - 1], so bucket 64 ends at MaxUint64.
const numBuckets = 65

// bucketOf maps a value to its log₂ bucket index.
func bucketOf(v uint64) int { return bits.Len64(v) }

// Bucket is one non-empty cell of a histogram snapshot.
type Bucket struct {
	// Lo and Hi are the inclusive value range of the bucket.
	Lo, Hi uint64
	// Count is the number of observations that fell in [Lo, Hi].
	Count uint64
}

// bucketRange returns the inclusive value range of bucket index b.
func bucketRange(b int) (lo, hi uint64) {
	if b == 0 {
		return 0, 0
	}
	lo = uint64(1) << (b - 1)
	if b == 64 {
		return lo, math.MaxUint64
	}
	return lo, (uint64(1) << b) - 1
}

// Histogram is a log₂-bucketed distribution of uint64 observations
// (latencies in nanoseconds, I/O counts, byte counts). It is safe for
// concurrent use and never allocates after creation, so it can sit on an
// I/O hot path as part of a trace sink.
//
// Quantiles are bucket-resolved: Quantile returns the upper bound of the
// bucket containing the requested rank, clamped to the exact observed
// minimum and maximum, so a one-point distribution reports that point
// exactly and errors are always ≤ 2× (one bucket).
type Histogram struct {
	mu     sync.Mutex
	counts [numBuckets]uint64
	n      uint64
	sum    float64 // float64: a sum of MaxUint64 samples must not wrap
	min    uint64
	max    uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.mu.Lock()
	h.counts[bucketOf(v)]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += float64(v)
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Mean returns the average observation, or 0 for an empty histogram.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min returns the smallest observation, or 0 for an empty histogram.
func (h *Histogram) Min() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest observation, or 0 for an empty histogram.
func (h *Histogram) Max() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns the bucket-resolved p-quantile (p in [0, 1]), or 0 for
// an empty histogram.
func (h *Histogram) Quantile(p float64) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	// Rank of the requested observation, 1-based.
	rank := uint64(math.Ceil(p * float64(h.n)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for b := 0; b < numBuckets; b++ {
		cum += h.counts[b]
		if cum >= rank {
			_, hi := bucketRange(b)
			if hi > h.max {
				hi = h.max
			}
			if hi < h.min {
				hi = h.min
			}
			return hi
		}
	}
	return h.max
}

// Buckets returns the non-empty buckets in increasing value order.
func (h *Histogram) Buckets() []Bucket {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []Bucket
	for b, c := range h.counts {
		if c == 0 {
			continue
		}
		lo, hi := bucketRange(b)
		out = append(out, Bucket{Lo: lo, Hi: hi, Count: c})
	}
	return out
}

// Merge folds every observation recorded in other into h. The two locks
// are taken in sequence, never together, so concurrent Observes on either
// histogram stay safe.
func (h *Histogram) Merge(other *Histogram) {
	other.mu.Lock()
	counts := other.counts
	n, sum, mn, mx := other.n, other.sum, other.min, other.max
	other.mu.Unlock()
	if n == 0 {
		return
	}
	h.mu.Lock()
	for b, c := range counts {
		h.counts[b] += c
	}
	if h.n == 0 || mn < h.min {
		h.min = mn
	}
	if mx > h.max {
		h.max = mx
	}
	h.n += n
	h.sum += sum
	h.mu.Unlock()
}

// Reset clears all observations.
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.counts = [numBuckets]uint64{}
	h.n, h.sum, h.min, h.max = 0, 0, 0, 0
	h.mu.Unlock()
}

// Snapshot returns a plain-data copy for serialization, taken atomically.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	var buckets []Bucket
	for b, c := range h.counts {
		if c == 0 {
			continue
		}
		lo, hi := bucketRange(b)
		buckets = append(buckets, Bucket{Lo: lo, Hi: hi, Count: c})
	}
	return HistogramSnapshot{
		Count:   h.n,
		Mean:    safeMean(h.sum, h.n),
		Min:     h.min,
		Max:     h.max,
		Buckets: buckets,
	}
}

func safeMean(sum float64, n uint64) float64 {
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// HistogramSnapshot is the JSON-friendly view of a Histogram.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Mean    float64  `json:"mean"`
	Min     uint64   `json:"min"`
	Max     uint64   `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// String renders count/mean/p50/p95/max on one line.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.1f p50=%d p95=%d max=%d",
		h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Max())
	return b.String()
}
