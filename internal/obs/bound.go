package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// The empirical bound checker: Theorems 6 and 7 promise queries in
// O(log_B N + t/B) I/Os and updates in O(log_B N) I/Os. For each measured
// operation we divide observed I/Os by the theoretical allowance,
//
//	query overhead  = IOs / (log_B N + ⌈t/B⌉)
//	update overhead = IOs / log_B N
//
// and summarize the ratios. If the implementation matches the theorems,
// overhead is a bounded constant independent of N — so a p95 threshold on
// it is a regression test for the constant factor itself.

// Summary describes a set of overhead ratios.
type Summary struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	Max   float64 `json:"max"`
}

// Summarize computes a Summary (xs is sorted in place).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sort.Float64s(xs)
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	q := func(p float64) float64 { return xs[int(p*float64(len(xs)-1))] }
	return Summary{
		Count: len(xs),
		Mean:  sum / float64(len(xs)),
		P50:   q(0.50),
		P95:   q(0.95),
		Max:   xs[len(xs)-1],
	}
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	if s.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.2f p50=%.2f p95=%.2f max=%.2f",
		s.Count, s.Mean, s.P50, s.P95, s.Max)
}

// BoundOptions configures allowances for one structure.
type BoundOptions struct {
	// B is the block capacity.
	B int
	// UpdateFactor scales the update allowance to UpdateFactor · log_B N.
	// It is 1 for the EPST (Theorem 6 prices updates at O(log_B N)) and
	// the level count O(log n / log log_B N) for the layered 4-sided
	// structure (Theorem 7 updates touch every level). Zero means 1.
	UpdateFactor float64
	// AmortizeWindow, when > 0, checks updates AMORTIZED over windows of
	// that many consecutive update records instead of per operation: the
	// window's overhead is the total I/Os its updates spent divided by
	// the sum of their per-op allowances. This is the relaxed allowance
	// dynamic indexability calls for — a buffered update path pays
	// nothing for most operations and a bulk flush on one, so the
	// per-operation ratio is meaningless while the windowed ratio (over
	// at least one full flush cycle) is the amortized bound the buffer
	// tree is supposed to beat. Set it to the buffer's flush threshold
	// or larger. Queries are always checked per operation.
	AmortizeWindow int
}

// BoundReport is the outcome of checking one structure's records against
// its theoretical allowances.
type BoundReport struct {
	// Name identifies the structure checked (e.g. "ThreeSided").
	Name string `json:"name"`
	// B is the block capacity used for allowances.
	B int `json:"b"`
	// UpdateFactor is the multiplier applied to the update allowance
	// (see BoundOptions.UpdateFactor).
	UpdateFactor float64 `json:"update_factor"`
	// AmortizeWindow is the update amortization window used (0 = per-op;
	// see BoundOptions.AmortizeWindow). With a window, Insert and Delete
	// summarize per-window ratios and their counts are window counts.
	AmortizeWindow int `json:"amortize_window,omitempty"`
	// Query, Insert and Delete summarize per-operation overhead ratios.
	Query  Summary `json:"query"`
	Insert Summary `json:"insert"`
	Delete Summary `json:"delete"`
	// Skipped counts records excluded from checking (errored operations,
	// or operations on an empty structure where no allowance is defined).
	Skipped int `json:"skipped,omitempty"`
}

// logB returns log_B N floored at 1: even a one-page structure is allowed
// one I/O, and a sub-1 denominator would inflate ratios meaninglessly.
func logB(n, b int) float64 {
	if n < 2 {
		n = 2
	}
	if b < 2 {
		b = 2
	}
	l := math.Log(float64(n)) / math.Log(float64(b))
	if l < 1 {
		return 1
	}
	return l
}

// CheckBounds computes per-operation overhead ratios for recs against
// block capacity b with the Theorem 6 allowances (update factor 1).
func CheckBounds(name string, recs []OpRecord, b int) BoundReport {
	return CheckBoundsOpt(name, recs, BoundOptions{B: b})
}

// CheckBoundsOpt computes per-operation overhead ratios for recs under o.
func CheckBoundsOpt(name string, recs []OpRecord, o BoundOptions) BoundReport {
	uf := o.UpdateFactor
	if uf <= 0 {
		uf = 1
	}
	rep := BoundReport{Name: name, B: o.B, UpdateFactor: uf, AmortizeWindow: o.AmortizeWindow}
	var qs, ins, dels []float64
	insW := newWindower(o.AmortizeWindow)
	delW := newWindower(o.AmortizeWindow)
	for _, r := range recs {
		if r.Err {
			rep.Skipped++
			continue
		}
		allow := logB(r.N, o.B)
		switch r.Kind {
		case OpQuery:
			tb := math.Ceil(float64(r.T) / float64(o.B))
			qs = append(qs, float64(r.IOs())/(allow+tb))
		case OpInsert:
			ins = insW.add(ins, float64(r.IOs()), uf*allow)
		case OpDelete:
			dels = delW.add(dels, float64(r.IOs()), uf*allow)
		default:
			rep.Skipped++
		}
	}
	ins = insW.finish(ins)
	dels = delW.finish(dels)
	rep.Query = Summarize(qs)
	rep.Insert = Summarize(ins)
	rep.Delete = Summarize(dels)
	return rep
}

// windower accumulates (I/Os, allowance) pairs into fixed-size windows
// and emits one amortized ratio per full window. Window size 0 means
// per-operation ratios. A trailing partial window of at least half the
// window size is emitted by finish — smaller remainders are dropped, so
// a tail that never saw a flush cannot skew the summary low (nor a
// flush-heavy tail skew it high over too few ops).
type windower struct {
	size       int
	n          int
	ios, allow float64
}

func newWindower(size int) *windower { return &windower{size: size} }

func (w *windower) add(dst []float64, ios, allow float64) []float64 {
	if w.size <= 0 {
		return append(dst, ios/allow)
	}
	w.n++
	w.ios += ios
	w.allow += allow
	if w.n >= w.size {
		dst = append(dst, w.ios/w.allow)
		w.n, w.ios, w.allow = 0, 0, 0
	}
	return dst
}

func (w *windower) finish(dst []float64) []float64 {
	if w.size > 0 && w.n*2 >= w.size && w.allow > 0 {
		dst = append(dst, w.ios/w.allow)
	}
	w.n, w.ios, w.allow = 0, 0, 0
	return dst
}

// Exceeds reports a non-nil error if any populated overhead summary's p95
// is above its limit. Updates (insert and delete) share one limit because
// they share one theorem bound; pass an infinite limit (math.Inf(1)) to
// skip a dimension.
func (r BoundReport) Exceeds(maxQueryP95, maxUpdateP95 float64) error {
	var viol []string
	if r.Query.Count > 0 && r.Query.P95 > maxQueryP95 {
		viol = append(viol, fmt.Sprintf("query p95 overhead %.2f > %.2f", r.Query.P95, maxQueryP95))
	}
	if r.Insert.Count > 0 && r.Insert.P95 > maxUpdateP95 {
		viol = append(viol, fmt.Sprintf("insert p95 overhead %.2f > %.2f", r.Insert.P95, maxUpdateP95))
	}
	if r.Delete.Count > 0 && r.Delete.P95 > maxUpdateP95 {
		viol = append(viol, fmt.Sprintf("delete p95 overhead %.2f > %.2f", r.Delete.P95, maxUpdateP95))
	}
	if len(viol) == 0 {
		return nil
	}
	return fmt.Errorf("obs: %s bound check failed: %s", r.Name, strings.Join(viol, "; "))
}

// String renders the report as aligned text.
func (r BoundReport) String() string {
	var b strings.Builder
	if r.AmortizeWindow > 0 {
		fmt.Fprintf(&b, "%s (B=%d, update factor %.2f, amortized over %d-op windows):\n",
			r.Name, r.B, r.UpdateFactor, r.AmortizeWindow)
	} else {
		fmt.Fprintf(&b, "%s (B=%d, update factor %.2f):\n", r.Name, r.B, r.UpdateFactor)
	}
	fmt.Fprintf(&b, "  query  IOs/(log_B N + ceil(t/B)): %s\n", r.Query)
	fmt.Fprintf(&b, "  insert IOs/(f*log_B N):           %s\n", r.Insert)
	fmt.Fprintf(&b, "  delete IOs/(f*log_B N):           %s\n", r.Delete)
	if r.Skipped > 0 {
		fmt.Fprintf(&b, "  skipped records: %d\n", r.Skipped)
	}
	return b.String()
}
