// Package geom defines the planar geometry vocabulary shared by every
// structure in this repository: points with integer coordinates, orthogonal
// rectangles, and the query shapes of Arge, Samoladas & Vitter (PODS 1999),
// Figure 1 — diagonal-corner, 2-sided, 3-sided and general 4-sided range
// queries.
//
// Coordinates are int64. Infinite query sides are expressed with MinCoord
// and MaxCoord, which every structure treats as -∞ / +∞.
package geom

import (
	"fmt"
	"math"
	"sort"
)

// MinCoord and MaxCoord act as -∞ and +∞ for query sides. They are valid
// point coordinates as well; queries are closed, so a query side at
// MinCoord/MaxCoord includes points at that coordinate.
const (
	MinCoord int64 = math.MinInt64
	MaxCoord int64 = math.MaxInt64
)

// Point is a point in the plane.
type Point struct {
	X, Y int64
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Less reports whether p precedes q in the canonical (X, then Y) order used
// to route points through x-partitioned structures. The tiebreak on Y makes
// the order total for distinct points, so duplicate x-coordinates are fully
// supported.
func (p Point) Less(q Point) bool {
	if p.X != q.X {
		return p.X < q.X
	}
	return p.Y < q.Y
}

// Compare returns -1, 0 or +1 as p sorts before, equal to, or after q in the
// canonical (X, then Y) order.
func (p Point) Compare(q Point) int {
	switch {
	case p.X < q.X:
		return -1
	case p.X > q.X:
		return 1
	case p.Y < q.Y:
		return -1
	case p.Y > q.Y:
		return 1
	default:
		return 0
	}
}

// YLess reports whether p precedes q ordered by (Y, then X); it is the order
// used by sweep lines and y-sorted leaf lists.
func (p Point) YLess(q Point) bool {
	if p.Y != q.Y {
		return p.Y < q.Y
	}
	return p.X < q.X
}

// Rect is a closed orthogonal rectangle [XLo, XHi] × [YLo, YHi].
type Rect struct {
	XLo, XHi int64
	YLo, YHi int64
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d]x[%d,%d]", r.XLo, r.XHi, r.YLo, r.YHi)
}

// Empty reports whether the rectangle contains no points.
func (r Rect) Empty() bool { return r.XLo > r.XHi || r.YLo > r.YHi }

// Contains reports whether p lies in r (boundaries included).
func (r Rect) Contains(p Point) bool {
	return r.XLo <= p.X && p.X <= r.XHi && r.YLo <= p.Y && p.Y <= r.YHi
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	return r.XLo <= s.XHi && s.XLo <= r.XHi && r.YLo <= s.YHi && s.YLo <= r.YHi
}

// Intersect returns the intersection of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	return Rect{
		XLo: max64(r.XLo, s.XLo), XHi: min64(r.XHi, s.XHi),
		YLo: max64(r.YLo, s.YLo), YHi: min64(r.YHi, s.YHi),
	}
}

// Query3 is a 3-sided range query: XLo ≤ x ≤ XHi and y ≥ YLo (the unbounded
// side is upward, as in Section 2.2.1 of the paper). Use MinCoord/MaxCoord
// for degenerate sides.
type Query3 struct {
	XLo, XHi int64
	YLo      int64
}

// String implements fmt.Stringer.
func (q Query3) String() string {
	return fmt.Sprintf("[%d,%d]x[%d,+inf)", q.XLo, q.XHi, q.YLo)
}

// Contains reports whether p satisfies the query.
func (q Query3) Contains(p Point) bool {
	return q.XLo <= p.X && p.X <= q.XHi && p.Y >= q.YLo
}

// Empty reports whether no point can satisfy the query.
func (q Query3) Empty() bool { return q.XLo > q.XHi }

// Rect returns the query region as a (half-unbounded) rectangle.
func (q Query3) Rect() Rect {
	return Rect{XLo: q.XLo, XHi: q.XHi, YLo: q.YLo, YHi: MaxCoord}
}

// Query4 is a general 4-sided orthogonal range query over the closed
// rectangle [XLo,XHi] × [YLo,YHi].
type Query4 = Rect

// DiagonalCorner returns the 2-sided diagonal-corner query with corner
// (q, q) on the line x = y: it matches points with x ≤ q and y ≥ q. A
// stabbing query over intervals [lo, hi] mapped to points (lo, hi) is
// exactly this query (Section 1 of the paper; Figure 1(a)).
func DiagonalCorner(q int64) Query3 {
	return Query3{XLo: MinCoord, XHi: q, YLo: q}
}

// Interval is a closed interval [Lo, Hi] on the line, Lo ≤ Hi.
type Interval struct {
	Lo, Hi int64
}

// String implements fmt.Stringer.
func (iv Interval) String() string { return fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi) }

// Contains reports whether the interval contains q.
func (iv Interval) Contains(q int64) bool { return iv.Lo <= q && q <= iv.Hi }

// Valid reports whether Lo ≤ Hi.
func (iv Interval) Valid() bool { return iv.Lo <= iv.Hi }

// Point maps the interval to the plane point (Lo, Hi); interval stabbing at
// q is then the diagonal-corner query DiagonalCorner(q).
func (iv Interval) Point() Point { return Point{X: iv.Lo, Y: iv.Hi} }

// IntervalFromPoint is the inverse of Interval.Point.
func IntervalFromPoint(p Point) Interval { return Interval{Lo: p.X, Hi: p.Y} }

// SortByX sorts pts in the canonical (X, then Y) order, in place.
func SortByX(pts []Point) {
	sort.Slice(pts, func(i, j int) bool { return pts[i].Less(pts[j]) })
}

// SortByY sorts pts by (Y, then X) order, in place.
func SortByY(pts []Point) {
	sort.Slice(pts, func(i, j int) bool { return pts[i].YLess(pts[j]) })
}

// Filter3 returns the points of pts satisfying q, appended to dst.
func Filter3(dst []Point, pts []Point, q Query3) []Point {
	for _, p := range pts {
		if q.Contains(p) {
			dst = append(dst, p)
		}
	}
	return dst
}

// Filter4 returns the points of pts inside r, appended to dst.
func Filter4(dst []Point, pts []Point, r Rect) []Point {
	for _, p := range pts {
		if r.Contains(p) {
			dst = append(dst, p)
		}
	}
	return dst
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
