package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointOrdering(t *testing.T) {
	cases := []struct {
		p, q Point
		less bool
	}{
		{Point{1, 5}, Point{2, 0}, true},
		{Point{2, 0}, Point{1, 5}, false},
		{Point{1, 1}, Point{1, 2}, true},
		{Point{1, 2}, Point{1, 2}, false},
	}
	for _, c := range cases {
		if got := c.p.Less(c.q); got != c.less {
			t.Errorf("%v.Less(%v) = %v, want %v", c.p, c.q, got, c.less)
		}
	}
}

func TestCompareConsistentWithLess(t *testing.T) {
	err := quick.Check(func(ax, ay, bx, by int64) bool {
		p, q := Point{ax, ay}, Point{bx, by}
		cmp := p.Compare(q)
		switch {
		case p.Less(q):
			return cmp == -1
		case q.Less(p):
			return cmp == 1
		default:
			return cmp == 0 && p == q
		}
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{XLo: 0, XHi: 10, YLo: 5, YHi: 15}
	for _, p := range []Point{{0, 5}, {10, 15}, {5, 10}} {
		if !r.Contains(p) {
			t.Errorf("%v should contain %v", r, p)
		}
	}
	for _, p := range []Point{{-1, 5}, {11, 5}, {5, 4}, {5, 16}} {
		if r.Contains(p) {
			t.Errorf("%v should not contain %v", r, p)
		}
	}
}

func TestRectIntersect(t *testing.T) {
	a := Rect{XLo: 0, XHi: 10, YLo: 0, YHi: 10}
	b := Rect{XLo: 5, XHi: 15, YLo: 5, YHi: 15}
	got := a.Intersect(b)
	want := Rect{XLo: 5, XHi: 10, YLo: 5, YHi: 10}
	if got != want {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("Intersects should be true")
	}
	c := Rect{XLo: 11, XHi: 12, YLo: 0, YHi: 10}
	if a.Intersects(c) {
		t.Error("disjoint rects reported intersecting")
	}
	if !a.Intersect(c).Empty() {
		t.Error("intersection of disjoint rects should be empty")
	}
}

func TestIntersectionMembershipProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a := randRect(rng)
		b := randRect(rng)
		p := Point{rng.Int63n(100), rng.Int63n(100)}
		inBoth := a.Contains(p) && b.Contains(p)
		if inBoth != a.Intersect(b).Contains(p) {
			t.Fatalf("intersection membership mismatch: %v %v %v", a, b, p)
		}
	}
}

func randRect(rng *rand.Rand) Rect {
	x1, x2 := rng.Int63n(100), rng.Int63n(100)
	y1, y2 := rng.Int63n(100), rng.Int63n(100)
	if x1 > x2 {
		x1, x2 = x2, x1
	}
	if y1 > y2 {
		y1, y2 = y2, y1
	}
	return Rect{XLo: x1, XHi: x2, YLo: y1, YHi: y2}
}

func TestQuery3Semantics(t *testing.T) {
	q := Query3{XLo: 2, XHi: 8, YLo: 10}
	if !q.Contains(Point{2, 10}) || !q.Contains(Point{8, MaxCoord}) {
		t.Error("boundary points must satisfy 3-sided query")
	}
	if q.Contains(Point{1, 100}) || q.Contains(Point{5, 9}) {
		t.Error("points outside sides must not satisfy query")
	}
	if !q.Rect().Contains(Point{5, MaxCoord}) {
		t.Error("Rect() must be open-topped")
	}
}

func TestDiagonalCornerIsStabbing(t *testing.T) {
	ivs := []Interval{{0, 5}, {3, 9}, {6, 7}, {-2, -1}}
	for q := int64(-3); q <= 10; q++ {
		dq := DiagonalCorner(q)
		for _, iv := range ivs {
			if iv.Contains(q) != dq.Contains(iv.Point()) {
				t.Fatalf("stabbing/diagonal mismatch at q=%d iv=%v", q, iv)
			}
		}
	}
}

func TestIntervalPointRoundTrip(t *testing.T) {
	err := quick.Check(func(lo, hi int64) bool {
		iv := Interval{Lo: lo, Hi: hi}
		return IntervalFromPoint(iv.Point()) == iv
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestSorts(t *testing.T) {
	pts := []Point{{3, 1}, {1, 2}, {1, 1}, {2, 9}}
	SortByX(pts)
	for i := 1; i < len(pts); i++ {
		if pts[i].Less(pts[i-1]) {
			t.Fatalf("SortByX out of order at %d: %v", i, pts)
		}
	}
	SortByY(pts)
	for i := 1; i < len(pts); i++ {
		if pts[i].YLess(pts[i-1]) {
			t.Fatalf("SortByY out of order at %d: %v", i, pts)
		}
	}
}

func TestFilters(t *testing.T) {
	pts := []Point{{0, 0}, {5, 5}, {10, 10}}
	got := Filter3(nil, pts, Query3{XLo: 0, XHi: 10, YLo: 5})
	if len(got) != 2 {
		t.Fatalf("Filter3: got %d points", len(got))
	}
	got = Filter4(nil, pts, Rect{XLo: 0, XHi: 10, YLo: 0, YHi: 5})
	if len(got) != 2 {
		t.Fatalf("Filter4: got %d points", len(got))
	}
}
