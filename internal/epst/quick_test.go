package epst

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"rangesearch/internal/eio"
	"rangesearch/internal/geom"
)

// Property: for any random operation sequence, the tree answers every
// 3-sided query exactly like a set, and the Section 3.3 invariants hold
// afterwards. This is the repository's most load-bearing property test:
// it exercises splits, Y-set spills, bubble-ups and rebuilds under every
// interleaving the generator finds.
func TestQuickOpSequence(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 40,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			vals[0] = reflect.ValueOf(rng.Int63())
			vals[1] = reflect.ValueOf(100 + rng.Intn(400)) // ops
			vals[2] = reflect.ValueOf(16 + rng.Intn(49))   // coordinate universe edge
		},
	}
	err := quick.Check(func(seed int64, ops int, edge int) bool {
		rng := rand.New(rand.NewSource(seed))
		store := eio.NewMemStore(128) // B = 8
		tr, err := Create(store, Options{A: 2, K: 4})
		if err != nil {
			return false
		}
		model := map[geom.Point]bool{}
		for i := 0; i < ops; i++ {
			p := geom.Point{X: rng.Int63n(int64(edge)), Y: rng.Int63n(int64(edge))}
			if rng.Intn(3) != 0 {
				err := tr.Insert(p)
				if model[p] != (err != nil) {
					return false
				}
				model[p] = true
			} else {
				found, err := tr.Delete(p)
				if err != nil || found != model[p] {
					return false
				}
				delete(model, p)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			return false
		}
		for trial := 0; trial < 5; trial++ {
			a := rng.Int63n(int64(edge))
			b := a + rng.Int63n(int64(edge))
			c := rng.Int63n(int64(edge))
			q := geom.Query3{XLo: a, XHi: b, YLo: c}
			got, err := tr.Query3(nil, q)
			if err != nil {
				return false
			}
			seen := map[geom.Point]bool{}
			for _, p := range got {
				if seen[p] || !model[p] || !q.Contains(p) {
					return false // duplicate or wrong report
				}
				seen[p] = true
			}
			for p := range model {
				if q.Contains(p) && !seen[p] {
					return false // missed report
				}
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// Property: bulk build and incremental insertion of the same point set
// answer every query identically (construction-path independence).
func TestQuickBuildVsIncremental(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 25,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			n := rng.Intn(250)
			seen := map[geom.Point]bool{}
			pts := make([]geom.Point, 0, n)
			for len(pts) < n {
				p := geom.Point{X: rng.Int63n(200), Y: rng.Int63n(200)}
				if !seen[p] {
					seen[p] = true
					pts = append(pts, p)
				}
			}
			vals[0] = reflect.ValueOf(pts)
			vals[1] = reflect.ValueOf(rng.Int63())
		},
	}
	err := quick.Check(func(pts []geom.Point, qseed int64) bool {
		bulk, err := Build(eio.NewMemStore(128), Options{A: 2, K: 4}, pts)
		if err != nil {
			return false
		}
		incr, err := Create(eio.NewMemStore(128), Options{A: 2, K: 4})
		if err != nil {
			return false
		}
		for _, p := range pts {
			if err := incr.Insert(p); err != nil {
				return false
			}
		}
		rng := rand.New(rand.NewSource(qseed))
		for trial := 0; trial < 8; trial++ {
			a := rng.Int63n(220) - 10
			b := a + rng.Int63n(220)
			c := rng.Int63n(220) - 10
			q := geom.Query3{XLo: a, XHi: b, YLo: c}
			g1, err1 := bulk.Query3(nil, q)
			g2, err2 := incr.Query3(nil, q)
			if err1 != nil || err2 != nil {
				return false
			}
			geom.SortByX(g1)
			geom.SortByX(g2)
			if len(g1) != len(g2) {
				return false
			}
			for i := range g1 {
				if g1[i] != g2[i] {
					return false
				}
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}
