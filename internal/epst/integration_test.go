package epst

import (
	"math/rand"
	"testing"

	"rangesearch/internal/eio"
	"rangesearch/internal/geom"
)

// TestThroughBufferPool runs a full mixed workload through an LRU buffer
// pool and checks that the pooled tree stays byte-equivalent (under
// queries) to an unbuffered twin. This exercises write-back correctness
// across the allocation/free churn of splits and rebuilds — the practical
// deployment mode.
func TestThroughBufferPool(t *testing.T) {
	for _, capacity := range []int{2, 16, 256} {
		rng := rand.New(rand.NewSource(int64(capacity)))
		backing := eio.NewMemStore(128)
		pool := eio.NewPool(backing, capacity)
		pooled, err := Create(pool, Options{A: 2, K: 4})
		if err != nil {
			t.Fatal(err)
		}
		plain, err := Create(eio.NewMemStore(128), Options{A: 2, K: 4})
		if err != nil {
			t.Fatal(err)
		}
		model := map[geom.Point]bool{}
		for op := 0; op < 1500; op++ {
			p := geom.Point{X: rng.Int63n(300), Y: rng.Int63n(300)}
			if rng.Intn(3) != 0 {
				if !model[p] {
					if err := pooled.Insert(p); err != nil {
						t.Fatalf("cap=%d op=%d: pooled insert: %v", capacity, op, err)
					}
					if err := plain.Insert(p); err != nil {
						t.Fatal(err)
					}
					model[p] = true
				}
			} else if model[p] {
				if _, err := pooled.Delete(p); err != nil {
					t.Fatalf("cap=%d op=%d: pooled delete: %v", capacity, op, err)
				}
				if _, err := plain.Delete(p); err != nil {
					t.Fatal(err)
				}
				delete(model, p)
			}
			if op%251 == 0 {
				a := rng.Int63n(300)
				b := a + rng.Int63n(300-a+1)
				c := rng.Int63n(300)
				q := geom.Query3{XLo: a, XHi: b, YLo: c}
				g1, err := pooled.Query3(nil, q)
				if err != nil {
					t.Fatal(err)
				}
				g2, err := plain.Query3(nil, q)
				if err != nil {
					t.Fatal(err)
				}
				geom.SortByX(g1)
				geom.SortByX(g2)
				if len(g1) != len(g2) {
					t.Fatalf("cap=%d op=%d: pooled %d vs plain %d results", capacity, op, len(g1), len(g2))
				}
				for i := range g1 {
					if g1[i] != g2[i] {
						t.Fatalf("cap=%d op=%d: result %d differs", capacity, op, i)
					}
				}
			}
		}
		if err := pooled.CheckInvariants(); err != nil {
			t.Fatalf("cap=%d: %v", capacity, err)
		}
		// After a flush, the backing store alone must hold a valid tree.
		if err := pool.Flush(); err != nil {
			t.Fatal(err)
		}
		reopened, err := Open(backing, pooled.HeaderID(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := reopened.CheckInvariants(); err != nil {
			t.Fatalf("cap=%d: backing store invalid after flush: %v", capacity, err)
		}
		n, err := reopened.Len()
		if err != nil || n != len(model) {
			t.Fatalf("cap=%d: backing Len=%d want %d (%v)", capacity, n, len(model), err)
		}
	}
}

// TestNodeSerializationRoundTrip checks encode/decode stability for both
// node kinds, including edge shapes.
func TestNodeSerializationRoundTrip(t *testing.T) {
	nodes := []*node{
		{level: 0},
		{level: 0, keys: []keyEntry{
			{p: geom.Point{X: -5, Y: 9}, here: true},
			{p: geom.Point{X: 0, Y: 0}, here: false},
			{p: geom.Point{X: geom.MaxCoord - 1, Y: geom.MinCoord + 1}, here: true},
		}},
		{level: 3, q: 42, entries: []entry{
			{maxKey: geom.Point{X: 1, Y: 2}, child: 7, weight: 1234567890123, ysize: 0},
			{maxKey: geom.Point{X: geom.MaxCoord, Y: geom.MaxCoord}, child: 9, weight: 1, ysize: 255},
		}},
	}
	for i, n := range nodes {
		raw := encodeNode(n)
		got, err := decodeNode(raw)
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		if got.level != n.level || got.q != n.q ||
			len(got.keys) != len(n.keys) || len(got.entries) != len(n.entries) {
			t.Fatalf("node %d: shape mismatch", i)
		}
		for j := range n.keys {
			if got.keys[j] != n.keys[j] {
				t.Fatalf("node %d key %d mismatch", i, j)
			}
		}
		for j := range n.entries {
			if got.entries[j] != n.entries[j] {
				t.Fatalf("node %d entry %d mismatch", i, j)
			}
		}
		// Re-encoding is byte-identical (layout determinism).
		raw2 := encodeNode(got)
		if string(raw) != string(raw2) {
			t.Fatalf("node %d: re-encode differs", i)
		}
	}
	// Corrupt input is rejected, not crashed on.
	if _, err := decodeNode([]byte{1, 2, 3}); err == nil {
		t.Fatal("short record accepted")
	}
	if _, err := decodeNode(make([]byte, 40)); err == nil {
		t.Fatal("inconsistent record accepted")
	}
}

// TestProfile sanity-checks the per-level breakdown against known totals.
func TestProfile(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	store := eio.NewMemStore(256) // B = 16
	pts := distinctPoints(rng, 5000, 1<<20)
	tr, err := Build(store, Options{}, pts)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := tr.Profile()
	if err != nil {
		t.Fatal(err)
	}
	h, err := tr.Height()
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) != h+1 {
		t.Fatalf("profile has %d levels, height %d", len(prof), h)
	}
	stored := 0
	for _, lp := range prof {
		stored += lp.Stored
		if lp.Nodes == 0 {
			t.Fatalf("level %d has no nodes", lp.Level)
		}
		if lp.Level > 0 && (lp.AvgYFill < 0 || lp.AvgYFill > 1) {
			t.Fatalf("level %d avg Y fill %v out of range", lp.Level, lp.AvgYFill)
		}
	}
	if stored != len(pts) {
		t.Fatalf("profile accounts for %d of %d points", stored, len(pts))
	}
	if prof[h].Nodes != 1 {
		t.Fatalf("root level has %d nodes", prof[h].Nodes)
	}
	if prof[h].Keys != int64(len(pts)) {
		t.Fatalf("root level routes %d keys, want %d", prof[h].Keys, len(pts))
	}
}
