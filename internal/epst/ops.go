package epst

import (
	"fmt"

	"rangesearch/internal/eio"
	"rangesearch/internal/geom"
	"rangesearch/internal/smallstruct"
)

// Query3 appends every stored point satisfying q to dst (Section 3.3.1).
// Cost: O(log_B N + T/B) I/Os.
func (t *Tree) Query3(dst []geom.Point, q geom.Query3) ([]geom.Point, error) {
	if q.Empty() {
		return dst, nil
	}
	m, err := t.loadMeta()
	if err != nil {
		return dst, err
	}
	return t.query(m.root, dst, q)
}

func (t *Tree) query(id eio.PageID, dst []geom.Point, q geom.Query3) ([]geom.Point, error) {
	n, err := t.readNode(id)
	if err != nil {
		return dst, err
	}
	if n.level == 0 {
		for _, ke := range n.keys {
			if ke.here && q.Contains(ke.p) {
				dst = append(dst, ke.p)
			}
		}
		return dst, nil
	}
	qs, err := t.openQ(n.q)
	if err != nil {
		return dst, err
	}
	res, err := qs.Query3(nil, q)
	if err != nil {
		return dst, err
	}
	dst = append(dst, res...)

	leftIdx := routeChild(n, geom.Point{X: q.XLo, Y: geom.MinCoord})
	rightIdx := routeChild(n, geom.Point{X: q.XHi, Y: geom.MaxCoord})
	for i := leftIdx; i <= rightIdx; i++ {
		visit := false
		if i == leftIdx || i == rightIdx {
			// Children on the search paths for x = a and x = b.
			visit = true
		} else if ys := int(n.entries[i].ysize); ys > 0 {
			// Interior child: visit only when its entire Y-set satisfied
			// the query. Y-sets smaller than B/2 imply (by the paper's
			// third invariant) that nothing is stored below, so such
			// children never need a visit even when fully reported.
			if 2*ys >= t.b {
				cnt := 0
				for _, p := range res {
					if inChildRange(n, i, p) {
						cnt++
					}
				}
				visit = cnt == ys
			}
		}
		if visit {
			dst, err = t.query(n.entries[i].child, dst, q)
			if err != nil {
				return dst, err
			}
		}
	}
	return dst, nil
}

// Contains reports whether p is stored. A point is live exactly when its
// key is present in its leaf, so a single root-to-leaf search suffices.
func (t *Tree) Contains(p geom.Point) (bool, error) {
	m, err := t.loadMeta()
	if err != nil {
		return false, err
	}
	id := m.root
	for {
		n, err := t.readNode(id)
		if err != nil {
			return false, err
		}
		if n.level == 0 {
			i := lowerBoundKeys(n.keys, p)
			return i < len(n.keys) && n.keys[i].p == p, nil
		}
		id = n.entries[routeChild(n, p)].child
	}
}

// MaxY returns the stored point with the largest (y, x); ok is false when
// the tree is empty. Cost: O(1) small-structure reads at the root (the
// global top always lives in the root's structure, or in the root leaf).
func (t *Tree) MaxY() (geom.Point, bool, error) {
	m, err := t.loadMeta()
	if err != nil {
		return geom.Point{}, false, err
	}
	n, err := t.readNode(m.root)
	if err != nil {
		return geom.Point{}, false, err
	}
	if n.level == 0 {
		var best geom.Point
		found := false
		for _, ke := range n.keys {
			if ke.here && (!found || best.YLess(ke.p)) {
				best, found = ke.p, true
			}
		}
		return best, found, nil
	}
	q, err := t.openQ(n.q)
	if err != nil {
		return geom.Point{}, false, err
	}
	return q.MaxY()
}

// Insert adds p in O(log_B N) amortized I/Os (Section 3.3.2): the key
// enters the weight-balanced base tree (splitting nodes and reorganizing
// their auxiliary structures as needed), then the point trickles down
// through Y-sets to its proper depth.
func (t *Tree) Insert(p geom.Point) error {
	ok, err := t.Contains(p)
	if err != nil {
		return err
	}
	if ok {
		return fmt.Errorf("epst: insert %v: %w", p, ErrDuplicate)
	}
	m, err := t.loadMeta()
	if err != nil {
		return err
	}
	if err := t.insertKey(m, p); err != nil {
		return err
	}
	if err := t.place(m.root, p); err != nil {
		return err
	}
	m.live++
	if m.live > m.basis {
		m.basis = m.live
	}
	return t.storeMeta(m)
}

// insertKey inserts p's key into the base tree, splitting overweight nodes
// bottom-up and reorganizing their auxiliary structures (Figure 5).
func (t *Tree) insertKey(m *meta, p geom.Point) error {
	type pathEl struct {
		id  eio.PageID
		n   *node
		idx int
	}
	var path []pathEl
	id := m.root
	for {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		if n.level == 0 {
			path = append(path, pathEl{id: id, n: n})
			break
		}
		idx := routeChild(n, p)
		path = append(path, pathEl{id: id, n: n, idx: idx})
		id = n.entries[idx].child
	}

	// Add the key to the leaf; the point itself is placed by place()
	// afterwards, so the key starts as "absorbed above".
	leaf := path[len(path)-1].n
	pos := lowerBoundKeys(leaf.keys, p)
	leaf.keys = append(leaf.keys, keyEntry{})
	copy(leaf.keys[pos+1:], leaf.keys[pos:])
	leaf.keys[pos] = keyEntry{p: p, here: false}

	type carryT struct {
		leftWeight  int64
		leftMax     geom.Point
		leftYsize   int32
		rightID     eio.PageID
		rightWeight int64
		rightMax    geom.Point
		rightYsize  int32
	}
	var carry *carryT
	for i := len(path) - 1; i >= 0; i-- {
		el := path[i]
		n := el.n
		if n.level > 0 {
			e := &n.entries[el.idx]
			if carry != nil {
				e.weight = carry.leftWeight
				e.maxKey = carry.leftMax
				e.ysize = carry.leftYsize
				n.entries = append(n.entries, entry{})
				copy(n.entries[el.idx+2:], n.entries[el.idx+1:])
				n.entries[el.idx+1] = entry{
					maxKey: carry.rightMax,
					child:  carry.rightID,
					weight: carry.rightWeight,
					ysize:  carry.rightYsize,
				}
				carry = nil
			} else {
				e.weight++
				if e.maxKey.Less(p) {
					e.maxKey = p
				}
			}
		}

		// Split if overweight.
		var right *node
		switch {
		case n.level == 0 && len(n.keys) >= 2*t.k:
			right = &node{level: 0, keys: append([]keyEntry(nil), n.keys[t.k:]...)}
			n.keys = n.keys[:t.k]
		case n.level > 0 && nodeWeight(n) >= 2*t.levelCap(n.level):
			right = t.splitEntries(n)
		}
		if right == nil {
			if err := t.writeBack(el.id, n); err != nil {
				return err
			}
			continue
		}

		boundary := nodeMaxKey(n)
		if n.level > 0 {
			// Split Q_v by the boundary: Y-sets never straddle it, so each
			// child keeps its Y-set intact on its side.
			qv, err := t.openQ(n.q)
			if err != nil {
				return err
			}
			all, err := qv.All()
			if err != nil {
				return err
			}
			if err := qv.Destroy(); err != nil {
				return err
			}
			var leftPts, rightPts []geom.Point
			for _, pt := range all {
				if boundary.Less(pt) {
					rightPts = append(rightPts, pt)
				} else {
					leftPts = append(leftPts, pt)
				}
			}
			if n.q, err = t.createQ(leftPts); err != nil {
				return err
			}
			if right.q, err = t.createQ(rightPts); err != nil {
				return err
			}
		}
		rightID, err := t.writeNode(eio.NilPage, right)
		if err != nil {
			return err
		}
		if err := t.writeBack(el.id, n); err != nil {
			return err
		}

		if i > 0 {
			// Split Y(v) in the parent: count the old Y-set on each side
			// of the boundary, then refill both halves to B/2 by bubbling
			// points up from the respective subtrees (Figure 5(b)).
			parent := path[i-1]
			qp, err := t.openQ(parent.n.q)
			if err != nil {
				return err
			}
			yv, err := t.ySet(qp, parent.n, parent.idx)
			if err != nil {
				return err
			}
			var leftCnt int32
			for _, pt := range yv {
				if !boundary.Less(pt) {
					leftCnt++
				}
			}
			leftY, rightY := leftCnt, int32(len(yv))-leftCnt
			leftY, err = t.refillY(qp, el.id, leftY)
			if err != nil {
				return err
			}
			rightY, err = t.refillY(qp, rightID, rightY)
			if err != nil {
				return err
			}
			carry = &carryT{
				leftWeight:  nodeWeight(n),
				leftMax:     boundary,
				leftYsize:   leftY,
				rightID:     rightID,
				rightWeight: nodeWeight(right),
				rightMax:    nodeMaxKey(right),
				rightYsize:  rightY,
			}
			continue
		}

		// Root split: a new root with an initially empty query structure;
		// both halves' Y-sets are bubbled up from scratch.
		qRoot, err := t.createQ(nil)
		if err != nil {
			return err
		}
		newRoot := &node{
			level: n.level + 1,
			q:     qRoot,
			entries: []entry{
				{maxKey: boundary, child: el.id, weight: nodeWeight(n)},
				{maxKey: nodeMaxKey(right), child: rightID, weight: nodeWeight(right)},
			},
		}
		qr, err := t.openQ(qRoot)
		if err != nil {
			return err
		}
		if newRoot.entries[0].ysize, err = t.refillY(qr, el.id, 0); err != nil {
			return err
		}
		if newRoot.entries[1].ysize, err = t.refillY(qr, rightID, 0); err != nil {
			return err
		}
		rootID, err := t.writeNode(eio.NilPage, newRoot)
		if err != nil {
			return err
		}
		m.root = rootID
		m.height = newRoot.level
	}
	return nil
}

// refillY bubbles points up from the subtree rooted at childID into the
// parent structure qp until the Y-set holds B/2 points or the subtree runs
// dry. It returns the resulting Y-set size.
func (t *Tree) refillY(qp *smallstruct.Struct, childID eio.PageID, ysize int32) (int32, error) {
	for int(ysize) < t.yHalf() {
		top, ok, err := t.extractTop(childID)
		if err != nil {
			return ysize, err
		}
		if !ok {
			break
		}
		if err := qp.Insert(top); err != nil {
			return ysize, err
		}
		ysize++
	}
	return ysize, nil
}

// splitEntries splits an internal node's children by weight; n keeps the
// left half, the returned node takes the right.
func (t *Tree) splitEntries(n *node) *node {
	total := nodeWeight(n)
	half := total / 2
	acc := int64(0)
	cut := 1
	bestDiff := int64(1) << 62
	for i := 0; i < len(n.entries)-1; i++ {
		acc += n.entries[i].weight
		diff := acc - half
		if diff < 0 {
			diff = -diff
		}
		if diff < bestDiff {
			bestDiff = diff
			cut = i + 1
		}
	}
	right := &node{level: n.level, entries: append([]entry(nil), n.entries[cut:]...)}
	n.entries = n.entries[:cut]
	return right
}

func nodeWeight(n *node) int64 {
	if n.level == 0 {
		return int64(len(n.keys))
	}
	var w int64
	for i := range n.entries {
		w += n.entries[i].weight
	}
	return w
}

func nodeMaxKey(n *node) geom.Point {
	if n.level == 0 {
		return n.keys[len(n.keys)-1].p
	}
	return n.entries[len(n.entries)-1].maxKey
}

// place trickles point p down from the root into its proper Y-set or leaf
// (the recursive procedure at the start of Section 3.3.2).
func (t *Tree) place(rootID eio.PageID, p geom.Point) error {
	id := rootID
	for {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		if n.level == 0 {
			i := lowerBoundKeys(n.keys, p)
			if i >= len(n.keys) || n.keys[i].p != p {
				return fmt.Errorf("epst: place: key %v missing from leaf", p)
			}
			n.keys[i].here = true
			return t.writeBack(id, n)
		}
		i := routeChild(n, p)
		q, err := t.openQ(n.q)
		if err != nil {
			return err
		}
		ys, err := t.ySet(q, n, i)
		if err != nil {
			return err
		}
		if len(ys) >= t.yHalf() && belowAll(p, ys) {
			// Y(v_i) is healthy and p lies below it: p belongs deeper.
			id = n.entries[i].child
			continue
		}
		// p joins Y(v_i).
		if err := q.Insert(p); err != nil {
			return err
		}
		n.entries[i].ysize++
		if int(n.entries[i].ysize) <= t.b {
			return t.writeBack(id, n)
		}
		// Overflow: the lowest point of Y(v_i) is evicted and trickles
		// into the child.
		low := p
		for _, y := range ys {
			if y.YLess(low) {
				low = y
			}
		}
		if _, err := q.Delete(low); err != nil {
			return err
		}
		n.entries[i].ysize--
		if err := t.writeBack(id, n); err != nil {
			return err
		}
		p = low
		id = n.entries[i].child
	}
}

// belowAll reports whether p is strictly below (in (y, x) order) every
// point of ys.
func belowAll(p geom.Point, ys []geom.Point) bool {
	for _, y := range ys {
		if !p.YLess(y) {
			return false
		}
	}
	return true
}

// extractTop removes and returns the topmost stored point of id's subtree,
// bubbling up a replacement from below when the donor Y-set falls under
// B/2 (the bubble-up operation of Section 3.3.2). ok is false if the
// subtree stores nothing.
func (t *Tree) extractTop(id eio.PageID) (geom.Point, bool, error) {
	n, err := t.readNode(id)
	if err != nil {
		return geom.Point{}, false, err
	}
	if n.level == 0 {
		best := -1
		for i, ke := range n.keys {
			if ke.here && (best < 0 || n.keys[best].p.YLess(ke.p)) {
				best = i
			}
		}
		if best < 0 {
			return geom.Point{}, false, nil
		}
		n.keys[best].here = false
		if err := t.writeBack(id, n); err != nil {
			return geom.Point{}, false, err
		}
		return n.keys[best].p, true, nil
	}
	q, err := t.openQ(n.q)
	if err != nil {
		return geom.Point{}, false, err
	}
	top, ok, err := q.MaxY()
	if err != nil || !ok {
		return geom.Point{}, false, err
	}
	if _, err := q.Delete(top); err != nil {
		return geom.Point{}, false, err
	}
	i := routeChild(n, top)
	n.entries[i].ysize--
	if 2*int(n.entries[i].ysize) < t.b {
		r, ok2, err := t.extractTop(n.entries[i].child)
		if err != nil {
			return geom.Point{}, false, err
		}
		if ok2 {
			if err := q.Insert(r); err != nil {
				return geom.Point{}, false, err
			}
			n.entries[i].ysize++
		}
	}
	if err := t.writeBack(id, n); err != nil {
		return geom.Point{}, false, err
	}
	return top, true, nil
}

// Delete removes p, reporting whether it was present. The point is removed
// wherever it lives (a Y-set along the path or the leaf), the depleted
// Y-set is refilled by a bubble-up, the key leaves the base tree, and a
// global rebuild runs once the live count halves (Section 3.3.2).
func (t *Tree) Delete(p geom.Point) (bool, error) {
	m, err := t.loadMeta()
	if err != nil {
		return false, err
	}
	// Locate pass (read-only): find the node whose Q holds p, if any, and
	// confirm the key exists.
	type pathEl struct {
		id  eio.PageID
		n   *node
		idx int
	}
	var path []pathEl
	storedAt := -1 // index into path of the node whose Q stores p
	id := m.root
	for {
		n, err := t.readNode(id)
		if err != nil {
			return false, err
		}
		if n.level == 0 {
			pos := lowerBoundKeys(n.keys, p)
			if pos >= len(n.keys) || n.keys[pos].p != p {
				return false, nil
			}
			path = append(path, pathEl{id: id, n: n, idx: pos})
			break
		}
		idx := routeChild(n, p)
		if storedAt < 0 {
			q, err := t.openQ(n.q)
			if err != nil {
				return false, err
			}
			ys, err := t.ySet(q, n, idx)
			if err != nil {
				return false, err
			}
			for _, y := range ys {
				if y == p {
					storedAt = len(path)
					break
				}
			}
		}
		path = append(path, pathEl{id: id, n: n, idx: idx})
		id = n.entries[idx].child
	}

	// Mutation pass, bottom-up so that bubble-up writes into descendants
	// are never clobbered by stale path copies.
	leafEl := path[len(path)-1]
	leafEl.n.keys = append(leafEl.n.keys[:leafEl.idx], leafEl.n.keys[leafEl.idx+1:]...)
	if err := t.writeBack(leafEl.id, leafEl.n); err != nil {
		return false, err
	}
	for i := len(path) - 2; i >= 0; i-- {
		el := path[i]
		el.n.entries[el.idx].weight--
		if storedAt == i {
			q, err := t.openQ(el.n.q)
			if err != nil {
				return false, err
			}
			if _, err := q.Delete(p); err != nil {
				return false, err
			}
			el.n.entries[el.idx].ysize--
			if 2*int(el.n.entries[el.idx].ysize) < t.b {
				r, ok, err := t.extractTop(el.n.entries[el.idx].child)
				if err != nil {
					return false, err
				}
				if ok {
					if err := q.Insert(r); err != nil {
						return false, err
					}
					el.n.entries[el.idx].ysize++
				}
			}
		}
		if err := t.writeBack(el.id, el.n); err != nil {
			return false, err
		}
	}

	m.live--
	if m.live*2 < m.basis {
		if err := t.rebuild(m); err != nil {
			return false, err
		}
		return true, nil
	}
	return true, t.storeMeta(m)
}
