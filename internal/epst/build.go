package epst

import (
	"fmt"
	"sort"

	"rangesearch/internal/eio"
	"rangesearch/internal/geom"
)

// bulkBuild writes a fresh tree over pts (sorted by composite (x, y),
// distinct) and returns its root and height. The skeleton mirrors the
// weight-balanced construction; auxiliary structures are filled top-down:
// every node takes the min(B, available) topmost points of each child's
// subtree into the child's Y-set, and the remainder trickles down —
// exactly the invariants of Section 3.3.
func (t *Tree) bulkBuild(pts []geom.Point) (eio.PageID, int, error) {
	type built struct {
		id     eio.PageID
		maxKey geom.Point
		weight int64
	}
	if len(pts) == 0 {
		id, err := t.writeNode(eio.NilPage, &node{level: 0})
		return id, 0, err
	}

	// Leaves: evenly sized near 1.5k, within [1, 2k−1]. Flags are set
	// during the fill pass; initialize to "stored here".
	g := (len(pts) + (t.k + t.k/2) - 1) / (t.k + t.k/2)
	if g < 1 {
		g = 1
	}
	for len(pts) > g*(2*t.k-1) {
		g++
	}
	var level []built
	var leafIDs []eio.PageID
	for i := 0; i < g; i++ {
		lo := i * len(pts) / g
		hi := (i + 1) * len(pts) / g
		if lo == hi {
			continue
		}
		n := &node{level: 0, keys: make([]keyEntry, hi-lo)}
		for j := lo; j < hi; j++ {
			n.keys[j-lo] = keyEntry{p: pts[j], here: true}
		}
		id, err := t.writeNode(eio.NilPage, n)
		if err != nil {
			return eio.NilPage, 0, err
		}
		leafIDs = append(leafIDs, id)
		level = append(level, built{id: id, maxKey: pts[hi-1], weight: int64(hi - lo)})
	}

	// Internal levels: weight-packed toward a^ℓ·k per node, Y-sets empty
	// for now (q = NilPage placeholder replaced during fill).
	height := 0
	for len(level) > 1 {
		height++
		target := t.levelCap(height)
		var up []built
		cur := &node{level: height}
		var curW int64
		flush := func() error {
			if len(cur.entries) == 0 {
				return nil
			}
			id, err := t.writeNode(eio.NilPage, cur)
			if err != nil {
				return err
			}
			up = append(up, built{id: id, maxKey: cur.entries[len(cur.entries)-1].maxKey, weight: curW})
			cur = &node{level: height}
			curW = 0
			return nil
		}
		for _, c := range level {
			if curW+c.weight > target && len(cur.entries) > 0 {
				if err := flush(); err != nil {
					return eio.NilPage, 0, err
				}
			}
			cur.entries = append(cur.entries, entry{maxKey: c.maxKey, child: c.id, weight: c.weight})
			curW += c.weight
		}
		if err := flush(); err != nil {
			return eio.NilPage, 0, err
		}
		level = up
	}
	root := level[0].id

	// Fill pass: distribute points into Y-sets top-down.
	if err := t.fill(root, pts); err != nil {
		return eio.NilPage, 0, err
	}
	_ = leafIDs
	return root, height, nil
}

// levelCap returns a^ℓ·k, saturating.
func (t *Tree) levelCap(level int) int64 {
	cap := int64(t.k)
	for i := 0; i < level; i++ {
		if cap > (1<<62)/int64(t.a) {
			return 1 << 62
		}
		cap *= int64(t.a)
	}
	return cap
}

// fill assigns pts (the points of id's subtree not absorbed above, sorted
// by composite key) to id's auxiliary structures.
func (t *Tree) fill(id eio.PageID, pts []geom.Point) error {
	n, err := t.readNode(id)
	if err != nil {
		return err
	}
	if n.level == 0 {
		present := make(map[geom.Point]bool, len(pts))
		for _, p := range pts {
			present[p] = true
		}
		for i := range n.keys {
			n.keys[i].here = present[n.keys[i].p]
		}
		return t.writeBack(id, n)
	}
	// Partition pts among children by composite range (pts is sorted, and
	// child ranges are consecutive).
	var qPoints []geom.Point
	start := 0
	for i := range n.entries {
		hiKey := n.entries[i].maxKey
		end := start
		if i == len(n.entries)-1 {
			end = len(pts)
		} else {
			end = start + sort.Search(len(pts)-start, func(j int) bool { return hiKey.Less(pts[start+j]) })
		}
		childPts := pts[start:end]
		start = end

		// Y(child) = the min(B, |childPts|) topmost by (y, x).
		take := t.b
		if take > len(childPts) {
			take = len(childPts)
		}
		ys := topByY(childPts, take)
		qPoints = append(qPoints, ys...)
		n.entries[i].ysize = int32(len(ys))

		rest := subtract(childPts, ys)
		if err := t.fill(n.entries[i].child, rest); err != nil {
			return err
		}
	}
	q, err := t.createQ(qPoints)
	if err != nil {
		return err
	}
	n.q = q
	return t.writeBack(id, n)
}

// createQ builds a small structure over pts and returns its catalog id.
func (t *Tree) createQ(pts []geom.Point) (eio.PageID, error) {
	q, err := newSmall(t, pts)
	if err != nil {
		return eio.NilPage, err
	}
	return q.CatalogID(), nil
}

// topByY returns the k points of pts with the highest (y, x) order.
func topByY(pts []geom.Point, k int) []geom.Point {
	cp := append([]geom.Point(nil), pts...)
	sort.Slice(cp, func(i, j int) bool { return cp[j].YLess(cp[i]) })
	return cp[:k]
}

// subtract returns the points of pts not in drop, preserving order.
func subtract(pts, drop []geom.Point) []geom.Point {
	if len(drop) == 0 {
		return pts
	}
	dropSet := make(map[geom.Point]bool, len(drop))
	for _, p := range drop {
		dropSet[p] = true
	}
	var out []geom.Point
	for _, p := range pts {
		if !dropSet[p] {
			out = append(out, p)
		}
	}
	return out
}

// collect appends every stored point in id's subtree to out.
func (t *Tree) collect(id eio.PageID, out *[]geom.Point) error {
	n, err := t.readNode(id)
	if err != nil {
		return err
	}
	if n.level == 0 {
		for _, ke := range n.keys {
			if ke.here {
				*out = append(*out, ke.p)
			}
		}
		return nil
	}
	q, err := t.openQ(n.q)
	if err != nil {
		return err
	}
	pts, err := q.All()
	if err != nil {
		return err
	}
	*out = append(*out, pts...)
	for i := range n.entries {
		if err := t.collect(n.entries[i].child, out); err != nil {
			return err
		}
	}
	return nil
}

// freeSubtree releases every record and small structure under id.
func (t *Tree) freeSubtree(id eio.PageID) error {
	n, err := t.readNode(id)
	if err != nil {
		return err
	}
	if n.level > 0 {
		q, err := t.openQ(n.q)
		if err != nil {
			return err
		}
		if err := q.Destroy(); err != nil {
			return err
		}
		for i := range n.entries {
			if err := t.freeSubtree(n.entries[i].child); err != nil {
				return err
			}
		}
	}
	return t.rs.Delete(id)
}

// rebuild reconstructs the whole tree from its live points (the paper's
// global rebuilding step for lazy deletions).
func (t *Tree) rebuild(m *meta) error {
	var pts []geom.Point
	if err := t.collect(m.root, &pts); err != nil {
		return err
	}
	if err := t.freeSubtree(m.root); err != nil {
		return err
	}
	geom.SortByX(pts)
	root, height, err := t.bulkBuild(pts)
	if err != nil {
		return err
	}
	m.root = root
	m.height = height
	m.live = int64(len(pts))
	m.basis = m.live
	return t.storeMeta(m)
}

// Destroy frees the whole tree including its header.
func (t *Tree) Destroy() error {
	m, err := t.loadMeta()
	if err != nil {
		return err
	}
	if err := t.freeSubtree(m.root); err != nil {
		return err
	}
	return t.rs.Delete(t.hdr)
}

// All returns every stored point (unordered).
func (t *Tree) All() ([]geom.Point, error) {
	m, err := t.loadMeta()
	if err != nil {
		return nil, err
	}
	var pts []geom.Point
	if err := t.collect(m.root, &pts); err != nil {
		return nil, err
	}
	if int64(len(pts)) != m.live {
		return nil, fmt.Errorf("epst: collected %d points, header says %d", len(pts), m.live)
	}
	return pts, nil
}
