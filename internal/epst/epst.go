// Package epst implements the external priority search tree of Section 3.3
// of Arge, Samoladas & Vitter (PODS 1999) — the paper's central result
// (Theorem 6): a dynamic structure for 3-sided range queries
// (a ≤ x ≤ b, y ≥ c) storing N points in O(N/B) disk blocks that answers
// queries in O(log_B N + T/B) I/Os and performs updates in O(log_B N) I/Os
// amortized.
//
// Architecture, following the paper exactly:
//
//   - The skeleton is a weight-balanced B-tree (Section 3.2) over the
//     points' x-order (composite (x, y) keys, so duplicate x-coordinates
//     are supported). Leaves own between k and 2k−1 keys; an internal node
//     at level ℓ weighs between a^ℓk/2 and 2a^ℓk.
//
//   - Every internal node v carries a query structure Q_v — the Θ(B²)-point
//     Lemma-1 structure of internal/smallstruct — holding the Y-sets of
//     v's children: for each child w, the ≤ B points with the highest
//     y-coordinates in w's subtree not already stored higher (Figure 3).
//     If anything is stored below w, |Y(w)| ≥ B/2.
//
//   - Each leaf stores the keys in its x-range together with a flag per
//     key: whether the point is stored here or absorbed by an ancestor.
//
// Queries descend the two search paths for x = a and x = b, report from
// each visited node's Q_v in O(1 + t_v) I/Os, and enter an interior child
// only when its entire (≥ B/2-point) Y-set satisfied the query — so every
// interior visit is paid for by Θ(B) reported points (Section 3.3.1).
//
// Updates follow Section 3.3.2 (the amortized variant, which the paper
// notes is the practical choice; the worst-case scheduling machinery of
// Section 3.3.3 exists to de-amortize exactly the costs measured by the
// benchmark suite's update-tail experiment): inserts trickle points down
// through Y-sets; base-tree splits move Y-set points between the split
// halves and refill them with bubble-up promotions; deletions remove the
// point wherever it lives, refill the depleted Y-set by promoting the
// topmost point from below, and trigger a global rebuild once the live
// size halves.
//
// Duplicate-x behaviour: children of a node may share a boundary
// x-coordinate (keys are composite). Y-set retrieval queries Q_v by the
// x-interval and filters by composite range; with heavily duplicated
// x-coordinates this reads extra blocks, degrading update constants but
// never correctness.
package epst

import (
	"encoding/binary"
	"errors"
	"fmt"

	"rangesearch/internal/eio"
	"rangesearch/internal/geom"
	"rangesearch/internal/smallstruct"
)

// ErrDuplicate reports insertion of a point already present.
var ErrDuplicate = errors.New("epst: duplicate point")

// Tree is a handle to an external priority search tree on an eio.Store.
type Tree struct {
	store eio.Store
	rs    *eio.RecordStore
	hdr   eio.PageID
	b     int // block capacity (points per page)
	a     int // branching parameter
	k     int // leaf parameter
	alpha int // smallstruct sweep parameter
}

// meta is the persistent header.
type meta struct {
	root   eio.PageID
	height int
	live   int64
	basis  int64
	a, k   int32
}

const metaSize = 8 + 4 + 8 + 8 + 4 + 4

// node is a decoded tree node. Exactly one of entries/keys is used.
type node struct {
	level   int
	q       eio.PageID // smallstruct catalog (internal nodes)
	entries []entry
	keys    []keyEntry // leaves: sorted by composite (x, y)
}

type entry struct {
	maxKey geom.Point
	child  eio.PageID
	weight int64
	ysize  int32 // |Y(child)| inside this node's Q
}

type keyEntry struct {
	p    geom.Point
	here bool // point stored in this leaf (vs. absorbed by an ancestor)
}

// Options configures Create/Build.
type Options struct {
	// A is the branching parameter (default max(2, B/4)).
	A int
	// K is the leaf parameter (default B).
	K int
	// Alpha is the sweep coalescing parameter of the per-node small
	// structures (default smallstruct.DefaultAlpha).
	Alpha int
}

func (o *Options) fill(pageSize int) (a, k, alpha int, err error) {
	b := eio.BlockCapacity(pageSize)
	a, k, alpha = o.A, o.K, o.Alpha
	if a == 0 {
		a = b / 4
		if a < 2 {
			a = 2
		}
	}
	if k == 0 {
		k = b
		if k < 2 {
			k = 2
		}
	}
	if alpha == 0 {
		alpha = smallstruct.DefaultAlpha
	}
	if a < 2 || k < 2 || alpha < 2 {
		return 0, 0, 0, fmt.Errorf("epst: invalid parameters a=%d k=%d alpha=%d", a, k, alpha)
	}
	return a, k, alpha, nil
}

// yHalf is the Y-set refill threshold B/2 from the paper.
func (t *Tree) yHalf() int { return t.b / 2 }

// Create makes an empty tree on store.
func Create(store eio.Store, opts Options) (*Tree, error) {
	return Build(store, opts, nil)
}

// Build bulk-loads a tree over pts (distinct points; the slice is not
// modified).
func Build(store eio.Store, opts Options, pts []geom.Point) (*Tree, error) {
	a, k, alpha, err := opts.fill(store.PageSize())
	if err != nil {
		return nil, err
	}
	t := &Tree{
		store: store,
		rs:    eio.NewRecordStore(store),
		b:     eio.BlockCapacity(store.PageSize()),
		a:     a, k: k, alpha: alpha,
	}
	if t.b < 2 {
		return nil, fmt.Errorf("epst: page size %d holds fewer than 2 points", store.PageSize())
	}
	seen := make(map[geom.Point]bool, len(pts))
	for _, p := range pts {
		if seen[p] {
			return nil, fmt.Errorf("epst: build with duplicate %v: %w", p, ErrDuplicate)
		}
		seen[p] = true
	}
	sorted := make([]geom.Point, len(pts))
	copy(sorted, pts)
	geom.SortByX(sorted)
	root, height, err := t.bulkBuild(sorted)
	if err != nil {
		return nil, err
	}
	m := &meta{root: root, height: height, live: int64(len(pts)), basis: int64(len(pts)), a: int32(a), k: int32(k)}
	t.hdr, err = t.rs.Put(encodeMeta(m))
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Open attaches to a tree previously created on store. opts must carry the
// same Alpha it was created with (A and K are read from the header).
func Open(store eio.Store, hdr eio.PageID, alpha int) (*Tree, error) {
	t := &Tree{
		store: store,
		rs:    eio.NewRecordStore(store),
		b:     eio.BlockCapacity(store.PageSize()),
		hdr:   hdr,
	}
	if alpha == 0 {
		alpha = smallstruct.DefaultAlpha
	}
	t.alpha = alpha
	m, err := t.loadMeta()
	if err != nil {
		return nil, err
	}
	t.a, t.k = int(m.a), int(m.k)
	return t, nil
}

// HeaderID identifies the tree on its store.
func (t *Tree) HeaderID() eio.PageID { return t.hdr }

// B returns the block capacity in points.
func (t *Tree) B() int { return t.b }

// Params returns the branching and leaf parameters.
func (t *Tree) Params() (a, k int) { return t.a, t.k }

// Len returns the number of stored points.
func (t *Tree) Len() (int, error) {
	m, err := t.loadMeta()
	if err != nil {
		return 0, err
	}
	return int(m.live), nil
}

// Height returns the base-tree height (0 = root is a leaf).
func (t *Tree) Height() (int, error) {
	m, err := t.loadMeta()
	if err != nil {
		return 0, err
	}
	return m.height, nil
}

func (t *Tree) loadMeta() (*meta, error) {
	raw, err := t.rs.Get(t.hdr)
	if err != nil {
		return nil, fmt.Errorf("epst: load header: %w", err)
	}
	if len(raw) != metaSize {
		return nil, fmt.Errorf("epst: header length %d", len(raw))
	}
	return &meta{
		root:   eio.PageID(binary.LittleEndian.Uint64(raw[0:])),
		height: int(binary.LittleEndian.Uint32(raw[8:])),
		live:   int64(binary.LittleEndian.Uint64(raw[12:])),
		basis:  int64(binary.LittleEndian.Uint64(raw[20:])),
		a:      int32(binary.LittleEndian.Uint32(raw[28:])),
		k:      int32(binary.LittleEndian.Uint32(raw[32:])),
	}, nil
}

func (t *Tree) storeMeta(m *meta) error {
	if err := t.rs.Update(t.hdr, encodeMeta(m)); err != nil {
		return fmt.Errorf("epst: store header: %w", err)
	}
	return nil
}

func encodeMeta(m *meta) []byte {
	out := make([]byte, metaSize)
	binary.LittleEndian.PutUint64(out[0:], uint64(m.root))
	binary.LittleEndian.PutUint32(out[8:], uint32(m.height))
	binary.LittleEndian.PutUint64(out[12:], uint64(m.live))
	binary.LittleEndian.PutUint64(out[20:], uint64(m.basis))
	binary.LittleEndian.PutUint32(out[28:], uint32(m.a))
	binary.LittleEndian.PutUint32(out[32:], uint32(m.k))
	return out
}

// openQ attaches to a node's small structure.
func (t *Tree) openQ(id eio.PageID) (*smallstruct.Struct, error) {
	return smallstruct.Open(t.store, id, t.alpha)
}

// newSmall creates a small structure over pts on the tree's store.
func newSmall(t *Tree, pts []geom.Point) (*smallstruct.Struct, error) {
	return smallstruct.Create(t.store, t.alpha, pts)
}

// childRange returns the composite key range (lo, hi] of child i of n:
// keys strictly greater than the previous child's maxKey and at most the
// child's own maxKey (the last child's hi is +∞).
func childRange(n *node, i int) (lo, hi geom.Point, loOpen bool) {
	hi = n.entries[i].maxKey
	if i == len(n.entries)-1 {
		hi = geom.Point{X: geom.MaxCoord, Y: geom.MaxCoord}
	}
	if i == 0 {
		return geom.Point{X: geom.MinCoord, Y: geom.MinCoord}, hi, false
	}
	return n.entries[i-1].maxKey, hi, true
}

// inChildRange reports whether p belongs to child i's composite range.
func inChildRange(n *node, i int, p geom.Point) bool {
	lo, hi, loOpen := childRange(n, i)
	if loOpen {
		if !lo.Less(p) {
			return false
		}
	} else if p.Less(lo) {
		return false
	}
	return !hi.Less(p)
}

// ySet retrieves Y(child i) of node n from q: the points of Q within the
// child's composite range. It queries by x-interval and filters by
// composite range, so shared boundary x-values cost extra reads but stay
// correct.
func (t *Tree) ySet(q *smallstruct.Struct, n *node, i int) ([]geom.Point, error) {
	lo, hi, _ := childRange(n, i)
	raw, err := q.Query3(nil, geom.Query3{XLo: lo.X, XHi: hi.X, YLo: geom.MinCoord})
	if err != nil {
		return nil, err
	}
	out := raw[:0]
	for _, p := range raw {
		if inChildRange(n, i, p) {
			out = append(out, p)
		}
	}
	return out, nil
}

// routeChild returns the index of the child whose composite range contains
// p: the first child with maxKey ≥ p, or the last child.
func routeChild(n *node, p geom.Point) int {
	for i := range n.entries {
		if !n.entries[i].maxKey.Less(p) {
			return i
		}
	}
	return len(n.entries) - 1
}

// --- node serialization ---

const nodeEntrySize = 16 + 8 + 8 + 4

func encodeNode(n *node) []byte {
	if n.level == 0 {
		out := make([]byte, 8+17*len(n.keys))
		binary.LittleEndian.PutUint32(out[0:], uint32(n.level))
		binary.LittleEndian.PutUint32(out[4:], uint32(len(n.keys)))
		off := 8
		for _, ke := range n.keys {
			eio.PutPoint(out, off, ke.p)
			if ke.here {
				out[off+16] = 1
			}
			off += 17
		}
		return out
	}
	out := make([]byte, 16+nodeEntrySize*len(n.entries))
	binary.LittleEndian.PutUint32(out[0:], uint32(n.level))
	binary.LittleEndian.PutUint32(out[4:], uint32(len(n.entries)))
	binary.LittleEndian.PutUint64(out[8:], uint64(n.q))
	off := 16
	for i := range n.entries {
		e := &n.entries[i]
		eio.PutPoint(out, off, e.maxKey)
		binary.LittleEndian.PutUint64(out[off+16:], uint64(e.child))
		binary.LittleEndian.PutUint64(out[off+24:], uint64(e.weight))
		binary.LittleEndian.PutUint32(out[off+32:], uint32(e.ysize))
		off += nodeEntrySize
	}
	return out
}

func decodeNode(raw []byte) (*node, error) {
	if len(raw) < 8 {
		return nil, fmt.Errorf("epst: node record too short")
	}
	level := int(binary.LittleEndian.Uint32(raw[0:]))
	count := int(binary.LittleEndian.Uint32(raw[4:]))
	n := &node{level: level}
	if level == 0 {
		if len(raw) != 8+17*count {
			return nil, fmt.Errorf("epst: leaf record length %d for %d keys", len(raw), count)
		}
		n.keys = make([]keyEntry, count)
		off := 8
		for i := 0; i < count; i++ {
			n.keys[i] = keyEntry{p: eio.GetPoint(raw, off), here: raw[off+16] == 1}
			off += 17
		}
		return n, nil
	}
	if len(raw) != 16+nodeEntrySize*count {
		return nil, fmt.Errorf("epst: node record length %d for %d entries", len(raw), count)
	}
	n.q = eio.PageID(binary.LittleEndian.Uint64(raw[8:]))
	n.entries = make([]entry, count)
	off := 16
	for i := 0; i < count; i++ {
		n.entries[i] = entry{
			maxKey: eio.GetPoint(raw, off),
			child:  eio.PageID(binary.LittleEndian.Uint64(raw[off+16:])),
			weight: int64(binary.LittleEndian.Uint64(raw[off+24:])),
			ysize:  int32(binary.LittleEndian.Uint32(raw[off+32:])),
		}
		off += nodeEntrySize
	}
	return n, nil
}

func (t *Tree) readNode(id eio.PageID) (*node, error) {
	raw, err := t.rs.Get(id)
	if err != nil {
		return nil, fmt.Errorf("epst: read node: %w", err)
	}
	return decodeNode(raw)
}

func (t *Tree) writeNode(id eio.PageID, n *node) (eio.PageID, error) {
	raw := encodeNode(n)
	if id == eio.NilPage {
		nid, err := t.rs.Put(raw)
		if err != nil {
			return eio.NilPage, fmt.Errorf("epst: write node: %w", err)
		}
		return nid, nil
	}
	if err := t.rs.Update(id, raw); err != nil {
		return eio.NilPage, fmt.Errorf("epst: update node: %w", err)
	}
	return id, nil
}

func (t *Tree) writeBack(id eio.PageID, n *node) error {
	_, err := t.writeNode(id, n)
	return err
}

// lowerBoundKeys returns the first index i with keys[i].p ≥ p.
func lowerBoundKeys(keys []keyEntry, p geom.Point) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid].p.Less(p) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
