package epst

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"rangesearch/internal/eio"
	"rangesearch/internal/geom"
)

func distinctPoints(rng *rand.Rand, n int, coordRange int64) []geom.Point {
	seen := make(map[geom.Point]bool)
	var pts []geom.Point
	for len(pts) < n {
		p := geom.Point{X: rng.Int63n(coordRange), Y: rng.Int63n(coordRange)}
		if !seen[p] {
			seen[p] = true
			pts = append(pts, p)
		}
	}
	return pts
}

func sorted(pts []geom.Point) []geom.Point {
	out := append([]geom.Point(nil), pts...)
	geom.SortByX(out)
	return out
}

func equalPts(a, b []geom.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func brute3(m map[geom.Point]bool, q geom.Query3) []geom.Point {
	var out []geom.Point
	for p := range m {
		if q.Contains(p) {
			out = append(out, p)
		}
	}
	geom.SortByX(out)
	return out
}

func checkQuery(t *testing.T, tr *Tree, m map[geom.Point]bool, q geom.Query3) {
	t.Helper()
	got, err := tr.Query3(nil, q)
	if err != nil {
		t.Fatalf("query %v: %v", q, err)
	}
	want := brute3(m, q)
	if !equalPts(sorted(got), want) {
		t.Fatalf("query %v: got %d points, want %d", q, len(got), len(want))
	}
}

func TestBuildEmpty(t *testing.T) {
	store := eio.NewMemStore(128)
	tr, err := Create(store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := tr.Query3(nil, geom.Query3{XLo: geom.MinCoord, XHi: geom.MaxCoord, YLo: geom.MinCoord})
	if err != nil || len(got) != 0 {
		t.Fatalf("query on empty: %v, %v", got, err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := tr.MaxY(); err != nil || ok {
		t.Fatalf("MaxY on empty: %v %v", ok, err)
	}
}

func TestBulkBuildAndQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 5, 50, 500, 3000} {
		store := eio.NewMemStore(128) // B = 8
		pts := distinctPoints(rng, n, 2000)
		tr, err := Build(store, Options{A: 2, K: 4}, pts)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		m := map[geom.Point]bool{}
		for _, p := range pts {
			m[p] = true
		}
		for trial := 0; trial < 60; trial++ {
			a := rng.Int63n(2000)
			b := a + rng.Int63n(2000-a+1)
			c := rng.Int63n(2000)
			checkQuery(t, tr, m, geom.Query3{XLo: a, XHi: b, YLo: c})
		}
		// Degenerate queries.
		checkQuery(t, tr, m, geom.Query3{XLo: geom.MinCoord, XHi: geom.MaxCoord, YLo: geom.MinCoord})
		checkQuery(t, tr, m, geom.Query3{XLo: 100, XHi: 50, YLo: 0})
	}
}

func TestBuildRejectsDuplicates(t *testing.T) {
	store := eio.NewMemStore(128)
	_, err := Build(store, Options{}, []geom.Point{{X: 1, Y: 2}, {X: 1, Y: 2}})
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("expected ErrDuplicate, got %v", err)
	}
}

func TestInsertIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	store := eio.NewMemStore(128) // B = 8
	tr, err := Create(store, Options{A: 2, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	m := map[geom.Point]bool{}
	pts := distinctPoints(rng, 1200, 3000)
	for i, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatalf("insert %d (%v): %v", i, p, err)
		}
		m[p] = true
		if i%150 == 149 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
			for trial := 0; trial < 10; trial++ {
				a := rng.Int63n(3000)
				b := a + rng.Int63n(3000-a+1)
				c := rng.Int63n(3000)
				checkQuery(t, tr, m, geom.Query3{XLo: a, XHi: b, YLo: c})
			}
		}
	}
	if err := tr.Insert(pts[0]); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate insert: %v", err)
	}
	n, err := tr.Len()
	if err != nil || n != len(pts) {
		t.Fatalf("Len = %d, %v", n, err)
	}
}

func TestDeleteIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	store := eio.NewMemStore(128)
	pts := distinctPoints(rng, 800, 2000)
	tr, err := Build(store, Options{A: 2, K: 4}, pts)
	if err != nil {
		t.Fatal(err)
	}
	m := map[geom.Point]bool{}
	for _, p := range pts {
		m[p] = true
	}
	perm := rng.Perm(len(pts))
	for i, pi := range perm {
		found, err := tr.Delete(pts[pi])
		if err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
		if !found {
			t.Fatalf("delete %d: %v not found", i, pts[pi])
		}
		delete(m, pts[pi])
		if i%100 == 99 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d deletes: %v", i+1, err)
			}
			for trial := 0; trial < 8; trial++ {
				a := rng.Int63n(2000)
				b := a + rng.Int63n(2000-a+1)
				c := rng.Int63n(2000)
				checkQuery(t, tr, m, geom.Query3{XLo: a, XHi: b, YLo: c})
			}
		}
	}
	n, err := tr.Len()
	if err != nil || n != 0 {
		t.Fatalf("Len after deleting everything = %d, %v", n, err)
	}
	// Deleting from empty.
	found, err := tr.Delete(pts[0])
	if err != nil || found {
		t.Fatalf("delete from empty: %v %v", found, err)
	}
}

func TestMixedWorkloadAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	store := eio.NewMemStore(128)
	tr, err := Create(store, Options{A: 2, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	m := map[geom.Point]bool{}
	universe := distinctPoints(rng, 600, 1500)
	for op := 0; op < 5000; op++ {
		p := universe[rng.Intn(len(universe))]
		switch rng.Intn(3) {
		case 0, 1:
			err := tr.Insert(p)
			if m[p] {
				if !errors.Is(err, ErrDuplicate) {
					t.Fatalf("op %d: expected duplicate, got %v", op, err)
				}
			} else if err != nil {
				t.Fatalf("op %d: insert: %v", op, err)
			}
			m[p] = true
		case 2:
			found, err := tr.Delete(p)
			if err != nil {
				t.Fatalf("op %d: delete: %v", op, err)
			}
			if found != m[p] {
				t.Fatalf("op %d: delete %v: found=%v want=%v", op, p, found, m[p])
			}
			delete(m, p)
		}
		if op%433 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
		if op%101 == 0 {
			a := rng.Int63n(1500)
			b := a + rng.Int63n(1500-a+1)
			c := rng.Int63n(1500)
			checkQuery(t, tr, m, geom.Query3{XLo: a, XHi: b, YLo: c})
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateXCoordinates(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	store := eio.NewMemStore(128)
	tr, err := Create(store, Options{A: 2, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Only 5 distinct x values over many points.
	m := map[geom.Point]bool{}
	for len(m) < 400 {
		p := geom.Point{X: rng.Int63n(5), Y: rng.Int63n(10000)}
		if m[p] {
			continue
		}
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
		m[p] = true
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		a := rng.Int63n(6)
		b := a + rng.Int63n(6-a)
		c := rng.Int63n(10000)
		checkQuery(t, tr, m, geom.Query3{XLo: a, XHi: b, YLo: c})
	}
	// Delete half, re-check.
	i := 0
	for p := range m {
		if i%2 == 0 {
			if _, err := tr.Delete(p); err != nil {
				t.Fatal(err)
			}
			delete(m, p)
		}
		i++
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	checkQuery(t, tr, m, geom.Query3{XLo: 0, XHi: 5, YLo: 0})
}

func TestMaxYTracksUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	store := eio.NewMemStore(128)
	tr, err := Create(store, Options{A: 2, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	m := map[geom.Point]bool{}
	universe := distinctPoints(rng, 200, 500)
	for op := 0; op < 1000; op++ {
		p := universe[rng.Intn(len(universe))]
		if rng.Intn(3) != 0 {
			if !m[p] {
				if err := tr.Insert(p); err != nil {
					t.Fatal(err)
				}
				m[p] = true
			}
		} else if m[p] {
			if _, err := tr.Delete(p); err != nil {
				t.Fatal(err)
			}
			delete(m, p)
		}
		if op%37 == 0 {
			got, ok, err := tr.MaxY()
			if err != nil {
				t.Fatal(err)
			}
			if len(m) == 0 {
				if ok {
					t.Fatalf("op %d: MaxY %v on empty", op, got)
				}
				continue
			}
			var want geom.Point
			first := true
			for p := range m {
				if first || want.YLess(p) {
					want, first = p, false
				}
			}
			if !ok || got != want {
				t.Fatalf("op %d: MaxY=%v ok=%v, want %v", op, got, ok, want)
			}
		}
	}
}

func TestGlobalRebuildShrinksHeight(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	store := eio.NewMemStore(128)
	pts := distinctPoints(rng, 2000, 1<<20)
	tr, err := Build(store, Options{A: 2, K: 4}, pts)
	if err != nil {
		t.Fatal(err)
	}
	tall, err := tr.Height()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts[:1980] {
		if _, err := tr.Delete(p); err != nil {
			t.Fatal(err)
		}
	}
	short, err := tr.Height()
	if err != nil {
		t.Fatal(err)
	}
	if short >= tall {
		t.Errorf("height %d did not shrink from %d", short, tall)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	m := map[geom.Point]bool{}
	for _, p := range pts[1980:] {
		m[p] = true
	}
	checkQuery(t, tr, m, geom.Query3{XLo: geom.MinCoord, XHi: geom.MaxCoord, YLo: geom.MinCoord})
}

func TestOpenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	store := eio.NewMemStore(128)
	pts := distinctPoints(rng, 300, 1000)
	tr, err := Build(store, Options{A: 2, K: 4}, pts)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := Open(store, tr.HeaderID(), 0)
	if err != nil {
		t.Fatal(err)
	}
	a, k := tr2.Params()
	if a != 2 || k != 4 {
		t.Fatalf("params %d %d", a, k)
	}
	m := map[geom.Point]bool{}
	for _, p := range pts {
		m[p] = true
	}
	checkQuery(t, tr2, m, geom.Query3{XLo: 0, XHi: 1000, YLo: 500})
	if err := tr2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	path := t.TempDir() + "/epst.db"
	fs, err := eio.CreateFileStore(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	pts := distinctPoints(rng, 500, 4000)
	tr, err := Build(fs, Options{}, pts)
	if err != nil {
		t.Fatal(err)
	}
	hdr := tr.HeaderID()
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	fs2, err := eio.OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	tr2, err := Open(fs2, hdr, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := map[geom.Point]bool{}
	for _, p := range pts {
		m[p] = true
	}
	checkQuery(t, tr2, m, geom.Query3{XLo: 1000, XHi: 3000, YLo: 2000})
	// And it remains updatable after reopen.
	if err := tr2.Insert(geom.Point{X: -7, Y: -7}); err != nil {
		t.Fatal(err)
	}
	if ok, err := tr2.Contains(geom.Point{X: -7, Y: -7}); err != nil || !ok {
		t.Fatalf("point lost after reopen+insert: %v %v", ok, err)
	}
}

func TestDestroyFreesEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	store := eio.NewMemStore(128)
	pts := distinctPoints(rng, 400, 1000)
	tr, err := Build(store, Options{A: 2, K: 4}, pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts[:50] {
		if _, err := tr.Delete(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Destroy(); err != nil {
		t.Fatal(err)
	}
	if got := store.Pages(); got != 0 {
		t.Fatalf("%d pages leaked", got)
	}
}

// TestTheorem6QueryIO: query cost O(log_B N + T/B) measured in real page
// reads on a B=16 store.
func TestTheorem6QueryIO(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	store := eio.NewMemStore(256) // B = 16
	pts := distinctPoints(rng, 20000, 1<<30)
	tr, err := Build(store, Options{}, pts)
	if err != nil {
		t.Fatal(err)
	}
	h, err := tr.Height()
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 60; trial++ {
		a := rng.Int63n(1 << 30)
		b := a + rng.Int63n(1<<30-a+1)
		c := rng.Int63n(1 << 30)
		q := geom.Query3{XLo: a, XHi: b, YLo: c}
		store.ResetStats()
		got, err := tr.Query3(nil, q)
		if err != nil {
			t.Fatal(err)
		}
		reads := int(store.Stats().Reads)
		tb := (len(got) + tr.B() - 1) / tr.B()
		// Per node visited: node record (≤2 pages) + catalog (few pages)
		// + covered blocks. Path nodes ≈ 2(h+1); interior visits ≤ 2t.
		limit := 30*(h+2) + 30*tb
		if reads > limit {
			t.Errorf("query %v: %d reads (h=%d, t=%d, limit %d)", q, reads, h, tb, limit)
		}
	}
}

// TestTheorem6Space: the structure occupies O(N/B) pages.
func TestTheorem6Space(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	store := eio.NewMemStore(256) // B = 16
	pts := distinctPoints(rng, 30000, 1<<30)
	tr, err := Build(store, Options{}, pts)
	if err != nil {
		t.Fatal(err)
	}
	st, err := tr.Space()
	if err != nil {
		t.Fatal(err)
	}
	if f := st.BlocksPerPoint(); f > 8 {
		t.Errorf("space factor %.2f pages·B/points exceeds constant bound", f)
	}
}

// TestTheorem6UpdateIO: amortized update cost O(log_B N) in page I/Os.
func TestTheorem6UpdateIO(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	store := eio.NewMemStore(256) // B = 16
	pts := distinctPoints(rng, 8000, 1<<30)
	tr, err := Build(store, Options{}, pts[:4000])
	if err != nil {
		t.Fatal(err)
	}
	h, err := tr.Height()
	if err != nil {
		t.Fatal(err)
	}
	store.ResetStats()
	for _, p := range pts[4000:] {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	insertCost := float64(store.Stats().IOs()) / 4000
	store.ResetStats()
	for _, p := range pts[:4000] {
		if _, err := tr.Delete(p); err != nil {
			t.Fatal(err)
		}
	}
	deleteCost := float64(store.Stats().IOs()) / 4000
	// Loose constant: each level touches a node record and a small
	// structure catalog (several pages each).
	bound := float64((h + 2) * 60)
	if insertCost > bound {
		t.Errorf("amortized insert cost %.1f I/Os (h=%d)", insertCost, h)
	}
	if deleteCost > bound {
		t.Errorf("amortized delete cost %.1f I/Os (h=%d)", deleteCost, h)
	}
	_ = math.Log
}

func TestFaultPropagation(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	mem := eio.NewMemStore(128)
	faulty := eio.NewFaultStore(mem)
	pts := distinctPoints(rng, 100, 500)
	tr, err := Build(faulty, Options{A: 2, K: 4}, pts)
	if err != nil {
		t.Fatal(err)
	}
	faulty.FailAfter(eio.OpRead, 3)
	_, err = tr.Query3(nil, geom.Query3{XLo: 0, XHi: 500, YLo: 0})
	if !errors.Is(err, eio.ErrInjected) {
		t.Fatalf("expected injected fault, got %v", err)
	}
	faulty.Disarm()
	if _, err := tr.Query3(nil, geom.Query3{XLo: 0, XHi: 500, YLo: 0}); err != nil {
		t.Fatalf("query after disarm: %v", err)
	}
}

func TestAllMatchesContents(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	store := eio.NewMemStore(128)
	pts := distinctPoints(rng, 250, 800)
	tr, err := Build(store, Options{A: 2, K: 4}, pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts[:30] {
		if _, err := tr.Delete(p); err != nil {
			t.Fatal(err)
		}
	}
	all, err := tr.All()
	if err != nil {
		t.Fatal(err)
	}
	if !equalPts(sorted(all), sorted(pts[30:])) {
		t.Fatal("All() does not match live contents")
	}
}
