package epst

import (
	"math/rand"
	"testing"

	"rangesearch/internal/eio"
	"rangesearch/internal/eio/eiotest"
	"rangesearch/internal/geom"
)

// TestFaultSweep fails every store operation of a build/insert/delete/query
// workload in turn and asserts the external priority search tree surfaces
// the injected error, never panics, and stays queryable afterwards.
func TestFaultSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("fault sweep re-runs the workload per operation")
	}
	rng := rand.New(rand.NewSource(17))
	pts := distinctPoints(rng, 70, 1000)
	base, extra := pts[:55], pts[55:]

	eiotest.Sweep(t, eiotest.Workload{
		Name:     "epst",
		PageSize: 128,
		Strict:   true,
		Run: func(st eio.Store) (func() error, error) {
			tr, err := Build(st, Options{A: 2, K: 4}, base)
			if err != nil {
				return nil, err
			}
			check := func() error {
				if _, err := tr.Len(); err != nil {
					return err
				}
				_, err := tr.Query3(nil, geom.Query3{XLo: 0, XHi: 1000, YLo: 0})
				return err
			}
			for _, p := range extra {
				if err := tr.Insert(p); err != nil {
					return check, err
				}
			}
			for _, p := range base[:12] {
				if _, err := tr.Delete(p); err != nil {
					return check, err
				}
			}
			if _, err := tr.Query3(nil, geom.Query3{XLo: 100, XHi: 900, YLo: 200}); err != nil {
				return check, err
			}
			return check, nil
		},
	})
}
