package epst_test

import (
	"fmt"
	"strings"
	"testing"

	"rangesearch/internal/eio"
	"rangesearch/internal/eio/eiotest"
	"rangesearch/internal/epst"
	"rangesearch/internal/geom"
)

func sweepPoints() []geom.Point {
	var pts []geom.Point
	for i := 0; i < 30; i++ {
		pts = append(pts, geom.Point{X: int64(i*53%127) + 1, Y: int64(i * 11 % 89)})
	}
	return pts
}

func epstState(st eio.Store, hdr eio.PageID) (string, error) {
	tr, err := epst.Open(st, hdr, 0)
	if err != nil {
		return "", err
	}
	if err := tr.CheckInvariants(); err != nil {
		return "", err
	}
	pts, err := tr.All()
	if err != nil {
		return "", err
	}
	geom.SortByX(pts)
	var b strings.Builder
	for _, p := range pts {
		fmt.Fprintf(&b, "%d,%d;", p.X, p.Y)
	}
	return b.String(), nil
}

func epstReachable(st eio.Store, hdr eio.PageID) ([]eio.PageID, error) {
	tr, err := epst.Open(st, hdr, 0)
	if err != nil {
		return nil, err
	}
	return tr.AppendAllPages(nil)
}

// TestRecoverySweep crashes an insert and a delete on the external priority
// search tree at every mutating backing-store operation, asserting
// before-or-after atomicity under WAL recovery plus a leak-free scrub. The
// EPST is the hardest case: one logical update touches the base tree, the
// per-node small structures and possibly a global rebuild.
func TestRecoverySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery sweep in -short mode")
	}
	build := func(st eio.Store) (eio.PageID, error) {
		tr, err := epst.Build(st, epst.Options{}, sweepPoints())
		if err != nil {
			return eio.NilPage, err
		}
		return tr.HeaderID(), nil
	}
	eiotest.RecoverySweep(t, eiotest.RecoveryWorkload{
		Name:     "epst-insert",
		PageSize: 128,
		WALPages: 512,
		Build:    build,
		Op: func(st eio.Store, hdr eio.PageID) error {
			tr, err := epst.Open(st, hdr, 0)
			if err != nil {
				return err
			}
			return tr.Insert(geom.Point{X: 64, Y: 1000})
		},
		State:     epstState,
		Reachable: epstReachable,
		MaxRuns:   60,
	})
	eiotest.RecoverySweep(t, eiotest.RecoveryWorkload{
		Name:     "epst-delete",
		PageSize: 128,
		WALPages: 512,
		Build:    build,
		Op: func(st eio.Store, hdr eio.PageID) error {
			tr, err := epst.Open(st, hdr, 0)
			if err != nil {
				return err
			}
			found, err := tr.Delete(sweepPoints()[17])
			if err == nil && !found {
				return fmt.Errorf("delete target missing")
			}
			return err
		},
		State:     epstState,
		Reachable: epstReachable,
		MaxRuns:   60,
	})
}
