package epst

import (
	"fmt"

	"rangesearch/internal/eio"
	"rangesearch/internal/geom"
)

// CheckInvariants exhaustively audits the structural invariants of
// Section 3.3 (used by tests and by cmd/rsinspect):
//
//  1. every internal node's Q holds exactly the Y-sets recorded in its
//     child entries, each of at most B points inside the child's range;
//  2. if anything is stored below child w, |Y(w)| ≥ B/2;
//  3. Y(w) are the topmost points of w's subtree not absorbed above
//     (no stored point below w lies above min Y(w));
//  4. subtree weights equal key counts, keys are sorted and in range,
//     leaves respect the 2k−1 cap;
//  5. every point is stored exactly once and every key has its point.
func (t *Tree) CheckInvariants() error {
	m, err := t.loadMeta()
	if err != nil {
		return err
	}
	res, err := t.check(m.root, m.height)
	if err != nil {
		return err
	}
	if res.weight != m.live {
		return fmt.Errorf("epst: header live=%d but tree holds %d keys", m.live, res.weight)
	}
	if int64(res.stored) != m.live {
		return fmt.Errorf("epst: %d keys but %d stored points", m.live, res.stored)
	}
	return nil
}

type checkRes struct {
	weight int64
	stored int          // points stored in this subtree (at any depth)
	maxKey geom.Point   // true max key
	minKey geom.Point   // true min key
	points []geom.Point // all stored points of the subtree
	keys   []geom.Point // all keys of the subtree
}

func (t *Tree) check(id eio.PageID, level int) (*checkRes, error) {
	n, err := t.readNode(id)
	if err != nil {
		return nil, err
	}
	if n.level != level {
		return nil, fmt.Errorf("epst: node level %d, expected %d", n.level, level)
	}
	res := &checkRes{}
	if n.level == 0 {
		if len(n.keys) > 2*t.k-1 {
			return nil, fmt.Errorf("epst: leaf holds %d keys (max %d)", len(n.keys), 2*t.k-1)
		}
		for i, ke := range n.keys {
			if i > 0 && !n.keys[i-1].p.Less(ke.p) {
				return nil, fmt.Errorf("epst: leaf keys out of order at %d", i)
			}
			res.keys = append(res.keys, ke.p)
			if ke.here {
				res.points = append(res.points, ke.p)
				res.stored++
			}
		}
		res.weight = int64(len(n.keys))
		if len(n.keys) > 0 {
			res.minKey = n.keys[0].p
			res.maxKey = n.keys[len(n.keys)-1].p
		}
		return res, nil
	}

	q, err := t.openQ(n.q)
	if err != nil {
		return nil, err
	}
	qAll, err := q.All()
	if err != nil {
		return nil, err
	}
	qSet := make(map[geom.Point]bool, len(qAll))
	for _, p := range qAll {
		if qSet[p] {
			return nil, fmt.Errorf("epst: duplicate %v in Q", p)
		}
		qSet[p] = true
	}
	res.stored = len(qAll)
	res.points = append(res.points, qAll...)

	var totalY int
	for i := range n.entries {
		e := &n.entries[i]
		sub, err := t.check(e.child, level-1)
		if err != nil {
			return nil, err
		}
		if sub.weight != e.weight {
			return nil, fmt.Errorf("epst: entry %d weight %d, subtree has %d", i, e.weight, sub.weight)
		}
		// All subtree keys must lie within the child's composite range.
		for _, kp := range sub.keys {
			if !inChildRange(n, i, kp) {
				return nil, fmt.Errorf("epst: key %v outside child %d range", kp, i)
			}
		}
		// Y(child i): the Q points within the child's range.
		var ys []geom.Point
		for _, p := range qAll {
			if inChildRange(n, i, p) {
				ys = append(ys, p)
			}
		}
		if len(ys) != int(e.ysize) {
			return nil, fmt.Errorf("epst: entry %d records ysize=%d, Q holds %d", i, e.ysize, len(ys))
		}
		if len(ys) > t.b {
			return nil, fmt.Errorf("epst: Y-set of child %d has %d > B=%d points", i, len(ys), t.b)
		}
		totalY += len(ys)
		// Invariant 3: nonempty below ⇒ |Y| ≥ B/2.
		if sub.stored > 0 && len(ys) < t.yHalf() {
			return nil, fmt.Errorf("epst: child %d stores %d points below but Y-set has only %d < B/2=%d", i, sub.stored, len(ys), t.yHalf())
		}
		// Topmost property: every stored point below is ≤ every Y point
		// in (y, x) order.
		if len(ys) > 0 && len(sub.points) > 0 {
			minY := ys[0]
			for _, p := range ys[1:] {
				if p.YLess(minY) {
					minY = p
				}
			}
			for _, p := range sub.points {
				if minY.YLess(p) {
					return nil, fmt.Errorf("epst: point %v below child %d lies above Y-set min %v", p, i, minY)
				}
			}
		}
		res.weight += sub.weight
		res.stored += sub.stored
		res.points = append(res.points, sub.points...)
		res.keys = append(res.keys, sub.keys...)
	}
	if totalY != len(qAll) {
		return nil, fmt.Errorf("epst: Q holds %d points but Y-sets account for %d", len(qAll), totalY)
	}

	// Every stored point must have its key, exactly once.
	keySet := make(map[geom.Point]bool, len(res.keys))
	for _, kp := range res.keys {
		if keySet[kp] {
			return nil, fmt.Errorf("epst: duplicate key %v", kp)
		}
		keySet[kp] = true
	}
	pointSeen := make(map[geom.Point]bool, len(res.points))
	for _, p := range res.points {
		if pointSeen[p] {
			return nil, fmt.Errorf("epst: point %v stored twice", p)
		}
		pointSeen[p] = true
		if !keySet[p] {
			return nil, fmt.Errorf("epst: stored point %v has no key", p)
		}
	}
	if len(res.keys) > 0 {
		res.minKey = res.keys[0]
		res.maxKey = res.keys[0]
		for _, kp := range res.keys {
			if kp.Less(res.minKey) {
				res.minKey = kp
			}
			if res.maxKey.Less(kp) {
				res.maxKey = kp
			}
		}
	}
	return res, nil
}

// SpaceStats reports the structure's disk footprint.
type SpaceStats struct {
	Points int // live points
	Pages  int // pages allocated on the store (whole store)
	B      int
}

// BlocksPerPoint returns pages·B/points, the space blow-up versus packed
// storage (Theorem 6 promises O(1)).
func (s SpaceStats) BlocksPerPoint() float64 {
	if s.Points == 0 {
		return 0
	}
	return float64(s.Pages*s.B) / float64(s.Points)
}

// Space returns the current footprint. Pages counts every live page on the
// tree's store, so it is only meaningful when the tree is the sole tenant.
func (t *Tree) Space() (SpaceStats, error) {
	n, err := t.Len()
	if err != nil {
		return SpaceStats{}, err
	}
	return SpaceStats{Points: n, Pages: t.store.Pages(), B: t.b}, nil
}

// LevelProfile describes one level of the tree.
type LevelProfile struct {
	Level     int
	Nodes     int
	Keys      int64   // keys routed through this level (leaves: stored keys)
	Stored    int     // points stored in this level's structures
	AvgYFill  float64 // mean |Y(child)|/B over children (internal levels)
	MinYFill  float64
	QBlocks   int // small-structure index blocks at this level
	QCatPages int // small-structure catalog pages at this level
}

// Profile walks the tree and returns a per-level breakdown — the data
// behind cmd/rsinspect's report.
func (t *Tree) Profile() ([]LevelProfile, error) {
	m, err := t.loadMeta()
	if err != nil {
		return nil, err
	}
	prof := make([]LevelProfile, m.height+1)
	for i := range prof {
		prof[i].Level = i
		prof[i].MinYFill = 1
	}
	var walk func(id eio.PageID) error
	walk = func(id eio.PageID) error {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		lp := &prof[n.level]
		lp.Nodes++
		if n.level == 0 {
			lp.Keys += int64(len(n.keys))
			for _, ke := range n.keys {
				if ke.here {
					lp.Stored++
				}
			}
			return nil
		}
		q, err := t.openQ(n.q)
		if err != nil {
			return err
		}
		qn, err := q.Len()
		if err != nil {
			return err
		}
		lp.Stored += qn
		blocks, err := q.Blocks()
		if err != nil {
			return err
		}
		lp.QBlocks += blocks
		cat, err := q.CatalogPages()
		if err != nil {
			return err
		}
		lp.QCatPages += cat
		for i := range n.entries {
			lp.Keys += n.entries[i].weight
			fill := float64(n.entries[i].ysize) / float64(t.b)
			lp.AvgYFill += fill
			if n.entries[i].weight > 0 && fill < lp.MinYFill {
				lp.MinYFill = fill
			}
			if err := walk(n.entries[i].child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(m.root); err != nil {
		return nil, err
	}
	// Normalize AvgYFill by child count per level.
	counts := make([]int, m.height+1)
	var countChildren func(id eio.PageID) error
	countChildren = func(id eio.PageID) error {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		if n.level == 0 {
			return nil
		}
		counts[n.level] += len(n.entries)
		for i := range n.entries {
			if err := countChildren(n.entries[i].child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := countChildren(m.root); err != nil {
		return nil, err
	}
	for i := range prof {
		if counts[i] > 0 {
			prof[i].AvgYFill /= float64(counts[i])
		} else {
			prof[i].MinYFill = 0
		}
	}
	return prof, nil
}
