package eio

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
)

// fillPage returns a page-sized buffer stamped with b.
func fillPage(ps int, b byte) []byte { return bytes.Repeat([]byte{b}, ps) }

// TestTxCommitAtomic exercises the happy path: a multi-page transaction
// commits, the data is visible, and an uncommitted transaction rolls back
// without a trace.
func TestTxCommitAtomic(t *testing.T) {
	mem := NewMemStore(128)
	tx, err := NewTxStore(mem, TxOptions{WALPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	var ids [3]PageID
	for i := range ids {
		if ids[i], err = tx.Alloc(); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Update(func() error {
		for i, id := range ids {
			if err := tx.Write(id, fillPage(128, byte(i+1))); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	for i, id := range ids {
		if err := mem.Read(id, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i+1) {
			t.Fatalf("page %d: committed data missing", id)
		}
	}

	// A failing transaction leaves no trace: writes vanish, allocations
	// are returned.
	pages := tx.Pages()
	boom := errors.New("boom")
	err = tx.Update(func() error {
		id, err := tx.Alloc()
		if err != nil {
			return err
		}
		if err := tx.Write(id, fillPage(128, 0xEE)); err != nil {
			return err
		}
		if err := tx.Write(ids[0], fillPage(128, 0xEE)); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Update swallowed the error: %v", err)
	}
	if got := tx.Pages(); got != pages {
		t.Fatalf("rolled-back tx leaked pages: %d -> %d", pages, got)
	}
	if err := mem.Read(ids[0], buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 1 {
		t.Fatalf("rolled-back write reached the store")
	}
}

// TestTxReadYourWrites pins that a transaction observes its own buffered
// writes and deferred frees.
func TestTxReadYourWrites(t *testing.T) {
	tx, err := NewTxStore(NewMemStore(128), TxOptions{WALPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	a, _ := tx.Alloc()
	b, _ := tx.Alloc()
	if err := tx.Write(a, fillPage(128, 1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(a, fillPage(128, 2)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	if err := tx.Read(a, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 2 {
		t.Fatalf("read did not see buffered write: %d", buf[0])
	}
	if err := tx.Free(b); err != nil {
		t.Fatal(err)
	}
	if err := tx.Read(b, buf); !errors.Is(err, ErrBadPage) {
		t.Fatalf("read of tx-freed page: %v", err)
	}
	if err := tx.Write(b, fillPage(128, 3)); !errors.Is(err, ErrBadPage) {
		t.Fatalf("write of tx-freed page: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestTxOverflow pins ErrTxOverflow when a transaction outgrows its WAL.
func TestTxOverflow(t *testing.T) {
	tx, err := NewTxStore(NewMemStore(128), TxOptions{WALPages: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	max := (2*128 - 16 - 4) / (8 + 128)
	ids := make([]PageID, max+1)
	for i := range ids {
		ids[i], _ = tx.Alloc()
	}
	err = tx.Update(func() error {
		for _, id := range ids {
			if err := tx.Write(id, fillPage(128, 7)); err != nil {
				return err
			}
		}
		return nil
	})
	if !errors.Is(err, ErrTxOverflow) {
		t.Fatalf("want ErrTxOverflow, got %v", err)
	}
}

// TestTxRecoverySweepRaw is the eio-level recovery sweep: a three-page
// transaction over a file store, crashed at every mutating operation via
// CrashStore (torn and untorn), reopened and recovered; the pages must
// read all-old or all-new, never a mix, and the file must verify clean.
func TestTxRecoverySweepRaw(t *testing.T) {
	const ps = 128
	dir := t.TempDir()
	for _, torn := range []bool{false, true} {
		k := 0
		for {
			k++
			path := filepath.Join(dir, fmt.Sprintf("sweep-%v-%d.db", torn, k))
			fs, err := CreateFileStore(path, ps)
			if err != nil {
				t.Fatal(err)
			}
			txSetup, err := NewTxStore(fs, TxOptions{WALPages: 8})
			if err != nil {
				t.Fatal(err)
			}
			var ids [3]PageID
			for i := range ids {
				ids[i], _ = txSetup.Alloc()
				if err := txSetup.Write(ids[i], fillPage(ps, 0xAA)); err != nil {
					t.Fatal(err)
				}
			}
			anchor := txSetup.Anchor()
			if err := txSetup.Sync(); err != nil {
				t.Fatal(err)
			}

			cs := NewCrashStore(fs, int64(100+k))
			cs.SetTornWrites(torn)
			fault := NewFaultStore(cs)
			tx, err := OpenTxStore(fault, anchor)
			if err != nil {
				t.Fatal(err)
			}
			fault.FailNth(k)
			fault.SetTornWrites(false)
			err = tx.Update(func() error {
				for i, id := range ids {
					if err := tx.Write(id, fillPage(ps, byte(0xB0+i))); err != nil {
						return err
					}
				}
				return nil
			})
			if err == nil {
				// k exceeded the op count: the op ran clean. Done.
				if err := cs.Close(); err != nil {
					t.Fatal(err)
				}
				if k == 1 {
					t.Fatal("commit performed no operations")
				}
				break
			}
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("op %d: unexpected error: %v", k, err)
			}
			if _, err := cs.Crash(); err != nil {
				t.Fatal(err)
			}
			if err := fs.CloseCrash(); err != nil {
				t.Fatal(err)
			}

			fs2, err := OpenFileStore(path)
			if err != nil {
				t.Fatalf("op %d: reopen: %v", k, err)
			}
			tx2, err := OpenTxStore(fs2, anchor)
			if err != nil {
				t.Fatalf("op %d: recovery: %v", k, err)
			}
			buf := make([]byte, ps)
			if err := tx2.Read(ids[0], buf); err != nil {
				t.Fatalf("op %d: read: %v", k, err)
			}
			switch buf[0] {
			case 0xAA: // before: every page must be old
				for _, id := range ids {
					if err := tx2.Read(id, buf); err != nil {
						t.Fatalf("op %d: read: %v", k, err)
					}
					if buf[0] != 0xAA {
						t.Fatalf("op %d: torn commit surfaced: page %d = %#x", k, id, buf[0])
					}
				}
			case 0xB0: // after: every page must be new
				for i, id := range ids {
					if err := tx2.Read(id, buf); err != nil {
						t.Fatalf("op %d: read: %v", k, err)
					}
					if buf[0] != byte(0xB0+i) {
						t.Fatalf("op %d: torn commit surfaced: page %d = %#x", k, id, buf[0])
					}
				}
			default:
				t.Fatalf("op %d: page %d holds junk %#x", k, ids[0], buf[0])
			}
			if err := tx2.Close(); err != nil {
				t.Fatalf("op %d: close: %v", k, err)
			}
			rep, err := VerifyFile(path)
			if err != nil {
				t.Fatalf("op %d: verify: %v", k, err)
			}
			if rep.Damaged() {
				t.Fatalf("op %d: recovered file damaged:\n%s", k, rep)
			}
		}
		if k < 5 {
			t.Fatalf("sweep covered only %d ops; commit path too short to trust", k)
		}
	}
}

// TestTxComposition drives a transaction through the full wrapper stack
// TxStore ∘ CrashStore ∘ FaultStore ∘ TraceStore ∘ FileStore, pinning that
// sync, torn writes and page listing all traverse the stack.
func TestTxComposition(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stack.db")
	fs, err := CreateFileStore(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTraceStore(fs)
	fa := NewFaultStore(tr)
	cs := NewCrashStore(fa, 42)
	cs.SetTornWrites(true)
	tx, err := NewTxStore(cs, TxOptions{WALPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	id, err := tx.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Update(func() error { return tx.Write(id, fillPage(128, 0x55)) }); err != nil {
		t.Fatal(err)
	}
	anchor := tx.Anchor()
	// The committed write must be durable on the FILE despite the crash
	// cache in the middle: commit's sync barrier has to reach FileStore
	// through FaultStore and TraceStore.
	if _, err := cs.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := fs.CloseCrash(); err != nil {
		t.Fatal(err)
	}
	fs2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	tx2, err := OpenTxStore(fs2, anchor)
	if err != nil {
		t.Fatal(err)
	}
	defer tx2.Close()
	buf := make([]byte, 128)
	if err := tx2.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0x55 {
		t.Fatalf("committed write lost across crash: %#x", buf[0])
	}
	if _, err := tx2.LivePageIDs(); err != nil {
		t.Fatalf("page listing does not traverse the stack: %v", err)
	}
}

// TestTxDisabledFastPath pins the no-WAL fast path: a disabled TxStore
// performs exactly the I/Os of the bare store — same counters, no meta
// pages, no buffering.
func TestTxDisabledFastPath(t *testing.T) {
	workload := func(st Store) {
		t.Helper()
		var ids []PageID
		for i := 0; i < 16; i++ {
			id, err := st.Alloc()
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
			if err := st.Write(id, fillPage(128, byte(i))); err != nil {
				t.Fatal(err)
			}
		}
		buf := make([]byte, 128)
		for _, id := range ids {
			if err := st.Read(id, buf); err != nil {
				t.Fatal(err)
			}
		}
		for _, id := range ids[:8] {
			if err := st.Free(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	raw := NewMemStore(128)
	workload(raw)
	want := raw.Stats()

	mem := NewMemStore(128)
	tx, err := NewTxStore(mem, TxOptions{Disabled: true})
	if err != nil {
		t.Fatal(err)
	}
	if tx.Anchor() != NilPage {
		t.Fatal("disabled TxStore allocated meta pages")
	}
	// Begin/Commit must be free too.
	if err := tx.Begin(); err != nil {
		t.Fatal(err)
	}
	workload(tx)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := tx.Stats(); got != want {
		t.Fatalf("disabled TxStore I/O regression: got %v want %v", got, want)
	}
}

// TestTxSequentialCommits pins that the WAL region is safely reused across
// many commits (the checkpoint barrier protects record N while N+1 is
// appended) and that recovery on a cleanly closed store is a no-op.
func TestTxSequentialCommits(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seq.db")
	fs, err := CreateFileStore(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := NewTxStore(fs, TxOptions{WALPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	id, _ := tx.Alloc()
	for i := 0; i < 20; i++ {
		if err := tx.Update(func() error { return tx.Write(id, fillPage(128, byte(i))) }); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	anchor := tx.Anchor()
	if err := tx.Close(); err != nil {
		t.Fatal(err)
	}
	fs2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	tx2, err := OpenTxStore(fs2, anchor)
	if err != nil {
		t.Fatal(err)
	}
	defer tx2.Close()
	if r := tx2.Recovery(); r.Dirty() {
		t.Fatalf("clean close needed recovery: %s", r)
	}
	buf := make([]byte, 128)
	if err := tx2.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 19 {
		t.Fatalf("lost commits: page holds %d", buf[0])
	}
}

// TestWALRecordRoundTrip pins the record codec against hostile mutations.
func TestWALRecordRoundTrip(t *testing.T) {
	const ps = 64
	writes := []walWrite{
		{id: 3, image: fillPage(ps, 1)},
		{id: 9, image: fillPage(ps, 2)},
	}
	rec := encodeWALRecord(7, writes, ps)
	lsn, got, err := decodeWALRecord(rec, ps)
	if err != nil || lsn != 7 || len(got) != 2 {
		t.Fatalf("round trip: lsn=%d n=%d err=%v", lsn, len(got), err)
	}
	if got[0].id != 3 || got[1].id != 9 || got[1].image[0] != 2 {
		t.Fatal("round trip corrupted images")
	}
	// Any single-bit flip must be detected.
	for i := 0; i < len(rec); i += 13 {
		mut := bytes.Clone(rec)
		mut[i] ^= 0x40
		if _, _, err := decodeWALRecord(mut, ps); err == nil {
			t.Fatalf("bit flip at byte %d undetected", i)
		}
	}
	// Truncations must error, not panic.
	for n := 0; n < len(rec); n += 7 {
		if _, _, err := decodeWALRecord(rec[:n], ps); err == nil {
			t.Fatalf("truncation to %d bytes undetected", n)
		}
	}
}
