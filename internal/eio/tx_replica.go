package eio

import (
	"fmt"
	"sync"
)

// PageEnsurer is implemented by stores that can materialize an arbitrary
// page id so a subsequent Write succeeds (FileStore.EnsurePage). Replica
// appliers need it: shipped records reference the PRIMARY's page ids, which
// the replica's own allocator has never handed out.
type PageEnsurer interface {
	EnsurePage(id PageID) error
}

// TxReplica replays shipped redo records into a replica's store through the
// exact commit protocol TxStore uses — same WAL region, same anchors, same
// barrier order — so a replica file is protocol-identical to a primary file:
// a crashed replica recovers with the ordinary OpenTxStore machinery, and a
// promoted replica IS a primary, no conversion step.
//
// Per record, ApplyRecord runs:
//
//	1. checkpoint barrier (previous apply durable before its WAL record
//	   is overwritten)
//	2. write the shipped record into the local WAL region
//	3. Sync — the local commit point: the record now survives a replica
//	   crash without help from the primary
//	4. apply the page images in record order, materializing unseen ids
//	5. Sync — the apply barrier
//	6. bump the anchor (seq+1, record LSN)
//
// Writes in step 4 go through the apply store — a SnapStore in the serving
// stack — so pinned readers keep their epoch; WAL and anchor writes (steps
// 2 and 6) go straight to the inner store, whose pages no query ever reads.
//
// Frees are never shipped (TxStore never logs them), so a replica
// accumulates pages its primary has freed. That is the documented
// leak-never-corrupt trade-off: Scrub reclaims them at promotion.
type TxReplica struct {
	mu      sync.Mutex
	inner   Store       // durability root: WAL region, anchors, sync barriers
	apply   Store       // data-page writes (SnapStore for epoch-isolated readers)
	ensure  PageEnsurer // materializes primary-chosen page ids, when supported
	ps      int
	dir     PageID
	anchors [2]PageID
	walIDs  []PageID
	slot    int
	seq     uint64
	applied uint64

	recovery RecoveryInfo
}

// OpenTxReplica attaches a replica applier to a store holding a TxStore
// layout (dir is the directory id, the same value TxStore.Anchor returns on
// the primary). It first runs full OpenTxStore crash recovery on inner —
// a record the replica persisted locally but did not finish applying is
// redone — then resumes applying shipped records from the recovered LSN.
// apply receives the data-page writes and may be nil to write straight to
// inner.
func OpenTxReplica(inner, apply Store, dir PageID) (*TxReplica, error) {
	if apply == nil {
		apply = inner
	}
	t, err := OpenTxStore(inner, dir)
	if err != nil {
		return nil, fmt.Errorf("eio: replica: %w", err)
	}
	r := &TxReplica{
		inner:    inner,
		apply:    apply,
		ps:       t.ps,
		dir:      dir,
		anchors:  t.anchors,
		walIDs:   t.walIDs,
		slot:     t.slot,
		seq:      t.seq,
		applied:  t.applied,
		recovery: t.recovery,
	}
	if pe, ok := inner.(PageEnsurer); ok {
		r.ensure = pe
	}
	return r, nil
}

// AppliedLSN returns the LSN of the last fully applied record.
func (r *TxReplica) AppliedLSN() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied
}

// Recovery reports what the OpenTxStore pass inside OpenTxReplica did.
func (r *TxReplica) Recovery() RecoveryInfo { return r.recovery }

// Dir returns the directory id the applier was opened with.
func (r *TxReplica) Dir() PageID { return r.dir }

// ApplyRecord verifies and applies one shipped redo record. It returns
// (false, nil) for a duplicate (LSN ≤ applied — reconnects resend the tail)
// and an error for a gap or a corrupt record; (true, nil) means the record
// is applied and locally durable.
func (r *TxReplica) ApplyRecord(rec []byte) (bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	lsn, writes, err := decodeWALRecord(rec, r.ps)
	if err != nil {
		return false, fmt.Errorf("eio: replica: shipped record: %w", err)
	}
	if lsn <= r.applied {
		return false, nil
	}
	if lsn != r.applied+1 {
		return false, fmt.Errorf("eio: replica: record lsn %d does not follow applied %d: %w",
			lsn, r.applied, ErrBadRecord)
	}
	if len(rec) > len(r.walIDs)*r.ps {
		return false, fmt.Errorf("eio: replica: record of %d bytes exceeds local WAL region: %w",
			len(rec), ErrTxOverflow)
	}

	// 1. Checkpoint barrier: the previous record's apply and anchor must be
	// durable before the WAL record that could redo them is overwritten.
	if err := r.syncInner(); err != nil {
		return false, fmt.Errorf("eio: replica: checkpoint sync: %w", err)
	}

	// 2–3. Persist the record locally, then the commit point.
	page := make([]byte, r.ps)
	rest := rec
	for i := 0; len(rest) > 0; i++ {
		n := copy(page, rest)
		for j := n; j < r.ps; j++ {
			page[j] = 0
		}
		if err := r.inner.Write(r.walIDs[i], page); err != nil {
			return false, fmt.Errorf("eio: replica: WAL append: %w", err)
		}
		rest = rest[n:]
	}
	if err := r.syncInner(); err != nil {
		return false, fmt.Errorf("eio: replica: commit sync: %w", err)
	}

	// 4. Apply in record order through the apply store.
	for _, w := range writes {
		if r.ensure != nil {
			if err := r.ensure.EnsurePage(w.id); err != nil {
				return false, fmt.Errorf("eio: replica: materialize page %d: %w", w.id, err)
			}
		}
		if err := r.apply.Write(w.id, w.image); err != nil {
			return false, fmt.Errorf("eio: replica: apply page %d: %w", w.id, err)
		}
	}

	// 5. Apply barrier: the anchor about to claim this LSN must never be
	// durable ahead of the data it vouches for.
	if err := r.syncInner(); err != nil {
		return false, fmt.Errorf("eio: replica: apply sync: %w", err)
	}

	// 6. Bump the anchor.
	r.applied = lsn
	r.seq++
	r.slot = 1 - r.slot
	pg := make([]byte, r.ps)
	copy(pg, encodeAnchor(r.seq, r.applied))
	if err := r.inner.Write(r.anchors[r.slot], pg); err != nil {
		return false, fmt.Errorf("eio: replica: write anchor: %w", err)
	}
	return true, nil
}

func (r *TxReplica) syncInner() error {
	if s, ok := r.inner.(syncer); ok {
		return s.Sync()
	}
	return nil
}
