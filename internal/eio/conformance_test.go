package eio

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
)

// contractFactories covers every Store implementation with the shared
// buffer-length contract suite, including the wrappers (Pool, FaultStore,
// CrashStore) that must not weaken the contract of what they wrap.
func contractFactories(t *testing.T) map[string]func() Store {
	t.Helper()
	dir := t.TempDir()
	return map[string]func() Store{
		"mem": func() Store { return NewMemStore(128) },
		"file": func() Store {
			fs, err := CreateFileStore(filepath.Join(dir, "contract.db"), 128)
			if err != nil {
				t.Fatal(err)
			}
			return fs
		},
		"pool":      func() Store { return NewPool(NewMemStore(128), 2) },
		"shardpool": func() Store { return NewShardedPool(NewMemStore(128), 8, 4) },
		"snap":      func() Store { return NewSnapStore(NewMemStore(128), 0) },
		"snap-shardpool": func() Store {
			return NewSnapStore(NewShardedPool(NewMemStore(128), 8, 4), 0)
		},
		"snap-tx": func() Store {
			tx, err := NewTxStore(NewMemStore(128), TxOptions{WALPages: 4})
			if err != nil {
				t.Fatal(err)
			}
			return NewSnapStore(tx, 0)
		},
		"fault": func() Store { return NewFaultStore(NewMemStore(128)) },
		"crash": func() Store { return NewCrashStore(NewMemStore(128), 7) },
		"trace": func() Store {
			ts := NewTraceStore(NewMemStore(128))
			ts.SetSink(discardSink{})
			return ts
		},
		"tx-mem": func() Store {
			tx, err := NewTxStore(NewMemStore(128), TxOptions{WALPages: 4})
			if err != nil {
				t.Fatal(err)
			}
			return tx
		},
		"tx-file": func() Store {
			fs, err := CreateFileStore(filepath.Join(dir, "tx-contract.db"), 128)
			if err != nil {
				t.Fatal(err)
			}
			tx, err := NewTxStore(fs, TxOptions{WALPages: 4})
			if err != nil {
				t.Fatal(err)
			}
			return tx
		},
		"tx-off": func() Store {
			tx, err := NewTxStore(NewMemStore(128), TxOptions{Disabled: true})
			if err != nil {
				t.Fatal(err)
			}
			return tx
		},
		"retry": func() Store {
			return NewRetryStore(NewMemStore(128), RetryPolicy{})
		},
	}
}

// TestBufferContract pins the documented Store buffer rules on every
// implementation: Read accepts any buffer of at least PageSize bytes and
// touches only the page-sized prefix; shorter read buffers and any
// non-exact write buffer fail with ErrPageSize without performing I/O.
func TestBufferContract(t *testing.T) {
	for name, mk := range contractFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			ps := s.PageSize()
			id, err := s.Alloc()
			if err != nil {
				t.Fatal(err)
			}
			data := bytes.Repeat([]byte{0xC3}, ps)
			if err := s.Write(id, data); err != nil {
				t.Fatal(err)
			}

			// Exact-size read.
			buf := make([]byte, ps)
			if err := s.Read(id, buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, data) {
				t.Fatal("exact-size read mismatch")
			}

			// Oversized read: prefix filled, tail untouched.
			big := make([]byte, ps+16)
			for i := range big {
				big[i] = 0x77
			}
			if err := s.Read(id, big); err != nil {
				t.Fatalf("oversized read buffer rejected: %v", err)
			}
			if !bytes.Equal(big[:ps], data) {
				t.Fatal("oversized read prefix mismatch")
			}
			for i := ps; i < len(big); i++ {
				if big[i] != 0x77 {
					t.Fatalf("read touched buf[%d] beyond PageSize", i)
				}
			}

			// Short read buffer: ErrPageSize, data untouched.
			short := make([]byte, ps-1)
			if err := s.Read(id, short); !errors.Is(err, ErrPageSize) {
				t.Fatalf("short read buffer: want ErrPageSize, got %v", err)
			}

			// Writes must be exactly one page.
			if err := s.Write(id, data[:ps-1]); !errors.Is(err, ErrPageSize) {
				t.Fatalf("short write: want ErrPageSize, got %v", err)
			}
			if err := s.Write(id, append(data, 0)); !errors.Is(err, ErrPageSize) {
				t.Fatalf("oversized write: want ErrPageSize, got %v", err)
			}
			// The rejected writes must not have modified the page.
			if err := s.Read(id, buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, data) {
				t.Fatal("rejected write modified the page")
			}
		})
	}
}

// TestPoolReadShortBufferOnHit is the regression test for the cache-hit
// path silently truncating the page into a short buffer: the short read
// must fail identically whether the page is pooled or not.
func TestPoolReadShortBufferOnHit(t *testing.T) {
	mem := NewMemStore(64)
	p := NewPool(mem, 4)
	defer p.Close()
	id, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Write(id, bytes.Repeat([]byte{1}, 64)); err != nil {
		t.Fatal(err)
	}
	// The page is now resident (Alloc/Write keep it pooled) — this read is
	// a cache hit.
	short := make([]byte, 16)
	if err := p.Read(id, short); !errors.Is(err, ErrPageSize) {
		t.Fatalf("cache-hit short read: want ErrPageSize, got %v", err)
	}
	for _, b := range short {
		if b != 0 {
			t.Fatal("failed read wrote into the short buffer")
		}
	}
	// Same call on a cache miss for symmetry.
	p2 := NewPool(mem, 4)
	defer p2.Close()
	if err := p2.Read(id, short); !errors.Is(err, ErrPageSize) {
		t.Fatalf("cache-miss short read: want ErrPageSize, got %v", err)
	}
}

// TestPoolAllocNoLeakOnEvictionFailure is the regression test for Alloc
// leaking the freshly allocated backing page when inserting it into a full
// pool forces an eviction whose write-back fails.
func TestPoolAllocNoLeakOnEvictionFailure(t *testing.T) {
	mem := NewMemStore(64)
	f := NewFaultStore(mem)
	p := NewPool(f, 1)
	defer p.Close()

	// Fill the single frame with a dirty page.
	if _, err := p.Alloc(); err != nil {
		t.Fatal(err)
	}
	before := mem.Pages()

	// The next Alloc must evict the dirty frame; fail that write-back.
	f.FailAfter(OpWrite, 1)
	id, err := p.Alloc()
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("alloc during failing eviction: want ErrInjected, got (%v, %v)", id, err)
	}
	if id != NilPage {
		t.Fatalf("failed alloc returned page %d", id)
	}
	if got := mem.Pages(); got != before {
		t.Fatalf("failed alloc leaked a page: backing has %d pages, want %d", got, before)
	}
}

// TestFaultStoreModes exercises the persistent, probabilistic and
// global-index arming modes plus the op trace.
func TestFaultStoreModes(t *testing.T) {
	mem := NewMemStore(64)
	f := NewFaultStore(mem)
	defer f.Close()
	id, err := f.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)

	// FailAlways persists until Disarm.
	f.FailAlways(OpRead)
	for i := 0; i < 3; i++ {
		if err := f.Read(id, buf); !errors.Is(err, ErrInjected) {
			t.Fatalf("persistent fault round %d: %v", i, err)
		}
	}
	f.Disarm()
	if err := f.Read(id, buf); err != nil {
		t.Fatalf("read after Disarm: %v", err)
	}

	// FailProb is deterministic under a fixed seed.
	pattern := func() []bool {
		f.Seed(42)
		f.FailProb(OpWrite, 0.5)
		defer f.Disarm()
		var out []bool
		for i := 0; i < 32; i++ {
			err := f.Write(id, buf)
			if err != nil && !errors.Is(err, ErrInjected) {
				t.Fatalf("unexpected write error: %v", err)
			}
			out = append(out, err != nil)
		}
		return out
	}
	a, b := pattern(), pattern()
	var fails int
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("FailProb not reproducible under the same seed")
		}
		if a[i] {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Fatalf("FailProb(0.5) injected %d/%d faults", fails, len(a))
	}

	// FailNth counts operations of every kind from the arming point.
	start := f.Ops()
	f.FailNth(3)
	if err := f.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := f.Write(id, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Alloc(); !errors.Is(err, ErrInjected) {
		t.Fatalf("3rd op after FailNth(3) did not fail: %v", err)
	}
	if err := f.Read(id, buf); err != nil {
		t.Fatalf("FailNth must be one-shot: %v", err)
	}
	if f.Ops() != start+4 {
		t.Fatalf("Ops() = %d, want %d", f.Ops(), start+4)
	}

	// The trace retains the recent ops, oldest first, marking the injection.
	trace := f.Trace()
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	var sawInjected bool
	for i := 1; i < len(trace); i++ {
		if trace[i].N != trace[i-1].N+1 {
			t.Fatalf("trace not contiguous: %v then %v", trace[i-1], trace[i])
		}
	}
	for _, e := range trace {
		if e.Injected && e.Op == OpAlloc {
			sawInjected = true
		}
	}
	if !sawInjected {
		t.Fatalf("trace lost the injected alloc: %v", trace)
	}
}

// TestFaultStoreTornWrite checks that an injected write fault in torn
// mode leaves a half-applied page behind on a checksumming store, so the
// next read reports ErrChecksum rather than stale-but-valid data.
func TestFaultStoreTornWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.db")
	fs, err := CreateFileStore(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFaultStore(fs)
	defer f.Close()
	f.Seed(5)
	f.SetTornWrites(true)

	id, err := f.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Write(id, bytes.Repeat([]byte{0x11}, 64)); err != nil {
		t.Fatal(err)
	}
	f.FailAfter(OpWrite, 1)
	if err := f.Write(id, bytes.Repeat([]byte{0x22}, 64)); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed write did not fail: %v", err)
	}
	buf := make([]byte, 64)
	err = f.Read(id, buf)
	if err == nil {
		// The tear may coincidentally reproduce the old bytes only if the
		// prefix matched; with distinct fill bytes it cannot.
		t.Fatal("torn write left a valid-looking page")
	}
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("read after torn write: want ErrChecksum, got %v", err)
	}
}
