package eio

import "fmt"

// ShardedPool is a lock-striped LRU buffer pool: capacity M pages split
// over S independent shards, each a Pool with its own mutex, LRU list and
// counters, all write-backs landing on one shared backing store. Page ids
// are routed to shards by id mod S, so concurrent accesses to different
// pages almost never contend on a lock — the single-mutex bottleneck of
// Pool under multi-core read traffic is gone, at the cost of LRU eviction
// being per-shard (approximate global LRU) rather than exact.
//
// Accounting contract (mirrors Pool, aggregated across shards):
//
//   - Stats/ResetStats report the shared backing store's counters — true
//     block transfers after caching, exactly as Pool does.
//   - PoolStats, Dirty and Resident sum the per-shard values. Each shard's
//     contribution is read under that shard's lock, so every counter is
//     exact; the sum itself is not a single atomic snapshot across shards
//     (a concurrent access can move a page between the reads of two
//     shards), which is the documented contract for these accessors on
//     Pool as well once it is shared between goroutines.
//   - Cap returns the total capacity; NewShardedPool distributes it as
//     evenly as possible (every shard gets at least one frame, so the
//     effective total is max(capacity, shards)).
type ShardedPool struct {
	backing Store
	shards  []*Pool
}

var _ Store = (*ShardedPool)(nil)

// DefaultPoolShards is the shard count used when NewShardedPool is given a
// non-positive one.
const DefaultPoolShards = 16

// NewShardedPool wraps backing with capacity pages of buffer split over the
// given number of shards (0 means DefaultPoolShards). capacity must be at
// least 1; shards receive ceil-divided equal slices of it.
func NewShardedPool(backing Store, capacity, shards int) *ShardedPool {
	if capacity < 1 {
		panic("eio: pool capacity must be at least 1")
	}
	if shards <= 0 {
		shards = DefaultPoolShards
	}
	per := (capacity + shards - 1) / shards
	sp := &ShardedPool{backing: backing, shards: make([]*Pool, shards)}
	for i := range sp.shards {
		sp.shards[i] = NewPool(backing, per)
	}
	return sp
}

func (sp *ShardedPool) shard(id PageID) *Pool {
	return sp.shards[int(id%PageID(len(sp.shards)))]
}

// Shards returns the number of shards.
func (sp *ShardedPool) Shards() int { return len(sp.shards) }

// PageSize implements Store.
func (sp *ShardedPool) PageSize() int { return sp.backing.PageSize() }

// Alloc implements Store. As with Pool, the new page enters its shard
// dirty, so create-then-write costs one backing write at eviction time.
func (sp *ShardedPool) Alloc() (PageID, error) {
	id, err := sp.backing.Alloc()
	if err != nil {
		return NilPage, err
	}
	if err := sp.shard(id).adopt(id); err != nil {
		_ = sp.backing.Free(id)
		return NilPage, err
	}
	return id, nil
}

// Free implements Store, dropping any pooled copy without write-back.
func (sp *ShardedPool) Free(id PageID) error { return sp.shard(id).Free(id) }

// Read implements Store.
func (sp *ShardedPool) Read(id PageID, buf []byte) error { return sp.shard(id).Read(id, buf) }

// Write implements Store (write-back, like Pool).
func (sp *ShardedPool) Write(id PageID, buf []byte) error { return sp.shard(id).Write(id, buf) }

// Flush writes every dirty pooled page in every shard to the backing store.
func (sp *ShardedPool) Flush() error {
	for _, p := range sp.shards {
		if err := p.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Stats implements Store, reporting the shared backing store's counters —
// the true block-transfer cost after caching (see Pool.Stats).
func (sp *ShardedPool) Stats() Stats { return sp.backing.Stats() }

// ResetStats implements Store: backing counters and every shard's
// PoolStats are cleared; pooled contents and dirty flags are untouched.
func (sp *ShardedPool) ResetStats() {
	for _, p := range sp.shards {
		p.mu.Lock()
		p.pstats = PoolStats{}
		p.mu.Unlock()
	}
	sp.backing.ResetStats()
}

// PoolStats returns the cache-event counters summed over all shards. Each
// shard is read under its own lock, so no events are lost; the cross-shard
// sum is not one atomic snapshot (see the type comment).
func (sp *ShardedPool) PoolStats() PoolStats {
	var total PoolStats
	for _, p := range sp.shards {
		ps := p.PoolStats()
		total.Hits += ps.Hits
		total.Misses += ps.Misses
		total.Evictions += ps.Evictions
		total.Writeback += ps.Writeback
	}
	return total
}

// ShardPoolStats returns each shard's counters individually, in shard
// order — the per-stripe view for load-balance diagnostics.
func (sp *ShardedPool) ShardPoolStats() []PoolStats {
	out := make([]PoolStats, len(sp.shards))
	for i, p := range sp.shards {
		out[i] = p.PoolStats()
	}
	return out
}

// Dirty returns the number of pooled pages (across shards) not yet written
// back.
func (sp *ShardedPool) Dirty() int {
	n := 0
	for _, p := range sp.shards {
		n += p.Dirty()
	}
	return n
}

// Cap returns the total pool capacity in pages (summed over shards).
func (sp *ShardedPool) Cap() int {
	n := 0
	for _, p := range sp.shards {
		n += p.Cap()
	}
	return n
}

// Resident returns the number of pages currently pooled across shards.
func (sp *ShardedPool) Resident() int {
	n := 0
	for _, p := range sp.shards {
		n += p.Resident()
	}
	return n
}

// Pages implements Store.
func (sp *ShardedPool) Pages() int { return sp.backing.Pages() }

// LivePageIDs implements PageLister when the backing store does.
func (sp *ShardedPool) LivePageIDs() ([]PageID, error) {
	pl, ok := sp.backing.(PageLister)
	if !ok {
		return nil, fmt.Errorf("eio: shardpool: backing store cannot enumerate pages")
	}
	return pl.LivePageIDs()
}

// Close flushes every shard and closes the backing store once.
func (sp *ShardedPool) Close() error {
	var err error
	for _, p := range sp.shards {
		p.mu.Lock()
		if !p.closed {
			if ferr := p.flushLocked(); ferr != nil && err == nil {
				err = ferr
			}
			p.closed = true
		}
		p.mu.Unlock()
	}
	if cerr := sp.backing.Close(); err == nil {
		err = cerr
	}
	return err
}

// adopt inserts a freshly allocated page into the pool as a zeroed dirty
// frame (the ShardedPool alloc path: the id comes from the shared backing
// store, not from this shard's Pool.Alloc).
func (p *Pool) adopt(id PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return fmt.Errorf("eio: alloc on closed pool")
	}
	return p.insertLocked(&frame{id: id, data: make([]byte, p.backing.PageSize()), dirty: true})
}
