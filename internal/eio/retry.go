package eio

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// RetryPolicy bounds the exponential backoff of a RetryStore.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per operation, including
	// the first. Zero selects 4.
	MaxAttempts int
	// BaseDelay is the sleep before the first retry; it doubles on every
	// subsequent one. Zero selects 1ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Zero selects 100ms.
	MaxDelay time.Duration
	// Sleep replaces time.Sleep, letting tests run the full backoff
	// schedule without wall-clock cost. Nil selects time.Sleep.
	Sleep func(time.Duration)
}

func (p RetryPolicy) filled() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 100 * time.Millisecond
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// RetryStore wraps a Store and retries operations that fail with an error
// wrapping ErrTransient, under bounded exponential backoff. Permanent
// errors (ErrBadPage, ErrChecksum, plain ErrInjected, …) pass through
// immediately: retrying corruption only wastes the I/O budget.
//
// Like every wrapper it keeps no Stats of its own, so each physical retry
// that reaches the backing store is honestly counted as an I/O.
type RetryStore struct {
	inner Store
	pol   RetryPolicy

	mu      sync.Mutex
	retries uint64
	gaveUp  uint64
}

var _ Store = (*RetryStore)(nil)

// NewRetryStore wraps inner with transient-fault retry under pol.
func NewRetryStore(inner Store, pol RetryPolicy) *RetryStore {
	return &RetryStore{inner: inner, pol: pol.filled()}
}

// Retries returns the number of retried operations and the number that
// exhausted every attempt.
func (r *RetryStore) Retries() (retried, gaveUp uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.retries, r.gaveUp
}

// do runs op under the retry policy.
func (r *RetryStore) do(op func() error) error {
	delay := r.pol.BaseDelay
	var err error
	for attempt := 0; attempt < r.pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			r.pol.Sleep(delay)
			delay *= 2
			if delay > r.pol.MaxDelay {
				delay = r.pol.MaxDelay
			}
			r.mu.Lock()
			r.retries++
			r.mu.Unlock()
		}
		err = op()
		if err == nil || !errors.Is(err, ErrTransient) {
			return err
		}
	}
	r.mu.Lock()
	r.gaveUp++
	r.mu.Unlock()
	return fmt.Errorf("eio: retry: giving up after %d attempts: %w", r.pol.MaxAttempts, err)
}

// PageSize implements Store.
func (r *RetryStore) PageSize() int { return r.inner.PageSize() }

// Alloc implements Store.
func (r *RetryStore) Alloc() (PageID, error) {
	var id PageID
	err := r.do(func() error {
		var e error
		id, e = r.inner.Alloc()
		return e
	})
	if err != nil {
		return NilPage, err
	}
	return id, nil
}

// Free implements Store.
func (r *RetryStore) Free(id PageID) error {
	return r.do(func() error { return r.inner.Free(id) })
}

// Read implements Store.
func (r *RetryStore) Read(id PageID, buf []byte) error {
	return r.do(func() error { return r.inner.Read(id, buf) })
}

// Write implements Store.
func (r *RetryStore) Write(id PageID, buf []byte) error {
	return r.do(func() error { return r.inner.Write(id, buf) })
}

// Sync delegates to the inner store's durability barrier under the same
// retry policy.
func (r *RetryStore) Sync() error {
	s, ok := r.inner.(syncer)
	if !ok {
		return nil
	}
	return r.do(s.Sync)
}

// writeRaw delegates torn writes so crash simulators compose with retry.
func (r *RetryStore) writeRaw(id PageID, prefix []byte) error {
	rw, ok := r.inner.(rawWriter)
	if !ok {
		return fmt.Errorf("eio: inner store does not support raw writes")
	}
	return rw.writeRaw(id, prefix)
}

// Stats implements Store, reporting the inner store's counters.
func (r *RetryStore) Stats() Stats { return r.inner.Stats() }

// ResetStats implements Store by delegating to the inner store. Retry
// counters are NOT reset — only accounting is.
func (r *RetryStore) ResetStats() { r.inner.ResetStats() }

// Pages implements Store.
func (r *RetryStore) Pages() int { return r.inner.Pages() }

// LivePageIDs implements PageLister when the inner store does.
func (r *RetryStore) LivePageIDs() ([]PageID, error) {
	pl, ok := r.inner.(PageLister)
	if !ok {
		return nil, fmt.Errorf("eio: retry: inner store cannot enumerate pages")
	}
	return pl.LivePageIDs()
}

// Close implements Store.
func (r *RetryStore) Close() error { return r.inner.Close() }
