package eio

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// MemStore is a RAM-backed Store. It is the default substrate for tests and
// benchmarks: every Read and Write still counts as one I/O, so measured
// costs follow the external-memory model exactly while running at memory
// speed.
//
// Reads take only a shared lock and count their I/O atomically, so
// concurrent readers (the core.Concurrent serving path) scale across cores
// instead of serializing on one mutex; mutations still take the exclusive
// lock.
type MemStore struct {
	mu       sync.RWMutex
	pageSize int
	pages    [][]byte // index 0 unused (NilPage)
	live     []bool
	closed   bool
	free     []PageID

	reads  atomic.Uint64
	writes atomic.Uint64
	allocs atomic.Uint64
	frees  atomic.Uint64
}

var _ Store = (*MemStore)(nil)

// NewMemStore returns an empty MemStore with the given page size, which
// must be at least PointSize.
func NewMemStore(pageSize int) *MemStore {
	if pageSize < PointSize {
		panic(fmt.Sprintf("eio: page size %d smaller than one point (%d bytes)", pageSize, PointSize))
	}
	return &MemStore{
		pageSize: pageSize,
		pages:    make([][]byte, 1), // slot 0 reserved for NilPage
		live:     make([]bool, 1),
	}
}

// PageSize implements Store.
func (m *MemStore) PageSize() int { return m.pageSize }

// Alloc implements Store.
func (m *MemStore) Alloc() (PageID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return NilPage, fmt.Errorf("eio: alloc on closed store")
	}
	m.allocs.Add(1)
	if n := len(m.free); n > 0 {
		id := m.free[n-1]
		m.free = m.free[:n-1]
		m.live[id] = true
		clear(m.pages[id])
		return id, nil
	}
	id := PageID(len(m.pages))
	m.pages = append(m.pages, make([]byte, m.pageSize))
	m.live = append(m.live, true)
	return id, nil
}

// Free implements Store.
func (m *MemStore) Free(id PageID) error {
	if id == NilPage {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.check(id); err != nil {
		return err
	}
	m.frees.Add(1)
	m.live[id] = false
	m.free = append(m.free, id)
	return nil
}

// Read implements Store. Concurrent reads proceed in parallel under a
// shared lock.
func (m *MemStore) Read(id PageID, buf []byte) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if err := m.check(id); err != nil {
		return err
	}
	if len(buf) < m.pageSize {
		return fmt.Errorf("eio: read buffer %d bytes: %w", len(buf), ErrPageSize)
	}
	m.reads.Add(1)
	copy(buf, m.pages[id])
	return nil
}

// Write implements Store.
func (m *MemStore) Write(id PageID, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.check(id); err != nil {
		return err
	}
	if len(buf) != m.pageSize {
		return fmt.Errorf("eio: write buffer %d bytes: %w", len(buf), ErrPageSize)
	}
	m.writes.Add(1)
	copy(m.pages[id], buf)
	return nil
}

// writeRaw overwrites a prefix of page id, modelling a torn write. A
// MemStore has no checksums, so the tear is silent — tests that need
// detection use a FileStore.
func (m *MemStore) writeRaw(id PageID, prefix []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.check(id); err != nil {
		return err
	}
	copy(m.pages[id], prefix)
	return nil
}

// Stats implements Store. Counters are read atomically; a snapshot taken
// while operations are in flight is exact per counter but not a single
// instant across all four (exact attribution requires exclusive use, as
// obs.Instrumented arranges).
func (m *MemStore) Stats() Stats {
	return Stats{
		Reads:  m.reads.Load(),
		Writes: m.writes.Load(),
		Allocs: m.allocs.Load(),
		Frees:  m.frees.Load(),
	}
}

// ResetStats implements Store.
func (m *MemStore) ResetStats() {
	m.reads.Store(0)
	m.writes.Store(0)
	m.allocs.Store(0)
	m.frees.Store(0)
}

// Pages implements Store.
func (m *MemStore) Pages() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n := 0
	for _, l := range m.live {
		if l {
			n++
		}
	}
	return n
}

// LivePageIDs implements PageLister, enumerating allocated pages in
// ascending id order.
func (m *MemStore) LivePageIDs() ([]PageID, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return nil, fmt.Errorf("eio: access to closed store")
	}
	var ids []PageID
	for id, l := range m.live {
		if l {
			ids = append(ids, PageID(id))
		}
	}
	return ids, nil
}

// Close implements Store.
func (m *MemStore) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.pages = nil
	m.live = nil
	m.free = nil
	return nil
}

func (m *MemStore) check(id PageID) error {
	if m.closed {
		return fmt.Errorf("eio: access to closed store")
	}
	if id == NilPage || int(id) >= len(m.pages) || !m.live[id] {
		return fmt.Errorf("eio: page %d: %w", id, ErrBadPage)
	}
	return nil
}
