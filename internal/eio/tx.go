package eio

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements TxStore, the transactional layer that gives every
// structure in the repository atomic multi-page updates with crash
// recovery.
//
// On-store layout (all pages live on the wrapped inner store):
//
//	directory record (RecordStore chain, immutable after creation)
//	    magic "TXDR" | version | anchor A id | anchor B id | WAL page ids
//	anchor pages A and B (one page each, written alternately)
//	    magic "TXAN" | seq | applied LSN | CRC-32C
//	WAL region (fixed set of preallocated pages)
//	    one redo record, always starting at WAL byte offset 0:
//	    magic "WALR" | page count m | LSN | m × (page id | page image) | CRC-32C
//
// Commit protocol (the order is the whole point):
//
//	 1. checkpoint barrier: Sync the inner store, making the PREVIOUS
//	    commit's anchor and in-place writes and this transaction's page
//	    allocations durable before the old WAL record is overwritten
//	 2. write the redo record into the WAL pages
//	 3. Sync — the commit point: after this the transaction is durable
//	 4. apply the buffered writes in place, in first-write order
//	 5. Sync — the apply barrier: the data a new anchor will vouch for
//	    must be durable before the anchor can possibly be
//	 6. write the new anchor (seq+1, LSN) into the alternate anchor slot
//	 7. apply deferred frees
//
// Step 5 looks redundant — replay would redo lost apply writes — but it
// is load-bearing: an anchor page embeds a checksum of its own payload,
// and crc32(m ‖ crc32(m)) is a length-dependent CONSTANT, so the outer
// page-trailer CRC is identical for every self-consistent anchor payload.
// A torn write that replaces the anchor payload therefore still passes
// the page checksum: the new anchor can survive a crash that dropped
// every apply write it vouches for. With the apply barrier first, an
// anchor claiming LSN N can only ever be durable after N's data is.
//
// Frees are never logged: replaying a record therefore never writes to a
// page the same transaction freed, which keeps replay idempotent. A crash
// between steps 3 and 6 leaks at most the freed pages and free-list
// ordering — exactly the class VerifyFile reports as drift, not damage,
// and that Scrub reclaims.
//
// OpenTxStore recovers: it picks the valid anchor with the highest seq,
// parses the WAL record, and redoes it iff its LSN is applied+1. Torn WAL
// pages (checksum failures) make the record parse fail — the transaction
// never reached its commit point and vanishes. Recovery then repairs the
// file for a clean VerifyFile: checksum-bad WAL pages are rewritten with
// zeros and invalid anchor slots are rewritten from the surviving one.

// WAL and anchor format constants.
const (
	walMagic    = "WALR" // redo-record magic
	anchorMagic = "TXAN" // anchor-page magic
	dirMagic    = "TXDR" // directory-record magic

	txVersion = 1

	walHdrSize    = 4 + 4 + 8 // magic + count + LSN
	walCRCSize    = 4
	anchorSize    = 4 + 8 + 8 + 4 // magic + seq + applied + CRC
	dirHdrSize    = 4 + 2 + 2 + 8 + 8 + 4
	minTxPageSize = 32

	// DefaultWALPages is the WAL capacity used when TxOptions.WALPages is
	// zero. With page size B it admits roughly DefaultWALPages·B/(B+8)
	// distinct page images per transaction.
	DefaultWALPages = 64
)

// TxOptions configures NewTxStore.
type TxOptions struct {
	// Disabled turns the TxStore into a pure pass-through with no WAL, no
	// buffering and no atomicity — the fast path for in-memory benchmark
	// runs where durability is meaningless. A disabled TxStore performs
	// exactly the I/Os of the wrapped store.
	Disabled bool
	// WALPages is the number of pages preallocated for the redo log; it
	// bounds how many distinct pages one transaction may write. Zero
	// selects DefaultWALPages.
	WALPages int
}

// RecoveryInfo describes what OpenTxStore had to do to the file.
type RecoveryInfo struct {
	// Replayed reports whether a committed-but-unapplied record was redone.
	Replayed bool
	// LSN is the log sequence number of the redone record (0 if none).
	LSN uint64
	// PagesRedone counts page images written back during replay.
	PagesRedone int
	// WALRepaired counts checksum-bad WAL pages rewritten with zeros.
	WALRepaired int
	// AnchorsRepaired counts invalid anchor slots rewritten.
	AnchorsRepaired int
}

// Dirty reports whether recovery changed the store at all.
func (r RecoveryInfo) Dirty() bool {
	return r.Replayed || r.WALRepaired > 0 || r.AnchorsRepaired > 0
}

// String implements fmt.Stringer.
func (r RecoveryInfo) String() string {
	if !r.Dirty() {
		return "clean (nothing to recover)"
	}
	return fmt.Sprintf("replayed=%v lsn=%d pages_redone=%d wal_repaired=%d anchors_repaired=%d",
		r.Replayed, r.LSN, r.PagesRedone, r.WALRepaired, r.AnchorsRepaired)
}

// TxStore wraps any Store with write-ahead-logged transactions. Outside a
// transaction every operation passes straight through. Inside one (Begin …
// Commit), Writes are buffered in memory, Frees are deferred, and Allocs
// pass through (ids must come from the inner store); Commit makes the
// whole batch atomic: after a crash at ANY backing-store operation, reopen
// with OpenTxStore and the store holds exactly the pre-transaction or the
// post-transaction image — never a mix.
//
// A TxStore is a wrapper in the sense documented on Store: it keeps no
// Stats of its own, so buffered transaction writes are counted only when
// they reach the inner store (WAL append + in-place apply).
//
// TxStore serializes transactions internally but, like every wrapper, does
// not add multi-writer semantics: one logical updater at a time, as
// documented on core.Synced.
type TxStore struct {
	mu    sync.RWMutex // reads share the lock so snapshot readers scale
	inner Store
	ps    int

	disabled bool

	dir      PageID // directory record id; pass to OpenTxStore
	anchors  [2]PageID
	walIDs   []PageID
	slot     int    // anchor slot holding the current state
	seq      uint64 // seq of the current anchor
	applied  uint64 // LSN of the last applied (and durable-on-replay) commit
	dirty    bool   // in-place writes since the last inner Sync
	recovery RecoveryInfo

	inTx      bool
	committed bool // this tx passed its commit point (step 3)
	writes    map[PageID][]byte
	order     []PageID // first-write order of writes
	allocs    []PageID
	frees     map[PageID]struct{}
	freeOrder []PageID

	// hook, when set, is invoked synchronously during Commit immediately
	// after the commit point (step 3) with the record's LSN and its encoded
	// bytes. This is the log-shipping tap: at that instant the record is
	// durable on the primary but the WAL region will be overwritten by the
	// NEXT commit, so a replication shipper must copy it out here or lose
	// it. The hook runs under the store lock — it must not call back into
	// the store and must not block.
	hook func(lsn uint64, record []byte)

	// Cumulative commit-phase timing, atomic so Timings can be read from
	// outside the store lock (a group-commit leader snapshots the deltas
	// around one Batch to attribute WAL and sync time to request spans).
	walNs  atomic.Int64 // time appending WAL record pages (step 2)
	syncNs atomic.Int64 // time in durability barriers (steps 1, 3, 5)
}

// TxTimings is a cumulative wall-time breakdown of Commit's expensive
// phases. Counters only ever grow; subtract two snapshots to attribute
// one commit's cost.
type TxTimings struct {
	// WALAppend is time spent writing redo-record pages (step 2).
	WALAppend time.Duration
	// Sync is time spent in the three durability barriers (steps 1, 3, 5).
	Sync time.Duration
}

// Sub returns the per-interval delta a − b.
func (a TxTimings) Sub(b TxTimings) TxTimings {
	return TxTimings{WALAppend: a.WALAppend - b.WALAppend, Sync: a.Sync - b.Sync}
}

// Timings returns the cumulative commit-phase timing counters. Safe to
// call concurrently with commits; a reader that snapshots before and
// after a commit it serialized with sees exactly that commit's cost.
func (t *TxStore) Timings() TxTimings {
	return TxTimings{
		WALAppend: time.Duration(t.walNs.Load()),
		Sync:      time.Duration(t.syncNs.Load()),
	}
}

var _ Store = (*TxStore)(nil)

// maxTxImages returns how many distinct page images one record can hold.
func maxTxImages(pageSize, walPages int) int {
	return (walPages*pageSize - walHdrSize - walCRCSize) / (8 + pageSize)
}

// NewTxStore initializes a transactional layer on inner, allocating its
// directory, anchor and WAL pages, and returns the handle. Persist
// Anchor() alongside your structure headers: it is the id OpenTxStore
// needs to reopen and recover the store.
func NewTxStore(inner Store, opts TxOptions) (*TxStore, error) {
	t := &TxStore{inner: inner, ps: inner.PageSize(), disabled: opts.Disabled}
	if t.disabled {
		return t, nil
	}
	if t.ps < minTxPageSize {
		return nil, fmt.Errorf("eio: tx: page size %d below minimum %d", t.ps, minTxPageSize)
	}
	walPages := opts.WALPages
	if walPages <= 0 {
		walPages = DefaultWALPages
	}
	if maxTxImages(t.ps, walPages) < 1 {
		return nil, fmt.Errorf("eio: tx: %d WAL pages of %d bytes cannot hold one page image", walPages, t.ps)
	}
	var err error
	for i := range t.anchors {
		if t.anchors[i], err = inner.Alloc(); err != nil {
			return nil, fmt.Errorf("eio: tx: alloc anchor: %w", err)
		}
	}
	t.walIDs = make([]PageID, walPages)
	for i := range t.walIDs {
		if t.walIDs[i], err = inner.Alloc(); err != nil {
			return nil, fmt.Errorf("eio: tx: alloc WAL page: %w", err)
		}
	}
	// Both anchor slots start valid; B wins with the higher seq.
	if err := t.writeAnchor(0, 1, 0); err != nil {
		return nil, err
	}
	if err := t.writeAnchor(1, 2, 0); err != nil {
		return nil, err
	}
	t.slot, t.seq, t.applied = 1, 2, 0
	rs := NewRecordStore(inner)
	if t.dir, err = rs.Put(t.encodeDir()); err != nil {
		return nil, fmt.Errorf("eio: tx: write directory: %w", err)
	}
	if err := t.syncInner(); err != nil {
		return nil, err
	}
	return t, nil
}

// OpenTxStore attaches to a transactional layer created by NewTxStore
// (dir is the id NewTxStore returned from Anchor) and runs crash
// recovery: a committed-but-unapplied record is replayed, a torn
// (uncommitted) record is discarded, and damaged WAL/anchor pages are
// repaired so VerifyFile reports the file clean. Recovery() tells what
// happened.
func OpenTxStore(inner Store, dir PageID) (*TxStore, error) {
	t := &TxStore{inner: inner, ps: inner.PageSize(), dir: dir}
	rs := NewRecordStore(inner)
	raw, err := rs.Get(dir)
	if err != nil {
		return nil, fmt.Errorf("eio: tx: read directory %d: %w", dir, err)
	}
	if err := t.decodeDir(raw); err != nil {
		return nil, err
	}
	if err := t.recover(); err != nil {
		return nil, err
	}
	return t, nil
}

// Anchor returns the directory record id to pass to OpenTxStore, or
// NilPage for a disabled (pass-through) TxStore.
func (t *TxStore) Anchor() PageID { return t.dir }

// AppliedLSN returns the log sequence number of the last committed
// transaction — the position a log-shipping stream is at. It is 0 for a
// fresh or disabled store and increases by exactly one per non-empty
// commit.
func (t *TxStore) AppliedLSN() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.applied
}

// SetCommitHook installs (or, with nil, removes) the commit tap described
// on the hook field: fn runs inside every Commit right after the commit
// point with the durable record's LSN and encoded bytes. fn must copy the
// bytes if it retains them, must not block, and must not call back into
// the store. One hook at a time; installing replaces the previous one.
func (t *TxStore) SetCommitHook(fn func(lsn uint64, record []byte)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.hook = fn
}

// WALCapacity returns the maximum number of distinct page images one
// commit record can carry (0 for a disabled store).
func (t *TxStore) WALCapacity() int {
	if t.disabled {
		return 0
	}
	return maxTxImages(t.ps, len(t.walIDs))
}

// Recovery reports what OpenTxStore did; zero for a freshly created store.
func (t *TxStore) Recovery() RecoveryInfo { return t.recovery }

// MetaPages returns every page owned by the transactional layer itself —
// directory chain, anchors and WAL region. Reachability walkers (Scrub)
// must treat these as live roots.
func (t *TxStore) MetaPages() ([]PageID, error) {
	if t.disabled {
		return nil, nil
	}
	rs := NewRecordStore(t.inner)
	ids, err := rs.Chain(t.dir)
	if err != nil {
		return nil, err
	}
	ids = append(ids, t.anchors[0], t.anchors[1])
	return append(ids, t.walIDs...), nil
}

// --- encoding ----------------------------------------------------------

func (t *TxStore) encodeDir() []byte {
	buf := make([]byte, dirHdrSize+8*len(t.walIDs))
	copy(buf, dirMagic)
	binary.LittleEndian.PutUint16(buf[4:], txVersion)
	binary.LittleEndian.PutUint64(buf[8:], uint64(t.anchors[0]))
	binary.LittleEndian.PutUint64(buf[16:], uint64(t.anchors[1]))
	binary.LittleEndian.PutUint32(buf[24:], uint32(len(t.walIDs)))
	for i, id := range t.walIDs {
		binary.LittleEndian.PutUint64(buf[dirHdrSize+8*i:], uint64(id))
	}
	return buf
}

func (t *TxStore) decodeDir(buf []byte) error {
	if len(buf) < dirHdrSize || string(buf[:4]) != dirMagic {
		return fmt.Errorf("eio: tx: bad directory record: %w", ErrBadRecord)
	}
	if v := binary.LittleEndian.Uint16(buf[4:]); v != txVersion {
		return fmt.Errorf("eio: tx: directory version %d unsupported", v)
	}
	t.anchors[0] = PageID(binary.LittleEndian.Uint64(buf[8:]))
	t.anchors[1] = PageID(binary.LittleEndian.Uint64(buf[16:]))
	n := int(binary.LittleEndian.Uint32(buf[24:]))
	if n < 1 || len(buf) < dirHdrSize+8*n {
		return fmt.Errorf("eio: tx: directory truncated: %w", ErrBadRecord)
	}
	t.walIDs = make([]PageID, n)
	for i := range t.walIDs {
		t.walIDs[i] = PageID(binary.LittleEndian.Uint64(buf[dirHdrSize+8*i:]))
	}
	return nil
}

// encodeAnchor serializes one anchor payload (page-size padded by caller).
func encodeAnchor(seq, applied uint64) []byte {
	buf := make([]byte, anchorSize)
	copy(buf, anchorMagic)
	binary.LittleEndian.PutUint64(buf[4:], seq)
	binary.LittleEndian.PutUint64(buf[12:], applied)
	binary.LittleEndian.PutUint32(buf[20:], crc32c(buf[:20]))
	return buf
}

// decodeAnchor parses an anchor payload. It never panics on hostile input.
func decodeAnchor(buf []byte) (seq, applied uint64, err error) {
	if len(buf) < anchorSize || string(buf[:4]) != anchorMagic {
		return 0, 0, fmt.Errorf("eio: tx: bad anchor magic: %w", ErrBadRecord)
	}
	if crc32c(buf[:20]) != binary.LittleEndian.Uint32(buf[20:]) {
		return 0, 0, fmt.Errorf("eio: tx: anchor: %w", ErrChecksum)
	}
	return binary.LittleEndian.Uint64(buf[4:]), binary.LittleEndian.Uint64(buf[12:]), nil
}

func (t *TxStore) writeAnchor(slot int, seq, applied uint64) error {
	page := make([]byte, t.ps)
	copy(page, encodeAnchor(seq, applied))
	if err := t.inner.Write(t.anchors[slot], page); err != nil {
		return fmt.Errorf("eio: tx: write anchor %d: %w", slot, err)
	}
	return nil
}

// walWrite is one page image inside a redo record.
type walWrite struct {
	id    PageID
	image []byte
}

// encodeWALRecord serializes a redo record for the given images.
func encodeWALRecord(lsn uint64, writes []walWrite, pageSize int) []byte {
	buf := make([]byte, walHdrSize+len(writes)*(8+pageSize)+walCRCSize)
	copy(buf, walMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(writes)))
	binary.LittleEndian.PutUint64(buf[8:], lsn)
	off := walHdrSize
	for _, w := range writes {
		binary.LittleEndian.PutUint64(buf[off:], uint64(w.id))
		copy(buf[off+8:], w.image)
		off += 8 + pageSize
	}
	binary.LittleEndian.PutUint32(buf[off:], crc32c(buf[:off]))
	return buf
}

// decodeWALRecord parses a redo record from the raw WAL bytes. Torn,
// bit-flipped or truncated input returns an error, never a panic and
// never a partially trusted record (the CRC covers everything).
func decodeWALRecord(buf []byte, pageSize int) (lsn uint64, writes []walWrite, err error) {
	if pageSize <= 0 {
		return 0, nil, fmt.Errorf("eio: tx: bad page size %d", pageSize)
	}
	if len(buf) < walHdrSize+walCRCSize || string(buf[:4]) != walMagic {
		return 0, nil, fmt.Errorf("eio: tx: no WAL record: %w", ErrBadRecord)
	}
	m := int(binary.LittleEndian.Uint32(buf[4:]))
	if m < 0 || m > (len(buf)-walHdrSize-walCRCSize)/(8+pageSize) {
		return 0, nil, fmt.Errorf("eio: tx: WAL record count %d exceeds region: %w", m, ErrBadRecord)
	}
	end := walHdrSize + m*(8+pageSize)
	if crc32c(buf[:end]) != binary.LittleEndian.Uint32(buf[end:]) {
		return 0, nil, fmt.Errorf("eio: tx: WAL record: %w", ErrChecksum)
	}
	lsn = binary.LittleEndian.Uint64(buf[8:])
	writes = make([]walWrite, 0, m)
	off := walHdrSize
	for i := 0; i < m; i++ {
		id := PageID(binary.LittleEndian.Uint64(buf[off:]))
		img := make([]byte, pageSize)
		copy(img, buf[off+8:off+8+pageSize])
		writes = append(writes, walWrite{id: id, image: img})
		off += 8 + pageSize
	}
	return lsn, writes, nil
}

// WALPageImage is one page image inside a decoded redo record, as exposed
// by DecodeWALRecord to consumers outside the transactional layer
// (replication appliers, offline inspectors).
type WALPageImage struct {
	ID    PageID
	Image []byte
}

// DecodeWALRecord parses the raw bytes of a TxStore redo record — the unit
// a commit hook ships — and returns its LSN and page images in first-write
// order. Torn, bit-flipped or truncated input returns an error (wrapping
// ErrBadRecord or ErrChecksum), never a partially trusted record.
func DecodeWALRecord(buf []byte, pageSize int) (lsn uint64, pages []WALPageImage, err error) {
	lsn, writes, err := decodeWALRecord(buf, pageSize)
	if err != nil {
		return 0, nil, err
	}
	pages = make([]WALPageImage, len(writes))
	for i, w := range writes {
		pages[i] = WALPageImage{ID: w.id, Image: w.image}
	}
	return lsn, pages, nil
}

// --- recovery ----------------------------------------------------------

// recover reads the anchors and the WAL, replays a committed record, and
// repairs whatever the crash tore. Called with no lock (single-owner
// during open).
func (t *TxStore) recover() error {
	var (
		seqs    [2]uint64
		applied [2]uint64
		valid   [2]bool
	)
	buf := make([]byte, t.ps)
	for i := 0; i < 2; i++ {
		if err := t.inner.Read(t.anchors[i], buf); err != nil {
			continue // torn anchor: slot invalid, repaired below
		}
		s, a, err := decodeAnchor(buf)
		if err != nil {
			continue
		}
		seqs[i], applied[i], valid[i] = s, a, true
	}
	switch {
	case valid[0] && valid[1]:
		if seqs[0] >= seqs[1] {
			t.slot = 0
		} else {
			t.slot = 1
		}
	case valid[0]:
		t.slot = 0
	case valid[1]:
		t.slot = 1
	default:
		return fmt.Errorf("eio: tx: both anchor slots invalid: %w", ErrChecksum)
	}
	t.seq, t.applied = seqs[t.slot], applied[t.slot]

	// Read the WAL region; checksum-bad pages contribute zero bytes (the
	// record CRC then fails, which is the torn-tail discard) and are
	// remembered for repair.
	wal := make([]byte, 0, len(t.walIDs)*t.ps)
	var torn []PageID
	for _, id := range t.walIDs {
		if err := t.inner.Read(id, buf); err != nil {
			torn = append(torn, id)
			wal = append(wal, make([]byte, t.ps)...)
			continue
		}
		wal = append(wal, buf[:t.ps]...)
	}

	lsn, writes, err := decodeWALRecord(wal, t.ps)
	if err == nil && lsn == t.applied+1 {
		// Committed but (possibly) not fully applied: redo. Idempotent —
		// images never target pages the same transaction freed, and the
		// anchor is bumped only after every image is back in place.
		for _, w := range writes {
			if err := t.inner.Write(w.id, w.image); err != nil {
				return fmt.Errorf("eio: tx: replay page %d: %w", w.id, err)
			}
		}
		// Same apply barrier as Commit: the redone images must be durable
		// before an anchor claiming this LSN can be.
		if err := t.syncInner(); err != nil {
			return fmt.Errorf("eio: tx: replay sync: %w", err)
		}
		t.applied = lsn
		t.seq++
		t.slot = 1 - t.slot
		if err := t.writeAnchor(t.slot, t.seq, t.applied); err != nil {
			return err
		}
		t.recovery.Replayed = true
		t.recovery.LSN = lsn
		t.recovery.PagesRedone = len(writes)
		valid[t.slot] = true // just rewritten
	}

	// Repair torn WAL pages so VerifyFile comes back clean. A page inside
	// a valid record's span can never be in torn (its bytes passed the
	// CRC), so zeroing these loses nothing.
	zero := make([]byte, t.ps)
	for _, id := range torn {
		if err := t.inner.Write(id, zero); err != nil {
			return fmt.Errorf("eio: tx: repair WAL page %d: %w", id, err)
		}
		t.recovery.WALRepaired++
	}
	// Repair an invalid anchor slot from the surviving one, keeping its
	// seq strictly below the winner so the winner stays authoritative.
	for i := 0; i < 2; i++ {
		if valid[i] || i == t.slot {
			continue
		}
		var lower uint64
		if t.seq > 0 {
			lower = t.seq - 1
		}
		if err := t.writeAnchor(i, lower, t.applied); err != nil {
			return err
		}
		t.recovery.AnchorsRepaired++
	}
	if t.recovery.Dirty() {
		if err := t.syncInner(); err != nil {
			return err
		}
	}
	return nil
}

// --- transactions ------------------------------------------------------

// Begin starts a transaction. Transactions do not nest.
func (t *TxStore) Begin() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.inTx {
		return fmt.Errorf("eio: tx: transaction already open")
	}
	t.inTx = true
	t.committed = false
	if !t.disabled {
		t.writes = make(map[PageID][]byte)
		t.order = t.order[:0]
		t.allocs = t.allocs[:0]
		t.frees = make(map[PageID]struct{})
		t.freeOrder = t.freeOrder[:0]
	}
	return nil
}

// Commit makes the open transaction durable and atomic. On error the
// transaction stays open (the disk may hold a partial commit — recovery
// via OpenTxStore resolves it); call Rollback to discard the buffers.
func (t *TxStore) Commit() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.inTx {
		return fmt.Errorf("eio: tx: no open transaction")
	}
	if t.disabled {
		t.inTx = false
		return nil
	}
	if len(t.order) == 0 && len(t.freeOrder) == 0 {
		// Nothing to make atomic. Allocations, if any, still need the
		// checkpoint barrier so they survive reopen.
		if len(t.allocs) > 0 {
			if err := t.syncInnerTimed(); err != nil {
				return err
			}
			t.dirty = false
		}
		t.endTxLocked()
		return nil
	}

	// 1. Checkpoint barrier: the previous commit's in-place state and this
	// transaction's allocations must be durable before the WAL record that
	// protects them is overwritten.
	if t.dirty || len(t.allocs) > 0 {
		if err := t.syncInnerTimed(); err != nil {
			return fmt.Errorf("eio: tx: checkpoint sync: %w", err)
		}
		t.dirty = false
	}

	// 2. Append the redo record over the WAL region.
	lsn := t.applied + 1
	images := make([]walWrite, 0, len(t.order))
	for _, id := range t.order {
		images = append(images, walWrite{id: id, image: t.writes[id]})
	}
	rec := encodeWALRecord(lsn, images, t.ps)
	if len(rec) > len(t.walIDs)*t.ps {
		return fmt.Errorf("eio: tx: %d page images exceed WAL capacity %d: %w",
			len(images), maxTxImages(t.ps, len(t.walIDs)), ErrTxOverflow)
	}
	full := rec // the append loop below consumes rec; the commit hook needs it whole
	page := make([]byte, t.ps)
	walStart := time.Now()
	for i := 0; len(rec) > 0; i++ {
		n := copy(page, rec)
		for j := n; j < t.ps; j++ {
			page[j] = 0
		}
		if err := t.inner.Write(t.walIDs[i], page); err != nil {
			return fmt.Errorf("eio: tx: WAL append: %w", err)
		}
		rec = rec[n:]
	}
	t.walNs.Add(int64(time.Since(walStart)))

	// 3. Commit point.
	if err := t.syncInnerTimed(); err != nil {
		return fmt.Errorf("eio: tx: commit sync: %w", err)
	}
	t.committed = true
	if t.hook != nil {
		t.hook(lsn, full)
	}

	// 4. Apply in place, in first-write order. A crash anywhere in here
	// is resolved by replay.
	for _, id := range t.order {
		if err := t.inner.Write(id, t.writes[id]); err != nil {
			return fmt.Errorf("eio: tx: apply page %d: %w", id, err)
		}
	}

	// 5. Apply barrier: the anchor about to claim this LSN must never
	// become durable ahead of the data it vouches for (see the protocol
	// note at the top of the file — a torn anchor write can pass the page
	// checksum, so ordering, not checksums, carries this guarantee).
	if err := t.syncInnerTimed(); err != nil {
		return fmt.Errorf("eio: tx: apply sync: %w", err)
	}

	// 6–7. Bump the anchor, release deferred frees.
	t.applied = lsn
	t.seq++
	t.slot = 1 - t.slot
	if err := t.writeAnchor(t.slot, t.seq, t.applied); err != nil {
		return err
	}
	for _, id := range t.freeOrder {
		if err := t.inner.Free(id); err != nil {
			return fmt.Errorf("eio: tx: deferred free of page %d: %w", id, err)
		}
	}
	t.dirty = true
	t.endTxLocked()
	return nil
}

// Rollback discards the open transaction. Pages allocated inside it are
// freed (best-effort) unless the transaction already passed its commit
// point — then they belong to the committed image and are left alone.
func (t *TxStore) Rollback() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.inTx {
		return fmt.Errorf("eio: tx: no open transaction")
	}
	if !t.disabled && !t.committed {
		for i := len(t.allocs) - 1; i >= 0; i-- {
			_ = t.inner.Free(t.allocs[i])
		}
	}
	t.endTxLocked()
	return nil
}

// endTxLocked clears transaction state. Callers hold mu.
func (t *TxStore) endTxLocked() {
	t.inTx = false
	t.committed = false
	t.writes = nil
	t.order = nil
	t.allocs = nil
	t.frees = nil
	t.freeOrder = nil
}

// Update runs fn inside one transaction: Begin, fn, then Commit on
// success or Rollback on failure. This is the unit core.Durable maps
// index operations onto.
func (t *TxStore) Update(fn func() error) error {
	if err := t.Begin(); err != nil {
		return err
	}
	if err := fn(); err != nil {
		_ = t.Rollback()
		return err
	}
	if err := t.Commit(); err != nil {
		_ = t.Rollback()
		return err
	}
	return nil
}

// InTx reports whether a transaction is open.
func (t *TxStore) InTx() bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.inTx
}

func (t *TxStore) syncInner() error {
	if s, ok := t.inner.(syncer); ok {
		return s.Sync()
	}
	return nil
}

// syncInnerTimed is syncInner with the barrier's wall time folded into
// the cumulative sync counter; Commit uses it for its three barriers.
func (t *TxStore) syncInnerTimed() error {
	start := time.Now()
	err := t.syncInner()
	t.syncNs.Add(int64(time.Since(start)))
	return err
}

// --- Store interface ---------------------------------------------------

// PageSize implements Store.
func (t *TxStore) PageSize() int { return t.ps }

// Alloc implements Store. Allocations pass through even inside a
// transaction (page ids must come from the inner store); a rolled-back
// transaction frees them again, and a crash leaks at most unreferenced
// pages, which Scrub reclaims.
func (t *TxStore) Alloc() (PageID, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	id, err := t.inner.Alloc()
	if err != nil {
		return NilPage, err
	}
	if t.inTx && !t.disabled {
		t.allocs = append(t.allocs, id)
	}
	return id, nil
}

// Free implements Store. Inside a transaction the free is deferred until
// after the commit point, so a crash can never hand a committed page's
// storage to a new owner mid-transaction.
func (t *TxStore) Free(id PageID) error {
	if id == NilPage {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.inTx || t.disabled {
		return t.inner.Free(id)
	}
	if _, dead := t.frees[id]; dead {
		return fmt.Errorf("eio: tx: page %d already freed: %w", id, ErrBadPage)
	}
	t.frees[id] = struct{}{}
	t.freeOrder = append(t.freeOrder, id)
	if _, ok := t.writes[id]; ok {
		delete(t.writes, id)
		for i, w := range t.order {
			if w == id {
				t.order = append(t.order[:i], t.order[i+1:]...)
				break
			}
		}
	}
	return nil
}

// Read implements Store: buffered transaction writes win over the inner
// store, so a transaction reads its own uncommitted data. Reads take only
// the shared lock (the transaction buffers are mutated exclusively), so
// concurrent readers proceed in parallel.
func (t *TxStore) Read(id PageID, buf []byte) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if !t.inTx || t.disabled {
		return t.inner.Read(id, buf)
	}
	if len(buf) < t.ps {
		return fmt.Errorf("eio: read buffer %d bytes: %w", len(buf), ErrPageSize)
	}
	if _, dead := t.frees[id]; dead {
		return fmt.Errorf("eio: tx: page %d is freed: %w", id, ErrBadPage)
	}
	if data, ok := t.writes[id]; ok {
		copy(buf, data)
		return nil
	}
	return t.inner.Read(id, buf)
}

// Write implements Store. Inside a transaction the page image is buffered
// until Commit; the inner store is untouched.
func (t *TxStore) Write(id PageID, buf []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.inTx || t.disabled {
		return t.inner.Write(id, buf)
	}
	if len(buf) != t.ps {
		return fmt.Errorf("eio: write buffer %d bytes: %w", len(buf), ErrPageSize)
	}
	if _, dead := t.frees[id]; dead {
		return fmt.Errorf("eio: tx: page %d is freed: %w", id, ErrBadPage)
	}
	if _, ok := t.writes[id]; !ok {
		if len(t.writes)+1 > maxTxImages(t.ps, len(t.walIDs)) {
			return fmt.Errorf("eio: tx: transaction exceeds WAL capacity of %d page images: %w",
				maxTxImages(t.ps, len(t.walIDs)), ErrTxOverflow)
		}
		t.order = append(t.order, id)
	}
	data := make([]byte, t.ps)
	copy(data, buf)
	t.writes[id] = data
	return nil
}

// Sync delegates to the inner store's durability barrier, if any.
func (t *TxStore) Sync() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.syncInner()
}

// writeRaw delegates torn writes so crash simulators compose with TxStore.
func (t *TxStore) writeRaw(id PageID, prefix []byte) error {
	rw, ok := t.inner.(rawWriter)
	if !ok {
		return fmt.Errorf("eio: inner store does not support raw writes")
	}
	return rw.writeRaw(id, prefix)
}

// Stats implements Store, reporting the inner store's counters: buffered
// transaction writes count only when they reach the backing store.
func (t *TxStore) Stats() Stats { return t.inner.Stats() }

// ResetStats implements Store by delegating to the inner store. An open
// transaction's buffers are NOT reset — only accounting is.
func (t *TxStore) ResetStats() { t.inner.ResetStats() }

// Pages implements Store, counting deferred frees as already gone.
func (t *TxStore) Pages() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.inner.Pages()
	if t.inTx && !t.disabled {
		n -= len(t.frees)
	}
	return n
}

// LivePageIDs implements PageLister when the inner store does.
func (t *TxStore) LivePageIDs() ([]PageID, error) {
	pl, ok := t.inner.(PageLister)
	if !ok {
		return nil, fmt.Errorf("eio: tx: inner store cannot enumerate pages")
	}
	return pl.LivePageIDs()
}

// Close rolls back any open transaction and closes the inner store.
func (t *TxStore) Close() error {
	t.mu.Lock()
	inTx := t.inTx
	t.mu.Unlock()
	if inTx {
		_ = t.Rollback()
	}
	return t.inner.Close()
}
