package eio

import (
	"encoding/binary"
	"hash/crc32"
)

// castagnoli is the CRC-32C polynomial table used for all on-disk
// checksums (the same polynomial iSCSI, ext4 and Btrfs use; hardware
// accelerated on amd64 and arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// crc32c returns the CRC-32C of b.
func crc32c(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// pageCRC computes the checksum stored in a page's trailer. The page id is
// mixed in ahead of the contents so that a page written to the wrong
// offset (a misdirected write) also fails verification, not just a page
// whose bytes were damaged in place.
func pageCRC(id PageID, data []byte) uint32 {
	var idb [8]byte
	binary.LittleEndian.PutUint64(idb[:], uint64(id))
	c := crc32.Update(0, castagnoli, idb[:])
	return crc32.Update(c, castagnoli, data)
}
