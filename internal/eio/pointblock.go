package eio

import (
	"encoding/binary"
	"fmt"

	"rangesearch/internal/geom"
)

// Point-block helpers. A point block is a page holding up to
// B = PageSize/PointSize points, packed as little-endian (x, y) int64
// pairs with no header: the owning structure's catalog tracks the count,
// exactly as the paper's catalog blocks track x-ranges and y-intervals.

// PutPoint serializes p at offset off of buf.
func PutPoint(buf []byte, off int, p geom.Point) {
	binary.LittleEndian.PutUint64(buf[off:], uint64(p.X))
	binary.LittleEndian.PutUint64(buf[off+8:], uint64(p.Y))
}

// GetPoint deserializes the point at offset off of buf.
func GetPoint(buf []byte, off int) geom.Point {
	return geom.Point{
		X: int64(binary.LittleEndian.Uint64(buf[off:])),
		Y: int64(binary.LittleEndian.Uint64(buf[off+8:])),
	}
}

// EncodePoints packs pts into buf starting at offset 0 and returns the
// number of bytes used. It panics if pts does not fit.
func EncodePoints(buf []byte, pts []geom.Point) int {
	if len(pts)*PointSize > len(buf) {
		panic(fmt.Sprintf("eio: %d points do not fit in %d bytes", len(pts), len(buf)))
	}
	for i, p := range pts {
		PutPoint(buf, i*PointSize, p)
	}
	return len(pts) * PointSize
}

// DecodePoints unpacks n points from buf, appending to dst.
func DecodePoints(dst []geom.Point, buf []byte, n int) []geom.Point {
	for i := 0; i < n; i++ {
		dst = append(dst, GetPoint(buf, i*PointSize))
	}
	return dst
}

// WritePointBlock allocates (if id is NilPage) or overwrites a page with
// pts and returns the page id. len(pts) must be at most BlockCapacity.
func WritePointBlock(s Store, id PageID, pts []geom.Point) (PageID, error) {
	if len(pts) > BlockCapacity(s.PageSize()) {
		return NilPage, fmt.Errorf("eio: %d points exceed block capacity %d", len(pts), BlockCapacity(s.PageSize()))
	}
	if id == NilPage {
		var err error
		id, err = s.Alloc()
		if err != nil {
			return NilPage, err
		}
	}
	buf := make([]byte, s.PageSize())
	EncodePoints(buf, pts)
	if err := s.Write(id, buf); err != nil {
		return NilPage, err
	}
	return id, nil
}

// ReadPointBlock reads n points from page id, appending to dst.
func ReadPointBlock(dst []geom.Point, s Store, id PageID, n int) ([]geom.Point, error) {
	buf := make([]byte, s.PageSize())
	if err := s.Read(id, buf); err != nil {
		return dst, err
	}
	return DecodePoints(dst, buf, n), nil
}
