package eio

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestRetryTransient checks that a transient-fault burst shorter than the
// attempt budget is absorbed, a longer one surfaces the wrapped error, and
// permanent faults pass through without any retry.
func TestRetryTransient(t *testing.T) {
	mem := NewMemStore(64)
	f := NewFaultStore(mem)
	f.SetTransient(true)
	var slept []time.Duration
	r := NewRetryStore(f, RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
		MaxDelay:    4 * time.Millisecond,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	})
	defer r.Close()

	id, err := r.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x5A}, 64)

	// Burst of 3 transient faults, budget of 4 attempts: succeeds.
	f.FailRun(OpWrite, 3)
	if err := r.Write(id, data); err != nil {
		t.Fatalf("write under 3-fault burst: %v", err)
	}
	if want := []time.Duration{1 * time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond}; len(slept) != len(want) {
		t.Fatalf("backoff schedule %v, want %v", slept, want)
	} else {
		for i := range want {
			if slept[i] != want[i] {
				t.Fatalf("backoff schedule %v, want %v", slept, want)
			}
		}
	}
	buf := make([]byte, 64)
	if err := r.Read(id, buf); err != nil || !bytes.Equal(buf, data) {
		t.Fatalf("data lost across retried write: %v", err)
	}
	retried, gaveUp := r.Retries()
	if retried != 3 || gaveUp != 0 {
		t.Fatalf("Retries() = (%d, %d), want (3, 0)", retried, gaveUp)
	}

	// Burst of 4: every attempt fails, the final error wraps both markers.
	f.FailRun(OpWrite, 4)
	err = r.Write(id, data)
	if !errors.Is(err, ErrTransient) || !errors.Is(err, ErrInjected) {
		t.Fatalf("exhausted budget: want ErrTransient+ErrInjected, got %v", err)
	}
	if _, gaveUp = r.Retries(); gaveUp != 1 {
		t.Fatalf("gaveUp = %d, want 1", gaveUp)
	}

	// The backoff delay caps at MaxDelay.
	for _, d := range slept {
		if d > 4*time.Millisecond {
			t.Fatalf("delay %v exceeds MaxDelay", d)
		}
	}

	// Permanent faults are not retried.
	f.SetTransient(false)
	slept = slept[:0]
	f.FailRun(OpRead, 1)
	if err := r.Read(id, buf); !errors.Is(err, ErrInjected) || errors.Is(err, ErrTransient) {
		t.Fatalf("permanent fault: %v", err)
	}
	if len(slept) != 0 {
		t.Fatalf("permanent fault triggered %d retries", len(slept))
	}
}

// TestRetryConcurrentReaders drives a RetryStore-over-FaultStore stack
// from many reader goroutines while every read has a 20% chance of a
// transient fault. With an attempt budget that makes exhaustion
// astronomically unlikely (0.2^12), the absorption claim becomes a
// concurrency claim: no fault may escape to any reader, no page may read
// back wrong, and the retry counters must record the absorbed faults
// without racing. Run under -race for the full claim.
func TestRetryConcurrentReaders(t *testing.T) {
	const (
		pageSize = 64
		npages   = 32
		readers  = 8
		reads    = 2000
	)
	mem := NewMemStore(pageSize)
	f := NewFaultStore(mem)
	f.Seed(1)
	f.SetTransient(true)
	r := NewRetryStore(f, RetryPolicy{
		MaxAttempts: 12,
		Sleep:       func(time.Duration) {}, // full schedule, no wall clock
	})
	defer r.Close()

	// Populate fault-free so every page has a known pattern.
	ids := make([]PageID, npages)
	for i := range ids {
		id, err := r.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		if err := r.Write(id, bytes.Repeat([]byte{byte(i + 1)}, pageSize)); err != nil {
			t.Fatal(err)
		}
	}

	f.FailProb(OpRead, 0.2)
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, pageSize)
			for i := 0; i < reads; i++ {
				k := (g + i) % npages
				if err := r.Read(ids[k], buf); err != nil {
					errs <- fmt.Errorf("reader %d read %d: %w", g, i, err)
					return
				}
				if buf[0] != byte(k+1) || buf[pageSize-1] != byte(k+1) {
					errs <- fmt.Errorf("reader %d: page %d holds 0x%02x, want 0x%02x", g, ids[k], buf[0], k+1)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	retried, gaveUp := r.Retries()
	if gaveUp != 0 {
		t.Fatalf("gaveUp = %d, want 0", gaveUp)
	}
	// 16k reads at p=0.2 make zero injected faults statistically impossible;
	// zero retries would mean the wrapper stopped retrying, not good luck.
	if retried == 0 {
		t.Fatal("no retries recorded; the fault injector exercised nothing")
	}
	t.Logf("absorbed %d transient faults across %d concurrent reads", retried, readers*reads)
}

// TestRetryStatsHonest pins the wrapper rule: every physical attempt that
// reaches the backing store is counted, so retries are visible in Stats.
func TestRetryStatsHonest(t *testing.T) {
	mem := NewMemStore(64)
	f := NewFaultStore(mem)
	f.SetTransient(true)
	r := NewRetryStore(f, RetryPolicy{Sleep: func(time.Duration) {}})
	id, err := r.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	mem.ResetStats()
	f.FailRun(OpWrite, 2)
	if err := r.Write(id, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	// FaultStore blocks the first two attempts before they reach mem, so the
	// backing store saw exactly the one successful write.
	if got := mem.Stats().Writes; got != 1 {
		t.Fatalf("backing writes = %d, want 1", got)
	}
}
