package eio

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// TestRetryTransient checks that a transient-fault burst shorter than the
// attempt budget is absorbed, a longer one surfaces the wrapped error, and
// permanent faults pass through without any retry.
func TestRetryTransient(t *testing.T) {
	mem := NewMemStore(64)
	f := NewFaultStore(mem)
	f.SetTransient(true)
	var slept []time.Duration
	r := NewRetryStore(f, RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
		MaxDelay:    4 * time.Millisecond,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	})
	defer r.Close()

	id, err := r.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x5A}, 64)

	// Burst of 3 transient faults, budget of 4 attempts: succeeds.
	f.FailRun(OpWrite, 3)
	if err := r.Write(id, data); err != nil {
		t.Fatalf("write under 3-fault burst: %v", err)
	}
	if want := []time.Duration{1 * time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond}; len(slept) != len(want) {
		t.Fatalf("backoff schedule %v, want %v", slept, want)
	} else {
		for i := range want {
			if slept[i] != want[i] {
				t.Fatalf("backoff schedule %v, want %v", slept, want)
			}
		}
	}
	buf := make([]byte, 64)
	if err := r.Read(id, buf); err != nil || !bytes.Equal(buf, data) {
		t.Fatalf("data lost across retried write: %v", err)
	}
	retried, gaveUp := r.Retries()
	if retried != 3 || gaveUp != 0 {
		t.Fatalf("Retries() = (%d, %d), want (3, 0)", retried, gaveUp)
	}

	// Burst of 4: every attempt fails, the final error wraps both markers.
	f.FailRun(OpWrite, 4)
	err = r.Write(id, data)
	if !errors.Is(err, ErrTransient) || !errors.Is(err, ErrInjected) {
		t.Fatalf("exhausted budget: want ErrTransient+ErrInjected, got %v", err)
	}
	if _, gaveUp = r.Retries(); gaveUp != 1 {
		t.Fatalf("gaveUp = %d, want 1", gaveUp)
	}

	// The backoff delay caps at MaxDelay.
	for _, d := range slept {
		if d > 4*time.Millisecond {
			t.Fatalf("delay %v exceeds MaxDelay", d)
		}
	}

	// Permanent faults are not retried.
	f.SetTransient(false)
	slept = slept[:0]
	f.FailRun(OpRead, 1)
	if err := r.Read(id, buf); !errors.Is(err, ErrInjected) || errors.Is(err, ErrTransient) {
		t.Fatalf("permanent fault: %v", err)
	}
	if len(slept) != 0 {
		t.Fatalf("permanent fault triggered %d retries", len(slept))
	}
}

// TestRetryStatsHonest pins the wrapper rule: every physical attempt that
// reaches the backing store is counted, so retries are visible in Stats.
func TestRetryStatsHonest(t *testing.T) {
	mem := NewMemStore(64)
	f := NewFaultStore(mem)
	f.SetTransient(true)
	r := NewRetryStore(f, RetryPolicy{Sleep: func(time.Duration) {}})
	id, err := r.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	mem.ResetStats()
	f.FailRun(OpWrite, 2)
	if err := r.Write(id, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	// FaultStore blocks the first two attempts before they reach mem, so the
	// backing store saw exactly the one successful write.
	if got := mem.Stats().Writes; got != 1 {
		t.Fatalf("backing writes = %d, want 1", got)
	}
}
