package eio

import (
	"path/filepath"
	"testing"
)

// TestScrubReclaimsLeaks allocates pages, declares only some reachable, and
// checks FindLeaks (read-only) and Scrub (reclaiming) agree.
func TestScrubReclaimsLeaks(t *testing.T) {
	mem := NewMemStore(64)
	defer mem.Close()
	var ids []PageID
	for i := 0; i < 6; i++ {
		id, err := mem.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	reachable := ids[:4]

	rep, err := FindLeaks(mem, reachable)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Allocated != 6 || rep.Reachable != 4 || len(rep.Leaked) != 2 || rep.Freed {
		t.Fatalf("FindLeaks: %+v", rep)
	}
	if mem.Pages() != 6 {
		t.Fatal("FindLeaks modified the store")
	}

	rep, err = Scrub(mem, reachable)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Freed || len(rep.Leaked) != 2 {
		t.Fatalf("Scrub: %+v", rep)
	}
	if mem.Pages() != 4 {
		t.Fatalf("after Scrub: %d pages, want 4", mem.Pages())
	}

	// A second pass finds nothing.
	rep, err = Scrub(mem, reachable)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Leaked) != 0 {
		t.Fatalf("second Scrub leaked %v", rep.Leaked)
	}
}

// TestFileStoreLivePageIDs checks the on-disk lister: allocated pages are
// live, freed pages are not, and a torn (checksum-bad) page is reported
// live so Scrub can reclaim it.
func TestFileStoreLivePageIDs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "live.db")
	fs, err := CreateFileStore(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	a, _ := fs.Alloc()
	b, _ := fs.Alloc()
	c, err := fs.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Free(b); err != nil {
		t.Fatal(err)
	}
	// Tear page c: its trailer checksum no longer matches.
	if err := fs.writeRaw(c, []byte{0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	live, err := fs.LivePageIDs()
	if err != nil {
		t.Fatal(err)
	}
	want := map[PageID]bool{a: true, c: true}
	if len(live) != len(want) {
		t.Fatalf("live = %v, want ids %v", live, want)
	}
	for _, id := range live {
		if !want[id] {
			t.Fatalf("live = %v, want ids %v", live, want)
		}
	}
}

// TestScrubTxMetaPages checks the transactional composition: the WAL,
// anchor and directory pages are infrastructure, reachable only through
// TxStore.MetaPages — a scrub that includes them reclaims nothing.
func TestScrubTxMetaPages(t *testing.T) {
	mem := NewMemStore(128)
	tx, err := NewTxStore(mem, TxOptions{WALPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	id, err := tx.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	meta, err := tx.MetaPages()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Scrub(tx, append(meta, id))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Leaked) != 0 {
		t.Fatalf("scrub reclaimed tx pages: %+v", rep)
	}
	// Without MetaPages the infrastructure would be collected — pin that
	// the set is genuinely load-bearing.
	rep, err = FindLeaks(tx, []PageID{id})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Leaked) != len(meta) {
		t.Fatalf("FindLeaks without meta: %d leaked, want %d", len(rep.Leaked), len(meta))
	}
}
