package eio

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"rangesearch/internal/geom"
)

// Property: any byte payload round-trips through a record chain, on any
// page size, and occupies exactly PagesFor(len) pages.
func TestQuickRecordRoundTrip(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			data := make([]byte, rng.Intn(3000))
			rng.Read(data)
			vals[0] = reflect.ValueOf(data)
			vals[1] = reflect.ValueOf(32 + rng.Intn(200))
		},
	}
	err := quick.Check(func(data []byte, pageSize int) bool {
		store := NewMemStore(pageSize)
		defer store.Close()
		rs := NewRecordStore(store)
		id, err := rs.Put(data)
		if err != nil {
			return false
		}
		got, err := rs.Get(id)
		if err != nil || !bytes.Equal(got, data) {
			return false
		}
		return store.Pages() == rs.PagesFor(len(data))
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// Property: points round-trip through the block codec bit-exactly.
func TestQuickPointCodec(t *testing.T) {
	err := quick.Check(func(x, y int64) bool {
		buf := make([]byte, PointSize)
		PutPoint(buf, 0, geom.Point{X: x, Y: y})
		p := GetPoint(buf, 0)
		return p.X == x && p.Y == y
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

// Property: a pool-wrapped store is observationally equivalent to the
// bare store for any interleaving of writes and reads.
func TestQuickPoolEquivalence(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			vals[0] = reflect.ValueOf(rng.Int63())
			vals[1] = reflect.ValueOf(1 + rng.Intn(6)) // pool capacity
			vals[2] = reflect.ValueOf(20 + rng.Intn(200))
		},
	}
	err := quick.Check(func(seed int64, capacity, ops int) bool {
		rng := rand.New(rand.NewSource(seed))
		direct := NewMemStore(64)
		pooled := NewPool(NewMemStore(64), capacity)
		defer direct.Close()
		defer pooled.Close()
		var ids []PageID
		for i := 0; i < ops; i++ {
			switch {
			case len(ids) == 0 || rng.Intn(8) == 0:
				a, err1 := direct.Alloc()
				b, err2 := pooled.Alloc()
				if err1 != nil || err2 != nil || a != b {
					return false
				}
				ids = append(ids, a)
			case rng.Intn(2) == 0:
				id := ids[rng.Intn(len(ids))]
				data := make([]byte, 64)
				rng.Read(data)
				if direct.Write(id, data) != nil || pooled.Write(id, data) != nil {
					return false
				}
			default:
				id := ids[rng.Intn(len(ids))]
				b1 := make([]byte, 64)
				b2 := make([]byte, 64)
				if direct.Read(id, b1) != nil || pooled.Read(id, b2) != nil {
					return false
				}
				if !bytes.Equal(b1, b2) {
					return false
				}
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// Property: Stats arithmetic is consistent: (a+b)-b == a.
func TestQuickStatsArithmetic(t *testing.T) {
	err := quick.Check(func(r1, w1, a1, f1, r2, w2, a2, f2 uint32) bool {
		a := Stats{Reads: uint64(r1), Writes: uint64(w1), Allocs: uint64(a1), Frees: uint64(f1)}
		b := Stats{Reads: uint64(r2), Writes: uint64(w2), Allocs: uint64(a2), Frees: uint64(f2)}
		if a.Add(b).Sub(b) != a {
			return false
		}
		return a.IOs() == a.Reads+a.Writes
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
