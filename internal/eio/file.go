package eio

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"
)

// FileStore is a Store backed by a real file. It lets every structure in
// this repository persist to and reopen from disk, exercising the exact
// code path the simulator models.
//
// Format v2 (the default for new stores) is crash-aware:
//
//   - The file starts with two fixed 64-byte superblock slots. Every flush
//     writes one slot, alternating, with a monotonically increasing
//     sequence number and a CRC-32C. Reopening picks the valid slot with
//     the highest sequence number, so a crash that tears one superblock
//     write never loses the store: the previous superblock still commits a
//     consistent (if slightly older) state.
//   - Every page is stored with an 8-byte trailer: a CRC-32C over the page
//     id and contents (catching both bit rot and misdirected writes) plus a
//     flag word distinguishing live data pages from free-list nodes. A
//     mismatch surfaces as ErrChecksum on Read — torn or corrupted pages
//     are detected, never silently returned.
//   - Freed pages are rewritten as zeroed free-list nodes (next pointer in
//     the first 8 bytes, free flag in the trailer), chained from the
//     superblock's free-list head.
//
// Durability follows the classic write-ahead discipline at page
// granularity: page writes go to the file immediately, but the superblock
// — and therefore the committed allocation state — only advances on Sync
// or Close. After a crash, reopening recovers the state as of the last
// Sync; pages allocated later are unreferenced tail garbage and pages
// freed later simply remain allocated.
//
// Format v1 (no checksums, single superblock in page slot 0) is still
// detected and fully supported on open, so files created by older builds
// keep working.
type FileStore struct {
	mu       sync.Mutex
	f        *os.File
	ver      int // format version: 1 or 2
	pageSize int
	npages   uint64 // total pages ever allocated, incl. reserved page 0
	freeHead PageID
	nfree    uint64
	seq      uint64 // v2: superblock sequence number of the last flush
	stats    Stats
	closed   bool
}

var _ Store = (*FileStore)(nil)

const (
	fileMagic   = uint64(0x41525356_50414745) // "ARSVPAGE" — format v1
	fileMagicV2 = uint64(0x41525356_50473032) // "ARSVPG02" — format v2

	// Format v2 layout constants.
	superSlotSize   = 64                // one superblock copy
	superRegionSize = 2 * superSlotSize // slots A and B
	pageTrailerSize = 8                 // 4-byte CRC-32C + 4-byte flags
	superPayload    = 52                // bytes covered incl. CRC
	pageFlagData    = uint32(0)         // trailer flag: live data page
	pageFlagFree    = uint32(1)         // trailer flag: free-list node
)

// CreateFileStore creates (truncating) a file-backed store at path using
// format v2.
func CreateFileStore(path string, pageSize int) (*FileStore, error) {
	if pageSize < 32 {
		return nil, fmt.Errorf("eio: page size %d too small for file store", pageSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("eio: create file store: %w", err)
	}
	fs := &FileStore{f: f, ver: 2, pageSize: pageSize, npages: 1}
	// Write both superblock slots so a fresh store is recoverable even if
	// the very first update tears one of them.
	if err := fs.writeSuper(); err == nil {
		err = fs.writeSuper()
	} else {
		f.Close()
		return nil, err
	}
	if err := fs.f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("eio: sync new store: %w", err)
	}
	return fs, nil
}

// OpenFileStore opens an existing file-backed store created by
// CreateFileStore, detecting the format version. For a v2 store it
// recovers from the newest valid superblock slot, so a torn superblock
// write rolls back to the previous committed state instead of failing.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("eio: open file store: %w", err)
	}
	fs, err := attachFile(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	return fs, nil
}

// attachFile parses the superblock region of f and builds the FileStore.
func attachFile(f *os.File, path string) (*FileStore, error) {
	var hdr [superRegionSize]byte
	n, err := f.ReadAt(hdr[:], 0)
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("eio: read superblock: %w", err)
	}
	if n >= 40 && binary.LittleEndian.Uint64(hdr[0:]) == fileMagic {
		// Format v1: single superblock in page slot 0.
		return &FileStore{
			f:        f,
			ver:      1,
			pageSize: int(binary.LittleEndian.Uint64(hdr[8:])),
			npages:   binary.LittleEndian.Uint64(hdr[16:]),
			freeHead: PageID(binary.LittleEndian.Uint64(hdr[24:])),
			nfree:    binary.LittleEndian.Uint64(hdr[32:]),
		}, nil
	}
	if n < superRegionSize {
		return nil, fmt.Errorf("eio: %s is not a page store (too short)", path)
	}
	best := -1
	var bestSuper superState
	for slot := 0; slot < 2; slot++ {
		st, ok := parseSuperSlot(hdr[slot*superSlotSize : (slot+1)*superSlotSize])
		if ok && (best < 0 || st.seq > bestSuper.seq) {
			best, bestSuper = slot, st
		}
	}
	if best < 0 {
		return nil, fmt.Errorf("eio: %s is not a page store (no valid superblock)", path)
	}
	return &FileStore{
		f:        f,
		ver:      2,
		pageSize: bestSuper.pageSize,
		npages:   bestSuper.npages,
		freeHead: bestSuper.freeHead,
		nfree:    bestSuper.nfree,
		seq:      bestSuper.seq,
	}, nil
}

// superState is one decoded superblock slot.
type superState struct {
	pageSize int
	npages   uint64
	freeHead PageID
	nfree    uint64
	seq      uint64
}

// parseSuperSlot decodes and validates one 64-byte v2 superblock slot.
func parseSuperSlot(b []byte) (superState, bool) {
	if binary.LittleEndian.Uint64(b[0:]) != fileMagicV2 {
		return superState{}, false
	}
	if binary.LittleEndian.Uint32(b[48:]) != crc32c(b[:48]) {
		return superState{}, false
	}
	st := superState{
		pageSize: int(binary.LittleEndian.Uint64(b[8:])),
		npages:   binary.LittleEndian.Uint64(b[16:]),
		freeHead: PageID(binary.LittleEndian.Uint64(b[24:])),
		nfree:    binary.LittleEndian.Uint64(b[32:]),
		seq:      binary.LittleEndian.Uint64(b[40:]),
	}
	if st.pageSize < 32 || st.npages == 0 {
		return superState{}, false
	}
	return st, true
}

// writeSuper flushes the current allocation state. v1 rewrites the single
// page-0 superblock; v2 bumps the sequence number and writes the alternate
// slot, leaving the previous superblock intact as a fallback.
func (fs *FileStore) writeSuper() error {
	if fs.ver == 1 {
		buf := make([]byte, fs.pageSize)
		binary.LittleEndian.PutUint64(buf[0:], fileMagic)
		binary.LittleEndian.PutUint64(buf[8:], uint64(fs.pageSize))
		binary.LittleEndian.PutUint64(buf[16:], fs.npages)
		binary.LittleEndian.PutUint64(buf[24:], uint64(fs.freeHead))
		binary.LittleEndian.PutUint64(buf[32:], fs.nfree)
		if _, err := fs.f.WriteAt(buf, 0); err != nil {
			return fmt.Errorf("eio: write superblock: %w", err)
		}
		return nil
	}
	fs.seq++
	var buf [superSlotSize]byte
	binary.LittleEndian.PutUint64(buf[0:], fileMagicV2)
	binary.LittleEndian.PutUint64(buf[8:], uint64(fs.pageSize))
	binary.LittleEndian.PutUint64(buf[16:], fs.npages)
	binary.LittleEndian.PutUint64(buf[24:], uint64(fs.freeHead))
	binary.LittleEndian.PutUint64(buf[32:], fs.nfree)
	binary.LittleEndian.PutUint64(buf[40:], fs.seq)
	binary.LittleEndian.PutUint32(buf[48:], crc32c(buf[:48]))
	off := int64(fs.seq%2) * superSlotSize
	if _, err := fs.f.WriteAt(buf[:], off); err != nil {
		return fmt.Errorf("eio: write superblock: %w", err)
	}
	return nil
}

// slotSize is the on-disk footprint of one page.
func (fs *FileStore) slotSize() int {
	if fs.ver == 1 {
		return fs.pageSize
	}
	return fs.pageSize + pageTrailerSize
}

func (fs *FileStore) off(id PageID) int64 {
	if fs.ver == 1 {
		return int64(id) * int64(fs.pageSize)
	}
	return superRegionSize + int64(id-1)*int64(fs.slotSize())
}

// writePage writes data (one page) with a fresh trailer. Callers hold mu.
func (fs *FileStore) writePage(id PageID, data []byte, flags uint32) error {
	if fs.ver == 1 {
		if _, err := fs.f.WriteAt(data, fs.off(id)); err != nil {
			return fmt.Errorf("eio: write page %d: %w", id, err)
		}
		return nil
	}
	slot := make([]byte, fs.slotSize())
	copy(slot, data)
	binary.LittleEndian.PutUint32(slot[fs.pageSize:], pageCRC(id, slot[:fs.pageSize]))
	binary.LittleEndian.PutUint32(slot[fs.pageSize+4:], flags)
	if _, err := fs.f.WriteAt(slot, fs.off(id)); err != nil {
		return fmt.Errorf("eio: write page %d: %w", id, err)
	}
	return nil
}

// readPage reads page id into buf[:pageSize], verifying the v2 trailer,
// and returns the trailer flags (pageFlagData for v1). Callers hold mu.
func (fs *FileStore) readPage(id PageID, buf []byte) (uint32, error) {
	if fs.ver == 1 {
		if _, err := fs.f.ReadAt(buf[:fs.pageSize], fs.off(id)); err != nil {
			return 0, fmt.Errorf("eio: read page %d: %w", id, err)
		}
		return pageFlagData, nil
	}
	slot := make([]byte, fs.slotSize())
	if _, err := fs.f.ReadAt(slot, fs.off(id)); err != nil {
		return 0, fmt.Errorf("eio: read page %d: %w", id, err)
	}
	if binary.LittleEndian.Uint32(slot[fs.pageSize:]) != pageCRC(id, slot[:fs.pageSize]) {
		return 0, fmt.Errorf("eio: page %d: %w", id, ErrChecksum)
	}
	copy(buf[:fs.pageSize], slot)
	return binary.LittleEndian.Uint32(slot[fs.pageSize+4:]), nil
}

// PageSize implements Store.
func (fs *FileStore) PageSize() int { return fs.pageSize }

// Alloc implements Store.
func (fs *FileStore) Alloc() (PageID, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return NilPage, fmt.Errorf("eio: alloc on closed store")
	}
	fs.stats.Allocs++
	zero := make([]byte, fs.pageSize)
	if fs.freeHead != NilPage {
		id := fs.freeHead
		var next PageID
		if fs.ver == 1 {
			var nb [8]byte
			if _, err := fs.f.ReadAt(nb[:], fs.off(id)); err != nil {
				return NilPage, fmt.Errorf("eio: pop free list: %w", err)
			}
			next = PageID(binary.LittleEndian.Uint64(nb[:]))
		} else {
			buf := make([]byte, fs.pageSize)
			if _, err := fs.readPage(id, buf); err != nil {
				return NilPage, fmt.Errorf("eio: pop free list: %w", err)
			}
			// The next pointer lives in the first 8 bytes. After a crash
			// the head may be a page whose allocation was never committed
			// (trailer says data, contents zeroed): its zero next pointer
			// simply ends the list, which conservatively leaks the
			// remainder — detected and reported by VerifyFile.
			next = PageID(binary.LittleEndian.Uint64(buf[:8]))
		}
		fs.freeHead = next
		fs.nfree--
		if err := fs.writePage(id, zero, pageFlagData); err != nil {
			return NilPage, fmt.Errorf("eio: zero reused page: %w", err)
		}
		return id, nil
	}
	id := PageID(fs.npages)
	fs.npages++
	if err := fs.writePage(id, zero, pageFlagData); err != nil {
		return NilPage, fmt.Errorf("eio: extend file: %w", err)
	}
	return id, nil
}

// Free implements Store. Under format v2 the page is rewritten as a zeroed
// free-list node with a valid checksum, so a later verification scan can
// tell freed pages from damaged ones.
func (fs *FileStore) Free(id PageID) error {
	if id == NilPage {
		return nil
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.check(id); err != nil {
		return err
	}
	fs.stats.Frees++
	if fs.ver == 1 {
		var next [8]byte
		binary.LittleEndian.PutUint64(next[:], uint64(fs.freeHead))
		if _, err := fs.f.WriteAt(next[:], fs.off(id)); err != nil {
			return fmt.Errorf("eio: push free list: %w", err)
		}
	} else {
		node := make([]byte, fs.pageSize)
		binary.LittleEndian.PutUint64(node[:8], uint64(fs.freeHead))
		if err := fs.writePage(id, node, pageFlagFree); err != nil {
			return fmt.Errorf("eio: push free list: %w", err)
		}
	}
	fs.freeHead = id
	fs.nfree++
	return nil
}

// Read implements Store. Under format v2 a trailer mismatch fails with
// ErrChecksum and reading a freed page fails with ErrBadPage.
func (fs *FileStore) Read(id PageID, buf []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.check(id); err != nil {
		return err
	}
	if len(buf) < fs.pageSize {
		return fmt.Errorf("eio: read buffer %d bytes: %w", len(buf), ErrPageSize)
	}
	fs.stats.Reads++
	flags, err := fs.readPage(id, buf)
	if err != nil {
		return err
	}
	if flags == pageFlagFree {
		return fmt.Errorf("eio: page %d is freed: %w", id, ErrBadPage)
	}
	return nil
}

// Write implements Store.
func (fs *FileStore) Write(id PageID, buf []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.check(id); err != nil {
		return err
	}
	if len(buf) != fs.pageSize {
		return fmt.Errorf("eio: write buffer %d bytes: %w", len(buf), ErrPageSize)
	}
	fs.stats.Writes++
	return fs.writePage(id, buf, pageFlagData)
}

// writeRaw overwrites the first len(prefix) bytes of page id's on-disk slot
// without touching the rest or updating the checksum trailer — exactly the
// shape a torn write leaves behind. It is the simulation hook used by
// CrashStore and FaultStore's torn-write mode.
func (fs *FileStore) writeRaw(id PageID, prefix []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.check(id); err != nil {
		return err
	}
	if len(prefix) > fs.slotSize() {
		prefix = prefix[:fs.slotSize()]
	}
	if _, err := fs.f.WriteAt(prefix, fs.off(id)); err != nil {
		return fmt.Errorf("eio: raw write page %d: %w", id, err)
	}
	return nil
}

// Stats implements Store.
func (fs *FileStore) Stats() Stats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.stats
}

// ResetStats implements Store.
func (fs *FileStore) ResetStats() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.stats = Stats{}
}

// Pages implements Store.
func (fs *FileStore) Pages() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return int(fs.npages - 1 - fs.nfree)
}

// LivePageIDs implements PageLister by scanning every page slot and
// reading its trailer flags, in ascending id order. Free-list nodes are
// skipped; a checksum-bad page is reported as live — it occupies a slot,
// cannot be trusted to be free, and after crash recovery the only pages
// still torn are allocations stranded by the crash, which is exactly what
// Scrub exists to reclaim. Each slot inspected costs one read I/O, as an
// offline sweep over n pages should.
func (fs *FileStore) LivePageIDs() ([]PageID, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil, fmt.Errorf("eio: access to closed store")
	}
	var ids []PageID
	buf := make([]byte, fs.pageSize)
	for id := PageID(1); uint64(id) < fs.npages; id++ {
		fs.stats.Reads++
		flags, err := fs.readPage(id, buf)
		if err != nil {
			ids = append(ids, id) // torn page: conservatively live
			continue
		}
		if flags == pageFlagFree {
			continue
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// EnsurePage materializes page id so a subsequent Write(id) succeeds,
// extending the file with zeroed data pages as needed. It exists for
// replication: a replica must place page images at the exact ids the
// primary chose, not at ids its own allocator would hand out. Gap pages
// created by the extension (ids the primary allocated and freed before
// this replica ever saw them) are left as zeroed DATA pages — they leak
// rather than joining the free list, because a freed page that later
// arrives in a shipped record would have to be unlinked from the middle
// of the free chain. Scrub reclaims them if the replica is ever promoted.
// Calling EnsurePage on a freed page is an error for the same reason.
func (fs *FileStore) EnsurePage(id PageID) error {
	if id == NilPage {
		return fmt.Errorf("eio: ensure page: %w", ErrBadPage)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return fmt.Errorf("eio: access to closed store")
	}
	if uint64(id) < fs.npages {
		buf := make([]byte, fs.pageSize)
		flags, err := fs.readPage(id, buf)
		if err != nil {
			return nil // torn page: a follow-up Write rewrites it whole
		}
		if flags == pageFlagFree {
			return fmt.Errorf("eio: ensure page %d: page is on the free list: %w", id, ErrBadPage)
		}
		return nil
	}
	zero := make([]byte, fs.pageSize)
	for next := PageID(fs.npages); next <= id; next++ {
		if err := fs.writePage(next, zero, pageFlagData); err != nil {
			return fmt.Errorf("eio: ensure page %d: %w", next, err)
		}
		fs.npages++
	}
	return nil
}

// Version reports the on-disk format version (1 or 2).
func (fs *FileStore) Version() int { return fs.ver }

// Sync flushes the superblock and file contents to stable storage,
// committing all allocation state written so far.
func (fs *FileStore) Sync() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.writeSuper(); err != nil {
		return err
	}
	if err := fs.f.Sync(); err != nil {
		return fmt.Errorf("eio: sync: %w", err)
	}
	return nil
}

// Close implements Store. It persists the superblock before closing.
func (fs *FileStore) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil
	}
	fs.closed = true
	if err := fs.writeSuper(); err != nil {
		fs.f.Close()
		return err
	}
	if err := fs.f.Close(); err != nil {
		return fmt.Errorf("eio: close: %w", err)
	}
	return nil
}

// CloseCrash closes the underlying file WITHOUT persisting the superblock
// or syncing, leaving the on-disk image exactly as an abrupt process death
// would. It exists for crash simulation (CrashStore) and recovery tests;
// normal shutdown must use Close.
func (fs *FileStore) CloseCrash() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil
	}
	fs.closed = true
	if err := fs.f.Close(); err != nil {
		return fmt.Errorf("eio: crash close: %w", err)
	}
	return nil
}

func (fs *FileStore) check(id PageID) error {
	if fs.closed {
		return fmt.Errorf("eio: access to closed store")
	}
	if id == NilPage || uint64(id) >= fs.npages {
		return fmt.Errorf("eio: page %d: %w", id, ErrBadPage)
	}
	return nil
}
