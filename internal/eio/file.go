package eio

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"
)

// FileStore is a Store backed by a real file: page id i occupies bytes
// [i*PageSize, (i+1)*PageSize) of the file. It lets every structure in this
// repository persist to and reopen from disk, exercising the exact code
// path the simulator models.
//
// Layout: page 0 (the NilPage slot) holds a small superblock — magic, page
// size, and the head of an on-disk free list. Freed pages are chained
// through their first 8 bytes.
type FileStore struct {
	mu       sync.Mutex
	f        *os.File
	pageSize int
	npages   uint64 // total pages ever allocated, incl. superblock
	freeHead PageID
	nfree    uint64
	stats    Stats
	closed   bool
}

var _ Store = (*FileStore)(nil)

const fileMagic = uint64(0x41525356_50414745) // "ARSVPAGE"

// CreateFileStore creates (truncating) a file-backed store at path.
func CreateFileStore(path string, pageSize int) (*FileStore, error) {
	if pageSize < 32 {
		return nil, fmt.Errorf("eio: page size %d too small for file store", pageSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("eio: create file store: %w", err)
	}
	fs := &FileStore{f: f, pageSize: pageSize, npages: 1}
	if err := fs.writeSuper(); err != nil {
		f.Close()
		return nil, err
	}
	return fs, nil
}

// OpenFileStore opens an existing file-backed store created by
// CreateFileStore.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("eio: open file store: %w", err)
	}
	var hdr [40]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("eio: read superblock: %w", err)
	}
	if binary.LittleEndian.Uint64(hdr[0:]) != fileMagic {
		f.Close()
		return nil, fmt.Errorf("eio: %s is not a page store", path)
	}
	fs := &FileStore{
		f:        f,
		pageSize: int(binary.LittleEndian.Uint64(hdr[8:])),
		npages:   binary.LittleEndian.Uint64(hdr[16:]),
		freeHead: PageID(binary.LittleEndian.Uint64(hdr[24:])),
		nfree:    binary.LittleEndian.Uint64(hdr[32:]),
	}
	return fs, nil
}

func (fs *FileStore) writeSuper() error {
	buf := make([]byte, fs.pageSize)
	binary.LittleEndian.PutUint64(buf[0:], fileMagic)
	binary.LittleEndian.PutUint64(buf[8:], uint64(fs.pageSize))
	binary.LittleEndian.PutUint64(buf[16:], fs.npages)
	binary.LittleEndian.PutUint64(buf[24:], uint64(fs.freeHead))
	binary.LittleEndian.PutUint64(buf[32:], fs.nfree)
	if _, err := fs.f.WriteAt(buf, 0); err != nil {
		return fmt.Errorf("eio: write superblock: %w", err)
	}
	return nil
}

func (fs *FileStore) off(id PageID) int64 { return int64(id) * int64(fs.pageSize) }

// PageSize implements Store.
func (fs *FileStore) PageSize() int { return fs.pageSize }

// Alloc implements Store.
func (fs *FileStore) Alloc() (PageID, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return NilPage, fmt.Errorf("eio: alloc on closed store")
	}
	fs.stats.Allocs++
	zero := make([]byte, fs.pageSize)
	if fs.freeHead != NilPage {
		id := fs.freeHead
		var next [8]byte
		if _, err := fs.f.ReadAt(next[:], fs.off(id)); err != nil {
			return NilPage, fmt.Errorf("eio: pop free list: %w", err)
		}
		fs.freeHead = PageID(binary.LittleEndian.Uint64(next[:]))
		fs.nfree--
		if _, err := fs.f.WriteAt(zero, fs.off(id)); err != nil {
			return NilPage, fmt.Errorf("eio: zero reused page: %w", err)
		}
		return id, nil
	}
	id := PageID(fs.npages)
	fs.npages++
	if _, err := fs.f.WriteAt(zero, fs.off(id)); err != nil {
		return NilPage, fmt.Errorf("eio: extend file: %w", err)
	}
	return id, nil
}

// Free implements Store.
func (fs *FileStore) Free(id PageID) error {
	if id == NilPage {
		return nil
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.check(id); err != nil {
		return err
	}
	fs.stats.Frees++
	var next [8]byte
	binary.LittleEndian.PutUint64(next[:], uint64(fs.freeHead))
	if _, err := fs.f.WriteAt(next[:], fs.off(id)); err != nil {
		return fmt.Errorf("eio: push free list: %w", err)
	}
	fs.freeHead = id
	fs.nfree++
	return nil
}

// Read implements Store.
func (fs *FileStore) Read(id PageID, buf []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.check(id); err != nil {
		return err
	}
	if len(buf) < fs.pageSize {
		return fmt.Errorf("eio: read buffer %d bytes: %w", len(buf), ErrPageSize)
	}
	fs.stats.Reads++
	if _, err := fs.f.ReadAt(buf[:fs.pageSize], fs.off(id)); err != nil {
		return fmt.Errorf("eio: read page %d: %w", id, err)
	}
	return nil
}

// Write implements Store.
func (fs *FileStore) Write(id PageID, buf []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.check(id); err != nil {
		return err
	}
	if len(buf) != fs.pageSize {
		return fmt.Errorf("eio: write buffer %d bytes: %w", len(buf), ErrPageSize)
	}
	fs.stats.Writes++
	if _, err := fs.f.WriteAt(buf, fs.off(id)); err != nil {
		return fmt.Errorf("eio: write page %d: %w", id, err)
	}
	return nil
}

// Stats implements Store.
func (fs *FileStore) Stats() Stats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.stats
}

// ResetStats implements Store.
func (fs *FileStore) ResetStats() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.stats = Stats{}
}

// Pages implements Store.
func (fs *FileStore) Pages() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return int(fs.npages - 1 - fs.nfree)
}

// Sync flushes the superblock and file contents to stable storage.
func (fs *FileStore) Sync() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.writeSuper(); err != nil {
		return err
	}
	if err := fs.f.Sync(); err != nil {
		return fmt.Errorf("eio: sync: %w", err)
	}
	return nil
}

// Close implements Store. It persists the superblock before closing.
func (fs *FileStore) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil
	}
	fs.closed = true
	if err := fs.writeSuper(); err != nil {
		fs.f.Close()
		return err
	}
	if err := fs.f.Close(); err != nil {
		return fmt.Errorf("eio: close: %w", err)
	}
	return nil
}

func (fs *FileStore) check(id PageID) error {
	if fs.closed {
		return fmt.Errorf("eio: access to closed store")
	}
	if id == NilPage || uint64(id) >= fs.npages {
		return fmt.Errorf("eio: page %d: %w", id, ErrBadPage)
	}
	return nil
}
