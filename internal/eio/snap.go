package eio

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// ErrReadOnly reports a mutating operation on a read-only snapshot view.
var ErrReadOnly = fmt.Errorf("eio: mutation through read-only snapshot view")

// SnapStore is a single-writer / multi-reader multi-version page store: the
// serving substrate behind core.Concurrent. One writer mutates pages through
// the Store interface while any number of readers run against immutable
// epoch snapshots obtained with Pin + View.
//
// The protocol is epoch-based:
//
//   - The store is always at a committed epoch E (Epoch). A reader calls
//     Pin, which atomically pins the current epoch and returns it, then
//     reads through View(epoch); every page it reads resolves to that
//     page's content as of epoch E no matter what the writer does
//     concurrently. Unpin releases the snapshot.
//   - The writer mutates pages freely and then calls Commit, which
//     publishes the accumulated writes as epoch E+1. Before the first
//     overwrite (or free) of each page since the last commit, SnapStore
//     captures the page's pre-image into a version chain, so pinned readers
//     keep seeing the epoch they pinned. Abort discards the capture
//     bookkeeping of an abandoned batch instead (used when the batch ran
//     inside a rolled-back TxStore transaction, which restores the inner
//     store by itself).
//
// Frees are deferred: Free captures the page's pre-image and hides the page
// from the writer, but the inner free happens only at a later Commit once no
// pinned epoch can still read the page. A crash before that point therefore
// leaks (never corrupts) the page — Scrub reclaims such leaks, the same
// policy TxStore documents for mid-transaction allocations.
//
// Locking is striped by page id: concurrent readers of different pages never
// contend, and a reader only waits for the writer when both touch the same
// page at the same instant. Version capture costs the writer one extra inner
// read per distinct page per batch; readers served from the version chain
// perform no inner I/O (the SnapStats.VersionReads counter records them).
//
// The Store methods (Write, Alloc, Free, and writer-side Read) must be used
// by one writer goroutine at a time — exactly the single-writer discipline
// the underlying index structures already require. Pin, Unpin, View, Epoch
// and view reads are safe from any goroutine.
type SnapStore struct {
	inner   Store
	ps      int
	stripes []snapStripe

	// Epoch and pin state.
	emu   sync.Mutex
	epoch uint64
	pins  map[uint64]int

	// Writer batch state: pages captured (or allocated) since the last
	// Commit/Abort, and frees deferred by the current batch.
	wmu   sync.Mutex
	batch map[PageID]bool

	pendingFrees atomic.Int64 // deferred frees not yet applied to inner
	versionReads atomic.Uint64
	versionsHeld atomic.Int64
}

// snapStripe guards the version chains and deferred-free marks of the page
// ids that hash to it.
type snapStripe struct {
	mu       sync.Mutex
	versions map[PageID][]pageVersion // ascending validThrough
	freed    map[PageID]uint64        // page id -> epoch at which the free commits
}

// pageVersion is one captured pre-image: the content of the page for every
// epoch in (previous version's validThrough, validThrough].
type pageVersion struct {
	validThrough uint64
	data         []byte
}

var _ Store = (*SnapStore)(nil)

// DefaultSnapStripes is the lock-striping width used when NewSnapStore is
// given a non-positive stripe count.
const DefaultSnapStripes = 64

// NewSnapStore wraps inner. stripes is the lock-striping width (use 0 for
// DefaultSnapStripes).
func NewSnapStore(inner Store, stripes int) *SnapStore {
	if stripes <= 0 {
		stripes = DefaultSnapStripes
	}
	s := &SnapStore{
		inner:   inner,
		ps:      inner.PageSize(),
		stripes: make([]snapStripe, stripes),
		pins:    map[uint64]int{},
		batch:   map[PageID]bool{},
	}
	for i := range s.stripes {
		s.stripes[i].versions = map[PageID][]pageVersion{}
		s.stripes[i].freed = map[PageID]uint64{}
	}
	return s
}

func (s *SnapStore) stripe(id PageID) *snapStripe {
	return &s.stripes[int(id%PageID(len(s.stripes)))]
}

// Epoch returns the current committed epoch.
func (s *SnapStore) Epoch() uint64 {
	s.emu.Lock()
	defer s.emu.Unlock()
	return s.epoch
}

// Pin atomically pins the current committed epoch and returns it. Every
// View(epoch) read remains answerable until the matching Unpin.
func (s *SnapStore) Pin() uint64 {
	s.emu.Lock()
	defer s.emu.Unlock()
	s.pins[s.epoch]++
	return s.epoch
}

// Unpin releases a pin taken with Pin. Version memory and deferred frees
// held for the epoch are reclaimed at the next Commit (or Close).
func (s *SnapStore) Unpin(epoch uint64) {
	s.emu.Lock()
	defer s.emu.Unlock()
	if n, ok := s.pins[epoch]; ok {
		if n <= 1 {
			delete(s.pins, epoch)
		} else {
			s.pins[epoch] = n - 1
		}
	}
}

// minPinLocked returns the lowest epoch any snapshot may still read: the
// minimum over the pinned epochs and the current epoch (a future Pin can
// only land on the current epoch or later). Callers hold emu.
func (s *SnapStore) minPinLocked() uint64 {
	min := s.epoch
	for e := range s.pins {
		if e < min {
			min = e
		}
	}
	return min
}

// capture saves the pre-image of id (as of the current committed epoch)
// before its first overwrite or free in this batch. Callers hold wmu; the
// stripe lock is taken here, which excludes concurrent view reads of id.
func (s *SnapStore) capture(id PageID) error {
	if s.batch[id] {
		return nil // already captured (or allocated) this batch
	}
	s.emu.Lock()
	epoch := s.epoch
	s.emu.Unlock()
	st := s.stripe(id)
	st.mu.Lock()
	defer st.mu.Unlock()
	data := make([]byte, s.ps)
	if err := s.inner.Read(id, data); err != nil {
		return fmt.Errorf("eio: snap: capture page %d: %w", id, err)
	}
	st.versions[id] = append(st.versions[id], pageVersion{validThrough: epoch, data: data})
	s.versionsHeld.Add(1)
	s.batch[id] = true
	return nil
}

// Commit publishes every write since the last Commit/Abort as a new epoch
// and returns it. It also garbage-collects version chains no pinned epoch
// can read and applies deferred frees that are out of reach of every pin.
func (s *SnapStore) Commit() (uint64, error) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	s.emu.Lock()
	s.epoch++
	epoch := s.epoch
	minPin := s.minPinLocked()
	s.emu.Unlock()
	clear(s.batch)
	return epoch, s.gc(minPin)
}

// Abort discards the capture bookkeeping of the current batch: the versions
// captured since the last Commit and the frees it deferred. It is the
// correct ending for a batch whose inner-store writes were rolled back
// (e.g. by TxStore.Rollback) — the inner store already holds the pre-batch
// image, so the captured copies are redundant. After Abort the store is
// still at the epoch of the last Commit.
func (s *SnapStore) Abort() {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	s.emu.Lock()
	epoch := s.epoch
	s.emu.Unlock()
	for id := range s.batch {
		st := s.stripe(id)
		st.mu.Lock()
		if vs := st.versions[id]; len(vs) > 0 && vs[len(vs)-1].validThrough == epoch {
			if len(vs) == 1 {
				delete(st.versions, id)
			} else {
				st.versions[id] = vs[:len(vs)-1]
			}
			s.versionsHeld.Add(-1)
		}
		if f, ok := st.freed[id]; ok && f == epoch+1 {
			delete(st.freed, id)
			s.pendingFrees.Add(-1)
		}
		st.mu.Unlock()
	}
	clear(s.batch)
}

// gc drops versions unreadable by every pin and applies mature deferred
// frees to the inner store.
func (s *SnapStore) gc(minPin uint64) error {
	var firstErr error
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		for id, freedAt := range st.freed {
			if freedAt > minPin {
				continue
			}
			if vs, ok := st.versions[id]; ok {
				s.versionsHeld.Add(-int64(len(vs)))
				delete(st.versions, id)
			}
			delete(st.freed, id)
			s.pendingFrees.Add(-1)
			if err := s.inner.Free(id); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("eio: snap: deferred free of page %d: %w", id, err)
			}
		}
		for id, vs := range st.versions {
			keep := vs[:0]
			for _, v := range vs {
				if v.validThrough >= minPin {
					keep = append(keep, v)
				} else {
					s.versionsHeld.Add(-1)
				}
			}
			if len(keep) == 0 {
				delete(st.versions, id)
			} else {
				st.versions[id] = keep
			}
		}
		st.mu.Unlock()
	}
	return firstErr
}

// --- writer-side Store interface ---------------------------------------

// PageSize implements Store.
func (s *SnapStore) PageSize() int { return s.ps }

// Alloc implements Store. Pages allocated inside a batch need no version
// capture: no snapshot taken before the batch committed can reference them.
func (s *SnapStore) Alloc() (PageID, error) {
	id, err := s.inner.Alloc()
	if err != nil {
		return NilPage, err
	}
	s.wmu.Lock()
	s.batch[id] = true
	s.wmu.Unlock()
	return id, nil
}

// Free implements Store. The pre-image is captured for pinned readers and
// the inner free is deferred until no pin can reach the page (see the type
// comment for the crash-leak trade-off).
func (s *SnapStore) Free(id PageID) error {
	if id == NilPage {
		return nil
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	st := s.stripe(id)
	st.mu.Lock()
	if _, ok := st.freed[id]; ok {
		st.mu.Unlock()
		return fmt.Errorf("eio: page %d: %w", id, ErrBadPage)
	}
	st.mu.Unlock()
	if err := s.capture(id); err != nil {
		return err
	}
	s.emu.Lock()
	epoch := s.epoch
	s.emu.Unlock()
	st.mu.Lock()
	st.freed[id] = epoch + 1
	st.mu.Unlock()
	s.pendingFrees.Add(1)
	return nil
}

// Read implements Store: the writer's own reads see the current (possibly
// uncommitted) state, straight from the inner store.
func (s *SnapStore) Read(id PageID, buf []byte) error {
	st := s.stripe(id)
	st.mu.Lock()
	_, freed := st.freed[id]
	st.mu.Unlock()
	if freed {
		return fmt.Errorf("eio: page %d: %w", id, ErrBadPage)
	}
	return s.inner.Read(id, buf)
}

// Write implements Store. The first write of each page per batch captures
// the page's committed pre-image before the overwrite, under the page's
// stripe lock so no concurrent view read can observe the new content at an
// old epoch.
func (s *SnapStore) Write(id PageID, buf []byte) error {
	if len(buf) != s.ps {
		return fmt.Errorf("eio: write buffer %d bytes: %w", len(buf), ErrPageSize)
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	st := s.stripe(id)
	st.mu.Lock()
	_, freed := st.freed[id]
	st.mu.Unlock()
	if freed {
		return fmt.Errorf("eio: page %d: %w", id, ErrBadPage)
	}
	if err := s.capture(id); err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return s.inner.Write(id, buf)
}

// Stats implements Store, reporting the inner store's counters (reads
// served from version chains never reach the inner store; SnapStats counts
// them separately).
func (s *SnapStore) Stats() Stats { return s.inner.Stats() }

// ResetStats implements Store. Version chains, pins and deferred frees are
// untouched — only accounting resets.
func (s *SnapStore) ResetStats() {
	s.versionReads.Store(0)
	s.inner.ResetStats()
}

// Pages implements Store, reporting the writer's logical view: pages whose
// free is deferred are already excluded.
func (s *SnapStore) Pages() int {
	return s.inner.Pages() - int(s.pendingFrees.Load())
}

// LivePageIDs implements PageLister when the inner store does. It reports
// the inner store's live set, which matches the logical live set only when
// the SnapStore is quiescent — no pinned epochs and no deferred frees
// (a Commit with all readers drained reaches that state). A page whose
// free is still deferred shows up as live here, so scrubbing a
// non-quiescent SnapStore over-reports leaks rather than freeing anything
// a pinned reader still needs.
func (s *SnapStore) LivePageIDs() ([]PageID, error) {
	pl, ok := s.inner.(PageLister)
	if !ok {
		return nil, fmt.Errorf("eio: snap: inner store cannot enumerate pages")
	}
	return pl.LivePageIDs()
}

// Close applies every still-deferred free whose pins have drained, then
// closes the inner store. Frees still blocked by live pins are dropped
// (the store is going away with its readers).
func (s *SnapStore) Close() error {
	s.wmu.Lock()
	s.emu.Lock()
	minPin := s.minPinLocked()
	s.emu.Unlock()
	err := s.gc(minPin)
	s.wmu.Unlock()
	if cerr := s.inner.Close(); err == nil {
		err = cerr
	}
	return err
}

// SnapStats is a point-in-time summary of the snapshot machinery.
type SnapStats struct {
	// Epoch is the current committed epoch.
	Epoch uint64
	// Pins is the number of live snapshot pins.
	Pins int
	// Versions is the number of captured page pre-images currently held.
	Versions int64
	// PendingFrees is the number of frees deferred behind pinned epochs.
	PendingFrees int64
	// VersionReads counts view reads served from version chains instead of
	// the inner store since creation or the last ResetStats. Each is one
	// logical block transfer that cost no inner I/O.
	VersionReads uint64
}

// SnapStats returns the current snapshot-machinery counters.
func (s *SnapStore) SnapStats() SnapStats {
	s.emu.Lock()
	pins := 0
	for _, n := range s.pins {
		pins += n
	}
	epoch := s.epoch
	s.emu.Unlock()
	return SnapStats{
		Epoch:        epoch,
		Pins:         pins,
		Versions:     s.versionsHeld.Load(),
		PendingFrees: s.pendingFrees.Load(),
		VersionReads: s.versionReads.Load(),
	}
}

// View returns a read-only Store fixed at the given pinned epoch: every
// Read resolves to the page content as of that epoch. The caller must hold
// a Pin on the epoch for the lifetime of the view; reads through a view of
// an unpinned epoch may observe later states.
func (s *SnapStore) View(epoch uint64) *SnapView {
	return &SnapView{s: s, epoch: epoch}
}

// SnapView is a read-only epoch-consistent view of a SnapStore. Mutating
// Store methods fail with ErrReadOnly; Close is a no-op (the view borrows
// the SnapStore, it does not own it).
type SnapView struct {
	s     *SnapStore
	epoch uint64
}

var _ Store = (*SnapView)(nil)

// Epoch returns the epoch the view is fixed at.
func (v *SnapView) Epoch() uint64 { return v.epoch }

// PageSize implements Store.
func (v *SnapView) PageSize() int { return v.s.ps }

// Read implements Store, resolving the page to its content as of the
// view's epoch: the oldest captured version that still covers the epoch,
// or the live page when it has not been overwritten since.
func (v *SnapView) Read(id PageID, buf []byte) error {
	if len(buf) < v.s.ps {
		return fmt.Errorf("eio: read buffer %d bytes: %w", len(buf), ErrPageSize)
	}
	st := v.s.stripe(id)
	st.mu.Lock()
	defer st.mu.Unlock()
	if vs := st.versions[id]; len(vs) > 0 {
		// Versions are appended in commit order, so validThrough is
		// ascending: binary-search the first one covering the epoch.
		i := sort.Search(len(vs), func(i int) bool { return vs[i].validThrough >= v.epoch })
		if i < len(vs) {
			copy(buf, vs[i].data)
			v.s.versionReads.Add(1)
			return nil
		}
	}
	if freedAt, ok := st.freed[id]; ok && freedAt <= v.epoch {
		return fmt.Errorf("eio: page %d freed at epoch %d: %w", id, freedAt, ErrBadPage)
	}
	// The live page predates any overwrite in the current batch (those
	// are captured above), so it is valid at the view's epoch. The inner
	// read happens under the stripe lock: the writer takes the same lock
	// for capture-then-overwrite, so this read is wholly before or wholly
	// after any concurrent write of the page.
	return v.s.inner.Read(id, buf)
}

// Alloc implements Store (read-only: always fails).
func (v *SnapView) Alloc() (PageID, error) { return NilPage, ErrReadOnly }

// Free implements Store (read-only: always fails).
func (v *SnapView) Free(id PageID) error { return ErrReadOnly }

// Write implements Store (read-only: always fails).
func (v *SnapView) Write(id PageID, buf []byte) error { return ErrReadOnly }

// Stats implements Store, reporting the inner store's counters (see
// SnapStore.Stats).
func (v *SnapView) Stats() Stats { return v.s.Stats() }

// ResetStats implements Store.
func (v *SnapView) ResetStats() { v.s.ResetStats() }

// Pages implements Store, reporting the writer-side page count (a view has
// no way to count the pages live at its epoch without a full walk).
func (v *SnapView) Pages() int { return v.s.Pages() }

// Close implements Store as a no-op: the underlying SnapStore stays open.
func (v *SnapView) Close() error { return nil }
