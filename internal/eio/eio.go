// Package eio implements the external-memory (I/O) model of Aggarwal and
// Vitter that the paper's bounds are stated in: data is stored in disk
// blocks ("pages") holding B items each, and the cost of an algorithm is the
// number of block transfers it performs.
//
// The package provides:
//
//   - Store: the block-device abstraction — fixed-size pages with explicit
//     allocation, exact I/O accounting, and page reuse via a free list.
//   - MemStore: a RAM-backed store, the default substrate for benchmarks.
//   - FileStore: an os.File-backed store, so the same structures run
//     against a real file system.
//   - Pool: an LRU buffer pool modelling a main memory of M pages; hits are
//     free, misses and dirty evictions cost I/Os on the underlying store.
//   - FaultStore: deterministic fault injection for failure testing.
//   - RecordStore: variable-length records stored as page chains, so a
//     logical node that occupies k blocks costs exactly k I/Os to load.
//
// All index structures in this repository keep their point data exclusively
// in eio pages; reported I/O counts are genuine block-transfer counts.
package eio

import (
	"errors"
	"fmt"
)

// PageID identifies an allocated page. The zero PageID is never allocated
// and acts as a nil reference.
type PageID uint64

// NilPage is the reserved "no page" identifier.
const NilPage PageID = 0

// Stats counts block-level operations. Reads and Writes are the I/Os of the
// external-memory model; Allocs and Frees track space management.
type Stats struct {
	Reads  uint64
	Writes uint64
	Allocs uint64
	Frees  uint64
}

// IOs returns the total number of block transfers (reads + writes).
func (s Stats) IOs() uint64 { return s.Reads + s.Writes }

// Sub returns the counter deltas s - t.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		Reads:  s.Reads - t.Reads,
		Writes: s.Writes - t.Writes,
		Allocs: s.Allocs - t.Allocs,
		Frees:  s.Frees - t.Frees,
	}
}

// Add returns the counter sums s + t.
func (s Stats) Add(t Stats) Stats {
	return Stats{
		Reads:  s.Reads + t.Reads,
		Writes: s.Writes + t.Writes,
		Allocs: s.Allocs + t.Allocs,
		Frees:  s.Frees + t.Frees,
	}
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("reads=%d writes=%d allocs=%d frees=%d", s.Reads, s.Writes, s.Allocs, s.Frees)
}

// Errors returned by stores.
var (
	// ErrBadPage reports access to a page that was never allocated or has
	// been freed.
	ErrBadPage = errors.New("eio: access to unallocated page")
	// ErrPageSize reports a Read or Write whose buffer violates the length
	// contract documented on Store.
	ErrPageSize = errors.New("eio: buffer size does not match page size")
	// ErrInjected is the base error produced by FaultStore.
	ErrInjected = errors.New("eio: injected fault")
	// ErrBadRecord reports a corrupt or dangling record chain.
	ErrBadRecord = errors.New("eio: bad record chain")
	// ErrChecksum reports a page whose on-disk checksum does not match its
	// contents: the page was torn by a crash mid-write, corrupted by the
	// medium, or overwritten out of band. The data is untrustworthy and is
	// not returned.
	ErrChecksum = errors.New("eio: page checksum mismatch")
	// ErrCrashed reports an operation on a CrashStore after Crash().
	ErrCrashed = errors.New("eio: store has crashed")
	// ErrTransient marks a fault that may succeed if retried (a momentary
	// device or transport error rather than corruption). RetryStore retries
	// exactly the errors wrapping it.
	ErrTransient = errors.New("eio: transient fault")
	// ErrTxOverflow reports a transaction writing more distinct pages than
	// its TxStore's WAL region can hold in one redo record.
	ErrTxOverflow = errors.New("eio: transaction exceeds WAL capacity")
	// ErrNoSpace reports a write or allocation refused because the backing
	// device is full. Unlike ErrTransient it does not clear by retrying the
	// same operation immediately, but the store itself is undamaged: reads
	// keep working and writes succeed again once space is reclaimed. Layers
	// above map it to flow control (the serving stack's DISKFULL status)
	// rather than treating it as corruption.
	ErrNoSpace = errors.New("eio: no space left on device")
)

// Store is a simulated block device. Pages are fixed-size; Read and Write
// transfer whole pages and each counts as one I/O. Implementations must be
// safe for concurrent use.
//
// Buffer-length contract (enforced uniformly by every implementation in
// this package and checked by the shared conformance test):
//
//   - Read requires len(buf) >= PageSize(). Exactly the first PageSize()
//     bytes are overwritten; any longer tail is left untouched. A shorter
//     buffer fails with ErrPageSize before any I/O is performed.
//   - Write requires len(buf) == PageSize() — a page write is always a
//     whole page, never a prefix or an extension. Any other length fails
//     with ErrPageSize before any I/O is performed.
type Store interface {
	// PageSize returns the size of every page in bytes.
	PageSize() int
	// Alloc reserves a new zeroed page and returns its id (never NilPage).
	Alloc() (PageID, error)
	// Free releases a page for reuse. Freeing NilPage is a no-op.
	Free(id PageID) error
	// Read copies page id into buf[:PageSize()]. buf must be at least one
	// page long (see the buffer-length contract above).
	Read(id PageID, buf []byte) error
	// Write replaces the contents of page id with buf, which must be
	// exactly one page long (see the buffer-length contract above).
	Write(id PageID, buf []byte) error
	// Stats returns the operation counters accumulated since creation or
	// the last ResetStats. Wrapper stores (Pool, FaultStore, CrashStore,
	// TraceStore) keep no Stats counters of their own: Stats reports the
	// wrapped store's counters, i.e. genuine backing-store I/Os after any
	// caching the wrapper performs.
	Stats() Stats
	// ResetStats zeroes the operation counters. On wrapper stores this
	// delegates to the wrapped store; Pool additionally clears its own
	// hit/miss/eviction counters (PoolStats), while FaultStore fault
	// arming, CrashStore pending writes and TraceStore event sequence
	// numbers are deliberately NOT reset — only accounting is.
	ResetStats()
	// Pages returns the number of currently allocated (live) pages.
	Pages() int
	// Close releases resources held by the store. The store must not be
	// used afterwards.
	Close() error
}

// PointSize is the serialized size of one point (two int64 coordinates).
const PointSize = 16

// BlockCapacity returns B, the number of points that fit in one page of the
// given size.
func BlockCapacity(pageSize int) int { return pageSize / PointSize }
