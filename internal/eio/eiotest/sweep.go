// Package eiotest provides a systematic fault-sweep harness for the index
// structures built on eio: it runs a scripted workload once to count its
// store operations, then re-runs it once per operation with exactly that
// operation failing, asserting that the structure surfaces the injected
// error (wrapping eio.ErrInjected), never panics, and — where the workload
// promises it — remains readable after the fault.
//
// This turns "what happens when I/O k fails?" from an anecdote exercised
// by a couple of hand-picked tests into a property checked for every I/O
// a workload performs.
package eiotest

import (
	"errors"
	"fmt"
	"runtime/debug"
	"testing"

	"rangesearch/internal/eio"
)

// Workload is a deterministic script run against a fresh store.
type Workload struct {
	// Name labels sweep sub-tests.
	Name string
	// PageSize is the page size of the fresh MemStore given to each run.
	PageSize int
	// Run executes the workload against st. It must be deterministic (same
	// sequence of store operations every run) and must return the first
	// error it sees unswallowed.
	//
	// The returned check function revalidates the structure (queries,
	// invariants); Run should set it as soon as the structure reaches a
	// usable state, so that a later fault can be followed by a readability
	// check. It may be nil if the structure never got that far.
	Run func(st eio.Store) (check func() error, err error)
	// Strict makes a failing post-fault check fatal. Without it the check
	// must merely not panic; errors are logged, since a fault in the
	// middle of a multi-page update can legitimately leave a structure
	// needing recovery. Structures that claim fail-stop readability set
	// Strict.
	Strict bool
	// MaxRuns caps the number of sweep iterations; when the workload
	// performs more operations than this, the sweep samples operation
	// indices evenly (always including the first and last). 0 means the
	// package default (400).
	MaxRuns int
}

// defaultMaxRuns bounds sweep time for op-heavy workloads.
const defaultMaxRuns = 400

// Sweep runs w once per store operation with that operation failing.
func Sweep(t *testing.T, w Workload) {
	t.Helper()

	// Baseline: the workload must pass with faults disarmed, and tells us
	// how many operations there are to sweep over.
	f := eio.NewFaultStore(eio.NewMemStore(w.PageSize))
	check, err := runGuarded(w, f)
	if err != nil {
		t.Fatalf("%s: baseline run failed: %v", w.Name, err)
	}
	if check == nil {
		t.Fatalf("%s: baseline run returned no check function", w.Name)
	}
	// Count ops before the baseline check: sweep runs execute only Run, so
	// the sweep range must cover exactly Run's operations.
	total := int(f.Ops())
	if err := check(); err != nil {
		t.Fatalf("%s: baseline check failed: %v", w.Name, err)
	}
	if total == 0 {
		t.Fatalf("%s: workload performed no store operations", w.Name)
	}

	ks := sampleOps(total, w.MaxRuns)
	t.Logf("%s: sweeping %d of %d operations", w.Name, len(ks), total)
	for _, k := range ks {
		k := k
		t.Run(fmt.Sprintf("%s/op%d", w.Name, k), func(t *testing.T) {
			sweepOne(t, w, k)
		})
	}
}

// sweepOne runs the workload with operation k failing and asserts the
// fault contract.
func sweepOne(t *testing.T, w Workload, k int) {
	t.Helper()
	f := eio.NewFaultStore(eio.NewMemStore(w.PageSize))
	f.FailNth(k)
	check, err := runGuarded(w, f)
	if err == nil {
		t.Fatalf("fault at op %d was swallowed: workload reported success\ntrace: %v", k, f.Trace())
	}
	var pe panicError
	if errors.As(err, &pe) {
		t.Fatalf("panic with fault at op %d: %v\n%s", k, pe.value, pe.stack)
	}
	if !errors.Is(err, eio.ErrInjected) {
		t.Fatalf("fault at op %d surfaced as a non-injected error: %v\ntrace: %v", k, err, f.Trace())
	}
	if check == nil {
		return // structure never reached a usable state; nothing to revalidate
	}
	// The injected one-shot fault has auto-disarmed; the structure must
	// still be readable (or at minimum must not panic).
	cerr := checkGuarded(check)
	if cerr == nil {
		return
	}
	if errors.As(cerr, &pe) {
		t.Fatalf("panic in post-fault check (fault at op %d): %v\n%s", k, pe.value, pe.stack)
	}
	if w.Strict {
		t.Fatalf("post-fault check failed (fault at op %d): %v\ntrace: %v", k, cerr, f.Trace())
	}
	t.Logf("post-fault check degraded (fault at op %d, non-strict): %v", k, cerr)
}

// panicError carries a recovered panic through the error return.
type panicError struct {
	value any
	stack []byte
}

func (p panicError) Error() string { return fmt.Sprintf("panic: %v", p.value) }

// runGuarded invokes w.Run converting panics into errors, so the sweep can
// report them with the failing operation index instead of dying.
func runGuarded(w Workload, st eio.Store) (check func() error, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = panicError{value: r, stack: debug.Stack()}
		}
	}()
	return w.Run(st)
}

// checkGuarded invokes check converting panics into errors.
func checkGuarded(check func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = panicError{value: r, stack: debug.Stack()}
		}
	}()
	return check()
}

// sampleOps returns the operation indices to sweep: all of 1..total when
// it fits the cap, otherwise an even sample including 1 and total.
func sampleOps(total, maxRuns int) []int {
	if maxRuns <= 0 {
		maxRuns = defaultMaxRuns
	}
	if total <= maxRuns {
		ks := make([]int, total)
		for i := range ks {
			ks[i] = i + 1
		}
		return ks
	}
	ks := make([]int, 0, maxRuns)
	last := 0
	for i := 0; i < maxRuns; i++ {
		// Evenly spaced over [1, total], biased to hit both ends.
		k := 1 + i*(total-1)/(maxRuns-1)
		if k != last {
			ks = append(ks, k)
			last = k
		}
	}
	return ks
}
