package eiotest

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"sync"
	"testing"

	"rangesearch/internal/eio"
)

// RecoveryWorkload scripts one structure operation for the crash-recovery
// sweep: RecoverySweep builds the structure once on a transactional
// file-backed store, then crashes the backing store at EVERY mutating
// operation the scripted op performs, reopens the file, runs recovery
// (eio.OpenTxStore), and asserts that the structure's full state is
// exactly the pre-op or the post-op state with invariants intact and a
// clean eio.VerifyFile.
type RecoveryWorkload struct {
	// Name labels sweep sub-tests.
	Name string
	// PageSize is the page size of the fresh FileStore.
	PageSize int
	// WALPages sizes the TxStore redo log (0 = eio.DefaultWALPages). It
	// must admit the largest single op the workload performs.
	WALPages int
	// Build creates the structure in its pre-op state on st and returns
	// the header id Op and State are given. It runs outside a transaction.
	Build func(st eio.Store) (eio.PageID, error)
	// Op opens the structure identified by hdr on st and performs exactly
	// one deterministic logical update (an Insert or a Delete). The
	// harness runs it inside a single transaction; it must change State.
	Op func(st eio.Store, hdr eio.PageID) error
	// State opens the structure on st, audits its invariants, and returns
	// a canonical dump of its full contents. Two calls returning the same
	// string mean the same logical state.
	State func(st eio.Store, hdr eio.PageID) (string, error)
	// Reachable returns every page reachable from the structure (its exact
	// page set, not a sample). When set, each recovered image is also
	// scrubbed — leaked allocations reclaimed via eio.Scrub — and the
	// state is re-audited afterwards.
	Reachable func(st eio.Store, hdr eio.PageID) ([]eio.PageID, error)
	// MaxRuns caps sweep iterations per stack variant, sampling evenly as
	// in Sweep. 0 means the package default (400).
	MaxRuns int
}

// RecoverySweep crashes w.Op at every backing-store mutating operation
// (writes, allocs, frees and syncs) and asserts before-or-after recovery
// semantics. Each crash point runs twice: against the bare FileStore
// (writes reach the file immediately; the crash truncates the op) and
// under an eio.CrashStore with torn writes (unsynced writes vanish and the
// last in-flight one is torn — the worst image a power loss can leave).
func RecoverySweep(t *testing.T, w RecoveryWorkload) {
	t.Helper()
	dir := t.TempDir()
	pre := filepath.Join(dir, "preop.db")

	// Build the pre-op image.
	hdr, anchor, stateBefore := buildPreOp(t, w, pre)

	// Baseline: run the op uncrashed on a copy, counting its mutating
	// store operations and capturing the post-op state.
	total, stateAfter := baselineOp(t, w, pre, dir, hdr, anchor)
	if stateAfter == stateBefore {
		t.Fatalf("%s: op did not change the structure state", w.Name)
	}

	ks := sampleOps(total, w.MaxRuns)
	t.Logf("%s: recovery sweep over %d of %d mutating ops", w.Name, len(ks), total)
	for _, k := range ks {
		k := k
		for _, cached := range []bool{false, true} {
			cached := cached
			variant := "direct"
			if cached {
				variant = "cached"
			}
			t.Run(fmt.Sprintf("%s/op%d/%s", w.Name, k, variant), func(t *testing.T) {
				recoverOne(t, w, pre, dir, hdr, anchor, k, cached, stateBefore, stateAfter)
			})
		}
	}
}

// buildPreOp creates the structure on a fresh transactional FileStore at
// path and returns its header, the TxStore anchor, and the pre-op state.
func buildPreOp(t *testing.T, w RecoveryWorkload, path string) (eio.PageID, eio.PageID, string) {
	t.Helper()
	fs, err := eio.CreateFileStore(path, w.PageSize)
	if err != nil {
		t.Fatalf("%s: create store: %v", w.Name, err)
	}
	tx, err := eio.NewTxStore(fs, eio.TxOptions{WALPages: w.WALPages})
	if err != nil {
		t.Fatalf("%s: create tx layer: %v", w.Name, err)
	}
	hdr, err := w.Build(tx)
	if err != nil {
		t.Fatalf("%s: build: %v", w.Name, err)
	}
	state, err := w.State(tx, hdr)
	if err != nil {
		t.Fatalf("%s: pre-op state: %v", w.Name, err)
	}
	anchor := tx.Anchor()
	if err := tx.Close(); err != nil {
		t.Fatalf("%s: close pre-op store: %v", w.Name, err)
	}
	rep, err := eio.VerifyFile(path)
	if err != nil {
		t.Fatalf("%s: verify pre-op file: %v", w.Name, err)
	}
	if rep.Damaged() {
		t.Fatalf("%s: pre-op file damaged:\n%s", w.Name, rep)
	}
	return hdr, anchor, state
}

// baselineOp runs the op to completion on a copy of the pre-op image,
// returning the number of mutating store ops it performed and the post-op
// state.
func baselineOp(t *testing.T, w RecoveryWorkload, pre, dir string, hdr, anchor eio.PageID) (int, string) {
	t.Helper()
	path := filepath.Join(dir, "baseline.db")
	copyFile(t, pre, path)
	fs, err := eio.OpenFileStore(path)
	if err != nil {
		t.Fatalf("%s: open baseline copy: %v", w.Name, err)
	}
	cp := newCrashPoint(fs, 0)
	tx, err := eio.OpenTxStore(cp, anchor)
	if err != nil {
		t.Fatalf("%s: open tx layer: %v", w.Name, err)
	}
	if r := tx.Recovery(); r.Dirty() {
		t.Fatalf("%s: clean image needed recovery: %s", w.Name, r)
	}
	if err := tx.Update(func() error { return w.Op(tx, hdr) }); err != nil {
		t.Fatalf("%s: baseline op failed: %v", w.Name, err)
	}
	total := cp.count()
	state, err := w.State(tx, hdr)
	if err != nil {
		t.Fatalf("%s: post-op state: %v", w.Name, err)
	}
	if err := tx.Close(); err != nil {
		t.Fatalf("%s: close baseline store: %v", w.Name, err)
	}
	if total == 0 {
		t.Fatalf("%s: op performed no mutating store operations", w.Name)
	}
	return total, state
}

// recoverOne crashes the op at mutating operation k, recovers, and checks
// before-or-after semantics.
func recoverOne(t *testing.T, w RecoveryWorkload, pre, dir string, hdr, anchor eio.PageID, k int, cached bool, stateBefore, stateAfter string) {
	t.Helper()
	path := filepath.Join(dir, fmt.Sprintf("crash-%d-%v.db", k, cached))
	copyFile(t, pre, path)
	defer os.Remove(path)

	fs, err := eio.OpenFileStore(path)
	if err != nil {
		t.Fatalf("open copy: %v", err)
	}
	var base eio.Store = fs
	var cs *eio.CrashStore
	if cached {
		cs = eio.NewCrashStore(fs, int64(1000+k))
		cs.SetTornWrites(true)
		base = cs
	}
	cp := newCrashPoint(base, k)
	tx, err := eio.OpenTxStore(cp, anchor)
	if err != nil {
		t.Fatalf("open tx layer: %v", err)
	}

	err = updateGuarded(tx, func() error { return w.Op(tx, hdr) })
	if err == nil {
		t.Fatalf("crash at mutating op %d was not reached (op finished)", k)
	}
	var pe panicError
	if errors.As(err, &pe) {
		t.Fatalf("panic with crash at op %d: %v\n%s", k, pe.value, pe.stack)
	}
	if !errors.Is(err, eio.ErrCrashed) {
		t.Fatalf("crash at op %d surfaced as a non-crash error: %v", k, err)
	}
	if cached {
		if _, err := cs.Crash(); err != nil {
			t.Fatalf("crash cache: %v", err)
		}
	}
	if err := fs.CloseCrash(); err != nil {
		t.Fatalf("close crashed file: %v", err)
	}

	// Recover: reopen the file and let OpenTxStore replay or discard.
	fs2, err := eio.OpenFileStore(path)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	tx2, err := eio.OpenTxStore(fs2, anchor)
	if err != nil {
		t.Fatalf("recovery failed (crash at op %d): %v", k, err)
	}
	state, err := w.State(tx2, hdr)
	if err != nil {
		t.Fatalf("post-recovery state audit failed (crash at op %d, recovery %s): %v", k, tx2.Recovery(), err)
	}
	switch state {
	case stateBefore, stateAfter:
	default:
		t.Fatalf("crash at op %d recovered to a third state (recovery %s):\npre:  %s\npost: %s\ngot:  %s",
			k, tx2.Recovery(), stateBefore, stateAfter, state)
	}

	// Scrub leaked allocations; the logical state must not move.
	if w.Reachable != nil {
		reach, err := w.Reachable(tx2, hdr)
		if err != nil {
			t.Fatalf("reachability walk failed (crash at op %d): %v", k, err)
		}
		meta, err := tx2.MetaPages()
		if err != nil {
			t.Fatalf("tx meta pages: %v", err)
		}
		rep, err := eio.Scrub(fs2, append(reach, meta...))
		if err != nil {
			t.Fatalf("scrub failed (crash at op %d): %v", k, err)
		}
		after, err := w.State(tx2, hdr)
		if err != nil {
			t.Fatalf("post-scrub state audit failed (crash at op %d, %s): %v", k, rep, err)
		}
		if after != state {
			t.Fatalf("scrub changed the structure state (crash at op %d, %s)", k, rep)
		}
	}

	if err := tx2.Close(); err != nil {
		t.Fatalf("close recovered store: %v", err)
	}
	rep, err := eio.VerifyFile(path)
	if err != nil {
		t.Fatalf("verify recovered file: %v", err)
	}
	if rep.Damaged() {
		t.Fatalf("recovered file damaged (crash at op %d):\n%s", k, rep)
	}
}

// updateGuarded runs tx.Update(fn) converting panics into errors.
func updateGuarded(tx *eio.TxStore, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = panicError{value: r, stack: debug.Stack()}
		}
	}()
	return tx.Update(fn)
}

// copyFile clones the pre-op image for one sweep iteration.
func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatalf("read %s: %v", src, err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatalf("write %s: %v", dst, err)
	}
}

// crashPoint wraps a store and simulates fail-stop process death at the
// k-th mutating operation (Write, Alloc, Free or Sync): that operation and
// every operation after it — reads included — fail with eio.ErrCrashed
// without reaching the inner store. Unlike FaultStore's one-shot faults,
// nothing executes past the crash, so the disk image is frozen exactly as
// the crash left it.
type crashPoint struct {
	mu    sync.Mutex
	inner eio.Store
	n     int // mutating operations seen
	k     int // crash at the k-th (0 = never, count only)
	dead  bool
}

func newCrashPoint(inner eio.Store, k int) *crashPoint {
	return &crashPoint{inner: inner, k: k}
}

func (c *crashPoint) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// trip counts a mutating operation and reports whether the store is dead.
func (c *crashPoint) trip() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.dead {
		c.n++
		if c.k > 0 && c.n >= c.k {
			c.dead = true
		}
	}
	if c.dead {
		return fmt.Errorf("eiotest: crash point: %w", eio.ErrCrashed)
	}
	return nil
}

func (c *crashPoint) PageSize() int { return c.inner.PageSize() }

func (c *crashPoint) Alloc() (eio.PageID, error) {
	if err := c.trip(); err != nil {
		return eio.NilPage, err
	}
	return c.inner.Alloc()
}

func (c *crashPoint) Free(id eio.PageID) error {
	if err := c.trip(); err != nil {
		return err
	}
	return c.inner.Free(id)
}

func (c *crashPoint) Read(id eio.PageID, buf []byte) error {
	c.mu.Lock()
	dead := c.dead
	c.mu.Unlock()
	if dead {
		return fmt.Errorf("eiotest: crash point: %w", eio.ErrCrashed)
	}
	return c.inner.Read(id, buf)
}

func (c *crashPoint) Write(id eio.PageID, buf []byte) error {
	if err := c.trip(); err != nil {
		return err
	}
	return c.inner.Write(id, buf)
}

// Sync is a mutating operation too: a crash can land exactly on the
// durability barrier, the most interesting point of a commit.
func (c *crashPoint) Sync() error {
	if err := c.trip(); err != nil {
		return err
	}
	if s, ok := c.inner.(interface{ Sync() error }); ok {
		return s.Sync()
	}
	return nil
}

func (c *crashPoint) Stats() eio.Stats { return c.inner.Stats() }
func (c *crashPoint) ResetStats()      { c.inner.ResetStats() }
func (c *crashPoint) Pages() int       { return c.inner.Pages() }
func (c *crashPoint) Close() error     { return c.inner.Close() }
