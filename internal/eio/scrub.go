package eio

import (
	"fmt"
	"sort"
)

// PageLister enumerates the currently allocated pages of a store. The base
// stores (MemStore, FileStore) implement it; wrappers forward it. It is
// the input side of Scrub.
type PageLister interface {
	LivePageIDs() ([]PageID, error)
}

// ScrubReport summarizes one Scrub or FindLeaks pass.
type ScrubReport struct {
	// Allocated is the number of live pages the store reported.
	Allocated int `json:"allocated"`
	// Reachable is the number of live pages named by the caller's
	// reachability set.
	Reachable int `json:"reachable"`
	// Leaked lists live pages reachable from no root — allocations a crash
	// stranded. Scrub frees them; FindLeaks only reports them.
	Leaked []PageID `json:"leaked,omitempty"`
	// Freed reports whether the leaked pages were actually reclaimed.
	Freed bool `json:"freed"`
}

// String implements fmt.Stringer.
func (r *ScrubReport) String() string {
	verb := "found"
	if r.Freed {
		verb = "reclaimed"
	}
	return fmt.Sprintf("scrub: %d live pages, %d reachable, %s %d leaked",
		r.Allocated, r.Reachable, verb, len(r.Leaked))
}

// FindLeaks computes the live pages of st that are not in reachable,
// without modifying anything. reachable must name every page the caller's
// structures (and, on a transactional store, TxStore.MetaPages) can reach;
// pages listed but not live are ignored.
func FindLeaks(st Store, reachable []PageID) (*ScrubReport, error) {
	pl, ok := st.(PageLister)
	if !ok {
		return nil, fmt.Errorf("eio: scrub: store cannot enumerate pages")
	}
	live, err := pl.LivePageIDs()
	if err != nil {
		return nil, fmt.Errorf("eio: scrub: %w", err)
	}
	mark := make(map[PageID]struct{}, len(reachable))
	for _, id := range reachable {
		mark[id] = struct{}{}
	}
	rep := &ScrubReport{Allocated: len(live)}
	for _, id := range live {
		if _, ok := mark[id]; ok {
			rep.Reachable++
			continue
		}
		rep.Leaked = append(rep.Leaked, id)
	}
	sort.Slice(rep.Leaked, func(i, j int) bool { return rep.Leaked[i] < rep.Leaked[j] })
	return rep, nil
}

// Scrub walks the store's allocated pages, keeps every page named in
// reachable, and frees the rest: the garbage-collection pass that closes
// the alloc-leak class a crash between page allocation and commit leaves
// behind. Run it only after recovery (OpenTxStore) and with a reachability
// set covering every structure on the store — a page missing from
// reachable IS reclaimed.
func Scrub(st Store, reachable []PageID) (*ScrubReport, error) {
	rep, err := FindLeaks(st, reachable)
	if err != nil {
		return nil, err
	}
	for _, id := range rep.Leaked {
		if err := st.Free(id); err != nil {
			return rep, fmt.Errorf("eio: scrub: free page %d: %w", id, err)
		}
	}
	rep.Freed = true
	return rep, nil
}
