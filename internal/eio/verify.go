package eio

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strings"
)

// SuperSlotStatus describes one superblock copy found by VerifyFile.
type SuperSlotStatus struct {
	// Valid reports whether the slot's magic and checksum verify.
	Valid bool `json:"valid"`
	// Seq is the slot's sequence number (0 for v1 or invalid slots).
	Seq uint64 `json:"seq"`
}

// VerifyReport is the result of an offline integrity scan of a store file.
type VerifyReport struct {
	// Version is the detected format version (1 or 2).
	Version int `json:"version"`
	// PageSize is the committed page size.
	PageSize int `json:"page_size"`
	// NPages is the number of page slots the superblock commits to,
	// including the reserved page 0.
	NPages uint64 `json:"npages"`
	// Super describes both superblock slots (v1 stores fill only Super[0]).
	Super [2]SuperSlotStatus `json:"super"`
	// ActiveSlot is the slot recovery would use (v2; 0 for v1).
	ActiveSlot int `json:"active_slot"`
	// BadPages lists pages whose checksum failed (v2 only — v1 pages
	// carry no checksums and cannot be verified).
	BadPages []PageID `json:"bad_pages,omitempty"`
	// FreePages is the number of pages with the free flag set (v2).
	FreePages uint64 `json:"free_pages"`
	// NFree is the free-page count the superblock claims.
	NFree uint64 `json:"nfree"`
	// FreeReachable is how many pages the free-list walk actually
	// reached before terminating.
	FreeReachable uint64 `json:"free_reachable"`
	// FreeListNote is a human-readable description of free-list damage
	// or drift, empty when the list is fully consistent.
	FreeListNote string `json:"free_list_note,omitempty"`
}

// Damaged reports whether the scan found integrity problems serious
// enough that reads could fail or data could be lost: checksum-bad pages
// or an unusable superblock. Free-list drift (leaked pages after a crash)
// is reported in FreeListNote but is not damage — no committed data is at
// risk.
func (r *VerifyReport) Damaged() bool {
	return len(r.BadPages) > 0 || (!r.Super[0].Valid && !r.Super[1].Valid)
}

// String formats the report for human consumption.
func (r *VerifyReport) String() string {
	var b strings.Builder
	noSuper := !r.Super[0].Valid && !r.Super[1].Valid
	if noSuper {
		fmt.Fprintf(&b, "format v%d  no valid superblock\n", r.Version)
	} else {
		fmt.Fprintf(&b, "format v%d  page size %d B  %d page slots (%d free per superblock)\n",
			r.Version, r.PageSize, r.NPages-1, r.NFree)
	}
	if r.Version == 2 {
		for i, s := range r.Super {
			state := "INVALID"
			if s.Valid {
				state = fmt.Sprintf("valid seq=%d", s.Seq)
			}
			active := ""
			if s.Valid && i == r.ActiveSlot {
				active = "  <- active"
			}
			fmt.Fprintf(&b, "superblock slot %d: %s%s\n", i, state, active)
		}
		if noSuper {
			fmt.Fprintf(&b, "page checksums: not scanned (no superblock commits a page count)\n")
			return b.String()
		}
		if len(r.BadPages) == 0 {
			fmt.Fprintf(&b, "page checksums: all %d OK (%d data, %d free)\n",
				r.NPages-1, r.NPages-1-r.FreePages, r.FreePages)
		} else {
			fmt.Fprintf(&b, "page checksums: %d BAD: %v\n", len(r.BadPages), r.BadPages)
		}
	} else if noSuper {
		fmt.Fprintf(&b, "superblock: INVALID\n")
		return b.String()
	} else {
		fmt.Fprintf(&b, "superblock: valid (v1 stores carry no page checksums)\n")
	}
	if r.FreeListNote != "" {
		fmt.Fprintf(&b, "free list: %s\n", r.FreeListNote)
	} else {
		fmt.Fprintf(&b, "free list: %d/%d reachable, consistent\n", r.FreeReachable, r.NFree)
	}
	return b.String()
}

// VerifyFile scans a store file for damage without opening it as a live
// store: it validates both superblock slots, verifies every committed
// page's checksum, and walks the free list. The file is opened read-only,
// so the scan never changes what a later recovery would see.
func VerifyFile(path string) (*VerifyReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("eio: verify: %w", err)
	}
	defer f.Close()

	var hdr [superRegionSize]byte
	n, err := f.ReadAt(hdr[:], 0)
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("eio: verify: read header: %w", err)
	}

	if n >= 40 && binary.LittleEndian.Uint64(hdr[0:]) == fileMagic {
		return verifyV1(f, hdr[:n])
	}
	if n < superRegionSize {
		return nil, fmt.Errorf("eio: verify: %s is not a page store (too short)", path)
	}

	r := &VerifyReport{Version: 2, ActiveSlot: -1}
	var best superState
	for slot := 0; slot < 2; slot++ {
		st, ok := parseSuperSlot(hdr[slot*superSlotSize : (slot+1)*superSlotSize])
		r.Super[slot] = SuperSlotStatus{Valid: ok, Seq: st.seq}
		if ok && (r.ActiveSlot < 0 || st.seq > best.seq) {
			r.ActiveSlot, best = slot, st
		}
	}
	if r.ActiveSlot < 0 {
		return r, nil // Damaged() — nothing more we can trust
	}
	r.PageSize, r.NPages, r.NFree = best.pageSize, best.npages, best.nfree

	// Scan every committed page slot, verifying trailers.
	slotSize := best.pageSize + pageTrailerSize
	slot := make([]byte, slotSize)
	flags := make(map[PageID]uint32, best.npages)
	for id := PageID(1); uint64(id) < best.npages; id++ {
		off := superRegionSize + int64(id-1)*int64(slotSize)
		if _, err := f.ReadAt(slot, off); err != nil {
			r.BadPages = append(r.BadPages, id)
			continue
		}
		if binary.LittleEndian.Uint32(slot[best.pageSize:]) != pageCRC(id, slot[:best.pageSize]) {
			r.BadPages = append(r.BadPages, id)
			continue
		}
		fl := binary.LittleEndian.Uint32(slot[best.pageSize+4:])
		flags[id] = fl
		if fl == pageFlagFree {
			r.FreePages++
		}
	}

	// Walk the free list from the committed head. After a crash the head
	// may be a page whose (uncommitted) reallocation zeroed it: the walk
	// then ends early and the tail is leaked, which we report as drift.
	seen := make(map[PageID]bool)
	id := best.freeHead
	for id != NilPage {
		if uint64(id) >= best.npages {
			r.FreeListNote = fmt.Sprintf("walk hit out-of-range page %d after %d hops", id, r.FreeReachable)
			break
		}
		if seen[id] {
			r.FreeListNote = fmt.Sprintf("walk revisited page %d: cycle", id)
			break
		}
		seen[id] = true
		fl, ok := flags[id]
		if !ok {
			r.FreeListNote = fmt.Sprintf("walk hit checksum-bad page %d after %d hops", id, r.FreeReachable)
			break
		}
		r.FreeReachable++
		if fl != pageFlagFree {
			// A crash-orphaned reallocation: safe to reuse, but its next
			// pointer is not a free-list link, so the walk stops here.
			r.FreeListNote = fmt.Sprintf("page %d lacks the free flag (crash-orphaned allocation); %d of %d free pages reachable", id, r.FreeReachable, r.NFree)
			break
		}
		var nb [8]byte
		if _, err := f.ReadAt(nb[:], superRegionSize+int64(id-1)*int64(slotSize)); err != nil {
			r.FreeListNote = fmt.Sprintf("read of free page %d failed: %v", id, err)
			break
		}
		id = PageID(binary.LittleEndian.Uint64(nb[:]))
	}
	if r.FreeListNote == "" && r.FreeReachable != r.NFree {
		r.FreeListNote = fmt.Sprintf("%d reachable but superblock claims %d (leak after crash?)", r.FreeReachable, r.NFree)
	}
	return r, nil
}

// verifyV1 checks what little a v1 file allows: superblock sanity and the
// free-list walk.
func verifyV1(f *os.File, hdr []byte) (*VerifyReport, error) {
	r := &VerifyReport{
		Version:  1,
		PageSize: int(binary.LittleEndian.Uint64(hdr[8:])),
		NPages:   binary.LittleEndian.Uint64(hdr[16:]),
		NFree:    binary.LittleEndian.Uint64(hdr[32:]),
	}
	r.Super[0] = SuperSlotStatus{Valid: r.PageSize >= 32 && r.NPages > 0}
	if !r.Super[0].Valid {
		return r, nil
	}
	seen := make(map[PageID]bool)
	id := PageID(binary.LittleEndian.Uint64(hdr[24:]))
	for id != NilPage {
		if uint64(id) >= r.NPages {
			r.FreeListNote = fmt.Sprintf("walk hit out-of-range page %d after %d hops", id, r.FreeReachable)
			break
		}
		if seen[id] {
			r.FreeListNote = fmt.Sprintf("walk revisited page %d: cycle", id)
			break
		}
		seen[id] = true
		r.FreeReachable++
		var nb [8]byte
		if _, err := f.ReadAt(nb[:], int64(id)*int64(r.PageSize)); err != nil {
			r.FreeListNote = fmt.Sprintf("read of free page %d failed: %v", id, err)
			break
		}
		id = PageID(binary.LittleEndian.Uint64(nb[:]))
	}
	if r.FreeListNote == "" && r.FreeReachable != r.NFree {
		r.FreeListNote = fmt.Sprintf("%d reachable but superblock claims %d", r.FreeReachable, r.NFree)
	}
	return r, nil
}
