package eio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// TestCrashRecoveryProperty drives a randomized alloc/write/free/sync
// workload through CrashStore over FileStore, crashes at a random point
// (with torn-write mode on), reopens the file and asserts the recovery
// contract: the superblock is valid, every page committed by the last Sync
// either reads back exactly or — only for the single torn page — fails
// with ErrChecksum, and the store remains allocatable.
func TestCrashRecoveryProperty(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			path := filepath.Join(t.TempDir(), "crash.db")
			fs, err := CreateFileStore(path, 128)
			if err != nil {
				t.Fatal(err)
			}
			cs := NewCrashStore(fs, seed)
			cs.SetTornWrites(true)

			// current tracks live pages and their as-written content;
			// durable snapshots current at every Sync.
			current := make(map[PageID][]byte)
			durable := make(map[PageID][]byte)
			snapshot := func() {
				durable = make(map[PageID][]byte, len(current))
				for id, d := range current {
					durable[id] = append([]byte(nil), d...)
				}
			}

			nops := 40 + rng.Intn(120)
			for i := 0; i < nops; i++ {
				switch r := rng.Float64(); {
				case r < 0.35 || len(current) == 0:
					id, err := cs.Alloc()
					if err != nil {
						t.Fatal(err)
					}
					current[id] = make([]byte, 128)
				case r < 0.75:
					id := randLive(rng, current)
					data := make([]byte, 128)
					rng.Read(data)
					if err := cs.Write(id, data); err != nil {
						t.Fatal(err)
					}
					current[id] = data
				case r < 0.85:
					id := randLive(rng, current)
					if err := cs.Free(id); err != nil {
						t.Fatal(err)
					}
					delete(current, id)
				default:
					if err := cs.Sync(); err != nil {
						t.Fatal(err)
					}
					snapshot()
				}
			}

			torn, err := cs.Crash()
			if err != nil {
				t.Fatal(err)
			}
			if err := fs.CloseCrash(); err != nil {
				t.Fatal(err)
			}

			// Recovery: the file must open and commit the last-synced state.
			fs2, err := OpenFileStore(path)
			if err != nil {
				t.Fatalf("seed %d: reopen after crash: %v", seed, err)
			}
			defer fs2.Close()
			buf := make([]byte, 128)
			for id, want := range durable {
				err := fs2.Read(id, buf)
				if id == torn {
					if err != nil && !errors.Is(err, ErrChecksum) {
						t.Fatalf("seed %d: torn page %d: want ErrChecksum or clean read, got %v", seed, id, err)
					}
					continue
				}
				if err != nil {
					t.Fatalf("seed %d: synced page %d unreadable after crash: %v", seed, id, err)
				}
				if !bytes.Equal(buf, want) {
					t.Fatalf("seed %d: synced page %d content diverged after crash", seed, id)
				}
			}

			// Offline verification agrees: only the torn page may be bad.
			rep, err := VerifyFile(path)
			if err != nil {
				t.Fatal(err)
			}
			for _, bad := range rep.BadPages {
				if bad != torn {
					t.Fatalf("seed %d: verify flagged page %d, only %d may be torn\n%s", seed, bad, torn, rep)
				}
			}

			// The recovered store must keep allocating (a truncated free
			// list leaks pages but never blocks allocation).
			for i := 0; i < 5; i++ {
				if _, err := fs2.Alloc(); err != nil {
					t.Fatalf("seed %d: alloc after recovery: %v", seed, err)
				}
			}
		})
	}
}

func randLive(rng *rand.Rand, m map[PageID][]byte) PageID {
	ids := make([]PageID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	// Map order is random; sort for determinism under a fixed seed.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids[rng.Intn(len(ids))]
}

// TestTornSuperblockRecovery corrupts the newest superblock slot and
// checks that reopening falls back to the older valid slot; with both
// slots corrupted the open must fail.
func TestTornSuperblockRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "super.db")
	fs, err := CreateFileStore(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	id, err := fs.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x5A}, 64)
	if err := fs.Write(id, data); err != nil {
		t.Fatal(err)
	}
	// Two syncs so both slots commit the same allocation state.
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.CloseCrash(); err != nil {
		t.Fatal(err)
	}

	// Tear the slot with the higher sequence number.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [superRegionSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		t.Fatal(err)
	}
	seq0 := binary.LittleEndian.Uint64(hdr[40:])
	seq1 := binary.LittleEndian.Uint64(hdr[superSlotSize+40:])
	newest := int64(0)
	if seq1 > seq0 {
		newest = 1
	}
	if _, err := f.WriteAt([]byte{0xFF, 0xFF, 0xFF, 0xFF}, newest*superSlotSize+20); err != nil {
		t.Fatal(err)
	}

	fs2, err := OpenFileStore(path)
	if err != nil {
		t.Fatalf("reopen with one torn superblock: %v", err)
	}
	buf := make([]byte, 64)
	if err := fs2.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("data lost after superblock fallback")
	}
	if err := fs2.CloseCrash(); err != nil {
		t.Fatal(err)
	}

	rep, err := VerifyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Super[newest].Valid {
		t.Fatal("verify did not notice the torn slot")
	}
	if rep.Damaged() {
		t.Fatalf("one valid superblock slot must be enough:\n%s", rep)
	}

	// Tear the surviving slot too: now the store is gone.
	other := 1 - newest
	if _, err := f.WriteAt([]byte{0xFF, 0xFF, 0xFF, 0xFF}, other*superSlotSize+20); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := OpenFileStore(path); err == nil {
		t.Fatal("open succeeded with both superblocks torn")
	}
	rep, err = VerifyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Damaged() {
		t.Fatal("verify must report both-slots-torn as damage")
	}
}

// TestChecksumDetectsCorruption flips bytes inside a committed page and
// checks that Read fails with ErrChecksum and VerifyFile pinpoints the
// page.
func TestChecksumDetectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rot.db")
	fs, err := CreateFileStore(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	var ids []PageID
	for i := 0; i < 4; i++ {
		id, err := fs.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if err := fs.Write(id, bytes.Repeat([]byte{byte(i + 1)}, 64)); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt one byte in the middle of the third page's data.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	victim := ids[2]
	off := superRegionSize + int64(victim-1)*int64(64+pageTrailerSize) + 17
	if _, err := f.WriteAt([]byte{0xEE}, off); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rep, err := VerifyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.BadPages) != 1 || rep.BadPages[0] != victim {
		t.Fatalf("verify bad pages = %v, want [%d]\n%s", rep.BadPages, victim, rep)
	}
	if !rep.Damaged() {
		t.Fatal("corruption must count as damage")
	}

	fs2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	buf := make([]byte, 64)
	if err := fs2.Read(victim, buf); !errors.Is(err, ErrChecksum) {
		t.Fatalf("read of corrupted page: want ErrChecksum, got %v", err)
	}
	for _, id := range ids {
		if id == victim {
			continue
		}
		if err := fs2.Read(id, buf); err != nil {
			t.Fatalf("read of intact page %d: %v", id, err)
		}
	}
}

// TestCrashStoreSemantics checks the volatile-cache model against a
// MemStore: buffered writes are invisible to the inner store until Sync,
// reads see the buffer, frees are deferred, and Crash kills the wrapper.
func TestCrashStoreSemantics(t *testing.T) {
	mem := NewMemStore(64)
	cs := NewCrashStore(mem, 1)
	id, err := cs.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xAA}, 64)
	if err := cs.Write(id, data); err != nil {
		t.Fatal(err)
	}
	// Read-your-writes through the cache.
	buf := make([]byte, 64)
	if err := cs.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("crash store does not serve its own buffered write")
	}
	// The inner store still sees zeroes.
	if err := mem.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, 64)) {
		t.Fatal("buffered write leaked to the inner store before Sync")
	}
	if cs.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", cs.Pending())
	}
	if err := cs.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := mem.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("Sync did not flush the buffered write")
	}

	// Deferred free: gone for the wrapper, present underneath until Sync.
	if err := cs.Free(id); err != nil {
		t.Fatal(err)
	}
	if err := cs.Read(id, buf); !errors.Is(err, ErrBadPage) {
		t.Fatalf("read of freed page: want ErrBadPage, got %v", err)
	}
	if got := cs.Pages(); got != 0 {
		t.Fatalf("Pages() = %d, want 0 after deferred free", got)
	}
	if got := mem.Pages(); got != 1 {
		t.Fatalf("inner Pages() = %d, want 1 before Sync", got)
	}

	// Crash drops the deferred free; the wrapper is dead afterwards.
	if _, err := cs.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Alloc(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("alloc after crash: want ErrCrashed, got %v", err)
	}
	if err := cs.Write(id, data); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write after crash: want ErrCrashed, got %v", err)
	}
	if got := mem.Pages(); got != 1 {
		t.Fatalf("inner Pages() = %d after crash, want 1 (free dropped)", got)
	}
	if err := mem.Read(id, buf); err != nil || !bytes.Equal(buf, data) {
		t.Fatalf("inner page content changed by crash: %v", err)
	}
}

// TestCrashStoreDropsUnsyncedWrites checks that writes after the last Sync
// do not survive a crash.
func TestCrashStoreDropsUnsyncedWrites(t *testing.T) {
	mem := NewMemStore(64)
	cs := NewCrashStore(mem, 2)
	id, _ := cs.Alloc()
	v1 := bytes.Repeat([]byte{1}, 64)
	v2 := bytes.Repeat([]byte{2}, 64)
	if err := cs.Write(id, v1); err != nil {
		t.Fatal(err)
	}
	if err := cs.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := cs.Write(id, v2); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Crash(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if err := mem.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, v1) {
		t.Fatal("un-synced write survived the crash")
	}
}

// TestFileStoreV1Compat handcrafts a v1-format file and checks that it
// still opens, reads, writes and verifies.
func TestFileStoreV1Compat(t *testing.T) {
	const ps = 64
	path := filepath.Join(t.TempDir(), "v1.db")
	img := make([]byte, 2*ps)
	binary.LittleEndian.PutUint64(img[0:], fileMagic)
	binary.LittleEndian.PutUint64(img[8:], ps)
	binary.LittleEndian.PutUint64(img[16:], 2) // npages: superblock + 1 data page
	binary.LittleEndian.PutUint64(img[24:], 0) // free head
	binary.LittleEndian.PutUint64(img[32:], 0) // nfree
	for i := 0; i < ps; i++ {
		img[ps+i] = byte(i)
	}
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}

	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Version() != 1 {
		t.Fatalf("Version() = %d, want 1", fs.Version())
	}
	buf := make([]byte, ps)
	if err := fs.Read(1, buf); err != nil {
		t.Fatal(err)
	}
	if buf[10] != 10 {
		t.Fatal("v1 page content wrong")
	}
	// Round-trip the v1 write/free/alloc paths.
	if err := fs.Write(1, bytes.Repeat([]byte{9}, ps)); err != nil {
		t.Fatal(err)
	}
	id, err := fs.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Free(id); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	fs2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if fs2.Version() != 1 {
		t.Fatal("v1 store silently changed format")
	}
	id2, err := fs2.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id {
		t.Fatalf("v1 free list not reused: got %d want %d", id2, id)
	}
	if err := fs2.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := VerifyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Version != 1 || rep.Damaged() {
		t.Fatalf("v1 verify: %+v", rep)
	}
}

// TestVerifyCleanStore checks the all-clear path on a freshly written v2
// store with frees on the free list.
func TestVerifyCleanStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "clean.db")
	fs, err := CreateFileStore(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	var ids []PageID
	for i := 0; i < 6; i++ {
		id, _ := fs.Alloc()
		if err := fs.Write(id, bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids[:3] {
		if err := fs.Free(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Damaged() {
		t.Fatalf("clean store reported damaged:\n%s", rep)
	}
	if rep.FreeListNote != "" {
		t.Fatalf("clean store free list note: %q", rep.FreeListNote)
	}
	if rep.FreePages != 3 || rep.FreeReachable != 3 || rep.NFree != 3 {
		t.Fatalf("free accounting: %+v", rep)
	}
	if rep.Version != 2 {
		t.Fatalf("Version = %d", rep.Version)
	}
}
