package eio

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

// TestShardedPoolEquivalence runs a randomized workload through a
// ShardedPool and an unpooled twin and checks byte-equivalence after a
// flush, exercising write-back across alloc/free churn and shard routing.
func TestShardedPoolEquivalence(t *testing.T) {
	for _, cfg := range []struct{ cap, shards int }{{1, 1}, {4, 2}, {32, 4}, {64, 16}} {
		rng := rand.New(rand.NewSource(int64(cfg.cap*100 + cfg.shards)))
		backing := NewMemStore(64)
		sp := NewShardedPool(backing, cfg.cap, cfg.shards)
		twin := NewMemStore(64)

		var ids, twinIDs []PageID
		content := map[int]byte{}
		for op := 0; op < 2000; op++ {
			switch {
			case len(ids) == 0 || rng.Intn(4) == 0: // alloc
				id, err := sp.Alloc()
				if err != nil {
					t.Fatal(err)
				}
				tid, err := twin.Alloc()
				if err != nil {
					t.Fatal(err)
				}
				ids = append(ids, id)
				twinIDs = append(twinIDs, tid)
				content[len(ids)-1] = 0
			case rng.Intn(5) == 0: // free
				i := rng.Intn(len(ids))
				if err := sp.Free(ids[i]); err != nil {
					t.Fatal(err)
				}
				if err := twin.Free(twinIDs[i]); err != nil {
					t.Fatal(err)
				}
				ids = append(ids[:i], ids[i+1:]...)
				twinIDs = append(twinIDs[:i], twinIDs[i+1:]...)
				// reindex content
				nc := map[int]byte{}
				for j := range ids {
					if j < i {
						nc[j] = content[j]
					} else {
						nc[j] = content[j+1]
					}
				}
				content = nc
			case rng.Intn(2) == 0: // write
				i := rng.Intn(len(ids))
				b := byte(rng.Intn(256))
				if err := sp.Write(ids[i], bytes.Repeat([]byte{b}, 64)); err != nil {
					t.Fatal(err)
				}
				if err := twin.Write(twinIDs[i], bytes.Repeat([]byte{b}, 64)); err != nil {
					t.Fatal(err)
				}
				content[i] = b
			default: // read and compare
				i := rng.Intn(len(ids))
				a, b := make([]byte, 64), make([]byte, 64)
				if err := sp.Read(ids[i], a); err != nil {
					t.Fatal(err)
				}
				if err := twin.Read(twinIDs[i], b); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(a, b) {
					t.Fatalf("cap=%d shards=%d op=%d: pooled read diverges from twin", cfg.cap, cfg.shards, op)
				}
			}
		}
		if err := sp.Flush(); err != nil {
			t.Fatal(err)
		}
		// After Flush the backing store holds every logical page verbatim.
		for i, id := range ids {
			buf := make([]byte, 64)
			if err := backing.Read(id, buf); err != nil {
				t.Fatal(err)
			}
			if buf[0] != content[i] {
				t.Fatalf("cap=%d shards=%d: page %d flushed %d, want %d", cfg.cap, cfg.shards, id, buf[0], content[i])
			}
		}
		if sp.Dirty() != 0 {
			t.Fatalf("Dirty after Flush = %d", sp.Dirty())
		}
		if err := sp.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardedPoolAccounting pins the aggregate accessor contract: Cap sums
// shard capacities, PoolStats/Dirty/Resident sum losslessly over shards,
// and Stats reports only backing I/Os.
func TestShardedPoolAccounting(t *testing.T) {
	backing := NewMemStore(64)
	sp := NewShardedPool(backing, 8, 4)
	defer sp.Close()
	if got := sp.Cap(); got != 8 {
		t.Fatalf("Cap = %d, want 8", got)
	}
	if got := sp.Shards(); got != 4 {
		t.Fatalf("Shards = %d, want 4", got)
	}
	var ids []PageID
	for i := 0; i < 6; i++ {
		id, err := sp.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// All six pages are resident and dirty (Alloc pools them dirty), and
	// nothing has touched the backing store beyond the allocations.
	if got := sp.Resident(); got != 6 {
		t.Fatalf("Resident = %d, want 6", got)
	}
	if got := sp.Dirty(); got != 6 {
		t.Fatalf("Dirty = %d, want 6", got)
	}
	if st := sp.Stats(); st.Reads != 0 || st.Writes != 0 || st.Allocs != 6 {
		t.Fatalf("backing stats = %+v, want only 6 allocs", st)
	}
	// Hits on pooled pages are free; the per-shard counters sum up.
	buf := make([]byte, 64)
	for _, id := range ids {
		if err := sp.Read(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	ps := sp.PoolStats()
	if ps.Hits != 6 || ps.Misses != 0 {
		t.Fatalf("PoolStats = %+v, want 6 hits 0 misses", ps)
	}
	var perShard uint64
	for _, s := range sp.ShardPoolStats() {
		perShard += s.Hits
	}
	if perShard != ps.Hits {
		t.Fatalf("shard hit sum %d != aggregate %d", perShard, ps.Hits)
	}
	if st := sp.Stats(); st.Reads != 0 {
		t.Fatalf("pool hits leaked into backing reads: %+v", st)
	}
	sp.ResetStats()
	if ps := sp.PoolStats(); ps != (PoolStats{}) {
		t.Fatalf("PoolStats after reset = %+v", ps)
	}
}

// TestShardedPoolConcurrent hammers reads, writes and the stat accessors
// (PoolStats, Dirty, Cap, Resident, Stats) from many goroutines — the
// -race contract for the sharded pool and the PR 2 accessors on top of it.
func TestShardedPoolConcurrent(t *testing.T) {
	backing := NewMemStore(64)
	sp := NewShardedPool(backing, 16, 4)
	defer sp.Close()

	const npages = 64
	ids := make([]PageID, npages)
	for i := range ids {
		id, err := sp.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			buf := make([]byte, 64)
			for i := 0; i < 1500; i++ {
				id := ids[rng.Intn(npages)]
				if rng.Intn(3) == 0 {
					if err := sp.Write(id, bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
						t.Error(err)
						return
					}
				} else {
					if err := sp.Read(id, buf); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(int64(w))
	}
	wg.Add(1)
	go func() { // stat reader: must be race-free against the traffic
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			_ = sp.PoolStats()
			_ = sp.Dirty()
			_ = sp.Cap()
			_ = sp.Resident()
			_ = sp.Stats()
		}
	}()
	wg.Wait()
	if err := sp.Flush(); err != nil {
		t.Fatal(err)
	}
}
