package eio

import (
	"fmt"
	"sync"
)

// Op identifies a store operation for fault injection.
type Op int

// Store operations that FaultStore can fail.
const (
	OpRead Op = iota
	OpWrite
	OpAlloc
	OpFree
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpAlloc:
		return "alloc"
	case OpFree:
		return "free"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// FaultStore wraps a Store and injects deterministic failures, for testing
// that structures surface (rather than swallow) I/O errors. A fault is
// armed with FailAfter: the n-th subsequent operation of the given kind
// fails with an error wrapping ErrInjected.
type FaultStore struct {
	mu        sync.Mutex
	inner     Store
	countdown map[Op]int // 1 = fail next op of this kind
}

var _ Store = (*FaultStore)(nil)

// NewFaultStore wraps inner with fault injection (initially disarmed).
func NewFaultStore(inner Store) *FaultStore {
	return &FaultStore{inner: inner, countdown: make(map[Op]int)}
}

// FailAfter arms the injector: the n-th next operation of kind op fails
// (n = 1 fails the very next one). n ≤ 0 disarms the kind.
func (f *FaultStore) FailAfter(op Op, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n <= 0 {
		delete(f.countdown, op)
		return
	}
	f.countdown[op] = n
}

// Disarm clears all armed faults.
func (f *FaultStore) Disarm() {
	f.mu.Lock()
	defer f.mu.Unlock()
	clear(f.countdown)
}

// trip decrements the countdown for op and reports whether it must fail.
func (f *FaultStore) trip(op Op) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, ok := f.countdown[op]
	if !ok {
		return nil
	}
	n--
	if n > 0 {
		f.countdown[op] = n
		return nil
	}
	delete(f.countdown, op)
	return fmt.Errorf("eio: %s fault: %w", op, ErrInjected)
}

// PageSize implements Store.
func (f *FaultStore) PageSize() int { return f.inner.PageSize() }

// Alloc implements Store.
func (f *FaultStore) Alloc() (PageID, error) {
	if err := f.trip(OpAlloc); err != nil {
		return NilPage, err
	}
	return f.inner.Alloc()
}

// Free implements Store.
func (f *FaultStore) Free(id PageID) error {
	if err := f.trip(OpFree); err != nil {
		return err
	}
	return f.inner.Free(id)
}

// Read implements Store.
func (f *FaultStore) Read(id PageID, buf []byte) error {
	if err := f.trip(OpRead); err != nil {
		return err
	}
	return f.inner.Read(id, buf)
}

// Write implements Store.
func (f *FaultStore) Write(id PageID, buf []byte) error {
	if err := f.trip(OpWrite); err != nil {
		return err
	}
	return f.inner.Write(id, buf)
}

// Stats implements Store.
func (f *FaultStore) Stats() Stats { return f.inner.Stats() }

// ResetStats implements Store.
func (f *FaultStore) ResetStats() { f.inner.ResetStats() }

// Pages implements Store.
func (f *FaultStore) Pages() int { return f.inner.Pages() }

// Close implements Store.
func (f *FaultStore) Close() error { return f.inner.Close() }
