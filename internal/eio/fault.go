package eio

import (
	"fmt"
	"math/rand"
	"sync"
)

// Op identifies a store operation for fault injection.
type Op int

// Store operations that FaultStore can fail.
const (
	OpRead Op = iota
	OpWrite
	OpAlloc
	OpFree
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpAlloc:
		return "alloc"
	case OpFree:
		return "free"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// TraceEntry records one operation seen by a FaultStore, for reproducing
// and reporting fault-injection failures.
type TraceEntry struct {
	// N is the 1-based global operation number.
	N uint64
	// Op is the operation kind.
	Op Op
	// Page is the page operated on (the returned id for Alloc).
	Page PageID
	// Injected reports whether the fault injector failed this operation.
	Injected bool
}

// String implements fmt.Stringer.
func (e TraceEntry) String() string {
	s := fmt.Sprintf("#%d %s p%d", e.N, e.Op, e.Page)
	if e.Injected {
		s += " [injected]"
	}
	return s
}

// FaultStore wraps a Store and injects deterministic failures, for testing
// that structures surface (rather than swallow) I/O errors and survive
// them. Faults can be armed several ways, combinable:
//
//   - FailAfter(op, n): one-shot — the n-th next operation of that kind
//     fails, then the fault disarms.
//   - FailAlways(op): persistent — every operation of that kind fails
//     until Disarm.
//   - FailProb(op, p): probabilistic — each operation of that kind fails
//     with probability p, driven by the seeded RNG (see Seed) so runs
//     reproduce exactly.
//   - FailNth(n): one-shot by global operation index, counting operations
//     of every kind — the unit the fault-sweep harness iterates over.
//
// Every injected error wraps ErrInjected. In torn-write mode an injected
// write fault additionally applies a partial prefix of the page to the
// inner store (when it supports raw writes) before failing, modelling a
// write that died halfway rather than one that never started.
//
// The store keeps a bounded trace of recent operations (SetTraceSize,
// Trace) so a failing sweep iteration can print exactly which I/Os led up
// to the fault.
type FaultStore struct {
	mu        sync.Mutex
	inner     Store
	countdown map[Op]int // 1 = fail next op of this kind
	always    map[Op]bool
	prob      map[Op]float64
	rng       *rand.Rand
	nops      uint64 // global operation counter
	failNth   uint64 // 0 = disarmed
	runLeft   map[Op]int
	tornWrite bool
	transient bool
	full      bool

	trace     []TraceEntry // ring buffer
	traceCap  int
	traceNext int
}

var _ Store = (*FaultStore)(nil)

// defaultTraceCap bounds the op trace unless SetTraceSize overrides it.
const defaultTraceCap = 64

// NewFaultStore wraps inner with fault injection (initially disarmed).
func NewFaultStore(inner Store) *FaultStore {
	return &FaultStore{
		inner:     inner,
		countdown: make(map[Op]int),
		always:    make(map[Op]bool),
		prob:      make(map[Op]float64),
		runLeft:   make(map[Op]int),
		rng:       rand.New(rand.NewSource(1)),
		traceCap:  defaultTraceCap,
	}
}

// FailAfter arms a one-shot fault: the n-th next operation of kind op
// fails (n = 1 fails the very next one). n ≤ 0 disarms the kind.
func (f *FaultStore) FailAfter(op Op, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n <= 0 {
		delete(f.countdown, op)
		return
	}
	f.countdown[op] = n
}

// FailAlways arms a persistent fault: every operation of kind op fails
// until Disarm.
func (f *FaultStore) FailAlways(op Op) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.always[op] = true
}

// FailProb arms a probabilistic fault: each operation of kind op fails
// with probability p (clamped to [0, 1]), using the seeded RNG so a given
// seed reproduces the same fault pattern. p ≤ 0 disarms the kind.
func (f *FaultStore) FailProb(op Op, p float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if p <= 0 {
		delete(f.prob, op)
		return
	}
	if p > 1 {
		p = 1
	}
	f.prob[op] = p
}

// FailNth arms a one-shot fault on the n-th operation of any kind counted
// from now (n = 1 fails the very next operation). n ≤ 0 disarms.
func (f *FaultStore) FailNth(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n <= 0 {
		f.failNth = 0
		return
	}
	f.failNth = f.nops + uint64(n)
}

// FailRun arms a burst fault: the next n operations of kind op all fail,
// then the kind disarms. Combined with SetTransient this models a device
// that is briefly unreachable — exactly what RetryStore's bounded backoff
// must ride out (a run shorter than the retry budget succeeds; a longer
// one surfaces the error). n ≤ 0 disarms the kind.
func (f *FaultStore) FailRun(op Op, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n <= 0 {
		delete(f.runLeft, op)
		return
	}
	f.runLeft[op] = n
}

// SetTransient marks every injected fault as retryable: injected errors
// additionally wrap ErrTransient, so a RetryStore above this FaultStore
// retries them while still passing genuine corruption through. Off by
// default — historically every injected fault was fatal.
func (f *FaultStore) SetTransient(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.transient = on
}

// SetFull toggles ENOSPC mode: while on, every Write and Alloc fails with
// an error wrapping ErrNoSpace (and ErrInjected), while Read and Free keep
// succeeding — exactly the failure surface of a full disk. The mode is
// independent of the one-shot/probabilistic schedules and stays armed until
// turned off, modelling space that only comes back when something reclaims
// it.
func (f *FaultStore) SetFull(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.full = on
}

// tripFull counts and traces an operation refused by ENOSPC mode. It
// returns nil when the mode is off.
func (f *FaultStore) tripFull(op Op, page PageID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.full {
		return nil
	}
	f.nops++
	f.record(TraceEntry{N: f.nops, Op: op, Page: page, Injected: true})
	return fmt.Errorf("eio: %s fault at op %d: %w (%w)", op, f.nops, ErrNoSpace, ErrInjected)
}

// Seed reseeds the RNG behind FailProb and torn-write lengths.
func (f *FaultStore) Seed(seed int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rng = rand.New(rand.NewSource(seed))
}

// SetTornWrites toggles torn-write mode for injected write faults.
func (f *FaultStore) SetTornWrites(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tornWrite = on
}

// Disarm clears all armed faults (one-shot, persistent, probabilistic and
// global-index).
func (f *FaultStore) Disarm() {
	f.mu.Lock()
	defer f.mu.Unlock()
	clear(f.countdown)
	clear(f.always)
	clear(f.prob)
	clear(f.runLeft)
	f.failNth = 0
	f.full = false
}

// Ops returns the number of operations this store has seen.
func (f *FaultStore) Ops() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nops
}

// SetTraceSize sets the number of recent operations retained by Trace
// (n ≤ 0 disables tracing).
func (f *FaultStore) SetTraceSize(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.traceCap = n
	f.trace = nil
	f.traceNext = 0
}

// Trace returns the retained recent operations, oldest first.
func (f *FaultStore) Trace() []TraceEntry {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]TraceEntry, 0, len(f.trace))
	for i := 0; i < len(f.trace); i++ {
		out = append(out, f.trace[(f.traceNext+i)%len(f.trace)])
	}
	return out
}

// trip counts the operation, records it in the trace, and reports whether
// it must fail.
func (f *FaultStore) trip(op Op, page PageID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.nops++
	inject := false
	if f.failNth != 0 && f.nops >= f.failNth {
		f.failNth = 0
		inject = true
	}
	if f.always[op] {
		inject = true
	}
	if p, ok := f.prob[op]; ok && f.rng.Float64() < p {
		inject = true
	}
	if n, ok := f.countdown[op]; ok {
		n--
		if n > 0 {
			f.countdown[op] = n
		} else {
			delete(f.countdown, op)
			inject = true
		}
	}
	if n, ok := f.runLeft[op]; ok {
		inject = true
		if n--; n > 0 {
			f.runLeft[op] = n
		} else {
			delete(f.runLeft, op)
		}
	}
	f.record(TraceEntry{N: f.nops, Op: op, Page: page, Injected: inject})
	if !inject {
		return nil
	}
	if f.transient {
		return fmt.Errorf("eio: %s fault at op %d: %w (%w)", op, f.nops, ErrTransient, ErrInjected)
	}
	return fmt.Errorf("eio: %s fault at op %d: %w", op, f.nops, ErrInjected)
}

// record appends e to the trace ring buffer. Callers hold mu.
func (f *FaultStore) record(e TraceEntry) {
	if f.traceCap <= 0 {
		return
	}
	if len(f.trace) < f.traceCap {
		f.trace = append(f.trace, e)
		return
	}
	f.trace[f.traceNext] = e
	f.traceNext = (f.traceNext + 1) % f.traceCap
}

// tearLocked applies a torn prefix of buf to page id on the inner store,
// best-effort. Callers must NOT hold mu.
func (f *FaultStore) tear(id PageID, buf []byte) {
	f.mu.Lock()
	rw, ok := f.inner.(rawWriter)
	var n int
	if ok && len(buf) > 0 {
		n = 1 + f.rng.Intn(len(buf))
	}
	f.mu.Unlock()
	if ok && n > 0 {
		_ = rw.writeRaw(id, buf[:n])
	}
}

// PageSize implements Store.
func (f *FaultStore) PageSize() int { return f.inner.PageSize() }

// Alloc implements Store.
func (f *FaultStore) Alloc() (PageID, error) {
	if err := f.tripFull(OpAlloc, NilPage); err != nil {
		return NilPage, err
	}
	if err := f.trip(OpAlloc, NilPage); err != nil {
		return NilPage, err
	}
	return f.inner.Alloc()
}

// Free implements Store.
func (f *FaultStore) Free(id PageID) error {
	if err := f.trip(OpFree, id); err != nil {
		return err
	}
	return f.inner.Free(id)
}

// Read implements Store.
func (f *FaultStore) Read(id PageID, buf []byte) error {
	if err := f.trip(OpRead, id); err != nil {
		return err
	}
	return f.inner.Read(id, buf)
}

// Write implements Store. With torn-write mode on, an injected fault
// leaves a partial prefix of buf on the inner store before failing. In
// ENOSPC mode the write is refused whole — a full disk rejects the write,
// it does not tear it.
func (f *FaultStore) Write(id PageID, buf []byte) error {
	if err := f.tripFull(OpWrite, id); err != nil {
		return err
	}
	if err := f.trip(OpWrite, id); err != nil {
		f.mu.Lock()
		torn := f.tornWrite
		f.mu.Unlock()
		if torn && len(buf) == f.inner.PageSize() {
			f.tear(id, buf)
		}
		return err
	}
	return f.inner.Write(id, buf)
}

// writeRaw delegates torn writes so a CrashStore can sit above a
// FaultStore (or vice versa).
func (f *FaultStore) writeRaw(id PageID, prefix []byte) error {
	rw, ok := f.inner.(rawWriter)
	if !ok {
		return fmt.Errorf("eio: inner store does not support raw writes")
	}
	return rw.writeRaw(id, prefix)
}

// Sync delegates to the inner store's durability barrier, if any.
func (f *FaultStore) Sync() error {
	if s, ok := f.inner.(syncer); ok {
		return s.Sync()
	}
	return nil
}

// Stats implements Store, reporting the inner store's counters (injected
// faults that never reach the inner store are not counted as I/Os).
func (f *FaultStore) Stats() Stats { return f.inner.Stats() }

// ResetStats implements Store by delegating to the inner store. Armed
// faults, the global operation counter used by FailNth, and the bounded
// operation trace are NOT reset — only accounting is.
func (f *FaultStore) ResetStats() { f.inner.ResetStats() }

// Pages implements Store.
func (f *FaultStore) Pages() int { return f.inner.Pages() }

// LivePageIDs implements PageLister when the inner store does.
func (f *FaultStore) LivePageIDs() ([]PageID, error) {
	pl, ok := f.inner.(PageLister)
	if !ok {
		return nil, fmt.Errorf("eio: fault: inner store cannot enumerate pages")
	}
	return pl.LivePageIDs()
}

// Close implements Store.
func (f *FaultStore) Close() error { return f.inner.Close() }
