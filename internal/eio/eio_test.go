package eio

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"rangesearch/internal/geom"
)

// storeFactories lets every conformance test run against both store kinds.
func storeFactories(t *testing.T) map[string]func() Store {
	t.Helper()
	dir := t.TempDir()
	return map[string]func() Store{
		"mem": func() Store { return NewMemStore(128) },
		"file": func() Store {
			fs, err := CreateFileStore(filepath.Join(dir, "pages.db"), 128)
			if err != nil {
				t.Fatal(err)
			}
			return fs
		},
	}
}

func TestStoreConformance(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()

			if s.PageSize() != 128 {
				t.Fatalf("page size %d", s.PageSize())
			}
			id1, err := s.Alloc()
			if err != nil {
				t.Fatal(err)
			}
			if id1 == NilPage {
				t.Fatal("Alloc returned NilPage")
			}
			data := make([]byte, 128)
			for i := range data {
				data[i] = byte(i)
			}
			if err := s.Write(id1, data); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 128)
			if err := s.Read(id1, buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, data) {
				t.Fatal("read back different data")
			}

			// Stats: 1 alloc, 1 write, 1 read so far.
			st := s.Stats()
			if st.Allocs != 1 || st.Writes != 1 || st.Reads != 1 {
				t.Fatalf("stats %v", st)
			}
			if st.IOs() != 2 {
				t.Fatalf("IOs %d", st.IOs())
			}

			// Free + reuse: freed page must come back zeroed.
			if err := s.Free(id1); err != nil {
				t.Fatal(err)
			}
			id2, err := s.Alloc()
			if err != nil {
				t.Fatal(err)
			}
			if id2 != id1 {
				t.Fatalf("expected page reuse, got %d after freeing %d", id2, id1)
			}
			if err := s.Read(id2, buf); err != nil {
				t.Fatal(err)
			}
			for _, b := range buf {
				if b != 0 {
					t.Fatal("reused page not zeroed")
				}
			}

			// Short write rejected.
			if err := s.Write(id2, make([]byte, 4)); !errors.Is(err, ErrPageSize) {
				t.Fatalf("short write: %v", err)
			}
			// NilPage is invalid.
			if err := s.Read(NilPage, buf); err == nil {
				t.Fatal("read of NilPage succeeded")
			}
			if err := s.Free(NilPage); err != nil {
				t.Fatal("free of NilPage must be a no-op")
			}

			if got := s.Pages(); got != 1 {
				t.Fatalf("Pages() = %d, want 1", got)
			}
			s.ResetStats()
			if s.Stats() != (Stats{}) {
				t.Fatal("ResetStats did not clear")
			}
		})
	}
}

func TestMemStoreBadPage(t *testing.T) {
	s := NewMemStore(64)
	defer s.Close()
	buf := make([]byte, 64)
	if err := s.Read(PageID(99), buf); !errors.Is(err, ErrBadPage) {
		t.Fatalf("expected ErrBadPage, got %v", err)
	}
	id, _ := s.Alloc()
	if err := s.Free(id); err != nil {
		t.Fatal(err)
	}
	if err := s.Read(id, buf); !errors.Is(err, ErrBadPage) {
		t.Fatalf("read of freed page: %v", err)
	}
}

func TestFileStoreReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reopen.db")
	fs, err := CreateFileStore(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	id, err := fs.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xAB}, 64)
	if err := fs.Write(id, data); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	fs2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	if fs2.PageSize() != 64 {
		t.Fatalf("page size after reopen: %d", fs2.PageSize())
	}
	buf := make([]byte, 64)
	if err := fs2.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("data lost across reopen")
	}
	// Free list must survive reopen too.
	if err := fs2.Free(id); err != nil {
		t.Fatal(err)
	}
	if err := fs2.Sync(); err != nil {
		t.Fatal(err)
	}
	id2, err := fs2.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id {
		t.Fatalf("free list not reused after reopen: %d vs %d", id2, id)
	}
}

func TestPoolHitsAreFree(t *testing.T) {
	mem := NewMemStore(64)
	p := NewPool(mem, 4)
	defer p.Close()

	id, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{7}, 64)
	if err := p.Write(id, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	for i := 0; i < 10; i++ {
		if err := p.Read(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	// No backing I/O yet: everything is pooled and dirty.
	if st := mem.Stats(); st.Reads != 0 || st.Writes != 0 {
		t.Fatalf("backing I/O before eviction: %v", st)
	}
	ps := p.PoolStats()
	if ps.Hits < 10 {
		t.Fatalf("expected ≥10 hits, got %+v", ps)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := mem.Stats(); st.Writes != 1 {
		t.Fatalf("flush should write once: %v", st)
	}
	if !bytes.Equal(readPage(t, mem, id), data) {
		t.Fatal("flushed data mismatch")
	}
}

func TestPoolEviction(t *testing.T) {
	mem := NewMemStore(64)
	p := NewPool(mem, 2)
	defer p.Close()

	var ids []PageID
	for i := 0; i < 5; i++ {
		id, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Write(id, bytes.Repeat([]byte{byte(i + 1)}, 64)); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Capacity 2: at least 3 evictions with write-back must have happened.
	ps := p.PoolStats()
	if ps.Evictions < 3 || ps.Writeback < 3 {
		t.Fatalf("pool stats %+v", ps)
	}
	// All pages readable with correct contents through the pool.
	buf := make([]byte, 64)
	for i, id := range ids {
		if err := p.Read(id, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i+1) {
			t.Fatalf("page %d contents %d", i, buf[0])
		}
	}
}

func TestPoolRandomizedAgainstDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	mem := NewMemStore(32)
	shadow := map[PageID][]byte{}
	p := NewPool(mem, 3)
	defer p.Close()

	var ids []PageID
	for op := 0; op < 3000; op++ {
		switch {
		case len(ids) == 0 || rng.Intn(10) == 0:
			id, err := p.Alloc()
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
			shadow[id] = make([]byte, 32)
		case rng.Intn(2) == 0:
			id := ids[rng.Intn(len(ids))]
			data := make([]byte, 32)
			rng.Read(data)
			if err := p.Write(id, data); err != nil {
				t.Fatal(err)
			}
			shadow[id] = data
		default:
			id := ids[rng.Intn(len(ids))]
			buf := make([]byte, 32)
			if err := p.Read(id, buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, shadow[id]) {
				t.Fatalf("op %d: page %d diverged", op, id)
			}
		}
	}
}

func TestFaultStore(t *testing.T) {
	mem := NewMemStore(64)
	f := NewFaultStore(mem)
	defer f.Close()
	id, err := f.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)

	f.FailAfter(OpRead, 2)
	if err := f.Read(id, buf); err != nil {
		t.Fatalf("first read should succeed: %v", err)
	}
	if err := f.Read(id, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("second read should fail: %v", err)
	}
	if err := f.Read(id, buf); err != nil {
		t.Fatalf("fault should disarm after firing: %v", err)
	}

	f.FailAfter(OpWrite, 1)
	if err := f.Write(id, buf); !errors.Is(err, ErrInjected) {
		t.Fatal("write fault did not fire")
	}
	f.FailAfter(OpAlloc, 1)
	if _, err := f.Alloc(); !errors.Is(err, ErrInjected) {
		t.Fatal("alloc fault did not fire")
	}
	f.FailAfter(OpFree, 1)
	f.Disarm()
	if err := f.Free(id); err != nil {
		t.Fatalf("disarmed fault fired: %v", err)
	}
}

func TestRecordStoreRoundTrip(t *testing.T) {
	mem := NewMemStore(64)
	rs := NewRecordStore(mem)
	rng := rand.New(rand.NewSource(4))

	for _, size := range []int{0, 1, 47, 48, 49, 100, 1000, 5000} {
		data := make([]byte, size)
		rng.Read(data)
		id, err := rs.Put(data)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rs.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("size %d: round trip mismatch", size)
		}
		if want := rs.PagesFor(size); chainPages(t, rs, id) != want {
			t.Fatalf("size %d: chain has %d pages, want %d", size, chainPages(t, rs, id), want)
		}
	}
}

func TestRecordStoreUpdateGrowShrink(t *testing.T) {
	mem := NewMemStore(64)
	rs := NewRecordStore(mem)
	id, err := rs.Put(bytes.Repeat([]byte{1}, 10))
	if err != nil {
		t.Fatal(err)
	}
	before := mem.Pages()

	big := bytes.Repeat([]byte{2}, 900)
	if err := rs.Update(id, big); err != nil {
		t.Fatal(err)
	}
	got, err := rs.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("grown record mismatch")
	}
	if mem.Pages() <= before {
		t.Fatal("grow did not allocate pages")
	}

	small := bytes.Repeat([]byte{3}, 5)
	if err := rs.Update(id, small); err != nil {
		t.Fatal(err)
	}
	got, err = rs.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, small) {
		t.Fatal("shrunk record mismatch")
	}
	if mem.Pages() != before {
		t.Fatalf("shrink leaked pages: %d vs %d", mem.Pages(), before)
	}

	if err := rs.Delete(id); err != nil {
		t.Fatal(err)
	}
	if mem.Pages() != before-1 {
		t.Fatalf("delete leaked pages: %d", mem.Pages())
	}
}

func TestRecordStoreIOCost(t *testing.T) {
	mem := NewMemStore(64)
	rs := NewRecordStore(mem)
	data := make([]byte, 480) // ~10 pages at 56 payload bytes/page
	id, err := rs.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	mem.ResetStats()
	if _, err := rs.Get(id); err != nil {
		t.Fatal(err)
	}
	want := uint64(rs.PagesFor(len(data)))
	if got := mem.Stats().Reads; got != want {
		t.Fatalf("reading a %d-page record cost %d reads", want, got)
	}
}

func chainPages(t *testing.T, rs *RecordStore, id PageID) int {
	t.Helper()
	pages, err := rs.chain(id)
	if err != nil {
		t.Fatal(err)
	}
	return len(pages)
}

func readPage(t *testing.T, s Store, id PageID) []byte {
	t.Helper()
	buf := make([]byte, s.PageSize())
	if err := s.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestPointBlockRoundTrip(t *testing.T) {
	mem := NewMemStore(128) // B = 8
	pts := []geom.Point{{X: -5, Y: 10}, {X: 0, Y: 0}, {X: geom.MaxCoord, Y: geom.MinCoord}}
	id, err := WritePointBlock(mem, NilPage, pts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadPointBlock(nil, mem, id, len(pts))
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if got[i] != pts[i] {
			t.Fatalf("point %d: %v != %v", i, got[i], pts[i])
		}
	}
	// Overwrite in place keeps the id.
	id2, err := WritePointBlock(mem, id, pts[:1])
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id {
		t.Fatal("overwrite allocated a new page")
	}
	// Overfull block rejected.
	big := make([]geom.Point, 9)
	if _, err := WritePointBlock(mem, NilPage, big); err == nil {
		t.Fatal("overfull block accepted")
	}
}

func TestBlockCapacity(t *testing.T) {
	if BlockCapacity(4096) != 256 {
		t.Fatalf("BlockCapacity(4096) = %d", BlockCapacity(4096))
	}
}

// TestConcurrentStoreAccess hammers a store (and a pool over it) from many
// goroutines; run with -race to validate the locking.
func TestConcurrentStoreAccess(t *testing.T) {
	for _, wrap := range []struct {
		name string
		mk   func() Store
	}{
		{"mem", func() Store { return NewMemStore(64) }},
		{"pool", func() Store { return NewPool(NewMemStore(64), 8) }},
	} {
		t.Run(wrap.name, func(t *testing.T) {
			s := wrap.mk()
			defer s.Close()
			// Pre-allocate shared pages.
			ids := make([]PageID, 16)
			for i := range ids {
				id, err := s.Alloc()
				if err != nil {
					t.Fatal(err)
				}
				ids[i] = id
			}
			done := make(chan error, 8)
			for g := 0; g < 8; g++ {
				go func(seed int64) {
					rng := rand.New(rand.NewSource(seed))
					buf := make([]byte, 64)
					for i := 0; i < 500; i++ {
						id := ids[rng.Intn(len(ids))]
						if rng.Intn(2) == 0 {
							rng.Read(buf)
							if err := s.Write(id, buf); err != nil {
								done <- err
								return
							}
						} else if err := s.Read(id, buf); err != nil {
							done <- err
							return
						}
					}
					done <- nil
				}(int64(g))
			}
			for g := 0; g < 8; g++ {
				if err := <-done; err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}
